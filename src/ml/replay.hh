/**
 * @file
 * Experience replay memory (Mnih et al. 2015, as cited by the
 * paper): a bounded circular buffer of transitions sampled
 * uniformly for training, decorrelating consecutive decisions.
 */

#ifndef RLR_ML_REPLAY_HH
#define RLR_ML_REPLAY_HH

#include <cstddef>
#include <vector>

#include "util/rng.hh"

namespace rlr::ml
{

/** One replacement decision. */
struct Transition
{
    std::vector<float> state;
    uint32_t action = 0;
    float reward = 0.0f;
};

/** Bounded uniform-sampling replay buffer. */
class ReplayMemory
{
  public:
    /** @param capacity maximum retained transitions */
    explicit ReplayMemory(size_t capacity);

    /** Append, overwriting the oldest entry when full. */
    void push(Transition transition);

    /** Uniformly sample one stored transition. */
    const Transition &sample(util::Rng &rng) const;

    size_t size() const { return entries_.size(); }
    size_t capacity() const { return capacity_; }
    bool empty() const { return entries_.empty(); }

  private:
    size_t capacity_;
    size_t next_ = 0;
    std::vector<Transition> entries_;
};

} // namespace rlr::ml

#endif // RLR_ML_REPLAY_HH
