# Empty compiler generated dependencies file for fig4_preuse_reuse.
# This may be replaced when dependencies are built.
