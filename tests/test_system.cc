/** @file Integration tests for the full system and experiment
 *  drivers. */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/system.hh"
#include "trace/workloads.hh"

using namespace rlr;
using namespace rlr::sim;

namespace
{

SimParams
quickParams()
{
    SimParams p;
    p.warmup_instructions = 20'000;
    p.sim_instructions = 80'000;
    return p;
}

} // namespace

TEST(System, BuildsPaperConfiguration)
{
    SystemConfig cfg;
    System sys(cfg);
    EXPECT_EQ(sys.numCores(), 1u);
    EXPECT_EQ(sys.llc().geometry().size_bytes, 2u * 1024 * 1024);
    EXPECT_EQ(sys.llc().geometry().ways, 16u);
    EXPECT_EQ(sys.l2(0).geometry().size_bytes, 256u * 1024);
    EXPECT_EQ(sys.l1d(0).geometry().latency, 4u);
}

TEST(System, MulticoreScalesLlc)
{
    SystemConfig cfg;
    cfg.num_cores = 4;
    System sys(cfg);
    EXPECT_EQ(sys.numCores(), 4u);
    EXPECT_EQ(sys.llc().geometry().size_bytes, 8u * 1024 * 1024);
}

TEST(Experiment, RunIsDeterministic)
{
    const auto a = runSingleCore("416.gamess", quickParams());
    const auto b = runSingleCore("416.gamess", quickParams());
    EXPECT_EQ(a.cores[0].cycles, b.cores[0].cycles);
    EXPECT_EQ(a.llc_demand_accesses, b.llc_demand_accesses);
}

TEST(Experiment, HierarchyFiltersAccesses)
{
    const auto r = runSingleCore("403.gcc", quickParams());
    // L1/L2 must filter most traffic: LLC demand accesses are a
    // small fraction of instructions.
    EXPECT_LT(r.llc_demand_accesses,
              r.total_instructions / 2);
    EXPECT_GT(r.total_instructions, 0u);
    EXPECT_GT(r.ipc(), 0.0);
}

TEST(Experiment, CaptureLlcTraceMatchesAccessCount)
{
    SimParams p = quickParams();
    const auto trace = captureLlcTrace("471.omnetpp", p);
    EXPECT_FALSE(trace.empty());
    // The trace contains demand, prefetch, and writeback records.
    EXPECT_GT(trace.countType(trace::AccessType::Load), 0u);
}

TEST(Experiment, SweepProducesAllCells)
{
    const auto cells = sweep({"416.gamess", "445.gobmk"},
                             {"LRU", "DRRIP"}, quickParams(), 4);
    EXPECT_EQ(cells.size(), 4u);
    const auto &c = findCell(cells, "445.gobmk", "DRRIP");
    EXPECT_EQ(c.policy, "DRRIP");
    EXPECT_GT(c.result.ipc(), 0.0);
}

TEST(Experiment, MulticoreRunProducesPerCoreResults)
{
    SimParams p = quickParams();
    p.sim_instructions = 40'000;
    const auto r = runWorkloads(
        {"416.gamess", "445.gobmk", "416.gamess", "445.gobmk"}, p);
    ASSERT_EQ(r.cores.size(), 4u);
    for (const auto &core : r.cores) {
        EXPECT_GE(core.instructions, 40'000u);
        EXPECT_GT(core.ipc, 0.0);
    }
    EXPECT_EQ(r.total_instructions,
              r.cores[0].instructions + r.cores[1].instructions +
                  r.cores[2].instructions +
                  r.cores[3].instructions);
}

TEST(Experiment, SpeedupOverSelfIsUnity)
{
    const auto r = runSingleCore("445.gobmk", quickParams());
    EXPECT_NEAR(r.speedupOver(r), 1.0, 1e-9);
}

TEST(Experiment, RlrPolicyRunsInFullSystem)
{
    SimParams p = quickParams();
    p.llc_policy = "RLR";
    const auto r = runSingleCore("471.omnetpp", p);
    EXPECT_GT(r.ipc(), 0.0);
    EXPECT_GT(r.llc_demand_accesses, 0u);
}

TEST(Experiment, KpcPrefetcherOption)
{
    SimParams p = quickParams();
    p.l2_prefetcher = L2Prefetcher::KpcP;
    const auto r = runSingleCore("462.libquantum", p);
    EXPECT_GT(r.ipc(), 0.0);
}

TEST(Experiment, NoPrefetcherOption)
{
    // With both prefetchers disabled, the streaming benchmark
    // loses the coverage the default system enjoys.
    SystemConfig off;
    off.l2_prefetcher = L2Prefetcher::None;
    off.l1d_prefetcher = false;
    System sys_off(off);
    auto gen = trace::makeGenerator("462.libquantum", 42);
    sys_off.core(0).run(*gen, 20'000);
    sys_off.resetStats();
    sys_off.core(0).run(*gen, 80'000);

    // Prefetching covers the stream at the L2: demand accesses
    // mostly hit lines the prefetcher brought in. Without it the
    // stream misses everywhere.
    SystemConfig on; // defaults: next-line L1 + IP-stride L2
    System sys_on(on);
    auto gen_on = trace::makeGenerator("462.libquantum", 42);
    sys_on.core(0).run(*gen_on, 20'000);
    sys_on.resetStats();
    sys_on.core(0).run(*gen_on, 80'000);

    const auto rate = [](cache::Cache &c) {
        const uint64_t acc = c.demandAccesses();
        return acc ? static_cast<double>(c.demandHits()) /
                         static_cast<double>(acc)
                   : 0.0;
    };
    EXPECT_GT(rate(sys_on.l2(0)), rate(sys_off.l2(0)) + 0.1);
}
