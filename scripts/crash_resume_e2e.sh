#!/usr/bin/env bash
# Crash/resume equivalence check (wired into ctest as
# `crash_resume_e2e` and run by both scripts/ci.sh stages).
#
# Proves the durable-journal guarantee end to end on a real bench
# binary (docs/ROBUSTNESS.md):
#
#   1. reference : uninterrupted sweep with --stable-json
#   2. crash     : same sweep with --journal and an injected
#                  `abort` fault — the process SIGKILLs itself
#                  mid-sweep (exit 137), leaving the journal with
#                  only the cells that finished first
#   3. resume    : same command without the fault — completed
#                  cells are served from the journal, the rest
#                  re-run, and the --json export must be
#                  BYTE-IDENTICAL to the reference run's
#   4. watchdog  : an injected `hang` is reaped by --cell-timeout
#                  while every other cell completes (exit 1, the
#                  timeout appears in the failed-cell table)
#   5. retry     : an injected transient fault succeeds on the
#                  second attempt under --cell-retries (exit 0,
#                  sweep.retries counted)
#
# Usage: scripts/crash_resume_e2e.sh [--fig12-bin=PATH]
#            [--inspect-bin=PATH]

set -eu

cd "$(dirname "$0")/.." || exit 1

fig12_bin="build/bench/fig12_mpki"
inspect_bin="build/tools/inspect"
for arg in "$@"; do
    case "$arg" in
        --fig12-bin=*) fig12_bin="${arg#--fig12-bin=}" ;;
        --inspect-bin=*) inspect_bin="${arg#--inspect-bin=}" ;;
        *)
            echo "crash_resume_e2e: unknown argument '$arg'" >&2
            echo "usage: $0 [--fig12-bin=PATH]" \
                 "[--inspect-bin=PATH]" >&2
            exit 2
            ;;
    esac
done

for bin in "$fig12_bin" "$inspect_bin"; do
    [ -x "$bin" ] || {
        echo "crash_resume_e2e: binary '$bin' not found; build" \
             "first (cmake --build build) or pass --fig12-bin= /" \
             "--inspect-bin=" >&2
        exit 2
    }
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# A tiny fully deterministic 4-cell grid. fig12 prepends LRU, so
# the cell order is fixed: (429.mcf,LRU) (429.mcf,RLR)
# (470.lbm,LRU) (470.lbm,RLR). --threads 1 in the crash run makes
# the journal contents deterministic: cells 0 and 1 complete, the
# abort fault kills the process the instant cell 2 is reached.
common="--workloads 429.mcf,470.lbm --policies RLR \
        --warmup 20000 --instructions 30000 --seed 42 \
        --stable-json"

echo "crash_resume_e2e: [1/5] reference run" >&2
"$fig12_bin" $common --threads 2 --json "$tmp/ref.json" \
    >/dev/null

echo "crash_resume_e2e: [2/5] crash run (SIGKILL at cell 2)" >&2
rc=0
"$fig12_bin" $common --threads 1 --journal "$tmp/journal" \
    --faults abort@2 --json "$tmp/crash.json" \
    >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 137 ]; then
    echo "crash_resume_e2e: expected the crash run to die with" \
         "SIGKILL (exit 137), got $rc" >&2
    exit 1
fi
if [ -e "$tmp/crash.json" ]; then
    echo "crash_resume_e2e: the killed run must not have written" \
         "its --json export" >&2
    exit 1
fi
records=$(ls "$tmp/journal/sweep-0/" | grep -c '^cell-') || true
if [ "$records" -ne 2 ]; then
    echo "crash_resume_e2e: expected 2 journaled cells after the" \
         "crash, found $records" >&2
    ls -l "$tmp/journal/sweep-0/" >&2
    exit 1
fi

echo "crash_resume_e2e: [3/5] resume run" >&2
"$fig12_bin" $common --threads 2 --journal "$tmp/journal" \
    --json "$tmp/resume.json" >"$tmp/resume.out"
grep -q "sweep.resumed_cells 2" "$tmp/resume.out" || {
    echo "crash_resume_e2e: resume run did not report 2 resumed" \
         "cells" >&2
    cat "$tmp/resume.out" >&2
    exit 1
}
if ! cmp -s "$tmp/ref.json" "$tmp/resume.json"; then
    echo "crash_resume_e2e: resumed export differs from the" \
         "uninterrupted run's:" >&2
    diff -u "$tmp/ref.json" "$tmp/resume.json" >&2 || true
    exit 1
fi
# The journal now covers the whole sweep and summarizes cleanly.
"$inspect_bin" --journal "$tmp/journal/sweep-0" \
    >"$tmp/summary.out"
grep -q "4 records: 4 ok, 0 failed, 0 unreadable" \
    "$tmp/summary.out" || {
    echo "crash_resume_e2e: unexpected journal summary:" >&2
    cat "$tmp/summary.out" >&2
    exit 1
}

echo "crash_resume_e2e: [4/5] watchdog reaps a hung cell" >&2
rc=0
"$fig12_bin" $common --threads 2 --faults hang@0 \
    --cell-timeout 2 >"$tmp/hang.out" 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "crash_resume_e2e: expected exit 1 from the timed-out" \
         "sweep, got $rc" >&2
    cat "$tmp/hang.out" >&2
    exit 1
fi
grep -q "timeout: attempt exceeded --cell-timeout" \
    "$tmp/hang.out" || {
    echo "crash_resume_e2e: timeout error missing from the" \
         "output" >&2
    cat "$tmp/hang.out" >&2
    exit 1
}
grep -q "sweep.timeouts 1" "$tmp/hang.out" || {
    echo "crash_resume_e2e: sweep.timeouts counter missing" >&2
    cat "$tmp/hang.out" >&2
    exit 1
}

echo "crash_resume_e2e: [5/5] transient fault retried" >&2
"$fig12_bin" $common --threads 2 --faults transient:1@0 \
    --cell-retries 2 >"$tmp/retry.out"
grep -q "sweep.retries 1" "$tmp/retry.out" || {
    echo "crash_resume_e2e: sweep.retries counter missing" >&2
    cat "$tmp/retry.out" >&2
    exit 1
}

echo "crash_resume_e2e: OK (kill -9 at cell 2, resumed export" \
     "byte-identical; hung cell reaped; transient retried)"
