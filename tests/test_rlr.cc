/** @file Tests for the RLR policy (the paper's Section IV). */

#include <gtest/gtest.h>

#include "core/rlr.hh"
#include "policies/lru.hh"
#include "tests/policy_test_util.hh"

using namespace rlr;
using namespace rlr::core;

namespace
{

cache::AccessContext
acc(uint32_t set, uint32_t way, bool hit,
    trace::AccessType type = trace::AccessType::Load,
    uint8_t cpu = 0)
{
    cache::AccessContext c;
    c.set = set;
    c.way = way;
    c.hit = hit;
    c.type = type;
    c.cpu = cpu;
    return c;
}

} // namespace

TEST(Rlr, PriorityComposition)
{
    RlrConfig cfg;
    RlrPolicy p(cfg);
    p.bind(test::tinyGeometry());
    // Fresh demand fill: age 0 (protected), no hit, type != PF:
    // P = 8*1 + 1 + 0 = 9.
    p.onAccess(acc(0, 0, false));
    EXPECT_EQ(p.linePriority(0, 0), 9u);
    // Demand hit adds the hit bit: 8 + 1 + 1 = 10.
    p.onAccess(acc(0, 0, true));
    EXPECT_EQ(p.linePriority(0, 0), 10u);
    // Prefetch fill: 8 + 0 + 0 = 8.
    p.onAccess(acc(0, 1, false, trace::AccessType::Prefetch));
    EXPECT_EQ(p.linePriority(0, 1), 8u);
}

TEST(Rlr, PrefetchedLineLosesTypePriorityUntilReuse)
{
    RlrPolicy p;
    p.bind(test::tinyGeometry());
    p.onAccess(acc(0, 0, false, trace::AccessType::Prefetch));
    EXPECT_EQ(p.linePriority(0, 0), 8u);
    // Demand reuse flips the type register and sets the hit bit.
    p.onAccess(acc(0, 0, true, trace::AccessType::Load));
    EXPECT_EQ(p.linePriority(0, 0), 10u);
}

TEST(Rlr, VictimIsLowestPriority)
{
    RlrPolicy p;
    p.bind(test::tinyGeometry());
    p.onAccess(acc(0, 0, false)); // demand, P=9
    p.onAccess(acc(0, 1, false, trace::AccessType::Prefetch)); // 8
    p.onAccess(acc(0, 2, false)); // 9
    p.onAccess(acc(0, 3, false)); // 9
    p.onAccess(acc(0, 0, true));  // 10
    std::vector<cache::BlockView> blocks(4);
    cache::AccessContext miss;
    miss.set = 0;
    EXPECT_EQ(p.findVictim(miss, blocks), 1u);
}

TEST(Rlr, AgeExpiryDropsProtection)
{
    // Optimized variant: ages tick every 8 set misses via the
    // 3-bit per-set counter.
    RlrConfig cfg;
    RlrPolicy p(cfg);
    p.bind(test::tinyGeometry());
    p.onAccess(acc(0, 0, false));
    EXPECT_EQ(p.linePriority(0, 0), 9u);
    // 32 misses to the set (to other ways) push age to 4 ticks,
    // past the default RD.
    for (int i = 0; i < 32; ++i)
        p.onAccess(acc(0, 1u + static_cast<uint32_t>(i % 3),
                       false));
    EXPECT_EQ(p.linePriority(0, 0), 1u); // protection expired
}

TEST(Rlr, RdUpdatesAfter32DemandHits)
{
    RlrConfig cfg;
    RlrPolicy p(cfg);
    p.bind(test::tinyGeometry());
    const uint64_t rd0 = p.reuseDistance();
    // Interleave: 8 misses (2 ticks is enough to age) then a hit,
    // 32 times, so samples are nonzero.
    for (int round = 0; round < 32; ++round) {
        for (int m = 0; m < 16; ++m)
            p.onAccess(acc(0, static_cast<uint32_t>(m % 3),
                           false));
        p.onAccess(acc(0, 3, true));
    }
    // RD must have been recomputed (rd_update_hits = 32).
    EXPECT_NE(p.reuseDistance(), rd0);
    EXPECT_GT(p.reuseDistance(), 1u);
}

TEST(Rlr, AgeDominatesTypeInVictimChoice)
{
    // A prefetched line whose age exceeded RD (P = 0) loses to a
    // freshly prefetched, still-protected line (P = 8).
    RlrPolicy p;
    p.bind(test::tinyGeometry());
    p.onAccess(acc(0, 0, false, trace::AccessType::Prefetch));
    for (int i = 0; i < 16; ++i)
        p.onAccess(acc(0, 2, false)); // age way 0 past RD
    p.onAccess(acc(0, 1, false, trace::AccessType::Prefetch));
    p.onAccess(acc(0, 3, false));
    std::vector<cache::BlockView> blocks(4);
    cache::AccessContext miss;
    miss.set = 0;
    EXPECT_EQ(p.findVictim(miss, blocks), 0u);
}

TEST(Rlr, EqualPriorityEqualAgeBreaksTowardLowestWay)
{
    // Two prefetched lines filled back-to-back: same priority,
    // same (approximate) recency -> lowest way index, per the
    // optimized design.
    RlrPolicy p;
    p.bind(test::tinyGeometry());
    p.onAccess(acc(0, 2, false, trace::AccessType::Prefetch));
    p.onAccess(acc(0, 3, false, trace::AccessType::Prefetch));
    p.onAccess(acc(0, 0, false)); // demand, higher priority
    p.onAccess(acc(0, 1, false));
    std::vector<cache::BlockView> blocks(4);
    cache::AccessContext miss;
    miss.set = 0;
    EXPECT_EQ(p.findVictim(miss, blocks), 2u);
}

TEST(Rlr, UnoptimizedUsesExactRecency)
{
    RlrConfig cfg = RlrConfig::unoptimized();
    RlrPolicy p(cfg);
    p.bind(test::tinyGeometry());
    for (uint32_t w = 0; w < 4; ++w)
        p.onAccess(acc(0, w, false));
    // With RD = 1, ways 0 and 1 have aged past protection and tie
    // at the lowest priority; the most recently used of the two
    // (way 1) is evicted, per the paper's recency tie-break.
    std::vector<cache::BlockView> blocks(4);
    cache::AccessContext miss;
    miss.set = 0;
    EXPECT_EQ(p.findVictim(miss, blocks), 1u);
}

TEST(Rlr, AblationFlagsChangePriorities)
{
    RlrConfig nohit;
    nohit.use_hit_priority = false;
    RlrPolicy p1(nohit);
    p1.bind(test::tinyGeometry());
    p1.onAccess(acc(0, 0, false));
    p1.onAccess(acc(0, 0, true));
    EXPECT_EQ(p1.linePriority(0, 0), 9u); // no +1 for the hit

    RlrConfig notype;
    notype.use_type_priority = false;
    RlrPolicy p2(notype);
    p2.bind(test::tinyGeometry());
    p2.onAccess(acc(0, 0, false));
    EXPECT_EQ(p2.linePriority(0, 0), 8u); // no +1 for non-PF
}

TEST(Rlr, BypassWhenAllProtected)
{
    RlrConfig cfg;
    cfg.allow_bypass = true;
    RlrPolicy p(cfg);
    p.bind(test::tinyGeometry());
    for (uint32_t w = 0; w < 4; ++w)
        p.onAccess(acc(0, w, false));
    std::vector<cache::BlockView> blocks(4);
    cache::AccessContext miss;
    miss.set = 0;
    miss.type = trace::AccessType::Load;
    EXPECT_EQ(p.findVictim(miss, blocks),
              cache::ReplacementPolicy::kBypass);
    // Writebacks never bypass.
    miss.type = trace::AccessType::Writeback;
    EXPECT_NE(p.findVictim(miss, blocks),
              cache::ReplacementPolicy::kBypass);
}

TEST(Rlr, OptimizedBypassUsesScaledAges)
{
    // Regression: findVictim's bypass check used to compare raw
    // optimized ages (0..3) against RD in set-miss units, so any
    // RD > age_max_ bypassed nearly every fill. Scaled line ages
    // above RD must suppress the bypass.
    RlrConfig cfg;
    cfg.allow_bypass = true;
    RlrPolicy p(cfg);
    p.bind(test::tinyGeometry());

    // Drive RD above the raw age maximum (3): rounds of two
    // misses (ways 1/2) and a demand hit (way 3) produce scaled
    // preuse samples of 2,4,6,8 repeating, so RD settles at
    // 4 * avg = 20 set misses after 32 samples.
    for (int round = 0; round < 32; ++round) {
        p.onAccess(acc(0, 1, false));
        p.onAccess(acc(0, 2, false));
        p.onAccess(acc(0, 3, true));
    }
    const uint64_t rd = p.reuseDistance();
    ASSERT_GT(rd, 3u) << "test needs RD beyond the raw age range";
    ASSERT_LT(rd, 24u) << "test needs RD below saturated scaled age";

    // Saturate ways 1..3 (4 ticks, scaled age 24) with misses
    // that only ever fill way 0, so the aged lines stay resident.
    for (int m = 0; m < 32; ++m)
        p.onAccess(acc(0, 0, false));

    // Scaled ages (24) exceed RD: a fill must evict, not bypass.
    // With the unit-mismatch bug the raw ages (3) stayed below RD
    // and every fill bypassed.
    std::vector<cache::BlockView> blocks(4);
    cache::AccessContext miss;
    miss.set = 0;
    miss.type = trace::AccessType::Load;
    EXPECT_NE(p.findVictim(miss, blocks),
              cache::ReplacementPolicy::kBypass);
}

TEST(Rlr, UnoptimizedBypassPath)
{
    RlrConfig cfg = RlrConfig::unoptimized();
    cfg.allow_bypass = true;
    RlrPolicy p(cfg);
    p.bind(test::tinyGeometry());

    std::vector<cache::BlockView> blocks(4);
    cache::AccessContext miss;
    miss.set = 0;
    miss.type = trace::AccessType::Load;

    // Freshly filled set: ages 3,2,1,0 in access units with
    // RD = 1, so ways 0 and 1 have expired -> no bypass.
    for (uint32_t w = 0; w < 4; ++w)
        p.onAccess(acc(0, w, false));
    EXPECT_NE(p.findVictim(miss, blocks),
              cache::ReplacementPolicy::kBypass);

    // Round-robin demand hits: every line's preuse distance is 4
    // accesses, so after 32 samples RD = 2 * 4 = 8, above every
    // resident age (0..3): all lines may still be reused -> bypass.
    for (int i = 0; i < 32; ++i)
        p.onAccess(acc(0, static_cast<uint32_t>(i % 4), true));
    ASSERT_GE(p.reuseDistance(), 3u);
    EXPECT_EQ(p.findVictim(miss, blocks),
              cache::ReplacementPolicy::kBypass);
}

TEST(RlrDeathTest, ConstructorRejectsOversizedHitBits)
{
    RlrConfig cfg;
    cfg.hit_bits = 32; // (1u << 32) - 1 would be UB
    EXPECT_DEATH({ RlrPolicy p(cfg); }, "bad hit_bits");
}

TEST(RlrDeathTest, ConstructorRejectsOversizedAgeTick)
{
    RlrConfig cfg;
    cfg.age_tick_misses = 9; // 3-bit per-set counter holds <= 8
    EXPECT_DEATH({ RlrPolicy p(cfg); }, "age_tick_misses");
}

TEST(RlrDeathTest, ConstructorRejectsZeroAgeTick)
{
    RlrConfig cfg;
    cfg.age_tick_misses = 0; // would divide by zero in ageSet
    EXPECT_DEATH({ RlrPolicy p(cfg); }, "age_tick_misses");
}

TEST(Rlr, OverheadMatchesPaperExactly)
{
    cache::CacheGeometry llc2;
    llc2.size_bytes = 2 * 1024 * 1024;
    llc2.ways = 16;
    cache::CacheGeometry llc8 = llc2;
    llc8.size_bytes = 8 * 1024 * 1024;

    RlrPolicy opt;
    opt.bind(llc2);
    EXPECT_NEAR(opt.overhead().totalKiB(llc2), 16.75, 0.01);
    RlrPolicy opt8;
    opt8.bind(llc8);
    EXPECT_NEAR(opt8.overhead().totalKiB(llc8), 67.0, 0.01);

    RlrPolicy unopt(RlrConfig::unoptimized());
    unopt.bind(llc2);
    EXPECT_NEAR(unopt.overhead().totalKiB(llc2), 40.0, 0.01);
}

TEST(Rlr, NeverReadsPc)
{
    RlrPolicy p;
    EXPECT_FALSE(p.usesPc());
}

TEST(Rlr, Names)
{
    EXPECT_EQ(RlrPolicy().name(), "RLR");
    EXPECT_EQ(RlrPolicy(RlrConfig::unoptimized()).name(),
              "RLR(unopt)");
    EXPECT_EQ(RlrPolicy(RlrConfig::forMulticore(4)).name(),
              "RLR-mc");
}

TEST(RlrMulticore, CorePrioritiesRankByDemandHits)
{
    RlrConfig cfg = RlrConfig::forMulticore(4);
    cfg.core_update_interval = 64;
    RlrPolicy p(cfg);
    p.bind(test::tinyGeometry());
    // Core 2 produces many demand hits; others none.
    for (int i = 0; i < 64; ++i) {
        p.onAccess(acc(0, 0, true, trace::AccessType::Load, 2));
    }
    EXPECT_EQ(p.corePriority(2), 3u);
    EXPECT_LT(p.corePriority(0), 3u);
}

TEST(RlrMulticore, CorePriorityEntersLinePriority)
{
    RlrConfig cfg = RlrConfig::forMulticore(4);
    cfg.core_update_interval = 16;
    RlrPolicy p(cfg);
    p.bind(test::tinyGeometry());
    for (int i = 0; i < 16; ++i)
        p.onAccess(acc(0, 0, true, trace::AccessType::Load, 1));
    // Fill two lines from different cores.
    p.onAccess(acc(0, 2, false, trace::AccessType::Load, 1));
    p.onAccess(acc(0, 3, false, trace::AccessType::Load, 0));
    EXPECT_GT(p.linePriority(0, 2), p.linePriority(0, 3));
}

TEST(Rlr, BeatsLruOnScanThrashMix)
{
    // Hot lines with reuse + scan pollution: RLR's hit priority
    // should beat LRU.
    trace::LlcTrace t;
    uint64_t scan = 500;
    for (int rep = 0; rep < 500; ++rep) {
        for (uint64_t l = 0; l < 2; ++l)
            t.append({0x400, l * 64, trace::AccessType::Load, 0});
        t.append({0x900, (scan++) * 64,
                  trace::AccessType::Load, 0});
    }
    ml::OfflineSimulator sim(test::smallOffline(), &t);
    policies::LruPolicy lru;
    const auto base = sim.runPolicy(lru);
    RlrPolicy rlrp;
    const auto s = sim.runPolicy(rlrp);
    EXPECT_GE(s.hits, base.hits);
}
