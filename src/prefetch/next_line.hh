/**
 * @file
 * Next-line prefetcher (the paper's L1 prefetcher): on every
 * demand access, prefetch the sequentially next cache line.
 */

#ifndef RLR_PREFETCH_NEXT_LINE_HH
#define RLR_PREFETCH_NEXT_LINE_HH

#include "cache/prefetcher.hh"

namespace rlr::prefetch
{

/** Degree-1 sequential prefetcher. */
class NextLinePrefetcher : public cache::Prefetcher
{
  public:
    /**
     * @param on_miss_only issue only on demand misses (the usual
     *        hardware design; firing on every access floods the
     *        hierarchy with redundant prefetch traffic)
     */
    explicit NextLinePrefetcher(bool on_miss_only = true);

    void bind(const cache::CacheGeometry &geom) override;
    void observe(uint64_t pc, uint64_t address, bool hit,
                 std::vector<cache::PrefetchRequest> &out) override;
    std::string name() const override { return "next-line"; }

  private:
    bool on_miss_only_;
};

} // namespace rlr::prefetch

#endif // RLR_PREFETCH_NEXT_LINE_HH
