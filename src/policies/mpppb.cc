#include "policies/mpppb.hh"

#include <algorithm>

#include "util/bits.hh"
#include "util/logging.hh"

namespace rlr::policies
{

MpppbPolicy::MpppbPolicy(MpppbConfig config) : config_(config)
{
    util::ensure(util::isPowerOfTwo(config_.table_entries),
                 "MPPPB: table_entries must be a power of two");
}

void
MpppbPolicy::bind(const cache::CacheGeometry &geom)
{
    ways_ = geom.ways;
    num_sets_ = geom.numSets();
    clock_ = 0;
    lines_.assign(static_cast<size_t>(num_sets_) * ways_,
                  LineState{});
    weights_.assign(static_cast<size_t>(kNumFeatures) *
                        config_.table_entries,
                    0);
}

MpppbPolicy::LineState &
MpppbPolicy::line(uint32_t set, uint32_t way)
{
    return lines_[static_cast<size_t>(set) * ways_ + way];
}

std::array<uint32_t, MpppbPolicy::kNumFeatures>
MpppbPolicy::featureIndices(uint64_t pc, uint64_t address,
                            trace::AccessType type) const
{
    const uint32_t mask = config_.table_entries - 1;
    const unsigned bits = util::ceilLog2(config_.table_entries);
    std::array<uint32_t, kNumFeatures> idx{};
    // Perspective 1: the PC itself.
    idx[0] = static_cast<uint32_t>(util::foldXor(pc >> 2, bits)) &
             mask;
    // Perspective 2: PC xor high address bits (data structure).
    idx[1] = static_cast<uint32_t>(
                 util::foldXor((pc >> 2) ^ (address >> 16), bits)) &
             mask;
    // Perspective 3: cache-line address bits.
    idx[2] = static_cast<uint32_t>(
                 util::foldXor(address >> 6, bits)) &
             mask;
    // Perspective 4: access type (coarse, few live entries).
    idx[3] = static_cast<uint32_t>(type) & mask;
    return idx;
}

int
MpppbPolicy::sum(
    const std::array<uint32_t, kNumFeatures> &idx) const
{
    int total = 0;
    for (size_t f = 0; f < kNumFeatures; ++f)
        total += weights_[f * config_.table_entries + idx[f]];
    return total;
}

void
MpppbPolicy::train(const std::array<uint32_t, kNumFeatures> &idx,
                   bool reused)
{
    const int s = sum(idx);
    if (reused && s > config_.margin)
        return;
    if (!reused && s < -config_.margin)
        return;
    for (size_t f = 0; f < kNumFeatures; ++f) {
        int16_t &w = weights_[f * config_.table_entries + idx[f]];
        if (reused && w < config_.weight_max)
            ++w;
        else if (!reused && w > -config_.weight_max)
            --w;
    }
}

int
MpppbPolicy::predict(uint64_t pc, uint64_t address,
                     trace::AccessType type) const
{
    return sum(featureIndices(pc, address, type));
}

uint32_t
MpppbPolicy::findVictim(const cache::AccessContext &ctx,
                        std::span<const cache::BlockView> blocks)
{
    (void)blocks;
    // Bypass confidently dead fills.
    if (config_.allow_bypass && ctx.allow_bypass &&
        ctx.type != trace::AccessType::Writeback) {
        const int s =
            predict(ctx.pc, ctx.full_addr, ctx.type);
        if (s < -config_.bypass_margin)
            return kBypass;
    }

    const size_t base = static_cast<size_t>(ctx.set) * ways_;
    // Prefer a predicted-dead line; else the least recently used.
    uint32_t victim = ways_;
    uint64_t oldest_dead = ~0ULL;
    for (uint32_t w = 0; w < ways_; ++w) {
        const LineState &ls = lines_[base + w];
        if (ls.predicted_dead && ls.last_use < oldest_dead) {
            oldest_dead = ls.last_use;
            victim = w;
        }
    }
    if (victim != ways_)
        return victim;
    victim = 0;
    uint64_t oldest = lines_[base].last_use;
    for (uint32_t w = 1; w < ways_; ++w) {
        if (lines_[base + w].last_use < oldest) {
            oldest = lines_[base + w].last_use;
            victim = w;
        }
    }
    return victim;
}

void
MpppbPolicy::onAccess(const cache::AccessContext &ctx)
{
    LineState &ls = line(ctx.set, ctx.way);
    if (ctx.hit && ls.trained_sample &&
        trace::isDemand(ctx.type)) {
        // The line was reused: positive training for the features
        // captured at its previous access.
        train(ls.feature_idx, true);
    }
    ls.feature_idx =
        featureIndices(ctx.pc, ctx.full_addr, ctx.type);
    ls.trained_sample = true;
    ls.last_use = ++clock_;
    // Re-predict the line's fate with the fresh features.
    ls.predicted_dead =
        sum(ls.feature_idx) < config_.threshold;
}

void
MpppbPolicy::onEviction(uint32_t set, uint32_t way,
                        const cache::BlockView &block)
{
    (void)block;
    LineState &ls = line(set, way);
    if (ls.trained_sample) {
        // Evicted without reuse: negative training.
        train(ls.feature_idx, false);
        ls.trained_sample = false;
    }
}

cache::StorageOverhead
MpppbPolicy::overhead() const
{
    cache::StorageOverhead o;
    // Per-line predicted-dead bit + sampled feature state, plus
    // the perceptron tables — the paper's Table I lists 28KB for
    // a 2MB/16-way LLC.
    o.bits_per_line = 1 + 5;
    const double table_bits =
        static_cast<double>(kNumFeatures) *
        config_.table_entries * 6.0;
    o.global_bits = table_bits + 64;
    return o;
}

} // namespace rlr::policies
