/**
 * @file
 * Regenerates Table I: hardware storage overhead of each
 * replacement policy for a 16-way 2MB LLC (and the 8MB multicore
 * LLC for RLR, quoted in the abstract).
 */

#include "bench/common.hh"
#include "core/policy_factory.hh"

using namespace rlr;

int
main(int argc, char **argv)
{
    auto parser = bench::makeParser(
        "Table I: storage overhead per policy (16-way 2MB LLC)");
    if (!parser.parse(argc, argv))
        return 0;
    const auto opt = bench::makeOptions(parser);

    cache::CacheGeometry llc2mb;
    llc2mb.name = "LLC";
    llc2mb.size_bytes = 2 * 1024 * 1024;
    llc2mb.ways = 16;

    cache::CacheGeometry llc8mb = llc2mb;
    llc8mb.size_bytes = 8 * 1024 * 1024;

    std::vector<std::string> policies = opt.policies;
    if (policies.empty()) {
        policies = {"LRU",    "DRRIP",   "KPC-R",  "MPPPB",
                    "SHiP",   "SHiP++",  "Hawkeye", "Glider",
                    "EVA",    "PDP",     "RLR",    "RLR-unopt"};
    }

    util::Table table({"Policy", "Uses PC", "2MB LLC (KB)",
                       "8MB LLC (KB)"});
    for (const auto &name : policies) {
        auto policy = core::makePolicy(name, opt.seed);
        policy->bind(llc2mb);
        const double kb2 = policy->overhead().totalKiB(llc2mb);
        auto policy8 = core::makePolicy(name, opt.seed);
        policy8->bind(llc8mb);
        const double kb8 = policy8->overhead().totalKiB(llc8mb);
        table.addRow({policy->name(),
                      policy->usesPc() ? "Yes" : "No",
                      util::Table::fmt(kb2, 2),
                      util::Table::fmt(kb8, 2)});
    }

    std::puts("=== Table I: replacement policy storage overhead ===");
    bench::emit(opt, table);
    std::puts("\nPaper reference (2MB): LRU 16KB, DRRIP 8KB, KPC "
              "8.57KB, MPPPB 28KB, SHiP 14KB, SHiP++ 20KB, "
              "Hawkeye 28KB, Glider 61.6KB, RLR 16.75KB "
              "(RLR 8MB: 67KB).");
    return 0;
}
