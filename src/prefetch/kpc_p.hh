/**
 * @file
 * Simplified KPC-P prefetcher (Kim et al., "Kill the Program
 * Counter", 2017). The original couples a signature-based stream
 * predictor with per-prefetch confidence used to pick the fill
 * level; we reproduce the behaviours the paper's evaluation
 * depends on: confidence-tagged prefetches and suppression of
 * low-confidence prefetches at L2 (they still fill the LLC).
 *
 * Used by the `ablation_kpcp` experiment, where the paper swaps
 * the L2 IP-stride prefetcher for KPC-P and compares KPC-R vs RLR.
 */

#ifndef RLR_PREFETCH_KPC_P_HH
#define RLR_PREFETCH_KPC_P_HH

#include <vector>

#include "cache/prefetcher.hh"
#include "util/sat_counter.hh"

namespace rlr::prefetch
{

/** Configuration of the simplified KPC-P. */
struct KpcPConfig
{
    /** Signature table entries. */
    uint32_t table_entries = 512;
    /** Maximum lookahead degree at full confidence. */
    uint32_t max_degree = 2;
    /** Confidence counter bits. */
    unsigned confidence_bits = 3;
};

/**
 * Signature-based stream prefetcher with confidence throttling.
 * Signatures are built from per-page delta history (no PC), true
 * to KPC's "no program counter" premise.
 */
class KpcPPrefetcher : public cache::Prefetcher
{
  public:
    explicit KpcPPrefetcher(KpcPConfig config = {});

    void bind(const cache::CacheGeometry &geom) override;
    void observe(uint64_t pc, uint64_t address, bool hit,
                 std::vector<cache::PrefetchRequest> &out) override;
    std::string name() const override { return "kpc-p"; }

  private:
    struct Entry
    {
        uint64_t page_tag = 0;
        uint64_t last_line = 0;
        int64_t last_delta = 0;
        /** Stream cursor: most advanced line already prefetched. */
        int64_t pf_cursor = 0;
        bool cursor_valid = false;
        util::SatCounter confidence;
        bool valid = false;
    };

    KpcPConfig config_;
    std::vector<Entry> table_;
};

} // namespace rlr::prefetch

#endif // RLR_PREFETCH_KPC_P_HH
