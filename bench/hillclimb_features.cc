/**
 * @file
 * Supplementary experiment: the Section III-B hill-climbing
 * feature selection. Greedy forward selection over the Table II
 * feature groups, reporting which features the automated flow
 * picks — the paper's run selects five (line preuse, line last
 * access type, line hits since insertion, line recency, plus
 * access preuse, which RLR then drops for hardware cost).
 */

#include "bench/common.hh"
#include "ml/analysis.hh"

using namespace rlr;

int
main(int argc, char **argv)
{
    auto parser = bench::makeParser(
        "Hill-climbing feature selection (Section III-B)");
    parser.addOption("rounds", "4", "Maximum selected features");
    parser.addOption("workload", "471.omnetpp",
                     "Workload to climb on");
    if (!parser.parse(argc, argv))
        return 0;
    auto opt = bench::makeOptions(parser);
    const auto rounds =
        static_cast<unsigned>(parser.getUint("rounds"));
    const std::string workload = parser.get("workload");

    sim::SimParams p = opt.params;
    // Hill climbing trains many agents; keep the trace small.
    p.sim_instructions = std::min<uint64_t>(
        opt.rl_instructions, 150'000);
    const auto trace = sim::captureLlcTrace(workload, p);
    if (trace.empty()) {
        std::puts("empty LLC trace; nothing to do");
        return 0;
    }
    ml::OfflineSimulator osim(ml::OfflineConfig{}, &trace);

    // Candidate groups: the ones the heat map flags, plus a few
    // controls the paper found unimportant.
    const std::vector<ml::FeatureGroup> candidates = {
        ml::FeatureGroup::AccessPreuse,
        ml::FeatureGroup::LinePreuse,
        ml::FeatureGroup::LineLastType,
        ml::FeatureGroup::LineHits,
        ml::FeatureGroup::LineRecency,
        ml::FeatureGroup::LineAgeLast,
        ml::FeatureGroup::LineOffset,
        ml::FeatureGroup::SetNumber,
    };

    ml::AgentConfig cfg;
    cfg.seed = opt.seed;
    const auto result =
        ml::hillClimb(osim, cfg, candidates, 1, rounds);

    std::printf("=== Hill climbing on %s ===\n", workload.c_str());
    for (size_t i = 0; i < result.selected.size(); ++i) {
        std::printf("round %zu: + %-28s -> demand hit rate "
                    "%.2f%%\n",
                    i + 1,
                    std::string(ml::featureGroupName(
                        result.selected[i]))
                        .c_str(),
                    100.0 * result.hit_rates[i]);
    }
    if (result.selected.empty())
        std::puts("(no feature improved over the empty set)");
    std::puts("\nPaper: the climb converges on ~5 features — "
              "preuse, last access type, hits since insertion, "
              "recency — which define RLR.");
    return 0;
}
