#include "policies/belady.hh"

#include <algorithm>

#include "cache/geometry.hh"
#include "util/logging.hh"

namespace rlr::policies
{

BeladyOracle::BeladyOracle(const trace::LlcTrace &trace)
{
    length_ = trace.size();
    for (uint64_t i = 0; i < trace.size(); ++i) {
        const uint64_t line =
            cache::CacheGeometry::lineAddress(trace[i].address);
        positions_[line].push_back(i);
    }
}

uint64_t
BeladyOracle::nextUse(uint64_t line_addr, uint64_t seq) const
{
    const auto it = positions_.find(line_addr);
    if (it == positions_.end())
        return kNever;
    const auto &vec = it->second;
    const auto pos = std::upper_bound(vec.begin(), vec.end(), seq);
    return pos == vec.end() ? kNever : *pos;
}

BeladyPolicy::BeladyPolicy(
    std::shared_ptr<const BeladyOracle> oracle, bool allow_bypass)
    : oracle_(std::move(oracle)), allow_bypass_(allow_bypass)
{
    util::ensure(oracle_ != nullptr, "BeladyPolicy: null oracle");
}

void
BeladyPolicy::bind(const cache::CacheGeometry &geom)
{
    (void)geom;
}

uint32_t
BeladyPolicy::findVictim(const cache::AccessContext &ctx,
                         std::span<const cache::BlockView> blocks)
{
    uint32_t victim = 0;
    uint64_t farthest = 0;
    for (uint32_t w = 0; w < blocks.size(); ++w) {
        const uint64_t next =
            oracle_->nextUse(blocks[w].address, seq_);
        if (next == BeladyOracle::kNever)
            return w;
        if (next > farthest) {
            farthest = next;
            victim = w;
        }
    }
    if (allow_bypass_ && ctx.allow_bypass &&
        ctx.type != trace::AccessType::Writeback) {
        const uint64_t incoming = oracle_->nextUse(
            cache::CacheGeometry::lineAddress(ctx.full_addr), seq_);
        if (incoming > farthest)
            return kBypass;
    }
    return victim;
}

void
BeladyPolicy::onAccess(const cache::AccessContext &ctx)
{
    (void)ctx;
}

cache::StorageOverhead
BeladyPolicy::overhead() const
{
    // Not implementable in hardware; reported as zero.
    return {};
}

} // namespace rlr::policies
