# Empty compiler generated dependencies file for test_replay_agent.
# This may be replaced when dependencies are built.
