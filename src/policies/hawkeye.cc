#include "policies/hawkeye.hh"

#include <algorithm>

#include "util/bits.hh"
#include "util/logging.hh"

namespace rlr::policies
{

HawkeyePolicy::HawkeyePolicy(HawkeyeConfig config) : config_(config)
{
    util::ensure(config_.rrpv_bits >= 1 && config_.rrpv_bits <= 8,
                 "Hawkeye: bad RRPV width");
    util::ensure(config_.sampled_sets >= 1,
                 "Hawkeye: need at least one sampled set");
    util::ensure(config_.history_factor >= 1,
                 "Hawkeye: zero OPTgen history window");
    util::ensure(config_.predictor_bits >= 1 &&
                     config_.predictor_bits <= 24,
                 "Hawkeye: bad predictor index width");
    util::ensure(config_.counter_bits >= 1 &&
                     config_.counter_bits <= 8,
                 "Hawkeye: bad predictor counter width");
    max_rrpv_ =
        static_cast<uint8_t>((1u << config_.rrpv_bits) - 1);
}

void
HawkeyePolicy::bind(const cache::CacheGeometry &geom)
{
    ways_ = geom.ways;
    num_sets_ = geom.numSets();
    lines_.assign(static_cast<size_t>(num_sets_) * ways_,
                  LineState{});
    for (auto &ls : lines_)
        ls.rrpv = max_rrpv_;

    const uint32_t sampled =
        std::min(config_.sampled_sets, num_sets_);
    sample_period_ = std::max(1u, num_sets_ / sampled);
    history_len_ = config_.history_factor * ways_;
    samplers_.assign(sampled, SamplerSet{});
    for (auto &s : samplers_)
        s.occupancy.assign(history_len_, 0);

    // Counters start at the friendly threshold so a cold predictor
    // behaves like LRU rather than bypassing everything.
    const uint64_t threshold = 1ULL << (config_.counter_bits - 1);
    predictor_.assign(1ULL << config_.predictor_bits,
                      util::SatCounter(config_.counter_bits,
                                       threshold));
}

HawkeyePolicy::LineState &
HawkeyePolicy::line(uint32_t set, uint32_t way)
{
    return lines_[static_cast<size_t>(set) * ways_ + way];
}

uint32_t
HawkeyePolicy::pcSignature(uint64_t pc) const
{
    return static_cast<uint32_t>(
        util::foldXor(pc >> 2, config_.predictor_bits));
}

HawkeyePolicy::SamplerSet *
HawkeyePolicy::sampler(uint32_t set)
{
    if (set % sample_period_ != 0)
        return nullptr;
    const uint32_t idx = set / sample_period_;
    if (idx >= samplers_.size())
        return nullptr;
    return &samplers_[idx];
}

bool
HawkeyePolicy::predictsFriendly(uint64_t pc) const
{
    const auto &ctr = predictor_[pcSignature(pc)];
    return ctr.value() >= (ctr.maxValue() + 1) / 2;
}

void
HawkeyePolicy::trainOnSample(SamplerSet &samp, uint64_t line_addr,
                             uint32_t pc_sig)
{
    const uint64_t now = samp.time;
    const auto it = samp.entries.find(line_addr);
    if (it != samp.entries.end()) {
        const uint64_t last = it->second.first;
        const uint32_t last_sig = it->second.second;
        const uint64_t span = now - last;
        if (span < history_len_) {
            // OPTgen: the interval fits the history window. It is
            // an OPT hit iff no quantum in [last, now) is at full
            // occupancy.
            bool opt_hit = true;
            for (uint64_t t = last; t < now; ++t) {
                if (samp.occupancy[t % history_len_] >= ways_) {
                    opt_hit = false;
                    break;
                }
            }
            if (opt_hit) {
                for (uint64_t t = last; t < now; ++t)
                    ++samp.occupancy[t % history_len_];
                ++predictor_[last_sig];
            } else {
                --predictor_[last_sig];
            }
        } else {
            // Reuse distance beyond the window: OPT miss.
            --predictor_[last_sig];
        }
        it->second = {now, pc_sig};
    } else {
        samp.entries.emplace(line_addr, std::make_pair(now, pc_sig));
    }

    // Advance time and clear the occupancy slot being recycled.
    ++samp.time;
    samp.occupancy[samp.time % history_len_] = 0;

    // Bound the sampler: drop entries that fell out of the window.
    if (samp.entries.size() > 2ULL * history_len_) {
        for (auto e = samp.entries.begin();
             e != samp.entries.end();) {
            if (samp.time - e->second.first >= history_len_)
                e = samp.entries.erase(e);
            else
                ++e;
        }
    }
}

uint32_t
HawkeyePolicy::findVictim(const cache::AccessContext &ctx,
                          std::span<const cache::BlockView> blocks)
{
    (void)blocks;
    const size_t base = static_cast<size_t>(ctx.set) * ways_;

    // Prefer a cache-averse line.
    for (uint32_t w = 0; w < ways_; ++w) {
        if (lines_[base + w].rrpv == max_rrpv_)
            return w;
    }
    // All friendly: evict the oldest and detrain its PC.
    uint32_t victim = 0;
    uint8_t oldest = 0;
    for (uint32_t w = 0; w < ways_; ++w) {
        if (lines_[base + w].rrpv >= oldest) {
            oldest = lines_[base + w].rrpv;
            victim = w;
        }
    }
    --predictor_[lines_[base + victim].pc_sig];
    return victim;
}

void
HawkeyePolicy::onAccess(const cache::AccessContext &ctx)
{
    LineState &ls = line(ctx.set, ctx.way);

    if (ctx.type == trace::AccessType::Writeback) {
        if (!ctx.hit) {
            // Writeback fills are averse but never trained.
            ls.rrpv = max_rrpv_;
            ls.pc_sig = 0;
            ls.friendly = false;
        }
        return;
    }

    // Prefetch accesses train and predict in their own signature
    // space, as in the original (a PC whose demand loads are
    // friendly may still issue dead prefetches).
    uint32_t sig = pcSignature(ctx.pc);
    if (ctx.type == trace::AccessType::Prefetch)
        sig = (sig ^ 0x1555u) & ((1u << config_.predictor_bits) - 1);

    // Feed the sampled-set OPTgen model (demand + prefetch).
    if (SamplerSet *samp = sampler(ctx.set)) {
        trainOnSample(*samp,
                      cache::CacheGeometry::lineAddress(
                          ctx.full_addr),
                      sig);
    }

    const auto &ctr = predictor_[sig];
    const bool friendly =
        ctr.value() >= (ctr.maxValue() + 1) / 2;
    ls.pc_sig = sig;
    ls.friendly = friendly;
    if (!friendly) {
        ls.rrpv = max_rrpv_;
        return;
    }
    // Friendly access: take MRU position; age other friendly lines
    // on fills so "oldest friendly" stays meaningful.
    if (!ctx.hit) {
        const size_t base = static_cast<size_t>(ctx.set) * ways_;
        for (uint32_t w = 0; w < ways_; ++w) {
            if (w == ctx.way)
                continue;
            LineState &other = lines_[base + w];
            if (other.rrpv < max_rrpv_ - 1)
                ++other.rrpv;
        }
    }
    ls.rrpv = 0;
}

cache::StorageOverhead
HawkeyePolicy::overhead() const
{
    cache::StorageOverhead o;
    // 3-bit RRIP per line; predictor + sampler + OPTgen vectors as
    // globals. Matches the paper's 28KB for a 2MB/16-way LLC.
    o.bits_per_line = config_.rrpv_bits;
    const double predictor_bits =
        static_cast<double>(1ULL << config_.predictor_bits) *
        config_.counter_bits;
    // Sampler entries store compressed address tags plus a packed
    // (time, signature) pair; the occupancy vectors are 4-bit
    // saturating counts. This matches the original's ~16KB
    // sampler+OPTgen budget (total 28KB at 2MB).
    const double sampler_bits =
        static_cast<double>(config_.sampled_sets) *
        (config_.history_factor * 16.0) * 13.0;
    o.global_bits = predictor_bits + sampler_bits;
    return o;
}

} // namespace rlr::policies
