#include "util/args.hh"

#include <cstdlib>
#include "util/format.hh"
#include <iostream>

#include "util/logging.hh"

namespace rlr::util
{

ArgParser::ArgParser(std::string description)
    : description_(std::move(description))
{
    addFlag("help", "Print this help text and exit");
}

void
ArgParser::addOption(const std::string &name, const std::string &def,
                     const std::string &help)
{
    options_[name] = Option{def, help, false};
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    options_[name] = Option{"0", help, true};
}

bool
ArgParser::parse(int argc, const char *const *argv)
{
    if (argc > 0)
        program_ = argv[0];
    raw_args_.assign(argv, argv + argc);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected positional argument '{}'", arg);
        arg = arg.substr(2);

        std::string value;
        bool has_value = false;
        if (const auto eq = arg.find('='); eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_value = true;
        }

        const auto it = options_.find(arg);
        if (it == options_.end())
            fatal("unknown option '--{}'\n{}", arg, usage());

        if (it->second.is_flag) {
            values_[arg] = has_value ? value : "1";
        } else if (has_value) {
            values_[arg] = value;
        } else if (i + 1 < argc) {
            values_[arg] = argv[++i];
        } else {
            fatal("option '--{}' requires a value", arg);
        }
    }
    if (getFlag("help")) {
        std::cout << usage();
        return false;
    }
    return true;
}

std::string
ArgParser::get(const std::string &name) const
{
    const auto vit = values_.find(name);
    if (vit != values_.end())
        return vit->second;
    const auto oit = options_.find(name);
    ensure(oit != options_.end(), "ArgParser: unregistered option");
    return oit->second.def;
}

int64_t
ArgParser::getInt(const std::string &name) const
{
    return std::strtoll(get(name).c_str(), nullptr, 0);
}

uint64_t
ArgParser::getUint(const std::string &name) const
{
    return std::strtoull(get(name).c_str(), nullptr, 0);
}

double
ArgParser::getDouble(const std::string &name) const
{
    return std::strtod(get(name).c_str(), nullptr);
}

bool
ArgParser::getFlag(const std::string &name) const
{
    const std::string v = get(name);
    return v == "1" || v == "true" || v == "yes";
}

std::vector<std::string>
ArgParser::getList(const std::string &name) const
{
    std::vector<std::string> out;
    const std::string v = get(name);
    size_t start = 0;
    while (start <= v.size()) {
        const size_t comma = v.find(',', start);
        const std::string item =
            v.substr(start, comma == std::string::npos
                                ? std::string::npos
                                : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

std::string
ArgParser::usage() const
{
    std::string out = util::format("{}\n\nUsage: {} [options]\n\n",
                                  description_, program_);
    for (const auto &[name, opt] : options_) {
        out += util::format("  --{:<22} {}", name, opt.help);
        if (!opt.is_flag)
            out += util::format(" (default: {})", opt.def);
        out += '\n';
    }
    return out;
}

} // namespace rlr::util
