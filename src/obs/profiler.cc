#include "obs/profiler.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "obs/chrome_trace.hh"
#include "stats/export.hh"
#include "stats/registry.hh"
#include "util/format.hh"
#include "util/histogram.hh"
#include "util/logging.hh"

namespace rlr::obs
{

namespace profdetail
{

/** Raw-span ring capacity per thread (power of two). */
constexpr size_t kRingCap = 4096;
/** log2(ns) buckets: covers 1ns .. ~584 years. */
constexpr size_t kHistBuckets = 64;

/** One call-tree node of one thread. */
struct Node
{
    Node(const char *n, Node *p, uint32_t s)
        : name(n), parent(p), shift(s)
    {
    }

    /** Site name; compared by content (cross-TU literals merge
     *  at collect() time, pointer-compare is only a fast path). */
    const char *name;
    Node *parent;
    /** Sampling shift declared at this site (1-in-2^shift). */
    uint32_t shift;
    uint64_t calls = 0;
    uint64_t total_ns = 0;
    util::Histogram log2_ns{kHistBuckets, 1};
    std::vector<std::unique_ptr<Node>> children;
};

struct SpanSlot
{
    const Node *node = nullptr;
    uint64_t start_ns = 0;
    uint64_t duration_ns = 0;
};

/** All profiling state of one thread; created lazily, kept for
 *  the process lifetime (collect() reads exited threads too). */
struct ThreadState
{
    Node root{"", nullptr, 0};
    Node *current = &root;
    /** Depth of the suppressed (sampled-out) subtree, 0 = live. */
    uint32_t suppress = 0;
    /** Per-thread sample tick shared by every sampled site. */
    uint64_t tick = 0;
    /** Spans recorded (post-sampling). */
    uint64_t spans = 0;
    std::vector<SpanSlot> ring{kRingCap};
    uint64_t ring_next = 0;
    /** Registration index (ProfileSpan::thread). */
    uint32_t index = 0;
};

namespace
{

std::mutex g_registry_mutex;
std::atomic<uint64_t> g_epoch_ns{0};

std::vector<std::unique_ptr<ThreadState>> &
states()
{
    static std::vector<std::unique_ptr<ThreadState>> v;
    return v;
}

thread_local ThreadState *t_state = nullptr;

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

ThreadState &
threadState()
{
    if (t_state == nullptr) {
        auto st = std::make_unique<ThreadState>();
        std::scoped_lock lock(g_registry_mutex);
        st->index = static_cast<uint32_t>(states().size());
        t_state = st.get();
        states().push_back(std::move(st));
    }
    return *t_state;
}

void
zeroTree(Node &node)
{
    node.calls = 0;
    node.total_ns = 0;
    node.log2_ns.reset();
    for (auto &c : node.children)
        zeroTree(*c);
}

} // namespace

} // namespace profdetail

void
ProfScope::enter(const char *name, uint32_t shift)
{
    using profdetail::Node;
    profdetail::ThreadState &s = profdetail::threadState();
    state_ = &s;

    // Sampled-out scopes (and anything nested inside one) only
    // bump a suppression depth: the tree stays coherent because a
    // child span is never recorded under a skipped parent.
    if (s.suppress != 0 ||
        (shift != 0 &&
         (s.tick++ & ((1ULL << shift) - 1)) != 0)) {
        ++s.suppress;
        mode_ = Mode::Suppressed;
        return;
    }

    Node *node = nullptr;
    for (auto &c : s.current->children) {
        if (c->name == name ||
            std::string_view(c->name) == name) {
            node = c.get();
            break;
        }
    }
    if (node == nullptr) {
        s.current->children.push_back(
            std::make_unique<Node>(name, s.current, shift));
        node = s.current->children.back().get();
    }
    ++node->calls;
    s.current = node;
    mode_ = Mode::Recording;
    start_ns_ = profdetail::nowNs();
}

void
ProfScope::leave()
{
    profdetail::ThreadState &s = *state_;
    if (mode_ == Mode::Suppressed) {
        --s.suppress;
        return;
    }
    const uint64_t dur = profdetail::nowNs() - start_ns_;
    profdetail::Node *node = s.current;
    node->total_ns += dur;
    node->log2_ns.sample(
        static_cast<uint64_t>(std::bit_width(dur)));
    s.current = node->parent;

    profdetail::SpanSlot &slot =
        s.ring[s.ring_next & (profdetail::kRingCap - 1)];
    ++s.ring_next;
    slot.node = node;
    slot.start_ns = start_ns_;
    slot.duration_ns = dur;
    ++s.spans;
}

Profiler &
Profiler::instance()
{
    static Profiler p;
    return p;
}

void
Profiler::setEnabled(bool on)
{
    if (on &&
        profdetail::g_epoch_ns.load(std::memory_order_relaxed) ==
            0) {
        profdetail::g_epoch_ns.store(profdetail::nowNs(),
                                     std::memory_order_relaxed);
    }
    enabled_.store(on, std::memory_order_relaxed);
}

void
Profiler::reset()
{
    std::scoped_lock lock(profdetail::g_registry_mutex);
    for (auto &st : profdetail::states()) {
        profdetail::zeroTree(st->root);
        st->current = &st->root;
        st->suppress = 0;
        st->tick = 0;
        st->spans = 0;
        st->ring_next = 0;
    }
    profdetail::g_epoch_ns.store(profdetail::nowNs(),
                                 std::memory_order_relaxed);
}

uint64_t
Profiler::threadSpans() const
{
    return profdetail::t_state != nullptr
               ? profdetail::t_state->spans
               : 0;
}

namespace
{

/** Aggregation node keyed by name (merges threads and cross-TU
 *  duplicate name literals). */
struct MergeNode
{
    uint64_t recorded_calls = 0;
    uint64_t total_ns = 0;
    uint32_t shift = 0;
    util::Histogram log2_ns{profdetail::kHistBuckets, 1};
    std::map<std::string, MergeNode> children;
};

void
mergeTree(const profdetail::Node &src,
          std::map<std::string, MergeNode> &out)
{
    for (const auto &c : src.children) {
        if (c->calls == 0)
            continue;
        MergeNode &m = out[c->name];
        if (m.recorded_calls == 0)
            m.shift = c->shift;
        m.recorded_calls += c->calls;
        m.total_ns += c->total_ns;
        m.log2_ns.merge(c->log2_ns);
        mergeTree(*c, m.children);
    }
}

uint64_t
shiftUp(uint64_t v, uint32_t shift)
{
    return shift >= 64 ? 0 : v << shift;
}

/** log2 bucket index -> power-of-two nanosecond upper bound. */
uint64_t
bucketToNs(uint64_t bucket)
{
    return bucket >= 64 ? ~0ULL : (1ULL << bucket);
}

ProfileNode
convert(const std::string &name, const MergeNode &m,
        uint32_t path_shift, uint64_t &sites)
{
    ++sites;
    const uint32_t shift = path_shift + m.shift;
    ProfileNode out;
    out.name = name;
    out.recorded_calls = m.recorded_calls;
    out.calls = shiftUp(m.recorded_calls, shift);
    out.total_ns = shiftUp(m.total_ns, shift);
    uint64_t child_total = 0;
    for (const auto &[cn, cm] : m.children) {
        out.children.push_back(convert(cn, cm, shift, sites));
        child_total += out.children.back().total_ns;
    }
    out.self_ns = out.total_ns > child_total
                      ? out.total_ns - child_total
                      : 0;
    if (m.log2_ns.count() > 0) {
        out.p50_ns = bucketToNs(m.log2_ns.quantile(0.50));
        out.p90_ns = bucketToNs(m.log2_ns.quantile(0.90));
        out.p99_ns = bucketToNs(m.log2_ns.quantile(0.99));
    }
    return out;
}

void
spanPath(const profdetail::Node *node, std::string &out)
{
    if (node == nullptr || node->parent == nullptr) {
        if (node != nullptr)
            out = node->name;
        return;
    }
    spanPath(node->parent, out);
    if (!out.empty())
        out += ';';
    out += node->name;
}

} // namespace

ProfileData
Profiler::collect() const
{
    std::scoped_lock lock(profdetail::g_registry_mutex);
    ProfileData data;
    const uint64_t epoch =
        profdetail::g_epoch_ns.load(std::memory_order_relaxed);

    std::map<std::string, MergeNode> roots;
    for (const auto &st : profdetail::states()) {
        if (st->spans == 0)
            continue;
        ++data.threads;
        data.spans += st->spans;
        mergeTree(st->root, roots);

        const uint64_t kept = std::min<uint64_t>(
            st->ring_next, profdetail::kRingCap);
        const uint64_t first = st->ring_next - kept;
        for (uint64_t j = first; j < st->ring_next; ++j) {
            const profdetail::SpanSlot &slot =
                st->ring[j & (profdetail::kRingCap - 1)];
            ProfileSpan span;
            spanPath(slot.node, span.path);
            span.thread = st->index;
            span.start_ns = slot.start_ns > epoch
                                ? slot.start_ns - epoch
                                : 0;
            span.duration_ns = slot.duration_ns;
            data.recent.push_back(std::move(span));
        }
    }
    for (const auto &[name, m] : roots)
        data.roots.push_back(convert(name, m, 0, data.sites));
    std::stable_sort(data.recent.begin(), data.recent.end(),
                     [](const ProfileSpan &a,
                        const ProfileSpan &b) {
                         return a.start_ns < b.start_ns;
                     });
    return data;
}

namespace
{

uint64_t
zeroIf(bool stable, uint64_t v)
{
    return stable ? 0 : v;
}

void
nodeToJson(std::string &out, const ProfileNode &n, bool stable,
           int indent)
{
    const std::string pad(static_cast<size_t>(indent), ' ');
    out += pad + "{\n";
    out += pad + util::format("  \"name\": \"{}\",\n",
                              stats::json::escape(n.name));
    out += pad + util::format("  \"recorded_calls\": {},\n",
                              n.recorded_calls);
    out += pad + util::format("  \"calls\": {},\n", n.calls);
    out += pad + util::format("  \"total_ns\": {},\n",
                              zeroIf(stable, n.total_ns));
    out += pad + util::format("  \"self_ns\": {},\n",
                              zeroIf(stable, n.self_ns));
    out += pad + util::format("  \"p50_ns\": {},\n",
                              zeroIf(stable, n.p50_ns));
    out += pad + util::format("  \"p90_ns\": {},\n",
                              zeroIf(stable, n.p90_ns));
    out += pad + util::format("  \"p99_ns\": {},\n",
                              zeroIf(stable, n.p99_ns));
    out += pad + "  \"children\": [";
    for (size_t i = 0; i < n.children.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        nodeToJson(out, n.children[i], stable, indent + 4);
    }
    if (!n.children.empty())
        out += "\n" + pad + "  ";
    out += "]\n";
    out += pad + "}";
}

ProfileNode
nodeFromJson(const stats::json::Value &v)
{
    ProfileNode n;
    n.name = v.stringOr("name", "");
    n.recorded_calls = static_cast<uint64_t>(
        v.numberOr("recorded_calls", 0));
    n.calls = static_cast<uint64_t>(v.numberOr("calls", 0));
    n.total_ns =
        static_cast<uint64_t>(v.numberOr("total_ns", 0));
    n.self_ns = static_cast<uint64_t>(v.numberOr("self_ns", 0));
    n.p50_ns = static_cast<uint64_t>(v.numberOr("p50_ns", 0));
    n.p90_ns = static_cast<uint64_t>(v.numberOr("p90_ns", 0));
    n.p99_ns = static_cast<uint64_t>(v.numberOr("p99_ns", 0));
    if (const auto *kids = v.find("children");
        kids != nullptr && kids->isArray()) {
        for (const auto &kv : kids->array)
            n.children.push_back(nodeFromJson(kv));
    }
    return n;
}

void
foldNode(const ProfileNode &n, const std::string &prefix,
         std::string &out)
{
    const std::string path =
        prefix.empty() ? n.name : prefix + ";" + n.name;
    out += util::format("{} {}\n", path, n.self_ns);
    for (const auto &c : n.children)
        foldNode(c, path, out);
}

} // namespace

std::string
profileToJson(const ProfileData &data, bool stable)
{
    std::string out = "{\n";
    out += "  \"format\": \"rlr-profile\",\n";
    out += util::format("  \"threads\": {},\n", data.threads);
    out += util::format("  \"spans\": {},\n", data.spans);
    out += util::format("  \"sites\": {},\n", data.sites);
    out += "  \"tree\": [";
    for (size_t i = 0; i < data.roots.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        nodeToJson(out, data.roots[i], stable, 4);
    }
    if (!data.roots.empty())
        out += "\n  ";
    out += "]\n}\n";
    return out;
}

ProfileData
profileFromJson(const std::string &text)
{
    const auto root = stats::json::parse(text);
    if (!root.isObject() ||
        root.stringOr("format", "") != "rlr-profile") {
        throw std::runtime_error(
            "not a profile export (missing "
            "\"format\": \"rlr-profile\")");
    }
    ProfileData data;
    data.threads =
        static_cast<uint64_t>(root.numberOr("threads", 0));
    data.spans = static_cast<uint64_t>(root.numberOr("spans", 0));
    data.sites = static_cast<uint64_t>(root.numberOr("sites", 0));
    if (const auto *tree = root.find("tree");
        tree != nullptr && tree->isArray()) {
        for (const auto &v : tree->array)
            data.roots.push_back(nodeFromJson(v));
    }
    return data;
}

std::string
profileFolded(const ProfileData &data)
{
    std::string out;
    for (const auto &r : data.roots)
        foldNode(r, "", out);
    return out;
}

std::vector<TraceSpan>
profileTraceSpans(const ProfileData &data)
{
    std::vector<TraceSpan> spans;
    spans.reserve(data.recent.size());
    for (const ProfileSpan &p : data.recent) {
        TraceSpan s;
        const size_t leaf = p.path.rfind(';');
        s.name = leaf == std::string::npos
                     ? p.path
                     : p.path.substr(leaf + 1);
        s.category = "prof";
        s.start_us = p.start_ns / 1000;
        s.duration_us = p.duration_ns / 1000;
        s.pid = 2;
        s.tid = p.thread;
        s.args.emplace_back(
            "path",
            "\"" + stats::json::escape(p.path) + "\"");
        spans.push_back(std::move(s));
    }
    return spans;
}

void
describeProfilerStats(stats::Registry &reg,
                      const std::string &prefix)
{
    reg.bindCounter(
        prefix + ".enabled",
        [] { return Profiler::profilingEnabled() ? 1u : 0u; },
        "span recording active during this snapshot");
    reg.bindCounter(
        prefix + ".thread_spans",
        [] { return Profiler::instance().threadSpans(); },
        "profiler spans recorded by the snapshotting thread");
}

} // namespace rlr::obs
