/**
 * @file
 * In-memory LLC access traces and a compact binary file format.
 *
 * The paper's flow captures (PC, access type, address) tuples at the
 * LLC under an LRU policy and feeds them to an offline simulator for
 * RL training and the Belady oracle. LlcTrace is that capture; the
 * file format lets experiments reuse captures across binaries.
 */

#ifndef RLR_TRACE_TRACE_IO_HH
#define RLR_TRACE_TRACE_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace rlr::trace
{

/** An ordered sequence of LLC accesses. */
class LlcTrace
{
  public:
    LlcTrace() = default;
    explicit LlcTrace(std::vector<LlcAccess> accesses);

    void append(const LlcAccess &access) { accesses_.push_back(access); }
    void clear() { accesses_.clear(); }
    size_t size() const { return accesses_.size(); }
    bool empty() const { return accesses_.empty(); }

    const LlcAccess &operator[](size_t i) const { return accesses_[i]; }
    const std::vector<LlcAccess> &accesses() const { return accesses_; }

    auto begin() const { return accesses_.begin(); }
    auto end() const { return accesses_.end(); }

    /** Count of accesses with the given type. */
    uint64_t countType(AccessType type) const;

    /** Number of distinct cache-line addresses. */
    uint64_t distinctLines(unsigned line_bits = 6) const;

    /** Serialize to a binary file; calls fatal() on I/O error. */
    void save(const std::string &path) const;

    /** Load from a binary file; calls fatal() on error. */
    static LlcTrace load(const std::string &path);

  private:
    std::vector<LlcAccess> accesses_;
};

} // namespace rlr::trace

#endif // RLR_TRACE_TRACE_IO_HH
