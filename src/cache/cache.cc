#include "cache/cache.hh"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <typeinfo>

#include "core/rlr.hh"
#include "obs/epoch.hh"
#include "obs/event_log.hh"
#include "obs/profiler.hh"
#include "policies/lru.hh"
#include "policies/rrip.hh"
#include "policies/ship.hh"
#include "util/logging.hh"

namespace rlr::cache
{

namespace
{

std::string
typeKey(trace::AccessType type, const char *suffix)
{
    return std::string(trace::accessTypeName(type)) + "_" + suffix;
}

trace::LlcAccess
toLlcAccess(const MemRequest &req)
{
    trace::LlcAccess rec;
    rec.pc = req.pc;
    rec.address = req.address;
    rec.type = req.type;
    rec.cpu = req.cpu;
    return rec;
}

bool
verifyEnvDefault()
{
    const char *v = std::getenv("RLR_VERIFY");
    return v != nullptr && std::string_view(v) != "0";
}

} // namespace

Cache::Cache(CacheGeometry geom,
             std::unique_ptr<ReplacementPolicy> policy,
             MemoryLevel *next)
    : geom_(std::move(geom)), policy_(std::move(policy)),
      next_(next), verify_(verifyEnvDefault()), stats_(geom_.name)
{
    geom_.validate();
    util::ensure(policy_ != nullptr, "Cache: null policy");
    util::ensure(next_ != nullptr, "Cache: null next level");
    const size_t lines =
        static_cast<size_t>(geom_.numSets()) * geom_.ways;
    valid_.assign(lines, 0);
    dirty_.assign(lines, 0);
    prefetch_.assign(lines, 0);
    tag_.assign(lines, 0);
    addr_.assign(lines, 0);
    ready_at_.assign(lines, 0);
    view_scratch_.resize(geom_.ways);
    for (size_t i = 0; i < trace::kNumAccessTypes; ++i) {
        const auto t = static_cast<trace::AccessType>(i);
        type_access_[i] = &stats_.counter(typeKey(t, "access"));
        type_hit_[i] = &stats_.counter(typeKey(t, "hit"));
        type_miss_[i] = &stats_.counter(typeKey(t, "miss"));
    }
    mshr_stalls_ = &stats_.counter("mshr_stalls");
    mshr_merges_ = &stats_.counter("mshr_merges");
    evictions_ = &stats_.counter("evictions");
    writebacks_issued_ = &stats_.counter("writebacks_issued");
    bypasses_ = &stats_.counter("bypasses");
    wb_bypass_denied_ = &stats_.counter("wb_bypass_denied");
    pf_fills_skipped_ = &stats_.counter("pf_fills_skipped");
    prefetches_issued_ = &stats_.counter("prefetches_issued");
    policy_->bind(geom_);
    updateDispatch();
}

void
Cache::setPrefetcher(std::unique_ptr<Prefetcher> prefetcher)
{
    prefetcher_ = std::move(prefetcher);
    if (prefetcher_)
        prefetcher_->bind(geom_);
}

void
Cache::setEventLog(obs::EventLog *log)
{
    events_ = log;
    if (events_)
        events_->bind(geom_.numSets(), geom_.ways);
    updateDispatch();
}

void
Cache::setEpochSampler(obs::EpochSampler *sampler)
{
    epoch_ = sampler;
    if (epoch_) {
        epoch_->bind(geom_.numSets());
        epoch_->setOccupancyProvider(
            [this] { return validLines(); });
    }
    updateDispatch();
}

void
Cache::setForceGenericDispatch(bool v)
{
    force_generic_ = v;
    updateDispatch();
}

namespace
{

/**
 * Exact-type detection: derived classes (SHiP++, KPC-R, mutant
 * wrappers, external policies) must NOT match their base's
 * devirtualized instantiation — a qualified call would silently
 * skip their overrides — so this compares typeid, not
 * dynamic_cast.
 */
template <class P>
bool
isExactly(const ReplacementPolicy &p)
{
    return typeid(p) == typeid(P);
}

} // namespace

void
Cache::updateDispatch()
{
    kind_ = PolicyKind::Generic;
    if (!force_generic_) {
        const ReplacementPolicy &p = *policy_;
        if (isExactly<policies::LruPolicy>(p))
            kind_ = PolicyKind::Lru;
        else if (isExactly<policies::SrripPolicy>(p))
            kind_ = PolicyKind::Srrip;
        else if (isExactly<policies::BrripPolicy>(p))
            kind_ = PolicyKind::Brrip;
        else if (isExactly<policies::DrripPolicy>(p))
            kind_ = PolicyKind::Drrip;
        else if (isExactly<policies::ShipPolicy>(p))
            kind_ = PolicyKind::Ship;
        else if (isExactly<core::RlrPolicy>(p))
            kind_ = PolicyKind::Rlr;
    }
    const bool obs = events_ != nullptr || epoch_ != nullptr;
    // With nothing attached the body compiles hook-free (if
    // constexpr strips every observability call site), so
    // disabled tracing costs nothing beyond the one indirect call
    // every access already pays for policy dispatch.
    auto pick = [&](auto tag) -> AccessFn {
        using P = typename decltype(tag)::type;
        return obs ? &Cache::accessImpl<true, P>
                   : &Cache::accessImpl<false, P>;
    };
    switch (kind_) {
      case PolicyKind::Lru:
        access_fn_ = pick(std::type_identity<policies::LruPolicy>{});
        break;
      case PolicyKind::Srrip:
        access_fn_ =
            pick(std::type_identity<policies::SrripPolicy>{});
        break;
      case PolicyKind::Brrip:
        access_fn_ =
            pick(std::type_identity<policies::BrripPolicy>{});
        break;
      case PolicyKind::Drrip:
        access_fn_ =
            pick(std::type_identity<policies::DrripPolicy>{});
        break;
      case PolicyKind::Ship:
        access_fn_ =
            pick(std::type_identity<policies::ShipPolicy>{});
        break;
      case PolicyKind::Rlr:
        access_fn_ = pick(std::type_identity<core::RlrPolicy>{});
        break;
      case PolicyKind::Generic:
        access_fn_ = pick(std::type_identity<ReplacementPolicy>{});
        break;
    }
}

const char *
Cache::dispatchKind() const
{
    switch (kind_) {
      case PolicyKind::Lru:
        return "LRU";
      case PolicyKind::Srrip:
        return "SRRIP";
      case PolicyKind::Brrip:
        return "BRRIP";
      case PolicyKind::Drrip:
        return "DRRIP";
      case PolicyKind::Ship:
        return "SHiP";
      case PolicyKind::Rlr:
        return "RLR";
      case PolicyKind::Generic:
        break;
    }
    return "generic";
}

template <class P>
void
Cache::policyOnAccess(const AccessContext &ctx)
{
    if constexpr (std::is_same_v<P, ReplacementPolicy>)
        policy_->onAccess(ctx);
    else
        static_cast<P *>(policy_.get())->P::onAccess(ctx);
}

template <class P>
uint32_t
Cache::policyFindVictim(const AccessContext &ctx,
                        std::span<const BlockView> blocks)
{
    if constexpr (std::is_same_v<P, ReplacementPolicy>)
        return policy_->findVictim(ctx, blocks);
    else
        return static_cast<P *>(policy_.get())
            ->P::findVictim(ctx, blocks);
}

template <class P>
void
Cache::policyOnEviction(uint32_t set, uint32_t way,
                        const BlockView &block)
{
    if constexpr (std::is_same_v<P, ReplacementPolicy>)
        policy_->onEviction(set, way, block);
    else
        static_cast<P *>(policy_.get())
            ->P::onEviction(set, way, block);
}

uint32_t
Cache::lookup(uint32_t set, uint64_t tag) const
{
    const size_t base = static_cast<size_t>(set) * geom_.ways;
    const uint32_t ways = geom_.ways;
    // Branchless scan over the valid + tag lanes: no early exit,
    // so the loop vectorizes and runs in constant time per set.
    uint32_t found = kNoWay;
    for (uint32_t w = 0; w < ways; ++w) {
        const bool match =
            (valid_[base + w] != 0) & (tag_[base + w] == tag);
        found = match ? w : found;
    }
    return found;
}

uint64_t
Cache::mshrAdmit(uint64_t now)
{
    while (!inflight_.empty() && inflight_.top() <= now)
        inflight_.pop();
    if (inflight_.size() >= geom_.mshrs) {
        // All MSHRs busy: the request waits for the earliest
        // outstanding miss to complete.
        now = std::max(now, inflight_.top());
        inflight_.pop();
        ++*mshr_stalls_;
    }
    return now;
}

void
Cache::runPrefetcher(const MemRequest &req, bool hit, uint64_t now)
{
    if (!prefetcher_ || in_prefetch_)
        return;
    std::vector<PrefetchRequest> proposals;
    prefetcher_->observe(req.pc, req.address, hit, proposals);
    if (proposals.empty())
        return;

    in_prefetch_ = true;
    for (const auto &p : proposals) {
        const uint64_t line = CacheGeometry::lineAddress(p.address);
        const uint32_t set = geom_.setIndex(line);
        if (lookup(set, geom_.tag(line)) != kNoWay)
            continue; // already present or in flight
        MemRequest pf;
        pf.address = line;
        pf.pc = req.pc;
        pf.type = trace::AccessType::Prefetch;
        pf.cpu = req.cpu;
        pf.pf_confidence = static_cast<float>(p.confidence);
        ++*prefetches_issued_;
        access(pf, now);
    }
    in_prefetch_ = false;
}

uint64_t
Cache::access(const MemRequest &req, uint64_t now)
{
    return (this->*access_fn_)(req, now);
}

template <bool Obs, class P>
uint64_t
Cache::accessImpl(const MemRequest &req, uint64_t now)
{
    // Sampled 1-in-64: the access path runs tens of millions of
    // times per cell, so even two clock reads per span would show
    // up; the profile scales the estimates back up by the shift.
    RLR_PROF_SCOPE_IF_SAMPLED(profiled_, "sim.llc.access", 6);
    now += geom_.latency;
    const uint64_t line = CacheGeometry::lineAddress(req.address);
    const uint64_t tag = geom_.tag(line);
    const uint32_t set = geom_.setIndex(line);

    if (sink_) {
        trace::LlcAccess rec;
        rec.pc = req.pc;
        rec.address = req.address;
        rec.type = req.type;
        rec.cpu = req.cpu;
        sink_(rec);
    }

    uint32_t hit_way;
    {
        RLR_PROF_SCOPE_IF(profiled_, "sim.llc.lookup");
        hit_way = lookup(set, tag);
    }
    const bool demand = trace::isDemand(req.type);

    if (hit_way != kNoWay) {
        const size_t i = idx(set, hit_way);
        const bool merged = ready_at_[i] > now;
        if (demand)
            prefetch_[i] = 0;
        if (req.type == trace::AccessType::Writeback ||
            (writes_on_rfo_ && req.type == trace::AccessType::Rfo)) {
            dirty_[i] = 1;
        }
        if (merged) {
            // The line is still in flight: this access merges into
            // the outstanding MSHR and completes with it.
            countAccess(req.type, false);
            ++*mshr_merges_;
            if constexpr (Obs) {
                if (epoch_)
                    epoch_->onAccess(set, req.type, false);
                if (events_)
                    events_->onMiss(set);
            }
            if (demand)
                runPrefetcher(req, false, now);
            return std::max(now, ready_at_[i]);
        }
        countAccess(req.type, true);
        if constexpr (Obs) {
            if (epoch_)
                epoch_->onAccess(set, req.type, true);
            if (events_) {
                // Pre-update priority: the standing the line had
                // when it was hit (e.g. its RRPV before promotion).
                events_->onHit(set, hit_way, toLlcAccess(req),
                               policy_->victimPriority(set,
                                                       hit_way));
            }
        }
        AccessContext ctx;
        ctx.cpu = req.cpu;
        ctx.set = set;
        ctx.way = hit_way;
        ctx.full_addr = req.address;
        ctx.pc = req.pc;
        ctx.type = req.type;
        ctx.hit = true;
        {
            RLR_PROF_SCOPE_IF(profiled_, "sim.llc.policy");
            policyOnAccess<P>(ctx);
        }
        if (demand)
            runPrefetcher(req, true, now);
        if (verify_)
            runVerify(set);
        return now;
    }

    // Miss.
    countAccess(req.type, false);
    if constexpr (Obs) {
        if (epoch_)
            epoch_->onAccess(set, req.type, false);
        if (events_)
            events_->onMiss(set);
    }

    if (req.type == trace::AccessType::Writeback) {
        // Write-allocate on writeback: the entire line is being
        // written, so no fetch from the next level is required.
        fillImpl<Obs, P>(req, now, /*dirty=*/true);
        if (verify_)
            runVerify(set);
        return now;
    }

    const uint64_t issue = now;
    uint64_t ready = next_->access(req, issue);
    ready = std::max(ready, issue);
    // MSHR reservation carries the final (post-stall) completion
    // time: the entry frees exactly when the fill's data arrives,
    // not at the pre-stall estimate.
    const uint64_t start = mshrAdmit(issue);
    ready += start - issue;
    trackMiss(ready);

    // KPC-style fill-level control: low-confidence prefetches are
    // not installed at this level (they still filled the levels
    // below via the recursive miss path).
    const bool skip_install =
        req.type == trace::AccessType::Prefetch &&
        req.pf_confidence < pf_fill_threshold_;
    if (!skip_install) {
        fillImpl<Obs, P>(req, ready,
                         /*dirty=*/writes_on_rfo_ &&
                             req.type == trace::AccessType::Rfo);
    } else {
        ++*pf_fills_skipped_;
        if constexpr (Obs) {
            if (epoch_)
                epoch_->onBypass();
            if (events_) {
                events_->onBypass(
                    set, toLlcAccess(req),
                    BypassReason::LowConfidencePrefetch);
            }
        }
    }

    if (demand)
        runPrefetcher(req, false, now);
    if (verify_)
        runVerify(set);
    return ready;
}

template <bool Obs, class P>
bool
Cache::fillImpl(const MemRequest &req, uint64_t ready, bool dirty)
{
    RLR_PROF_SCOPE_IF(profiled_, "sim.llc.fill");
    const uint64_t line = CacheGeometry::lineAddress(req.address);
    const uint32_t set = geom_.setIndex(line);
    const size_t base = static_cast<size_t>(set) * geom_.ways;

    uint32_t way = geom_.ways;
    for (uint32_t w = 0; w < geom_.ways; ++w) {
        if (!valid_[base + w]) {
            way = w;
            break;
        }
    }

    if (way == geom_.ways) {
        RLR_PROF_SCOPE_IF(profiled_, "sim.llc.victim");
        for (uint32_t w = 0; w < geom_.ways; ++w) {
            view_scratch_[w] =
                BlockView{valid_[base + w] != 0,
                          dirty_[base + w] != 0,
                          prefetch_[base + w] != 0, addr_[base + w]};
        }
        const std::span<const BlockView> views{view_scratch_.data(),
                                              geom_.ways};
        AccessContext ctx;
        ctx.cpu = req.cpu;
        ctx.set = set;
        ctx.full_addr = req.address;
        ctx.pc = req.pc;
        ctx.type = req.type;
        ctx.hit = false;
        way = policyFindVictim<P>(ctx, views);

        if (way == ReplacementPolicy::kBypass) {
            if (req.type != trace::AccessType::Writeback) {
                ++*bypasses_;
                if constexpr (Obs) {
                    if (epoch_)
                        epoch_->onBypass();
                    if (events_) {
                        events_->onBypass(set, toLlcAccess(req),
                                          policy_->bypassReason());
                    }
                }
                return false;
            }
            // The policy wanted to bypass a writeback. Dirty data
            // has nowhere else to live, so deny the bypass and
            // re-query for a real victim.
            ++*wb_bypass_denied_;
            ctx.allow_bypass = false;
            way = policyFindVictim<P>(ctx, views);
            if (way == ReplacementPolicy::kBypass) {
                // Non-conforming policy (ignores allow_bypass):
                // last-resort way 0 rather than dropping the line.
                way = 0;
            }
        }
        util::ensure(way < geom_.ways, "Cache: bad victim way");

        const size_t vi = base + way;
        if (valid_[vi]) {
            const BlockView victim{valid_[vi] != 0, dirty_[vi] != 0,
                                   prefetch_[vi] != 0, addr_[vi]};
            if constexpr (Obs) {
                // Before onEviction, while the policy's victim
                // metadata is still live.
                const uint64_t prio =
                    policy_->victimPriority(set, way);
                if (events_) {
                    events_->onEviction(set, way, victim.address,
                                        toLlcAccess(req), prio);
                }
                if (epoch_)
                    epoch_->onEviction(prio);
            }
            policyOnEviction<P>(set, way, victim);
            ++*evictions_;
            if (victim.dirty) {
                MemRequest wb;
                wb.address = victim.address;
                wb.pc = 0;
                wb.type = trace::AccessType::Writeback;
                wb.cpu = req.cpu;
                ++*writebacks_issued_;
                next_->access(wb, ready);
            }
        }
    }

    const size_t i = base + way;
    valid_[i] = 1;
    dirty_[i] = dirty ? 1 : 0;
    prefetch_[i] = req.type == trace::AccessType::Prefetch ? 1 : 0;
    tag_[i] = geom_.tag(line);
    addr_[i] = line;
    ready_at_[i] = ready;

    AccessContext ctx;
    ctx.cpu = req.cpu;
    ctx.set = set;
    ctx.way = way;
    ctx.full_addr = req.address;
    ctx.pc = req.pc;
    ctx.type = req.type;
    ctx.hit = false;
    policyOnAccess<P>(ctx);
    if constexpr (Obs) {
        if (events_) {
            // Post-insertion priority (e.g. the inserted RRPV).
            events_->onFill(set, way, toLlcAccess(req),
                            policy_->victimPriority(set, way));
        }
    }
    return true;
}

void
Cache::runVerify(uint32_t set) const
{
    const auto views = setContents(set);
    policy_->verifyInvariants(set, views);
    const std::string err = stats::accessConsistencyError(stats_);
    if (!err.empty()) {
        throw std::logic_error("cache '" + geom_.name +
                               "' stats: " + err);
    }
}

bool
Cache::probe(uint64_t address) const
{
    const uint64_t line = CacheGeometry::lineAddress(address);
    return lookup(geom_.setIndex(line), geom_.tag(line)) != kNoWay;
}

std::vector<BlockView>
Cache::setContents(uint32_t set) const
{
    std::vector<BlockView> views(geom_.ways);
    const size_t base = static_cast<size_t>(set) * geom_.ways;
    for (uint32_t w = 0; w < geom_.ways; ++w) {
        views[w] =
            BlockView{valid_[base + w] != 0, dirty_[base + w] != 0,
                      prefetch_[base + w] != 0, addr_[base + w]};
    }
    return views;
}

void
Cache::describeStats(stats::Registry &reg,
                     const std::string &prefix)
{
    reg.bindStatSet(prefix, &stats_,
                    "per-type access counters of " + geom_.name);
    reg.bindCounter(
        prefix + ".demand_accesses",
        [this] { return demandAccesses(); }, "LD + RFO accesses");
    reg.bindCounter(prefix + ".demand_hits",
                    [this] { return demandHits(); },
                    "LD + RFO hits");
    reg.bindCounter(prefix + ".demand_misses",
                    [this] { return demandMisses(); },
                    "LD + RFO misses");
    reg.formula(
        prefix + ".demand_hit_rate",
        [this](const stats::Registry &) {
            return stats::hitRate(demandHits(), demandAccesses());
        },
        "demand hit rate in [0, 1]");
    reg.formula(
        prefix + ".policy.overhead_kib",
        [this](const stats::Registry &) {
            return policy_->overhead().totalKiB(geom_);
        },
        "replacement metadata (KiB) at this geometry");
    policy_->describeStats(reg, prefix + ".policy");
    if (prefetcher_)
        prefetcher_->describeStats(reg, prefix + ".prefetcher");
    if (events_)
        events_->describeStats(reg, prefix + ".events");
    if (epoch_)
        epoch_->describeStats(reg, prefix + ".epoch");
}

void
Cache::resetStats()
{
    stats_.reset();
    if (events_)
        events_->reset();
    if (epoch_)
        epoch_->reset();
}

void
Cache::flush()
{
    std::fill(valid_.begin(), valid_.end(), 0);
    std::fill(dirty_.begin(), dirty_.end(), 0);
    std::fill(prefetch_.begin(), prefetch_.end(), 0);
    std::fill(tag_.begin(), tag_.end(), 0);
    std::fill(addr_.begin(), addr_.end(), 0);
    std::fill(ready_at_.begin(), ready_at_.end(), 0);
    while (!inflight_.empty())
        inflight_.pop();
    resetStats();
    // The policy's metadata describes lines that no longer exist;
    // without this, stale LRU stacks / RRPVs / signatures / ages
    // would steer the first victim choices after the flush.
    policy_->reset(geom_);
}

uint64_t
Cache::demandAccesses() const
{
    return stats_.value("LD_access") + stats_.value("RFO_access");
}

uint64_t
Cache::demandHits() const
{
    return stats_.value("LD_hit") + stats_.value("RFO_hit");
}

uint64_t
Cache::demandMisses() const
{
    return stats_.value("LD_miss") + stats_.value("RFO_miss");
}

uint64_t
Cache::validLines() const
{
    uint64_t n = 0;
    for (const uint8_t v : valid_)
        n += v;
    return n;
}

} // namespace rlr::cache
