# Empty dependencies file for rlr_ml.
# This may be replaced when dependencies are built.
