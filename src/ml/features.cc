#include "ml/features.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rlr::ml
{

namespace
{

/** Normalization caps for counter features. */
constexpr uint32_t kPreuseCap = 256;
constexpr uint32_t kAgeCap = 256;
constexpr uint32_t kCountCap = 256;

/** Scalar (non-per-way) feature slots. */
constexpr size_t kAccessOffsetBase = 0; // 6 bits
constexpr size_t kAccessPreuseIdx = 6;
constexpr size_t kAccessTypeBase = 7; // 4-way one-hot
constexpr size_t kSetNumberIdx = 11;
constexpr size_t kSetAccessesIdx = 12;
constexpr size_t kSetSinceMissIdx = 13;
constexpr size_t kLineBase = 14;
constexpr size_t kLineStride = 20;

/** Per-line slot offsets within a way's 20-feature block. */
constexpr size_t kLineOffsetBase = 0; // 6 bits
constexpr size_t kLineDirtyIdx = 6;
constexpr size_t kLinePreuseIdx = 7;
constexpr size_t kLineAgeInsertIdx = 8;
constexpr size_t kLineAgeLastIdx = 9;
constexpr size_t kLineLastTypeBase = 10; // 4-way one-hot
constexpr size_t kLineCountsBase = 14;   // LD, RFO, PF, WB
constexpr size_t kLineHitsIdx = 18;
constexpr size_t kLineRecencyIdx = 19;

} // namespace

std::string_view
featureGroupName(FeatureGroup group)
{
    switch (group) {
      case FeatureGroup::AccessOffset:
        return "access offset";
      case FeatureGroup::AccessPreuse:
        return "access preuse";
      case FeatureGroup::AccessType:
        return "access type";
      case FeatureGroup::SetNumber:
        return "set number";
      case FeatureGroup::SetAccesses:
        return "set accesses";
      case FeatureGroup::SetAccessesSinceMiss:
        return "set accesses since miss";
      case FeatureGroup::LineOffset:
        return "line offset";
      case FeatureGroup::LineDirty:
        return "line dirty";
      case FeatureGroup::LinePreuse:
        return "line preuse";
      case FeatureGroup::LineAgeInsert:
        return "line age since insertion";
      case FeatureGroup::LineAgeLast:
        return "line age since last access";
      case FeatureGroup::LineLastType:
        return "line last access type";
      case FeatureGroup::LineLdCount:
        return "line LD access count";
      case FeatureGroup::LineRfoCount:
        return "line RFO access count";
      case FeatureGroup::LinePfCount:
        return "line PF access count";
      case FeatureGroup::LineWbCount:
        return "line WB access count";
      case FeatureGroup::LineHits:
        return "line hits since insertion";
      case FeatureGroup::LineRecency:
        return "line recency";
    }
    return "?";
}

FeatureExtractor::FeatureExtractor(uint32_t ways, uint32_t num_sets)
    : ways_(ways), num_sets_(num_sets)
{
    util::ensure(ways_ > 0 && num_sets_ > 0,
                 "FeatureExtractor: bad geometry");
    mask_.fill(true);
}

size_t
FeatureExtractor::stateSize() const
{
    return kLineBase + static_cast<size_t>(ways_) * kLineStride;
}

void
FeatureExtractor::setMask(const std::vector<FeatureGroup> &enabled)
{
    mask_.fill(false);
    for (const auto g : enabled)
        mask_[static_cast<size_t>(g)] = true;
}

void
FeatureExtractor::clearMask()
{
    mask_.fill(true);
}

bool
FeatureExtractor::enabled(FeatureGroup group) const
{
    return mask_[static_cast<size_t>(group)];
}

float
FeatureExtractor::normCount(uint32_t v, uint32_t cap)
{
    return static_cast<float>(std::min(v, cap)) /
           static_cast<float>(cap);
}

std::vector<size_t>
FeatureExtractor::groupIndices(FeatureGroup group) const
{
    std::vector<size_t> out;
    auto per_way = [&](size_t slot, size_t width = 1) {
        for (uint32_t w = 0; w < ways_; ++w)
            for (size_t k = 0; k < width; ++k)
                out.push_back(kLineBase + w * kLineStride + slot +
                              k);
    };
    switch (group) {
      case FeatureGroup::AccessOffset:
        for (size_t k = 0; k < 6; ++k)
            out.push_back(kAccessOffsetBase + k);
        break;
      case FeatureGroup::AccessPreuse:
        out.push_back(kAccessPreuseIdx);
        break;
      case FeatureGroup::AccessType:
        for (size_t k = 0; k < trace::kNumAccessTypes; ++k)
            out.push_back(kAccessTypeBase + k);
        break;
      case FeatureGroup::SetNumber:
        out.push_back(kSetNumberIdx);
        break;
      case FeatureGroup::SetAccesses:
        out.push_back(kSetAccessesIdx);
        break;
      case FeatureGroup::SetAccessesSinceMiss:
        out.push_back(kSetSinceMissIdx);
        break;
      case FeatureGroup::LineOffset:
        per_way(kLineOffsetBase, 6);
        break;
      case FeatureGroup::LineDirty:
        per_way(kLineDirtyIdx);
        break;
      case FeatureGroup::LinePreuse:
        per_way(kLinePreuseIdx);
        break;
      case FeatureGroup::LineAgeInsert:
        per_way(kLineAgeInsertIdx);
        break;
      case FeatureGroup::LineAgeLast:
        per_way(kLineAgeLastIdx);
        break;
      case FeatureGroup::LineLastType:
        per_way(kLineLastTypeBase, trace::kNumAccessTypes);
        break;
      case FeatureGroup::LineLdCount:
        per_way(kLineCountsBase + 0);
        break;
      case FeatureGroup::LineRfoCount:
        per_way(kLineCountsBase + 1);
        break;
      case FeatureGroup::LinePfCount:
        per_way(kLineCountsBase + 2);
        break;
      case FeatureGroup::LineWbCount:
        per_way(kLineCountsBase + 3);
        break;
      case FeatureGroup::LineHits:
        per_way(kLineHitsIdx);
        break;
      case FeatureGroup::LineRecency:
        per_way(kLineRecencyIdx);
        break;
    }
    return out;
}

std::vector<float>
FeatureExtractor::extract(const AccessFeatures &access,
                          const SetFeatures &set,
                          const std::vector<LineFeatures> &lines) const
{
    util::ensure(lines.size() == ways_,
                 "FeatureExtractor: way count mismatch");
    std::vector<float> state(stateSize(), 0.0f);

    if (enabled(FeatureGroup::AccessOffset)) {
        for (size_t k = 0; k < 6; ++k)
            state[kAccessOffsetBase + k] =
                static_cast<float>((access.address >> k) & 1);
    }
    if (enabled(FeatureGroup::AccessPreuse))
        state[kAccessPreuseIdx] = normCount(access.preuse,
                                            kPreuseCap);
    if (enabled(FeatureGroup::AccessType))
        state[kAccessTypeBase +
              static_cast<size_t>(access.type)] = 1.0f;
    if (enabled(FeatureGroup::SetNumber))
        state[kSetNumberIdx] = static_cast<float>(access.set) /
                               static_cast<float>(num_sets_);
    if (enabled(FeatureGroup::SetAccesses))
        state[kSetAccessesIdx] = normCount(set.accesses, kAgeCap);
    if (enabled(FeatureGroup::SetAccessesSinceMiss))
        state[kSetSinceMissIdx] =
            normCount(set.accesses_since_miss, kAgeCap);

    for (uint32_t w = 0; w < ways_; ++w) {
        const LineFeatures &lf = lines[w];
        const size_t base = kLineBase + w * kLineStride;
        if (!lf.valid)
            continue;
        if (enabled(FeatureGroup::LineOffset)) {
            for (size_t k = 0; k < 6; ++k)
                state[base + kLineOffsetBase + k] =
                    static_cast<float>((lf.address >> (6 + k)) & 1);
        }
        if (enabled(FeatureGroup::LineDirty))
            state[base + kLineDirtyIdx] = lf.dirty ? 1.0f : 0.0f;
        if (enabled(FeatureGroup::LinePreuse))
            state[base + kLinePreuseIdx] =
                normCount(lf.preuse, kPreuseCap);
        if (enabled(FeatureGroup::LineAgeInsert))
            state[base + kLineAgeInsertIdx] =
                normCount(lf.age_insert, kAgeCap);
        if (enabled(FeatureGroup::LineAgeLast))
            state[base + kLineAgeLastIdx] =
                normCount(lf.age_last, kAgeCap);
        if (enabled(FeatureGroup::LineLastType))
            state[base + kLineLastTypeBase +
                  static_cast<size_t>(lf.last_type)] = 1.0f;
        for (size_t t = 0; t < trace::kNumAccessTypes; ++t) {
            const auto group = static_cast<FeatureGroup>(
                static_cast<size_t>(FeatureGroup::LineLdCount) + t);
            if (enabled(group))
                state[base + kLineCountsBase + t] =
                    normCount(lf.type_counts[t], kCountCap);
        }
        if (enabled(FeatureGroup::LineHits))
            state[base + kLineHitsIdx] =
                normCount(lf.hits, kCountCap);
        if (enabled(FeatureGroup::LineRecency))
            state[base + kLineRecencyIdx] =
                static_cast<float>(lf.recency) /
                static_cast<float>(ways_ - 1);
    }
    return state;
}

} // namespace rlr::ml
