# Empty compiler generated dependencies file for ablation_kpcp.
# This may be replaced when dependencies are built.
