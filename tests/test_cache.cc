/** @file Tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "policies/lru.hh"
#include "policies/rrip.hh"

using namespace rlr;
using namespace rlr::cache;

namespace
{

/** Fixed-latency backing memory that records requests. */
class FakeMemory : public MemoryLevel
{
  public:
    explicit FakeMemory(uint64_t latency = 100)
        : latency_(latency), name_("fake")
    {
    }

    uint64_t
    access(const MemRequest &req, uint64_t now) override
    {
        requests.push_back(req);
        if (req.type == trace::AccessType::Writeback)
            return now;
        return now + latency_;
    }

    const std::string &name() const override { return name_; }

    std::vector<MemRequest> requests;

  private:
    uint64_t latency_;
    std::string name_;
};

/** Policy stub that bypasses everything. */
class BypassPolicy : public ReplacementPolicy
{
  public:
    void bind(const CacheGeometry &) override {}
    uint32_t
    findVictim(const AccessContext &,
               std::span<const BlockView>) override
    {
        return kBypass;
    }
    void onAccess(const AccessContext &) override {}
    std::string name() const override { return "bypass"; }
    StorageOverhead overhead() const override { return {}; }
};

/**
 * Conforming bypass-happy policy: bypasses every fill it is
 * allowed to (including writebacks, unlike the factory policies),
 * but honours a denied bypass with a fixed victim way.
 */
class WbBypassPolicy : public ReplacementPolicy
{
  public:
    void bind(const CacheGeometry &) override {}
    uint32_t
    findVictim(const AccessContext &ctx,
               std::span<const BlockView>) override
    {
        return ctx.allow_bypass ? kBypass : 2u;
    }
    void onAccess(const AccessContext &) override {}
    std::string name() const override { return "wb-bypass"; }
    StorageOverhead overhead() const override { return {}; }
};

CacheGeometry
smallGeometry()
{
    CacheGeometry g;
    g.name = "L";
    g.size_bytes = 4 * 1024; // 4 sets x 16 ways... 64 lines
    g.ways = 4;
    g.latency = 10;
    g.mshrs = 4;
    return g;
}

MemRequest
load(uint64_t addr, uint64_t pc = 0x400)
{
    MemRequest r;
    r.address = addr;
    r.pc = pc;
    r.type = trace::AccessType::Load;
    return r;
}

} // namespace

TEST(Cache, HitAfterFill)
{
    FakeMemory mem;
    Cache c(smallGeometry(), std::make_unique<policies::LruPolicy>(),
            &mem);
    const uint64_t t1 = c.access(load(0x1000), 0);
    EXPECT_EQ(t1, 110u); // 10 lookup + 100 memory
    EXPECT_EQ(c.statSet().value("LD_miss"), 1u);

    const uint64_t t2 = c.access(load(0x1000), 200);
    EXPECT_EQ(t2, 210u); // hit: lookup latency only
    EXPECT_EQ(c.statSet().value("LD_hit"), 1u);
    EXPECT_TRUE(c.probe(0x1000));
}

TEST(Cache, SameLineDifferentOffsetHits)
{
    FakeMemory mem;
    Cache c(smallGeometry(), std::make_unique<policies::LruPolicy>(),
            &mem);
    c.access(load(0x1000), 0);
    c.access(load(0x103f), 1000);
    EXPECT_EQ(c.statSet().value("LD_hit"), 1u);
}

TEST(Cache, MshrMergeWhileInFlight)
{
    FakeMemory mem;
    Cache c(smallGeometry(), std::make_unique<policies::LruPolicy>(),
            &mem);
    const uint64_t ready = c.access(load(0x2000), 0);
    // Second access before the fill returns merges and completes
    // with the original miss, not sooner.
    const uint64_t t2 = c.access(load(0x2000), 20);
    EXPECT_EQ(t2, ready);
    EXPECT_EQ(c.statSet().value("mshr_merges"), 1u);
    EXPECT_EQ(c.statSet().value("LD_miss"), 2u);
    // Only one request reached memory.
    EXPECT_EQ(mem.requests.size(), 1u);
}

TEST(Cache, LruEvictionOrder)
{
    FakeMemory mem;
    CacheGeometry g = smallGeometry(); // 16 sets, 4 ways
    Cache c(g, std::make_unique<policies::LruPolicy>(), &mem);
    // Fill one set (stride = sets * line = 16 * 64 = 1024).
    const uint64_t stride = g.numSets() * kLineBytes;
    for (uint64_t i = 0; i < 4; ++i)
        c.access(load(0x10000 + i * stride), i * 1000);
    // Touch line 0 so line 1 becomes LRU.
    c.access(load(0x10000), 10000);
    // New fill must evict line 1.
    c.access(load(0x10000 + 4 * stride), 20000);
    EXPECT_TRUE(c.probe(0x10000));
    EXPECT_FALSE(c.probe(0x10000 + 1 * stride));
    EXPECT_TRUE(c.probe(0x10000 + 2 * stride));
}

TEST(Cache, DirtyEvictionWritesBack)
{
    FakeMemory mem;
    CacheGeometry g = smallGeometry();
    Cache c(g, std::make_unique<policies::LruPolicy>(), &mem);
    c.setWritesOnRfo(true);
    const uint64_t stride = g.numSets() * kLineBytes;

    MemRequest rfo = load(0x10000);
    rfo.type = trace::AccessType::Rfo;
    c.access(rfo, 0);

    // Evict it by filling the set with 4 more lines.
    for (uint64_t i = 1; i <= 4; ++i)
        c.access(load(0x10000 + i * stride), i * 1000);

    bool saw_wb = false;
    for (const auto &req : mem.requests) {
        if (req.type == trace::AccessType::Writeback &&
            CacheGeometry::lineAddress(req.address) == 0x10000)
            saw_wb = true;
    }
    EXPECT_TRUE(saw_wb);
    EXPECT_EQ(c.statSet().value("writebacks_issued"), 1u);
}

TEST(Cache, WritebackMissAllocatesWithoutFetch)
{
    FakeMemory mem;
    Cache c(smallGeometry(), std::make_unique<policies::LruPolicy>(),
            &mem);
    MemRequest wb;
    wb.address = 0x3000;
    wb.type = trace::AccessType::Writeback;
    const uint64_t t = c.access(wb, 0);
    EXPECT_EQ(t, 10u); // no memory round trip
    EXPECT_TRUE(c.probe(0x3000));
    EXPECT_TRUE(mem.requests.empty());
    // The allocated line must be dirty.
    const auto views = c.setContents(c.geometry().setIndex(0x3000));
    bool found_dirty = false;
    for (const auto &v : views)
        if (v.valid && v.address == 0x3000 && v.dirty)
            found_dirty = true;
    EXPECT_TRUE(found_dirty);
}

TEST(Cache, BypassPolicySkipsFill)
{
    FakeMemory mem;
    CacheGeometry g = smallGeometry();
    Cache c(g, std::make_unique<BypassPolicy>(), &mem);
    const uint64_t stride = g.numSets() * kLineBytes;
    // Fill the set's invalid ways first (bypass only applies when
    // the set is full).
    for (uint64_t i = 0; i < 4; ++i)
        c.access(load(0x10000 + i * stride), i * 1000);
    c.access(load(0x10000 + 4 * stride), 10000);
    EXPECT_EQ(c.statSet().value("bypasses"), 1u);
    EXPECT_FALSE(c.probe(0x10000 + 4 * stride));
    // Resident lines undisturbed.
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_TRUE(c.probe(0x10000 + i * stride));
}

TEST(Cache, PrefetchFlagClearedOnDemandHit)
{
    FakeMemory mem;
    Cache c(smallGeometry(), std::make_unique<policies::LruPolicy>(),
            &mem);
    MemRequest pf = load(0x4000);
    pf.type = trace::AccessType::Prefetch;
    c.access(pf, 0);
    auto views = c.setContents(c.geometry().setIndex(0x4000));
    bool pf_flag = false;
    for (const auto &v : views)
        if (v.valid && v.address == 0x4000)
            pf_flag = v.prefetch;
    EXPECT_TRUE(pf_flag);

    c.access(load(0x4000), 1000);
    views = c.setContents(c.geometry().setIndex(0x4000));
    for (const auto &v : views)
        if (v.valid && v.address == 0x4000)
            pf_flag = v.prefetch;
    EXPECT_FALSE(pf_flag);
}

TEST(Cache, AccessSinkCapturesEverything)
{
    FakeMemory mem;
    Cache c(smallGeometry(), std::make_unique<policies::LruPolicy>(),
            &mem);
    std::vector<trace::LlcAccess> captured;
    c.setAccessSink([&](const trace::LlcAccess &a) {
        captured.push_back(a);
    });
    c.access(load(0x1000, 0xabc), 0);
    c.access(load(0x1000, 0xdef), 100);
    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0].pc, 0xabcu);
    EXPECT_EQ(captured[1].pc, 0xdefu);
    EXPECT_EQ(captured[0].address, 0x1000u);
}

TEST(Cache, DemandCountersAggregate)
{
    FakeMemory mem;
    Cache c(smallGeometry(), std::make_unique<policies::LruPolicy>(),
            &mem);
    c.access(load(0x1000), 0);
    MemRequest rfo = load(0x2000);
    rfo.type = trace::AccessType::Rfo;
    c.access(rfo, 1000);
    MemRequest pf = load(0x5000);
    pf.type = trace::AccessType::Prefetch;
    c.access(pf, 2000);
    EXPECT_EQ(c.demandAccesses(), 2u);
    EXPECT_EQ(c.demandMisses(), 2u);
    EXPECT_EQ(c.demandHits(), 0u);
}

TEST(Cache, FlushInvalidatesEverything)
{
    FakeMemory mem;
    Cache c(smallGeometry(), std::make_unique<policies::LruPolicy>(),
            &mem);
    c.access(load(0x1000), 0);
    c.flush();
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_EQ(c.statSet().value("LD_access"), 0u);
}

TEST(Cache, ResetStatsKeepsContents)
{
    FakeMemory mem;
    Cache c(smallGeometry(), std::make_unique<policies::LruPolicy>(),
            &mem);
    c.access(load(0x1000), 0);
    c.resetStats();
    EXPECT_TRUE(c.probe(0x1000));
    EXPECT_EQ(c.statSet().value("LD_access"), 0u);
    c.access(load(0x1000), 1000);
    EXPECT_EQ(c.statSet().value("LD_hit"), 1u);
}

TEST(Cache, MshrPressureDelaysMisses)
{
    FakeMemory mem(1000);
    CacheGeometry g = smallGeometry();
    g.mshrs = 2;
    Cache c(g, std::make_unique<policies::LruPolicy>(), &mem);
    // Issue 3 concurrent misses to distinct lines at t=0; the
    // third must wait for an MSHR.
    c.access(load(0x10000), 0);
    c.access(load(0x20000), 0);
    const uint64_t t3 = c.access(load(0x30000), 0);
    EXPECT_GT(t3, 1010u);
    EXPECT_GE(c.statSet().value("mshr_stalls"), 1u);
}

TEST(Cache, MshrReservationTracksStalledCompletion)
{
    // Regression: reserveMshr used to record the *pre-stall*
    // completion time of a stalled miss, so a stalled request
    // under-reported how long it kept its MSHR and later misses
    // were admitted too early.
    FakeMemory mem(100);
    CacheGeometry g = smallGeometry(); // latency 10
    g.mshrs = 1;
    Cache c(g, std::make_unique<policies::LruPolicy>(), &mem);
    const uint64_t t_a = c.access(load(0x10000), 0);
    EXPECT_EQ(t_a, 110u); // 10 lookup + 100 memory
    // B stalls for A's MSHR: admitted at 110, completes at 210.
    const uint64_t t_b = c.access(load(0x20000), 0);
    EXPECT_EQ(t_b, 210u);
    // C stalls for B. B occupies the MSHR until 210 — not until
    // its pre-stall completion time 130, which the old accounting
    // recorded (admitting C at 110 and completing it at 210, as
    // if B had never stalled).
    const uint64_t t_c = c.access(load(0x30000), 20);
    EXPECT_GT(t_c, t_b);
    EXPECT_EQ(t_c, 310u);
    EXPECT_EQ(c.statSet().value("mshr_stalls"), 2u);
}

TEST(Cache, FlushResetsPolicyMetadata)
{
    // Regression: flush() invalidated the lines but left the
    // replacement policy's per-line metadata (RRPVs, recency
    // stamps, ages) describing the flushed contents.
    FakeMemory mem;
    CacheGeometry g = smallGeometry();
    auto srrip = std::make_unique<policies::SrripPolicy>(2);
    auto *policy = srrip.get();
    Cache c(g, std::move(srrip), &mem);

    const uint32_t set = g.setIndex(0x1000);
    c.access(load(0x1000), 0);    // fill at way 0: rrpv = max-1
    c.access(load(0x1000), 1000); // hit: promoted to rrpv = 0
    EXPECT_EQ(policy->victimPriority(set, 0), 0u);

    c.flush();
    // After the flush the slot's metadata must be back at the
    // bind-time state (distant RRPV), not the stale promotion.
    EXPECT_EQ(policy->victimPriority(set, 0), 3u);
}

TEST(Cache, WritebackBypassDeniedReQueriesPolicy)
{
    // Regression: a policy answering kBypass for a writeback fill
    // used to get way 0 evicted behind its back; now the cache
    // re-queries with allow_bypass=false and counts the denial.
    FakeMemory mem;
    CacheGeometry g = smallGeometry();
    Cache c(g, std::make_unique<WbBypassPolicy>(), &mem);
    const uint64_t stride = g.numSets() * kLineBytes;
    // Fill the set's 4 invalid ways (no policy involvement).
    for (uint64_t i = 0; i < 4; ++i)
        c.access(load(0x10000 + i * stride), i * 1000);

    MemRequest wb;
    wb.address = 0x10000 + 4 * stride;
    wb.type = trace::AccessType::Writeback;
    c.access(wb, 10000);

    EXPECT_EQ(c.statSet().value("wb_bypass_denied"), 1u);
    EXPECT_EQ(c.statSet().value("bypasses"), 0u);
    // The denied bypass landed at the policy's chosen way 2, not
    // the old hard-coded way 0.
    EXPECT_TRUE(c.probe(0x10000 + 4 * stride));
    EXPECT_TRUE(c.probe(0x10000 + 0 * stride));
    EXPECT_FALSE(c.probe(0x10000 + 2 * stride));
    // Non-writeback fills still bypass (and are counted as such).
    c.access(load(0x10000 + 5 * stride), 20000);
    EXPECT_EQ(c.statSet().value("bypasses"), 1u);
    EXPECT_FALSE(c.probe(0x10000 + 5 * stride));
}

TEST(CacheGeometryTest, Derived)
{
    CacheGeometry g;
    g.size_bytes = 2 * 1024 * 1024;
    g.ways = 16;
    EXPECT_EQ(g.numSets(), 2048u);
    EXPECT_EQ(g.numLines(), 32768u);
    EXPECT_EQ(g.setBits(), 11u);
    // Index/tag consistency.
    const uint64_t addr = 0x123456789aULL;
    const uint32_t set = g.setIndex(addr);
    const uint64_t tag = g.tag(addr);
    EXPECT_LT(set, g.numSets());
    // Reconstruct the line address.
    const uint64_t line =
        (tag << (kLineBits + g.setBits())) |
        (static_cast<uint64_t>(set) << kLineBits);
    EXPECT_EQ(line, CacheGeometry::lineAddress(addr));
}
