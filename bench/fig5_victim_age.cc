/**
 * @file
 * Regenerates Figure 5: average age (set accesses since last
 * access) of the RL agent's victims, split by the victim's last
 * access type. The paper's takeaway: prefetch-typed victims have
 * the lowest average age — the agent evicts non-reused prefetched
 * lines sooner, which becomes RLR's type priority.
 */

#include "bench/common.hh"
#include "ml/analysis.hh"

using namespace rlr;

int
main(int argc, char **argv)
{
    auto parser = bench::makeParser(
        "Figure 5: average agent-victim age per access type");
    if (!parser.parse(argc, argv))
        return 0;
    auto opt = bench::makeOptions(parser);

    auto workloads = opt.workloads;
    if (workloads.empty())
        workloads = bench::trainingNames();

    util::Table table({"Benchmark", "LOAD", "RFO", "PREFETCH",
                       "WRITEBACK"});
    std::vector<std::vector<std::string>> rows(workloads.size());

    util::ThreadPool::parallelFor(
        workloads.size(), opt.threads, [&](size_t i) {
            sim::SimParams p = opt.params;
            p.sim_instructions = opt.rl_instructions;
            const auto trace =
                sim::captureLlcTrace(workloads[i], p);
            if (trace.empty())
                return;
            ml::OfflineSimulator osim(ml::OfflineConfig{}, &trace);
            ml::AgentConfig cfg;
            cfg.seed = opt.seed + 31 * i;
            ml::trainAgent(osim, cfg, 1); // victim stats need no convergence
            const auto &fs = osim.featureStats();
            rows[i] = {
                workloads[i],
                util::Table::fmt(
                    fs.avgVictimAge(trace::AccessType::Load), 1),
                util::Table::fmt(
                    fs.avgVictimAge(trace::AccessType::Rfo), 1),
                util::Table::fmt(
                    fs.avgVictimAge(trace::AccessType::Prefetch),
                    1),
                util::Table::fmt(
                    fs.avgVictimAge(trace::AccessType::Writeback),
                    1)};
        });

    for (auto &row : rows)
        if (!row.empty())
            table.addRow(row);

    std::puts("=== Figure 5: average victim age by last access "
              "type (agent simulation) ===");
    bench::emit(opt, table);
    std::puts("\nPaper's shape: PREFETCH victims have the lowest "
              "average age in almost all benchmarks.");
    return 0;
}
