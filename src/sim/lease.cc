#include "sim/lease.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <unistd.h>

#include "stats/export.hh"
#include "util/atomic_file.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace fs = std::filesystem;

namespace rlr::sim
{

namespace
{

std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

bool
readWholeFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    char buf[1024];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    return !bad;
}

/** Write @p data to @p path (create/truncate) with an fsync. */
bool
writePlainFile(const std::string &path, const std::string &data)
{
    const int fd = ::open(path.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::write(fd, data.data() + off,
                                  data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return false;
        }
        off += static_cast<size_t>(n);
    }
    ::fsync(fd);
    return ::close(fd) == 0;
}

std::string
leaseToJson(uint32_t worker, int64_t pid, uint32_t attempt,
            uint64_t fence, double ttl_s)
{
    std::string out = "{\n";
    out += "  \"record\": \"rlr-sweep-lease\",\n";
    out += util::format("  \"worker\": {},\n", worker);
    out += util::format("  \"pid\": {},\n", pid);
    out += util::format("  \"attempt\": {},\n", attempt);
    // Decimal string, like every u64 in the journal (the JSON
    // reader parses numbers via double).
    out += util::format("  \"fence\": \"{}\",\n", fence);
    out += util::format("  \"ttl_s\": {},\n",
                        stats::json::number(ttl_s));
    out += "  \"eor\": 1\n";
    out += "}\n";
    return out;
}

double
fileAgeSeconds(const std::string &path)
{
    std::error_code ec;
    const auto mtime = fs::last_write_time(path, ec);
    if (ec)
        return 0.0;
    return std::chrono::duration<double>(
               fs::file_time_type::clock::now() - mtime)
        .count();
}

} // namespace

Lease::Lease(std::string dir, uint32_t worker_id, double ttl_s)
    : dir_(std::move(dir)), worker_(worker_id),
      ttl_s_(ttl_s > 0.1 ? ttl_s : 0.1)
{
}

std::string
Lease::leasePath(const std::string &dir, uint64_t spec_hash)
{
    return dir + "/lease-" + hex16(spec_hash) + ".json";
}

bool
Lease::read(const std::string &path, LeaseInfo &out)
{
    std::string text;
    if (!readWholeFile(path, text))
        return false;
    try {
        const auto root = stats::json::parse(text);
        if (!root.isObject() ||
            root.stringOr("record", "") != "rlr-sweep-lease" ||
            root.find("eor") == nullptr) {
            return false;
        }
        out.worker =
            static_cast<uint32_t>(root.numberOr("worker", 0));
        out.pid = static_cast<int64_t>(root.numberOr("pid", 0));
        out.attempt =
            static_cast<uint32_t>(root.numberOr("attempt", 0));
        out.fence = std::strtoull(
            root.stringOr("fence", "0").c_str(), nullptr, 10);
        out.ttl_s = root.numberOr("ttl_s", 0.0);
    } catch (const std::exception &) {
        return false;
    }
    out.age_s = fileAgeSeconds(path);
    return true;
}

Lease::Claim
Lease::tryClaim(uint64_t spec_hash, uint32_t attempt,
                double steal_after_s)
{
    const std::string path = leasePath(dir_, spec_hash);
    const std::string fence_path =
        dir_ + "/fence-" + hex16(spec_hash);

    // Highest token ever issued for this cell: the fence file is
    // updated by every winner right after its claim, so it is
    // current by the time that winner's lease can be released or
    // stolen.
    uint64_t high = 0;
    {
        std::string text;
        if (readWholeFile(fence_path, text))
            high = std::strtoull(text.c_str(), nullptr, 10);
    }

    bool stole = false;
    if (fs::exists(path)) {
        LeaseInfo info;
        const bool readable = read(path, info);
        const double age =
            readable ? info.age_s : fileAgeSeconds(path);
        if (age < std::max(steal_after_s, 0.1))
            return Claim{}; // held by a live worker
        // Expired: exactly one stealer wins the rename; the
        // losers see the source vanish and fall through to a
        // fresh-claim race.
        const std::string tomb = util::format(
            "{}.steal.{}.{}.{}", path,
            static_cast<long>(::getpid()), worker_,
            seq_.fetch_add(1, std::memory_order_relaxed));
        if (::rename(path.c_str(), tomb.c_str()) == 0) {
            // A winner that crashed between link and fence-file
            // update leaves its token only in the lease itself.
            LeaseInfo dead;
            if (read(tomb, dead))
                high = std::max(high, dead.fence);
            ::unlink(tomb.c_str());
            stole = true;
        }
    }

    const uint64_t token = high + 1;
    // The worker id keeps temp/tomb names distinct even between
    // Lease instances sharing one process (tests, a future
    // in-process multi-worker mode) — a collision would let one
    // claimant link(2) a file the other is still writing.
    const std::string tmp = util::format(
        "{}.tmp.{}.{}.{}", path, static_cast<long>(::getpid()),
        worker_, seq_.fetch_add(1, std::memory_order_relaxed));
    if (!writePlainFile(tmp, leaseToJson(worker_,
                                         ::getpid(), attempt,
                                         token, ttl_s_))) {
        util::warn("cannot write lease temp '{}': {}", tmp,
                   std::strerror(errno));
        ::unlink(tmp.c_str());
        return Claim{};
    }
    // The exclusive-claim primitive: link(2) is atomic and fails
    // with EEXIST when someone else claimed between our checks.
    if (::link(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return Claim{};
    }
    ::unlink(tmp.c_str());
    // Persist the high-water mark before this lease can ever be
    // released: later claimants must start above our token. The
    // fence tag keeps temp names distinct across fencing rounds
    // even under pid reuse.
    try {
        util::atomicWriteFile(fence_path,
                              util::format("{}\n", token),
                              util::format("f{}", token));
    } catch (const std::exception &e) {
        util::warn("cannot persist fence for cell {}: {}",
                   hex16(spec_hash), e.what());
    }
    return Claim{true, token, stole};
}

void
Lease::renew(uint64_t spec_hash, uint32_t attempt,
             uint64_t fence) const
{
    // We own the lease; an atomic replace refreshes the mtime
    // without ever exposing a missing or torn file.
    try {
        util::atomicWriteFile(
            leasePath(dir_, spec_hash),
            leaseToJson(worker_, ::getpid(), attempt, fence,
                        ttl_s_),
            util::format("w{}.f{}", worker_, fence));
    } catch (const std::exception &e) {
        util::warn("cannot renew lease for cell {}: {}",
                   hex16(spec_hash), e.what());
    }
}

bool
Lease::stillHeld(uint64_t spec_hash, uint64_t fence) const
{
    LeaseInfo info;
    if (!read(leasePath(dir_, spec_hash), info))
        return false;
    return info.worker == worker_ &&
           info.pid == static_cast<int64_t>(::getpid()) &&
           info.fence == fence;
}

void
Lease::release(uint64_t spec_hash, uint64_t fence) const
{
    if (!stillHeld(spec_hash, fence))
        return; // stolen — the thief's lease is not ours to drop
    ::unlink(leasePath(dir_, spec_hash).c_str());
}

} // namespace rlr::sim
