/**
 * @file
 * The request/response contract between memory-hierarchy levels.
 *
 * The hierarchy uses a timestamp-passing functional timing model:
 * each level's access() consumes the cycle at which the request
 * arrives and returns the cycle at which data is available. Caches
 * install fills immediately in program order but tag blocks with
 * their data-ready cycle, so later requests that would merge into
 * an MSHR observe the in-flight latency.
 */

#ifndef RLR_CACHE_MEMORY_INTERFACE_HH
#define RLR_CACHE_MEMORY_INTERFACE_HH

#include <cstdint>
#include <string>

#include "trace/record.hh"

namespace rlr::cache
{

/** A request travelling down the hierarchy. */
struct MemRequest
{
    uint64_t address = 0;
    /** Program counter of the originating instruction (0 for WB). */
    uint64_t pc = 0;
    trace::AccessType type = trace::AccessType::Load;
    uint8_t cpu = 0;
    /** Prefetch confidence in [0, 1] (Prefetch requests only). */
    float pf_confidence = 1.0f;
};

/** Anything that can serve memory requests (cache or DRAM). */
class MemoryLevel
{
  public:
    virtual ~MemoryLevel() = default;

    /**
     * Serve @p req arriving at cycle @p now.
     * @return cycle at which the data is available to the requester.
     */
    virtual uint64_t access(const MemRequest &req, uint64_t now) = 0;

    virtual const std::string &name() const = 0;
};

} // namespace rlr::cache

#endif // RLR_CACHE_MEMORY_INTERFACE_HH
