# Empty dependencies file for test_glider_mpppb.
# This may be replaced when dependencies are built.
