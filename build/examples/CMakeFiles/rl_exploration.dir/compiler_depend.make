# Empty compiler generated dependencies file for rl_exploration.
# This may be replaced when dependencies are built.
