/**
 * @file
 * Main-memory model: banked DRAM with open-row tracking and a
 * shared data channel. Detailed enough for replacement policies to
 * feel bandwidth/locality pressure (extra misses cost real time,
 * bursts queue up), while staying fast for large sweeps.
 */

#ifndef RLR_MEM_DRAM_HH
#define RLR_MEM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/memory_interface.hh"
#include "stats/registry.hh"
#include "stats/stats.hh"
#include "util/histogram.hh"

namespace rlr::mem
{

/** Timing/shape parameters of the DRAM model. */
struct DramConfig
{
    /** Cycles to serve a read that hits the open row. */
    uint32_t row_hit_latency = 55;
    /** Cycles to serve a read that must activate a new row. */
    uint32_t row_miss_latency = 165;
    /** Number of independent banks. */
    uint32_t banks = 16;
    /** Shared channel occupancy per transfer (cycles). */
    uint32_t channel_cycles = 4;
    /** Row size in bytes (row index = address / row_bytes). */
    uint64_t row_bytes = 2048;
};

/** Banked DRAM behind the LLC. */
class Dram : public cache::MemoryLevel
{
  public:
    explicit Dram(DramConfig config = {}, std::string name = "DRAM");

    uint64_t access(const cache::MemRequest &req,
                    uint64_t now) override;

    const std::string &name() const override { return name_; }

    stats::StatSet &statSet() { return stats_; }
    const stats::StatSet &statSet() const { return stats_; }

    /**
     * Mount DRAM statistics under @p prefix: the access counters,
     * the derived row-hit rate, and the read-latency distribution
     * (service time including bank/channel queuing).
     */
    void describeStats(stats::Registry &reg,
                       const std::string &prefix);

    /** Read service latency (cycles, incl. queuing) histogram. */
    const util::Histogram &readLatency() const
    {
        return read_latency_;
    }

    void
    resetStats()
    {
        stats_.reset();
        read_latency_.reset();
    }

    const DramConfig &config() const { return config_; }

  private:
    struct Bank
    {
        uint64_t open_row = ~0ULL;
        uint64_t busy_until = 0;
    };

    DramConfig config_;
    std::string name_;
    std::vector<Bank> banks_;
    uint64_t channel_free_ = 0;
    stats::StatSet stats_;
    /** 32 x 16-cycle buckets cover hit/miss/queued latencies. */
    util::Histogram read_latency_{32, 16};
};

} // namespace rlr::mem

#endif // RLR_MEM_DRAM_HH
