#include "trace/synthetic.hh"

#include <algorithm>
#include <numeric>

#include "util/bits.hh"
#include "util/logging.hh"

namespace rlr::trace
{

namespace
{

/** Cache line size assumed throughout the simulator. */
constexpr uint64_t kLineBytes = 64;

/** Virtual-address region stride separating kernels. */
constexpr uint64_t kRegionStride = 1ULL << 40;

/** Cap on pointer-chase permutation entries (memory safety). */
constexpr uint64_t kMaxChaseLines = 1ULL << 22;

} // namespace

std::string_view
kernelKindName(KernelKind kind)
{
    switch (kind) {
      case KernelKind::Stream:
        return "stream";
      case KernelKind::Strided:
        return "strided";
      case KernelKind::PointerChase:
        return "chase";
      case KernelKind::Loop:
        return "loop";
      case KernelKind::HotCold:
        return "hotcold";
      case KernelKind::ScanThrash:
        return "scanthrash";
    }
    return "?";
}

/** Per-kernel mutable generation state. */
struct SyntheticGenerator::KernelState
{
    KernelSpec spec;
    /** Base virtual address of the kernel's region. */
    uint64_t base = 0;
    /** Lines in the working set. */
    uint64_t lines = 0;
    /** Current position (byte offset or line index). */
    uint64_t pos = 0;
    /** PointerChase: permutation of line indices. */
    std::vector<uint32_t> perm;
    /** HotCold: Zipf sampler over lines. */
    std::unique_ptr<util::ZipfSampler> zipf;
    /** ScanThrash: accesses remaining in the current phase. */
    uint64_t phase_left = 0;
    bool in_hot_phase = true;
    /** Scan cursor for the cold region (ScanThrash). */
    uint64_t scan_pos = 0;
    /** First code address for this kernel's memory PCs. */
    uint64_t pc_base = 0;
};

SyntheticGenerator::SyntheticGenerator(WorkloadProfile profile,
                                       uint64_t seed)
    : profile_(std::move(profile)), seed_(seed), rng_(seed)
{
    util::ensure(!profile_.kernels.empty(),
                 "SyntheticGenerator: no kernels");
    double total_weight = 0.0;
    for (size_t i = 0; i < profile_.kernels.size(); ++i) {
        auto ks = std::make_unique<KernelState>();
        ks->spec = profile_.kernels[i];
        ks->base = (i + 1) * kRegionStride;
        ks->lines =
            std::max<uint64_t>(1, ks->spec.working_set / kLineBytes);
        ks->pc_base = 0x400000 + i * 0x1000;
        switch (ks->spec.kind) {
          case KernelKind::Loop:
            if (ks->spec.shuffled) {
                ks->perm.resize(ks->lines);
                std::iota(ks->perm.begin(), ks->perm.end(), 0u);
                util::Rng perm_rng(seed ^ (0x5151beefU + i));
                perm_rng.shuffle(ks->perm);
            }
            break;
          case KernelKind::ScanThrash: {
            // The hot quarter of the region is visited in a fixed
            // permutation so the reuse is prefetch-proof.
            const uint64_t hot_lines =
                std::max<uint64_t>(1, ks->lines / 4);
            ks->perm.resize(hot_lines);
            std::iota(ks->perm.begin(), ks->perm.end(), 0u);
            util::Rng perm_rng(seed ^ (0x77aa0101U + i));
            perm_rng.shuffle(ks->perm);
            ks->phase_left = ks->spec.phase_hot;
            ks->in_hot_phase = true;
            break;
          }
          case KernelKind::PointerChase: {
            const uint64_t n = std::min(ks->lines, kMaxChaseLines);
            ks->lines = n;
            ks->perm.resize(n);
            std::iota(ks->perm.begin(), ks->perm.end(), 0u);
            // Sattolo's algorithm: a single cycle through all lines,
            // so the chase touches the whole working set.
            util::Rng perm_rng(seed ^ (0xabcd1234u + i));
            for (uint64_t k = n - 1; k > 0; --k) {
                const uint64_t j = perm_rng.nextBounded(k);
                std::swap(ks->perm[k], ks->perm[j]);
            }
            break;
          }
          case KernelKind::HotCold:
            ks->zipf = std::make_unique<util::ZipfSampler>(
                ks->lines, ks->spec.zipf_alpha);
            break;
          default:
            break;
        }
        total_weight += ks->spec.weight;
        kernels_.push_back(std::move(ks));
    }
    double acc = 0.0;
    for (const auto &ks : kernels_) {
        acc += ks->spec.weight / total_weight;
        kernel_cdf_.push_back(acc);
    }
    kernel_cdf_.back() = 1.0;
    loop_branch_pc_ = 0x500000;
    noise_branch_pc_ = 0x500100;
}

SyntheticGenerator::~SyntheticGenerator() = default;

void
SyntheticGenerator::reset()
{
    // Re-seed and rebuild mutable state; permutations and samplers
    // are deterministic functions of (profile, seed) and stay put.
    rng_ = util::Rng(seed_);
    seq_ = 0;
    next_dest_reg_ = 2;
    for (auto &ks : kernels_) {
        ks->pos = 0;
        ks->scan_pos = 0;
        ks->in_hot_phase = true;
        ks->phase_left = ks->spec.kind == KernelKind::ScanThrash
                             ? ks->spec.phase_hot
                             : 0;
    }
}

const std::string &
SyntheticGenerator::name() const
{
    return profile_.name;
}

uint64_t
SyntheticGenerator::nextMemAddress(size_t kernel_idx, bool &is_store,
                                   bool &dependent)
{
    KernelState &ks = *kernels_[kernel_idx];
    const KernelSpec &spec = ks.spec;
    is_store = rng_.chance(spec.write_frac);
    dependent = false;

    uint64_t line = 0;
    switch (spec.kind) {
      case KernelKind::Stream:
      case KernelKind::Strided:
      case KernelKind::Loop: {
        const uint64_t ws =
            std::max<uint64_t>(kLineBytes, spec.working_set);
        line = ks.pos / kLineBytes;
        if (!ks.perm.empty())
            line = ks.perm[line % ks.perm.size()];
        ks.pos = (ks.pos + spec.stride) % ws;
        break;
      }
      case KernelKind::PointerChase:
        // Nodes are spaced two lines apart: linked-structure
        // neighbours are not address neighbours, so a next-line
        // prefetch lands on dead padding (low prefetch accuracy,
        // as for real graph codes).
        ks.pos = ks.perm[ks.pos % ks.lines];
        line = 2 * ks.pos;
        dependent = true;
        break;
      case KernelKind::HotCold:
        // Scatter ranks across the region with a bijective
        // multiplicative hash (lines is a power of two): real hot
        // data is not address-adjacent, and clustering it would
        // hand delta prefetchers artificial patterns.
        line = (ks.zipf->sample(rng_) * 0x9E3779B1ULL) %
               ks.lines; // odd multiplier: bijective for any size
        break;
      case KernelKind::ScanThrash: {
        if (ks.phase_left == 0) {
            ks.in_hot_phase = !ks.in_hot_phase;
            ks.phase_left = ks.in_hot_phase ? spec.phase_hot
                                            : spec.phase_scan;
        }
        --ks.phase_left;
        if (ks.in_hot_phase) {
            // Tight reuse over the first quarter of the region,
            // visited in a fixed permutation (prefetch-proof).
            const uint64_t hot_lines =
                std::max<uint64_t>(1, ks.lines / 4);
            line = ks.perm[ks.pos % ks.perm.size()];
            ks.pos = (ks.pos + 1) % hot_lines;
        } else {
            // Long scan over the rest; touches each line once.
            const uint64_t hot_lines =
                std::max<uint64_t>(1, ks.lines / 4);
            const uint64_t cold_lines =
                std::max<uint64_t>(1, ks.lines - hot_lines);
            line = hot_lines + (ks.scan_pos % cold_lines);
            ++ks.scan_pos;
        }
        break;
      }
    }
    return ks.base + line * kLineBytes;
}

void
SyntheticGenerator::emitBranch(Instruction &out)
{
    out.kind = InstrKind::Branch;
    if (rng_.chance(profile_.branch_noise)) {
        // Data-dependent branch: ~50% taken, unpredictable.
        out.pc = noise_branch_pc_ +
                 16 * rng_.nextBounded(8);
        out.branch_taken = rng_.chance(0.5);
    } else {
        // Loop-style branch: strongly biased taken.
        out.pc = loop_branch_pc_ + 16 * rng_.nextBounded(4);
        out.branch_taken = rng_.chance(0.97);
    }
    out.branch_target = out.pc + (out.branch_taken ? 64 : 4);
}

bool
SyntheticGenerator::next(Instruction &out)
{
    out = Instruction{};
    ++seq_;

    // Instruction fetch address walks the code footprint so the
    // L1I sees realistic pressure.
    const uint64_t footprint =
        std::max<uint64_t>(kLineBytes, profile_.code_footprint);
    const uint64_t fetch_pc = 0x600000 + (seq_ * 4) % footprint;

    const double r = rng_.nextDouble();
    if (r < profile_.mem_ratio) {
        if (rng_.chance(profile_.local_frac)) {
            // Local (stack/scratch) access: stays within a small
            // region that lives in the L1.
            const uint64_t lines = std::max<uint64_t>(
                1, profile_.local_ws / kLineBytes);
            out.mem_addr = 0x7f0000000000ULL +
                           rng_.nextBounded(lines) * kLineBytes;
            const bool is_store =
                rng_.chance(profile_.local_write_frac);
            out.kind = is_store ? InstrKind::Store
                                : InstrKind::Load;
            out.pc = 0x700000 + 4 * (seq_ % 8);
            if (!is_store)
                out.dest_reg = next_dest_reg_;
        } else {
            // Pick a kernel by mixture weight.
            const double u = rng_.nextDouble();
            size_t k = 0;
            while (k + 1 < kernel_cdf_.size() &&
                   u > kernel_cdf_[k])
                ++k;
            bool is_store = false;
            bool dependent = false;
            out.mem_addr = nextMemAddress(k, is_store, dependent);
            out.kind = is_store ? InstrKind::Store
                                : InstrKind::Load;
            const KernelState &ks = *kernels_[k];
            out.pc = ks.pc_base +
                     4 * (seq_ % std::max(1u, ks.spec.num_pcs));
            if (dependent) {
                // Pointer chase: address depends on the previous
                // chase load. Register 1 is the chase pointer.
                out.src_regs[0] = 1;
                if (!is_store)
                    out.dest_reg = 1;
            } else if (!is_store) {
                out.dest_reg = next_dest_reg_;
            }
        }
        if (out.dest_reg == next_dest_reg_) {
            next_dest_reg_ =
                static_cast<uint8_t>(2 + (next_dest_reg_ - 1) %
                                             (kNumRegs - 2));
        }
    } else if (r < profile_.mem_ratio + profile_.branch_ratio) {
        emitBranch(out);
    } else {
        out.kind = InstrKind::Alu;
        out.pc = fetch_pc;
        out.dest_reg = next_dest_reg_;
        // Shallow dependency chains: most ALU ops are independent;
        // some consume a recent value.
        if (rng_.chance(0.4)) {
            out.src_regs[0] = static_cast<uint8_t>(
                2 + rng_.nextBounded(kNumRegs - 2));
        }
        next_dest_reg_ = static_cast<uint8_t>(
            2 + (next_dest_reg_ - 1) % (kNumRegs - 2));
    }
    if (out.pc == 0)
        out.pc = fetch_pc;
    return true;
}

VectorInstructionSource::VectorInstructionSource(
    std::string name, std::vector<Instruction> instructions)
    : name_(std::move(name)), instructions_(std::move(instructions))
{
}

bool
VectorInstructionSource::next(Instruction &out)
{
    if (pos_ >= instructions_.size())
        return false;
    out = instructions_[pos_++];
    return true;
}

void
VectorInstructionSource::reset()
{
    pos_ = 0;
}

const std::string &
VectorInstructionSource::name() const
{
    return name_;
}

} // namespace rlr::trace
