/**
 * @file
 * Crash-safe sweep robustness: journal-backed resume (full and
 * partial, byte-identical exports), retry-with-backoff on
 * transient faults, the --cell-timeout watchdog reaping a hung
 * cell while the rest of the sweep completes, and the FaultPlan
 * grammar driving all of it.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "sim/fault_plan.hh"
#include "sim/journal.hh"
#include "sim/sweep_runner.hh"

using namespace rlr;
using sim::FaultKind;
using sim::FaultPlan;
using sim::SweepCell;
using sim::SweepOptions;
using sim::SweepRunner;

namespace fs = std::filesystem;

namespace
{

/** Synthetic cell body (same shape as test_sweep_runner). */
sim::RunResult
fakeRun(const SweepRunner::CellSpec &spec, const sim::SimParams &p)
{
    sim::RunResult r;
    sim::CoreResult core;
    core.workload = spec.cores.empty() ? "" : spec.cores[0];
    core.instructions = 1000;
    core.cycles = 500 + p.seed % 97;
    core.ipc = static_cast<double>(core.instructions) /
               static_cast<double>(core.cycles);
    r.cores.push_back(core);
    r.total_instructions = core.instructions;
    r.llc_demand_accesses = 100;
    r.llc_demand_hits = 60 + p.seed % 7;
    r.llc_demand_misses =
        r.llc_demand_accesses - r.llc_demand_hits;
    r.stats.counters = {{"llc.LD_hit", r.llc_demand_hits}};
    return r;
}

std::string
tempDir(const char *name)
{
    const std::string dir = ::testing::TempDir() + name;
    fs::remove_all(dir);
    return dir;
}

std::string
recordPath(const std::string &dir, const SweepCell &cell)
{
    const uint64_t hash = sim::SweepJournal::specHash(
        SweepRunner::CellSpec{cell.workload, cell.policy,
                              {cell.workload}},
        cell.seed);
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return dir + "/cell-" + buf + ".json";
}

} // namespace

TEST(SweepResume, FullResumeSkipsEveryCellByteIdentically)
{
    const std::string dir = tempDir("resume_full");
    sim::SimParams params;
    SweepOptions opts;
    opts.threads = 2;
    opts.journal_dir = dir;
    opts.stable_telemetry = true;

    std::atomic<int> runs{0};
    auto counting = [&](const SweepRunner::CellSpec &spec,
                        const sim::SimParams &p) {
        ++runs;
        return fakeRun(spec, p);
    };

    SweepRunner first(params, opts);
    first.setCellFn(counting);
    const auto cells1 =
        first.run({"w1", "w2"}, {"LRU", "RLR"});
    EXPECT_EQ(runs.load(), 4);
    EXPECT_EQ(first.stats().value("completed_cells"), 4u);
    EXPECT_EQ(first.stats().value("resumed_cells"), 0u);

    SweepRunner second(params, opts);
    second.setCellFn(counting);
    const auto cells2 =
        second.run({"w1", "w2"}, {"LRU", "RLR"});
    // Every cell served from the journal: zero re-execution.
    EXPECT_EQ(runs.load(), 4);
    EXPECT_EQ(second.stats().value("resumed_cells"), 4u);
    for (const auto &c : cells2)
        EXPECT_TRUE(c.resumed) << c.workload << "/" << c.policy;

    // The resumed export is byte-identical to the original run's
    // — the property the crash/resume harness asserts end to end.
    EXPECT_EQ(SweepRunner::toJson(cells1),
              SweepRunner::toJson(cells2));
    fs::remove_all(dir);
}

TEST(SweepResume, PartialResumeRerunsOnlyTheMissingCell)
{
    const std::string dir = tempDir("resume_partial");
    sim::SimParams params;
    SweepOptions opts;
    opts.journal_dir = dir;
    opts.stable_telemetry = true;

    std::atomic<int> runs{0};
    auto counting = [&](const SweepRunner::CellSpec &spec,
                        const sim::SimParams &p) {
        ++runs;
        return fakeRun(spec, p);
    };

    SweepRunner first(params, opts);
    first.setCellFn(counting);
    const auto cells1 = first.run({"w1", "w2", "w3"}, {"LRU"});
    ASSERT_EQ(runs.load(), 3);

    // Simulate a crash that lost one record: delete it.
    const std::string victim = recordPath(dir, cells1[1]);
    ASSERT_TRUE(fs::remove(victim)) << victim;

    SweepRunner second(params, opts);
    second.setCellFn(counting);
    const auto cells2 = second.run({"w1", "w2", "w3"}, {"LRU"});
    EXPECT_EQ(runs.load(), 4); // exactly one cell re-ran
    EXPECT_EQ(second.stats().value("resumed_cells"), 2u);
    EXPECT_TRUE(cells2[0].resumed);
    EXPECT_FALSE(cells2[1].resumed);
    EXPECT_TRUE(cells2[2].resumed);
    EXPECT_EQ(SweepRunner::toJson(cells1),
              SweepRunner::toJson(cells2));
    fs::remove_all(dir);
}

TEST(SweepResume, TransientFaultRetriesThenSucceeds)
{
    sim::SimParams params;
    SweepOptions opts;
    opts.cell_retries = 2;
    opts.retry_base_s = 0.001;
    opts.retry_cap_s = 0.002;
    opts.faults = FaultPlan::parse("transient:2@0");

    SweepRunner runner(params, opts);
    runner.setCellFn(fakeRun);
    const auto cells = runner.run({"w1", "w2"}, {"LRU"});
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_TRUE(cells[0].ok()) << cells[0].error;
    EXPECT_EQ(cells[0].attempts, 3u); // 2 failures + 1 success
    EXPECT_GT(cells[0].retry_wait_s, 0.0);
    EXPECT_EQ(cells[1].attempts, 1u);
    EXPECT_EQ(runner.stats().value("retries"), 2u);
    EXPECT_EQ(runner.stats().value("failed_cells"), 0u);
}

TEST(SweepResume, TransientFaultExhaustsRetriesAndFails)
{
    sim::SimParams params;
    SweepOptions opts;
    opts.cell_retries = 1;
    opts.retry_base_s = 0.001;
    opts.retry_cap_s = 0.002;
    opts.faults = FaultPlan::parse("transient:5@0");

    SweepRunner runner(params, opts);
    runner.setCellFn(fakeRun);
    const auto cells = runner.run({"w1"}, {"LRU"});
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_FALSE(cells[0].ok());
    EXPECT_NE(cells[0].error.find("transient"),
              std::string::npos);
    EXPECT_EQ(cells[0].attempts, 2u);
    EXPECT_EQ(runner.stats().value("retries"), 1u);
    EXPECT_EQ(runner.stats().value("failed_cells"), 1u);
}

TEST(SweepResume, NonRetryableFaultFailsWithoutRetry)
{
    sim::SimParams params;
    SweepOptions opts;
    opts.cell_retries = 3;
    opts.faults = FaultPlan::parse("throw@w1:LRU");

    SweepRunner runner(params, opts);
    runner.setCellFn(fakeRun);
    const auto cells = runner.run({"w1"}, {"LRU"});
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].error, "injected fault: throw");
    EXPECT_EQ(cells[0].attempts, 1u); // plain throws never retry
    EXPECT_EQ(runner.stats().value("retries"), 0u);
}

TEST(SweepResume, WatchdogReapsHungCellWhileOthersComplete)
{
    // The acceptance scenario: one injected hang must be reaped
    // by --cell-timeout while every other cell still finishes.
    sim::SimParams params;
    SweepOptions opts;
    opts.threads = 2;
    opts.cell_timeout_s = 0.2;
    opts.faults = FaultPlan::parse("hang@0");

    SweepRunner runner(params, opts);
    runner.setCellFn(fakeRun);
    const auto cells = runner.run({"w1", "w2", "w3"}, {"LRU"});
    ASSERT_EQ(cells.size(), 3u);
    EXPECT_FALSE(cells[0].ok());
    EXPECT_TRUE(cells[0].timed_out);
    // Deterministic message derived from the flag, not from
    // measured wall clock.
    EXPECT_EQ(cells[0].error,
              "timeout: attempt exceeded --cell-timeout 0.2s");
    EXPECT_TRUE(cells[1].ok()) << cells[1].error;
    EXPECT_TRUE(cells[2].ok()) << cells[2].error;
    EXPECT_EQ(runner.stats().value("timeouts"), 1u);
    EXPECT_EQ(runner.stats().value("failed_cells"), 1u);
}

TEST(SweepResume, TimeoutIsRetriedWhenRetriesAllowed)
{
    sim::SimParams params;
    SweepOptions opts;
    opts.cell_timeout_s = 0.1;
    opts.cell_retries = 1;
    opts.retry_base_s = 0.001;
    opts.retry_cap_s = 0.002;
    opts.faults = FaultPlan::parse("hang@0");

    SweepRunner runner(params, opts);
    runner.setCellFn(fakeRun);
    const auto cells = runner.run({"w1"}, {"LRU"});
    ASSERT_EQ(cells.size(), 1u);
    // The hang fires every attempt, so both attempts time out.
    EXPECT_TRUE(cells[0].timed_out);
    EXPECT_EQ(cells[0].attempts, 2u);
    EXPECT_EQ(runner.stats().value("timeouts"), 2u);
    EXPECT_EQ(runner.stats().value("retries"), 1u);
}

TEST(SweepResume, CorruptJournalFaultForcesRerunOfThatCell)
{
    const std::string dir = tempDir("resume_corrupt");
    sim::SimParams params;
    SweepOptions opts;
    opts.journal_dir = dir;
    opts.stable_telemetry = true;
    opts.faults = FaultPlan::parse("corrupt-journal@0");

    std::atomic<int> runs{0};
    auto counting = [&](const SweepRunner::CellSpec &spec,
                        const sim::SimParams &p) {
        ++runs;
        return fakeRun(spec, p);
    };

    SweepRunner first(params, opts);
    first.setCellFn(counting);
    const auto cells1 = first.run({"w1", "w2"}, {"LRU"});
    ASSERT_EQ(runs.load(), 2);
    // Both cells "completed" — but cell 0's record is torn.
    EXPECT_TRUE(cells1[0].ok());

    SweepOptions clean = opts;
    clean.faults = FaultPlan();
    SweepRunner second(params, clean);
    second.setCellFn(counting);
    const auto cells2 = second.run({"w1", "w2"}, {"LRU"});
    // The corrupt record warned and re-ran; the intact one
    // resumed.
    EXPECT_EQ(runs.load(), 3);
    EXPECT_EQ(second.stats().value("resumed_cells"), 1u);
    EXPECT_FALSE(cells2[0].resumed);
    EXPECT_TRUE(cells2[1].resumed);
    EXPECT_EQ(SweepRunner::toJson(cells1),
              SweepRunner::toJson(cells2));
    fs::remove_all(dir);
}

TEST(SweepResume, FailedCellsAreJournaledAsFinalOutcomes)
{
    // A deterministic failure (plain throw) is a final outcome:
    // resume must serve it from the journal, not re-run it.
    const std::string dir = tempDir("resume_failed_cell");
    sim::SimParams params;
    SweepOptions opts;
    opts.journal_dir = dir;
    opts.stable_telemetry = true;
    opts.faults = FaultPlan::parse("throw@0");

    std::atomic<int> runs{0};
    auto counting = [&](const SweepRunner::CellSpec &spec,
                        const sim::SimParams &p) {
        ++runs;
        return fakeRun(spec, p);
    };

    SweepRunner first(params, opts);
    first.setCellFn(counting);
    const auto cells1 = first.run({"w1", "w2"}, {"LRU"});
    EXPECT_FALSE(cells1[0].ok());
    ASSERT_EQ(runs.load(), 1); // cell 0 threw before the body

    SweepRunner second(params, opts);
    second.setCellFn(counting);
    const auto cells2 = second.run({"w1", "w2"}, {"LRU"});
    EXPECT_EQ(runs.load(), 1); // nothing re-ran
    EXPECT_EQ(second.stats().value("resumed_cells"), 2u);
    EXPECT_FALSE(cells2[0].ok());
    EXPECT_EQ(cells2[0].error, "injected fault: throw");
    EXPECT_EQ(SweepRunner::toJson(cells1),
              SweepRunner::toJson(cells2));
    fs::remove_all(dir);
}

TEST(SweepResume, StableTelemetryZeroesRetryWait)
{
    sim::SimParams params;
    SweepOptions opts;
    opts.stable_telemetry = true;
    opts.cell_retries = 1;
    opts.retry_base_s = 0.001;
    opts.retry_cap_s = 0.002;
    opts.faults = FaultPlan::parse("transient:1@0");

    SweepRunner runner(params, opts);
    runner.setCellFn(fakeRun);
    const auto cells = runner.run({"w1"}, {"LRU"});
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].attempts, 2u); // attempts stay truthful
    EXPECT_EQ(cells[0].retry_wait_s, 0.0); // wall clock zeroed
    const std::string json = SweepRunner::toJson(cells);
    EXPECT_NE(json.find("\"retry_wait_s\": 0,"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"attempts\": 2,"), std::string::npos);
}

// ---- FaultPlan grammar ------------------------------------------

TEST(FaultPlan, EmptySpecMatchesNothing)
{
    const FaultPlan plan = FaultPlan::parse("");
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(plan.actionFor(0, "w:LRU", 1).kind,
              FaultKind::None);
}

TEST(FaultPlan, SelectsByIndex)
{
    const FaultPlan plan = FaultPlan::parse("throw@3");
    EXPECT_EQ(plan.actionFor(3, "any", 1).kind, FaultKind::Throw);
    EXPECT_EQ(plan.actionFor(2, "any", 1).kind, FaultKind::None);
}

TEST(FaultPlan, SelectsByLabelWithColon)
{
    // Cell labels contain ':' — the selector split must happen at
    // the first '@', not the first ':'.
    const FaultPlan plan = FaultPlan::parse("hang@429.mcf:RLR");
    EXPECT_EQ(plan.actionFor(7, "429.mcf:RLR", 1).kind,
              FaultKind::Hang);
    EXPECT_EQ(plan.actionFor(7, "429.mcf:LRU", 1).kind,
              FaultKind::None);
}

TEST(FaultPlan, TransientCarriesAttemptCount)
{
    const auto action =
        FaultPlan::parse("transient:3@0").actionFor(0, "x", 1);
    EXPECT_EQ(action.kind, FaultKind::Transient);
    EXPECT_EQ(action.fail_attempts, 3u);
}

TEST(FaultPlan, MultipleEntriesFirstMatchWins)
{
    const FaultPlan plan =
        FaultPlan::parse("throw@1,hang@1,abort@2");
    EXPECT_EQ(plan.actionFor(1, "x", 1).kind, FaultKind::Throw);
    EXPECT_EQ(plan.actionFor(2, "x", 1).kind,
              FaultKind::AbortProcess);
}

TEST(FaultPlan, RateIsDeterministicAndBounded)
{
    const FaultPlan all = FaultPlan::parse("throw%1.0");
    const FaultPlan none = FaultPlan::parse("throw%0.0");
    const FaultPlan half = FaultPlan::parse("throw%0.5");
    int hits = 0;
    for (size_t i = 0; i < 200; ++i) {
        EXPECT_EQ(all.actionFor(i, "x", 9).kind,
                  FaultKind::Throw);
        EXPECT_EQ(none.actionFor(i, "x", 9).kind,
                  FaultKind::None);
        // Same (seed, index) always gives the same decision.
        EXPECT_EQ(half.actionFor(i, "x", 9).kind,
                  half.actionFor(i, "x", 9).kind);
        if (half.actionFor(i, "x", 9).kind == FaultKind::Throw)
            ++hits;
    }
    EXPECT_GT(hits, 50);
    EXPECT_LT(hits, 150);
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    EXPECT_THROW(FaultPlan::parse("explode@0"),
                 std::runtime_error); // unknown kind
    EXPECT_THROW(FaultPlan::parse("throw"),
                 std::runtime_error); // no selector
    EXPECT_THROW(FaultPlan::parse("throw@"),
                 std::runtime_error); // empty selector
    EXPECT_THROW(FaultPlan::parse("throw%2.0"),
                 std::runtime_error); // rate out of range
    EXPECT_THROW(FaultPlan::parse("transient:0@1"),
                 std::runtime_error); // zero attempt count
    EXPECT_THROW(FaultPlan::parse("transient:x@1"),
                 std::runtime_error); // junk attempt count
}
