# Empty dependencies file for fig7_victim_recency.
# This may be replaced when dependencies are built.
