/**
 * @file
 * `report`: render a paper-fidelity REPORT.md scoreboard from a
 * SweepRunner --json export.
 *
 *   ./build/tools/report --from sweep.json [--out REPORT.md]
 *
 * Any bench binary's --json output works as input; the report
 * covers whatever (workload x policy) cells the sweep contains
 * and compares them against the paper's published numbers.
 */

#include <cstdio>
#include <string>

#include "tools/report_gen.hh"
#include "util/args.hh"
#include "util/atomic_file.hh"
#include "util/logging.hh"

namespace
{

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        rlr::util::fatal("cannot open input '{}'", path);
    std::string text;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

void
writeFile(const std::string &path, const std::string &text)
{
    rlr::util::atomicWriteFileOrFatal(path, text);
}

} // namespace

int
main(int argc, char **argv)
{
    rlr::util::ArgParser parser(
        "Render REPORT.md from a SweepRunner --json export");
    parser.addOption("from", "",
                     "Sweep JSON input path (required; produced "
                     "by any bench binary's --json flag)");
    parser.addOption("out", "REPORT.md",
                     "Markdown output path ('-' for stdout)");
    parser.addOption("title", "RLR reproduction report",
                     "Report H1 title");
    if (!parser.parse(argc, argv))
        return 0;

    const std::string from = parser.get("from");
    if (from.empty())
        rlr::util::fatal(
            "--from <sweep.json> is required (run any bench "
            "binary with --json first)");

    rlr::tools::ReportOptions opts;
    opts.title = parser.get("title");
    opts.source = from;
    const std::string report =
        rlr::tools::generateReport(readFile(from), opts);

    const std::string out = parser.get("out");
    if (out == "-") {
        std::fputs(report.c_str(), stdout);
    } else {
        writeFile(out, report);
        std::fprintf(stderr, "wrote %s (%zu bytes)\n",
                     out.c_str(), report.size());
    }
    return 0;
}
