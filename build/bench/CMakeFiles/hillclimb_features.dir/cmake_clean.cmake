file(REMOVE_RECURSE
  "CMakeFiles/hillclimb_features.dir/hillclimb_features.cc.o"
  "CMakeFiles/hillclimb_features.dir/hillclimb_features.cc.o.d"
  "hillclimb_features"
  "hillclimb_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hillclimb_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
