#include "trace/record.hh"

namespace rlr::trace
{

std::string_view
accessTypeName(AccessType type)
{
    switch (type) {
      case AccessType::Load:
        return "LD";
      case AccessType::Rfo:
        return "RFO";
      case AccessType::Prefetch:
        return "PF";
      case AccessType::Writeback:
        return "WB";
    }
    return "??";
}

} // namespace rlr::trace
