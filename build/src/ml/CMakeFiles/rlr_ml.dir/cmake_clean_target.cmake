file(REMOVE_RECURSE
  "librlr_ml.a"
)
