file(REMOVE_RECURSE
  "CMakeFiles/ablation_kpcp.dir/ablation_kpcp.cc.o"
  "CMakeFiles/ablation_kpcp.dir/ablation_kpcp.cc.o.d"
  "ablation_kpcp"
  "ablation_kpcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kpcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
