# Empty dependencies file for test_instr_io.
# This may be replaced when dependencies are built.
