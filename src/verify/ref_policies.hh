/**
 * @file
 * Reference replacement models for the differential harness.
 *
 * Each class is a from-scratch, "obviously correct" transcription
 * of the policy's published specification against the RefPolicy
 * interface. None of them include or reuse code from
 * src/policies/ or src/core/; only leaf utilities (util::Rng,
 * util::SatCounter, util::foldXor) are shared, because bit-exact
 * equivalence with the production stack requires agreeing on the
 * PRNG stream and signature hash, and those primitives are
 * unit-tested in isolation.
 *
 * RefBelady is the exception to "mirrors a production policy": it
 * is a brute-force optimal (MIN) model over a fixed trace, used as
 * the hit-rate upper bound in the fuzz invariants rather than as a
 * differential twin.
 */

#ifndef RLR_VERIFY_REF_POLICIES_HH
#define RLR_VERIFY_REF_POLICIES_HH

#include <cstdint>
#include <vector>

#include "util/rng.hh"
#include "util/sat_counter.hh"
#include "verify/ref_cache.hh"

namespace rlr::verify
{

/** True LRU: global clock, per-line last-use timestamps. */
class RefLru : public RefPolicy
{
  public:
    void reset(uint32_t sets, uint32_t ways) override;
    uint32_t victim(const RefAccess &access, uint32_t set,
                    const std::vector<RefLine> &lines,
                    bool allow_bypass) override;
    void touch(const RefAccess &access, uint32_t set, uint32_t way,
               bool hit) override;
    std::string name() const override { return "ref-LRU"; }

  private:
    uint32_t ways_ = 0;
    uint64_t clock_ = 0;
    std::vector<std::vector<uint64_t>> last_use_;
};

/** Insertion behaviour of the RRIP family. */
enum class RripMode
{
    Srrip,
    Brrip,
    Drrip,
};

/**
 * SRRIP / BRRIP / DRRIP (Jaleel et al., ISCA 2010). Victim = first
 * way at max RRPV, ageing all lines until one qualifies; hits
 * promote to RRPV 0; insertion depends on the mode (and, for
 * DRRIP, on set-dueling between interleaved leader sets).
 */
class RefRrip : public RefPolicy
{
  public:
    RefRrip(RripMode mode, unsigned rrpv_bits, uint64_t seed,
            uint32_t leader_sets);

    void reset(uint32_t sets, uint32_t ways) override;
    uint32_t victim(const RefAccess &access, uint32_t set,
                    const std::vector<RefLine> &lines,
                    bool allow_bypass) override;
    void touch(const RefAccess &access, uint32_t set, uint32_t way,
               bool hit) override;
    std::string name() const override;

  private:
    enum class Role { SrripLeader, BrripLeader, Follower };
    Role role(uint32_t set) const;
    uint8_t insertion(uint32_t set);

    RripMode mode_;
    uint8_t max_rrpv_;
    uint64_t seed_;
    uint32_t leader_sets_;
    uint32_t sets_ = 0;
    uint32_t ways_ = 0;
    util::Rng rng_;
    util::SignedSatCounter psel_{10, 0};
    std::vector<std::vector<uint8_t>> rrpv_;
};

/**
 * SHiP (Wu et al., MICRO 2011): RRIP victim search plus a
 * signature history counter table indexed by a folded PC hash that
 * steers the insertion RRPV.
 */
class RefShip : public RefPolicy
{
  public:
    RefShip(unsigned rrpv_bits, unsigned signature_bits,
            unsigned shct_bits);

    void reset(uint32_t sets, uint32_t ways) override;
    uint32_t victim(const RefAccess &access, uint32_t set,
                    const std::vector<RefLine> &lines,
                    bool allow_bypass) override;
    void touch(const RefAccess &access, uint32_t set, uint32_t way,
               bool hit) override;
    void evicted(uint32_t set, uint32_t way) override;
    std::string name() const override { return "ref-SHiP"; }

  private:
    struct Line
    {
        uint8_t rrpv = 0;
        uint32_t signature = 0;
        bool outcome = false;
    };

    uint32_t signature(uint64_t pc, trace::AccessType type) const;

    unsigned rrpv_bits_;
    unsigned signature_bits_;
    unsigned shct_bits_;
    uint8_t max_rrpv_;
    uint32_t ways_ = 0;
    std::vector<std::vector<Line>> lines_;
    std::vector<util::SatCounter> shct_;
};

/** Knobs of the RLR reference model (mirror of core::RlrConfig). */
struct RefRlrParams
{
    bool optimized = true;
    unsigned age_bits = 2;
    unsigned age_tick_misses = 8;
    unsigned hit_bits = 1;
    unsigned rd_update_hits = 32;
    unsigned rd_multiplier = 4;
    bool use_hit_priority = true;
    bool use_type_priority = true;
    unsigned age_weight = 8;
    bool allow_bypass = false;
};

/**
 * RLR priority math (paper Section IV): per-line age / hit / type
 * state, a reuse distance predicted from demand-hit preuse
 * samples, and victim = argmin of
 *     P = age_weight * [age <= RD] + P_type + P_hit
 * with ties broken toward the most recently used line.
 */
class RefRlr : public RefPolicy
{
  public:
    explicit RefRlr(RefRlrParams params);

    void reset(uint32_t sets, uint32_t ways) override;
    uint32_t victim(const RefAccess &access, uint32_t set,
                    const std::vector<RefLine> &lines,
                    bool allow_bypass) override;
    void touch(const RefAccess &access, uint32_t set, uint32_t way,
               bool hit) override;
    std::string name() const override { return "ref-RLR"; }

    uint64_t reuseDistance() const { return rd_; }

  private:
    struct Line
    {
        uint32_t age = 0;
        uint32_t hits = 0;
        bool last_was_prefetch = false;
        uint64_t last_use = 0;
    };

    /** Age scaled to RD's set-miss/-access units. */
    uint64_t ageUnits(const Line &l) const;
    uint64_t priority(const Line &l) const;

    RefRlrParams params_;
    uint32_t age_max_;
    uint32_t hit_max_;
    uint32_t ways_ = 0;
    uint64_t rd_ = 1;
    uint64_t preuse_accum_ = 0;
    unsigned preuse_samples_ = 0;
    uint64_t clock_ = 0;
    std::vector<std::vector<Line>> lines_;
    std::vector<uint8_t> set_miss_ctr_;
};

/**
 * Brute-force Belady MIN over a fixed trace: the victim is the
 * resident line whose next use lies farthest in the future, found
 * by scanning the remainder of the trace (O(n) per decision — for
 * tiny caches and short traces only). With @p allow_bypass the
 * incoming line is also a candidate: if its own next use is
 * farthest, the fill is bypassed, which upper-bounds every
 * bypass-capable policy too.
 */
class RefBelady : public RefPolicy
{
  public:
    /** @param trace the full access stream (line addresses). */
    RefBelady(std::vector<uint64_t> trace_lines, bool allow_bypass);

    void reset(uint32_t sets, uint32_t ways) override;
    uint32_t victim(const RefAccess &access, uint32_t set,
                    const std::vector<RefLine> &lines,
                    bool allow_bypass) override;
    void touch(const RefAccess &access, uint32_t set, uint32_t way,
               bool hit) override;
    std::string name() const override { return "ref-Belady"; }

  private:
    /** Position of the next use of @p line strictly after @p seq. */
    uint64_t nextUse(uint64_t line, uint64_t seq) const;

    std::vector<uint64_t> trace_lines_;
    bool allow_bypass_;
};

} // namespace rlr::verify

#endif // RLR_VERIFY_REF_POLICIES_HH
