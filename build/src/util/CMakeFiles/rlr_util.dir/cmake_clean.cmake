file(REMOVE_RECURSE
  "CMakeFiles/rlr_util.dir/args.cc.o"
  "CMakeFiles/rlr_util.dir/args.cc.o.d"
  "CMakeFiles/rlr_util.dir/format.cc.o"
  "CMakeFiles/rlr_util.dir/format.cc.o.d"
  "CMakeFiles/rlr_util.dir/histogram.cc.o"
  "CMakeFiles/rlr_util.dir/histogram.cc.o.d"
  "CMakeFiles/rlr_util.dir/logging.cc.o"
  "CMakeFiles/rlr_util.dir/logging.cc.o.d"
  "CMakeFiles/rlr_util.dir/rng.cc.o"
  "CMakeFiles/rlr_util.dir/rng.cc.o.d"
  "CMakeFiles/rlr_util.dir/table.cc.o"
  "CMakeFiles/rlr_util.dir/table.cc.o.d"
  "CMakeFiles/rlr_util.dir/thread_pool.cc.o"
  "CMakeFiles/rlr_util.dir/thread_pool.cc.o.d"
  "librlr_util.a"
  "librlr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
