#include "sim/experiment.hh"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "obs/profiler.hh"
#include "obs/resource.hh"
#include "sim/sweep_runner.hh"
#include "stats/stats.hh"
#include "trace/workloads.hh"
#include "util/logging.hh"

namespace rlr::sim
{

double
RunResult::llcDemandHitRate() const
{
    return stats::hitRate(llc_demand_hits, llc_demand_accesses);
}

double
RunResult::llcDemandMpki() const
{
    return stats::mpki(llc_demand_misses, total_instructions);
}

double
RunResult::ipc() const
{
    return cores.empty() ? 0.0 : cores[0].ipc;
}

double
RunResult::speedupOver(const RunResult &baseline) const
{
    util::ensure(cores.size() == baseline.cores.size(),
                 "speedupOver: core count mismatch");
    std::vector<double> ratios;
    ratios.reserve(cores.size());
    for (size_t i = 0; i < cores.size(); ++i)
        ratios.push_back(
            stats::speedup(cores[i].ipc, baseline.cores[i].ipc));
    return stats::geomean(ratios);
}

RunResult
runWorkloads(const std::vector<std::string> &workloads,
             const SimParams &params)
{
    util::ensure(!workloads.empty(), "runWorkloads: no workloads");
    RLR_PROF_SCOPE("sim.run");
    const obs::ResourceSample res_start =
        params.record_resources
            ? obs::ResourceSample::now(
                  obs::ResourceSample::Scope::Thread)
            : obs::ResourceSample{};
    const auto n = static_cast<uint32_t>(workloads.size());

    SystemConfig sys_cfg;
    sys_cfg.num_cores = n;
    sys_cfg.llc_policy = params.llc_policy;
    sys_cfg.policy_seed = params.seed;
    sys_cfg.l2_prefetcher = params.l2_prefetcher;
    sys_cfg.capture_llc_trace = params.capture_llc_trace;
    sys_cfg.llc_events_capacity = params.llc_events_capacity;
    sys_cfg.llc_events_sample_sets = params.llc_events_sample_sets;
    sys_cfg.llc_epoch_length = params.llc_epoch_length;
    sys_cfg.cancel = params.cancel;
    System system(sys_cfg);

    std::vector<std::unique_ptr<trace::SyntheticGenerator>> gens;
    for (uint32_t i = 0; i < n; ++i) {
        gens.push_back(trace::makeGenerator(
            workloads[i], params.seed + 0x9e37 * (i + 1)));
    }

    const uint32_t quantum = std::max(1u, params.interleave_quantum);

    // Advance all cores in approximate global-time order until
    // each has executed `target` instructions.
    auto advance_all = [&](uint64_t target,
                           auto instr_count) {
        if (n == 1) {
            const uint64_t done = instr_count(0);
            if (done < target) {
                RLR_PROF_SCOPE("sim.core.run");
                system.core(0).run(*gens[0], target - done);
            }
            return;
        }
        for (;;) {
            // Pick the lagging core by current cycle among cores
            // still short of the target.
            uint32_t pick = n;
            uint64_t best_cycle = ~0ULL;
            bool all_done = true;
            for (uint32_t i = 0; i < n; ++i) {
                if (instr_count(i) >= target)
                    continue;
                all_done = false;
                if (system.core(i).cycles() < best_cycle) {
                    best_cycle = system.core(i).cycles();
                    pick = i;
                }
            }
            if (all_done)
                break;
            const uint64_t remaining = target - instr_count(pick);
            // Distinct name from the single-core span: this one is
            // per-quantum and sampled, and a merged node keeps one
            // sampling shift.
            RLR_PROF_SCOPE_SAMPLED("sim.core.quantum", 6);
            system.core(pick).run(
                *gens[pick],
                std::min<uint64_t>(quantum, remaining));
        }
    };

    {
        RLR_PROF_SCOPE("sim.warmup");
        advance_all(params.warmup_instructions, [&](uint32_t i) {
            return system.core(i).instructions();
        });
    }
    system.resetStats();

    {
        RLR_PROF_SCOPE("sim.measure");
        advance_all(params.sim_instructions, [&](uint32_t i) {
            return system.core(i).measuredInstructions();
        });
    }

    RunResult result;
    for (uint32_t i = 0; i < n; ++i) {
        CoreResult cr;
        cr.workload = workloads[i];
        cr.ipc = system.core(i).ipc();
        cr.instructions = system.core(i).measuredInstructions();
        cr.cycles = system.core(i).measuredCycles();
        result.total_instructions += cr.instructions;
        result.cores.push_back(cr);
    }
    result.llc_demand_accesses = system.llc().demandAccesses();
    result.llc_demand_hits = system.llc().demandHits();
    result.llc_demand_misses = system.llc().demandMisses();
    stats::Registry registry;
    system.describeStats(registry);
    if (params.record_resources) {
        const obs::ResourceSample delta =
            obs::ResourceSample::now(
                obs::ResourceSample::Scope::Thread)
                .deltaFrom(res_start);
        obs::describeResourceStats(registry, "obs.res", delta);
    }
    if (obs::Profiler::profilingEnabled())
        obs::describeProfilerStats(registry, "obs.prof");
    result.stats = registry.snapshot();
    if (params.capture_llc_trace)
        result.llc_trace = system.llcTrace();
    if (system.llcEventLog())
        result.llc_events = system.llcEventLog()->data();
    return result;
}

RunResult
runSingleCore(const std::string &workload, const SimParams &params)
{
    return runWorkloads({workload}, params);
}

trace::LlcTrace
captureLlcTrace(const std::string &workload, const SimParams &params)
{
    RLR_PROF_SCOPE("sim.trace.capture");
    SimParams p = params;
    p.llc_policy = "LRU"; // unbiased capture, as in the paper
    p.capture_llc_trace = true;
    return runWorkloads({workload}, p).llc_trace;
}

std::vector<SweepCell>
sweep(const std::vector<std::string> &workloads,
      const std::vector<std::string> &policies,
      const SimParams &params, size_t threads)
{
    SweepOptions opts;
    opts.threads = threads;
    SweepRunner runner(params, opts);
    auto cells = runner.run(workloads, policies);
    for (const auto &c : cells) {
        if (!c.ok()) {
            throw std::runtime_error(
                util::format("sweep cell ({}, {}) failed: {}",
                             c.workload, c.policy, c.error));
        }
    }
    return cells;
}

const SweepCell &
findCell(const std::vector<SweepCell> &cells,
         const std::string &workload, const std::string &policy)
{
    for (const auto &c : cells) {
        if (c.workload == workload && c.policy == policy)
            return c;
    }
    util::fatal("sweep cell ({}, {}) not found", workload, policy);
}

} // namespace rlr::sim
