file(REMOVE_RECURSE
  "librlr_cpu.a"
)
