#!/usr/bin/env bash
# Observability end-to-end check (wired into ctest as
# `inspect_e2e`): runs the canonical tiny sweep with the full
# observability surface enabled (--events, --epoch,
# --chrome-trace, --stable-json), validates the Chrome trace with
# `inspect --check-trace`, renders the inspection report, and
# compares both the events export and the report byte-for-byte
# against the committed goldens:
#
#   tests/data/events_fixture.json   (bench --events export)
#   tests/data/inspect_golden.md     (tools/inspect report)
#
# --update rewrites the goldens instead of diffing (that is what
# scripts/update_golden.sh delegates to). The sweep is fully
# deterministic — synthetic workloads, fixed seed, per-cell seed
# derivation — so the goldens are stable across machines and
# thread counts.
#
# Usage: scripts/inspect_e2e.sh [--check|--update]
#            [--fig1-bin=PATH] [--inspect-bin=PATH]

set -eu

cd "$(dirname "$0")/.." || exit 1

mode=check
fig1_bin="build/bench/fig1_hitrate"
inspect_bin="build/tools/inspect"
for arg in "$@"; do
    case "$arg" in
        --check) mode=check ;;
        --update) mode=update ;;
        --fig1-bin=*) fig1_bin="${arg#--fig1-bin=}" ;;
        --inspect-bin=*) inspect_bin="${arg#--inspect-bin=}" ;;
        *)
            echo "inspect_e2e: unknown argument '$arg'" >&2
            echo "usage: $0 [--check|--update]" \
                 "[--fig1-bin=PATH] [--inspect-bin=PATH]" >&2
            exit 2
            ;;
    esac
done

for bin in "$fig1_bin" "$inspect_bin"; do
    [ -x "$bin" ] || {
        echo "inspect_e2e: binary '$bin' not found; build first" \
             "(cmake --build build) or pass --fig1-bin= /" \
             "--inspect-bin=" >&2
        exit 2
    }
done
# Absolute paths: the report is rendered from inside the temp dir
# so its "Source:" line stays the bare fixture filename.
case "$fig1_bin" in /*) ;; *) fig1_bin="$PWD/$fig1_bin" ;; esac
case "$inspect_bin" in /*) ;; *) inspect_bin="$PWD/$inspect_bin" ;; esac

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# The canonical sweep. Warmup is long enough to fill the 2MB LLC
# so the measured ring window contains evictions; --events-sample
# 4 exercises set sampling; the 30k-instruction window closes no
# full 5000-access epoch, so the export also covers the
# final-partial-epoch flush.
echo "inspect_e2e: running canonical sweep" >&2
"$fig1_bin" --workloads 429.mcf --policies LRU,RLR \
    --warmup 250000 --instructions 30000 --threads 2 --seed 42 \
    --stable-json \
    --events "$tmp/events_fixture.json" \
    --events-capacity 256 --events-sample 4 --epoch 5000 \
    --chrome-trace "$tmp/sweep_trace.json" >/dev/null

# The Chrome trace must be structurally valid trace_event JSON.
"$inspect_bin" --check-trace "$tmp/sweep_trace.json"

(cd "$tmp" && "$inspect_bin" --from events_fixture.json \
    --out inspect_golden.md --title "Golden trace inspection")

if [ "$mode" = update ]; then
    cp "$tmp/events_fixture.json" tests/data/events_fixture.json
    cp "$tmp/inspect_golden.md" tests/data/inspect_golden.md
    echo "inspect_e2e: regenerated tests/data/events_fixture.json" \
         "and tests/data/inspect_golden.md"
else
    for f in events_fixture.json inspect_golden.md; do
        if ! diff -u "tests/data/$f" "$tmp/$f"; then
            echo "inspect_e2e: tests/data/$f is stale; run" \
                 "scripts/update_golden.sh to regenerate" >&2
            exit 1
        fi
    done
    echo "inspect_e2e: events export and inspection report match" \
         "the goldens"
fi
