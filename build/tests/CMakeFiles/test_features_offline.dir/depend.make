# Empty dependencies file for test_features_offline.
# This may be replaced when dependencies are built.
