# Empty dependencies file for fig5_victim_age.
# This may be replaced when dependencies are built.
