#!/usr/bin/env bash
# Regenerate tests/data/report_golden.md from the canned sweep
# fixture with the report CLI, or (--check, wired into ctest as
# `update_golden_check`) verify that regeneration is a no-op on a
# clean tree — i.e. the committed golden matches what the current
# report generator produces.
#
# Usage: scripts/update_golden.sh [--check] [--report-bin=PATH]
#
# The report binary defaults to build/tools/report. The generator
# runs from tests/data so the report's "source" field stays the
# bare "sweep_fixture.json" the golden (and test_report) expect.

set -eu

cd "$(dirname "$0")/.." || exit 1

check=0
report_bin="build/tools/report"
for arg in "$@"; do
    case "$arg" in
        --check) check=1 ;;
        --report-bin=*) report_bin="${arg#--report-bin=}" ;;
        *)
            echo "update_golden: unknown argument '$arg'" >&2
            echo "usage: $0 [--check] [--report-bin=PATH]" >&2
            exit 2
            ;;
    esac
done

# Resolve to an absolute path before we cd into tests/data.
case "$report_bin" in
    /*) ;;
    *) report_bin="$PWD/$report_bin" ;;
esac
if [ ! -x "$report_bin" ]; then
    echo "update_golden: report binary '$report_bin' not found;" \
         "build first (cmake --build build) or pass" \
         "--report-bin=PATH" >&2
    exit 2
fi

cd tests/data || exit 1
golden="report_golden.md"
[ -f "$golden" ] || {
    echo "update_golden: $golden missing" >&2
    exit 2
}

if [ "$check" -eq 1 ]; then
    out=$(mktemp)
    trap 'rm -f "$out"' EXIT
    "$report_bin" --from sweep_fixture.json --out "$out" \
        --title "Golden sweep report"
    if ! diff -u "$golden" "$out"; then
        echo "update_golden: $golden is stale; run" \
             "scripts/update_golden.sh to regenerate" >&2
        exit 1
    fi
    echo "update_golden: $golden is up to date"
else
    "$report_bin" --from sweep_fixture.json --out "$golden" \
        --title "Golden sweep report"
    echo "update_golden: regenerated tests/data/$golden"
fi
