#include "ml/matrix.hh"

#include <cmath>

#include "util/logging.hh"

namespace rlr::ml
{

Matrix::Matrix(size_t rows, size_t cols, float init)
    : rows_(rows), cols_(cols),
      data_(rows * cols, init)
{
}

std::span<float>
Matrix::row(size_t r)
{
    return {data_.data() + r * cols_, cols_};
}

std::span<const float>
Matrix::row(size_t r) const
{
    return {data_.data() + r * cols_, cols_};
}

void
Matrix::initXavier(util::Rng &rng)
{
    const float bound = std::sqrt(
        6.0f / static_cast<float>(rows_ + cols_));
    for (auto &w : data_) {
        w = static_cast<float>(rng.nextDouble() * 2.0 - 1.0) *
            bound;
    }
}

void
Matrix::matvec(std::span<const float> x, std::span<float> out) const
{
    util::ensure(x.size() == cols_ && out.size() == rows_,
                 "Matrix::matvec: shape mismatch");
    for (size_t r = 0; r < rows_; ++r) {
        const float *w = data_.data() + r * cols_;
        float acc = 0.0f;
        for (size_t c = 0; c < cols_; ++c)
            acc += w[c] * x[c];
        out[r] = acc;
    }
}

void
Matrix::matvecT(std::span<const float> x, std::span<float> out) const
{
    util::ensure(x.size() == rows_ && out.size() == cols_,
                 "Matrix::matvecT: shape mismatch");
    for (size_t c = 0; c < cols_; ++c)
        out[c] = 0.0f;
    for (size_t r = 0; r < rows_; ++r) {
        const float xr = x[r];
        if (xr == 0.0f)
            continue;
        const float *w = data_.data() + r * cols_;
        for (size_t c = 0; c < cols_; ++c)
            out[c] += xr * w[c];
    }
}

void
Matrix::addOuter(std::span<const float> a, std::span<const float> b,
                 float scale)
{
    util::ensure(a.size() == rows_ && b.size() == cols_,
                 "Matrix::addOuter: shape mismatch");
    for (size_t r = 0; r < rows_; ++r) {
        const float ar = a[r] * scale;
        if (ar == 0.0f)
            continue;
        float *w = data_.data() + r * cols_;
        for (size_t c = 0; c < cols_; ++c)
            w[c] += ar * b[c];
    }
}

} // namespace rlr::ml
