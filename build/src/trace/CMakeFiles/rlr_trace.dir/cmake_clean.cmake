file(REMOVE_RECURSE
  "CMakeFiles/rlr_trace.dir/instr_io.cc.o"
  "CMakeFiles/rlr_trace.dir/instr_io.cc.o.d"
  "CMakeFiles/rlr_trace.dir/record.cc.o"
  "CMakeFiles/rlr_trace.dir/record.cc.o.d"
  "CMakeFiles/rlr_trace.dir/synthetic.cc.o"
  "CMakeFiles/rlr_trace.dir/synthetic.cc.o.d"
  "CMakeFiles/rlr_trace.dir/trace_io.cc.o"
  "CMakeFiles/rlr_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/rlr_trace.dir/workloads.cc.o"
  "CMakeFiles/rlr_trace.dir/workloads.cc.o.d"
  "librlr_trace.a"
  "librlr_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlr_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
