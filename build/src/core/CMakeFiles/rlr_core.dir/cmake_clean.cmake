file(REMOVE_RECURSE
  "CMakeFiles/rlr_core.dir/policy_factory.cc.o"
  "CMakeFiles/rlr_core.dir/policy_factory.cc.o.d"
  "CMakeFiles/rlr_core.dir/rlr.cc.o"
  "CMakeFiles/rlr_core.dir/rlr.cc.o.d"
  "librlr_core.a"
  "librlr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
