/**
 * @file
 * Shared helpers for replacement-policy tests: tiny geometries,
 * scripted access sequences, and trace builders for the offline
 * simulator.
 */

#ifndef RLR_TESTS_POLICY_TEST_UTIL_HH
#define RLR_TESTS_POLICY_TEST_UTIL_HH

#include <cstdint>
#include <vector>

#include "cache/replacement.hh"
#include "ml/offline.hh"
#include "trace/trace_io.hh"

namespace rlr::test
{

/** 4-set, 4-way geometry for direct policy poking. */
inline cache::CacheGeometry
tinyGeometry()
{
    cache::CacheGeometry g;
    g.name = "tiny";
    g.size_bytes = 4 * 4 * 64; // 4 sets x 4 ways
    g.ways = 4;
    return g;
}

/** Build an LLC access trace from (address, type) pairs. */
inline trace::LlcTrace
makeTrace(
    const std::vector<std::pair<uint64_t, trace::AccessType>> &seq,
    uint64_t pc = 0x400)
{
    trace::LlcTrace t;
    for (const auto &[addr, type] : seq)
        t.append({pc, addr, type, 0});
    return t;
}

/** Load-only trace from a list of line indices (addr = idx*64). */
inline trace::LlcTrace
loadTrace(const std::vector<uint64_t> &lines, uint64_t pc = 0x400)
{
    trace::LlcTrace t;
    for (const auto l : lines)
        t.append({pc, l * 64, trace::AccessType::Load, 0});
    return t;
}

/** Offline sim with a small cache (64 lines: 16 sets x 4 ways). */
inline ml::OfflineConfig
smallOffline()
{
    ml::OfflineConfig cfg;
    cfg.size_bytes = 16 * 4 * 64;
    cfg.ways = 4;
    return cfg;
}

} // namespace rlr::test

#endif // RLR_TESTS_POLICY_TEST_UTIL_HH
