
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_kpcp.cc" "bench/CMakeFiles/ablation_kpcp.dir/ablation_kpcp.cc.o" "gcc" "bench/CMakeFiles/ablation_kpcp.dir/ablation_kpcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/rlr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/rlr_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rlr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/rlr_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/rlr_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/rlr_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/rlr_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rlr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rlr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rlr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rlr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
