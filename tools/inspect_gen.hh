/**
 * @file
 * Trace-inspection report generator: renders a bench --events
 * export (obs::eventsToJson) into a markdown report answering
 * *why* a policy behaved as it did — decision mix, bypass-reason
 * breakdown, Fig-5/6/7-style victim statistics (age per last
 * access type, hit counts at eviction, recency position), victim
 * priority distribution, and per-set access/miss hot spots.
 *
 * Split from the CLI (tools/inspect.cc) so tests can call
 * generateInspect() and victimStats() directly — the latter is
 * the cross-validation surface against the ml offline pipeline's
 * FeatureStats (same units: age in set accesses, recency 0 =
 * LRU).
 */

#ifndef RLR_TOOLS_INSPECT_GEN_HH
#define RLR_TOOLS_INSPECT_GEN_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/events_io.hh"
#include "obs/heartbeat.hh"
#include "obs/profiler.hh"
#include "trace/record.hh"

namespace rlr::tools
{

/** Rendering options for generateInspect(). */
struct InspectOptions
{
    std::string title = "LLC decision-trace inspection";
    /** Shown as the provenance line ("" = omitted). */
    std::string source;
    /** Hottest sets listed in the heatmap section. */
    size_t top_sets = 8;
};

/**
 * Victim statistics aggregated from a log's eviction events —
 * the production-simulator counterpart of ml::FeatureStats
 * (Figs. 5-7), in the same units.
 */
struct VictimStats
{
    /** Fig. 5: age-at-eviction sums/counts per last access type
     *  (set-access units). */
    std::array<uint64_t, trace::kNumAccessTypes> victim_age_sum{};
    std::array<uint64_t, trace::kNumAccessTypes> victim_count{};

    /** Fig. 6: victims with 0 / 1 / >1 hits. */
    uint64_t victims_zero_hits = 0;
    uint64_t victims_one_hit = 0;
    uint64_t victims_multi_hits = 0;

    /** Fig. 7: victim recency histogram (index 0 = LRU). */
    std::vector<uint64_t> victim_recency;

    uint64_t evictions = 0;

    /** Mean age at eviction for victims of last type @p t. */
    double avgVictimAge(trace::AccessType t) const;
};

/** Aggregate the eviction events of one cell's log. */
VictimStats victimStats(const obs::EventLogData &log);

/**
 * Render the inspection report for an events export.
 * @param events_json output of obs::eventsToJson (bench --events)
 * @throws std::runtime_error on malformed input
 */
std::string generateInspect(const std::string &events_json,
                            const InspectOptions &opts);

/** Same, from already-parsed cells. */
std::string
generateInspect(const std::vector<obs::CellEvents> &cells,
                const InspectOptions &opts);

/**
 * Validate a Chrome trace_event JSON document (as written by
 * --chrome-trace): top-level "traceEvents" array whose members
 * carry name/ph/pid/tid, with numeric ts/dur on every "X" event.
 * @return number of trace events
 * @throws std::runtime_error describing the first violation
 */
size_t checkChromeTrace(const std::string &trace_json);

/**
 * Render one `inspect --top` frame from a parsed heartbeat:
 * sweep totals (done/running/failed, throughput, ETA, RSS) plus
 * one line per busy worker. Workers whose current cell has run
 * longer than max(5s, 3x the median busy-worker age) are flagged
 * as stragglers.
 */
std::string renderTop(const obs::Heartbeat &hb);

/**
 * Render a profile export (obs::profileToJson) as an indented
 * call tree with per-node calls, total/self time, and
 * percentiles, heaviest subtree first.
 */
std::string renderProfileTree(const obs::ProfileData &data);

} // namespace rlr::tools

#endif // RLR_TOOLS_INSPECT_GEN_HH
