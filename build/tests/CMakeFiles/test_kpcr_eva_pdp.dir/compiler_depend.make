# Empty compiler generated dependencies file for test_kpcr_eva_pdp.
# This may be replaced when dependencies are built.
