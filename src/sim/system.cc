#include "sim/system.hh"

#include "core/policy_factory.hh"
#include "core/rlr.hh"
#include "policies/lru.hh"
#include "prefetch/ip_stride.hh"
#include "prefetch/kpc_p.hh"
#include "prefetch/next_line.hh"
#include "util/logging.hh"

namespace rlr::sim
{

System::System(const SystemConfig &config) : config_(config)
{
    util::ensure(config_.num_cores >= 1, "System: no cores");

    dram_ = std::make_unique<mem::Dram>(config_.dram);

    cache::CacheGeometry llc_geom;
    llc_geom.name = "LLC";
    llc_geom.size_bytes =
        config_.llc_size_per_core * config_.num_cores;
    llc_geom.ways = config_.llc_ways;
    llc_geom.latency = config_.llc_latency;
    llc_geom.mshrs = 64 * config_.num_cores;
    llc_ = std::make_unique<cache::Cache>(
        llc_geom,
        core::makePolicy(config_.llc_policy, config_.policy_seed),
        dram_.get());
    // Only the LLC carries self-profiler spans: it is where the
    // replacement-policy work runs, and keeping L1/L2 bare holds
    // the enabled overhead inside the ctest budget.
    llc_->setProfiled(true);
    if (config_.capture_llc_trace) {
        llc_->setAccessSink([this](const trace::LlcAccess &a) {
            llc_trace_.append(a);
        });
    }
    if (config_.llc_events_capacity > 0) {
        obs::EventLogConfig ev_cfg;
        ev_cfg.capacity = config_.llc_events_capacity;
        ev_cfg.sample_sets = config_.llc_events_sample_sets;
        llc_events_ = std::make_unique<obs::EventLog>(ev_cfg);
        llc_->setEventLog(llc_events_.get());
    }
    if (config_.llc_epoch_length > 0) {
        llc_epoch_ = std::make_unique<obs::EpochSampler>(
            config_.llc_epoch_length);
        llc_->setEpochSampler(llc_epoch_.get());
        // RLR exposes its predicted reuse distance as the tracked
        // per-epoch policy scalar (paper Section IV's rd_).
        if (auto *rlr =
                dynamic_cast<core::RlrPolicy *>(llc_->policy())) {
            llc_epoch_->setScalarProvider(
                "rd", [rlr] { return rlr->reuseDistance(); });
        }
    }

    for (uint32_t i = 0; i < config_.num_cores; ++i) {
        cache::CacheGeometry l2_geom;
        l2_geom.name = util::format("cpu{}.L2", i);
        l2_geom.size_bytes = config_.l2_size;
        l2_geom.ways = config_.l2_ways;
        l2_geom.latency = config_.l2_latency;
        l2_geom.mshrs = 32;
        auto l2 = std::make_unique<cache::Cache>(
            l2_geom, std::make_unique<policies::LruPolicy>(),
            llc_.get());
        switch (config_.l2_prefetcher) {
          case L2Prefetcher::IpStride:
            l2->setPrefetcher(
                std::make_unique<prefetch::IpStridePrefetcher>());
            break;
          case L2Prefetcher::KpcP:
            l2->setPrefetcher(
                std::make_unique<prefetch::KpcPPrefetcher>());
            // KPC-P: low-confidence prefetches skip the L2 but
            // still fill the LLC (Kim et al.).
            l2->setPrefetchFillThreshold(0.25f);
            break;
          case L2Prefetcher::None:
            break;
        }

        cache::CacheGeometry l1i_geom;
        l1i_geom.name = util::format("cpu{}.L1I", i);
        l1i_geom.size_bytes = config_.l1i_size;
        l1i_geom.ways = config_.l1i_ways;
        l1i_geom.latency = config_.l1i_latency;
        l1i_geom.mshrs = 8;
        auto l1i = std::make_unique<cache::Cache>(
            l1i_geom, std::make_unique<policies::LruPolicy>(),
            l2.get());

        cache::CacheGeometry l1d_geom;
        l1d_geom.name = util::format("cpu{}.L1D", i);
        l1d_geom.size_bytes = config_.l1d_size;
        l1d_geom.ways = config_.l1d_ways;
        l1d_geom.latency = config_.l1d_latency;
        l1d_geom.mshrs = 16;
        auto l1d = std::make_unique<cache::Cache>(
            l1d_geom, std::make_unique<policies::LruPolicy>(),
            l2.get());
        l1d->setWritesOnRfo(true);
        if (config_.l1d_prefetcher) {
            l1d->setPrefetcher(
                std::make_unique<prefetch::NextLinePrefetcher>());
        }

        auto core = std::make_unique<cpu::O3Core>(
            config_.core, static_cast<uint8_t>(i), l1i.get(),
            l1d.get());
        core->setCancelToken(config_.cancel);

        l2_.push_back(std::move(l2));
        l1i_.push_back(std::move(l1i));
        l1d_.push_back(std::move(l1d));
        cores_.push_back(std::move(core));
    }
}

uint32_t
System::numCores() const
{
    return static_cast<uint32_t>(cores_.size());
}

void
System::describeStats(stats::Registry &reg)
{
    dram_->describeStats(reg, "dram");
    llc_->describeStats(reg, "llc");
    for (uint32_t i = 0; i < numCores(); ++i) {
        const std::string core = util::format("core{}", i);
        cores_[i]->describeStats(reg, core);
        l1i_[i]->describeStats(reg, core + ".l1i");
        l1d_[i]->describeStats(reg, core + ".l1d");
        l2_[i]->describeStats(reg, core + ".l2");
    }
    reg.formula(
        "llc.demand_mpki",
        [this](const stats::Registry &) {
            uint64_t instructions = 0;
            for (const auto &c : cores_)
                instructions += c->measuredInstructions();
            return stats::mpki(llc_->demandMisses(), instructions);
        },
        "LLC demand misses per kilo-instruction (all cores)");
    reg.formula(
        "total_instructions",
        [this](const stats::Registry &) {
            uint64_t instructions = 0;
            for (const auto &c : cores_)
                instructions += c->measuredInstructions();
            return static_cast<double>(instructions);
        },
        "measured instructions summed over all cores");
}

void
System::resetStats()
{
    dram_->resetStats();
    llc_->resetStats();
    for (uint32_t i = 0; i < numCores(); ++i) {
        l2_[i]->resetStats();
        l1i_[i]->resetStats();
        l1d_[i]->resetStats();
        cores_[i]->beginMeasurement();
    }
    llc_trace_.clear();
}

} // namespace rlr::sim
