#include "util/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <string>

namespace rlr::util
{

ThreadPool::ThreadPool(size_t nthreads)
{
    if (nthreads == 0) {
        nthreads = std::max(1u, std::thread::hardware_concurrency());
    }
    workers_.reserve(nthreads);
    for (size_t i = 0; i < nthreads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::scoped_lock lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (stop_ && queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            std::scoped_lock lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0)
                idle_cv_.notify_all();
        }
    }
}

void
ThreadPool::waitIdle()
{
    std::unique_lock lock(mutex_);
    idle_cv_.wait(lock,
                  [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::parallelFor(size_t n, size_t nthreads,
                        const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (nthreads <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    // Messages of EVERY captured exception, in capture order:
    // iterations already running when the first failure lands may
    // fail too, and silently dropping them hides concurrent bugs.
    std::vector<std::string> error_messages;
    std::mutex error_mutex;
    const size_t workers = std::min(n, nthreads);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
        threads.emplace_back([&] {
            while (!failed.load(std::memory_order_acquire)) {
                const size_t i = next.fetch_add(1);
                if (i >= n)
                    return;
                try {
                    fn(i);
                } catch (...) {
                    std::string what = "unknown exception";
                    try {
                        throw;
                    } catch (const std::exception &e) {
                        what = e.what();
                    } catch (...) {
                    }
                    std::scoped_lock lock(error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                    error_messages.push_back(std::move(what));
                    failed.store(true, std::memory_order_release);
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    if (error_messages.size() == 1)
        std::rethrow_exception(first_error);
    if (error_messages.size() > 1) {
        std::string joined;
        for (size_t i = 0; i < error_messages.size(); ++i) {
            if (i)
                joined += "; ";
            joined += "[" + std::to_string(i) + "] " +
                      error_messages[i];
        }
        throw std::runtime_error(
            std::to_string(error_messages.size()) +
            " worker tasks failed: " + joined);
    }
}

} // namespace rlr::util
