/**
 * @file
 * Regenerates the Section V-B KPC-P experiment: replace the L2
 * IP-stride prefetcher with KPC-P and compare KPC-R vs RLR (the
 * paper: KPC-R 3.9% vs RLR 5.5% on SPEC2006; 2.46% vs 3.5% on
 * CloudSuite — RLR wins even against KPC's own prefetcher).
 */

#include "bench/common.hh"

using namespace rlr;

namespace
{

double
overall(const std::vector<sim::SweepCell> &cells,
        const std::vector<std::string> &workloads,
        const std::string &policy)
{
    std::vector<double> ratios;
    for (const auto &w : workloads) {
        const auto &base = sim::findCell(cells, w, "LRU");
        const auto &cell = sim::findCell(cells, w, policy);
        ratios.push_back(rlr::stats::speedup(
            cell.result.ipc(), base.result.ipc()));
    }
    return 100.0 * (rlr::stats::geomean(ratios) - 1.0);
}

} // namespace

int
main(int argc, char **argv)
{
    auto parser = bench::makeParser(
        "Ablation: KPC-P as L2 prefetcher, KPC-R vs RLR");
    if (!parser.parse(argc, argv))
        return 0;
    auto opt = bench::makeOptions(parser);

    auto workloads = opt.workloads;
    if (workloads.empty())
        workloads = bench::trainingNames();

    const std::vector<std::string> all = {"LRU", "KPC-R", "RLR"};

    util::Table table({"L2 prefetcher", "KPC-R (%)", "RLR (%)"});
    for (const auto pf :
         {sim::L2Prefetcher::IpStride, sim::L2Prefetcher::KpcP}) {
        sim::SimParams params = opt.params;
        params.l2_prefetcher = pf;
        const auto cells =
            bench::runSweep(opt, params, workloads, all);
        table.addRow(
            {pf == sim::L2Prefetcher::IpStride ? "IP-stride"
                                               : "KPC-P",
             util::Table::fmt(overall(cells, workloads, "KPC-R"),
                              2),
             util::Table::fmt(overall(cells, workloads, "RLR"),
                              2)});
    }

    std::puts("=== Ablation: KPC-R vs RLR under IP-stride and "
              "KPC-P L2 prefetching ===");
    std::puts("(overall speedup over LRU with the same prefetcher)");
    bench::emit(opt, table);
    std::puts("\nPaper: with KPC-P, KPC-R 3.9% vs RLR 5.5% "
              "(SPEC2006) — RLR stays ahead by evicting non-"
              "reused prefetched lines sooner.");
    return bench::finish(opt);
}
