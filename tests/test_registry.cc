#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/experiment.hh"
#include "stats/export.hh"
#include "stats/registry.hh"
#include "stats/stats.hh"

using namespace rlr;
using stats::Registry;
using stats::Snapshot;

TEST(Registry, OwnedCounterRoundTrip)
{
    Registry reg;
    uint64_t &hits = reg.counter("llc.hits", "demand hits");
    hits += 3;
    EXPECT_TRUE(reg.has("llc.hits"));
    EXPECT_EQ(reg.counterValue("llc.hits"), 3u);
    EXPECT_EQ(reg.description("llc.hits"), "demand hits");
    EXPECT_EQ(reg.counterValue("llc.misses"), 0u);
    EXPECT_FALSE(reg.has("llc.misses"));
}

TEST(Registry, DuplicatePathThrows)
{
    Registry reg;
    reg.counter("llc.hits");
    EXPECT_THROW(reg.counter("llc.hits"), std::invalid_argument);
    EXPECT_THROW(reg.bindCounter("llc.hits", [] { return 0ULL; }),
                 std::invalid_argument);
    EXPECT_THROW(reg.formula("llc.hits",
                             [](const Registry &) { return 0.0; }),
                 std::invalid_argument);
    EXPECT_THROW(reg.counter(""), std::invalid_argument);
}

TEST(Registry, BoundCounterPullsLiveValue)
{
    Registry reg;
    uint64_t external = 0;
    reg.bindCounter("dram.reads", [&] { return external; });
    external = 41;
    EXPECT_EQ(reg.counterValue("dram.reads"), 41u);
    external = 42;
    EXPECT_EQ(reg.snapshot().counter("dram.reads"), 42u);
}

TEST(Registry, StatSetMountIsLazy)
{
    stats::StatSet set("LLC");
    Registry reg;
    reg.bindStatSet("llc", &set);
    set.counter("LD_hit") = 7;
    // Counter created *after* the mount still resolves.
    EXPECT_EQ(reg.counterValue("llc.LD_hit"), 7u);
    EXPECT_TRUE(reg.has("llc.LD_hit"));
    set.counter("LD_miss") = 2;
    const Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("llc.LD_hit"), 7u);
    EXPECT_EQ(snap.counter("llc.LD_miss"), 2u);
    // Dotted counter names inside the set survive the mount.
    set.counter("deep.nested") = 1;
    EXPECT_EQ(reg.counterValue("llc.deep.nested"), 1u);
}

TEST(Registry, FormulaReadsCountersAndFormulas)
{
    Registry reg;
    uint64_t &hits = reg.counter("hits");
    uint64_t &accesses = reg.counter("accesses");
    hits = 30;
    accesses = 40;
    reg.formula("hit_rate", [](const Registry &r) {
        return stats::safeDiv(
            static_cast<double>(r.counterValue("hits")),
            static_cast<double>(r.counterValue("accesses")));
    });
    // Formulas may reference other formulas (demand-driven), even
    // ones registered later in the order.
    reg.formula("miss_rate", [](const Registry &r) {
        return 1.0 - r.value("hit_rate");
    });
    EXPECT_DOUBLE_EQ(reg.value("hit_rate"), 0.75);
    EXPECT_DOUBLE_EQ(reg.value("miss_rate"), 0.25);

    const Snapshot snap = reg.snapshot();
    EXPECT_DOUBLE_EQ(snap.formula("hit_rate"), 0.75);
    EXPECT_DOUBLE_EQ(snap.formula("miss_rate"), 0.25);
    // Registration order is preserved in the snapshot.
    ASSERT_EQ(snap.formulas.size(), 2u);
    EXPECT_EQ(snap.formulas[0].first, "hit_rate");
    EXPECT_EQ(snap.formulas[1].first, "miss_rate");
}

TEST(Registry, Distributions)
{
    Registry reg;
    util::Histogram &owned =
        reg.distribution("lat", 4, 10, "latency");
    owned.sample(5);
    owned.sample(35);
    owned.sample(1000); // overflow

    util::Histogram external(2, 1);
    external.sample(0);
    reg.bindDistribution("ext", &external);

    const Snapshot snap = reg.snapshot();
    const auto *lat = snap.histogram("lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->bucket_width, 10u);
    EXPECT_EQ(lat->buckets.size(), 4u);
    EXPECT_EQ(lat->buckets[0], 1u);
    EXPECT_EQ(lat->buckets[3], 1u);
    EXPECT_EQ(lat->overflow, 1u);
    EXPECT_EQ(lat->total(), 3u);
    const auto *ext = snap.histogram("ext");
    ASSERT_NE(ext, nullptr);
    EXPECT_EQ(ext->total(), 1u);
    EXPECT_EQ(snap.histogram("nope"), nullptr);
}

TEST(Registry, SnapshotJsonRoundTrip)
{
    Registry reg;
    reg.counter("llc.hits") = 123456789;
    reg.counter("llc.misses") = 0;
    util::Histogram &h = reg.distribution("dram.lat", 3, 16);
    h.sample(0, 5);
    h.sample(40);
    h.sample(100); // overflow
    reg.formula("ipc",
                [](const Registry &) { return 0.7853981634; });

    const Snapshot snap = reg.snapshot();
    const std::string text = stats::toJson(snap);
    const Snapshot back = stats::fromJson(text);

    // Counters and histograms round-trip exactly.
    EXPECT_EQ(back.counters, snap.counters);
    EXPECT_EQ(back.histograms, snap.histograms);
    ASSERT_EQ(back.formulas.size(), 1u);
    EXPECT_EQ(back.formulas[0].first, "ipc");
    EXPECT_NEAR(back.formulas[0].second, 0.7853981634, 1e-9);
}

TEST(Registry, JsonParserRejectsMalformed)
{
    EXPECT_THROW(stats::json::parse(""), std::runtime_error);
    EXPECT_THROW(stats::json::parse("{"), std::runtime_error);
    EXPECT_THROW(stats::json::parse("[1, ]"), std::runtime_error);
    EXPECT_THROW(stats::json::parse("{\"a\": 1} trailing"),
                 std::runtime_error);
    EXPECT_THROW(stats::fromJson("[1, 2]"), std::runtime_error);
}

TEST(Registry, SystemSnapshotViaRunResult)
{
    sim::SimParams params;
    params.warmup_instructions = 5'000;
    params.sim_instructions = 20'000;
    const sim::RunResult r =
        sim::runSingleCore("429.mcf", params);

    // The canonical dotted naming scheme is populated.
    EXPECT_GT(r.stats.counter("core0.instructions_retired"), 0u);
    EXPECT_GT(r.stats.counter("dram.reads"), 0u);
    EXPECT_GT(r.stats.formula("core0.ipc"), 0.0);
    EXPECT_GT(r.stats.formula("llc.policy.overhead_kib"), 0.0);
    const auto *lat = r.stats.histogram("dram.read_latency");
    ASSERT_NE(lat, nullptr);
    EXPECT_GT(lat->total(), 0u);
    // Snapshot metrics agree with the legacy RunResult fields.
    EXPECT_NEAR(r.stats.formula("llc.demand_hit_rate"),
                r.llcDemandHitRate(), 1e-12);
    EXPECT_NEAR(r.stats.formula("llc.demand_mpki"),
                r.llcDemandMpki(), 1e-12);
    EXPECT_NEAR(r.stats.formula("core0.ipc"), r.ipc(), 1e-12);
}
