#include "policies/eva.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rlr::policies
{

EvaPolicy::EvaPolicy(EvaConfig config) : config_(config)
{
    util::ensure(config_.age_buckets >= 2, "EVA: too few buckets");
}

void
EvaPolicy::bind(const cache::CacheGeometry &geom)
{
    ways_ = geom.ways;
    num_sets_ = geom.numSets();
    lines_.assign(static_cast<size_t>(num_sets_) * ways_,
                  LineState{});
    for (int c = 0; c < 2; ++c) {
        hits_[c].assign(config_.age_buckets, 0);
        evictions_[c].assign(config_.age_buckets, 0);
        rank_[c].assign(config_.age_buckets, 0.0);
    }
    // Cold-start ranking: behave like LRU (older -> evict first),
    // with not-yet-reused lines slightly cheaper to evict.
    for (uint32_t a = 0; a < config_.age_buckets; ++a) {
        rank_[0][a] = -static_cast<double>(a) - 0.5;
        rank_[1][a] = -static_cast<double>(a);
    }
    accesses_ = 0;
}

EvaPolicy::LineState &
EvaPolicy::line(uint32_t set, uint32_t way)
{
    return lines_[static_cast<size_t>(set) * ways_ + way];
}

uint32_t
EvaPolicy::ageBucket(uint32_t age_raw) const
{
    return std::min(config_.age_buckets - 1,
                    age_raw / config_.age_granularity);
}

double
EvaPolicy::rank(bool reused, uint32_t age_bucket) const
{
    return rank_[reused ? 1 : 0]
                [std::min(age_bucket, config_.age_buckets - 1)];
}

void
EvaPolicy::recompute()
{
    // Opportunity cost per unit of cache time: aggregate hit rate
    // over aggregate observed lifetime.
    double total_hits = 0.0;
    double total_life = 0.0;
    for (int c = 0; c < 2; ++c) {
        for (uint32_t a = 0; a < config_.age_buckets; ++a) {
            const double events = static_cast<double>(
                hits_[c][a] + evictions_[c][a]);
            total_hits += static_cast<double>(hits_[c][a]);
            total_life += events * (a + 1);
        }
    }
    const double cost_rate =
        total_life > 0.0 ? total_hits / total_life : 0.0;

    for (int c = 0; c < 2; ++c) {
        // Backward sweep: expected hits-to-go and lifetime-to-go
        // conditioned on having survived to age a.
        double surv = 0.0;
        double hits_togo = 0.0;
        double life_togo = 0.0;
        for (int a = static_cast<int>(config_.age_buckets) - 1;
             a >= 0; --a) {
            const double ev = static_cast<double>(
                hits_[c][a] + evictions_[c][a]);
            surv += ev;
            hits_togo += static_cast<double>(hits_[c][a]);
            life_togo += surv; // every surviving line spends one
                               // bucket of time at age a
            if (surv > 0.0) {
                rank_[c][a] =
                    (hits_togo - cost_rate * life_togo) / surv;
            } else {
                rank_[c][a] = -static_cast<double>(a) * 1e-3;
            }
        }
    }

    // Exponential decay so the ranking tracks phase changes.
    for (int c = 0; c < 2; ++c) {
        for (uint32_t a = 0; a < config_.age_buckets; ++a) {
            hits_[c][a] /= 2;
            evictions_[c][a] /= 2;
        }
    }
}

uint32_t
EvaPolicy::findVictim(const cache::AccessContext &ctx,
                      std::span<const cache::BlockView> blocks)
{
    (void)blocks;
    const size_t base = static_cast<size_t>(ctx.set) * ways_;
    uint32_t victim = 0;
    double lowest = 1e300;
    for (uint32_t w = 0; w < ways_; ++w) {
        const LineState &ls = lines_[base + w];
        const double r =
            rank_[ls.reused ? 1 : 0][ageBucket(ls.age_raw)];
        if (r < lowest) {
            lowest = r;
            victim = w;
        }
    }
    return victim;
}

void
EvaPolicy::onAccess(const cache::AccessContext &ctx)
{
    ++accesses_;
    const size_t base = static_cast<size_t>(ctx.set) * ways_;

    // Every set access ages the whole set.
    for (uint32_t w = 0; w < ways_; ++w) {
        if (lines_[base + w].age_raw <
            config_.age_buckets * config_.age_granularity)
            ++lines_[base + w].age_raw;
    }

    LineState &ls = lines_[base + ctx.way];
    if (ctx.hit) {
        ++hits_[ls.reused ? 1 : 0][ageBucket(ls.age_raw)];
        ls.reused = true;
        ls.age_raw = 0;
    } else {
        ls.reused = false;
        ls.age_raw = 0;
    }

    if (accesses_ % config_.update_interval == 0)
        recompute();
}

void
EvaPolicy::onEviction(uint32_t set, uint32_t way,
                      const cache::BlockView &block)
{
    (void)block;
    LineState &ls = line(set, way);
    ++evictions_[ls.reused ? 1 : 0][ageBucket(ls.age_raw)];
}

cache::StorageOverhead
EvaPolicy::overhead() const
{
    cache::StorageOverhead o;
    // Coarse age (7b) + class bit per line; histograms and ranking
    // table as globals (the original uses ~8KB of SRAM + a tiny
    // microcontroller for the periodic solve).
    o.bits_per_line = 8;
    o.global_bits =
        2.0 * config_.age_buckets * (2 * 16.0 /*hist*/ + 8.0);
    return o;
}

} // namespace rlr::policies
