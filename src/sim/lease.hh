/**
 * @file
 * Cell leases — the claim protocol that lets N independent worker
 * processes cooperatively execute one sweep over a shared journal
 * directory (docs/ROBUSTNESS.md, "Distributed sweeps").
 *
 * A lease is a small JSON file `lease-<hex16>.json` next to the
 * journal's cell records, named by the cell's spec hash. Claiming
 * is atomic without any shared server:
 *
 *   fresh claim : write a private temp file, then hard-link it to
 *                 the lease path — link(2) fails with EEXIST when
 *                 the lease is already held, so exactly one
 *                 claimant wins;
 *   steal       : an expired lease (mtime older than the steal
 *                 threshold) is first rename(2)d to a per-stealer
 *                 tomb name — rename succeeds for exactly one
 *                 stealer, the losers see ENOENT — and then
 *                 re-claimed fresh.
 *
 * Every successful claim carries a FENCING TOKEN strictly greater
 * than any token previously issued for that cell: the winner
 * persists its token to `fence-<hex16>` immediately after the
 * link, and claimants compute their candidate token from
 * max(fence file, any stolen lease's token) + 1. A worker that
 * lost its lease (a straggler whose cell was re-issued) detects
 * it via stillHeld() before committing and discards its result —
 * the thief's commit is authoritative.
 *
 * Liveness: the holder renews its lease (atomic rewrite, which
 * refreshes the mtime) every ttl/3 via the sweep monitor thread.
 * An actively renewed lease is therefore never stale; only a
 * SIGKILLed or stalled worker's lease ages past the TTL and gets
 * re-issued to survivors.
 */

#ifndef RLR_SIM_LEASE_HH
#define RLR_SIM_LEASE_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace rlr::sim
{

/** Distributed-execution knobs of one sweep (SweepOptions). */
struct DistOptions
{
    /** Claim cells through journal leases (worker / merge mode). */
    bool enabled = false;
    /** This worker's id (embedded in leases and heartbeats). */
    uint32_t worker_id = 0;
    /** Lease time-to-live: a lease unrenewed for longer than this
     *  is considered abandoned and may be stolen. */
    double lease_ttl_s = 10.0;
    /** Poll period while waiting for cells held by other
     *  workers. */
    double poll_s = 0.05;
};

/** Decoded contents (+age) of one lease file. */
struct LeaseInfo
{
    uint32_t worker = 0;
    int64_t pid = 0;
    uint32_t attempt = 0;
    uint64_t fence = 0;
    double ttl_s = 0.0;
    /** Seconds since the file was last written (mtime). */
    double age_s = 0.0;
};

/** Lease-file claim protocol over one journal directory. */
class Lease
{
  public:
    /**
     * @param dir journal directory the leases live in
     * @param worker_id identity recorded in claimed leases
     * @param ttl_s default staleness threshold (tryClaim may be
     *        given a larger, straggler-aware threshold per call)
     */
    Lease(std::string dir, uint32_t worker_id, double ttl_s);

    /** Outcome of tryClaim(). */
    struct Claim
    {
        bool won = false;
        /** Fencing token of the new lease (valid when won). */
        uint64_t fence = 0;
        /** The claim re-issued an expired lease. */
        bool stole = false;
    };

    /**
     * Try to claim the cell named by @p spec_hash. An existing
     * lease younger than @p steal_after_s loses the claim; an
     * older one is stolen (atomically — concurrent stealers race
     * on a rename and exactly one wins).
     */
    Claim tryClaim(uint64_t spec_hash, uint32_t attempt,
                   double steal_after_s);
    Claim tryClaim(uint64_t spec_hash, uint32_t attempt)
    {
        return tryClaim(spec_hash, attempt, ttl_s_);
    }

    /**
     * Refresh the mtime of a lease this worker holds (rewrites
     * the file in place). Failures only warn — renewal is a
     * liveness breadcrumb, not a correctness gate.
     */
    void renew(uint64_t spec_hash, uint32_t attempt,
               uint64_t fence) const;

    /**
     * @return true when the lease file still names this worker,
     * this process, and @p fence — i.e. the cell was not
     * re-issued to someone else while we ran it. Checked
     * immediately before committing a result.
     */
    bool stillHeld(uint64_t spec_hash, uint64_t fence) const;

    /**
     * Remove the lease after committing, but only when it still
     * carries @p fence (never delete a thief's newer lease).
     */
    void release(uint64_t spec_hash, uint64_t fence) const;

    /** Lease-file path of a cell inside @p dir. */
    static std::string leasePath(const std::string &dir,
                                 uint64_t spec_hash);

    /**
     * Parse a lease file. @return false when the file is absent
     * or unreadable (a torn lease is treated as stale by
     * claimants once old enough).
     */
    static bool read(const std::string &path, LeaseInfo &out);

    const std::string &dir() const { return dir_; }
    double ttl() const { return ttl_s_; }
    uint32_t worker() const { return worker_; }

  private:
    std::string dir_;
    uint32_t worker_;
    double ttl_s_;
    /** Uniquifies temp/tomb names within this process. */
    std::atomic<uint64_t> seq_{0};
};

} // namespace rlr::sim

#endif // RLR_SIM_LEASE_HH
