/**
 * @file
 * Instruction-trace file format: lets synthetic workloads be
 * exported once and replayed (by this simulator or external
 * tools), and lets externally decoded instruction traces drive
 * the core model through the same InstructionSource interface.
 */

#ifndef RLR_TRACE_INSTR_IO_HH
#define RLR_TRACE_INSTR_IO_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace rlr::trace
{

/** Write @p instructions to a binary trace file. */
void saveInstructionTrace(const std::string &path,
                          const std::vector<Instruction> &instructions);

/**
 * Capture @p count instructions from @p source into a file.
 * The source is advanced (not reset) by the capture.
 */
void captureInstructionTrace(const std::string &path,
                             InstructionSource &source,
                             uint64_t count);

/** Load an entire instruction trace into memory. */
std::vector<Instruction>
loadInstructionTrace(const std::string &path);

/**
 * Streams a trace file as an InstructionSource without loading it
 * into memory; reset() rewinds to the first record (multicore
 * wrap-around).
 */
class FileInstructionSource : public InstructionSource
{
  public:
    /** @param path trace file; fatal() on open/format errors */
    explicit FileInstructionSource(std::string path);
    ~FileInstructionSource() override;

    FileInstructionSource(const FileInstructionSource &) = delete;
    FileInstructionSource &
    operator=(const FileInstructionSource &) = delete;

    bool next(Instruction &out) override;
    void reset() override;
    const std::string &name() const override { return name_; }

    /** Total records in the file. */
    uint64_t size() const { return count_; }

  private:
    std::string path_;
    std::string name_;
    std::FILE *file_ = nullptr;
    uint64_t count_ = 0;
    uint64_t pos_ = 0;
};

} // namespace rlr::trace

#endif // RLR_TRACE_INSTR_IO_HH
