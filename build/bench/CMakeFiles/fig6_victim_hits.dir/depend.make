# Empty dependencies file for fig6_victim_hits.
# This may be replaced when dependencies are built.
