/**
 * @file
 * Catalog of synthetic benchmark profiles standing in for the
 * paper's SPEC CPU2006 and CloudSuite workloads (see DESIGN.md for
 * the substitution rationale). Profile parameters are chosen from
 * each benchmark's published LLC character: MPKI class, dominant
 * access pattern, working-set size relative to the 2MB LLC,
 * prefetch friendliness, and write intensity.
 */

#ifndef RLR_TRACE_WORKLOADS_HH
#define RLR_TRACE_WORKLOADS_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/synthetic.hh"

namespace rlr::trace
{

/** @return all SPEC CPU2006-like profiles (29 entries). */
std::vector<WorkloadProfile> specWorkloads();

/** @return all CloudSuite-like profiles (5 entries). */
std::vector<WorkloadProfile> cloudWorkloads();

/** @return spec + cloud profiles. */
std::vector<WorkloadProfile> allWorkloads();

/**
 * The eight benchmarks the paper uses for RL training and the
 * feature-statistics figures (Figs. 3-7): 459.GemsFDTD, 403.gcc,
 * 429.mcf, 450.soplex, 470.lbm, 437.leslie3d, 471.omnetpp,
 * 483.xalancbmk.
 */
std::vector<WorkloadProfile> trainingWorkloads();

/** Look up a profile by name; calls fatal() when unknown. */
WorkloadProfile findWorkload(const std::string &name);

/** @return a generator for the named profile. */
std::unique_ptr<SyntheticGenerator>
makeGenerator(const std::string &name, uint64_t seed);

} // namespace rlr::trace

#endif // RLR_TRACE_WORKLOADS_HH
