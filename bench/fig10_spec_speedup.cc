/**
 * @file
 * Regenerates Figure 10: single-core IPC speedup over LRU for all
 * 29 SPEC CPU2006-like benchmarks under DRRIP, KPC-R, SHiP, RLR,
 * RLR(unopt), Hawkeye, and SHiP++.
 */

#include "bench/common.hh"
#include "core/policy_factory.hh"

using namespace rlr;

int
main(int argc, char **argv)
{
    auto parser = bench::makeParser(
        "Figure 10: SPEC2006 single-core IPC speedup over LRU");
    if (!parser.parse(argc, argv))
        return 0;
    auto opt = bench::makeOptions(parser);

    auto workloads = opt.workloads;
    if (workloads.empty())
        workloads = bench::specNames();
    auto policies = opt.policies;
    if (policies.empty())
        policies = core::paperPolicies();

    bench::runSpeedupFigure(
        opt, workloads, policies,
        "Figure 10: SPEC CPU2006 speedup over LRU");
    std::puts("\nPaper's overall numbers (1-core SPEC2006): DRRIP "
              "1.50%, KPC-R 2.30%, SHiP 2.24%, RLR 3.25%, "
              "RLR(unopt) 3.60%, Hawkeye 3.03%, SHiP++ 3.76%.");
    return bench::finish(opt);
}
