/**
 * @file
 * Gshare branch predictor. Mispredictions charge a pipeline
 * refill penalty in the core model, so workloads with
 * data-dependent branches (gobmk, sjeng, mcf) lose front-end
 * throughput just as they do on real hardware.
 */

#ifndef RLR_CPU_BRANCH_PREDICTOR_HH
#define RLR_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "util/sat_counter.hh"

namespace rlr::cpu
{

/** Gshare configuration. */
struct BranchPredictorConfig
{
    /** Pattern table index bits (entries = 2^bits). */
    unsigned index_bits = 14;
    /** Global-history length folded into the index. */
    unsigned history_bits = 12;
};

/** Global-history XOR pattern-table predictor. */
class GsharePredictor
{
  public:
    explicit GsharePredictor(BranchPredictorConfig config = {});

    /** @return predicted direction for the branch at @p pc. */
    bool predict(uint64_t pc) const;

    /** Train with the actual outcome and update history. */
    void update(uint64_t pc, bool taken);

    uint64_t lookups() const { return lookups_; }
    uint64_t mispredicts() const { return mispredicts_; }

    /**
     * Predict + update in one step.
     * @return true when the prediction was correct.
     */
    bool predictAndUpdate(uint64_t pc, bool taken);

  private:
    size_t index(uint64_t pc) const;

    BranchPredictorConfig config_;
    std::vector<util::SatCounter> table_;
    uint64_t history_ = 0;
    uint64_t lookups_ = 0;
    uint64_t mispredicts_ = 0;
};

} // namespace rlr::cpu

#endif // RLR_CPU_BRANCH_PREDICTOR_HH
