/** @file Tests for the DRAM model. */

#include <gtest/gtest.h>

#include "mem/dram.hh"

using namespace rlr;
using namespace rlr::mem;

namespace
{

cache::MemRequest
read(uint64_t addr)
{
    cache::MemRequest r;
    r.address = addr;
    r.type = trace::AccessType::Load;
    return r;
}

cache::MemRequest
write(uint64_t addr)
{
    cache::MemRequest r;
    r.address = addr;
    r.type = trace::AccessType::Writeback;
    return r;
}

} // namespace

TEST(Dram, RowMissThenRowHit)
{
    DramConfig cfg;
    Dram dram(cfg);
    const uint64_t t1 = dram.access(read(0x10000), 0);
    EXPECT_EQ(t1, cfg.row_miss_latency);
    // Same row: hit latency, serialized behind the open bank.
    const uint64_t t2 = dram.access(read(0x10040), t1);
    EXPECT_EQ(t2, t1 + cfg.row_hit_latency);
    EXPECT_EQ(dram.statSet().value("row_hits"), 1u);
    EXPECT_EQ(dram.statSet().value("row_misses"), 1u);
}

TEST(Dram, DifferentRowsConflictOnSameBank)
{
    DramConfig cfg;
    Dram dram(cfg);
    // Two rows that map to the same bank: row index differs by
    // the bank count.
    const uint64_t row_a = 0;
    const uint64_t row_b = cfg.banks;
    const uint64_t t1 =
        dram.access(read(row_a * cfg.row_bytes), 0);
    const uint64_t t2 =
        dram.access(read(row_b * cfg.row_bytes), 0);
    // Second request waits for the bank.
    EXPECT_GE(t2, t1 + cfg.row_miss_latency);
}

TEST(Dram, IndependentBanksOverlap)
{
    DramConfig cfg;
    Dram dram(cfg);
    const uint64_t t1 = dram.access(read(0), 0);
    const uint64_t t2 =
        dram.access(read(cfg.row_bytes), 0); // next bank
    // Only channel occupancy separates them.
    EXPECT_EQ(t1, cfg.row_miss_latency);
    EXPECT_EQ(t2, cfg.channel_cycles + cfg.row_miss_latency);
}

TEST(Dram, PostedWritesReturnImmediately)
{
    Dram dram;
    const uint64_t t = dram.access(write(0x5000), 123);
    EXPECT_EQ(t, 123u);
    EXPECT_EQ(dram.statSet().value("writes"), 1u);
}

TEST(Dram, WritesConsumeChannelBandwidth)
{
    DramConfig cfg;
    Dram dram(cfg);
    // Saturate the channel with writes, then read.
    for (int i = 0; i < 10; ++i)
        dram.access(write(0x1000 + 64 * i), 0);
    const uint64_t t = dram.access(read(0x90000), 0);
    // The read starts only after the queued write bursts.
    EXPECT_GE(t, 10 * cfg.channel_cycles + cfg.row_miss_latency);
}

TEST(Dram, FutureWritesDoNotRunAwayBankState)
{
    DramConfig cfg;
    Dram dram(cfg);
    // A write posted far in the future (a fill-time writeback)
    // must not delay a near-term read by more than channel time.
    dram.access(write(0x2000), 1'000'000);
    const uint64_t t = dram.access(read(0x2000), 0);
    EXPECT_LE(t, 1'000'000 + cfg.channel_cycles +
                     cfg.row_miss_latency);
    // And a read at the same row issued at now=0 is not pushed to
    // the write's completion horizon plus service.
    Dram fresh(cfg);
    fresh.access(write(0x2000), 500);
    const uint64_t t2 = fresh.access(read(0x3000), 0);
    EXPECT_LE(t2, 504 + cfg.row_miss_latency);
}

TEST(Dram, ReadCountsTracked)
{
    Dram dram;
    dram.access(read(0), 0);
    dram.access(read(64), 0);
    dram.access(write(128), 0);
    EXPECT_EQ(dram.statSet().value("reads"), 2u);
    EXPECT_EQ(dram.statSet().value("writes"), 1u);
}
