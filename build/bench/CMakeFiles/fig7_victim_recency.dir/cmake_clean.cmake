file(REMOVE_RECURSE
  "CMakeFiles/fig7_victim_recency.dir/fig7_victim_recency.cc.o"
  "CMakeFiles/fig7_victim_recency.dir/fig7_victim_recency.cc.o.d"
  "fig7_victim_recency"
  "fig7_victim_recency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_victim_recency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
