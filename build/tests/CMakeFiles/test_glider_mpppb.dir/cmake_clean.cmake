file(REMOVE_RECURSE
  "CMakeFiles/test_glider_mpppb.dir/test_glider_mpppb.cc.o"
  "CMakeFiles/test_glider_mpppb.dir/test_glider_mpppb.cc.o.d"
  "test_glider_mpppb"
  "test_glider_mpppb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_glider_mpppb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
