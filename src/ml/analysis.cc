#include "ml/analysis.hh"

#include <algorithm>
#include <cmath>

#include "util/format.hh"
#include "util/logging.hh"

namespace rlr::ml
{

TrainResult
trainAgent(OfflineSimulator &sim, AgentConfig config,
           unsigned epochs)
{
    config.mlp.inputs = sim.extractor().stateSize();
    config.mlp.outputs = sim.ways();

    TrainResult result;
    result.agent = std::make_unique<DqnAgent>(config);
    for (unsigned e = 0; e < epochs; ++e) {
        const OfflineStats s = sim.runAgent(*result.agent, true);
        result.epoch_hit_rates.push_back(s.demandHitRate());
    }
    result.eval = sim.runAgent(*result.agent, false);
    return result;
}

std::vector<double>
groupSaliency(const Mlp &mlp, const FeatureExtractor &extractor)
{
    const auto saliency = mlp.inputSaliencyDelta();
    std::vector<double> out;
    out.reserve(kNumFeatureGroups);
    for (size_t g = 0; g < kNumFeatureGroups; ++g) {
        const auto indices =
            extractor.groupIndices(static_cast<FeatureGroup>(g));
        double acc = 0.0;
        for (const auto i : indices)
            acc += saliency[i];
        out.push_back(indices.empty()
                          ? 0.0
                          : acc / static_cast<double>(
                                      indices.size()));
    }
    return out;
}

std::string
renderHeatMap(const std::vector<std::string> &benchmarks,
              const std::vector<std::vector<double>> &columns)
{
    util::ensure(benchmarks.size() == columns.size(),
                 "renderHeatMap: column mismatch");
    static const char shades[] = " .:-=+*#%@";
    constexpr size_t nshades = sizeof(shades) - 1;

    // Normalize each column to its own maximum, as the paper's
    // heat map compares feature importance within a benchmark.
    std::vector<std::vector<double>> norm = columns;
    for (auto &col : norm) {
        double peak = 0.0;
        for (const auto v : col)
            peak = std::max(peak, v);
        if (peak > 0.0)
            for (auto &v : col)
                v /= peak;
    }

    std::string out = util::format("{:<28}", "feature \\ benchmark");
    for (const auto &b : benchmarks) {
        std::string label = b.size() > 6 ? b.substr(0, 6) : b;
        out += util::format(" {:>6}", label);
    }
    out += '\n';
    for (size_t g = 0; g < kNumFeatureGroups; ++g) {
        out += util::format(
            "{:<28}",
            featureGroupName(static_cast<FeatureGroup>(g)));
        for (size_t c = 0; c < norm.size(); ++c) {
            const double v =
                g < norm[c].size() ? norm[c][g] : 0.0;
            const auto shade = static_cast<size_t>(
                std::min(1.0, std::max(0.0, v)) *
                (nshades - 1));
            out += util::format(" {:>5}{}", "",
                                std::string(1, shades[shade]));
        }
        out += '\n';
    }
    return out;
}

HillClimbResult
hillClimb(OfflineSimulator &sim, AgentConfig config,
          const std::vector<FeatureGroup> &candidates,
          unsigned epochs, unsigned max_rounds)
{
    HillClimbResult result;
    std::vector<FeatureGroup> remaining = candidates;
    double best_rate = 0.0;

    for (unsigned round = 0;
         round < max_rounds && !remaining.empty(); ++round) {
        double round_best = -1.0;
        size_t round_pick = remaining.size();

        for (size_t i = 0; i < remaining.size(); ++i) {
            std::vector<FeatureGroup> trial = result.selected;
            trial.push_back(remaining[i]);
            sim.extractor().setMask(trial);
            AgentConfig cfg = config;
            cfg.seed = config.seed + round * 131 + i;
            const TrainResult tr = trainAgent(sim, cfg, epochs);
            const double rate = tr.eval.demandHitRate();
            if (rate > round_best) {
                round_best = rate;
                round_pick = i;
            }
        }

        if (round_pick == remaining.size() ||
            round_best <= best_rate) {
            break; // no improvement: stop climbing
        }
        best_rate = round_best;
        result.selected.push_back(remaining[round_pick]);
        result.hit_rates.push_back(round_best);
        remaining.erase(remaining.begin() +
                        static_cast<long>(round_pick));
    }
    sim.extractor().clearMask();
    return result;
}

} // namespace rlr::ml
