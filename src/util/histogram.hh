/**
 * @file
 * Simple bucketed histogram with summary statistics; backs the
 * feature-statistics figures (victim age, preuse-vs-reuse deltas,
 * victim recency, hits at eviction).
 */

#ifndef RLR_UTIL_HISTOGRAM_HH
#define RLR_UTIL_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rlr::util
{

/**
 * Fixed-width-bucket histogram over [0, bucket_width * nbuckets);
 * samples past the end accumulate in an overflow bucket.
 */
class Histogram
{
  public:
    /** @param nbuckets number of regular buckets
     *  @param bucket_width width of each bucket */
    explicit Histogram(size_t nbuckets = 64, uint64_t bucket_width = 1);

    /** Record one sample. */
    void sample(uint64_t value, uint64_t count = 1);

    /** Merge another histogram; `fatal` on shape mismatch. */
    void merge(const Histogram &other);

    /** Remove all samples. */
    void reset();

    uint64_t count() const { return count_; }
    double mean() const;
    /** Smallest value v such that >= q of the mass is <= v. */
    uint64_t quantile(double q) const;
    uint64_t bucketCount(size_t i) const { return buckets_[i]; }
    uint64_t overflowCount() const { return overflow_; }
    size_t numBuckets() const { return buckets_.size(); }
    uint64_t bucketWidth() const { return width_; }

    /** Fraction of samples with value in [lo, hi] (bucket granular). */
    double fractionBetween(uint64_t lo, uint64_t hi) const;

    /** Render as an ASCII bar chart (for bench output). */
    std::string render(size_t max_width = 50) const;

  private:
    std::vector<uint64_t> buckets_;
    uint64_t width_;
    uint64_t overflow_;
    uint64_t count_;
    uint64_t sum_;
};

} // namespace rlr::util

#endif // RLR_UTIL_HISTOGRAM_HH
