/**
 * @file
 * The RRIP family (Jaleel et al., ISCA 2010): SRRIP, BRRIP, and
 * set-dueling DRRIP. Each line carries an M-bit re-reference
 * prediction value (RRPV); victims are lines predicted to be
 * re-referenced in the distant future (max RRPV).
 */

#ifndef RLR_POLICIES_RRIP_HH
#define RLR_POLICIES_RRIP_HH

#include <vector>

#include "cache/replacement.hh"
#include "util/rng.hh"
#include "util/sat_counter.hh"

namespace rlr::policies
{

/**
 * Common RRIP machinery: per-line RRPVs, aging-based victim
 * search, hit promotion. Subclasses choose the insertion RRPV.
 */
class RripBase : public cache::ReplacementPolicy
{
  public:
    /** @param rrpv_bits RRPV width (2 -> values 0..3). */
    explicit RripBase(unsigned rrpv_bits = 2);

    void bind(const cache::CacheGeometry &geom) override;
    uint32_t
    findVictim(const cache::AccessContext &ctx,
               std::span<const cache::BlockView> blocks) override;
    void onAccess(const cache::AccessContext &ctx) override;
    void verifyInvariants(
        uint32_t set,
        std::span<const cache::BlockView> blocks) const override;

    /** RRPV of a way (tests). */
    uint8_t rrpv(uint32_t set, uint32_t way) const;

    /** Observational priority = RRPV (event log). */
    uint64_t
    victimPriority(uint32_t set, uint32_t way) const override
    {
        return rrpv(set, way);
    }

  protected:
    /** @return insertion RRPV for this fill. */
    virtual uint8_t insertionRrpv(const cache::AccessContext &ctx) = 0;

    unsigned rrpvBits() const { return rrpv_bits_; }
    uint8_t maxRrpv() const { return max_rrpv_; }
    uint32_t ways() const { return ways_; }
    uint32_t numSets() const { return num_sets_; }

    /** Direct RRPV override for subclasses with bespoke promotion. */
    void setRrpv(uint32_t set, uint32_t way, uint8_t value);

  private:
    unsigned rrpv_bits_;
    uint8_t max_rrpv_;
    uint32_t ways_ = 0;
    uint32_t num_sets_ = 0;
    std::vector<uint8_t> rrpv_;
};

/** Static RRIP: always insert at long re-reference (max-1). */
class SrripPolicy : public RripBase
{
  public:
    explicit SrripPolicy(unsigned rrpv_bits = 2);
    std::string name() const override { return "SRRIP"; }
    cache::StorageOverhead overhead() const override;

  protected:
    uint8_t insertionRrpv(const cache::AccessContext &ctx) override;
};

/**
 * Bimodal RRIP: insert at distant (max) RRPV, with a 1/32 chance
 * of long (max-1) to retain a trickle of the working set.
 */
class BrripPolicy : public RripBase
{
  public:
    explicit BrripPolicy(unsigned rrpv_bits = 2, uint64_t seed = 7);
    /** Re-bind and restart the bimodal RNG stream. */
    void reset(const cache::CacheGeometry &geom) override;
    std::string name() const override { return "BRRIP"; }
    cache::StorageOverhead overhead() const override;

  protected:
    uint8_t insertionRrpv(const cache::AccessContext &ctx) override;

  private:
    uint64_t seed_;
    util::Rng rng_;
};

/**
 * Dynamic RRIP: set dueling between SRRIP and BRRIP insertion.
 * A few leader sets are dedicated to each policy; a PSEL counter
 * tracks which leader group misses less and follower sets copy
 * the winner.
 */
class DrripPolicy : public RripBase
{
  public:
    /** @param leader_sets leaders per policy (32 in the paper) */
    explicit DrripPolicy(unsigned rrpv_bits = 2,
                         uint32_t leader_sets = 32,
                         uint64_t seed = 7);

    void bind(const cache::CacheGeometry &geom) override;
    /** Re-bind, restart the RNG stream, and zero the PSEL duel. */
    void reset(const cache::CacheGeometry &geom) override;
    void onAccess(const cache::AccessContext &ctx) override;
    std::string name() const override { return "DRRIP"; }
    cache::StorageOverhead overhead() const override;

    /** @return true when followers currently use BRRIP (tests). */
    bool brripSelected() const { return psel_.value() < 0; }

    /** Leader-set classification (tests). */
    enum class SetRole { SrripLeader, BrripLeader, Follower };
    SetRole setRole(uint32_t set) const;

  protected:
    uint8_t insertionRrpv(const cache::AccessContext &ctx) override;

  private:
    uint32_t leader_sets_;
    uint64_t seed_;
    util::Rng rng_;
    util::SignedSatCounter psel_{10, 0};
};

} // namespace rlr::policies

#endif // RLR_POLICIES_RRIP_HH
