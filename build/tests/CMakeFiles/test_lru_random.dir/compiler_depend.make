# Empty compiler generated dependencies file for test_lru_random.
# This may be replaced when dependencies are built.
