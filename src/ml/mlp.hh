/**
 * @file
 * The paper's Q-network: a multi-layer perceptron with one tanh
 * hidden layer and a linear output layer (334-175-16 for a 16-way
 * LLC), trained by SGD with momentum on per-action TD errors.
 */

#ifndef RLR_ML_MLP_HH
#define RLR_ML_MLP_HH

#include <cstddef>
#include <span>
#include <vector>

#include "ml/matrix.hh"
#include "util/rng.hh"

namespace rlr::ml
{

/** MLP hyperparameters. */
struct MlpConfig
{
    size_t inputs = 334;
    size_t hidden = 175;
    size_t outputs = 16;
    float learning_rate = 1e-3f;
    float momentum = 0.9f;
};

/** One-hidden-layer perceptron with tanh/linear activations. */
class Mlp
{
  public:
    Mlp(MlpConfig config, uint64_t seed);

    /** Forward pass; returns the output vector (size outputs). */
    std::vector<float> forward(std::span<const float> input) const;

    /**
     * SGD update for a single (input, action, target) example:
     * only the chosen action's output contributes to the loss
     * 0.5*(target - q[action])^2, as in DQN.
     * @return the TD error (target - prediction).
     */
    float trainAction(std::span<const float> input, size_t action,
                      float target);

    /** Mean squared TD error over a batch (diagnostics). */
    double lastBatchLoss() const { return last_loss_; }

    const MlpConfig &config() const { return config_; }

    /** First-layer weights (hidden x inputs) for analysis. */
    const Matrix &inputWeights() const { return w1_; }
    /** Output-layer weights (outputs x hidden). */
    const Matrix &outputWeights() const { return w2_; }

    /**
     * Mean absolute first-layer weight per input neuron — the
     * quantity behind the paper's Figure 3 heat map.
     */
    std::vector<double> inputSaliency() const;

    /**
     * Mean absolute *learned* first-layer weight change per input
     * neuron (|w - w_init|). Separates trained structure from the
     * random initialization, which dominates after short training
     * runs.
     */
    std::vector<double> inputSaliencyDelta() const;

  private:
    MlpConfig config_;
    Matrix w1_;           // hidden x inputs
    Matrix w1_init_;      // snapshot at construction (analysis)
    std::vector<float> b1_;
    Matrix w2_;           // outputs x hidden
    std::vector<float> b2_;

    Matrix v_w1_; // momentum buffers
    std::vector<float> v_b1_;
    Matrix v_w2_;
    std::vector<float> v_b2_;

    double last_loss_ = 0.0;
};

} // namespace rlr::ml

#endif // RLR_ML_MLP_HH
