/**
 * @file
 * Central registry mapping policy names (as used in experiment
 * tables and on the command line) to constructed policies.
 */

#ifndef RLR_CORE_POLICY_FACTORY_HH
#define RLR_CORE_POLICY_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/replacement.hh"

namespace rlr::core
{

/**
 * Create a replacement policy by name. Known names:
 *   LRU, Random, SRRIP, BRRIP, DRRIP, SHiP, SHiP++, Hawkeye,
 *   KPC-R, EVA, PDP, RLR, RLR-unopt, RLR-mc, RLR-nohit,
 *   RLR-notype, RLR-bypass
 * Calls fatal() for unknown names. @p seed feeds stochastic
 * policies (Random, BRRIP, DRRIP).
 */
std::unique_ptr<cache::ReplacementPolicy>
makePolicy(const std::string &name, uint64_t seed = 1);

/** @return every name makePolicy accepts. */
std::vector<std::string> knownPolicies();

/** @return the policies compared in the paper's main figures. */
std::vector<std::string> paperPolicies();

} // namespace rlr::core

#endif // RLR_CORE_POLICY_FACTORY_HH
