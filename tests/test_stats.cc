/** @file Unit tests for stats/stats.hh. */

#include <gtest/gtest.h>

#include "stats/stats.hh"

using namespace rlr::stats;

TEST(StatSet, CounterRegistrationAndStability)
{
    StatSet s("llc");
    uint64_t &hits = s.counter("hits");
    hits = 5;
    uint64_t &again = s.counter("hits");
    EXPECT_EQ(&hits, &again);
    EXPECT_EQ(s.value("hits"), 5u);
    EXPECT_EQ(s.value("unknown"), 0u);
}

TEST(StatSet, ReferenceStableAcrossInserts)
{
    StatSet s;
    uint64_t &a = s.counter("a");
    a = 1;
    // Inserting many more counters must not invalidate `a`.
    for (int i = 0; i < 100; ++i)
        s.counter("x" + std::to_string(i)) = 1;
    a = 42;
    EXPECT_EQ(s.value("a"), 42u);
}

TEST(StatSet, ResetAndMerge)
{
    StatSet a("x"), b("x");
    a.counter("n") = 3;
    b.counter("n") = 4;
    b.counter("m") = 1;
    a.merge(b);
    EXPECT_EQ(a.value("n"), 7u);
    EXPECT_EQ(a.value("m"), 1u);
    a.reset();
    EXPECT_EQ(a.value("n"), 0u);
}

TEST(StatSet, DumpFormat)
{
    StatSet s("core");
    s.counter("cycles") = 10;
    EXPECT_EQ(s.dump(), "core.cycles 10\n");
}

TEST(RunningStat, Moments)
{
    RunningStat r;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        r.sample(v);
    EXPECT_EQ(r.count(), 8u);
    EXPECT_DOUBLE_EQ(r.mean(), 5.0);
    EXPECT_NEAR(r.variance(), 4.571, 0.01);
    EXPECT_DOUBLE_EQ(r.min(), 2.0);
    EXPECT_DOUBLE_EQ(r.max(), 9.0);
}

TEST(Derived, SafeDiv)
{
    EXPECT_DOUBLE_EQ(safeDiv(4, 2), 2.0);
    EXPECT_DOUBLE_EQ(safeDiv(4, 0), 0.0);
}

TEST(Derived, Mpki)
{
    EXPECT_DOUBLE_EQ(mpki(50, 10000), 5.0);
    EXPECT_DOUBLE_EQ(mpki(50, 0), 0.0);
}

TEST(Derived, HitRate)
{
    EXPECT_DOUBLE_EQ(hitRate(3, 4), 0.75);
    EXPECT_DOUBLE_EQ(hitRate(0, 0), 0.0);
}

TEST(Derived, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-9);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-9);
    // Non-positive input collapses to 0 (defined behaviour).
    EXPECT_DOUBLE_EQ(geomean({1.0, 0.0}), 0.0);
}

TEST(Derived, Speedup)
{
    EXPECT_DOUBLE_EQ(speedup(1.2, 1.0), 1.2);
    EXPECT_DOUBLE_EQ(speedup(1.0, 0.0), 0.0);
}
