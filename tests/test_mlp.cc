/** @file Tests for the matrix and MLP (incl. gradient checks). */

#include <gtest/gtest.h>

#include <cmath>

#include "ml/mlp.hh"
#include "util/rng.hh"

using namespace rlr::ml;
using rlr::util::Rng;

TEST(Matrix, MatvecKnownValues)
{
    Matrix m(2, 3);
    // [[1 2 3], [4 5 6]]
    int v = 1;
    for (size_t r = 0; r < 2; ++r)
        for (size_t c = 0; c < 3; ++c)
            m.at(r, c) = static_cast<float>(v++);
    std::vector<float> x = {1.0f, 0.0f, -1.0f};
    std::vector<float> out(2);
    m.matvec(x, out);
    EXPECT_FLOAT_EQ(out[0], -2.0f);
    EXPECT_FLOAT_EQ(out[1], -2.0f);
}

TEST(Matrix, MatvecTransposed)
{
    Matrix m(2, 3);
    int v = 1;
    for (size_t r = 0; r < 2; ++r)
        for (size_t c = 0; c < 3; ++c)
            m.at(r, c) = static_cast<float>(v++);
    std::vector<float> x = {1.0f, 1.0f};
    std::vector<float> out(3);
    m.matvecT(x, out);
    EXPECT_FLOAT_EQ(out[0], 5.0f);
    EXPECT_FLOAT_EQ(out[1], 7.0f);
    EXPECT_FLOAT_EQ(out[2], 9.0f);
}

TEST(Matrix, AddOuter)
{
    Matrix m(2, 2, 1.0f);
    std::vector<float> a = {1.0f, 2.0f};
    std::vector<float> b = {3.0f, 4.0f};
    m.addOuter(a, b, 0.5f);
    EXPECT_FLOAT_EQ(m.at(0, 0), 1.0f + 0.5f * 3.0f);
    EXPECT_FLOAT_EQ(m.at(1, 1), 1.0f + 0.5f * 8.0f);
}

TEST(Matrix, XavierBounded)
{
    Matrix m(30, 40);
    Rng rng(3);
    m.initXavier(rng);
    const float bound = std::sqrt(6.0f / (30 + 40));
    for (const auto w : m.data()) {
        EXPECT_LE(std::fabs(w), bound);
    }
    // Not all zero.
    float sum = 0.0f;
    for (const auto w : m.data())
        sum += std::fabs(w);
    EXPECT_GT(sum, 0.0f);
}

TEST(Mlp, OutputShape)
{
    MlpConfig cfg;
    cfg.inputs = 10;
    cfg.hidden = 8;
    cfg.outputs = 4;
    Mlp mlp(cfg, 42);
    std::vector<float> in(10, 0.5f);
    const auto out = mlp.forward(in);
    EXPECT_EQ(out.size(), 4u);
}

TEST(Mlp, GradientDirection)
{
    // A single training step on (x, a, target) must move q[a]
    // toward the target and leave the step's sign consistent with
    // the analytic gradient.
    MlpConfig cfg;
    cfg.inputs = 6;
    cfg.hidden = 5;
    cfg.outputs = 3;
    cfg.learning_rate = 1e-2f;
    cfg.momentum = 0.0f;
    Mlp mlp(cfg, 7);

    std::vector<float> x = {0.3f, -0.2f, 0.9f, 0.0f, 0.5f, -0.7f};
    const float q_before = mlp.forward(x)[1];
    const float target = q_before + 1.0f;
    mlp.trainAction(x, 1, target);
    const float q_after = mlp.forward(x)[1];
    EXPECT_GT(q_after, q_before);
    EXPECT_LE(q_after, target + 0.1f);
}

TEST(Mlp, OnlyChosenActionMovesToFirstOrder)
{
    MlpConfig cfg;
    cfg.inputs = 4;
    cfg.hidden = 6;
    cfg.outputs = 3;
    cfg.learning_rate = 1e-3f;
    cfg.momentum = 0.0f;
    Mlp mlp(cfg, 11);
    std::vector<float> x = {1.0f, -1.0f, 0.5f, 0.25f};
    const auto before = mlp.forward(x);
    mlp.trainAction(x, 0, before[0] + 2.0f);
    const auto after = mlp.forward(x);
    // The chosen action's value moves toward the (higher) target;
    // the step is small at this learning rate.
    EXPECT_GT(after[0], before[0]);
    EXPECT_LT(after[0], before[0] + 2.0f);
}

TEST(Mlp, LearnsSimpleMapping)
{
    // Contextual regression: target q(a*) = 1 where a* depends on
    // which input is set. The network should drive TD error down.
    MlpConfig cfg;
    cfg.inputs = 3;
    cfg.hidden = 16;
    cfg.outputs = 3;
    cfg.learning_rate = 5e-2f;
    Mlp mlp(cfg, 99);

    Rng rng(5);
    double late_err = 0.0;
    const int iters = 3000;
    for (int i = 0; i < iters; ++i) {
        const auto a = static_cast<size_t>(rng.nextBounded(3));
        std::vector<float> x(3, 0.0f);
        x[a] = 1.0f;
        const float err = mlp.trainAction(x, a, 1.0f);
        if (i >= iters - 300)
            late_err += std::fabs(static_cast<double>(err));
    }
    EXPECT_LT(late_err / 300.0, 0.15);
}

TEST(Mlp, SaliencyShape)
{
    MlpConfig cfg;
    cfg.inputs = 12;
    cfg.hidden = 4;
    cfg.outputs = 2;
    Mlp mlp(cfg, 1);
    const auto s = mlp.inputSaliency();
    EXPECT_EQ(s.size(), 12u);
    for (const auto v : s)
        EXPECT_GE(v, 0.0);
}

TEST(Mlp, TrainedFeatureGainsSaliency)
{
    // Inputs that matter for the target end with larger |weights|
    // than inputs that are always zero.
    MlpConfig cfg;
    cfg.inputs = 8;
    cfg.hidden = 12;
    cfg.outputs = 2;
    cfg.learning_rate = 2e-2f;
    Mlp mlp(cfg, 17);
    const auto before = mlp.inputSaliency();
    Rng rng(31);
    double early_err = 0.0, late_err = 0.0;
    for (int i = 0; i < 8000; ++i) {
        std::vector<float> x(8, 0.0f);
        const float v = rng.chance(0.5) ? 1.0f : -1.0f;
        x[2] = v; // only feature 2 carries signal
        const float err = mlp.trainAction(x, 0, v);
        if (i < 200)
            early_err += std::fabs(static_cast<double>(err));
        if (i >= 7800)
            late_err += std::fabs(static_cast<double>(err));
    }
    const auto after = mlp.inputSaliency();
    // Zero inputs receive exactly zero gradient: dead features'
    // first-layer weights never move.
    for (size_t i = 0; i < 8; ++i) {
        if (i == 2)
            continue;
        EXPECT_NEAR(after[i], before[i], 1e-6) << "feature " << i;
    }
    // The live feature's weights did move, and the fit improved.
    EXPECT_NE(after[2], before[2]);
    EXPECT_LT(late_err, 0.5 * early_err);
}
