file(REMOVE_RECURSE
  "librlr_prefetch.a"
)
