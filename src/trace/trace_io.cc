#include "trace/trace_io.hh"

#include <cstdio>
#include <memory>
#include <unordered_set>

#include "util/logging.hh"

namespace rlr::trace
{

namespace
{

constexpr uint64_t kMagic = 0x524c52545243ULL; // "RLRTRC"
constexpr uint32_t kVersion = 1;

struct FileHeader
{
    uint64_t magic;
    uint32_t version;
    uint32_t reserved;
    uint64_t count;
};

struct FileRecord
{
    uint64_t pc;
    uint64_t address;
    uint8_t type;
    uint8_t cpu;
    uint8_t pad[6];
};

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

LlcTrace::LlcTrace(std::vector<LlcAccess> accesses)
    : accesses_(std::move(accesses))
{
}

uint64_t
LlcTrace::countType(AccessType type) const
{
    uint64_t n = 0;
    for (const auto &a : accesses_)
        if (a.type == type)
            ++n;
    return n;
}

uint64_t
LlcTrace::distinctLines(unsigned line_bits) const
{
    std::unordered_set<uint64_t> lines;
    for (const auto &a : accesses_)
        lines.insert(a.address >> line_bits);
    return lines.size();
}

void
LlcTrace::save(const std::string &path) const
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        util::fatal("cannot open '{}' for writing", path);

    FileHeader hdr{kMagic, kVersion, 0, accesses_.size()};
    if (std::fwrite(&hdr, sizeof(hdr), 1, f.get()) != 1)
        util::fatal("short write on '{}'", path);

    for (const auto &a : accesses_) {
        FileRecord rec{};
        rec.pc = a.pc;
        rec.address = a.address;
        rec.type = static_cast<uint8_t>(a.type);
        rec.cpu = a.cpu;
        if (std::fwrite(&rec, sizeof(rec), 1, f.get()) != 1)
            util::fatal("short write on '{}'", path);
    }
}

LlcTrace
LlcTrace::load(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        util::fatal("cannot open '{}' for reading", path);

    FileHeader hdr{};
    if (std::fread(&hdr, sizeof(hdr), 1, f.get()) != 1)
        util::fatal("cannot read header from '{}'", path);
    if (hdr.magic != kMagic)
        util::fatal("'{}' is not an LLC trace file", path);
    if (hdr.version != kVersion)
        util::fatal("'{}': unsupported trace version {}", path,
                    hdr.version);

    std::vector<LlcAccess> accesses;
    accesses.reserve(hdr.count);
    for (uint64_t i = 0; i < hdr.count; ++i) {
        FileRecord rec{};
        if (std::fread(&rec, sizeof(rec), 1, f.get()) != 1)
            util::fatal("truncated trace file '{}'", path);
        if (rec.type >= kNumAccessTypes)
            util::fatal("corrupt access type in '{}'", path);
        LlcAccess a;
        a.pc = rec.pc;
        a.address = rec.address;
        a.type = static_cast<AccessType>(rec.type);
        a.cpu = rec.cpu;
        accesses.push_back(a);
    }
    return LlcTrace(std::move(accesses));
}

} // namespace rlr::trace
