/**
 * @file
 * Experiment drivers: warmup+measure simulation of one workload
 * (or a multicore mix) under a named LLC policy, plus a threaded
 * sweep helper used by every bench harness.
 */

#ifndef RLR_SIM_EXPERIMENT_HH
#define RLR_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "sim/system.hh"
#include "stats/registry.hh"
#include "stats/stats.hh"
#include "trace/trace_io.hh"

namespace rlr::sim
{

/** Knobs for one simulation run. */
struct SimParams
{
    /** Warmup instructions per core (stats discarded). */
    uint64_t warmup_instructions = 1'000'000;
    /** Measured instructions per core. */
    uint64_t sim_instructions = 5'000'000;
    std::string llc_policy = "LRU";
    L2Prefetcher l2_prefetcher = L2Prefetcher::IpStride;
    uint64_t seed = 42;
    bool capture_llc_trace = false;
    /** Multicore stepping quantum (instructions per turn). */
    uint32_t interleave_quantum = 64;

    /** LLC event-log ring capacity; 0 disables (src/obs/). */
    uint32_t llc_events_capacity = 0;
    /** Record events for 1-in-N LLC sets. */
    uint32_t llc_events_sample_sets = 1;
    /** LLC epoch length in accesses; 0 disables the sampler. */
    uint64_t llc_epoch_length = 0;

    /**
     * Export the run's resource cost (CPU time, peak RSS, page
     * faults — obs/resource.hh) into the stats snapshot under
     * `obs.res.*`. Off by default: the values are wall-clock-
     * dependent, and the seed-determinism contract compares
     * snapshots of same-seed runs byte for byte.
     */
    bool record_resources = false;

    /**
     * Cancellation token polled by the run loops (borrowed; null
     * = no checkpointing). runWorkloads throws
     * util::CancelledError at the next checkpoint after a cancel
     * — the SweepRunner's watchdog and signal drain hang off
     * this.
     */
    const util::CancelToken *cancel = nullptr;
};

/** Per-core outcome of a run. */
struct CoreResult
{
    std::string workload;
    double ipc = 0.0;
    uint64_t instructions = 0;
    uint64_t cycles = 0;
};

/** Outcome of one simulation run. */
struct RunResult
{
    std::vector<CoreResult> cores;
    uint64_t llc_demand_accesses = 0;
    uint64_t llc_demand_hits = 0;
    uint64_t llc_demand_misses = 0;
    uint64_t total_instructions = 0;

    /**
     * Frozen registry snapshot of the whole system (every
     * component's counters, distributions, and formulas under the
     * dotted naming scheme — "llc.evictions", "dram.row_hits",
     * "core0.ipc", ...). Exported per sweep cell in the JSON
     * output and consumed by tools/report.
     */
    stats::Snapshot stats;

    /** Captured LLC access stream (capture_llc_trace only). */
    trace::LlcTrace llc_trace;

    /** LLC decision events (llc_events_capacity > 0 only). */
    obs::EventLogData llc_events;

    double llcDemandHitRate() const;
    /** Demand misses per kilo-instruction. */
    double llcDemandMpki() const;
    /** IPC of core 0 (single-core runs). */
    double ipc() const;
    /** Geometric-mean speedup of this run over @p baseline. */
    double speedupOver(const RunResult &baseline) const;
};

/**
 * Simulate one or more workloads (one per core) under @p params.
 * Cores run interleaved in approximate global-time order; finite
 * sources wrap, as in the paper's multicore methodology.
 */
RunResult runWorkloads(const std::vector<std::string> &workloads,
                       const SimParams &params);

/** Single-core convenience wrapper. */
RunResult runSingleCore(const std::string &workload,
                        const SimParams &params);

/**
 * Capture the LLC access stream of a workload under LRU (the
 * paper's trace-generation step for offline RL/Belady runs).
 */
trace::LlcTrace captureLlcTrace(const std::string &workload,
                                const SimParams &params);

/** One cell of a (workload x policy) sweep. */
struct SweepCell
{
    std::string workload;
    std::string policy;
    RunResult result;

    /** Seed actually used for this cell (derived, per-workload). */
    uint64_t seed = 0;
    /** Wall-clock start offset from the sweep start in seconds
     *  (Chrome-trace timeline). */
    double start_seconds = 0.0;
    /** Wall-clock runtime of this cell in seconds. */
    double wall_seconds = 0.0;
    /** Simulated instruction throughput (million instrs/sec). */
    double mips = 0.0;
    /** Non-empty when the cell failed; result is default-valued. */
    std::string error;

    /** Attempts consumed (1 + retries actually taken). */
    uint32_t attempts = 1;
    /** Total backoff wall-clock slept between attempts. */
    double retry_wait_s = 0.0;
    /** The final attempt was reaped by the --cell-timeout
     *  watchdog (error records "timeout ..."). */
    bool timed_out = false;
    /** Loaded from a sweep journal instead of re-run. */
    bool resumed = false;

    /** Worker-thread CPU time spent on this cell, seconds
     *  (obs/resource.hh; zeroed under stable telemetry). */
    double cpu_user_s = 0.0;
    double cpu_sys_s = 0.0;
    /** Process peak RSS observed when the cell finished (KiB). */
    uint64_t max_rss_kb = 0;
    /** Minor page faults charged to the worker during the cell. */
    uint64_t minor_faults = 0;

    bool ok() const { return error.empty(); }
};

/**
 * Run every (workload, policy) pair, parallelized across
 * @p threads worker threads. Results are deterministic: each cell
 * simulates in isolation with a seed derived from params.seed and
 * the workload name (never from scheduling order).
 *
 * Thin wrapper over SweepRunner that preserves the historical
 * fail-fast contract: every cell is attempted, then the first
 * cell failure (if any) is rethrown as std::runtime_error. Use
 * SweepRunner directly for fault-isolated sweeps that report
 * per-cell errors instead of throwing.
 */
std::vector<SweepCell>
sweep(const std::vector<std::string> &workloads,
      const std::vector<std::string> &policies,
      const SimParams &params, size_t threads);

/** Find a cell in a sweep result; fatal() when absent. */
const SweepCell &findCell(const std::vector<SweepCell> &cells,
                          const std::string &workload,
                          const std::string &policy);

} // namespace rlr::sim

#endif // RLR_SIM_EXPERIMENT_HH
