file(REMOVE_RECURSE
  "CMakeFiles/test_args_table.dir/test_args_table.cc.o"
  "CMakeFiles/test_args_table.dir/test_args_table.cc.o.d"
  "test_args_table"
  "test_args_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_args_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
