/**
 * @file
 * Status/error reporting helpers in the gem5 tradition.
 *
 * `inform`/`warn` report conditions without stopping the run;
 * `fatal` terminates on user error (bad configuration, bad input);
 * `panic` aborts on internal invariant violations (library bugs).
 */

#ifndef RLR_UTIL_LOGGING_HH
#define RLR_UTIL_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <source_location>
#include <string>
#include <string_view>

#include "util/format.hh"

namespace rlr::util
{

/** Severity of a log message. */
enum class LogLevel { Info, Warn, Fatal, Panic };

/**
 * Sink invoked for every log message. Replaceable for testing.
 * Returning from the hook on Fatal/Panic is not allowed; the default
 * hook exits/aborts after printing.
 */
using LogHook = void (*)(LogLevel, std::string_view);

/** Install a custom log hook; returns the previous hook. */
LogHook setLogHook(LogHook hook);

/** Emit a formatted message through the current hook. */
void logMessage(LogLevel level, std::string_view msg);

/** Squelch (or restore) Info/Warn output; Fatal/Panic always print. */
void setLogQuiet(bool quiet);

/** @return true when Info/Warn output is suppressed. */
bool logQuiet();

/**
 * Publish/refresh a single sticky stderr status line (the sweep
 * progress display). The line stays put while log messages flow:
 * the default hook erases it, prints the message, and repaints it,
 * so worker output never interleaves mid-line. Serialized with
 * logMessage by the same mutex.
 */
void setStatusLine(std::string line);

/** Erase the status line from the terminal and forget it. */
void clearStatusLine();

/** Finish the status line: leave it on screen, advance past it. */
void finishStatusLine();

/** Informational message for normal operation. */
template <typename... Args>
void
inform(std::string_view fmt, Args &&...args)
{
    logMessage(LogLevel::Info,
               format(fmt, std::forward<Args>(args)...));
}

/** Warning: something suspicious but survivable happened. */
template <typename... Args>
void
warn(std::string_view fmt, Args &&...args)
{
    logMessage(LogLevel::Warn,
               format(fmt, std::forward<Args>(args)...));
}

/** User-caused unrecoverable error; exits with status 1. */
template <typename... Args>
[[noreturn]] void
fatal(std::string_view fmt, Args &&...args)
{
    logMessage(LogLevel::Fatal,
               format(fmt, std::forward<Args>(args)...));
    std::exit(1);
}

/** Internal invariant violation; aborts (core dump friendly). */
template <typename... Args>
[[noreturn]] void
panic(std::string_view fmt, Args &&...args)
{
    logMessage(LogLevel::Panic,
               format(fmt, std::forward<Args>(args)...));
    std::abort();
}

/**
 * Cheap always-on assertion used at module boundaries.
 * Unlike assert(3) it survives NDEBUG builds.
 */
inline void
ensure(bool cond, std::string_view what,
       std::source_location loc = std::source_location::current())
{
    if (!cond) {
        logMessage(LogLevel::Panic,
                   format("{} ({}:{})", what, loc.file_name(),
                          loc.line()));
        std::abort();
    }
}

} // namespace rlr::util

#endif // RLR_UTIL_LOGGING_HH
