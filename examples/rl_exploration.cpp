/**
 * @file
 * The paper's ML-aided design flow, end to end on one benchmark:
 *   1. capture an LLC access trace under LRU,
 *   2. train the RL agent (DQN over Table II features) against
 *      Belady-based rewards,
 *   3. read the learned model: per-feature saliency and the
 *      victim statistics that motivate RLR's priorities,
 *   4. compare the derived RLR policy on the same trace.
 */

#include <algorithm>
#include <cstdio>

#include "core/rlr.hh"
#include "ml/analysis.hh"
#include "policies/lru.hh"
#include "sim/experiment.hh"
#include "util/args.hh"

using namespace rlr;

int
main(int argc, char **argv)
{
    util::ArgParser parser("ML-aided replacement design flow");
    parser.addOption("workload", "471.omnetpp", "Benchmark");
    parser.addOption("instructions", "250000",
                     "Instructions for trace capture");
    parser.addOption("epochs", "2", "RL training epochs");
    if (!parser.parse(argc, argv))
        return 0;

    const std::string workload = parser.get("workload");

    // 1. Capture the LLC stream under LRU (unbiased, as in the
    //    paper's trace-generation step).
    sim::SimParams params;
    params.warmup_instructions = 100'000;
    params.sim_instructions = parser.getUint("instructions");
    std::printf("[1/4] capturing LLC trace of %s...\n",
                workload.c_str());
    const auto trace = sim::captureLlcTrace(workload, params);
    std::printf("      %zu accesses, %llu distinct lines\n",
                trace.size(),
                static_cast<unsigned long long>(
                    trace.distinctLines()));

    ml::OfflineSimulator sim(ml::OfflineConfig{}, &trace);

    policies::LruPolicy lru;
    const double lru_rate = sim.runPolicy(lru).demandHitRate();
    policies::BeladyPolicy belady(sim.oracle());
    const double opt_rate =
        sim.runPolicy(belady).demandHitRate();

    // 2. Train the agent.
    std::printf("[2/4] training the RL agent (334-175-16 MLP, "
                "eps=0.1, experience replay)...\n");
    ml::AgentConfig cfg;
    const auto tr = ml::trainAgent(
        sim, cfg,
        static_cast<unsigned>(parser.getUint("epochs")));
    std::printf("      LRU %.1f%%  <  RL %.1f%%  <  Belady "
                "%.1f%% (demand hit rate)\n",
                100.0 * lru_rate,
                100.0 * tr.eval.demandHitRate(),
                100.0 * opt_rate);

    // 3. Interpret the model.
    std::printf("[3/4] reading the learned model:\n");
    const auto saliency =
        ml::groupSaliency(tr.agent->network(), sim.extractor());
    std::vector<size_t> order(saliency.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return saliency[a] > saliency[b];
    });
    for (size_t k = 0; k < 5; ++k) {
        std::printf("      #%zu %-28s (saliency %.3f)\n", k + 1,
                    std::string(ml::featureGroupName(
                        static_cast<ml::FeatureGroup>(order[k])))
                        .c_str(),
                    saliency[order[k]]);
    }
    const auto &fs = sim.featureStats();
    const double victims = static_cast<double>(
        fs.victims_zero_hits + fs.victims_one_hit +
        fs.victims_multi_hits);
    if (victims > 0) {
        std::printf("      agent victims: %.0f%% zero hits; avg "
                    "age LD %.0f vs PF %.0f\n",
                    100.0 * static_cast<double>(
                                fs.victims_zero_hits) /
                        victims,
                    fs.avgVictimAge(trace::AccessType::Load),
                    fs.avgVictimAge(trace::AccessType::Prefetch));
    }

    // 4. The derived policy on the same trace.
    core::RlrPolicy rlr_policy;
    const double rlr_rate =
        sim.runPolicy(rlr_policy).demandHitRate();
    std::printf("[4/4] derived RLR policy on the same trace: "
                "%.1f%% demand hit rate (LRU %.1f%%)\n",
                100.0 * rlr_rate, 100.0 * lru_rate);
    return 0;
}
