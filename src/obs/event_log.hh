/**
 * @file
 * Decision-level event log for one cache: a fixed-capacity ring
 * buffer of fill / hit / eviction / bypass records captured at the
 * cache's replacement decision points, with per-victim metadata
 * (age, hit count, recency position, last access type, and the
 * policy's computed priority) that mirrors the paper's Fig. 4-7
 * feature statistics — but taken from the *production* simulator
 * instead of the offline python-equivalent pipeline.
 *
 * Cost model: the log is attached to a cache as a borrowed
 * pointer; when detached the hot path pays only a null-pointer
 * check per decision point (see tests/test_obs_overhead.cc for
 * the <2% bound). When attached, recording can be thinned to
 * 1-in-N sets (EventLogConfig::sample_sets); metadata shadows are
 * still maintained for every set so sampled events carry exact
 * ages. A full ring overwrites the oldest events and counts them
 * as overwritten, so a bounded buffer can watch an unbounded run.
 */

#ifndef RLR_OBS_EVENT_LOG_HH
#define RLR_OBS_EVENT_LOG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "stats/registry.hh"
#include "trace/record.hh"

namespace rlr::obs
{

/** What happened at a decision point. */
enum class EventKind : uint8_t
{
    /** A line was installed into an invalid way (no eviction). */
    Fill = 0,
    /** A lookup hit a resident line. */
    Hit,
    /** A valid line was evicted to make room for a fill. */
    Eviction,
    /** The fill was skipped entirely (policy or fill-control). */
    Bypass,
};

/** Number of distinct event kinds. */
inline constexpr size_t kNumEventKinds = 4;

/** @return short stable name ("fill", "hit", "evict", "bypass"). */
std::string_view eventKindName(EventKind kind);

/** @return short stable name of a bypass reason code. */
std::string_view bypassReasonName(cache::BypassReason reason);

/** Way value used for events with no resident way (bypasses). */
inline constexpr uint8_t kNoWay = 0xff;

/** One decision-point record. All fields are integers so event
 *  streams are bit-deterministic for a given seed. */
struct Event
{
    /** Ordinal of the triggering access at this cache (1-based). */
    uint64_t access_no = 0;
    /** Line-aligned address: the victim line for evictions, the
     *  accessed line otherwise. */
    uint64_t address = 0;
    /** Program counter of the triggering access (0 for WB). */
    uint64_t pc = 0;
    /** Policy priority: victim's for evictions, touched line's
     *  for hits/fills (RRPV for RRIP-family, rank for LRU, the
     *  P_line sum for RLR; 0 for policies without the hook). */
    uint64_t priority = 0;
    uint32_t set = 0;
    /** Victim age at eviction, in set-access units. */
    uint32_t victim_age = 0;
    /** Demand/prefetch hits the victim received since its fill. */
    uint32_t victim_hits = 0;
    uint8_t way = kNoWay;
    /** Victim recency rank among valid lines (0 = LRU). */
    uint8_t victim_recency = 0;
    uint8_t cpu = 0;
    EventKind kind = EventKind::Fill;
    /** Type of the triggering access. */
    trace::AccessType type = trace::AccessType::Load;
    /** Type of the victim's last access (evictions only). */
    trace::AccessType victim_last_type = trace::AccessType::Load;
    /** Why the fill was skipped (bypasses only). */
    cache::BypassReason reason = cache::BypassReason::None;

    bool operator==(const Event &) const = default;
};

/** Shape of one event log. */
struct EventLogConfig
{
    /** Ring capacity in events; the log keeps the newest. */
    uint32_t capacity = 65536;
    /** Record events for 1-in-N sets (1 = every set). */
    uint32_t sample_sets = 1;
};

/** Plain-data form of a log (export, embedding in RunResult). */
struct EventLogData
{
    EventLogConfig config;
    /** Associativity of the logged cache (recency bucket count). */
    uint32_t ways = 0;
    /** Events pushed into the ring (incl. later overwritten). */
    uint64_t recorded = 0;
    /** Events lost to ring wraparound. */
    uint64_t overwritten = 0;
    /** Events skipped by 1-in-N set sampling. */
    uint64_t sampled_out = 0;
    /** Per-set access / miss counts (heatmap source). */
    std::vector<uint64_t> set_accesses;
    std::vector<uint64_t> set_misses;
    /** Surviving events, oldest first. */
    std::vector<Event> events;

    bool empty() const { return recorded == 0; }
};

/**
 * The live event log. A cache drives it through the on*() hooks;
 * the cache owns the decision of *when* to call (only while a log
 * is attached), the log owns sampling, metadata shadows, and the
 * ring itself.
 */
class EventLog
{
  public:
    explicit EventLog(EventLogConfig config = {});

    /** Size the per-set/per-line shadows; called once by the
     *  attaching cache. */
    void bind(uint32_t num_sets, uint32_t ways);

    /** A lookup hit way in set. */
    void onHit(uint32_t set, uint32_t way,
               const trace::LlcAccess &access, uint64_t priority);

    /** A miss was counted for set (before any fill/bypass). */
    void onMiss(uint32_t set);

    /** A line was installed into (set, way). */
    void onFill(uint32_t set, uint32_t way,
                const trace::LlcAccess &access, uint64_t priority);

    /**
     * A valid line is about to be evicted from (set, way); must be
     * called before onFill() overwrites the shadow metadata.
     * @p priority is the policy's computed priority of the victim.
     */
    void onEviction(uint32_t set, uint32_t way,
                    uint64_t victim_address,
                    const trace::LlcAccess &incoming,
                    uint64_t priority);

    /** The fill of @p access into @p set was skipped. */
    void onBypass(uint32_t set, const trace::LlcAccess &access,
                  cache::BypassReason reason);

    /** Drop all events, counters, and shadow state. */
    void reset();

    const EventLogConfig &config() const { return config_; }
    uint64_t recorded() const { return recorded_; }
    uint64_t overwritten() const { return overwritten_; }
    uint64_t sampledOut() const { return sampled_out_; }
    /** Events currently resident in the ring. */
    size_t size() const { return ring_.size(); }

    /** Freeze into plain data (events oldest-first). */
    EventLogData data() const;

    /** Mount the log's counters under @p prefix. */
    void describeStats(stats::Registry &reg,
                       const std::string &prefix);

  private:
    /** Per-line shadow metadata, maintained for every set. */
    struct LineShadow
    {
        /** Set-access ordinal of the last touch (fill or hit). */
        uint64_t last_touch = 0;
        uint32_t hits = 0;
        trace::AccessType last_type = trace::AccessType::Load;
        bool valid = false;
    };

    bool sampled(uint32_t set) const
    {
        return config_.sample_sets <= 1 ||
               set % config_.sample_sets == 0;
    }

    void push(const Event &ev);
    LineShadow &shadow(uint32_t set, uint32_t way);

    EventLogConfig config_;
    uint32_t num_sets_ = 0;
    uint32_t ways_ = 0;

    uint64_t access_no_ = 0;
    uint64_t recorded_ = 0;
    uint64_t overwritten_ = 0;
    uint64_t sampled_out_ = 0;

    std::vector<LineShadow> shadows_;
    /** Per-set access ordinals (age computation) and heatmap. */
    std::vector<uint64_t> set_accesses_;
    std::vector<uint64_t> set_misses_;

    /** Ring storage; next_ is the overwrite cursor once full. */
    std::vector<Event> ring_;
    size_t next_ = 0;
};

} // namespace rlr::obs

#endif // RLR_OBS_EVENT_LOG_HH
