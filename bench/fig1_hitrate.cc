/**
 * @file
 * Regenerates Figure 1: LLC hit rate of LRU, DRRIP, SHiP, SHiP++,
 * Hawkeye, RLR (full-hierarchy simulation) plus the RL agent and
 * Belady (offline LLC-only simulation over a trace captured under
 * LRU, exactly as in the paper's footnote 1).
 */

#include "bench/common.hh"
#include "ml/analysis.hh"
#include "policies/lru.hh"

using namespace rlr;

int
main(int argc, char **argv)
{
    auto parser = bench::makeParser(
        "Figure 1: LLC hit rate comparison incl. RL and Belady");
    if (!parser.parse(argc, argv))
        return 0;
    auto opt = bench::makeOptions(parser);

    auto workloads = opt.workloads;
    if (workloads.empty())
        workloads = bench::trainingNames();
    auto policies = opt.policies;
    if (policies.empty())
        policies = {"LRU",    "DRRIP",   "SHiP",
                    "SHiP++", "Hawkeye", "RLR"};

    // Full-hierarchy hit rates.
    const auto cells = bench::runSweep(opt, workloads, policies);

    // Offline RL + Belady per workload, from LRU-captured traces.
    struct OfflineRates
    {
        double lru = 0.0;
        double rl = 0.0;
        double belady = 0.0;
    };
    std::vector<OfflineRates> offline(workloads.size());
    util::ThreadPool::parallelFor(
        workloads.size(), opt.threads, [&](size_t i) {
            sim::SimParams capture_params = opt.params;
            capture_params.sim_instructions = opt.rl_instructions;
            const auto trace = sim::captureLlcTrace(
                workloads[i], capture_params);
            if (trace.empty())
                return;
            ml::OfflineSimulator osim(ml::OfflineConfig{}, &trace);
            policies::LruPolicy off_lru;
            offline[i].lru =
                osim.runPolicy(off_lru).demandHitRate();
            policies::BeladyPolicy belady(osim.oracle());
            offline[i].belady =
                osim.runPolicy(belady).demandHitRate();
            ml::AgentConfig cfg;
            cfg.seed = opt.seed + i;
            const auto tr =
                ml::trainAgent(osim, cfg, opt.rl_epochs);
            offline[i].rl = tr.eval.demandHitRate();
        });

    std::vector<std::string> header = {"Benchmark"};
    for (const auto &p : policies)
        header.push_back(p);
    header.push_back("LRU(off)");
    header.push_back("RL");
    header.push_back("BELADY");
    util::Table table(header);

    for (size_t i = 0; i < workloads.size(); ++i) {
        std::vector<std::string> row = {workloads[i]};
        for (const auto &p : policies) {
            const auto &cell =
                sim::findCell(cells, workloads[i], p);
            row.push_back(util::Table::fmt(
                100.0 * cell.result.llcDemandHitRate(), 1));
        }
        row.push_back(
            util::Table::fmt(100.0 * offline[i].lru, 1));
        row.push_back(
            util::Table::fmt(100.0 * offline[i].rl, 1));
        row.push_back(
            util::Table::fmt(100.0 * offline[i].belady, 1));
        table.addRow(row);
    }

    std::puts("=== Figure 1: LLC demand hit rate (%) ===");
    std::puts("(RL and BELADY run in the offline LLC-only "
              "simulator over an LRU-captured trace)");
    bench::emit(opt, table);
    std::puts("\nThe offline columns start from a cold cache over "
              "a finite captured trace, so compare RL/BELADY "
              "against LRU(off), not the full-system columns.");
    std::puts("Expected shape: BELADY >= RL >= LRU(off); "
              "PC-based policies >= non-PC policies on most "
              "benchmarks.");
    return bench::finish(opt);
}
