#include "core/policy_factory.hh"

#include <cstdlib>

#include "core/rlr.hh"
#include "policies/eva.hh"
#include "policies/glider.hh"
#include "policies/hawkeye.hh"
#include "policies/mpppb.hh"
#include "policies/kpc_r.hh"
#include "policies/lru.hh"
#include "policies/pdp.hh"
#include "policies/random.hh"
#include "policies/rrip.hh"
#include "policies/ship.hh"
#include "util/logging.hh"

namespace rlr::core
{

std::unique_ptr<cache::ReplacementPolicy>
makePolicy(const std::string &name, uint64_t seed)
{
    using namespace rlr::policies;

    if (name == "LRU")
        return std::make_unique<LruPolicy>();
    if (name == "Random")
        return std::make_unique<RandomPolicy>(seed);
    if (name == "SRRIP")
        return std::make_unique<SrripPolicy>();
    if (name == "BRRIP")
        return std::make_unique<BrripPolicy>(2, seed);
    if (name == "DRRIP")
        return std::make_unique<DrripPolicy>(2, 32, seed);
    if (name == "SHiP")
        return std::make_unique<ShipPolicy>();
    if (name == "SHiP++")
        return std::make_unique<ShipPPPolicy>();
    if (name == "Hawkeye")
        return std::make_unique<HawkeyePolicy>();
    if (name == "Glider")
        return std::make_unique<GliderPolicy>();
    if (name == "MPPPB")
        return std::make_unique<MpppbPolicy>();
    if (name == "KPC-R")
        return std::make_unique<KpcRPolicy>();
    if (name == "EVA")
        return std::make_unique<EvaPolicy>();
    if (name == "PDP")
        return std::make_unique<PdpPolicy>();
    if (name == "RLR")
        return std::make_unique<RlrPolicy>();
    if (name == "RLR-unopt")
        return std::make_unique<RlrPolicy>(RlrConfig::unoptimized());
    if (name == "RLR-mc")
        return std::make_unique<RlrPolicy>(RlrConfig::forMulticore(4));
    if (name == "RLR-nohit") {
        RlrConfig c;
        c.use_hit_priority = false;
        return std::make_unique<RlrPolicy>(c);
    }
    if (name == "RLR-notype") {
        RlrConfig c;
        c.use_type_priority = false;
        return std::make_unique<RlrPolicy>(c);
    }
    if (name == "RLR-bypass") {
        RlrConfig c;
        c.allow_bypass = true;
        return std::make_unique<RlrPolicy>(c);
    }
    // Parameterized spec: "RLR:key=value,key=value,...". Keys:
    //   opt, age, tick, hit, rdmul, rdhits, weight, usehit,
    //   usetype, bypass, mc, cores
    if (name.rfind("RLR:", 0) == 0) {
        RlrConfig c;
        std::string rest = name.substr(4);
        size_t start = 0;
        while (start < rest.size()) {
            size_t comma = rest.find(',', start);
            if (comma == std::string::npos)
                comma = rest.size();
            const std::string kv = rest.substr(start, comma - start);
            const size_t eq = kv.find('=');
            if (eq == std::string::npos)
                util::fatal("bad RLR spec item '{}'", kv);
            const std::string key = kv.substr(0, eq);
            const auto value = static_cast<unsigned>(
                std::strtoul(kv.c_str() + eq + 1, nullptr, 10));
            if (key == "opt")
                c.optimized = value != 0;
            else if (key == "age")
                c.age_bits = value;
            else if (key == "tick")
                c.age_tick_misses = value;
            else if (key == "hit")
                c.hit_bits = value;
            else if (key == "rdmul")
                c.rd_multiplier = value;
            else if (key == "rdhits")
                c.rd_update_hits = value;
            else if (key == "weight")
                c.age_weight = value;
            else if (key == "usehit")
                c.use_hit_priority = value != 0;
            else if (key == "usetype")
                c.use_type_priority = value != 0;
            else if (key == "bypass")
                c.allow_bypass = value != 0;
            else if (key == "mc")
                c.multicore = value != 0;
            else if (key == "cores")
                c.num_cores = value;
            else
                util::fatal("unknown RLR spec key '{}'", key);
            start = comma + 1;
        }
        return std::make_unique<RlrPolicy>(c);
    }
    util::fatal("unknown replacement policy '{}'", name);
}

std::vector<std::string>
knownPolicies()
{
    return {"LRU",     "Random",    "SRRIP",     "BRRIP",
            "DRRIP",   "SHiP",      "SHiP++",    "Hawkeye",
            "Glider",  "MPPPB",     "KPC-R",     "EVA",
            "PDP",     "RLR",       "RLR-unopt", "RLR-mc",
            "RLR-nohit", "RLR-notype", "RLR-bypass"};
}

std::vector<std::string>
paperPolicies()
{
    // The comparison set of Figures 10-13.
    return {"DRRIP", "KPC-R", "SHiP",   "RLR",
            "RLR-unopt", "Hawkeye", "SHiP++"};
}

} // namespace rlr::core
