#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/policy_factory.hh"

#ifndef RLR_SOURCE_DIR
#error "RLR_SOURCE_DIR must point at the repository root"
#endif

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

/**
 * docs/POLICIES.md must document every name the PolicyFactory
 * accepts: adding a policy without documenting it fails here (and
 * in scripts/check_docs.sh, which also runs without a compiler).
 */
TEST(Docs, EveryFactoryPolicyDocumented)
{
    const std::string docs = readFile(
        std::string(RLR_SOURCE_DIR) + "/docs/POLICIES.md");
    ASSERT_FALSE(docs.empty());
    for (const auto &name : rlr::core::knownPolicies()) {
        EXPECT_NE(docs.find("`" + name + "`"), std::string::npos)
            << "policy '" << name
            << "' is missing from docs/POLICIES.md";
    }
}

TEST(Docs, ArchitectureCoversNamingScheme)
{
    const std::string docs = readFile(
        std::string(RLR_SOURCE_DIR) + "/docs/ARCHITECTURE.md");
    ASSERT_FALSE(docs.empty());
    // The registry naming scheme is a documented contract.
    for (const char *needle :
         {"llc.policy", "dram.", "core0", "describeStats"}) {
        EXPECT_NE(docs.find(needle), std::string::npos)
            << "docs/ARCHITECTURE.md is missing '" << needle
            << "'";
    }
}
