/** @file Tests for the prefetchers. */

#include <gtest/gtest.h>

#include "prefetch/ip_stride.hh"
#include "prefetch/kpc_p.hh"
#include "prefetch/next_line.hh"

using namespace rlr;
using namespace rlr::prefetch;

namespace
{

cache::CacheGeometry
geom()
{
    cache::CacheGeometry g;
    g.size_bytes = 32 * 1024;
    g.ways = 8;
    return g;
}

} // namespace

TEST(NextLine, FiresOnMiss)
{
    NextLinePrefetcher pf;
    pf.bind(geom());
    std::vector<cache::PrefetchRequest> out;
    pf.observe(0x400, 0x1000, /*hit=*/false, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].address, 0x1040u);
}

TEST(NextLine, SilentOnHitWhenMissOnly)
{
    NextLinePrefetcher pf(/*on_miss_only=*/true);
    pf.bind(geom());
    std::vector<cache::PrefetchRequest> out;
    pf.observe(0x400, 0x1000, /*hit=*/true, out);
    EXPECT_TRUE(out.empty());
}

TEST(NextLine, AlwaysModeFiresOnHit)
{
    NextLinePrefetcher pf(/*on_miss_only=*/false);
    pf.bind(geom());
    std::vector<cache::PrefetchRequest> out;
    pf.observe(0x400, 0x1000, /*hit=*/true, out);
    EXPECT_EQ(out.size(), 1u);
}

TEST(IpStride, DetectsStableStride)
{
    IpStrideConfig cfg;
    cfg.degree = 2;
    IpStridePrefetcher pf(cfg);
    pf.bind(geom());
    std::vector<cache::PrefetchRequest> out;
    // Stride of 2 lines from one PC; confidence needs a few
    // confirmations.
    for (int i = 0; i < 8; ++i) {
        out.clear();
        pf.observe(0x400, 0x10000 + i * 128, false, out);
    }
    ASSERT_FALSE(out.empty());
    // Next targets continue the stream beyond the cursor.
    for (const auto &req : out) {
        EXPECT_GT(req.address, 0x10000u + 7u * 128u);
        EXPECT_EQ((req.address - 0x10000u) % 128u, 0u);
    }
}

TEST(IpStride, NoPrefetchOnUnstableStride)
{
    IpStridePrefetcher pf;
    pf.bind(geom());
    std::vector<cache::PrefetchRequest> out;
    const uint64_t addrs[] = {0x1000, 0x5000, 0x2000, 0x9000,
                              0x3000, 0x8000, 0x100, 0x7000};
    for (const auto a : addrs)
        pf.observe(0x400, a, false, out);
    EXPECT_TRUE(out.empty());
}

TEST(IpStride, NoRedundantReissueWithinWindow)
{
    IpStrideConfig cfg;
    cfg.degree = 4;
    IpStridePrefetcher pf(cfg);
    pf.bind(geom());
    std::vector<cache::PrefetchRequest> out;
    std::set<uint64_t> issued;
    for (int i = 0; i < 32; ++i) {
        out.clear();
        pf.observe(0x400, 0x40000 + i * 64, false, out);
        for (const auto &req : out) {
            EXPECT_TRUE(issued.insert(req.address).second)
                << "re-issued " << std::hex << req.address;
        }
    }
}

TEST(IpStride, PerPcTracking)
{
    IpStridePrefetcher pf;
    pf.bind(geom());
    std::vector<cache::PrefetchRequest> out;
    // Interleave two PCs with different strides; both must train.
    for (int i = 0; i < 10; ++i) {
        pf.observe(0x400, 0x100000 + i * 64, false, out);
        pf.observe(0x900, 0x800000 + i * 192, false, out);
    }
    EXPECT_FALSE(out.empty());
}

TEST(IpStride, IgnoresZeroPc)
{
    IpStridePrefetcher pf;
    pf.bind(geom());
    std::vector<cache::PrefetchRequest> out;
    for (int i = 0; i < 10; ++i)
        pf.observe(0, 0x1000 + i * 64, false, out);
    EXPECT_TRUE(out.empty());
}

TEST(KpcP, StaysWithinPage)
{
    KpcPConfig cfg;
    cfg.max_degree = 8;
    KpcPPrefetcher pf(cfg);
    pf.bind(geom());
    std::vector<cache::PrefetchRequest> out;
    for (int i = 0; i < 40; ++i) {
        out.clear();
        pf.observe(0x400, 0x7000000 + i * 64, false, out);
    }
    for (const auto &req : out) {
        EXPECT_EQ(req.address >> 12, (0x7000000ull + 39 * 64) >> 12)
            << "prefetch crossed the page";
    }
}

TEST(KpcP, ConfidenceGrowsWithStability)
{
    KpcPPrefetcher pf;
    pf.bind(geom());
    std::vector<cache::PrefetchRequest> out;
    double last_conf = 0.0;
    for (int i = 0; i < 20; ++i) {
        out.clear();
        pf.observe(0x400, 0x3000000 + i * 64, false, out);
        if (!out.empty())
            last_conf = out.back().confidence;
    }
    EXPECT_GT(last_conf, 0.5);
}

TEST(KpcP, SuppressesLowConfidence)
{
    KpcPPrefetcher pf;
    pf.bind(geom());
    std::vector<cache::PrefetchRequest> out;
    // Erratic deltas within a page.
    const uint64_t offs[] = {0, 5, 2, 9, 1, 8, 3, 60, 11, 42};
    for (const auto o : offs)
        pf.observe(0x400, 0x5000000 + o * 64, false, out);
    EXPECT_TRUE(out.empty());
}
