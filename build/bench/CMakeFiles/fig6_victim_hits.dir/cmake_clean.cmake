file(REMOVE_RECURSE
  "CMakeFiles/fig6_victim_hits.dir/fig6_victim_hits.cc.o"
  "CMakeFiles/fig6_victim_hits.dir/fig6_victim_hits.cc.o.d"
  "fig6_victim_hits"
  "fig6_victim_hits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_victim_hits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
