file(REMOVE_RECURSE
  "CMakeFiles/fig5_victim_age.dir/fig5_victim_age.cc.o"
  "CMakeFiles/fig5_victim_age.dir/fig5_victim_age.cc.o.d"
  "fig5_victim_age"
  "fig5_victim_age.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_victim_age.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
