#include "obs/epoch.hh"

#include "util/logging.hh"

namespace rlr::obs
{

EpochSampler::EpochSampler(uint64_t length) : length_(length)
{
    util::ensure(length_ >= 1, "EpochSampler: zero epoch length");
}

void
EpochSampler::bind(uint32_t num_sets)
{
    heat_accesses_ = util::Histogram(num_sets, 1);
    heat_misses_ = util::Histogram(num_sets, 1);
    reset();
}

void
EpochSampler::setScalarProvider(std::string name, Provider p)
{
    scalar_name_ = std::move(name);
    scalar_ = std::move(p);
}

void
EpochSampler::onAccess(uint32_t set, trace::AccessType type,
                       bool hit)
{
    ++total_accesses_;
    ++cur_.accesses;
    heat_accesses_.sample(set);
    if (trace::isDemand(type))
        ++cur_.demand_accesses;
    if (!hit) {
        ++cur_.misses;
        heat_misses_.sample(set);
        if (trace::isDemand(type))
            ++cur_.demand_misses;
    }
    if (total_accesses_ % length_ == 0)
        closeEpoch();
}

void
EpochSampler::onEviction(uint64_t victim_priority)
{
    ++cur_.evictions;
    cur_.victim_priority_sum += victim_priority;
    victim_priority_.sample(victim_priority);
}

void
EpochSampler::onBypass()
{
    ++cur_.bypasses;
}

void
EpochSampler::closeEpoch()
{
    if (cur_.empty())
        return;
    cur_.occupancy = occupancy_ ? occupancy_() : 0;
    cur_.scalar = scalar_ ? scalar_() : 0;

    const std::string e = "e" + std::to_string(epochs_) + "_";
    series_.counter(e + "accesses") = cur_.accesses;
    series_.counter(e + "misses") = cur_.misses;
    series_.counter(e + "demand_accesses") = cur_.demand_accesses;
    series_.counter(e + "demand_misses") = cur_.demand_misses;
    series_.counter(e + "evictions") = cur_.evictions;
    series_.counter(e + "bypasses") = cur_.bypasses;
    series_.counter(e + "victim_priority_sum") =
        cur_.victim_priority_sum;
    series_.counter(e + "occupancy") = cur_.occupancy;
    if (!scalar_name_.empty())
        series_.counter(e + scalar_name_) = cur_.scalar;

    ++epochs_;
    cur_ = EpochSample{};
}

void
EpochSampler::finish()
{
    closeEpoch();
}

void
EpochSampler::reset()
{
    total_accesses_ = 0;
    epochs_ = 0;
    cur_ = EpochSample{};
    series_ = stats::StatSet{"epoch"};
    victim_priority_.reset();
    heat_accesses_.reset();
    heat_misses_.reset();
}

void
EpochSampler::describeStats(stats::Registry &reg,
                            const std::string &prefix)
{
    // The registry snapshot is taken at end of run; flushing here
    // makes the final partial epoch part of the exported series.
    finish();
    reg.bindCounter(
        prefix + ".length", [this] { return length_; },
        "epoch length in cache accesses");
    reg.bindCounter(
        prefix + ".count", [this] { return epochs_; },
        "closed epochs (including a final partial one)");
    reg.bindStatSet(prefix, &series_,
                    "per-epoch telemetry series");
    reg.bindDistribution(prefix + ".victim_priority",
                         &victim_priority_,
                         "policy priority of evicted lines");
    reg.bindDistribution(prefix + ".set_accesses", &heat_accesses_,
                         "per-set access heatmap (bucket = set)");
    reg.bindDistribution(prefix + ".set_misses", &heat_misses_,
                         "per-set miss heatmap (bucket = set)");
}

} // namespace rlr::obs
