# Empty compiler generated dependencies file for hillclimb_features.
# This may be replaced when dependencies are built.
