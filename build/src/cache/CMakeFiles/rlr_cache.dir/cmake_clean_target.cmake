file(REMOVE_RECURSE
  "librlr_cache.a"
)
