/** @file Tests for the fault-isolated SweepRunner engine. */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "sim/sweep_runner.hh"

using namespace rlr;
using sim::SweepCell;
using sim::SweepOptions;
using sim::SweepRunner;

namespace
{

/** Synthetic cell body: cheap, deterministic, seed-sensitive. */
sim::RunResult
fakeRun(const SweepRunner::CellSpec &spec, const sim::SimParams &p)
{
    sim::RunResult r;
    sim::CoreResult core;
    core.workload = spec.cores.empty() ? "" : spec.cores[0];
    core.instructions = 1000;
    core.cycles = 500 + p.seed % 97;
    core.ipc = static_cast<double>(core.instructions) /
               static_cast<double>(core.cycles);
    r.cores.push_back(core);
    r.total_instructions = core.instructions;
    r.llc_demand_accesses = 100;
    r.llc_demand_hits = 60 + p.seed % 7;
    r.llc_demand_misses =
        r.llc_demand_accesses - r.llc_demand_hits;
    return r;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
tempJsonPath(const char *name)
{
    return ::testing::TempDir() + name;
}

} // namespace

TEST(SweepRunner, FailingCellIsIsolated)
{
    sim::SimParams params;
    SweepOptions opts;
    opts.threads = 4;
    SweepRunner runner(params, opts);
    runner.setCellFn([](const SweepRunner::CellSpec &spec,
                        const sim::SimParams &p) {
        if (spec.workload == "bad" && spec.policy == "RLR")
            throw std::runtime_error("injected cell failure");
        return fakeRun(spec, p);
    });

    const auto cells = runner.run({"good1", "bad", "good2"},
                                  {"LRU", "RLR"});
    ASSERT_EQ(cells.size(), 6u);

    size_t failed = 0;
    for (const auto &c : cells) {
        if (c.workload == "bad" && c.policy == "RLR") {
            ++failed;
            EXPECT_FALSE(c.ok());
            EXPECT_EQ(c.error, "injected cell failure");
            EXPECT_TRUE(c.result.cores.empty());
        } else {
            // Every other cell completed despite the failure.
            EXPECT_TRUE(c.ok()) << c.workload << "/" << c.policy;
            EXPECT_EQ(c.result.total_instructions, 1000u);
        }
    }
    EXPECT_EQ(failed, 1u);
    EXPECT_TRUE(SweepRunner::anyFailed(cells));

    const auto table = SweepRunner::errorTable(cells);
    EXPECT_EQ(table.numRows(), 1u);
    EXPECT_NE(table.render().find("injected cell failure"),
              std::string::npos);
}

TEST(SweepRunner, NonStdExceptionIsCaptured)
{
    SweepRunner runner(sim::SimParams{}, SweepOptions{});
    runner.setCellFn([](const SweepRunner::CellSpec &,
                        const sim::SimParams &) -> sim::RunResult {
        throw 7; // not derived from std::exception
    });
    const auto cells = runner.run({"w"}, {"p"});
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].error, "unknown exception");
}

TEST(SweepRunner, SeedsDependOnWorkloadOnly)
{
    // Same workload under different policies must see the same
    // seed (comparable access streams); different workloads and
    // different master seeds must decorrelate.
    EXPECT_EQ(SweepRunner::cellSeed(42, "a"),
              SweepRunner::cellSeed(42, "a"));
    EXPECT_NE(SweepRunner::cellSeed(42, "a"),
              SweepRunner::cellSeed(42, "b"));
    EXPECT_NE(SweepRunner::cellSeed(42, "a"),
              SweepRunner::cellSeed(43, "a"));

    SweepRunner runner(sim::SimParams{}, SweepOptions{});
    runner.setCellFn(fakeRun);
    const auto cells = runner.run({"a", "b"}, {"LRU", "RLR"});
    for (const auto &c : cells) {
        EXPECT_EQ(c.seed, SweepRunner::cellSeed(42, c.workload));
    }
    EXPECT_EQ(cells[0].seed, cells[1].seed);   // a/LRU == a/RLR
    EXPECT_NE(cells[0].seed, cells[2].seed);   // a != b
}

TEST(SweepRunner, ResultsInvariantToThreadCount)
{
    sim::SimParams params;
    params.seed = 7;
    auto run_with = [&](size_t threads) {
        SweepOptions opts;
        opts.threads = threads;
        SweepRunner runner(params, opts);
        runner.setCellFn(fakeRun);
        return runner.run({"w1", "w2", "w3"}, {"LRU", "RLR"});
    };
    const auto serial = run_with(1);
    const auto parallel = run_with(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].seed, parallel[i].seed);
        EXPECT_EQ(serial[i].result.llc_demand_hits,
                  parallel[i].result.llc_demand_hits);
    }
}

TEST(SweepRunner, RecordsTelemetry)
{
    SweepRunner runner(sim::SimParams{}, SweepOptions{});
    runner.setCellFn([](const SweepRunner::CellSpec &spec,
                        const sim::SimParams &p) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(2));
        return fakeRun(spec, p);
    });
    const auto cells = runner.run({"w"}, {"LRU"});
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_GT(cells[0].wall_seconds, 0.0);
    EXPECT_GT(cells[0].mips, 0.0);
}

TEST(SweepRunner, JsonExportReportsResultsAndErrors)
{
    const std::string path = tempJsonPath("sweep_runner_test.json");
    sim::SimParams params;
    SweepOptions opts;
    opts.threads = 2;
    opts.json_path = path;
    SweepRunner runner(params, opts);
    runner.setCellFn([](const SweepRunner::CellSpec &spec,
                        const sim::SimParams &p) {
        if (spec.policy == "RLR")
            throw std::runtime_error("quoted \"boom\"\n");
        return fakeRun(spec, p);
    });
    const auto cells = runner.run({"wl"}, {"LRU", "RLR"});
    const std::string json = slurp(path);
    std::remove(path.c_str());

    // Healthy cell: metrics present, error null.
    EXPECT_NE(json.find("\"workload\": \"wl\""),
              std::string::npos);
    EXPECT_NE(json.find("\"policy\": \"LRU\""), std::string::npos);
    EXPECT_NE(json.find("\"error\": null"), std::string::npos);
    EXPECT_NE(json.find("\"instructions\": 1000"),
              std::string::npos);

    // Failed cell: metrics null, error escaped into valid JSON.
    EXPECT_NE(json.find("\"hit_rate\": null"), std::string::npos);
    EXPECT_NE(json.find("\"error\": \"quoted \\\"boom\\\"\\n\""),
              std::string::npos);

    // Export and in-memory serialization agree.
    EXPECT_EQ(json, SweepRunner::toJson(cells));
}
