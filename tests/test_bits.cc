/** @file Unit tests for util/bits.hh. */

#include <gtest/gtest.h>

#include "util/bits.hh"

using namespace rlr::util;

TEST(Bits, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 63));
    EXPECT_FALSE(isPowerOfTwo((1ULL << 63) + 1));
}

TEST(Bits, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1ULL << 40), 40u);
    EXPECT_EQ(floorLog2((1ULL << 40) + 17), 40u);
}

TEST(Bits, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
}

TEST(Bits, MaskWidths)
{
    EXPECT_EQ(mask(0), 0ULL);
    EXPECT_EQ(mask(1), 1ULL);
    EXPECT_EQ(mask(6), 63ULL);
    EXPECT_EQ(mask(64), ~0ULL);
    EXPECT_EQ(mask(65), ~0ULL);
}

TEST(Bits, ExtractInsertRoundTrip)
{
    const uint64_t v = 0xdeadbeefcafef00dULL;
    for (unsigned first = 0; first < 60; first += 7) {
        const unsigned last = first + 3;
        const uint64_t field = bits(v, last, first);
        EXPECT_LE(field, mask(4));
        const uint64_t rebuilt =
            insertBits(v, last, first, field);
        EXPECT_EQ(rebuilt, v);
    }
}

TEST(Bits, InsertOverwrites)
{
    const uint64_t v = insertBits(0, 11, 8, 0xf);
    EXPECT_EQ(v, 0xf00ULL);
    EXPECT_EQ(bits(v, 11, 8), 0xfULL);
    EXPECT_EQ(bits(v, 7, 0), 0ULL);
}

TEST(Bits, FoldXorWidth)
{
    // Folding never exceeds the requested width.
    for (unsigned w = 1; w <= 20; ++w) {
        EXPECT_LE(foldXor(0x123456789abcdef0ULL, w), mask(w))
            << "width " << w;
    }
    // Folding a value narrower than the width is the identity.
    EXPECT_EQ(foldXor(0x3f, 8), 0x3fULL);
}

TEST(Bits, AlignDown)
{
    EXPECT_EQ(alignDown(127, 64), 64ULL);
    EXPECT_EQ(alignDown(128, 64), 128ULL);
    EXPECT_EQ(alignDown(0, 64), 0ULL);
}
