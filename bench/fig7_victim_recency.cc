/**
 * @file
 * Regenerates Figure 7: recency distribution of the RL agent's
 * victims (0 = LRU .. 15 = MRU). The paper's takeaway: the agent
 * prefers evicting recently used lines, which becomes RLR's
 * most-recent tie-break.
 */

#include "bench/common.hh"
#include "ml/analysis.hh"

using namespace rlr;

int
main(int argc, char **argv)
{
    auto parser = bench::makeParser(
        "Figure 7: victim recency distribution (agent sim)");
    if (!parser.parse(argc, argv))
        return 0;
    auto opt = bench::makeOptions(parser);

    auto workloads = opt.workloads;
    if (workloads.empty())
        workloads = bench::trainingNames();

    std::vector<std::string> header = {"Benchmark"};
    for (int r = 0; r < 16; ++r)
        header.push_back(std::to_string(r));
    util::Table table(header);
    std::vector<std::vector<std::string>> rows(workloads.size());
    std::vector<double> mru_share(workloads.size(), 0.0);

    util::ThreadPool::parallelFor(
        workloads.size(), opt.threads, [&](size_t i) {
            sim::SimParams p = opt.params;
            p.sim_instructions = opt.rl_instructions;
            const auto trace =
                sim::captureLlcTrace(workloads[i], p);
            if (trace.empty())
                return;
            ml::OfflineSimulator osim(ml::OfflineConfig{}, &trace);
            ml::AgentConfig cfg;
            cfg.seed = opt.seed + 41 * i;
            ml::trainAgent(osim, cfg, 1); // victim stats need no convergence
            const auto &fs = osim.featureStats();
            double total = 0.0;
            for (const auto v : fs.victim_recency)
                total += static_cast<double>(v);
            std::vector<std::string> row = {workloads[i]};
            double upper_half = 0.0;
            for (size_t r = 0; r < fs.victim_recency.size();
                 ++r) {
                const double pct =
                    total > 0 ? 100.0 *
                                    static_cast<double>(
                                        fs.victim_recency[r]) /
                                    total
                              : 0.0;
                if (r >= fs.victim_recency.size() / 2)
                    upper_half += pct;
                row.push_back(util::Table::fmt(pct, 1));
            }
            rows[i] = std::move(row);
            mru_share[i] = upper_half;
        });

    for (auto &row : rows)
        if (!row.empty())
            table.addRow(row);

    std::puts("=== Figure 7: victim recency (% of victims; 0 = "
              "LRU, 15 = MRU) ===");
    bench::emit(opt, table);
    double avg = 0.0;
    size_t n = 0;
    for (const auto v : mru_share) {
        if (v > 0) {
            avg += v;
            ++n;
        }
    }
    std::printf("\nShare of victims in the MRU half (recency "
                ">= 8), mean over benchmarks: %.1f%%\n",
                n ? avg / static_cast<double>(n) : 0.0);
    std::puts("Paper's shape: evictions skew toward high recency "
              "values (most recently used lines).");
    return 0;
}
