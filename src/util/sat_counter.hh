/**
 * @file
 * Saturating counters — the workhorse state element of replacement
 * policies, branch predictors, and confidence estimators.
 */

#ifndef RLR_UTIL_SAT_COUNTER_HH
#define RLR_UTIL_SAT_COUNTER_HH

#include <cstdint>

#include "util/bits.hh"
#include "util/logging.hh"

namespace rlr::util
{

/**
 * An n-bit unsigned saturating counter. The width is a runtime
 * parameter because several experiments sweep counter widths
 * (e.g. the RLR age-counter ablation).
 */
class SatCounter
{
  public:
    /** @param nbits counter width in bits (1..63)
     *  @param initial initial value (clamped to the maximum) */
    explicit SatCounter(unsigned nbits = 2, uint64_t initial = 0)
        : max_(mask(nbits)), value_(initial > max_ ? max_ : initial)
    {
        ensure(nbits >= 1 && nbits <= 63, "SatCounter: bad width");
    }

    /** Increment, saturating at the maximum. */
    SatCounter &
    operator++()
    {
        if (value_ < max_)
            ++value_;
        return *this;
    }

    /** Decrement, saturating at zero. */
    SatCounter &
    operator--()
    {
        if (value_ > 0)
            --value_;
        return *this;
    }

    /** Add @p delta with saturation. */
    void
    add(uint64_t delta)
    {
        value_ = (max_ - value_ < delta) ? max_ : value_ + delta;
    }

    /** Set to an explicit value (clamped). */
    void set(uint64_t v) { value_ = v > max_ ? max_ : v; }

    /** Reset to zero. */
    void reset() { value_ = 0; }

    uint64_t value() const { return value_; }
    uint64_t maxValue() const { return max_; }
    bool saturated() const { return value_ == max_; }

    /** @return value normalized to [0, 1]. */
    double
    fraction() const
    {
        return static_cast<double>(value_) / static_cast<double>(max_);
    }

    operator uint64_t() const { return value_; }

  private:
    uint64_t max_;
    uint64_t value_;
};

/**
 * An n-bit signed saturating counter in [-2^(n-1), 2^(n-1)-1],
 * as used by perceptron-style predictors and set-dueling monitors.
 */
class SignedSatCounter
{
  public:
    explicit SignedSatCounter(unsigned nbits = 10, int64_t initial = 0)
        : min_(-(1LL << (nbits - 1))), max_((1LL << (nbits - 1)) - 1),
          value_(initial)
    {
        ensure(nbits >= 2 && nbits <= 63,
               "SignedSatCounter: bad width");
        if (value_ < min_)
            value_ = min_;
        if (value_ > max_)
            value_ = max_;
    }

    SignedSatCounter &
    operator++()
    {
        if (value_ < max_)
            ++value_;
        return *this;
    }

    SignedSatCounter &
    operator--()
    {
        if (value_ > min_)
            --value_;
        return *this;
    }

    int64_t value() const { return value_; }
    int64_t minValue() const { return min_; }
    int64_t maxValue() const { return max_; }

    /** @return true when the counter is non-negative. */
    bool taken() const { return value_ >= 0; }

  private:
    int64_t min_;
    int64_t max_;
    int64_t value_;
};

} // namespace rlr::util

#endif // RLR_UTIL_SAT_COUNTER_HH
