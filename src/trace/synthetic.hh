/**
 * @file
 * Parameterized synthetic workload generation.
 *
 * The paper evaluates on SPEC CPU2006 / CloudSuite SimPoint traces
 * from CRC2, which are not redistributable. We substitute each
 * benchmark with a mixture of access-pattern kernels whose knobs
 * (working-set size, stride, pointer-chase dependence, hot/cold
 * skew, scan/thrash phases, write fraction, branch predictability)
 * are tuned to the benchmark's published LLC behaviour. Replacement
 * policy rankings are driven by exactly these stream properties, so
 * relative results (who wins, where crossovers fall) are preserved
 * even though absolute IPC differs from the authors' testbed.
 */

#ifndef RLR_TRACE_SYNTHETIC_HH
#define RLR_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/record.hh"
#include "util/rng.hh"

namespace rlr::trace
{

/** Families of memory-access kernels. */
enum class KernelKind : uint8_t
{
    /** Sequential walk over a large region (streaming). */
    Stream,
    /** Fixed-stride walk (stencil / column-major codes). */
    Strided,
    /** Dependent random walk over a permutation (linked data). */
    PointerChase,
    /** Repeated sweep over a modest working set (loop reuse). */
    Loop,
    /** Zipf-skewed accesses over a region (hot/cold). */
    HotCold,
    /**
     * Alternating phases: tight loop over a hot region, then a long
     * scan over a cold region (the access mix where recency-based
     * policies thrash).
     */
    ScanThrash,
};

/** @return short kernel name for diagnostics. */
std::string_view kernelKindName(KernelKind kind);

/** One kernel within a workload mixture. */
struct KernelSpec
{
    KernelKind kind = KernelKind::Loop;
    /** Working set in bytes (rounded to cache lines). */
    uint64_t working_set = 1 << 20;
    /** Access stride in bytes (Stream/Strided/Loop). */
    uint64_t stride = 64;
    /** Relative probability of drawing from this kernel. */
    double weight = 1.0;
    /** Fraction of this kernel's accesses that are stores. */
    double write_frac = 0.0;
    /** Zipf skew (HotCold only). */
    double zipf_alpha = 0.8;
    /** Hot-loop length and scan length in accesses (ScanThrash). */
    uint64_t phase_hot = 4096;
    uint64_t phase_scan = 4096;
    /** Number of distinct load/store PCs attributed to the kernel. */
    unsigned num_pcs = 4;
    /**
     * Iterate the working set in a fixed random permutation
     * instead of sequentially (Loop kernels; always on for the
     * ScanThrash hot phase). Reuse behaviour is identical but
     * stride/next-line prefetchers cannot cover the traffic —
     * the signature of irregular-reuse benchmarks.
     */
    bool shuffled = false;
};

/** Full description of one synthetic benchmark. */
struct WorkloadProfile
{
    std::string name;
    /** "spec2006" or "cloudsuite". */
    std::string suite;
    /** Fraction of instructions that access memory. */
    double mem_ratio = 0.35;
    /** Fraction of instructions that are branches. */
    double branch_ratio = 0.15;
    /** Fraction of branches that are data-dependent (unpredictable). */
    double branch_noise = 0.02;
    /** Instruction footprint in bytes (L1I pressure). */
    uint64_t code_footprint = 16 * 1024;
    /**
     * Fraction of memory ops that touch the local (stack/scratch)
     * region rather than a kernel. Real programs satisfy most
     * accesses from L1; only the remainder stresses the LLC.
     */
    double local_frac = 0.78;
    /** Size of the local region (fits in L1). */
    uint64_t local_ws = 16 * 1024;
    /** Store fraction of local accesses. */
    double local_write_frac = 0.3;
    std::vector<KernelSpec> kernels;
};

/**
 * Instruction stream generator for one WorkloadProfile. Streams are
 * infinite; the driver decides how many instructions to consume.
 * Deterministic for a given (profile, seed).
 */
class SyntheticGenerator : public InstructionSource
{
  public:
    SyntheticGenerator(WorkloadProfile profile, uint64_t seed);
    ~SyntheticGenerator() override;

    bool next(Instruction &out) override;
    void reset() override;
    const std::string &name() const override;

    const WorkloadProfile &profile() const { return profile_; }

  private:
    struct KernelState;

    uint64_t nextMemAddress(size_t kernel_idx, bool &is_store,
                            bool &dependent);
    void emitBranch(Instruction &out);

    WorkloadProfile profile_;
    uint64_t seed_;
    util::Rng rng_;
    std::vector<std::unique_ptr<KernelState>> kernels_;
    std::vector<double> kernel_cdf_;
    uint64_t seq_ = 0;
    uint8_t next_dest_reg_ = 2;
    uint64_t loop_branch_pc_ = 0;
    uint64_t noise_branch_pc_ = 0;
};

/**
 * Replays a fixed vector of instructions (unit tests, hand-crafted
 * microbenchmarks).
 */
class VectorInstructionSource : public InstructionSource
{
  public:
    VectorInstructionSource(std::string name,
                            std::vector<Instruction> instructions);

    bool next(Instruction &out) override;
    void reset() override;
    const std::string &name() const override;

  private:
    std::string name_;
    std::vector<Instruction> instructions_;
    size_t pos_ = 0;
};

} // namespace rlr::trace

#endif // RLR_TRACE_SYNTHETIC_HH
