# Empty compiler generated dependencies file for fig10_spec_speedup.
# This may be replaced when dependencies are built.
