file(REMOVE_RECURSE
  "CMakeFiles/rlr_prefetch.dir/ip_stride.cc.o"
  "CMakeFiles/rlr_prefetch.dir/ip_stride.cc.o.d"
  "CMakeFiles/rlr_prefetch.dir/kpc_p.cc.o"
  "CMakeFiles/rlr_prefetch.dir/kpc_p.cc.o.d"
  "CMakeFiles/rlr_prefetch.dir/next_line.cc.o"
  "CMakeFiles/rlr_prefetch.dir/next_line.cc.o.d"
  "librlr_prefetch.a"
  "librlr_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlr_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
