/**
 * @file
 * Seed-determinism regression tests: with --stable-json telemetry
 * zeroing (SweepOptions::stable_telemetry), the same master seed
 * must produce byte-identical SweepRunner JSON exports across
 * repeated runs and across worker-thread counts. Guards the
 * reproducibility contract the experiment harnesses advertise.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "sim/sweep_runner.hh"

using namespace rlr;
using sim::SweepOptions;
using sim::SweepRunner;

namespace
{

/**
 * Deterministic, seed-sensitive cell body with a measurable wall
 * clock, so real telemetry would differ run to run.
 */
sim::RunResult
fakeRun(const SweepRunner::CellSpec &spec, const sim::SimParams &p)
{
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    sim::RunResult r;
    sim::CoreResult core;
    core.workload = spec.cores.empty() ? "" : spec.cores[0];
    core.instructions = 1000;
    core.cycles = 500 + p.seed % 97;
    core.ipc = static_cast<double>(core.instructions) /
               static_cast<double>(core.cycles);
    r.cores.push_back(core);
    r.total_instructions = core.instructions;
    r.llc_demand_accesses = 100;
    r.llc_demand_hits = 60 + p.seed % 7;
    r.llc_demand_misses =
        r.llc_demand_accesses - r.llc_demand_hits;
    return r;
}

std::vector<sim::SweepCell>
sweepCells(uint64_t seed, size_t threads, bool stable)
{
    sim::SimParams params;
    params.seed = seed;
    SweepOptions opts;
    opts.threads = threads;
    opts.stable_telemetry = stable;
    SweepRunner runner(params, opts);
    runner.setCellFn(fakeRun);
    return runner.run({"astar", "lbm", "mcf"},
                      {"LRU", "SRRIP", "RLR"});
}

std::string
sweepJson(uint64_t seed, size_t threads, bool stable)
{
    return SweepRunner::toJson(sweepCells(seed, threads, stable));
}

} // namespace

TEST(SeedDeterminism, SameSeedIsByteIdentical)
{
    const std::string a = sweepJson(42, 4, true);
    const std::string b = sweepJson(42, 4, true);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
}

TEST(SeedDeterminism, StableJsonInvariantToThreadCount)
{
    EXPECT_EQ(sweepJson(7, 1, true), sweepJson(7, 4, true));
}

TEST(SeedDeterminism, DifferentSeedsDiverge)
{
    EXPECT_NE(sweepJson(1, 2, true), sweepJson(2, 2, true));
}

TEST(SeedDeterminism, StableTelemetryZeroesWallClockFields)
{
    const std::string stable = sweepJson(42, 2, true);
    EXPECT_NE(stable.find("\"runtime_s\": 0,"), std::string::npos);
    EXPECT_NE(stable.find("\"mips\": 0,"), std::string::npos);
    // Without stabilization the cell body's sleep shows up in the
    // telemetry (>= 200us, so it never formats as exactly "0").
    const std::string raw = sweepJson(42, 2, false);
    EXPECT_EQ(raw.find("\"runtime_s\": 0,"), std::string::npos);
}

TEST(SeedDeterminism, ChromeTraceStableAcrossRunsAndThreads)
{
    const std::string a =
        SweepRunner::chromeTraceJson(sweepCells(42, 1, true));
    const std::string b =
        SweepRunner::chromeTraceJson(sweepCells(42, 4, true));
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
}

TEST(SeedDeterminism, ChromeTraceStableTelemetryZeroesTimestamps)
{
    const std::string stable =
        SweepRunner::chromeTraceJson(sweepCells(7, 2, true));
    // With telemetry zeroed every "X" span starts at ts 0 with
    // dur 0, so the export is byte-stable.
    for (const char *key : {"\"ts\": ", "\"dur\": "}) {
        size_t pos = 0, found = 0;
        while ((pos = stable.find(key, pos)) !=
               std::string::npos) {
            pos += std::string(key).size();
            EXPECT_EQ(stable[pos], '0')
                << key << "at offset " << pos;
            ++found;
        }
        EXPECT_EQ(found, 9u) << key; // 3 workloads x 3 policies
    }
}
