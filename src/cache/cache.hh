/**
 * @file
 * Set-associative, write-back, write-allocate, non-blocking cache
 * with pluggable replacement policy and prefetcher.
 *
 * The access path is compiled per replacement policy: for the
 * factory's common policies (LRU, the RRIP family, SHiP, RLR) the
 * cache selects a template instantiation at construction time
 * whose policy calls are devirtualized qualified calls, while
 * exotic or external policies run the same body through the
 * virtual fallback instantiation. Per-set metadata is stored as
 * struct-of-arrays lanes so tag lookups and victim scans
 * vectorize (docs/ARCHITECTURE.md, docs/PERFORMANCE.md).
 */

#ifndef RLR_CACHE_CACHE_HH
#define RLR_CACHE_CACHE_HH

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "cache/geometry.hh"
#include "cache/memory_interface.hh"
#include "cache/prefetcher.hh"
#include "cache/replacement.hh"
#include "stats/stats.hh"

namespace rlr::obs
{
class EventLog;
class EpochSampler;
} // namespace rlr::obs

namespace rlr::cache
{

/** Callback invoked for every access to this cache (trace capture). */
using AccessSink = std::function<void(const trace::LlcAccess &)>;

/**
 * One cache level.
 *
 * Timing: lookups cost `geometry.latency`; misses recurse into the
 * next level and the block is tagged with its data-ready cycle.
 * MSHR pressure delays new misses once the outstanding-miss count
 * reaches `geometry.mshrs`.
 */
class Cache : public MemoryLevel
{
  public:
    /**
     * @param geom shape and timing
     * @param policy replacement policy (owned)
     * @param next next level (borrowed; outlives this cache)
     */
    Cache(CacheGeometry geom,
          std::unique_ptr<ReplacementPolicy> policy,
          MemoryLevel *next);

    /** Attach a prefetcher (owned). May be null. */
    void setPrefetcher(std::unique_ptr<Prefetcher> prefetcher);

    /**
     * L1 data caches take ownership on RFO: stores dirty the line
     * at this level. Lower levels leave RFO fills clean and only
     * become dirty via writebacks.
     */
    void setWritesOnRfo(bool v) { writes_on_rfo_ = v; }

    /** Install an access-capture sink (e.g. LLC trace recording). */
    void setAccessSink(AccessSink sink) { sink_ = std::move(sink); }

    /**
     * Attach a decision-level event log (borrowed; null detaches).
     * The log is bound to this cache's geometry and driven at
     * every hit / miss / fill / eviction / bypass. When detached
     * (the default) the access path compiles hook-free and pays
     * only one predicted dispatch branch per access.
     */
    void setEventLog(obs::EventLog *log);
    obs::EventLog *eventLog() { return events_; }

    /**
     * Attach an epoch time-series sampler (borrowed; null
     * detaches). The sampler is bound to this cache's set count
     * and given a valid-line occupancy provider.
     */
    void setEpochSampler(obs::EpochSampler *sampler);
    obs::EpochSampler *epochSampler() { return epoch_; }

    /**
     * Arm (or disarm) per-access invariant checking: after every
     * access the replacement policy's verifyInvariants hook runs on
     * the touched set and the per-type access counters are checked
     * for hit+miss == accesses consistency; violations throw
     * std::logic_error. Defaults to the RLR_VERIFY environment
     * variable (set and not "0"). Debug/fuzzing aid — adds O(ways)
     * work per access.
     */
    void setVerifyInvariants(bool v) { verify_ = v; }
    bool verifyingInvariants() const { return verify_; }

    /**
     * Opt this cache into the scoped-span self-profiler
     * (obs/profiler.hh). Off by default; sim::System enables it
     * for the LLC only, so the sampled `sim.llc.*` spans cover
     * the level the replacement-policy work actually runs at
     * while L1/L2 stay uninstrumented (enabled-overhead budget).
     */
    void setProfiled(bool v) { profiled_ = v; }
    bool profiled() const { return profiled_; }

    /**
     * Route every access through the virtual-dispatch fallback
     * instantiation even when a compile-time specialization is
     * available. Bench/test aid: the dispatch-equivalence oracle
     * and bench/sim_throughput compare the two paths.
     */
    void setForceGenericDispatch(bool v);

    /**
     * Name of the access-path instantiation in use: the concrete
     * policy class devirtualized into the hot path, or "generic"
     * for the virtual fallback.
     */
    const char *dispatchKind() const;

    /**
     * Minimum prefetch confidence required to install a prefetch
     * fill at THIS level. Lower-confidence prefetched data still
     * flows to the requester and fills levels below (KPC-style
     * fill-level control: low-confidence prefetches skip the L2
     * but land in the LLC).
     */
    void setPrefetchFillThreshold(float t) { pf_fill_threshold_ = t; }

    uint64_t access(const MemRequest &req, uint64_t now) override;

    const std::string &name() const override { return geom_.name; }

    const CacheGeometry &geometry() const { return geom_; }
    ReplacementPolicy *policy() { return policy_.get(); }

    /** @return true when the line is present (tests/diagnostics). */
    bool probe(uint64_t address) const;

    /** Read-only views of a set's blocks (tests/diagnostics). */
    std::vector<BlockView> setContents(uint32_t set) const;

    stats::StatSet &statSet() { return stats_; }
    const stats::StatSet &statSet() const { return stats_; }

    /**
     * Mount this cache's statistics under @p prefix in the
     * registry: the per-type access counters, derived demand
     * totals and hit rate, the replacement policy's storage
     * overhead and policy-specific stats (under
     * "<prefix>.policy"), and any attached prefetcher's stats
     * (under "<prefix>.prefetcher").
     */
    void describeStats(stats::Registry &reg,
                       const std::string &prefix);

    /** Zero statistics (end of warmup); cache contents persist. */
    void resetStats();

    /**
     * Invalidate all blocks, drain the MSHRs, clear stats, and
     * reset the replacement policy's metadata (no line it has
     * seen is resident any more).
     */
    void flush();

    /** Demand (LD+RFO) access/hit/miss totals. */
    uint64_t demandAccesses() const;
    uint64_t demandHits() const;
    uint64_t demandMisses() const;

    /** Currently valid lines (epoch occupancy sampling). */
    uint64_t validLines() const;

  private:
    /** lookup() miss marker (no way holds the tag). */
    static constexpr uint32_t kNoWay =
        std::numeric_limits<uint32_t>::max();

    /**
     * Compile-time access-path selector. Every concrete kind maps
     * to an accessImpl instantiation whose policy calls are
     * devirtualized; Generic is the virtual fallback that serves
     * any ReplacementPolicy subclass.
     */
    enum class PolicyKind : uint8_t
    {
        Generic,
        Lru,
        Srrip,
        Brrip,
        Drrip,
        Ship,
        Rlr,
    };

    /** Flat SoA index of (set, way). */
    size_t
    idx(uint32_t set, uint32_t way) const
    {
        return static_cast<size_t>(set) * geom_.ways + way;
    }

    /** @return hit way for (set, tag) or kNoWay. */
    uint32_t lookup(uint32_t set, uint64_t tag) const;

    /**
     * Access body, compiled per (observability, policy type):
     * Obs=false is the hook-free disabled path; Obs=true drives
     * the attached EventLog / EpochSampler. P is the concrete
     * replacement policy class (qualified, devirtualized calls)
     * or ReplacementPolicy itself for the virtual fallback.
     * access() is one indirect call through the precomputed
     * member-function pointer.
     */
    template <bool Obs, class P>
    uint64_t accessImpl(const MemRequest &req, uint64_t now);

    /**
     * Install a line, evicting if necessary.
     * @return false when the fill was bypassed by the policy.
     */
    template <bool Obs, class P>
    bool fillImpl(const MemRequest &req, uint64_t ready, bool dirty);

    /** Devirtualized (or fallback-virtual) policy call helpers. */
    template <class P> void policyOnAccess(const AccessContext &ctx);
    template <class P>
    uint32_t policyFindVictim(const AccessContext &ctx,
                              std::span<const BlockView> blocks);
    template <class P>
    void policyOnEviction(uint32_t set, uint32_t way,
                          const BlockView &block);

    /**
     * Enforce MSHR capacity: may advance @p now to the completion
     * of the earliest outstanding miss (freeing its MSHR). The
     * caller reserves the freed entry with the final, post-stall
     * completion time via trackMiss().
     */
    uint64_t mshrAdmit(uint64_t now);

    /** Record an in-flight miss completing at @p ready. */
    void trackMiss(uint64_t ready) { inflight_.push(ready); }

    /** Detect the policy's kind and install the access pointer. */
    void updateDispatch();

    /** Run the armed invariant checks on @p set (throws). */
    void runVerify(uint32_t set) const;

    /** Let the prefetcher react to a demand access. */
    void runPrefetcher(const MemRequest &req, bool hit,
                       uint64_t now);

    /** Bump the cached per-type access counters. */
    void
    countAccess(trace::AccessType type, bool hit)
    {
        const auto i = static_cast<size_t>(type);
        ++*type_access_[i];
        ++*(hit ? type_hit_ : type_miss_)[i];
    }

    CacheGeometry geom_;
    std::unique_ptr<ReplacementPolicy> policy_;
    MemoryLevel *next_;
    std::unique_ptr<Prefetcher> prefetcher_;
    AccessSink sink_;
    /** Borrowed observability hooks; null = disabled (the access
     *  path then runs the hook-free accessImpl<false, P>). */
    obs::EventLog *events_ = nullptr;
    obs::EpochSampler *epoch_ = nullptr;
    bool writes_on_rfo_ = false;
    float pf_fill_threshold_ = 0.0f;
    /** Invariant checking armed (RLR_VERIFY / fuzz harness). */
    bool verify_ = false;
    /** Self-profiler spans armed (sim::System arms the LLC). */
    bool profiled_ = false;

    /**
     * Per-line metadata as struct-of-arrays lanes, indexed by
     * idx(set, way). Separating the one-byte flags from the
     * 8-byte lanes keeps the lookup scan reading only the lanes
     * it needs (valid + tag: 9 bytes/way instead of a 40-byte
     * Block record) and lets the compiler vectorize it.
     */
    std::vector<uint8_t> valid_;
    std::vector<uint8_t> dirty_;
    std::vector<uint8_t> prefetch_;
    std::vector<uint64_t> tag_;
    /** Line-aligned byte address. */
    std::vector<uint64_t> addr_;
    /** Cycle at which the block's data is present. */
    std::vector<uint64_t> ready_at_;

    /** Reusable findVictim() argument; sized to geom_.ways. */
    std::vector<BlockView> view_scratch_;

    /** Data-ready cycles of in-flight misses (MSHR accounting). */
    std::priority_queue<uint64_t, std::vector<uint64_t>,
                        std::greater<>>
        inflight_;
    /** Guard against recursive prefetch issue. */
    bool in_prefetch_ = false;

    /** Selected access-path instantiation. */
    using AccessFn = uint64_t (Cache::*)(const MemRequest &,
                                         uint64_t);
    AccessFn access_fn_ = nullptr;
    PolicyKind kind_ = PolicyKind::Generic;
    bool force_generic_ = false;

    stats::StatSet stats_;
    /**
     * Cached counter references (stable for the StatSet's life):
     * the seed implementation built two std::string keys and did
     * two map lookups per access, which dominated the hot path.
     */
    uint64_t *type_access_[trace::kNumAccessTypes];
    uint64_t *type_hit_[trace::kNumAccessTypes];
    uint64_t *type_miss_[trace::kNumAccessTypes];
    uint64_t *mshr_stalls_ = nullptr;
    uint64_t *mshr_merges_ = nullptr;
    uint64_t *evictions_ = nullptr;
    uint64_t *writebacks_issued_ = nullptr;
    uint64_t *bypasses_ = nullptr;
    uint64_t *wb_bypass_denied_ = nullptr;
    uint64_t *pf_fills_skipped_ = nullptr;
    uint64_t *prefetches_issued_ = nullptr;
};

} // namespace rlr::cache

#endif // RLR_CACHE_CACHE_HH
