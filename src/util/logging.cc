#include "util/logging.hh"

#include <atomic>
#include <mutex>

namespace rlr::util
{

namespace
{

std::atomic<bool> quiet{false};

void
defaultHook(LogLevel level, std::string_view msg)
{
    static std::mutex io_mutex;
    std::scoped_lock lock(io_mutex);
    switch (level) {
      case LogLevel::Info:
        if (!quiet.load(std::memory_order_relaxed))
            std::cerr << "info: " << msg << '\n';
        break;
      case LogLevel::Warn:
        if (!quiet.load(std::memory_order_relaxed))
            std::cerr << "warn: " << msg << '\n';
        break;
      case LogLevel::Fatal:
        std::cerr << "fatal: " << msg << '\n';
        break;
      case LogLevel::Panic:
        std::cerr << "panic: " << msg << '\n';
        break;
    }
}

std::atomic<LogHook> current_hook{&defaultHook};

} // namespace

LogHook
setLogHook(LogHook hook)
{
    return current_hook.exchange(hook ? hook : &defaultHook);
}

void
logMessage(LogLevel level, std::string_view msg)
{
    current_hook.load()(level, msg);
}

void
setLogQuiet(bool q)
{
    quiet.store(q, std::memory_order_relaxed);
}

bool
logQuiet()
{
    return quiet.load(std::memory_order_relaxed);
}

} // namespace rlr::util
