file(REMOVE_RECURSE
  "CMakeFiles/rlr_ml.dir/agent.cc.o"
  "CMakeFiles/rlr_ml.dir/agent.cc.o.d"
  "CMakeFiles/rlr_ml.dir/analysis.cc.o"
  "CMakeFiles/rlr_ml.dir/analysis.cc.o.d"
  "CMakeFiles/rlr_ml.dir/features.cc.o"
  "CMakeFiles/rlr_ml.dir/features.cc.o.d"
  "CMakeFiles/rlr_ml.dir/matrix.cc.o"
  "CMakeFiles/rlr_ml.dir/matrix.cc.o.d"
  "CMakeFiles/rlr_ml.dir/mlp.cc.o"
  "CMakeFiles/rlr_ml.dir/mlp.cc.o.d"
  "CMakeFiles/rlr_ml.dir/offline.cc.o"
  "CMakeFiles/rlr_ml.dir/offline.cc.o.d"
  "CMakeFiles/rlr_ml.dir/replay.cc.o"
  "CMakeFiles/rlr_ml.dir/replay.cc.o.d"
  "librlr_ml.a"
  "librlr_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlr_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
