#include "util/subprocess.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/logging.hh"

namespace rlr::util
{

namespace
{

ProcExit
decodeStatus(int raw)
{
    ProcExit out;
    if (WIFEXITED(raw)) {
        out.exited = true;
        out.code = WEXITSTATUS(raw);
    } else if (WIFSIGNALED(raw)) {
        out.signal = WTERMSIG(raw);
    }
    return out;
}

} // namespace

bool
Subprocess::spawn(const std::vector<std::string> &argv)
{
    if (argv.empty() || pid_ > 0)
        return false;
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        warn("fork failed: {}", std::strerror(errno));
        return false;
    }
    if (pid == 0) {
        ::execv(cargv[0], cargv.data());
        // Only reached when exec fails; _exit skips atexit
        // handlers we inherited from the parent.
        std::fprintf(stderr, "exec '%s' failed: %s\n",
                     cargv[0], std::strerror(errno));
        ::_exit(127);
    }
    pid_ = pid;
    reaped_ = false;
    return true;
}

bool
Subprocess::poll(ProcExit &status)
{
    if (reaped_) {
        status = status_;
        return true;
    }
    if (pid_ <= 0)
        return false;
    int raw = 0;
    const pid_t r = ::waitpid(pid_, &raw, WNOHANG);
    if (r != pid_)
        return false;
    status_ = decodeStatus(raw);
    reaped_ = true;
    status = status_;
    return true;
}

ProcExit
Subprocess::wait()
{
    if (reaped_ || pid_ <= 0)
        return status_;
    int raw = 0;
    while (::waitpid(pid_, &raw, 0) < 0) {
        if (errno != EINTR)
            return status_; // ECHILD: someone else reaped it
    }
    status_ = decodeStatus(raw);
    reaped_ = true;
    return status_;
}

void
Subprocess::kill(int sig) const
{
    if (pid_ > 0 && !reaped_)
        ::kill(pid_, sig);
}

} // namespace rlr::util
