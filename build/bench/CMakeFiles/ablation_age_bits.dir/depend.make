# Empty dependencies file for ablation_age_bits.
# This may be replaced when dependencies are built.
