# Empty dependencies file for rlr_trace.
# This may be replaced when dependencies are built.
