# Empty compiler generated dependencies file for rlr_core.
# This may be replaced when dependencies are built.
