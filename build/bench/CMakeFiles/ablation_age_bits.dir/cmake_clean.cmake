file(REMOVE_RECURSE
  "CMakeFiles/ablation_age_bits.dir/ablation_age_bits.cc.o"
  "CMakeFiles/ablation_age_bits.dir/ablation_age_bits.cc.o.d"
  "ablation_age_bits"
  "ablation_age_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_age_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
