/**
 * @file
 * EVA replacement (Beckmann & Sanchez, HPCA 2017): ranks lines by
 * Economic Value Added — the expected future hits of a line minus
 * the cache-space opportunity cost of keeping it. Hit and eviction
 * age distributions are gathered per class (reused vs not-yet-
 * reused) and the EVA ranking is recomputed periodically.
 *
 * As the paper notes, EVA does not account for non-demand access
 * types; prefetch traffic can skew the age/value correlation, which
 * is visible in the reproduction results just as in the paper's.
 */

#ifndef RLR_POLICIES_EVA_HH
#define RLR_POLICIES_EVA_HH

#include <vector>

#include "cache/replacement.hh"

namespace rlr::policies
{

/** EVA configuration. */
struct EvaConfig
{
    /** Number of coarsened age buckets. */
    uint32_t age_buckets = 64;
    /** Set accesses per age-bucket increment. */
    uint32_t age_granularity = 8;
    /** Accesses between ranking recomputations. */
    uint64_t update_interval = 1 << 16;
};

/** EVA policy. */
class EvaPolicy : public cache::ReplacementPolicy
{
  public:
    explicit EvaPolicy(EvaConfig config = {});

    void bind(const cache::CacheGeometry &geom) override;
    uint32_t
    findVictim(const cache::AccessContext &ctx,
               std::span<const cache::BlockView> blocks) override;
    void onAccess(const cache::AccessContext &ctx) override;
    void onEviction(uint32_t set, uint32_t way,
                    const cache::BlockView &block) override;
    std::string name() const override { return "EVA"; }
    cache::StorageOverhead overhead() const override;

    /** Current rank of (reused, age): lower = evict first (tests). */
    double rank(bool reused, uint32_t age_bucket) const;

  private:
    struct LineState
    {
        /** Set accesses since last touch (pre-coarsening). */
        uint32_t age_raw = 0;
        bool reused = false;
    };

    uint32_t ageBucket(uint32_t age_raw) const;
    void recompute();
    LineState &line(uint32_t set, uint32_t way);

    EvaConfig config_;
    uint32_t ways_ = 0;
    uint32_t num_sets_ = 0;
    std::vector<LineState> lines_;

    /** Event histograms per class [reused][age]. */
    std::vector<uint64_t> hits_[2];
    std::vector<uint64_t> evictions_[2];
    /** EVA rank per class [reused][age]. */
    std::vector<double> rank_[2];
    uint64_t accesses_ = 0;
};

} // namespace rlr::policies

#endif // RLR_POLICIES_EVA_HH
