/**
 * @file
 * Regenerates Figure 6: fraction of the RL agent's victims that
 * had 0, 1, or more than 1 hit at eviction. The paper's takeaway:
 * most victims were never reused (>50% zero hits, >80% at most
 * one), which becomes RLR's hit priority.
 */

#include "bench/common.hh"
#include "ml/analysis.hh"

using namespace rlr;

int
main(int argc, char **argv)
{
    auto parser = bench::makeParser(
        "Figure 6: victim hit-count distribution (agent sim)");
    if (!parser.parse(argc, argv))
        return 0;
    auto opt = bench::makeOptions(parser);

    auto workloads = opt.workloads;
    if (workloads.empty())
        workloads = bench::trainingNames();

    util::Table table(
        {"Benchmark", "0 hits (%)", "1 hit (%)", ">1 hit (%)"});
    std::vector<std::vector<std::string>> rows(workloads.size());

    util::ThreadPool::parallelFor(
        workloads.size(), opt.threads, [&](size_t i) {
            sim::SimParams p = opt.params;
            p.sim_instructions = opt.rl_instructions;
            const auto trace =
                sim::captureLlcTrace(workloads[i], p);
            if (trace.empty())
                return;
            ml::OfflineSimulator osim(ml::OfflineConfig{}, &trace);
            ml::AgentConfig cfg;
            cfg.seed = opt.seed + 37 * i;
            ml::trainAgent(osim, cfg, 1); // victim stats need no convergence
            const auto &fs = osim.featureStats();
            const double total = static_cast<double>(
                fs.victims_zero_hits + fs.victims_one_hit +
                fs.victims_multi_hits);
            auto pct = [&](uint64_t v) {
                return util::Table::fmt(
                    total > 0 ? 100.0 * static_cast<double>(v) /
                                    total
                              : 0.0,
                    1);
            };
            rows[i] = {workloads[i], pct(fs.victims_zero_hits),
                       pct(fs.victims_one_hit),
                       pct(fs.victims_multi_hits)};
        });

    for (auto &row : rows)
        if (!row.empty())
            table.addRow(row);

    std::puts("=== Figure 6: hits at eviction (agent simulation) "
              "===");
    bench::emit(opt, table);
    std::puts("\nPaper's shape: >50% of victims have zero hits and "
              ">80% at most one hit in every benchmark.");
    return 0;
}
