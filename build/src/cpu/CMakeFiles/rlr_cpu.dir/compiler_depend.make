# Empty compiler generated dependencies file for rlr_cpu.
# This may be replaced when dependencies are built.
