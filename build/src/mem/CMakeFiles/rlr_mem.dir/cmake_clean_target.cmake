file(REMOVE_RECURSE
  "librlr_mem.a"
)
