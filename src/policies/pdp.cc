#include "policies/pdp.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rlr::policies
{

PdpPolicy::PdpPolicy(PdpConfig config)
    : config_(config), pd_(config.initial_pd)
{
    util::ensure(config_.max_pd >= 8, "PDP: max_pd too small");
}

void
PdpPolicy::bind(const cache::CacheGeometry &geom)
{
    ways_ = geom.ways;
    num_sets_ = geom.numSets();
    ages_.assign(static_cast<size_t>(num_sets_) * ways_, 0);
    reuse_hist_.assign(config_.max_pd + 1, 0);
    no_reuse_ = 0;
    accesses_ = 0;
    pd_ = config_.initial_pd;
}

uint32_t &
PdpPolicy::age(uint32_t set, uint32_t way)
{
    return ages_[static_cast<size_t>(set) * ways_ + way];
}

void
PdpPolicy::recomputePd()
{
    // Choose d maximizing estimated hits per unit of occupied
    // cache time:
    //   E(d) = hits(<=d) / (sum_{i<=d} i*h(i) + d * misses(>d))
    uint64_t total = no_reuse_;
    for (uint32_t i = 1; i <= config_.max_pd; ++i)
        total += reuse_hist_[i];
    if (total == 0)
        return;

    double best_e = -1.0;
    uint32_t best_d = pd_;
    uint64_t hits_cum = 0;
    uint64_t time_cum = 0;
    for (uint32_t d = 1; d <= config_.max_pd; ++d) {
        hits_cum += reuse_hist_[d];
        time_cum += static_cast<uint64_t>(d) * reuse_hist_[d];
        const uint64_t unreused = total - hits_cum;
        const double occupancy = static_cast<double>(
            time_cum + static_cast<uint64_t>(d) * unreused);
        if (occupancy <= 0.0)
            continue;
        const double e = static_cast<double>(hits_cum) / occupancy;
        if (e > best_e) {
            best_e = e;
            best_d = d;
        }
    }
    pd_ = best_d;

    // Decay the histogram so PD follows program phases.
    for (auto &h : reuse_hist_)
        h /= 2;
    no_reuse_ /= 2;
}

uint32_t
PdpPolicy::findVictim(const cache::AccessContext &ctx,
                      std::span<const cache::BlockView> blocks)
{
    (void)blocks;
    const size_t base = static_cast<size_t>(ctx.set) * ways_;

    // Prefer the unprotected line with the largest age.
    uint32_t victim = ways_;
    uint32_t oldest = 0;
    for (uint32_t w = 0; w < ways_; ++w) {
        const uint32_t a = ages_[base + w];
        if (a >= pd_ && a >= oldest) {
            oldest = a;
            victim = w;
        }
    }
    if (victim != ways_)
        return victim;

    if (config_.allow_bypass && ctx.allow_bypass &&
        ctx.type != trace::AccessType::Writeback)
        return kBypass;

    // No unprotected line and no bypass: evict the youngest line
    // (fewest set accesses), per the paper.
    victim = 0;
    uint32_t youngest = ages_[base];
    for (uint32_t w = 1; w < ways_; ++w) {
        if (ages_[base + w] < youngest) {
            youngest = ages_[base + w];
            victim = w;
        }
    }
    return victim;
}

void
PdpPolicy::onAccess(const cache::AccessContext &ctx)
{
    ++accesses_;
    const size_t base = static_cast<size_t>(ctx.set) * ways_;
    for (uint32_t w = 0; w < ways_; ++w) {
        if (ages_[base + w] < config_.max_pd * 4)
            ++ages_[base + w];
    }

    uint32_t &a = ages_[base + ctx.way];
    if (ctx.hit) {
        ++reuse_hist_[std::min(a, config_.max_pd)];
    }
    a = 0;

    if (accesses_ % config_.update_interval == 0)
        recomputePd();
}

void
PdpPolicy::onEviction(uint32_t set, uint32_t way,
                      const cache::BlockView &block)
{
    (void)set;
    (void)way;
    (void)block;
    ++no_reuse_;
}

cache::StorageOverhead
PdpPolicy::overhead() const
{
    cache::StorageOverhead o;
    // Distance counter per line + histogram + PD search state.
    o.bits_per_line = 8;
    o.global_bits = (config_.max_pd + 1) * 16.0 + 64;
    return o;
}

} // namespace rlr::policies
