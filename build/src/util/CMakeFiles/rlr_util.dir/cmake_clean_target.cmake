file(REMOVE_RECURSE
  "librlr_util.a"
)
