/**
 * @file
 * Chrome trace_event exporter: renders a list of timed spans into
 * the JSON Object Format understood by chrome://tracing and
 * Perfetto ("traceEvents" array of ph:"X" complete events with
 * microsecond ts/dur). sim::SweepRunner converts its cells into
 * TraceSpans (one per (workload, policy) cell, packed into lanes)
 * so a whole sweep's schedule is viewable on a timeline.
 *
 * The exporter itself is generic and layering-neutral: it knows
 * nothing about sweeps, only named spans with integer timestamps,
 * so any future component (epoch phases, per-workload segments)
 * can reuse it.
 */

#ifndef RLR_OBS_CHROME_TRACE_HH
#define RLR_OBS_CHROME_TRACE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rlr::obs
{

/** One complete ("X") trace event. */
struct TraceSpan
{
    /** Display name of the slice. */
    std::string name;
    /** Comma-separated categories (trace_event "cat"). */
    std::string category;
    /** Start timestamp in microseconds. */
    uint64_t start_us = 0;
    /** Duration in microseconds. */
    uint64_t duration_us = 0;
    uint32_t pid = 1;
    /** Lane; see assignLanes() for automatic packing. */
    uint32_t tid = 0;
    /** Extra "args" members as (key, pre-rendered JSON value) —
     *  values must already be valid JSON (quoted strings, bare
     *  numbers), they are emitted verbatim. */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Pack spans into the smallest number of non-overlapping lanes
 * (first-fit by start time), writing each span's tid. Spans with
 * zero duration (stable-telemetry exports) all fit lane 0.
 */
void assignLanes(std::vector<TraceSpan> &spans);

/**
 * Render spans as a complete trace_event JSON document:
 * an object with "displayTimeUnit" and a "traceEvents" array
 * holding one "M" process_name metadata event (named @p
 * process_name) followed by one "X" event per span.
 */
std::string chromeTraceJson(const std::vector<TraceSpan> &spans,
                            const std::string &process_name);

/** Write chromeTraceJson() to @p path; fatal() on I/O failure. */
void writeChromeTrace(const std::string &path,
                      const std::vector<TraceSpan> &spans,
                      const std::string &process_name);

} // namespace rlr::obs

#endif // RLR_OBS_CHROME_TRACE_HH
