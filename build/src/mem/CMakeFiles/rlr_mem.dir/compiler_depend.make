# Empty compiler generated dependencies file for rlr_mem.
# This may be replaced when dependencies are built.
