
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policies/belady.cc" "src/policies/CMakeFiles/rlr_policies.dir/belady.cc.o" "gcc" "src/policies/CMakeFiles/rlr_policies.dir/belady.cc.o.d"
  "/root/repo/src/policies/eva.cc" "src/policies/CMakeFiles/rlr_policies.dir/eva.cc.o" "gcc" "src/policies/CMakeFiles/rlr_policies.dir/eva.cc.o.d"
  "/root/repo/src/policies/glider.cc" "src/policies/CMakeFiles/rlr_policies.dir/glider.cc.o" "gcc" "src/policies/CMakeFiles/rlr_policies.dir/glider.cc.o.d"
  "/root/repo/src/policies/hawkeye.cc" "src/policies/CMakeFiles/rlr_policies.dir/hawkeye.cc.o" "gcc" "src/policies/CMakeFiles/rlr_policies.dir/hawkeye.cc.o.d"
  "/root/repo/src/policies/kpc_r.cc" "src/policies/CMakeFiles/rlr_policies.dir/kpc_r.cc.o" "gcc" "src/policies/CMakeFiles/rlr_policies.dir/kpc_r.cc.o.d"
  "/root/repo/src/policies/lru.cc" "src/policies/CMakeFiles/rlr_policies.dir/lru.cc.o" "gcc" "src/policies/CMakeFiles/rlr_policies.dir/lru.cc.o.d"
  "/root/repo/src/policies/mpppb.cc" "src/policies/CMakeFiles/rlr_policies.dir/mpppb.cc.o" "gcc" "src/policies/CMakeFiles/rlr_policies.dir/mpppb.cc.o.d"
  "/root/repo/src/policies/pdp.cc" "src/policies/CMakeFiles/rlr_policies.dir/pdp.cc.o" "gcc" "src/policies/CMakeFiles/rlr_policies.dir/pdp.cc.o.d"
  "/root/repo/src/policies/random.cc" "src/policies/CMakeFiles/rlr_policies.dir/random.cc.o" "gcc" "src/policies/CMakeFiles/rlr_policies.dir/random.cc.o.d"
  "/root/repo/src/policies/rrip.cc" "src/policies/CMakeFiles/rlr_policies.dir/rrip.cc.o" "gcc" "src/policies/CMakeFiles/rlr_policies.dir/rrip.cc.o.d"
  "/root/repo/src/policies/ship.cc" "src/policies/CMakeFiles/rlr_policies.dir/ship.cc.o" "gcc" "src/policies/CMakeFiles/rlr_policies.dir/ship.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rlr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/rlr_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rlr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rlr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
