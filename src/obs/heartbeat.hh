/**
 * @file
 * Sweep heartbeat: a small machine-readable JSON file rewritten
 * atomically every period while a sweep runs, so external tools
 * (`inspect --top`, the future distributed-sweep controller) can
 * see liveness without attaching to the process
 * (docs/OBSERVABILITY.md).
 *
 * Contents: cells done/running/failed, per-worker current cell and
 * its age, throughput, ETA, and current/peak RSS. Writes go
 * through util::atomicWriteFile (tmp + fsync + rename), so a
 * reader never observes a torn file — it either sees the previous
 * complete heartbeat or the next one.
 */

#ifndef RLR_OBS_HEARTBEAT_HH
#define RLR_OBS_HEARTBEAT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rlr::obs
{

/** One worker's live status inside a heartbeat. */
struct HeartbeatWorker
{
    uint32_t worker = 0;
    /** "<workload>:<policy>" currently running; "" when idle. */
    std::string cell;
    uint32_t attempt = 0;
    /** Seconds the current cell has been running. */
    double age_s = 0.0;
};

/** Parsed heartbeat-file contents. */
struct Heartbeat
{
    /** Monotonically increasing write sequence number. */
    uint64_t sequence = 0;
    /** Seconds since the sweep started. */
    double elapsed_s = 0.0;
    uint64_t cells_total = 0;
    uint64_t cells_done = 0;
    uint64_t cells_failed = 0;
    uint64_t cells_resumed = 0;
    uint64_t cells_running = 0;
    /** Completed cells per second (0 until the first finishes). */
    double throughput = 0.0;
    /** Estimated seconds to completion (0 when unknown/done). */
    double eta_s = 0.0;
    uint64_t rss_kb = 0;
    uint64_t max_rss_kb = 0;
    /** True once the sweep has finished (final heartbeat). */
    bool done = false;
    std::vector<HeartbeatWorker> workers;
};

/** Serialize as JSON ("format": "rlr-heartbeat", "eor": 1). */
std::string heartbeatToJson(const Heartbeat &hb);

/**
 * Parse heartbeatToJson() output, validating the format tag and
 * the eor (end-of-record) marker against truncation.
 * @throws std::runtime_error on malformed input
 */
Heartbeat heartbeatFromJson(const std::string &text);

/**
 * Background heartbeat publisher for one sweep. Workers report
 * cellStarted()/cellFinished(); a dedicated thread rewrites
 * @p path atomically every @p period_s until finish().
 */
class HeartbeatWriter
{
  public:
    HeartbeatWriter(std::string path, double period_s,
                    uint64_t cells_total, uint64_t cells_resumed);
    /** Joins the writer thread; writes a final done=true beat. */
    ~HeartbeatWriter();

    HeartbeatWriter(const HeartbeatWriter &) = delete;
    HeartbeatWriter &operator=(const HeartbeatWriter &) = delete;

    /** The calling worker thread begins @p cell ("w:p"). */
    void cellStarted(const std::string &cell, uint32_t attempt);
    /** The calling worker thread finished its current cell. */
    void cellFinished(bool ok);

    /** Write the final heartbeat (done=true) and stop the writer
     *  thread. Idempotent; also called by the destructor. */
    void finish();

    /** Build the current heartbeat (also used by the writer). */
    Heartbeat snapshot() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace rlr::obs

#endif // RLR_OBS_HEARTBEAT_HH
