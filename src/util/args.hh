/**
 * @file
 * Minimal command-line argument parser for the bench/example
 * binaries. Supports `--name value`, `--name=value`, and boolean
 * flags; prints a generated usage string on `--help`.
 */

#ifndef RLR_UTIL_ARGS_HH
#define RLR_UTIL_ARGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rlr::util
{

/** Declarative argument registry + parser. */
class ArgParser
{
  public:
    /** @param description one-line program description for --help */
    explicit ArgParser(std::string description);

    /** Register an option with a default value and help text. */
    void addOption(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Register a boolean flag (defaults to false). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv. On `--help` prints usage and returns false;
     * on unknown options calls fatal().
     */
    bool parse(int argc, const char *const *argv);

    std::string get(const std::string &name) const;
    int64_t getInt(const std::string &name) const;
    uint64_t getUint(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    /** Comma-separated list option split into entries. */
    std::vector<std::string> getList(const std::string &name) const;

    /**
     * The argv this parser was fed, verbatim (argv[0] included).
     * The distributed-sweep supervisor re-execs itself with this
     * plus per-worker overrides.
     */
    const std::vector<std::string> &rawArgs() const
    {
        return raw_args_;
    }

    /** @return the generated usage text. */
    std::string usage() const;

  private:
    struct Option
    {
        std::string def;
        std::string help;
        bool is_flag;
    };

    std::string description_;
    std::map<std::string, Option> options_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> raw_args_;
    std::string program_ = "prog";
};

} // namespace rlr::util

#endif // RLR_UTIL_ARGS_HH
