/**
 * @file
 * SweepRunner — the fault-isolated, observable, crash-safe
 * parallel experiment engine behind every (workload x policy)
 * sweep.
 *
 * Each cell runs in isolation on a worker thread with a seed
 * derived deterministically from the master seed and the cell's
 * workload label (never from scheduling order, so serial and
 * parallel sweeps agree bit-for-bit, and every policy sees the
 * same access stream for a given workload). A throwing cell is
 * captured as a per-cell error string instead of tearing down the
 * sweep: the remaining cells still run, and callers decide how to
 * surface the failure (error table, JSON export, exit status).
 *
 * Robustness (docs/ROBUSTNESS.md):
 *  - a durable journal (SweepOptions::journal_dir) records each
 *    completed cell with an atomic write; restarting the same
 *    sweep skips journaled cells, and under stable_telemetry the
 *    resumed JSON export is byte-identical to an uninterrupted
 *    run's;
 *  - a watchdog (SweepOptions::cell_timeout_s) cancels attempts
 *    that exceed their deadline via the cooperative CancelToken
 *    threaded through the core run loops;
 *  - retryable failures (watchdog timeouts, injected transient
 *    faults) are re-run up to SweepOptions::cell_retries times
 *    with decorrelated-jitter backoff;
 *  - SIGINT/SIGTERM (SweepOptions::handle_signals) trigger a
 *    graceful drain: in-flight cells are cancelled, finished
 *    cells stay journaled, and the partial JSON export is still
 *    written;
 *  - a FaultPlan (SweepOptions::faults) injects throw / hang /
 *    abort / corrupt-journal / transient faults per cell for
 *    testing all of the above.
 *
 * Observability:
 *  - per-cell wall-clock runtime and simulated-instruction
 *    throughput (MIPS) recorded on every SweepCell, plus attempt
 *    counts and cumulative retry backoff;
 *  - sweep-level robustness counters (sweep.retries,
 *    sweep.timeouts, sweep.resumed_cells, ...) via stats();
 *  - an optional live progress line (cells done / total, ETA) on
 *    stderr, gated behind SweepOptions::progress;
 *  - an optional machine-readable JSON export of every cell
 *    (workload, policy, seed, hit rate, MPKI, IPC, runtime,
 *    attempts, error) via SweepOptions::json_path or writeJson().
 */

#ifndef RLR_SIM_SWEEP_RUNNER_HH
#define RLR_SIM_SWEEP_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/fault_plan.hh"
#include "sim/lease.hh"
#include "stats/stats.hh"
#include "util/table.hh"

namespace rlr::obs
{
struct TraceSpan;
} // namespace rlr::obs

namespace rlr::sim
{

/** Execution/observability knobs of one sweep. */
struct SweepOptions
{
    /** Worker threads (1 = serial, still fault-isolated). */
    size_t threads = 1;
    /** Emit a live progress line (done/total, ETA) on stderr. */
    bool progress = false;
    /** When non-empty, write a JSON export here after the run. */
    std::string json_path;
    /**
     * Zero the wall-clock telemetry (runtime_s, mips,
     * retry_wait_s) on every cell so exports are byte-identical
     * across runs of the same seed (reproducibility checks,
     * golden files).
     */
    bool stable_telemetry = false;

    /**
     * When non-empty, journal each completed cell into this
     * directory and resume from it on restart (sim/journal.hh).
     */
    std::string journal_dir;
    /** Watchdog deadline per cell attempt in seconds; 0 = off. */
    double cell_timeout_s = 0.0;
    /** Retries per cell for retryable failures (timeouts,
     *  RetryableError). 0 = fail on first error. */
    uint32_t cell_retries = 0;
    /** Decorrelated-jitter backoff: base and cap in seconds. */
    double retry_base_s = 0.05;
    double retry_cap_s = 2.0;
    /** Install SIGINT/SIGTERM graceful-drain handlers while the
     *  sweep runs (finish/cancel in-flight cells, flush journal
     *  and partial JSON, leave the process to exit nonzero). */
    bool handle_signals = false;
    /** Fault injection plan (tests, crash/resume harness). */
    FaultPlan faults;

    /**
     * When non-empty, publish a liveness heartbeat file here
     * (obs/heartbeat.hh; atomic rewrite every heartbeat_period_s)
     * for `inspect --top` and external monitors.
     */
    std::string heartbeat_path;
    double heartbeat_period_s = 0.5;

    /**
     * Distributed execution (sim/lease.hh): when enabled, cells
     * are claimed through lease files in the journal directory
     * instead of statically partitioned, so N worker processes
     * sharing one journal cooperatively execute the sweep and a
     * killed worker's cells are re-issued to survivors. Requires
     * journal_dir.
     */
    DistOptions dist;
};

/** Fault-isolated parallel (workload x policy) experiment engine. */
class SweepRunner
{
  public:
    /** One unit of work: a policy over one or more core workloads. */
    struct CellSpec
    {
        /** Display label (the workload name, or a mix label). */
        std::string workload;
        std::string policy;
        /** Workloads, one per simulated core. */
        std::vector<std::string> cores;
    };

    /** Cell body; replaceable for tests (fault injection). */
    using CellFn =
        std::function<RunResult(const CellSpec &, const SimParams &)>;

    SweepRunner(SimParams params, SweepOptions opts = {});

    /** Replace the default runWorkloads() cell body (tests). */
    void setCellFn(CellFn fn) { cell_fn_ = std::move(fn); }

    /** Run the full (workloads x policies) cross product. */
    std::vector<SweepCell>
    run(const std::vector<std::string> &workloads,
        const std::vector<std::string> &policies);

    /** Run an explicit cell list (multicore mixes, custom grids). */
    std::vector<SweepCell> runCells(std::vector<CellSpec> specs);

    /**
     * Seed for a cell: mixes @p master_seed with the workload
     * label only, so a workload's access stream is identical
     * under every policy and independent of cell order.
     */
    static uint64_t cellSeed(uint64_t master_seed,
                             const std::string &workload);

    /**
     * Robustness counters of the last runCells() call:
     * sweep.completed_cells, sweep.resumed_cells, sweep.retries,
     * sweep.timeouts, sweep.failed_cells, sweep.cancelled_cells,
     * and in journaled/distributed runs sweep.reaped_markers,
     * sweep.merged_cells, sweep.lease_steals,
     * sweep.fenced_commits.
     */
    const stats::StatSet &stats() const { return sweep_stats_; }

    /**
     * @return true when a SIGINT/SIGTERM drain interrupted the
     * last handle_signals sweep in this process (callers should
     * exit nonzero).
     */
    static bool interrupted();

    /** @return true when any cell recorded an error. */
    static bool anyFailed(const std::vector<SweepCell> &cells);

    /** Table of the failed cells (Workload | Policy | Error). */
    static util::Table errorTable(const std::vector<SweepCell> &cells);

    /** JSON array of every cell's result and telemetry. */
    static std::string toJson(const std::vector<SweepCell> &cells);

    /** Atomically write toJson(cells) to @p path; fatal() on I/O
     *  failure. */
    static void writeJson(const std::string &path,
                          const std::vector<SweepCell> &cells);

    /**
     * Chrome trace_event JSON of the sweep schedule: one complete
     * ("X") slice per cell (named "workload/policy", packed into
     * lanes, with seed/MIPS/error args), loadable in
     * chrome://tracing and Perfetto. Under stable_telemetry the
     * cells carry zero timestamps, so the export is byte-identical
     * across same-seed runs.
     */
    static std::string
    chromeTraceJson(const std::vector<SweepCell> &cells);

    /**
     * The schedule slices of chromeTraceJson() before lane
     * packing, so callers can merge in other span sources (the
     * profiler's timeline) before serializing.
     */
    static std::vector<obs::TraceSpan>
    cellTraceSpans(const std::vector<SweepCell> &cells);

    /** Atomically write chromeTraceJson(cells) to @p path. */
    static void writeChromeTrace(const std::string &path,
                                 const std::vector<SweepCell> &cells);

  private:
    SimParams params_;
    SweepOptions opts_;
    CellFn cell_fn_;
    stats::StatSet sweep_stats_{"sweep"};
};

} // namespace rlr::sim

#endif // RLR_SIM_SWEEP_RUNNER_HH
