/**
 * @file
 * Crash-safe file writes: every artifact the harness exports
 * (sweep JSON, events, Chrome traces, reports, journal records)
 * goes to disk via write-to-temp + fsync + rename, so a killed
 * process never leaves a truncated or half-written file at the
 * destination path — readers see either the old content or the
 * complete new content, never a torn state.
 */

#ifndef RLR_UTIL_ATOMIC_FILE_HH
#define RLR_UTIL_ATOMIC_FILE_HH

#include <string>
#include <string_view>

namespace rlr::util
{

/**
 * Durably replace @p path with @p data: write to a sibling temp
 * file, fsync it, rename over @p path, then fsync the directory.
 * @param tag optional extra token embedded in the temp-file name.
 *        Distributed writers pass their fencing token here so temp
 *        names stay distinct across fencing rounds even when pids
 *        are reused across worker generations.
 * @throws std::runtime_error on any I/O failure (the temp file is
 *         removed best-effort).
 */
void atomicWriteFile(const std::string &path,
                     std::string_view data,
                     std::string_view tag = {});

/** atomicWriteFile that fatal()s on failure (CLI write paths). */
void atomicWriteFileOrFatal(const std::string &path,
                            std::string_view data);

} // namespace rlr::util

#endif // RLR_UTIL_ATOMIC_FILE_HH
