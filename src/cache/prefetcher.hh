/**
 * @file
 * Prefetcher interface. A prefetcher observes demand accesses to
 * its cache and proposes line addresses to prefetch; the cache
 * issues them as AccessType::Prefetch requests.
 */

#ifndef RLR_CACHE_PREFETCHER_HH
#define RLR_CACHE_PREFETCHER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/geometry.hh"
#include "stats/registry.hh"
#include "trace/record.hh"

namespace rlr::cache
{

/** One proposed prefetch. */
struct PrefetchRequest
{
    uint64_t address = 0;
    /**
     * Confidence in [0, 1]; confidence-aware consumers (KPC-style
     * policies, fill-level decisions) may use it, others ignore it.
     */
    double confidence = 1.0;
};

/** Abstract hardware prefetcher attached to one cache level. */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /** Size internal state; called once at attach time. */
    virtual void bind(const CacheGeometry &geom) = 0;

    /**
     * Observe a demand access (loads/RFOs only; prefetch and
     * writeback traffic is not fed back).
     * @param pc triggering instruction
     * @param address full byte address
     * @param hit whether the access hit
     * @param out proposed prefetches (appended)
     */
    virtual void observe(uint64_t pc, uint64_t address, bool hit,
                         std::vector<PrefetchRequest> &out) = 0;

    virtual std::string name() const = 0;

    /**
     * Mount prefetcher statistics under @p prefix. The base
     * implementation exposes the proposal count; subclasses add
     * their own entries on top (call the base first).
     */
    virtual void
    describeStats(stats::Registry &reg, const std::string &prefix)
    {
        reg.bindCounter(
            prefix + ".proposals", [this] { return proposals_; },
            "prefetch lines proposed by " + name());
    }

  protected:
    /** Lines proposed via observe() (pre-dedup, pre-issue). */
    uint64_t proposals_ = 0;
};

} // namespace rlr::cache

#endif // RLR_CACHE_PREFETCHER_HH
