/**
 * @file
 * Regenerates Figure 4: distribution of |preuse - reuse| distance
 * over reused LLC lines, per benchmark, in the buckets <10,
 * 10-50, >50 set accesses. The paper's takeaway: for most reused
 * lines preuse approximates reuse distance well, justifying RLR's
 * RD predictor.
 */

#include "bench/common.hh"
#include "ml/offline.hh"
#include "policies/lru.hh"

using namespace rlr;

int
main(int argc, char **argv)
{
    auto parser = bench::makeParser(
        "Figure 4: |preuse - reuse| distribution over reused lines");
    if (!parser.parse(argc, argv))
        return 0;
    auto opt = bench::makeOptions(parser);

    auto workloads = opt.workloads;
    if (workloads.empty())
        workloads = bench::trainingNames();

    util::Table table({"Benchmark", "<10 (%)", "10-50 (%)",
                       ">50 (%)", "reused lines"});
    std::vector<std::vector<std::string>> rows(workloads.size());

    util::ThreadPool::parallelFor(
        workloads.size(), opt.threads, [&](size_t i) {
            sim::SimParams p = opt.params;
            p.sim_instructions = opt.rl_instructions;
            const auto trace =
                sim::captureLlcTrace(workloads[i], p);
            if (trace.empty())
                return;
            ml::OfflineSimulator osim(ml::OfflineConfig{}, &trace);
            policies::LruPolicy lru;
            osim.runPolicy(lru);
            const auto &fs = osim.featureStats();
            const double total = static_cast<double>(
                fs.preuse_reuse_lt10 + fs.preuse_reuse_10to50 +
                fs.preuse_reuse_gt50);
            auto pct = [&](uint64_t v) {
                return util::Table::fmt(
                    total > 0 ? 100.0 * static_cast<double>(v) /
                                    total
                              : 0.0,
                    1);
            };
            rows[i] = {workloads[i], pct(fs.preuse_reuse_lt10),
                       pct(fs.preuse_reuse_10to50),
                       pct(fs.preuse_reuse_gt50),
                       std::to_string(static_cast<uint64_t>(
                           total))};
        });

    for (auto &row : rows)
        if (!row.empty())
            table.addRow(row);

    std::puts("=== Figure 4: |preuse - reuse| buckets over reused "
              "LLC lines ===");
    bench::emit(opt, table);
    std::puts("\nPaper's shape: a large fraction of reused lines "
              "fall in the <10 bucket, and >50% within <=50.");
    return 0;
}
