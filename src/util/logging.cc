#include "util/logging.hh"

#include <atomic>
#include <mutex>

namespace rlr::util
{

namespace
{

std::atomic<bool> quiet{false};

/** Serializes every stderr write (messages and status line), so
 *  concurrent workers never interleave mid-line. */
std::mutex io_mutex;

/** The sticky progress line currently on screen ("" = none).
 *  Guarded by io_mutex. */
std::string status_line;

void
eraseStatusLocked()
{
    if (!status_line.empty())
        std::cerr << "\r\033[K";
}

void
paintStatusLocked()
{
    if (!status_line.empty())
        std::cerr << status_line << std::flush;
}

void
defaultHook(LogLevel level, std::string_view msg)
{
    std::scoped_lock lock(io_mutex);
    eraseStatusLocked();
    switch (level) {
      case LogLevel::Info:
        if (!quiet.load(std::memory_order_relaxed))
            std::cerr << "info: " << msg << '\n';
        break;
      case LogLevel::Warn:
        if (!quiet.load(std::memory_order_relaxed))
            std::cerr << "warn: " << msg << '\n';
        break;
      case LogLevel::Fatal:
        std::cerr << "fatal: " << msg << '\n';
        break;
      case LogLevel::Panic:
        std::cerr << "panic: " << msg << '\n';
        break;
    }
    paintStatusLocked();
}

std::atomic<LogHook> current_hook{&defaultHook};

} // namespace

LogHook
setLogHook(LogHook hook)
{
    return current_hook.exchange(hook ? hook : &defaultHook);
}

void
logMessage(LogLevel level, std::string_view msg)
{
    current_hook.load()(level, msg);
}

void
setLogQuiet(bool q)
{
    quiet.store(q, std::memory_order_relaxed);
}

bool
logQuiet()
{
    return quiet.load(std::memory_order_relaxed);
}

void
setStatusLine(std::string line)
{
    std::scoped_lock lock(io_mutex);
    eraseStatusLocked();
    status_line = std::move(line);
    paintStatusLocked();
}

void
clearStatusLine()
{
    std::scoped_lock lock(io_mutex);
    eraseStatusLocked();
    status_line.clear();
}

void
finishStatusLine()
{
    std::scoped_lock lock(io_mutex);
    if (status_line.empty())
        return;
    std::cerr << '\n';
    status_line.clear();
}

} // namespace rlr::util
