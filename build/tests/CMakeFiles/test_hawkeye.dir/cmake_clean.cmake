file(REMOVE_RECURSE
  "CMakeFiles/test_hawkeye.dir/test_hawkeye.cc.o"
  "CMakeFiles/test_hawkeye.dir/test_hawkeye.cc.o.d"
  "test_hawkeye"
  "test_hawkeye.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hawkeye.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
