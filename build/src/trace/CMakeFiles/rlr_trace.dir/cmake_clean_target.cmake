file(REMOVE_RECURSE
  "librlr_trace.a"
)
