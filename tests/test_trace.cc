/** @file Tests for trace records, file I/O, and workload catalog. */

#include <gtest/gtest.h>

#include <cstdio>

#include "trace/record.hh"
#include "trace/trace_io.hh"
#include "trace/workloads.hh"

using namespace rlr::trace;

TEST(Record, AccessTypeNames)
{
    EXPECT_EQ(accessTypeName(AccessType::Load), "LD");
    EXPECT_EQ(accessTypeName(AccessType::Rfo), "RFO");
    EXPECT_EQ(accessTypeName(AccessType::Prefetch), "PF");
    EXPECT_EQ(accessTypeName(AccessType::Writeback), "WB");
}

TEST(Record, IsDemand)
{
    EXPECT_TRUE(isDemand(AccessType::Load));
    EXPECT_TRUE(isDemand(AccessType::Rfo));
    EXPECT_FALSE(isDemand(AccessType::Prefetch));
    EXPECT_FALSE(isDemand(AccessType::Writeback));
}

TEST(LlcTraceTest, CountsAndDistinct)
{
    LlcTrace trace;
    trace.append({0x400, 0x1000, AccessType::Load, 0});
    trace.append({0x404, 0x1040, AccessType::Load, 0});
    trace.append({0x408, 0x1000, AccessType::Prefetch, 0});
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.countType(AccessType::Load), 2u);
    EXPECT_EQ(trace.countType(AccessType::Prefetch), 1u);
    EXPECT_EQ(trace.distinctLines(), 2u);
}

TEST(LlcTraceTest, SaveLoadRoundTrip)
{
    LlcTrace trace;
    for (uint64_t i = 0; i < 100; ++i) {
        trace.append({0x400 + i, 0x10000 + 64 * i,
                      static_cast<AccessType>(i % 4),
                      static_cast<uint8_t>(i % 4)});
    }
    const std::string path = ::testing::TempDir() + "trace.bin";
    trace.save(path);
    const LlcTrace loaded = LlcTrace::load(path);
    ASSERT_EQ(loaded.size(), trace.size());
    for (size_t i = 0; i < trace.size(); ++i)
        EXPECT_TRUE(loaded[i] == trace[i]) << "record " << i;
    std::remove(path.c_str());
}

TEST(Workloads, CatalogSizes)
{
    EXPECT_EQ(specWorkloads().size(), 29u);
    EXPECT_EQ(cloudWorkloads().size(), 5u);
    EXPECT_EQ(allWorkloads().size(), 34u);
    EXPECT_EQ(trainingWorkloads().size(), 8u);
}

TEST(Workloads, NamesUnique)
{
    std::set<std::string> names;
    for (const auto &w : allWorkloads())
        EXPECT_TRUE(names.insert(w.name).second)
            << "duplicate " << w.name;
}

TEST(Workloads, FindKnown)
{
    const auto w = findWorkload("429.mcf");
    EXPECT_EQ(w.name, "429.mcf");
    EXPECT_EQ(w.suite, "spec2006");
    EXPECT_FALSE(w.kernels.empty());
}

TEST(Workloads, TrainingSetMatchesPaper)
{
    // Figure 3's benchmarks.
    std::set<std::string> names;
    for (const auto &w : trainingWorkloads())
        names.insert(w.name);
    for (const char *expected :
         {"459.GemsFDTD", "403.gcc", "429.mcf", "450.soplex",
          "470.lbm", "437.leslie3d", "471.omnetpp",
          "483.xalancbmk"}) {
        EXPECT_TRUE(names.count(expected)) << expected;
    }
}

TEST(Workloads, ProfilesAreSane)
{
    for (const auto &w : allWorkloads()) {
        EXPECT_GT(w.mem_ratio, 0.0) << w.name;
        EXPECT_LT(w.mem_ratio + w.branch_ratio, 1.0) << w.name;
        EXPECT_GT(w.code_footprint, 0u) << w.name;
        EXPECT_FALSE(w.kernels.empty()) << w.name;
        for (const auto &k : w.kernels) {
            EXPECT_GT(k.working_set, 0u) << w.name;
            EXPECT_GT(k.weight, 0.0) << w.name;
        }
    }
}

TEST(VectorSource, ReplayAndReset)
{
    Instruction a;
    a.pc = 0x10;
    Instruction b;
    b.pc = 0x14;
    VectorInstructionSource src("test", {a, b});
    Instruction out;
    ASSERT_TRUE(src.next(out));
    EXPECT_EQ(out.pc, 0x10u);
    ASSERT_TRUE(src.next(out));
    EXPECT_EQ(out.pc, 0x14u);
    EXPECT_FALSE(src.next(out));
    src.reset();
    ASSERT_TRUE(src.next(out));
    EXPECT_EQ(out.pc, 0x10u);
}
