/**
 * @file
 * The paper's model-analysis pipeline (Section III-B): agent
 * training helpers, first-layer weight saliency per feature group
 * (the Figure 3 heat map), and hill-climbing feature selection.
 */

#ifndef RLR_ML_ANALYSIS_HH
#define RLR_ML_ANALYSIS_HH

#include <memory>
#include <string>
#include <vector>

#include "ml/agent.hh"
#include "ml/features.hh"
#include "ml/offline.hh"

namespace rlr::ml
{

/** Result of training an agent on one trace. */
struct TrainResult
{
    std::unique_ptr<DqnAgent> agent;
    /** Demand hit rate after each training epoch. */
    std::vector<double> epoch_hit_rates;
    /** Greedy-evaluation stats after training. */
    OfflineStats eval;
};

/**
 * Train a fresh agent on @p sim's trace for @p epochs epochs, then
 * evaluate greedily.
 */
TrainResult trainAgent(OfflineSimulator &sim, AgentConfig config,
                       unsigned epochs);

/**
 * Mean absolute first-layer weight per feature group (per-line
 * groups also average across ways) — one heat-map column.
 */
std::vector<double> groupSaliency(const Mlp &mlp,
                                  const FeatureExtractor &extractor);

/**
 * Render the Figure 3 heat map: rows = feature groups, columns =
 * benchmarks, shading = saliency normalized per column.
 */
std::string
renderHeatMap(const std::vector<std::string> &benchmarks,
              const std::vector<std::vector<double>> &columns);

/** Hill-climbing feature selection outcome. */
struct HillClimbResult
{
    /** Selected groups in the order they were added. */
    std::vector<FeatureGroup> selected;
    /** Demand hit rate after each addition. */
    std::vector<double> hit_rates;
};

/**
 * Greedy forward feature selection (Section III-B): starting from
 * the empty set, repeatedly add the candidate group that maximizes
 * the trained agent's demand hit rate, stopping when no candidate
 * improves it.
 *
 * @param candidates groups to consider
 * @param epochs training epochs per evaluation
 * @param max_rounds bound on selected features
 */
HillClimbResult
hillClimb(OfflineSimulator &sim, AgentConfig config,
          const std::vector<FeatureGroup> &candidates,
          unsigned epochs, unsigned max_rounds);

} // namespace rlr::ml

#endif // RLR_ML_ANALYSIS_HH
