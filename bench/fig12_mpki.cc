/**
 * @file
 * Regenerates Figure 12: LLC demand MPKI per policy for the
 * benchmarks with MPKI > 3 (the memory-sensitive subset).
 */

#include "bench/common.hh"
#include "core/policy_factory.hh"

using namespace rlr;

int
main(int argc, char **argv)
{
    auto parser = bench::makeParser(
        "Figure 12: demand MPKI comparison (MPKI > 3 benchmarks)");
    if (!parser.parse(argc, argv))
        return 0;
    auto opt = bench::makeOptions(parser);

    auto workloads = opt.workloads;
    if (workloads.empty())
        workloads = bench::specNames();
    auto policies = opt.policies;
    if (policies.empty())
        policies = core::paperPolicies();

    std::vector<std::string> all_policies = {"LRU"};
    all_policies.insert(all_policies.end(), policies.begin(),
                        policies.end());
    const auto cells =
        bench::runSweep(opt, workloads, all_policies);

    std::vector<std::string> header = {"Benchmark", "LRU"};
    for (const auto &p : policies)
        header.push_back(p);
    util::Table table(header);

    for (const auto &w : workloads) {
        const auto &base = sim::findCell(cells, w, "LRU");
        const double base_mpki = base.result.llcDemandMpki();
        if (base_mpki <= 3.0)
            continue; // the paper only plots MPKI > 3
        std::vector<std::string> row = {
            w, util::Table::fmt(base_mpki, 2)};
        for (const auto &p : policies) {
            row.push_back(util::Table::fmt(
                sim::findCell(cells, w, p).result.llcDemandMpki(),
                2));
        }
        table.addRow(row);
    }

    std::puts("=== Figure 12: LLC demand MPKI (benchmarks with "
              "LRU MPKI > 3) ===");
    bench::emit(opt, table);
    std::puts("\nPaper's shape: RLR reduces MPKI vs DRRIP on the "
              "irregular-reuse benchmarks (up to 52% on "
              "471.omnetpp, min 2.5% on 429.mcf).");
    return bench::finish(opt);
}
