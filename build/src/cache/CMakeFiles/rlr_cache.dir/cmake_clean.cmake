file(REMOVE_RECURSE
  "CMakeFiles/rlr_cache.dir/cache.cc.o"
  "CMakeFiles/rlr_cache.dir/cache.cc.o.d"
  "librlr_cache.a"
  "librlr_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlr_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
