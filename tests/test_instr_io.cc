/** @file Tests for instruction-trace file I/O. */

#include <gtest/gtest.h>

#include <cstdio>

#include "cpu/core.hh"
#include "trace/instr_io.hh"
#include "trace/workloads.hh"

using namespace rlr;
using namespace rlr::trace;

namespace
{

std::vector<Instruction>
sampleInstructions(size_t n)
{
    auto gen = makeGenerator("403.gcc", 11);
    std::vector<Instruction> out(n);
    for (auto &i : out)
        gen->next(i);
    return out;
}

} // namespace

TEST(InstrIo, SaveLoadRoundTrip)
{
    const auto original = sampleInstructions(500);
    const std::string path = ::testing::TempDir() + "itrace.bin";
    saveInstructionTrace(path, original);
    const auto loaded = loadInstructionTrace(path);
    ASSERT_EQ(loaded.size(), original.size());
    for (size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i].pc, original[i].pc) << i;
        EXPECT_EQ(loaded[i].mem_addr, original[i].mem_addr) << i;
        EXPECT_EQ(static_cast<int>(loaded[i].kind),
                  static_cast<int>(original[i].kind))
            << i;
        EXPECT_EQ(loaded[i].branch_taken, original[i].branch_taken)
            << i;
        EXPECT_EQ(loaded[i].dest_reg, original[i].dest_reg) << i;
        EXPECT_EQ(loaded[i].src_regs[0], original[i].src_regs[0])
            << i;
    }
    std::remove(path.c_str());
}

TEST(InstrIo, CaptureFromGenerator)
{
    const std::string path = ::testing::TempDir() + "capture.bin";
    auto gen = makeGenerator("445.gobmk", 3);
    captureInstructionTrace(path, *gen, 1000);
    FileInstructionSource src(path);
    EXPECT_EQ(src.size(), 1000u);
    Instruction instr;
    size_t n = 0;
    while (src.next(instr))
        ++n;
    EXPECT_EQ(n, 1000u);
    std::remove(path.c_str());
}

TEST(InstrIo, FileSourceResetRewinds)
{
    const auto original = sampleInstructions(50);
    const std::string path = ::testing::TempDir() + "rewind.bin";
    saveInstructionTrace(path, original);

    FileInstructionSource src(path);
    Instruction a, b;
    ASSERT_TRUE(src.next(a));
    src.reset();
    ASSERT_TRUE(src.next(b));
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.mem_addr, b.mem_addr);
    std::remove(path.c_str());
}

TEST(InstrIo, FileSourceDrivesCore)
{
    // A captured trace replays identically through the core: same
    // instruction count, same deterministic cycle count as the
    // in-memory replay.
    const auto original = sampleInstructions(2000);
    const std::string path = ::testing::TempDir() + "drive.bin";
    saveInstructionTrace(path, original);

    class FixedMem : public cache::MemoryLevel
    {
      public:
        uint64_t
        access(const cache::MemRequest &, uint64_t now) override
        {
            return now + 20;
        }
        const std::string &name() const override { return n_; }

      private:
        std::string n_ = "m";
    };

    FixedMem mem;
    cpu::O3Core from_file({}, 0, &mem, &mem);
    FileInstructionSource src(path);
    from_file.run(src, 2000);

    cpu::O3Core from_vec({}, 0, &mem, &mem);
    VectorInstructionSource vec("v", original);
    from_vec.run(vec, 2000);

    EXPECT_EQ(from_file.cycles(), from_vec.cycles());
    std::remove(path.c_str());
}

TEST(InstrIo, NameIncludesPath)
{
    const auto original = sampleInstructions(2);
    const std::string path = ::testing::TempDir() + "name.bin";
    saveInstructionTrace(path, original);
    FileInstructionSource src(path);
    EXPECT_NE(src.name().find("name.bin"), std::string::npos);
    std::remove(path.c_str());
}
