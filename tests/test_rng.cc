/** @file Unit and property tests for util/rng.hh. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/rng.hh"

using namespace rlr::util;

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng rng(7);
    for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(3);
    std::vector<int> v(50);
    for (int i = 0; i < 50; ++i)
        v[i] = i;
    rng.shuffle(v);
    std::vector<int> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ForkIndependence)
{
    Rng a(9);
    Rng child = a.fork();
    // The fork and the parent should not produce the same stream.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == child.next();
    EXPECT_LT(same, 4);
}

/** Zipf rank-0 frequency grows with alpha (skew property). */
class ZipfAlphaTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfAlphaTest, HeadProbabilityMatchesTheory)
{
    const double alpha = GetParam();
    const uint64_t n = 100;
    ZipfSampler zipf(n, alpha);
    Rng rng(77);
    uint64_t head = 0;
    const int samples = 20000;
    for (int i = 0; i < samples; ++i)
        head += zipf.sample(rng) == 0;

    double denom = 0.0;
    for (uint64_t k = 1; k <= n; ++k)
        denom += 1.0 / std::pow(static_cast<double>(k), alpha);
    const double expected = (1.0 / denom);
    EXPECT_NEAR(static_cast<double>(head) / samples, expected,
                0.02);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2));

TEST(Zipf, SamplesWithinRange)
{
    ZipfSampler zipf(10, 1.0);
    Rng rng(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(zipf.sample(rng), 10u);
}

TEST(Rng, GeometricMeanApproximation)
{
    Rng rng(21);
    const double p = 0.25;
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(p));
    // E[failures before success] = (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.2);
}
