/** @file End-to-end properties across the whole library. */

#include <gtest/gtest.h>

#include "core/policy_factory.hh"
#include "ml/offline.hh"
#include "policies/belady.hh"
#include "sim/experiment.hh"
#include "tests/policy_test_util.hh"
#include "trace/workloads.hh"
#include "util/rng.hh"

using namespace rlr;

namespace
{

sim::SimParams
quick()
{
    sim::SimParams p;
    p.warmup_instructions = 30'000;
    p.sim_instructions = 120'000;
    return p;
}

} // namespace

/**
 * Every factory policy must replay a captured LLC trace in the
 * offline simulator without losing accesses, and never exceed
 * Belady's hit count.
 */
class PolicyPipelineTest
    : public ::testing::TestWithParam<std::string>
{
  protected:
    static void
    SetUpTestSuite()
    {
        trace_ = new trace::LlcTrace(
            sim::captureLlcTrace("471.omnetpp", quick()));
        sim_ = new ml::OfflineSimulator(ml::OfflineConfig{},
                                        trace_);
        policies::BeladyPolicy belady(sim_->oracle());
        belady_hits_ = sim_->runPolicy(belady).hits;
    }

    static void
    TearDownTestSuite()
    {
        delete sim_;
        delete trace_;
        sim_ = nullptr;
        trace_ = nullptr;
    }

    static trace::LlcTrace *trace_;
    static ml::OfflineSimulator *sim_;
    static uint64_t belady_hits_;
};

trace::LlcTrace *PolicyPipelineTest::trace_ = nullptr;
ml::OfflineSimulator *PolicyPipelineTest::sim_ = nullptr;
uint64_t PolicyPipelineTest::belady_hits_ = 0;

TEST_P(PolicyPipelineTest, ReplaysTraceAndRespectsBelady)
{
    ASSERT_FALSE(trace_->empty());
    auto policy = core::makePolicy(GetParam(), 9);
    const auto stats = sim_->runPolicy(*policy);
    EXPECT_EQ(stats.accesses, trace_->size());
    EXPECT_EQ(stats.hits + stats.misses, stats.accesses);
    // MIN optimality: no online policy may beat Belady.
    EXPECT_LE(stats.hits, belady_hits_) << GetParam();
    // Victim accounting stays consistent.
    const auto &fs = sim_->featureStats();
    uint64_t victims = 0;
    for (const auto c : fs.victim_count)
        victims += c;
    EXPECT_EQ(victims, stats.evictions) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyPipelineTest,
    ::testing::ValuesIn(rlr::core::knownPolicies()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (auto &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(Integration, SweepInvariantToThreadCount)
{
    const std::vector<std::string> workloads = {"445.gobmk",
                                                "416.gamess"};
    const std::vector<std::string> policies = {"LRU", "RLR"};
    const auto serial = sim::sweep(workloads, policies, quick(), 1);
    const auto parallel =
        sim::sweep(workloads, policies, quick(), 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (const auto &w : workloads) {
        for (const auto &p : policies) {
            const auto &a = sim::findCell(serial, w, p);
            const auto &b = sim::findCell(parallel, w, p);
            EXPECT_EQ(a.result.cores[0].cycles,
                      b.result.cores[0].cycles)
                << w << "/" << p;
            EXPECT_EQ(a.result.llc_demand_hits,
                      b.result.llc_demand_hits)
                << w << "/" << p;
        }
    }
}

TEST(Integration, CapturedTraceTypesArePlausible)
{
    const auto trace =
        sim::captureLlcTrace("470.lbm", quick());
    ASSERT_FALSE(trace.empty());
    // A write-heavy streaming workload must produce all four
    // access types at the LLC.
    EXPECT_GT(trace.countType(trace::AccessType::Load), 0u);
    EXPECT_GT(trace.countType(trace::AccessType::Prefetch), 0u);
    EXPECT_GT(trace.countType(trace::AccessType::Writeback), 0u);
    EXPECT_GT(trace.countType(trace::AccessType::Rfo), 0u);
}

TEST(Integration, RlrOverheadInvariantAcrossRuns)
{
    // The Table I numbers must not depend on simulation state.
    auto policy = core::makePolicy("RLR");
    cache::CacheGeometry g;
    g.size_bytes = 2 * 1024 * 1024;
    g.ways = 16;
    policy->bind(g);
    const double before = policy->overhead().totalKiB(g);

    const auto trace =
        sim::captureLlcTrace("403.gcc", quick());
    ml::OfflineSimulator sim(ml::OfflineConfig{}, &trace);
    sim.runPolicy(*policy);
    EXPECT_DOUBLE_EQ(policy->overhead().totalKiB(g), before);
}
