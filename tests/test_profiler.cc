/**
 * @file
 * Unit tests for the scoped-span self-profiler (obs/profiler.hh):
 * tree shape and merge determinism across threads, sampling
 * scale-up, stable-JSON zeroing, JSON round-trip, and the folded-
 * stacks rendering.
 *
 * The profiler is a process-wide singleton, so every test resets
 * it on entry and disables it on exit.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/chrome_trace.hh"
#include "obs/profiler.hh"

using namespace rlr;

namespace
{

/** RAII: enabled+reset profiler for one test, off afterwards. */
struct ProfilerFixture
{
    ProfilerFixture()
    {
        obs::Profiler::instance().setEnabled(false);
        obs::Profiler::instance().reset();
        obs::Profiler::instance().setEnabled(true);
    }
    ~ProfilerFixture()
    {
        obs::Profiler::instance().setEnabled(false);
        obs::Profiler::instance().reset();
    }
};

/** Record `outer{ inner x3 }` @p reps times on this thread. */
void
recordNested(unsigned reps)
{
    for (unsigned r = 0; r < reps; ++r) {
        RLR_PROF_SCOPE("test.outer");
        for (int i = 0; i < 3; ++i) {
            RLR_PROF_SCOPE("test.inner");
        }
    }
}

const obs::ProfileNode *
findChild(const std::vector<obs::ProfileNode> &nodes,
          const std::string &name)
{
    for (const auto &n : nodes)
        if (n.name == name)
            return &n;
    return nullptr;
}

} // namespace

TEST(Profiler, TreeShapeAndCounts)
{
    ProfilerFixture fix;
    recordNested(5);
    const obs::ProfileData data =
        obs::Profiler::instance().collect();

    ASSERT_EQ(data.roots.size(), 1u);
    const obs::ProfileNode &outer = data.roots[0];
    EXPECT_EQ(outer.name, "test.outer");
    EXPECT_EQ(outer.calls, 5u);
    EXPECT_EQ(outer.recorded_calls, 5u);
    ASSERT_EQ(outer.children.size(), 1u);
    const obs::ProfileNode &inner = outer.children[0];
    EXPECT_EQ(inner.name, "test.inner");
    EXPECT_EQ(inner.calls, 15u);
    // Inclusive time nests: outer >= its only child, and self
    // accounts for the rest.
    EXPECT_GE(outer.total_ns, inner.total_ns);
    EXPECT_EQ(outer.self_ns, outer.total_ns - inner.total_ns);
    EXPECT_EQ(data.spans, 20u);
    EXPECT_EQ(data.sites, 2u);
}

TEST(Profiler, DisabledRecordsNothing)
{
    obs::Profiler::instance().setEnabled(false);
    obs::Profiler::instance().reset();
    recordNested(3);
    const obs::ProfileData data =
        obs::Profiler::instance().collect();
    EXPECT_EQ(data.spans, 0u);
    EXPECT_TRUE(data.roots.empty());
}

TEST(Profiler, SamplingScalesEstimatesUp)
{
    ProfilerFixture fix;
    constexpr unsigned kCalls = 1 << 10;
    for (unsigned i = 0; i < kCalls; ++i) {
        RLR_PROF_SCOPE_SAMPLED("test.sampled", 4);
    }
    const obs::ProfileData data =
        obs::Profiler::instance().collect();
    const obs::ProfileNode *node =
        findChild(data.roots, "test.sampled");
    ASSERT_NE(node, nullptr);
    // 1-in-16 sampling: every 16th entry is timed, the estimate
    // scales back to the true call count exactly.
    EXPECT_EQ(node->recorded_calls, kCalls / 16);
    EXPECT_EQ(node->calls, kCalls);
    EXPECT_GT(node->total_ns, 0u);
}

TEST(Profiler, SuppressedParentSuppressesChildren)
{
    ProfilerFixture fix;
    constexpr unsigned kCalls = 64;
    for (unsigned i = 0; i < kCalls; ++i) {
        RLR_PROF_SCOPE_SAMPLED("test.sampled_parent", 6);
        RLR_PROF_SCOPE("test.child");
    }
    const obs::ProfileData data =
        obs::Profiler::instance().collect();
    const obs::ProfileNode *parent =
        findChild(data.roots, "test.sampled_parent");
    ASSERT_NE(parent, nullptr);
    EXPECT_EQ(parent->recorded_calls, 1u);
    // The child was only recorded inside the one sampled-in
    // parent — never as a root — and inherits the path shift.
    EXPECT_TRUE(findChild(data.roots, "test.child") == nullptr);
    const obs::ProfileNode *child =
        findChild(parent->children, "test.child");
    ASSERT_NE(child, nullptr);
    EXPECT_EQ(child->recorded_calls, 1u);
    EXPECT_EQ(child->calls, kCalls);
}

TEST(Profiler, MultiThreadMergeIsDeterministic)
{
    ProfilerFixture fix;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([] { recordNested(7); });
    for (auto &th : threads)
        th.join();
    recordNested(2);

    const obs::ProfileData data =
        obs::Profiler::instance().collect();
    EXPECT_EQ(data.threads, 5u);
    ASSERT_EQ(data.roots.size(), 1u);
    EXPECT_EQ(data.roots[0].calls, 4u * 7u + 2u);
    EXPECT_EQ(data.roots[0].children[0].calls,
              3u * (4u * 7u + 2u));

    // The merged tree (modulo wall-clock) is stable across
    // collects: stable JSON renders byte-identically.
    const std::string a = obs::profileToJson(data, true);
    const std::string b = obs::profileToJson(
        obs::Profiler::instance().collect(), true);
    EXPECT_EQ(a, b);
}

TEST(Profiler, StableJsonZeroesTimes)
{
    ProfilerFixture fix;
    recordNested(3);
    const obs::ProfileData data =
        obs::Profiler::instance().collect();
    const std::string stable = obs::profileToJson(data, true);
    const obs::ProfileData parsed =
        obs::profileFromJson(stable);
    ASSERT_EQ(parsed.roots.size(), 1u);
    EXPECT_EQ(parsed.roots[0].calls, 3u);
    EXPECT_EQ(parsed.roots[0].total_ns, 0u);
    EXPECT_EQ(parsed.roots[0].self_ns, 0u);
    EXPECT_EQ(parsed.roots[0].p99_ns, 0u);
}

TEST(Profiler, JsonRoundTripPreservesTree)
{
    ProfilerFixture fix;
    recordNested(4);
    const obs::ProfileData data =
        obs::Profiler::instance().collect();
    const obs::ProfileData back =
        obs::profileFromJson(obs::profileToJson(data));
    EXPECT_EQ(back.threads, data.threads);
    EXPECT_EQ(back.spans, data.spans);
    EXPECT_EQ(back.sites, data.sites);
    ASSERT_EQ(back.roots.size(), data.roots.size());
    EXPECT_EQ(back.roots[0].name, data.roots[0].name);
    EXPECT_EQ(back.roots[0].calls, data.roots[0].calls);
    EXPECT_EQ(back.roots[0].total_ns, data.roots[0].total_ns);
    EXPECT_EQ(back.roots[0].children[0].self_ns,
              data.roots[0].children[0].self_ns);
}

TEST(Profiler, RejectsForeignJson)
{
    EXPECT_THROW(obs::profileFromJson("{\"format\": \"nope\"}"),
                 std::runtime_error);
    EXPECT_THROW(obs::profileFromJson("not json"),
                 std::runtime_error);
}

TEST(Profiler, FoldedStacks)
{
    ProfilerFixture fix;
    recordNested(2);
    const std::string folded = obs::profileFolded(
        obs::Profiler::instance().collect());
    EXPECT_NE(folded.find("test.outer "), std::string::npos);
    EXPECT_NE(folded.find("test.outer;test.inner "),
              std::string::npos);
}

TEST(Profiler, TraceSpansFromRing)
{
    ProfilerFixture fix;
    recordNested(1);
    const obs::ProfileData data =
        obs::Profiler::instance().collect();
    ASSERT_GE(data.recent.size(), 4u);
    const auto spans = obs::profileTraceSpans(data);
    ASSERT_EQ(spans.size(), data.recent.size());
    for (const auto &s : spans)
        EXPECT_EQ(s.pid, 2u);
    // Leaf name, not the full path, labels the slice.
    bool found_inner = false;
    for (const auto &s : spans)
        found_inner |= s.name == "test.inner";
    EXPECT_TRUE(found_inner);
}

TEST(Profiler, ResetClearsCounts)
{
    ProfilerFixture fix;
    recordNested(3);
    obs::Profiler::instance().reset();
    const obs::ProfileData data =
        obs::Profiler::instance().collect();
    EXPECT_EQ(data.spans, 0u);
    EXPECT_TRUE(data.roots.empty());
    EXPECT_TRUE(data.recent.empty());
}
