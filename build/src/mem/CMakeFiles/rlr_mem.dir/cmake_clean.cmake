file(REMOVE_RECURSE
  "CMakeFiles/rlr_mem.dir/dram.cc.o"
  "CMakeFiles/rlr_mem.dir/dram.cc.o.d"
  "librlr_mem.a"
  "librlr_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlr_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
