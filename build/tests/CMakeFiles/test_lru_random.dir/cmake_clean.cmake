file(REMOVE_RECURSE
  "CMakeFiles/test_lru_random.dir/test_lru_random.cc.o"
  "CMakeFiles/test_lru_random.dir/test_lru_random.cc.o.d"
  "test_lru_random"
  "test_lru_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lru_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
