#include "sim/sweep_runner.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <utility>

#include "obs/chrome_trace.hh"
#include "stats/export.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace rlr::sim
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** FNV-1a over the label; stable across platforms and runs. */
uint64_t
hashLabel(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** splitmix64 finalizer: decorrelates nearby seeds. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

// Shared JSON primitives (stats/export.hh).
using stats::json::escape;
using stats::json::number;

} // namespace

SweepRunner::SweepRunner(SimParams params, SweepOptions opts)
    : params_(std::move(params)), opts_(std::move(opts))
{
}

uint64_t
SweepRunner::cellSeed(uint64_t master_seed,
                      const std::string &workload)
{
    return mix64(master_seed ^ hashLabel(workload));
}

std::vector<SweepCell>
SweepRunner::run(const std::vector<std::string> &workloads,
                 const std::vector<std::string> &policies)
{
    std::vector<CellSpec> specs;
    specs.reserve(workloads.size() * policies.size());
    for (const auto &w : workloads)
        for (const auto &p : policies)
            specs.push_back(CellSpec{w, p, {w}});
    return runCells(std::move(specs));
}

std::vector<SweepCell>
SweepRunner::runCells(std::vector<CellSpec> specs)
{
    std::vector<SweepCell> cells(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        cells[i].workload = specs[i].workload;
        cells[i].policy = specs[i].policy;
        cells[i].seed = cellSeed(params_.seed, specs[i].workload);
    }

    const auto sweep_start = Clock::now();
    std::atomic<size_t> done{0};
    std::mutex progress_mutex;

    util::ThreadPool::parallelFor(
        specs.size(), opts_.threads, [&](size_t i) {
            SweepCell &cell = cells[i];
            SimParams p = params_;
            p.llc_policy = cell.policy;
            p.seed = cell.seed;
            const auto cell_start = Clock::now();
            cell.start_seconds = secondsSince(sweep_start);
            try {
                cell.result = cell_fn_
                                  ? cell_fn_(specs[i], p)
                                  : runWorkloads(specs[i].cores, p);
            } catch (const std::exception &e) {
                cell.error = e.what();
            } catch (...) {
                cell.error = "unknown exception";
            }
            cell.wall_seconds = secondsSince(cell_start);
            if (cell.ok() && cell.wall_seconds > 0.0) {
                cell.mips =
                    static_cast<double>(
                        cell.result.total_instructions) /
                    cell.wall_seconds / 1e6;
            }

            const size_t n_done = done.fetch_add(1) + 1;
            if (!opts_.progress)
                return;
            const double elapsed = secondsSince(sweep_start);
            const double eta =
                elapsed / static_cast<double>(n_done) *
                static_cast<double>(specs.size() - n_done);
            std::scoped_lock lock(progress_mutex);
            std::fprintf(stderr,
                         "\r[sweep] %zu/%zu cells, %.1fs elapsed, "
                         "eta %.1fs   ",
                         n_done, specs.size(), elapsed, eta);
            std::fflush(stderr);
        });

    if (opts_.progress)
        std::fputc('\n', stderr);
    if (opts_.stable_telemetry) {
        // Leave only seed-determined fields in the export.
        for (auto &cell : cells) {
            cell.start_seconds = 0.0;
            cell.wall_seconds = 0.0;
            cell.mips = 0.0;
        }
    }
    if (!opts_.json_path.empty())
        writeJson(opts_.json_path, cells);
    return cells;
}

bool
SweepRunner::anyFailed(const std::vector<SweepCell> &cells)
{
    for (const auto &c : cells)
        if (!c.ok())
            return true;
    return false;
}

util::Table
SweepRunner::errorTable(const std::vector<SweepCell> &cells)
{
    util::Table table({"Workload", "Policy", "Error"});
    for (const auto &c : cells)
        if (!c.ok())
            table.addRow({c.workload, c.policy, c.error});
    return table;
}

std::string
SweepRunner::toJson(const std::vector<SweepCell> &cells)
{
    std::string out = "[\n";
    for (size_t i = 0; i < cells.size(); ++i) {
        const SweepCell &c = cells[i];
        out += "  {";
        out += util::format("\"workload\": \"{}\", ",
                            escape(c.workload));
        out += util::format("\"policy\": \"{}\", ",
                            escape(c.policy));
        out += util::format("\"seed\": {}, ", c.seed);
        if (c.ok()) {
            out += util::format(
                "\"hit_rate\": {}, ",
                number(c.result.llcDemandHitRate()));
            out += util::format(
                "\"mpki\": {}, ", number(c.result.llcDemandMpki()));
            out += util::format("\"ipc\": {}, ",
                                number(c.result.ipc()));
            out += util::format("\"instructions\": {}, ",
                                c.result.total_instructions);
            // Per-core outcomes (fig13-style weighted speedups
            // need every core's IPC, not just core 0's).
            out += "\"cores\": [";
            for (size_t k = 0; k < c.result.cores.size(); ++k) {
                const CoreResult &core = c.result.cores[k];
                if (k)
                    out += ", ";
                out += util::format(
                    "{{\"workload\": \"{}\", \"ipc\": {}, "
                    "\"instructions\": {}}}",
                    escape(core.workload), number(core.ipc),
                    core.instructions);
            }
            out += "], ";
            // Full registry snapshot (counters/formulas/
            // histograms) of the simulated system.
            if (!c.result.stats.empty()) {
                std::string snap = stats::toJson(c.result.stats);
                while (!snap.empty() && snap.back() == '\n')
                    snap.pop_back();
                out += "\"stats\": " + snap + ", ";
            }
        } else {
            out += "\"hit_rate\": null, \"mpki\": null, "
                   "\"ipc\": null, \"instructions\": null, "
                   "\"cores\": [], ";
        }
        out += util::format("\"runtime_s\": {}, ",
                            number(c.wall_seconds));
        out += util::format("\"mips\": {}, ", number(c.mips));
        out += c.ok() ? "\"error\": null"
                      : util::format("\"error\": \"{}\"",
                                     escape(c.error));
        out += i + 1 < cells.size() ? "},\n" : "}\n";
    }
    out += "]\n";
    return out;
}

std::string
SweepRunner::chromeTraceJson(const std::vector<SweepCell> &cells)
{
    std::vector<obs::TraceSpan> spans;
    spans.reserve(cells.size());
    for (const SweepCell &c : cells) {
        obs::TraceSpan s;
        s.name = c.workload + "/" + c.policy;
        s.category = c.ok() ? "cell" : "cell,error";
        s.start_us =
            static_cast<uint64_t>(c.start_seconds * 1e6);
        s.duration_us =
            static_cast<uint64_t>(c.wall_seconds * 1e6);
        s.args.emplace_back("workload",
                            "\"" + escape(c.workload) + "\"");
        s.args.emplace_back("policy",
                            "\"" + escape(c.policy) + "\"");
        s.args.emplace_back("seed", util::format("{}", c.seed));
        s.args.emplace_back("mips", number(c.mips));
        if (!c.ok()) {
            s.args.emplace_back("error",
                                "\"" + escape(c.error) + "\"");
        }
        spans.push_back(std::move(s));
    }
    obs::assignLanes(spans);
    return obs::chromeTraceJson(spans, "sweep");
}

void
SweepRunner::writeChromeTrace(const std::string &path,
                              const std::vector<SweepCell> &cells)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        util::fatal("cannot open chrome-trace path '{}'", path);
    const std::string json = chromeTraceJson(cells);
    const size_t written =
        std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    if (written != json.size())
        util::fatal("short write to chrome-trace path '{}'", path);
}

void
SweepRunner::writeJson(const std::string &path,
                       const std::vector<SweepCell> &cells)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        util::fatal("cannot open JSON export path '{}'", path);
    const std::string json = toJson(cells);
    const size_t written =
        std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    if (written != json.size())
        util::fatal("short write to JSON export path '{}'", path);
}

} // namespace rlr::sim
