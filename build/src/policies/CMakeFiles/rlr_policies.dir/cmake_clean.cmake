file(REMOVE_RECURSE
  "CMakeFiles/rlr_policies.dir/belady.cc.o"
  "CMakeFiles/rlr_policies.dir/belady.cc.o.d"
  "CMakeFiles/rlr_policies.dir/eva.cc.o"
  "CMakeFiles/rlr_policies.dir/eva.cc.o.d"
  "CMakeFiles/rlr_policies.dir/glider.cc.o"
  "CMakeFiles/rlr_policies.dir/glider.cc.o.d"
  "CMakeFiles/rlr_policies.dir/hawkeye.cc.o"
  "CMakeFiles/rlr_policies.dir/hawkeye.cc.o.d"
  "CMakeFiles/rlr_policies.dir/kpc_r.cc.o"
  "CMakeFiles/rlr_policies.dir/kpc_r.cc.o.d"
  "CMakeFiles/rlr_policies.dir/lru.cc.o"
  "CMakeFiles/rlr_policies.dir/lru.cc.o.d"
  "CMakeFiles/rlr_policies.dir/mpppb.cc.o"
  "CMakeFiles/rlr_policies.dir/mpppb.cc.o.d"
  "CMakeFiles/rlr_policies.dir/pdp.cc.o"
  "CMakeFiles/rlr_policies.dir/pdp.cc.o.d"
  "CMakeFiles/rlr_policies.dir/random.cc.o"
  "CMakeFiles/rlr_policies.dir/random.cc.o.d"
  "CMakeFiles/rlr_policies.dir/rrip.cc.o"
  "CMakeFiles/rlr_policies.dir/rrip.cc.o.d"
  "CMakeFiles/rlr_policies.dir/ship.cc.o"
  "CMakeFiles/rlr_policies.dir/ship.cc.o.d"
  "librlr_policies.a"
  "librlr_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlr_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
