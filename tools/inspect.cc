/**
 * @file
 * `inspect`: render a bench --events export into a markdown
 * decision-trace report, and validate --chrome-trace outputs.
 *
 *   ./build/tools/inspect --from events.json [--out INSPECT.md]
 *   ./build/tools/inspect --check-trace sweep_trace.json
 *   ./build/tools/inspect --journal out/journal/sweep-0
 *   ./build/tools/inspect --top out/heartbeat.json
 *   ./build/tools/inspect --profile out/profile.json
 *
 * Any bench binary's --events output works as input; the report
 * covers whatever cells the export contains (eviction-reason
 * breakdowns, Fig-5/6/7-style victim statistics, per-set hot
 * spots). --check-trace verifies a Chrome trace_event JSON file
 * is structurally valid for chrome://tracing / Perfetto.
 * --journal summarizes a sweep journal directory (header
 * identity, per-cell record status, in-flight markers, and live
 * cell leases with their owner/fence/expiry — see
 * docs/ROBUSTNESS.md).
 * --top follows a sweep's --heartbeat file like `top(1)`,
 * redrawing per-worker status until the sweep reports done.
 * --profile renders a --profile JSON export as a call tree
 * (--folded additionally writes flamegraph folded stacks).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "obs/heartbeat.hh"
#include "obs/profiler.hh"
#include "sim/journal.hh"
#include "tools/inspect_gen.hh"
#include "util/args.hh"
#include "util/atomic_file.hh"
#include "util/logging.hh"

namespace
{

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        rlr::util::fatal("cannot open input '{}'", path);
    std::string text;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

void
writeFile(const std::string &path, const std::string &text)
{
    rlr::util::atomicWriteFileOrFatal(path, text);
}

} // namespace

int
main(int argc, char **argv)
{
    rlr::util::ArgParser parser(
        "Render a decision-trace inspection report from a bench "
        "--events export");
    parser.addOption("from", "",
                     "Events JSON input path (produced by any "
                     "bench binary's --events flag)");
    parser.addOption("out", "-",
                     "Markdown output path ('-' for stdout)");
    parser.addOption("title", "LLC decision-trace inspection",
                     "Report H1 title");
    parser.addOption("top-sets", "8",
                     "Hottest sets listed per cell");
    parser.addOption("check-trace", "",
                     "Validate a Chrome trace_event JSON file "
                     "(--chrome-trace output) instead of "
                     "rendering a report");
    parser.addOption("journal", "",
                     "Summarize a sweep journal directory "
                     "(--journal output of any bench binary): "
                     "header identity, per-cell records, and "
                     "live cell leases with owner and expiry");
    parser.addOption("top", "",
                     "Follow a sweep heartbeat file (--heartbeat "
                     "output of any bench binary) as a live "
                     "status monitor");
    parser.addOption("interval", "0.5",
                     "--top refresh interval in seconds");
    parser.addFlag("once",
                   "With --top: render one frame and exit "
                   "instead of following until done");
    parser.addOption("profile", "",
                     "Render a profile JSON export (--profile "
                     "output of any bench binary) as a call "
                     "tree");
    parser.addOption("folded", "",
                     "With --profile: also write flamegraph "
                     "folded stacks to this path");
    if (!parser.parse(argc, argv))
        return 0;

    const std::string top = parser.get("top");
    if (!top.empty()) {
        const double interval =
            std::max(0.05, parser.getDouble("interval"));
        const bool once = parser.getFlag("once");
        uint64_t last_seq = 0;
        for (;;) {
            rlr::obs::Heartbeat hb;
            try {
                hb = rlr::obs::heartbeatFromJson(readFile(top));
            } catch (const std::exception &e) {
                if (once)
                    rlr::util::fatal("{}: {}", top, e.what());
                // The writer may not have produced the first
                // beat yet, or we raced a replace; retry.
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(interval));
                continue;
            }
            if (hb.sequence != last_seq) {
                last_seq = hb.sequence;
                std::fputs(rlr::tools::renderTop(hb).c_str(),
                           stdout);
                std::fflush(stdout);
            }
            if (once || hb.done)
                return 0;
            std::this_thread::sleep_for(
                std::chrono::duration<double>(interval));
        }
    }

    const std::string profile = parser.get("profile");
    if (!profile.empty()) {
        rlr::obs::ProfileData data;
        try {
            data = rlr::obs::profileFromJson(readFile(profile));
        } catch (const std::exception &e) {
            rlr::util::fatal("{}: {}", profile, e.what());
        }
        std::fputs(rlr::tools::renderProfileTree(data).c_str(),
                   stdout);
        const std::string folded = parser.get("folded");
        if (!folded.empty()) {
            writeFile(folded, rlr::obs::profileFolded(data));
            std::fprintf(stderr, "wrote %s\n", folded.c_str());
        }
        return 0;
    }

    const std::string journal = parser.get("journal");
    if (!journal.empty()) {
        std::fputs(
            rlr::sim::SweepJournal::summarize(journal).c_str(),
            stdout);
        return 0;
    }

    const std::string check = parser.get("check-trace");
    if (!check.empty()) {
        try {
            const size_t n =
                rlr::tools::checkChromeTrace(readFile(check));
            std::fprintf(stderr,
                         "%s: valid trace_event JSON "
                         "(%zu events)\n",
                         check.c_str(), n);
        } catch (const std::exception &e) {
            rlr::util::fatal("{}: {}", check, e.what());
        }
        return 0;
    }

    const std::string from = parser.get("from");
    if (from.empty())
        rlr::util::fatal(
            "--from <events.json> is required (run any bench "
            "binary with --events first)");

    rlr::tools::InspectOptions opts;
    opts.title = parser.get("title");
    opts.source = from;
    opts.top_sets = parser.getUint("top-sets");
    const std::string report =
        rlr::tools::generateInspect(readFile(from), opts);

    const std::string out = parser.get("out");
    if (out == "-") {
        std::fputs(report.c_str(), stdout);
    } else {
        writeFile(out, report);
        std::fprintf(stderr, "wrote %s (%zu bytes)\n",
                     out.c_str(), report.size());
    }
    return 0;
}
