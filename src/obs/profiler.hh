/**
 * @file
 * Scoped-span self-profiler: where do the simulator's own cycles
 * go (docs/OBSERVABILITY.md)?
 *
 * Instrumented code brackets a region with
 *
 *   RLR_PROF_SCOPE("sim.llc.access");
 *
 * Each thread accumulates spans into a private call tree (no
 * locks on the hot path) with per-node call counts, inclusive
 * nanoseconds, and a log2-ns latency histogram backing per-call
 * percentiles; a bounded ring buffer additionally keeps the most
 * recent raw spans for timeline export (Chrome trace merge).
 * Profiler::collect() merges every thread's tree into one
 * deterministic, name-sorted ProfileData.
 *
 * Cost model:
 *  - compiled out: defining RLR_PROF_DISABLED turns every macro
 *    into `(void)0` (ctest-enforced < 1% on the cache replay);
 *  - runtime disabled (the default): one relaxed atomic load and
 *    a predicted not-taken branch per scope;
 *  - enabled: two steady_clock reads per *recorded* span. Hot
 *    sites use RLR_PROF_SCOPE_SAMPLED(name, shift) to time only
 *    1-in-2^shift entries; the estimates scale back up by the
 *    accumulated shift along the path. While a sampled scope is
 *    skipped, its children are suppressed too, so the tree stays
 *    coherent (a child is only ever recorded inside a recorded
 *    parent). Enforced < 5% enabled on the tier-1 sweep path.
 *
 * Threading: scope enter/leave is thread-local and lock-free.
 * collect()/reset() take a registry lock and must only run while
 * no instrumented code is executing (quiescent points: between
 * sweeps, after joins).
 */

#ifndef RLR_OBS_PROFILER_HH
#define RLR_OBS_PROFILER_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace rlr::stats
{
class Registry;
} // namespace rlr::stats

namespace rlr::obs
{

struct TraceSpan;

namespace profdetail
{
struct ThreadState;
} // namespace profdetail

/** One merged call-tree node (collect() output). */
struct ProfileNode
{
    std::string name;
    /** Spans actually timed (before sampling correction). */
    uint64_t recorded_calls = 0;
    /** Estimated true call count (recorded << path shift). */
    uint64_t calls = 0;
    /** Estimated inclusive nanoseconds. */
    uint64_t total_ns = 0;
    /** Estimated exclusive nanoseconds (total minus children). */
    uint64_t self_ns = 0;
    /**
     * Per-call latency percentiles as power-of-two upper bounds
     * (the histogram buckets log2(ns), so "p99_ns: 4096" reads
     * "99% of calls took under ~4.1us").
     */
    uint64_t p50_ns = 0;
    uint64_t p90_ns = 0;
    uint64_t p99_ns = 0;
    /** Name-sorted children. */
    std::vector<ProfileNode> children;
};

/** One raw ring-buffer span (timeline export). */
struct ProfileSpan
{
    /** Semicolon-joined path from root ("sim.run;sim.llc.access"). */
    std::string path;
    /** Registration index of the recording thread. */
    uint32_t thread = 0;
    /** Start offset from the profile epoch, nanoseconds. */
    uint64_t start_ns = 0;
    uint64_t duration_ns = 0;
};

/** Merged profile of every registered thread. */
struct ProfileData
{
    /** Threads that recorded at least one span. */
    uint64_t threads = 0;
    /** Total spans recorded (post-sampling). */
    uint64_t spans = 0;
    /** Distinct merged tree nodes. */
    uint64_t sites = 0;
    /** Name-sorted merged call trees. */
    std::vector<ProfileNode> roots;
    /** Most recent raw spans, oldest first (bounded per thread). */
    std::vector<ProfileSpan> recent;
};

/** Process-wide profiler registry and switch. */
class Profiler
{
  public:
    static Profiler &instance();

    /** Hot-path gate: is span recording on right now? */
    static bool
    profilingEnabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Turn span recording on/off (scopes in flight complete). */
    void setEnabled(bool on);

    /**
     * Zero every thread's counters, histograms, and ring buffers
     * (tree structure is kept) and re-anchor the span epoch.
     * Quiescent-only: no instrumented code may be running.
     */
    void reset();

    /**
     * Merge every thread's tree into one deterministic profile
     * (threads merge name-sorted, so the result is independent of
     * thread registration order). Quiescent-only.
     */
    ProfileData collect() const;

    /** Spans recorded by the calling thread (obs.prof.* stats). */
    uint64_t threadSpans() const;

  private:
    friend class ProfScope;
    Profiler() = default;

    inline static std::atomic<bool> enabled_{false};
};

/**
 * RAII span. Use the RLR_PROF_SCOPE* macros rather than naming
 * this type directly so instrumentation compiles out under
 * RLR_PROF_DISABLED.
 */
class ProfScope
{
  public:
    explicit ProfScope(const char *name, uint32_t shift = 0)
    {
        if (Profiler::profilingEnabled()) [[unlikely]]
            enter(name, shift);
    }

    /** Gated form: records only when @p gate is also true. */
    ProfScope(bool gate, const char *name, uint32_t shift = 0)
    {
        if (gate && Profiler::profilingEnabled()) [[unlikely]]
            enter(name, shift);
    }

    ~ProfScope()
    {
        if (mode_ != Mode::Off) [[unlikely]]
            leave();
    }

    ProfScope(const ProfScope &) = delete;
    ProfScope &operator=(const ProfScope &) = delete;

  private:
    enum class Mode : uint8_t
    {
        Off,        //!< profiler disabled / gate false
        Recording,  //!< timing this span
        Suppressed, //!< sampled out (or inside a sampled-out span)
    };

    void enter(const char *name, uint32_t shift);
    void leave();

    profdetail::ThreadState *state_ = nullptr;
    uint64_t start_ns_ = 0;
    Mode mode_ = Mode::Off;
};

// Instrumentation macros. Each expands to a block-scoped RAII
// span; RLR_PROF_DISABLED compiles them all to nothing.
#define RLR_PROF_CONCAT_INNER(a, b) a##b
#define RLR_PROF_CONCAT(a, b) RLR_PROF_CONCAT_INNER(a, b)

#ifndef RLR_PROF_DISABLED
#define RLR_PROF_SCOPE(name_literal)                                \
    const ::rlr::obs::ProfScope RLR_PROF_CONCAT(                    \
        rlr_prof_scope_, __COUNTER__)(name_literal)
#define RLR_PROF_SCOPE_SAMPLED(name_literal, shift)                 \
    const ::rlr::obs::ProfScope RLR_PROF_CONCAT(                    \
        rlr_prof_scope_, __COUNTER__)(name_literal, (shift))
#define RLR_PROF_SCOPE_IF(gate, name_literal)                       \
    const ::rlr::obs::ProfScope RLR_PROF_CONCAT(                    \
        rlr_prof_scope_, __COUNTER__)((gate), name_literal)
#define RLR_PROF_SCOPE_IF_SAMPLED(gate, name_literal, shift)        \
    const ::rlr::obs::ProfScope RLR_PROF_CONCAT(                    \
        rlr_prof_scope_, __COUNTER__)((gate), name_literal, (shift))
#else
#define RLR_PROF_SCOPE(name_literal) static_cast<void>(0)
#define RLR_PROF_SCOPE_SAMPLED(name_literal, shift)                 \
    static_cast<void>(0)
#define RLR_PROF_SCOPE_IF(gate, name_literal) static_cast<void>(0)
#define RLR_PROF_SCOPE_IF_SAMPLED(gate, name_literal, shift)        \
    static_cast<void>(0)
#endif

/**
 * Serialize a profile as JSON ("format": "rlr-profile"). With
 * @p stable every nanosecond field is zeroed (call counts stay),
 * so same-seed runs export byte-identical profiles.
 */
std::string profileToJson(const ProfileData &data,
                          bool stable = false);

/**
 * Parse profileToJson() output (tree only; "recent" spans are an
 * in-process extra and not round-tripped).
 * @throws std::runtime_error on malformed input
 */
ProfileData profileFromJson(const std::string &text);

/**
 * Folded-stacks rendering ("a;b;c self_ns" per line), the input
 * format of flamegraph.pl and speedscope.
 */
std::string profileFolded(const ProfileData &data);

/**
 * Convert the profile's recent raw spans into Chrome trace
 * spans (pid 2, one tid per recording thread) for merging into a
 * sweep's --chrome-trace export.
 */
std::vector<TraceSpan> profileTraceSpans(const ProfileData &data);

/**
 * Register the calling thread's profiler counters under
 * @p prefix (obs.prof.enabled, obs.prof.thread_spans).
 */
void describeProfilerStats(stats::Registry &reg,
                           const std::string &prefix);

} // namespace rlr::obs

#endif // RLR_OBS_PROFILER_HH
