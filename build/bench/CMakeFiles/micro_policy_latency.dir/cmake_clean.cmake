file(REMOVE_RECURSE
  "CMakeFiles/micro_policy_latency.dir/micro_policy_latency.cc.o"
  "CMakeFiles/micro_policy_latency.dir/micro_policy_latency.cc.o.d"
  "micro_policy_latency"
  "micro_policy_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_policy_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
