/**
 * @file
 * Regenerates the Section IV-C age-counter sizing study: sweep
 * the (unoptimized) age-counter width from 2 to 8 bits, plus the
 * optimized 2-bit/8-miss configuration, and report overall
 * speedup over LRU. The paper chose 5 bits for the unoptimized
 * design and 2 bits (counting groups of 8 set misses) after
 * optimization.
 */

#include "bench/common.hh"
#include "util/format.hh"

using namespace rlr;

int
main(int argc, char **argv)
{
    auto parser = bench::makeParser(
        "Ablation: RLR age-counter width sweep");
    if (!parser.parse(argc, argv))
        return 0;
    auto opt = bench::makeOptions(parser);

    auto workloads = opt.workloads;
    if (workloads.empty())
        workloads = bench::trainingNames();

    std::vector<std::string> policies;
    std::vector<std::string> labels;
    for (unsigned bits = 2; bits <= 8; ++bits) {
        policies.push_back(util::format(
            "RLR:opt=0,age={},tick=1,hit=2,rdmul=2", bits));
        labels.push_back(
            util::format("unopt, {}-bit age", bits));
    }
    policies.push_back("RLR");
    labels.push_back("optimized (2-bit age, 8-miss tick)");

    std::vector<std::string> all = {"LRU"};
    all.insert(all.end(), policies.begin(), policies.end());
    const auto cells = bench::runSweep(opt, workloads, all);

    util::Table table({"Configuration", "Bits/line",
                       "Speedup over LRU (%)"});
    for (size_t p = 0; p < policies.size(); ++p) {
        std::vector<double> ratios;
        for (const auto &w : workloads) {
            const auto &base = sim::findCell(cells, w, "LRU");
            const auto &cell =
                sim::findCell(cells, w, policies[p]);
            ratios.push_back(stats::speedup(
                cell.result.ipc(), base.result.ipc()));
        }
        const unsigned bits_per_line =
            p < 7 ? static_cast<unsigned>(p + 2) + 2 + 1 : 4;
        table.addRow(
            {labels[p], std::to_string(bits_per_line),
             util::Table::fmt(
                 100.0 * (stats::geomean(ratios) - 1.0), 2)});
    }

    std::puts("=== Ablation: age-counter width (training "
              "benchmarks) ===");
    bench::emit(opt, table);
    std::puts("\nPaper: 5 bits suffice to cover the average "
              "preuse distance; the optimized 2-bit/8-miss "
              "design preserves most of the gain at 4 bits/line.");
    return bench::finish(opt);
}
