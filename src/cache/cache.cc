#include "cache/cache.hh"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "obs/epoch.hh"
#include "obs/event_log.hh"
#include "util/logging.hh"

namespace rlr::cache
{

namespace
{

std::string
typeKey(trace::AccessType type, const char *suffix)
{
    return std::string(trace::accessTypeName(type)) + "_" + suffix;
}

trace::LlcAccess
toLlcAccess(const MemRequest &req)
{
    trace::LlcAccess rec;
    rec.pc = req.pc;
    rec.address = req.address;
    rec.type = req.type;
    rec.cpu = req.cpu;
    return rec;
}

bool
verifyEnvDefault()
{
    const char *v = std::getenv("RLR_VERIFY");
    return v != nullptr && std::string_view(v) != "0";
}

} // namespace

Cache::Cache(CacheGeometry geom,
             std::unique_ptr<ReplacementPolicy> policy,
             MemoryLevel *next)
    : geom_(std::move(geom)), policy_(std::move(policy)),
      next_(next), verify_(verifyEnvDefault()), stats_(geom_.name)
{
    geom_.validate();
    util::ensure(policy_ != nullptr, "Cache: null policy");
    util::ensure(next_ != nullptr, "Cache: null next level");
    blocks_.resize(static_cast<size_t>(geom_.numSets()) * geom_.ways);
    policy_->bind(geom_);
}

void
Cache::setPrefetcher(std::unique_ptr<Prefetcher> prefetcher)
{
    prefetcher_ = std::move(prefetcher);
    if (prefetcher_)
        prefetcher_->bind(geom_);
}

void
Cache::setEventLog(obs::EventLog *log)
{
    events_ = log;
    if (events_)
        events_->bind(geom_.numSets(), geom_.ways);
}

void
Cache::setEpochSampler(obs::EpochSampler *sampler)
{
    epoch_ = sampler;
    if (epoch_) {
        epoch_->bind(geom_.numSets());
        epoch_->setOccupancyProvider(
            [this] { return validLines(); });
    }
}

Cache::Block &
Cache::block(uint32_t set, uint32_t way)
{
    return blocks_[static_cast<size_t>(set) * geom_.ways + way];
}

const Cache::Block &
Cache::block(uint32_t set, uint32_t way) const
{
    return blocks_[static_cast<size_t>(set) * geom_.ways + way];
}

std::optional<uint32_t>
Cache::lookup(uint32_t set, uint64_t tag) const
{
    for (uint32_t w = 0; w < geom_.ways; ++w) {
        const Block &b = block(set, w);
        if (b.valid && b.tag == tag)
            return w;
    }
    return std::nullopt;
}

void
Cache::countAccess(trace::AccessType type, bool hit)
{
    ++stats_.counter(typeKey(type, "access"));
    ++stats_.counter(typeKey(type, hit ? "hit" : "miss"));
}

uint64_t
Cache::reserveMshr(uint64_t now, uint64_t ready)
{
    while (!inflight_.empty() && inflight_.top() <= now)
        inflight_.pop();
    if (inflight_.size() >= geom_.mshrs) {
        // All MSHRs busy: the request waits for the earliest
        // outstanding miss to complete.
        now = std::max(now, inflight_.top());
        inflight_.pop();
        ++stats_.counter("mshr_stalls");
    }
    inflight_.push(ready);
    return now;
}

void
Cache::runPrefetcher(const MemRequest &req, bool hit, uint64_t now)
{
    if (!prefetcher_ || in_prefetch_)
        return;
    std::vector<PrefetchRequest> proposals;
    prefetcher_->observe(req.pc, req.address, hit, proposals);
    if (proposals.empty())
        return;

    in_prefetch_ = true;
    for (const auto &p : proposals) {
        const uint64_t line = CacheGeometry::lineAddress(p.address);
        const uint32_t set = geom_.setIndex(line);
        if (lookup(set, geom_.tag(line)))
            continue; // already present or in flight
        MemRequest pf;
        pf.address = line;
        pf.pc = req.pc;
        pf.type = trace::AccessType::Prefetch;
        pf.cpu = req.cpu;
        pf.pf_confidence = static_cast<float>(p.confidence);
        ++stats_.counter("prefetches_issued");
        access(pf, now);
    }
    in_prefetch_ = false;
}

uint64_t
Cache::access(const MemRequest &req, uint64_t now)
{
    // One dispatch per access: with nothing attached the body
    // compiles hook-free (if constexpr strips every observability
    // call site), so disabled tracing costs a single predicted
    // branch rather than a null check per decision point.
    if (events_ || epoch_)
        return accessImpl<true>(req, now);
    return accessImpl<false>(req, now);
}

template <bool Obs>
uint64_t
Cache::accessImpl(const MemRequest &req, uint64_t now)
{
    now += geom_.latency;
    const uint64_t line = CacheGeometry::lineAddress(req.address);
    const uint64_t tag = geom_.tag(line);
    const uint32_t set = geom_.setIndex(line);

    if (sink_) {
        trace::LlcAccess rec;
        rec.pc = req.pc;
        rec.address = req.address;
        rec.type = req.type;
        rec.cpu = req.cpu;
        sink_(rec);
    }

    const auto hit_way = lookup(set, tag);
    const bool demand = trace::isDemand(req.type);

    if (hit_way) {
        Block &b = block(set, *hit_way);
        const bool merged = b.ready_at > now;
        if (demand)
            b.prefetch = false;
        if (req.type == trace::AccessType::Writeback ||
            (writes_on_rfo_ && req.type == trace::AccessType::Rfo)) {
            b.dirty = true;
        }
        if (merged) {
            // The line is still in flight: this access merges into
            // the outstanding MSHR and completes with it.
            countAccess(req.type, false);
            ++stats_.counter("mshr_merges");
            if constexpr (Obs) {
                if (epoch_)
                    epoch_->onAccess(set, req.type, false);
                if (events_)
                    events_->onMiss(set);
            }
            if (demand)
                runPrefetcher(req, false, now);
            return std::max(now, b.ready_at);
        }
        countAccess(req.type, true);
        if constexpr (Obs) {
            if (epoch_)
                epoch_->onAccess(set, req.type, true);
            if (events_) {
                // Pre-update priority: the standing the line had
                // when it was hit (e.g. its RRPV before promotion).
                events_->onHit(set, *hit_way, toLlcAccess(req),
                               policy_->victimPriority(set,
                                                       *hit_way));
            }
        }
        AccessContext ctx;
        ctx.cpu = req.cpu;
        ctx.set = set;
        ctx.way = *hit_way;
        ctx.full_addr = req.address;
        ctx.pc = req.pc;
        ctx.type = req.type;
        ctx.hit = true;
        policy_->onAccess(ctx);
        if (demand)
            runPrefetcher(req, true, now);
        if (verify_)
            runVerify(set);
        return now;
    }

    // Miss.
    countAccess(req.type, false);
    if constexpr (Obs) {
        if (epoch_)
            epoch_->onAccess(set, req.type, false);
        if (events_)
            events_->onMiss(set);
    }

    if (req.type == trace::AccessType::Writeback) {
        // Write-allocate on writeback: the entire line is being
        // written, so no fetch from the next level is required.
        fillImpl<Obs>(req, now, /*dirty=*/true);
        if (verify_)
            runVerify(set);
        return now;
    }

    const uint64_t issue = now;
    uint64_t ready = next_->access(req, issue);
    ready = std::max(ready, issue);
    const uint64_t adjusted = reserveMshr(issue, ready);
    ready += adjusted - issue;

    // KPC-style fill-level control: low-confidence prefetches are
    // not installed at this level (they still filled the levels
    // below via the recursive miss path).
    const bool skip_install =
        req.type == trace::AccessType::Prefetch &&
        req.pf_confidence < pf_fill_threshold_;
    if (!skip_install) {
        fillImpl<Obs>(req, ready,
                      /*dirty=*/writes_on_rfo_ &&
                          req.type == trace::AccessType::Rfo);
    } else {
        ++stats_.counter("pf_fills_skipped");
        if constexpr (Obs) {
            if (epoch_)
                epoch_->onBypass();
            if (events_) {
                events_->onBypass(
                    set, toLlcAccess(req),
                    BypassReason::LowConfidencePrefetch);
            }
        }
    }

    if (demand)
        runPrefetcher(req, false, now);
    if (verify_)
        runVerify(set);
    return ready;
}

template <bool Obs>
bool
Cache::fillImpl(const MemRequest &req, uint64_t ready, bool dirty)
{
    const uint64_t line = CacheGeometry::lineAddress(req.address);
    const uint32_t set = geom_.setIndex(line);

    uint32_t way = geom_.ways;
    for (uint32_t w = 0; w < geom_.ways; ++w) {
        if (!block(set, w).valid) {
            way = w;
            break;
        }
    }

    if (way == geom_.ways) {
        std::vector<BlockView> views(geom_.ways);
        for (uint32_t w = 0; w < geom_.ways; ++w) {
            const Block &b = block(set, w);
            views[w] = BlockView{b.valid, b.dirty, b.prefetch,
                                 b.address};
        }
        AccessContext ctx;
        ctx.cpu = req.cpu;
        ctx.set = set;
        ctx.full_addr = req.address;
        ctx.pc = req.pc;
        ctx.type = req.type;
        ctx.hit = false;
        way = policy_->findVictim(ctx, views);

        if (way == ReplacementPolicy::kBypass) {
            if (req.type != trace::AccessType::Writeback) {
                ++stats_.counter("bypasses");
                if constexpr (Obs) {
                    if (epoch_)
                        epoch_->onBypass();
                    if (events_) {
                        events_->onBypass(set, toLlcAccess(req),
                                          policy_->bypassReason());
                    }
                }
                return false;
            }
            // Writebacks cannot be bypassed; fall back to way 0.
            way = 0;
        }
        util::ensure(way < geom_.ways, "Cache: bad victim way");

        Block &victim = block(set, way);
        if (victim.valid) {
            if constexpr (Obs) {
                // Before onEviction, while the policy's victim
                // metadata is still live.
                const uint64_t prio =
                    policy_->victimPriority(set, way);
                if (events_) {
                    events_->onEviction(set, way, victim.address,
                                        toLlcAccess(req), prio);
                }
                if (epoch_)
                    epoch_->onEviction(prio);
            }
            policy_->onEviction(set, way,
                                BlockView{victim.valid, victim.dirty,
                                          victim.prefetch,
                                          victim.address});
            ++stats_.counter("evictions");
            if (victim.dirty) {
                MemRequest wb;
                wb.address = victim.address;
                wb.pc = 0;
                wb.type = trace::AccessType::Writeback;
                wb.cpu = req.cpu;
                ++stats_.counter("writebacks_issued");
                next_->access(wb, ready);
            }
        }
    }

    Block &b = block(set, way);
    b.valid = true;
    b.dirty = dirty;
    b.prefetch = req.type == trace::AccessType::Prefetch;
    b.tag = geom_.tag(line);
    b.address = line;
    b.ready_at = ready;

    AccessContext ctx;
    ctx.cpu = req.cpu;
    ctx.set = set;
    ctx.way = way;
    ctx.full_addr = req.address;
    ctx.pc = req.pc;
    ctx.type = req.type;
    ctx.hit = false;
    policy_->onAccess(ctx);
    if constexpr (Obs) {
        if (events_) {
            // Post-insertion priority (e.g. the inserted RRPV).
            events_->onFill(set, way, toLlcAccess(req),
                            policy_->victimPriority(set, way));
        }
    }
    return true;
}

void
Cache::runVerify(uint32_t set) const
{
    const auto views = setContents(set);
    policy_->verifyInvariants(set, views);
    const std::string err = stats::accessConsistencyError(stats_);
    if (!err.empty()) {
        throw std::logic_error("cache '" + geom_.name +
                               "' stats: " + err);
    }
}

bool
Cache::probe(uint64_t address) const
{
    const uint64_t line = CacheGeometry::lineAddress(address);
    return lookup(geom_.setIndex(line), geom_.tag(line)).has_value();
}

std::vector<BlockView>
Cache::setContents(uint32_t set) const
{
    std::vector<BlockView> views(geom_.ways);
    for (uint32_t w = 0; w < geom_.ways; ++w) {
        const Block &b = block(set, w);
        views[w] = BlockView{b.valid, b.dirty, b.prefetch, b.address};
    }
    return views;
}

void
Cache::describeStats(stats::Registry &reg,
                     const std::string &prefix)
{
    reg.bindStatSet(prefix, &stats_,
                    "per-type access counters of " + geom_.name);
    reg.bindCounter(
        prefix + ".demand_accesses",
        [this] { return demandAccesses(); }, "LD + RFO accesses");
    reg.bindCounter(prefix + ".demand_hits",
                    [this] { return demandHits(); },
                    "LD + RFO hits");
    reg.bindCounter(prefix + ".demand_misses",
                    [this] { return demandMisses(); },
                    "LD + RFO misses");
    reg.formula(
        prefix + ".demand_hit_rate",
        [this](const stats::Registry &) {
            return stats::hitRate(demandHits(), demandAccesses());
        },
        "demand hit rate in [0, 1]");
    reg.formula(
        prefix + ".policy.overhead_kib",
        [this](const stats::Registry &) {
            return policy_->overhead().totalKiB(geom_);
        },
        "replacement metadata (KiB) at this geometry");
    policy_->describeStats(reg, prefix + ".policy");
    if (prefetcher_)
        prefetcher_->describeStats(reg, prefix + ".prefetcher");
    if (events_)
        events_->describeStats(reg, prefix + ".events");
    if (epoch_)
        epoch_->describeStats(reg, prefix + ".epoch");
}

void
Cache::resetStats()
{
    stats_.reset();
    if (events_)
        events_->reset();
    if (epoch_)
        epoch_->reset();
}

void
Cache::flush()
{
    std::fill(blocks_.begin(), blocks_.end(), Block{});
    while (!inflight_.empty())
        inflight_.pop();
    resetStats();
}

uint64_t
Cache::demandAccesses() const
{
    return stats_.value("LD_access") + stats_.value("RFO_access");
}

uint64_t
Cache::demandHits() const
{
    return stats_.value("LD_hit") + stats_.value("RFO_hit");
}

uint64_t
Cache::demandMisses() const
{
    return stats_.value("LD_miss") + stats_.value("RFO_miss");
}

uint64_t
Cache::validLines() const
{
    uint64_t n = 0;
    for (const Block &b : blocks_)
        n += b.valid ? 1 : 0;
    return n;
}

} // namespace rlr::cache
