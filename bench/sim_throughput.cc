/**
 * @file
 * Simulated-accesses-per-second benchmark for the LLC hot path —
 * the perf-trajectory artifact behind BENCH_sim_throughput.json.
 *
 * For every policy it replays one deterministic synthetic trace
 * through three cache builds:
 *
 *  - typed:    cache::Cache with its devirtualized compile-time
 *              dispatch path (the default);
 *  - virtual:  the same cache forced onto the virtual-dispatch
 *              fallback (Cache::setForceGenericDispatch);
 *  - baseline: a frozen re-implementation of the pre-optimization
 *              hot path (AoS block array, per-access string-keyed
 *              counter lookups, a fresh std::vector<BlockView>
 *              allocation per victim fill, virtual policy calls),
 *              kept behaviourally identical (same MSHR and
 *              writeback-bypass protocol) so its counts must match.
 *
 * Every run doubles as a differential oracle: the three builds
 * must agree on all replacement/stat counters and on the checksum
 * of per-access completion times, or the run fails. --check-speedup
 * turns the typed-vs-virtual ratio into a pass/fail regression
 * guard for ctest; scripts/ci.sh exports the JSON every run.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "core/policy_factory.hh"
#include "obs/profiler.hh"
#include "stats/stats.hh"
#include "trace/record.hh"
#include "util/args.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace rlr;

namespace
{

/** Zero-state backing memory with a fixed miss latency. */
class FlatMemory : public cache::MemoryLevel
{
  public:
    uint64_t
    access(const cache::MemRequest &req, uint64_t now) override
    {
        if (req.type == trace::AccessType::Writeback)
            return now;
        return now + 100;
    }
    const std::string &name() const override { return name_; }

  private:
    std::string name_ = "flat";
};

/** One pre-generated trace record (kept minimal for replay). */
struct Access
{
    uint64_t address;
    uint64_t pc;
    trace::AccessType type;
};

/** Deterministic hot/streaming/uniform mix over a line pool. */
std::vector<Access>
makeTrace(uint64_t accesses, uint32_t pool_lines, uint64_t seed)
{
    util::Rng rng(seed ^ 0x51417ULL);
    const uint32_t hot = std::max<uint32_t>(1, pool_lines / 64);
    std::vector<Access> trace;
    trace.reserve(accesses);
    for (uint64_t i = 0; i < accesses; ++i) {
        uint64_t idx;
        const double pick = rng.nextDouble();
        if (pick < 0.35)
            idx = rng.nextBounded(hot);
        else if (pick < 0.50)
            idx = i % pool_lines;
        else
            idx = rng.nextBounded(pool_lines);
        Access a;
        a.address = idx * 64;
        const double t = rng.nextDouble();
        if (t < 0.10)
            a.type = trace::AccessType::Rfo;
        else if (t < 0.20)
            a.type = trace::AccessType::Prefetch;
        else if (t < 0.30)
            a.type = trace::AccessType::Writeback;
        else
            a.type = trace::AccessType::Load;
        a.pc = a.type == trace::AccessType::Writeback
                   ? 0
                   : 0x400000 + 4 * rng.nextBounded(256);
        trace.push_back(a);
    }
    return trace;
}

/**
 * Frozen pre-optimization hot path: array-of-structs blocks,
 * string-keyed StatSet lookups on every access, a fresh BlockView
 * vector per victim fill, and virtual dispatch into the policy.
 * The *protocol* (MSHR reservation, writeback-bypass denial) is
 * the fixed one, so all counters must match the production cache —
 * only the per-access software cost is frozen at the old design.
 */
class BaselineCache
{
  public:
    BaselineCache(cache::CacheGeometry geom,
                  std::unique_ptr<cache::ReplacementPolicy> policy,
                  cache::MemoryLevel *next)
        : geom_(std::move(geom)), policy_(std::move(policy)),
          next_(next), stats_(geom_.name)
    {
        geom_.validate();
        blocks_.resize(static_cast<size_t>(geom_.numSets()) *
                       geom_.ways);
        policy_->bind(geom_);
    }

    uint64_t
    access(const cache::MemRequest &req, uint64_t now)
    {
        now += geom_.latency;
        const uint64_t line =
            cache::CacheGeometry::lineAddress(req.address);
        const uint64_t tag = geom_.tag(line);
        const uint32_t set = geom_.setIndex(line);

        uint32_t hit_way = geom_.ways;
        for (uint32_t w = 0; w < geom_.ways; ++w) {
            const Block &b = block(set, w);
            if (b.valid && b.tag == tag) {
                hit_way = w;
                break;
            }
        }
        const bool demand = trace::isDemand(req.type);

        if (hit_way != geom_.ways) {
            Block &b = block(set, hit_way);
            const bool merged = b.ready_at > now;
            if (demand)
                b.prefetch = false;
            if (req.type == trace::AccessType::Writeback)
                b.dirty = true;
            if (merged) {
                countAccess(req.type, false);
                ++stats_.counter("mshr_merges");
                return std::max(now, b.ready_at);
            }
            countAccess(req.type, true);
            cache::AccessContext ctx;
            ctx.cpu = req.cpu;
            ctx.set = set;
            ctx.way = hit_way;
            ctx.full_addr = req.address;
            ctx.pc = req.pc;
            ctx.type = req.type;
            ctx.hit = true;
            policy_->onAccess(ctx);
            return now;
        }

        countAccess(req.type, false);
        if (req.type == trace::AccessType::Writeback) {
            fill(req, now, /*dirty=*/true);
            return now;
        }

        const uint64_t issue = now;
        uint64_t ready = next_->access(req, issue);
        ready = std::max(ready, issue);
        const uint64_t start = mshrAdmit(issue);
        ready += start - issue;
        inflight_.push(ready);
        fill(req, ready, /*dirty=*/false);
        return ready;
    }

    const stats::StatSet &statSet() const { return stats_; }

  private:
    struct Block
    {
        bool valid = false;
        bool dirty = false;
        bool prefetch = false;
        uint64_t tag = 0;
        uint64_t address = 0;
        uint64_t ready_at = 0;
    };

    Block &
    block(uint32_t set, uint32_t way)
    {
        return blocks_[static_cast<size_t>(set) * geom_.ways + way];
    }

    /** The frozen key builder: string temporaries per call. */
    static std::string
    typeKey(trace::AccessType type, const char *suffix)
    {
        return std::string(trace::accessTypeName(type)) + "_" +
               suffix;
    }

    void
    countAccess(trace::AccessType type, bool hit)
    {
        // The frozen cost model: string-keyed map lookups on every
        // single access.
        ++stats_.counter(typeKey(type, "access"));
        ++stats_.counter(typeKey(type, hit ? "hit" : "miss"));
    }

    uint64_t
    mshrAdmit(uint64_t now)
    {
        while (!inflight_.empty() && inflight_.top() <= now)
            inflight_.pop();
        if (inflight_.size() >= geom_.mshrs) {
            now = std::max(now, inflight_.top());
            inflight_.pop();
            ++stats_.counter("mshr_stalls");
        }
        return now;
    }

    void
    fill(const cache::MemRequest &req, uint64_t ready, bool dirty)
    {
        const uint64_t line =
            cache::CacheGeometry::lineAddress(req.address);
        const uint32_t set = geom_.setIndex(line);

        uint32_t way = geom_.ways;
        for (uint32_t w = 0; w < geom_.ways; ++w) {
            if (!block(set, w).valid) {
                way = w;
                break;
            }
        }

        if (way == geom_.ways) {
            // The frozen cost model: one heap allocation per
            // victim selection.
            std::vector<cache::BlockView> views(geom_.ways);
            for (uint32_t w = 0; w < geom_.ways; ++w) {
                const Block &b = block(set, w);
                views[w] = cache::BlockView{b.valid, b.dirty,
                                            b.prefetch, b.address};
            }
            cache::AccessContext ctx;
            ctx.cpu = req.cpu;
            ctx.set = set;
            ctx.full_addr = req.address;
            ctx.pc = req.pc;
            ctx.type = req.type;
            ctx.hit = false;
            way = policy_->findVictim(ctx, views);
            if (way == cache::ReplacementPolicy::kBypass) {
                if (req.type != trace::AccessType::Writeback) {
                    ++stats_.counter("bypasses");
                    return;
                }
                ++stats_.counter("wb_bypass_denied");
                ctx.allow_bypass = false;
                way = policy_->findVictim(ctx, views);
                if (way == cache::ReplacementPolicy::kBypass)
                    way = 0;
            }
            util::ensure(way < geom_.ways,
                         "BaselineCache: bad victim way");

            Block &victim = block(set, way);
            if (victim.valid) {
                policy_->onEviction(
                    set, way,
                    cache::BlockView{victim.valid, victim.dirty,
                                     victim.prefetch,
                                     victim.address});
                ++stats_.counter("evictions");
                if (victim.dirty) {
                    cache::MemRequest wb;
                    wb.address = victim.address;
                    wb.pc = 0;
                    wb.type = trace::AccessType::Writeback;
                    wb.cpu = req.cpu;
                    ++stats_.counter("writebacks_issued");
                    next_->access(wb, ready);
                }
            }
        }

        Block &b = block(set, way);
        b.valid = true;
        b.dirty = dirty;
        b.prefetch = req.type == trace::AccessType::Prefetch;
        b.tag = geom_.tag(line);
        b.address = line;
        b.ready_at = ready;

        cache::AccessContext ctx;
        ctx.cpu = req.cpu;
        ctx.set = set;
        ctx.way = way;
        ctx.full_addr = req.address;
        ctx.pc = req.pc;
        ctx.type = req.type;
        ctx.hit = false;
        policy_->onAccess(ctx);
    }

    cache::CacheGeometry geom_;
    std::unique_ptr<cache::ReplacementPolicy> policy_;
    cache::MemoryLevel *next_;
    stats::StatSet stats_;
    std::vector<Block> blocks_;
    std::priority_queue<uint64_t, std::vector<uint64_t>,
                        std::greater<>>
        inflight_;
};

cache::CacheGeometry
benchGeometry()
{
    cache::CacheGeometry geom;
    geom.name = "llc";
    geom.size_bytes = 1 * 1024 * 1024; // 1024 sets x 16 ways
    geom.ways = 16;
    geom.latency = 20;
    geom.mshrs = 16;
    return geom;
}

/** Replay outcome of one (policy, mode) measurement. */
struct Replay
{
    /** Best observed throughput, simulated accesses/second. */
    double mps = 0.0;
    /** Sum of per-access completion times (cross-mode oracle). */
    uint64_t time_checksum = 0;
    /** Final counters (cross-mode oracle). */
    std::vector<std::pair<std::string, uint64_t>> stats;
};

/**
 * Replay the trace @p reps times on fresh caches built by
 * @p make_cache (returning a cache with access()/statSet());
 * keep the fastest wall-clock rep and the (rep-invariant)
 * counters + completion-time checksum of the last. The replay
 * loop calls access() directly — no std::function indirection —
 * so the measured cost is the cache's own hot path.
 */
template <class CacheT, class MakeFn>
Replay
measure(const std::vector<Access> &trace, unsigned reps,
        MakeFn make_cache)
{
    Replay out;
    for (unsigned r = 0; r < reps; ++r) {
        std::unique_ptr<CacheT> c = make_cache();
        uint64_t checksum = 0;
        uint64_t now = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (const Access &a : trace) {
            cache::MemRequest req;
            req.address = a.address;
            req.pc = a.pc;
            req.type = a.type;
            checksum += c->access(req, now);
            now += 4;
        }
        const auto t1 = std::chrono::steady_clock::now();
        const double secs =
            std::chrono::duration<double>(t1 - t0).count();
        if (secs > 0.0) {
            out.mps = std::max(
                out.mps, static_cast<double>(trace.size()) / secs);
        }
        out.time_checksum = checksum;
        out.stats = c->statSet().items();
    }
    return out;
}

/**
 * Compare two counter dumps as sparse maps: every name present on
 * either side must have the same value on both (absent == 0, so
 * eagerly- and lazily-registered stat sets compare equal).
 * @return "" when equal, else the first difference
 */
std::string
countsDiff(const std::vector<std::pair<std::string, uint64_t>> &a,
           const std::vector<std::pair<std::string, uint64_t>> &b)
{
    auto lookup =
        [](const std::vector<std::pair<std::string, uint64_t>> &v,
           const std::string &name) -> uint64_t {
        for (const auto &[n, val] : v)
            if (n == name)
                return val;
        return 0;
    };
    for (const auto &[name, val] : a) {
        if (lookup(b, name) != val)
            return util::format("{}: {} vs {}", name, val,
                                lookup(b, name));
    }
    for (const auto &[name, val] : b) {
        if (lookup(a, name) != val)
            return util::format("{}: {} vs {}", name,
                                lookup(a, name), val);
    }
    return "";
}

/** JSON string escaping (policy names reach the export). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/**
 * Hot-path phase times from one profiled replay of the typed
 * build (obs scoped profiler, flattened across the call tree).
 * lookup/victim/policy are span totals; fill is the fill span's
 * self time (victim handling is nested inside it); other is the
 * access span's self time; total is the access span's total.
 */
struct PhaseBreakdown
{
    uint64_t lookup_ns = 0;
    uint64_t victim_ns = 0;
    uint64_t policy_ns = 0;
    uint64_t fill_ns = 0;
    uint64_t other_ns = 0;
    uint64_t total_ns = 0;
};

void
accumulatePhases(const obs::ProfileNode &node, PhaseBreakdown &pb)
{
    if (node.name == "sim.llc.lookup")
        pb.lookup_ns += node.total_ns;
    else if (node.name == "sim.llc.victim")
        pb.victim_ns += node.total_ns;
    else if (node.name == "sim.llc.policy")
        pb.policy_ns += node.total_ns;
    else if (node.name == "sim.llc.fill")
        pb.fill_ns += node.self_ns;
    else if (node.name == "sim.llc.access") {
        pb.other_ns += node.self_ns;
        pb.total_ns += node.total_ns;
    }
    for (const auto &c : node.children)
        accumulatePhases(c, pb);
}

/**
 * One extra (untimed) replay of the typed build with the scoped
 * profiler armed, yielding the per-phase breakdown. Kept separate
 * from the throughput reps so profiling overhead never pollutes
 * the Macc/s numbers.
 */
template <class MakeFn>
PhaseBreakdown
profilePhases(const std::vector<Access> &trace, MakeFn make_cache)
{
    obs::Profiler &prof = obs::Profiler::instance();
    prof.reset();
    prof.setEnabled(true);
    {
        auto c = make_cache();
        c->setProfiled(true);
        uint64_t now = 0;
        for (const Access &a : trace) {
            cache::MemRequest req;
            req.address = a.address;
            req.pc = a.pc;
            req.type = a.type;
            c->access(req, now);
            now += 4;
        }
    }
    prof.setEnabled(false);
    const obs::ProfileData data = prof.collect();
    prof.reset();
    PhaseBreakdown pb;
    for (const auto &r : data.roots)
        accumulatePhases(r, pb);
    return pb;
}

/** One policy's benchmark row. */
struct PolicyResult
{
    std::string policy;
    std::string dispatch;
    double typed_mps = 0.0;
    double virtual_mps = 0.0;
    double baseline_mps = 0.0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t bypasses = 0;
    bool counts_match = false;
    PhaseBreakdown phases;

    double
    speedupVsVirtual() const
    {
        return virtual_mps > 0.0 ? typed_mps / virtual_mps : 0.0;
    }
    double
    speedupVsBaseline() const
    {
        return baseline_mps > 0.0 ? typed_mps / baseline_mps : 0.0;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser parser(
        "LLC hot-path throughput benchmark: simulated accesses/sec "
        "per policy under typed (devirtualized), forced-virtual, "
        "and frozen pre-optimization baseline builds, with a "
        "built-in cross-build equivalence oracle");
    parser.addOption("policies", "",
                     "Comma-separated policies (default: "
                     "LRU,SRRIP,BRRIP,DRRIP,SHiP,SHiP++,RLR)");
    parser.addOption("accesses", "300000",
                     "Trace length replayed per measurement");
    parser.addOption("reps", "3",
                     "Timed repetitions per build (best is kept)");
    parser.addOption("seed", "42", "Trace random seed");
    parser.addOption("pool", "24576",
                     "Distinct lines in the trace's address pool "
                     "(default: 1.5x the benchmark LLC's 16384 "
                     "lines, a mixed hit/miss replay)");
    parser.addOption("json", "",
                     "Write the per-policy results as JSON "
                     "(BENCH_sim_throughput.json schema, "
                     "docs/PERFORMANCE.md)");
    parser.addOption("min-speedup", "0.9",
                     "Minimum typed/virtual throughput ratio "
                     "accepted by --check-speedup");
    parser.addFlag("check-speedup",
                   "Fail (exit 1) when any policy's typed build is "
                   "slower than min-speedup x its virtual build");
    parser.addFlag("stable-json",
                   "Zero wall-clock throughput fields in the JSON "
                   "export so same-seed runs are byte-identical");
    parser.addFlag("csv", "Emit CSV instead of an aligned table");
    if (!parser.parse(argc, argv))
        return 0;

    std::vector<std::string> policies = parser.getList("policies");
    if (policies.empty()) {
        policies = {"LRU",  "SRRIP",  "BRRIP", "DRRIP",
                    "SHiP", "SHiP++", "RLR"};
    }
    const uint64_t accesses = parser.getUint("accesses");
    const unsigned reps =
        static_cast<unsigned>(std::max<uint64_t>(
            1, parser.getUint("reps")));
    const uint64_t seed = parser.getUint("seed");
    const uint32_t pool =
        static_cast<uint32_t>(std::max<uint64_t>(
            1, parser.getUint("pool")));
    const std::string json = parser.get("json");
    const double min_speedup = parser.getDouble("min-speedup");
    const bool check_speedup = parser.getFlag("check-speedup");
    const bool stable = parser.getFlag("stable-json");

    const auto trace = makeTrace(accesses, pool, seed);

    std::vector<PolicyResult> results;
    bool oracle_failed = false;
    for (const auto &name : policies) {
        PolicyResult row;
        row.policy = name;

        FlatMemory mem;
        std::string dispatch;
        auto make_prod = [&](bool force_generic) {
            auto c = std::make_unique<cache::Cache>(
                benchGeometry(), core::makePolicy(name, seed),
                &mem);
            c->setForceGenericDispatch(force_generic);
            dispatch = c->dispatchKind();
            return c;
        };
        const Replay typed = measure<cache::Cache>(
            trace, reps, [&] { return make_prod(false); });
        row.dispatch = dispatch; // typed build's kind
        const Replay virt = measure<cache::Cache>(
            trace, reps, [&] { return make_prod(true); });
        const Replay base =
            measure<BaselineCache>(trace, reps, [&] {
                return std::make_unique<BaselineCache>(
                    benchGeometry(),
                    core::makePolicy(name, seed), &mem);
            });

        row.typed_mps = typed.mps;
        row.virtual_mps = virt.mps;
        row.baseline_mps = base.mps;
        row.phases = profilePhases(
            trace, [&] { return make_prod(false); });

        // Cross-build equivalence oracle: the three hot paths must
        // be behaviourally indistinguishable.
        std::string err = countsDiff(typed.stats, virt.stats);
        if (err.empty())
            err = countsDiff(typed.stats, base.stats);
        if (err.empty() &&
            typed.time_checksum != virt.time_checksum) {
            err = util::format(
                "completion-time checksum typed={} virtual={}",
                typed.time_checksum, virt.time_checksum);
        }
        if (err.empty() &&
            typed.time_checksum != base.time_checksum) {
            err = util::format(
                "completion-time checksum typed={} baseline={}",
                typed.time_checksum, base.time_checksum);
        }
        row.counts_match = err.empty();
        if (!row.counts_match) {
            oracle_failed = true;
            std::printf("EQUIVALENCE FAILURE [%s]: %s\n",
                        name.c_str(), err.c_str());
        }

        auto find = [&](const char *n) -> uint64_t {
            uint64_t total = 0;
            for (const auto &[key, val] : typed.stats) {
                if (key == n ||
                    (std::string(n) == "hit" &&
                     key.size() > 4 &&
                     key.compare(key.size() - 4, 4, "_hit") == 0) ||
                    (std::string(n) == "miss" &&
                     key.size() > 5 &&
                     key.compare(key.size() - 5, 5, "_miss") == 0))
                    total += val;
            }
            return total;
        };
        row.hits = find("hit");
        row.misses = find("miss");
        row.evictions = find("evictions");
        row.bypasses = find("bypasses");
        results.push_back(std::move(row));
    }

    util::Table table({"Policy", "Dispatch", "Typed Macc/s",
                       "Virtual Macc/s", "Baseline Macc/s",
                       "vs virtual", "vs baseline", "Match"});
    std::vector<double> vs_virtual, vs_baseline;
    for (const auto &r : results) {
        table.addRow({r.policy, r.dispatch,
                      util::Table::fmt(r.typed_mps / 1e6, 2),
                      util::Table::fmt(r.virtual_mps / 1e6, 2),
                      util::Table::fmt(r.baseline_mps / 1e6, 2),
                      util::Table::fmt(r.speedupVsVirtual(), 2),
                      util::Table::fmt(r.speedupVsBaseline(), 2),
                      r.counts_match ? "yes" : "NO"});
        if (r.speedupVsVirtual() > 0.0)
            vs_virtual.push_back(r.speedupVsVirtual());
        if (r.speedupVsBaseline() > 0.0)
            vs_baseline.push_back(r.speedupVsBaseline());
    }
    std::puts("=== LLC hot-path throughput ===");
    std::fputs((parser.getFlag("csv") ? table.csv()
                                      : table.render())
                   .c_str(),
               stdout);
    const double geo_virtual = stats::geomean(vs_virtual);
    const double geo_baseline = stats::geomean(vs_baseline);
    std::printf("geomean speedup: %.2fx vs virtual, %.2fx vs "
                "baseline\n",
                geo_virtual, geo_baseline);

    util::Table phase_table({"Policy", "lookup ms", "victim ms",
                             "policy ms", "fill ms", "other ms",
                             "total ms"});
    for (const auto &r : results) {
        auto ms = [](uint64_t ns) {
            return util::Table::fmt(
                static_cast<double>(ns) / 1e6, 2);
        };
        phase_table.addRow({r.policy, ms(r.phases.lookup_ns),
                            ms(r.phases.victim_ns),
                            ms(r.phases.policy_ns),
                            ms(r.phases.fill_ns),
                            ms(r.phases.other_ns),
                            ms(r.phases.total_ns)});
    }
    std::puts("\n=== Hot-path phase times (profiled typed "
              "replay) ===");
    std::fputs((parser.getFlag("csv") ? phase_table.csv()
                                      : phase_table.render())
                   .c_str(),
               stdout);

    if (!json.empty()) {
        FILE *f = std::fopen(json.c_str(), "w");
        if (!f)
            util::fatal("cannot write '{}'", json);
        auto num = [&](double v) { return stable ? 0.0 : v; };
        auto nsv = [&](uint64_t v) {
            return static_cast<unsigned long long>(stable ? 0 : v);
        };
        std::fprintf(f,
                     "{\n  \"benchmark\": \"sim_throughput\",\n"
                     "  \"accesses\": %llu,\n  \"reps\": %u,\n"
                     "  \"seed\": %llu,\n  \"pool\": %u,\n"
                     "  \"stable\": %s,\n  \"policies\": [\n",
                     static_cast<unsigned long long>(accesses),
                     reps,
                     static_cast<unsigned long long>(seed), pool,
                     stable ? "true" : "false");
        for (size_t i = 0; i < results.size(); ++i) {
            const auto &r = results[i];
            std::fprintf(
                f,
                "    {\"policy\": \"%s\", \"dispatch\": \"%s\", "
                "\"typed_mps\": %.0f, \"virtual_mps\": %.0f, "
                "\"baseline_mps\": %.0f, "
                "\"speedup_vs_virtual\": %.3f, "
                "\"speedup_vs_baseline\": %.3f, "
                "\"hits\": %llu, \"misses\": %llu, "
                "\"evictions\": %llu, \"bypasses\": %llu, "
                "\"counts_match\": %s, "
                "\"phase_self_ns\": {\"lookup\": %llu, "
                "\"victim\": %llu, \"policy\": %llu, "
                "\"fill\": %llu, \"other\": %llu, "
                "\"total\": %llu}}%s\n",
                jsonEscape(r.policy).c_str(),
                jsonEscape(r.dispatch).c_str(), num(r.typed_mps),
                num(r.virtual_mps), num(r.baseline_mps),
                num(r.speedupVsVirtual()),
                num(r.speedupVsBaseline()),
                static_cast<unsigned long long>(r.hits),
                static_cast<unsigned long long>(r.misses),
                static_cast<unsigned long long>(r.evictions),
                static_cast<unsigned long long>(r.bypasses),
                r.counts_match ? "true" : "false",
                nsv(r.phases.lookup_ns), nsv(r.phases.victim_ns),
                nsv(r.phases.policy_ns), nsv(r.phases.fill_ns),
                nsv(r.phases.other_ns), nsv(r.phases.total_ns),
                i + 1 < results.size() ? "," : "");
        }
        std::fprintf(f,
                     "  ],\n"
                     "  \"geomean_speedup_vs_virtual\": %.3f,\n"
                     "  \"geomean_speedup_vs_baseline\": %.3f\n}\n",
                     num(geo_virtual), num(geo_baseline));
        std::fclose(f);
        std::printf("wrote %s\n", json.c_str());
    }

    if (oracle_failed)
        return 1;
    if (check_speedup) {
        // A fresh typed-vs-virtual measurement for one policy.
        // Scheduler noise can make either build look slow, but a
        // true regression deflates every measurement, so the
        // guard re-measures before condemning and keeps the best
        // ratio it has seen.
        auto remeasure = [&](const std::string &name) {
            FlatMemory mem;
            auto make_prod = [&](bool force_generic) {
                auto c = std::make_unique<cache::Cache>(
                    benchGeometry(),
                    core::makePolicy(name, seed), &mem);
                c->setForceGenericDispatch(force_generic);
                return c;
            };
            const Replay typed = measure<cache::Cache>(
                trace, reps, [&] { return make_prod(false); });
            const Replay virt = measure<cache::Cache>(
                trace, reps, [&] { return make_prod(true); });
            return virt.mps > 0.0 ? typed.mps / virt.mps : 0.0;
        };
        bool slow = false;
        for (const auto &r : results) {
            double ratio = r.speedupVsVirtual();
            for (int retry = 0;
                 ratio < min_speedup && retry < 2; ++retry)
                ratio = std::max(ratio, remeasure(r.policy));
            if (ratio < min_speedup) {
                slow = true;
                std::printf(
                    "SPEEDUP REGRESSION [%s]: typed %.2fx virtual "
                    "(< %.2f)\n",
                    r.policy.c_str(), ratio, min_speedup);
            }
        }
        if (slow)
            return 1;
    }
    return 0;
}
