#include "ml/mlp.hh"

#include <cmath>

#include "util/logging.hh"

namespace rlr::ml
{

Mlp::Mlp(MlpConfig config, uint64_t seed)
    : config_(config),
      w1_(config.hidden, config.inputs),
      b1_(config.hidden, 0.0f),
      w2_(config.outputs, config.hidden),
      b2_(config.outputs, 0.0f),
      v_w1_(config.hidden, config.inputs),
      v_b1_(config.hidden, 0.0f),
      v_w2_(config.outputs, config.hidden),
      v_b2_(config.outputs, 0.0f)
{
    util::Rng rng(seed);
    w1_.initXavier(rng);
    w2_.initXavier(rng);
    w1_init_ = w1_;
}

std::vector<float>
Mlp::forward(std::span<const float> input) const
{
    std::vector<float> hidden(config_.hidden);
    w1_.matvec(input, hidden);
    for (size_t h = 0; h < hidden.size(); ++h)
        hidden[h] = std::tanh(hidden[h] + b1_[h]);

    std::vector<float> out(config_.outputs);
    w2_.matvec(hidden, out);
    for (size_t o = 0; o < out.size(); ++o)
        out[o] += b2_[o];
    return out;
}

float
Mlp::trainAction(std::span<const float> input, size_t action,
                 float target)
{
    util::ensure(action < config_.outputs, "Mlp: bad action");

    // Forward, keeping activations for backprop.
    std::vector<float> hidden(config_.hidden);
    w1_.matvec(input, hidden);
    for (size_t h = 0; h < hidden.size(); ++h)
        hidden[h] = std::tanh(hidden[h] + b1_[h]);

    float q = b2_[action];
    const auto w2_row = w2_.row(action);
    for (size_t h = 0; h < hidden.size(); ++h)
        q += w2_row[h] * hidden[h];

    const float err = target - q;
    last_loss_ = 0.5 * static_cast<double>(err) * err;

    // Backprop: dL/dq = -err (loss 0.5*err^2 wrt prediction).
    // Output layer: grad_w2[action][h] = -err * hidden[h].
    // Hidden: delta_h = -err * w2[action][h] * (1 - hidden^2).
    const float lr = config_.learning_rate;
    const float mu = config_.momentum;

    std::vector<float> delta_h(config_.hidden);
    for (size_t h = 0; h < config_.hidden; ++h) {
        delta_h[h] = err * w2_row[h] *
                     (1.0f - hidden[h] * hidden[h]);
    }

    // Momentum-SGD on the output row and bias.
    {
        auto v_row = v_w2_.row(action);
        auto w_row = w2_.row(action);
        for (size_t h = 0; h < config_.hidden; ++h) {
            v_row[h] = mu * v_row[h] + lr * err * hidden[h];
            w_row[h] += v_row[h];
        }
        v_b2_[action] = mu * v_b2_[action] + lr * err;
        b2_[action] += v_b2_[action];
    }

    // Hidden layer.
    for (size_t h = 0; h < config_.hidden; ++h) {
        const float dh = delta_h[h];
        if (dh == 0.0f)
            continue;
        auto v_row = v_w1_.row(h);
        auto w_row = w1_.row(h);
        const float step = lr * dh;
        for (size_t i = 0; i < config_.inputs; ++i) {
            if (input[i] == 0.0f) {
                v_row[i] = mu * v_row[i];
            } else {
                v_row[i] = mu * v_row[i] + step * input[i];
            }
            w_row[i] += v_row[i];
        }
        v_b1_[h] = mu * v_b1_[h] + step;
        b1_[h] += v_b1_[h];
    }
    return err;
}

std::vector<double>
Mlp::inputSaliencyDelta() const
{
    std::vector<double> out(config_.inputs, 0.0);
    for (size_t h = 0; h < config_.hidden; ++h) {
        const auto row = w1_.row(h);
        const auto init = w1_init_.row(h);
        for (size_t i = 0; i < config_.inputs; ++i)
            out[i] += std::fabs(
                static_cast<double>(row[i]) - init[i]);
    }
    for (auto &v : out)
        v /= static_cast<double>(config_.hidden);
    return out;
}

std::vector<double>
Mlp::inputSaliency() const
{
    std::vector<double> out(config_.inputs, 0.0);
    for (size_t h = 0; h < config_.hidden; ++h) {
        const auto row = w1_.row(h);
        for (size_t i = 0; i < config_.inputs; ++i)
            out[i] += std::fabs(static_cast<double>(row[i]));
    }
    for (auto &v : out)
        v /= static_cast<double>(config_.hidden);
    return out;
}

} // namespace rlr::ml
