/**
 * @file
 * Trace-driven out-of-order core model (the paper's Table III
 * core: 6-stage pipeline, 3-issue O3, 256-entry ROB).
 *
 * The model exposes exactly the behaviours that make replacement
 * policies matter for IPC: a finite instruction window that fills
 * behind long-latency misses, register dependences that serialize
 * pointer chases (low MLP) but not streams (high MLP), store
 * traffic that creates RFOs and writebacks, instruction fetch
 * through the L1I, and branch mispredictions that throttle the
 * front end.
 */

#ifndef RLR_CPU_CORE_HH
#define RLR_CPU_CORE_HH

#include <array>
#include <cstdint>
#include <deque>

#include "cache/memory_interface.hh"
#include "cpu/branch_predictor.hh"
#include "stats/registry.hh"
#include "stats/stats.hh"
#include "trace/record.hh"
#include "util/cancel_token.hh"

namespace rlr::cpu
{

/** Core configuration (defaults = the paper's Table III). */
struct CoreConfig
{
    uint32_t rob_size = 256;
    /** Dispatch/issue width (instructions per cycle). */
    uint32_t width = 3;
    /** Pipeline refill cycles after a mispredicted branch. */
    uint32_t mispredict_penalty = 10;
    /**
     * Fetch latency hidden by the pipelined front end; only L1I
     * latency beyond this stalls dispatch (i.e. L1I hits are
     * free, misses stall).
     */
    uint32_t hidden_fetch_latency = 4;
};

/** One simulated core. */
class O3Core
{
  public:
    /**
     * @param config core parameters
     * @param cpu_id core id propagated into memory requests
     * @param l1i instruction cache port
     * @param l1d data cache port
     */
    O3Core(CoreConfig config, uint8_t cpu_id,
           cache::MemoryLevel *l1i, cache::MemoryLevel *l1d);

    /** Execute exactly one instruction. */
    void step(const trace::Instruction &instr);

    /**
     * Run @p count instructions from @p source (rewinding finite
     * sources when they end).
     * @throws util::CancelledError at the next checkpoint (every
     *         util::kCancelCheckInterval instructions) once an
     *         attached cancel token has been cancelled.
     */
    void run(trace::InstructionSource &source, uint64_t count);

    /**
     * Attach a cooperative cancellation token polled by run()
     * (borrowed; null detaches — the default, whose only cost is
     * one predicted branch per checkpoint, bounded <1% by
     * test_cancel_token).
     */
    void
    setCancelToken(const util::CancelToken *token)
    {
        cancel_ = token;
    }

    /** Current core cycle (monotonic). */
    uint64_t cycles() const { return cycle_; }

    /** Instructions executed since construction. */
    uint64_t instructions() const { return instructions_; }

    /**
     * Start the measurement window: IPC and stats are reported
     * from this point on (call at end of warmup).
     */
    void beginMeasurement();

    /** IPC over the measurement window. */
    double ipc() const;

    /** Instructions in the measurement window. */
    uint64_t measuredInstructions() const;

    /** Cycles in the measurement window. */
    uint64_t measuredCycles() const;

    stats::StatSet &statSet() { return stats_; }
    const GsharePredictor &branchPredictor() const { return bp_; }

    /**
     * Mount core statistics under @p prefix: instruction-mix and
     * stall counters, measured instructions/cycles, and derived
     * IPC and branch-misprediction rate.
     */
    void describeStats(stats::Registry &reg,
                       const std::string &prefix);

    uint8_t cpuId() const { return cpu_id_; }

  private:
    /** Model front-end effects for this instruction's PC. */
    void fetch(uint64_t pc);

    /** Retire from the ROB until there is room for one more. */
    void makeRoomInRob();

    CoreConfig config_;
    uint8_t cpu_id_;
    cache::MemoryLevel *l1i_;
    cache::MemoryLevel *l1d_;
    /** Borrowed cancellation token; null = no checkpointing. */
    const util::CancelToken *cancel_ = nullptr;
    GsharePredictor bp_;

    uint64_t cycle_ = 0;
    uint64_t instructions_ = 0;
    uint32_t width_slot_ = 0;
    uint64_t last_fetch_line_ = ~0ULL;
    /** Completion cycles of in-flight instructions (FIFO = ROB). */
    std::deque<uint64_t> rob_;
    /** Ready cycle of each architectural register. */
    std::array<uint64_t, trace::kNumRegs> reg_ready_{};

    uint64_t measure_start_instr_ = 0;
    uint64_t measure_start_cycle_ = 0;

    stats::StatSet stats_;
};

} // namespace rlr::cpu

#endif // RLR_CPU_CORE_HH
