#!/usr/bin/env bash
# Live-telemetry check (wired into ctest as `heartbeat_e2e`).
#
# Proves the heartbeat pipeline end to end on a real bench binary
# (docs/OBSERVABILITY.md):
#
#   1. live    : a sweep started with --heartbeat in the
#                background produces a parseable heartbeat file
#                while still running, and `inspect --top --once`
#                renders it (totals line, worker lines)
#   2. follow  : `inspect --top` without --once follows the file
#                and exits on its own once the sweep's final beat
#                reports done
#   3. final   : the final beat is done=true with every cell
#                accounted for and no workers still listed
#   4. profile : the same run's --profile export renders as a
#                call tree (`inspect --profile`) and as folded
#                stacks (--folded), with the sweep/sim spans
#                present
#
# Usage: scripts/heartbeat_e2e.sh [--fig12-bin=PATH]
#            [--inspect-bin=PATH]

set -eu

cd "$(dirname "$0")/.." || exit 1

fig12_bin="build/bench/fig12_mpki"
inspect_bin="build/tools/inspect"
for arg in "$@"; do
    case "$arg" in
        --fig12-bin=*) fig12_bin="${arg#--fig12-bin=}" ;;
        --inspect-bin=*) inspect_bin="${arg#--inspect-bin=}" ;;
        *)
            echo "heartbeat_e2e: unknown argument '$arg'" >&2
            echo "usage: $0 [--fig12-bin=PATH]" \
                 "[--inspect-bin=PATH]" >&2
            exit 2
            ;;
    esac
done

for bin in "$fig12_bin" "$inspect_bin"; do
    [ -x "$bin" ] || {
        echo "heartbeat_e2e: binary '$bin' not found; build" \
             "first (cmake --build build) or pass --fig12-bin= /" \
             "--inspect-bin=" >&2
        exit 2
    }
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

hb="$tmp/heartbeat.json"
prof="$tmp/profile.json"

echo "heartbeat_e2e: [1/4] background sweep with --heartbeat" >&2
# Long enough (and on few enough threads) that the sweep is still
# mid-flight when we sample the heartbeat.
"$fig12_bin" --workloads 429.mcf,403.gcc,470.lbm \
    --policies RLR --warmup 100000 --instructions 400000 \
    --seed 42 --threads 2 --heartbeat "$hb" \
    --heartbeat-period 0.05 --profile "$prof" \
    >"$tmp/sweep.out" 2>&1 &
sweep_pid=$!

# Wait for the first beat (the writer thread's first period).
live_frame=""
for _ in $(seq 1 100); do
    if [ -s "$hb" ] &&
        "$inspect_bin" --top "$hb" --once >"$tmp/top_live.out" \
            2>/dev/null; then
        live_frame=yes
        break
    fi
    sleep 0.05
done
if [ -z "$live_frame" ]; then
    echo "heartbeat_e2e: no parseable heartbeat appeared while" \
         "the sweep ran" >&2
    kill "$sweep_pid" 2>/dev/null || true
    wait "$sweep_pid" 2>/dev/null || true
    exit 1
fi
grep -q "sweep heartbeat  seq" "$tmp/top_live.out" || {
    echo "heartbeat_e2e: --top frame missing the totals line:" >&2
    cat "$tmp/top_live.out" >&2
    exit 1
}
grep -q "cells: .*running" "$tmp/top_live.out" || {
    echo "heartbeat_e2e: --top frame missing cell counts:" >&2
    cat "$tmp/top_live.out" >&2
    exit 1
}

echo "heartbeat_e2e: [2/4] inspect --top follows until done" >&2
# The follower must exit by itself when the final beat lands.
"$inspect_bin" --top "$hb" --interval 0.05 >"$tmp/top_follow.out" &
top_pid=$!

wait "$sweep_pid" || {
    echo "heartbeat_e2e: sweep failed:" >&2
    cat "$tmp/sweep.out" >&2
    exit 1
}
follow_rc=0
for _ in $(seq 1 100); do
    kill -0 "$top_pid" 2>/dev/null || break
    sleep 0.05
done
if kill -0 "$top_pid" 2>/dev/null; then
    echo "heartbeat_e2e: inspect --top did not exit after the" \
         "final done=true beat" >&2
    kill "$top_pid" 2>/dev/null || true
    exit 1
fi
wait "$top_pid" || follow_rc=$?
if [ "$follow_rc" -ne 0 ]; then
    echo "heartbeat_e2e: inspect --top exited with $follow_rc" >&2
    cat "$tmp/top_follow.out" >&2
    exit 1
fi
grep -q "\[DONE\]" "$tmp/top_follow.out" || {
    echo "heartbeat_e2e: follower never rendered the done" \
         "frame:" >&2
    cat "$tmp/top_follow.out" >&2
    exit 1
}

echo "heartbeat_e2e: [3/4] final beat accounts for every cell" >&2
"$inspect_bin" --top "$hb" --once >"$tmp/top_final.out"
grep -q "\[DONE\]" "$tmp/top_final.out" || {
    echo "heartbeat_e2e: final beat is not done=true:" >&2
    cat "$tmp/top_final.out" >&2
    exit 1
}
# fig12 prepends LRU: 3 workloads x 2 policies = 6 cells + the
# final frame must show no cell running and none failed.
grep -q "cells: 6/6 done (0 resumed), 0 failed, 0 running" \
    "$tmp/top_final.out" || {
    echo "heartbeat_e2e: unexpected final cell totals:" >&2
    cat "$tmp/top_final.out" >&2
    exit 1
}
grep -q "workers: (all finished)" "$tmp/top_final.out" || {
    echo "heartbeat_e2e: final frame still lists workers:" >&2
    cat "$tmp/top_final.out" >&2
    exit 1
}

echo "heartbeat_e2e: [4/4] profile export renders" >&2
"$inspect_bin" --profile "$prof" --folded "$tmp/folded.txt" \
    >"$tmp/profile.out"
grep -q "sweep.cell" "$tmp/profile.out" || {
    echo "heartbeat_e2e: profile tree missing sweep.cell:" >&2
    cat "$tmp/profile.out" >&2
    exit 1
}
grep -q "sim.run" "$tmp/profile.out" || {
    echo "heartbeat_e2e: profile tree missing sim.run:" >&2
    cat "$tmp/profile.out" >&2
    exit 1
}
grep -q "sweep.cell;sim.run" "$tmp/folded.txt" || {
    echo "heartbeat_e2e: folded stacks missing the" \
         "sweep.cell;sim.run path:" >&2
    head "$tmp/folded.txt" >&2
    exit 1
}

echo "heartbeat_e2e: OK (live frame rendered mid-sweep, follower" \
     "exited on done=true, 6/6 cells accounted, profile rendered)"
