#include "policies/ship.hh"

#include <stdexcept>

#include "util/bits.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace rlr::policies
{

ShipPolicy::ShipPolicy(ShipConfig config) : config_(config)
{
    util::ensure(config_.rrpv_bits >= 1 && config_.rrpv_bits <= 8,
                 "SHiP: bad RRPV width");
    util::ensure(config_.signature_bits >= 1 &&
                     config_.signature_bits <= 24,
                 "SHiP: bad signature width");
    util::ensure(config_.shct_bits >= 1 && config_.shct_bits <= 8,
                 "SHiP: bad SHCT counter width");
    max_rrpv_ =
        static_cast<uint8_t>((1u << config_.rrpv_bits) - 1);
}

void
ShipPolicy::bind(const cache::CacheGeometry &geom)
{
    ways_ = geom.ways;
    num_sets_ = geom.numSets();
    lines_.assign(static_cast<size_t>(num_sets_) * ways_,
                  LineState{});
    for (auto &ls : lines_)
        ls.rrpv = max_rrpv_;
    shct_.assign(1ULL << config_.signature_bits,
                 util::SatCounter(config_.shct_bits, 1));
}

ShipPolicy::LineState &
ShipPolicy::line(uint32_t set, uint32_t way)
{
    return lines_[static_cast<size_t>(set) * ways_ + way];
}

uint32_t
ShipPolicy::signature(uint64_t pc, trace::AccessType type) const
{
    // SHiP++ gives prefetch accesses their own signature space; in
    // base SHiP all types share the PC hash. We fold the access
    // type into the hash only for prefetches, which base SHiP
    // never sees distinct (its insertionRrpv ignores the bit).
    uint64_t key = pc >> 2;
    if (type == trace::AccessType::Prefetch)
        key ^= 0x2aaaaaaaaaaaULL;
    return static_cast<uint32_t>(
        util::foldXor(key, config_.signature_bits));
}

uint32_t
ShipPolicy::agingVictim(uint32_t set)
{
    const size_t base = static_cast<size_t>(set) * ways_;
    for (;;) {
        for (uint32_t w = 0; w < ways_; ++w) {
            if (lines_[base + w].rrpv >= max_rrpv_)
                return w;
        }
        for (uint32_t w = 0; w < ways_; ++w)
            ++lines_[base + w].rrpv;
    }
}

uint32_t
ShipPolicy::findVictim(const cache::AccessContext &ctx,
                       std::span<const cache::BlockView> blocks)
{
    (void)blocks;
    return agingVictim(ctx.set);
}

uint8_t
ShipPolicy::insertionRrpv(const cache::AccessContext &ctx,
                          uint32_t sig)
{
    if (ctx.type == trace::AccessType::Writeback)
        return max_rrpv_;
    // Dead-on-arrival signatures go to distant; everything else to
    // long re-reference (RRPV 2 of 3), as in the SHiP paper.
    if (shct_[sig].value() == 0)
        return max_rrpv_;
    return static_cast<uint8_t>(max_rrpv_ - 1);
}

void
ShipPolicy::handleHit(const cache::AccessContext &ctx, LineState &ls)
{
    (void)ctx;
    ls.rrpv = 0;
    if (!ls.outcome) {
        ls.outcome = true;
        ++shct_[ls.signature];
    }
}

void
ShipPolicy::onAccess(const cache::AccessContext &ctx)
{
    LineState &ls = line(ctx.set, ctx.way);
    if (ctx.hit) {
        if (ctx.type == trace::AccessType::Writeback) {
            // Writeback hits do not indicate reuse by the program;
            // leave the prediction state untouched.
            return;
        }
        handleHit(ctx, ls);
        return;
    }
    // Fill.
    const uint32_t sig = signature(ctx.pc, ctx.type);
    ls.signature = sig;
    ls.outcome = false;
    ls.prefetched = ctx.type == trace::AccessType::Prefetch;
    ls.rrpv = insertionRrpv(ctx, sig);
}

void
ShipPolicy::onEviction(uint32_t set, uint32_t way,
                       const cache::BlockView &block)
{
    (void)block;
    LineState &ls = line(set, way);
    if (!ls.outcome) {
        // Dead line: its signature produced no re-reference.
        --shct_[ls.signature];
    }
}

void
ShipPolicy::verifyInvariants(
    uint32_t set, std::span<const cache::BlockView> blocks) const
{
    (void)blocks;
    const size_t base = static_cast<size_t>(set) * ways_;
    const uint32_t sig_limit = 1u << config_.signature_bits;
    for (uint32_t w = 0; w < ways_; ++w) {
        const LineState &ls = lines_[base + w];
        if (ls.rrpv > max_rrpv_) {
            throw std::logic_error(util::format(
                "SHiP: RRPV {} of set {} way {} exceeds the "
                "{}-bit maximum {}",
                ls.rrpv, set, w, config_.rrpv_bits, max_rrpv_));
        }
        if (ls.signature >= sig_limit) {
            throw std::logic_error(util::format(
                "SHiP: signature {} of set {} way {} outside the "
                "{}-bit table",
                ls.signature, set, w, config_.signature_bits));
        }
        const auto &ctr = shct_[ls.signature];
        if (ctr.value() > ctr.maxValue()) {
            throw std::logic_error(util::format(
                "SHiP: SHCT[{}] = {} exceeds the {}-bit maximum",
                ls.signature, ctr.value(), config_.shct_bits));
        }
    }
}

cache::StorageOverhead
ShipPolicy::overhead() const
{
    cache::StorageOverhead o;
    // RRPV per line plus the SHCT, the accounting behind the
    // paper's 14KB figure for a 2MB/16-way LLC. (Per-line
    // signatures are sampled in the hardware proposal and not
    // charged.)
    o.bits_per_line = config_.rrpv_bits;
    o.global_bits = static_cast<double>(1ULL << config_.signature_bits) *
                    config_.shct_bits;
    return o;
}

uint64_t
ShipPolicy::shctValue(uint64_t pc) const
{
    return shct_[signature(pc, trace::AccessType::Load)].value();
}

ShipPPPolicy::ShipPPPolicy(ShipConfig config) : ShipPolicy(config) {}

uint8_t
ShipPPPolicy::insertionRrpv(const cache::AccessContext &ctx,
                            uint32_t sig)
{
    // SHiP++: writebacks inserted distant; saturated signatures
    // inserted at RRPV 0; prefetches get a separate signature
    // (handled in signature()) and default to distant when cold.
    if (ctx.type == trace::AccessType::Writeback)
        return max_rrpv_;
    const uint64_t ctr = shct_[sig].value();
    if (ctr == shct_[sig].maxValue())
        return 0;
    if (ctr == 0)
        return max_rrpv_;
    if (ctx.type == trace::AccessType::Prefetch)
        return static_cast<uint8_t>(max_rrpv_ - 1);
    return static_cast<uint8_t>(max_rrpv_ - 1);
}

void
ShipPPPolicy::handleHit(const cache::AccessContext &ctx,
                        LineState &ls)
{
    // Prefetch-aware promotion: a prefetch hit on a previously
    // prefetched, never-demanded line keeps it near-distant
    // rather than promoting to MRU.
    if (ctx.type == trace::AccessType::Prefetch) {
        if (ls.prefetched && !ls.outcome)
            ls.rrpv = static_cast<uint8_t>(max_rrpv_ - 1);
        else
            ls.rrpv = 0;
        return;
    }
    ls.rrpv = 0;
    ls.prefetched = false;
    if (!ls.outcome) {
        // Train only on the first re-reference.
        ls.outcome = true;
        ++shct_[ls.signature];
    }
}

cache::StorageOverhead
ShipPPPolicy::overhead() const
{
    cache::StorageOverhead o = ShipPolicy::overhead();
    // SHiP++ widens training state (per the paper's 20KB figure):
    // extra per-line bits for prefetch tracking and finer
    // insertion control.
    o.bits_per_line += 1.5;
    return o;
}

} // namespace rlr::policies
