file(REMOVE_RECURSE
  "CMakeFiles/test_belady.dir/test_belady.cc.o"
  "CMakeFiles/test_belady.dir/test_belady.cc.o.d"
  "test_belady"
  "test_belady.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_belady.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
