#include "stats/registry.hh"

#include <stdexcept>

#include "util/format.hh"

namespace rlr::stats
{

uint64_t
HistogramData::total() const
{
    uint64_t n = overflow;
    for (const uint64_t b : buckets)
        n += b;
    return n;
}

HistogramData
HistogramData::from(const util::Histogram &h)
{
    HistogramData d;
    d.bucket_width = h.bucketWidth();
    d.buckets.resize(h.numBuckets());
    for (size_t i = 0; i < h.numBuckets(); ++i)
        d.buckets[i] = h.bucketCount(i);
    d.overflow = h.overflowCount();
    return d;
}

uint64_t
Snapshot::counter(const std::string &path) const
{
    for (const auto &[k, v] : counters)
        if (k == path)
            return v;
    return 0;
}

double
Snapshot::formula(const std::string &path) const
{
    for (const auto &[k, v] : formulas)
        if (k == path)
            return v;
    return 0.0;
}

const HistogramData *
Snapshot::histogram(const std::string &path) const
{
    for (const auto &[k, v] : histograms)
        if (k == path)
            return &v;
    return nullptr;
}

Registry::Entry &
Registry::addEntry(const std::string &path, Kind kind,
                   std::string description)
{
    if (path.empty())
        throw std::invalid_argument("Registry: empty stat path");
    if (index_.count(path)) {
        throw std::invalid_argument(util::format(
            "Registry: duplicate stat path '{}'", path));
    }
    auto entry = std::make_unique<Entry>();
    entry->path = path;
    entry->description = std::move(description);
    entry->kind = kind;
    Entry &ref = *entry;
    index_[path] = entry.get();
    entries_.push_back(std::move(entry));
    return ref;
}

uint64_t &
Registry::counter(const std::string &path, std::string description)
{
    Entry &e =
        addEntry(path, Kind::OwnedCounter, std::move(description));
    e.owned_counter = std::make_unique<uint64_t>(0);
    return *e.owned_counter;
}

void
Registry::bindCounter(const std::string &path, CounterFn fn,
                      std::string description)
{
    Entry &e =
        addEntry(path, Kind::BoundCounter, std::move(description));
    e.counter_fn = std::move(fn);
}

void
Registry::bindStatSet(const std::string &prefix, const StatSet *set,
                      std::string description)
{
    if (set == nullptr)
        throw std::invalid_argument("Registry: null StatSet");
    Entry &e =
        addEntry(prefix, Kind::StatSetMount, std::move(description));
    e.stat_set = set;
}

util::Histogram &
Registry::distribution(const std::string &path, size_t nbuckets,
                       uint64_t bucket_width,
                       std::string description)
{
    Entry &e = addEntry(path, Kind::OwnedDistribution,
                        std::move(description));
    e.owned_hist =
        std::make_unique<util::Histogram>(nbuckets, bucket_width);
    return *e.owned_hist;
}

void
Registry::bindDistribution(const std::string &path,
                           const util::Histogram *hist,
                           std::string description)
{
    if (hist == nullptr)
        throw std::invalid_argument("Registry: null histogram");
    Entry &e = addEntry(path, Kind::BoundDistribution,
                        std::move(description));
    e.bound_hist = hist;
}

void
Registry::formula(const std::string &path, FormulaFn fn,
                  std::string description)
{
    Entry &e = addEntry(path, Kind::Formula, std::move(description));
    e.formula_fn = std::move(fn);
}

const Registry::Entry *
Registry::find(const std::string &path) const
{
    const auto it = index_.find(path);
    return it == index_.end() ? nullptr : it->second;
}

const StatSet *
Registry::findMount(const std::string &path, std::string &leaf) const
{
    // A mounted set's counters live at "<prefix>.<counter>"; walk
    // candidate prefixes from the right so the longest mount wins.
    size_t dot = path.rfind('.');
    while (dot != std::string::npos) {
        const Entry *e = find(path.substr(0, dot));
        if (e && e->kind == Kind::StatSetMount) {
            leaf = path.substr(dot + 1);
            return e->stat_set;
        }
        dot = dot == 0 ? std::string::npos
                       : path.rfind('.', dot - 1);
    }
    return nullptr;
}

bool
Registry::has(const std::string &path) const
{
    if (find(path))
        return true;
    std::string leaf;
    return findMount(path, leaf) != nullptr;
}

uint64_t
Registry::counterValue(const std::string &path) const
{
    if (const Entry *e = find(path)) {
        switch (e->kind) {
          case Kind::OwnedCounter:
            return *e->owned_counter;
          case Kind::BoundCounter:
            return e->counter_fn();
          default:
            return 0;
        }
    }
    std::string leaf;
    if (const StatSet *set = findMount(path, leaf))
        return set->value(leaf);
    return 0;
}

double
Registry::value(const std::string &path) const
{
    if (const Entry *e = find(path)) {
        if (e->kind == Kind::Formula)
            return e->formula_fn(*this);
    }
    return static_cast<double>(counterValue(path));
}

std::string
Registry::description(const std::string &path) const
{
    const Entry *e = find(path);
    return e ? e->description : "";
}

std::vector<std::string>
Registry::paths() const
{
    std::vector<std::string> out;
    for (const auto &e : entries_) {
        if (e->kind == Kind::StatSetMount) {
            for (const auto &[k, _] : e->stat_set->items())
                out.push_back(e->path + "." + k);
        } else {
            out.push_back(e->path);
        }
    }
    return out;
}

Snapshot
Registry::snapshot() const
{
    Snapshot snap;
    for (const auto &e : entries_) {
        switch (e->kind) {
          case Kind::OwnedCounter:
            snap.counters.emplace_back(e->path, *e->owned_counter);
            break;
          case Kind::BoundCounter:
            snap.counters.emplace_back(e->path, e->counter_fn());
            break;
          case Kind::StatSetMount:
            for (const auto &[k, v] : e->stat_set->items())
                snap.counters.emplace_back(e->path + "." + k, v);
            break;
          case Kind::OwnedDistribution:
            snap.histograms.emplace_back(
                e->path, HistogramData::from(*e->owned_hist));
            break;
          case Kind::BoundDistribution:
            snap.histograms.emplace_back(
                e->path, HistogramData::from(*e->bound_hist));
            break;
          case Kind::Formula:
            snap.formulas.emplace_back(e->path,
                                       e->formula_fn(*this));
            break;
        }
    }
    return snap;
}

} // namespace rlr::stats
