/**
 * @file
 * Least-recently-used replacement. The baseline every experiment
 * normalizes against, and the policy used while capturing LLC
 * traces for offline RL training (as in the paper).
 */

#ifndef RLR_POLICIES_LRU_HH
#define RLR_POLICIES_LRU_HH

#include <vector>

#include "cache/replacement.hh"

namespace rlr::policies
{

/** True LRU via per-line last-use timestamps. */
class LruPolicy : public cache::ReplacementPolicy
{
  public:
    void bind(const cache::CacheGeometry &geom) override;
    uint32_t
    findVictim(const cache::AccessContext &ctx,
               std::span<const cache::BlockView> blocks) override;
    void onAccess(const cache::AccessContext &ctx) override;
    void verifyInvariants(
        uint32_t set,
        std::span<const cache::BlockView> blocks) const override;
    std::string name() const override { return "LRU"; }
    cache::StorageOverhead overhead() const override;

    /** Recency rank of a way: 0 = LRU ... ways-1 = MRU (tests). */
    uint32_t recencyRank(uint32_t set, uint32_t way) const;

    /** Observational priority = recency rank (event log). */
    uint64_t
    victimPriority(uint32_t set, uint32_t way) const override
    {
        return recencyRank(set, way);
    }

  private:
    uint32_t ways_ = 0;
    uint64_t clock_ = 0;
    std::vector<uint64_t> last_use_;
};

} // namespace rlr::policies

#endif // RLR_POLICIES_LRU_HH
