/**
 * @file
 * Regenerates Figure 13: 4-core workload-mix performance (geomean
 * IPC speedup over LRU per mix, 8MB shared LLC). RLR uses the
 * multicore extension (core priority, Section IV-D).
 */

#include "bench/common.hh"

using namespace rlr;

int
main(int argc, char **argv)
{
    auto parser = bench::makeParser(
        "Figure 13: 4-core workload-mix speedup over LRU");
    parser.addOption("mixes", "10",
                     "Number of random 4-benchmark mixes");
    if (!parser.parse(argc, argv))
        return 0;
    auto opt = bench::makeOptions(parser);
    const size_t n_mixes = parser.getUint("mixes");

    auto policies = opt.policies;
    if (policies.empty())
        policies = {"DRRIP", "KPC-R",  "SHiP",    "RLR",
                    "RLR-mc", "Hawkeye", "SHiP++"};

    const auto mixes =
        bench::makeMixes(bench::specNames(), n_mixes, opt.seed);

    std::vector<std::string> all_policies = {"LRU"};
    all_policies.insert(all_policies.end(), policies.begin(),
                        policies.end());
    const auto cells =
        bench::multicoreSweep(opt, mixes, all_policies);

    std::vector<std::string> header = {"Mix"};
    for (const auto &p : policies)
        header.push_back(p);
    util::Table table(header);

    std::vector<std::vector<double>> ratios(policies.size());
    for (size_t m = 0; m < mixes.size(); ++m) {
        const auto &base = bench::findMixCell(cells, m, "LRU");
        std::string mix_name;
        for (const auto &w : mixes[m]) {
            if (!mix_name.empty())
                mix_name += '+';
            mix_name += w.substr(0, w.find('.'));
        }
        std::vector<std::string> row = {mix_name};
        for (size_t p = 0; p < policies.size(); ++p) {
            const auto &cell =
                bench::findMixCell(cells, m, policies[p]);
            const double ratio =
                cell.result.speedupOver(base.result);
            ratios[p].push_back(ratio);
            row.push_back(
                util::Table::fmt(100.0 * (ratio - 1.0), 2));
        }
        table.addRow(row);
    }
    std::vector<std::string> overall = {"Overall (geomean)"};
    for (size_t p = 0; p < policies.size(); ++p)
        overall.push_back(util::Table::fmt(
            100.0 * (stats::geomean(ratios[p]) - 1.0), 2));
    table.addRow(overall);

    std::puts("=== Figure 13: 4-core mix speedup over LRU (%) ===");
    bench::emit(opt, table);
    std::puts("\nPaper's shape (4-core SPEC2006): RLR > DRRIP by "
              "~2.3pp; PC-based SHiP/SHiP++/Hawkeye lead; KPC-R "
              "slightly ahead of RLR in multicore.");
    return bench::finish(opt);
}
