# Empty compiler generated dependencies file for fig1_hitrate.
# This may be replaced when dependencies are built.
