/**
 * @file
 * Declarative fault injection for sweep robustness testing.
 *
 * A FaultPlan is parsed from a `--faults` spec and consulted by
 * the SweepRunner for every cell. It generalizes the original
 * `--inject-fail <workload>:<policy>` hook into a small taxonomy
 * (docs/ROBUSTNESS.md):
 *
 *   throw            cell throws a non-retryable error
 *   transient[:N]    cell throws a RETRYABLE error on its first N
 *                    attempts (default 1), then succeeds
 *   hang             cell blocks until its cancel token fires
 *                    (exercises the --cell-timeout watchdog)
 *   abort            the PROCESS is SIGKILLed when the cell starts
 *                    (exercises crash-resume from the journal)
 *   corrupt-journal  the cell runs normally but its journal
 *                    record is truncated after the write
 *                    (exercises corrupt-record recovery)
 *   kill-worker      distributed sweeps: the WORKER PROCESS is
 *                    SIGKILLed when it first claims the cell
 *                    (fencing token 1); re-claims by survivors run
 *                    clean, so the sweep still converges
 *   stall-worker     distributed sweeps: the worker stops renewing
 *                    the cell's lease and sleeps past the TTL, so
 *                    the cell is re-issued and the straggler's
 *                    commit is fenced off
 *
 * Each entry targets cells by zero-based index (`hang@2`), by
 * `workload:policy` label (`throw@429.mcf:RLR`), or by a
 * deterministic per-cell rate (`transient%0.25`).
 */

#ifndef RLR_SIM_FAULT_PLAN_HH
#define RLR_SIM_FAULT_PLAN_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace rlr::sim
{

/**
 * A cell failure the SweepRunner may re-queue with backoff
 * (injected transient faults; watchdog timeouts are retried via
 * util::CancelledError's Timeout reason instead).
 */
class RetryableError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** What to inject into one cell. */
enum class FaultKind : uint8_t {
    None = 0,
    Throw,
    Transient,
    Hang,
    AbortProcess,
    CorruptJournal,
    KillWorker,
    StallWorker,
};

/** @return the spec keyword for @p kind ("throw", "hang", ...). */
const char *faultKindName(FaultKind kind);

/** Resolved fault for one cell. */
struct FaultAction
{
    FaultKind kind = FaultKind::None;
    /** Transient: attempts that fail before success. */
    uint32_t fail_attempts = 1;
};

/** Parsed `--faults` specification. */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /**
     * Parse a comma-separated spec, e.g.
     * "abort@2", "hang@0,throw@429.mcf:RLR", "transient:2%0.5".
     * @throws std::runtime_error on bad syntax
     */
    static FaultPlan parse(const std::string &spec);

    bool empty() const { return entries_.empty(); }

    /**
     * Fault for the cell at @p index with display label
     * "workload:policy" and derived seed @p seed (rate entries
     * hash the seed so selection is deterministic and
     * thread-count independent). First matching entry wins.
     */
    FaultAction actionFor(size_t index, const std::string &label,
                          uint64_t seed) const;

    /**
     * Copy of this plan with the process-fatal kinds (abort,
     * kill-worker) dropped. The distributed-sweep supervisor runs
     * its merge pass with this so a fault meant for workers cannot
     * kill the process that collects their results.
     */
    FaultPlan withoutProcessFatal() const;

  private:
    struct Entry
    {
        FaultKind kind = FaultKind::None;
        uint32_t fail_attempts = 1;
        /** Exactly one selector is active. */
        bool by_index = false;
        size_t index = 0;
        bool by_rate = false;
        double rate = 0.0;
        std::string label; // when neither index nor rate
    };

    std::vector<Entry> entries_;
};

} // namespace rlr::sim

#endif // RLR_SIM_FAULT_PLAN_HH
