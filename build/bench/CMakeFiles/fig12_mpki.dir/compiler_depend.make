# Empty compiler generated dependencies file for fig12_mpki.
# This may be replaced when dependencies are built.
