/**
 * @file
 * Full-system assembly: N cores, private L1I/L1D/L2, shared LLC,
 * DRAM — the paper's Table III configuration by default.
 */

#ifndef RLR_SIM_SYSTEM_HH
#define RLR_SIM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "cpu/core.hh"
#include "mem/dram.hh"
#include "obs/epoch.hh"
#include "obs/event_log.hh"
#include "stats/registry.hh"
#include "trace/trace_io.hh"
#include "util/cancel_token.hh"

namespace rlr::sim
{

/** Which prefetcher sits at L2. */
enum class L2Prefetcher { IpStride, KpcP, None };

/** System-level configuration (defaults = paper Table III). */
struct SystemConfig
{
    uint32_t num_cores = 1;
    cpu::CoreConfig core{};

    /** L1 instruction cache: 32KB 8-way, 4-cycle. */
    uint64_t l1i_size = 32 * 1024;
    uint32_t l1i_ways = 8;
    uint32_t l1i_latency = 4;

    /** L1 data cache: 32KB 8-way, 4-cycle, next-line prefetcher. */
    uint64_t l1d_size = 32 * 1024;
    uint32_t l1d_ways = 8;
    uint32_t l1d_latency = 4;
    bool l1d_prefetcher = true;

    /** L2: 256KB 8-way, 12-cycle, IP-stride prefetcher. */
    uint64_t l2_size = 256 * 1024;
    uint32_t l2_ways = 8;
    uint32_t l2_latency = 12;
    L2Prefetcher l2_prefetcher = L2Prefetcher::IpStride;

    /** LLC: 2MB 16-way per core, 26-cycle, no prefetcher. */
    uint64_t llc_size_per_core = 2 * 1024 * 1024;
    uint32_t llc_ways = 16;
    uint32_t llc_latency = 26;

    /** LLC replacement policy (policy_factory name). */
    std::string llc_policy = "LRU";
    uint64_t policy_seed = 1;

    /** Record the LLC access stream into an LlcTrace. */
    bool capture_llc_trace = false;

    /** Decision-level LLC event log (src/obs/): ring capacity in
     *  events; 0 disables (the default — zero hot-path cost). */
    uint32_t llc_events_capacity = 0;
    /** Record events for 1-in-N LLC sets (1 = every set). */
    uint32_t llc_events_sample_sets = 1;
    /** LLC epoch sampler: epoch length in LLC accesses;
     *  0 disables. */
    uint64_t llc_epoch_length = 0;

    /**
     * Cooperative cancellation token polled by every core's run
     * loop (borrowed; null = no checkpointing). Lets a watchdog
     * or signal drain stop a simulation mid-run.
     */
    const util::CancelToken *cancel = nullptr;

    mem::DramConfig dram{};
};

/** A fully wired simulated machine. */
class System
{
  public:
    explicit System(const SystemConfig &config);

    cpu::O3Core &core(uint32_t i) { return *cores_[i]; }
    uint32_t numCores() const;

    cache::Cache &llc() { return *llc_; }
    cache::Cache &l2(uint32_t i) { return *l2_[i]; }
    cache::Cache &l1d(uint32_t i) { return *l1d_[i]; }
    cache::Cache &l1i(uint32_t i) { return *l1i_[i]; }
    mem::Dram &dram() { return *dram_; }

    const SystemConfig &config() const { return config_; }

    /** Captured LLC trace (capture_llc_trace only). */
    const trace::LlcTrace &llcTrace() const { return llc_trace_; }

    /** LLC event log (null unless llc_events_capacity > 0). */
    obs::EventLog *llcEventLog() { return llc_events_.get(); }
    /** LLC epoch sampler (null unless llc_epoch_length > 0). */
    obs::EpochSampler *llcEpochSampler()
    {
        return llc_epoch_.get();
    }

    /** Reset all statistics (end of warmup); state is kept warm. */
    void resetStats();

    /**
     * Mount every component's statistics into @p reg with the
     * canonical dotted naming scheme (docs/ARCHITECTURE.md):
     * "dram.*", "llc.*" (incl. "llc.policy.*"), and per core i
     * "core<i>.*", "core<i>.l1i.*", "core<i>.l1d.*",
     * "core<i>.l2.*", plus system-level formulas such as
     * "llc.demand_mpki".
     */
    void describeStats(stats::Registry &reg);

  private:
    SystemConfig config_;
    std::unique_ptr<mem::Dram> dram_;
    std::unique_ptr<cache::Cache> llc_;
    std::vector<std::unique_ptr<cache::Cache>> l2_;
    std::vector<std::unique_ptr<cache::Cache>> l1i_;
    std::vector<std::unique_ptr<cache::Cache>> l1d_;
    std::vector<std::unique_ptr<cpu::O3Core>> cores_;
    std::unique_ptr<obs::EventLog> llc_events_;
    std::unique_ptr<obs::EpochSampler> llc_epoch_;
    trace::LlcTrace llc_trace_;
};

} // namespace rlr::sim

#endif // RLR_SIM_SYSTEM_HH
