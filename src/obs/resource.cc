#include "obs/resource.hh"

#include <chrono>
#include <cstdio>

#include <sys/resource.h>
#include <unistd.h>

#include "stats/registry.hh"

namespace rlr::obs
{

namespace
{

double
tvSeconds(const timeval &tv)
{
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
}

double
steadySeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

} // namespace

ResourceSample
ResourceSample::now(Scope scope)
{
    ResourceSample s;
    s.wall_s = steadySeconds();

#ifdef RUSAGE_THREAD
    const int who =
        scope == Scope::Thread ? RUSAGE_THREAD : RUSAGE_SELF;
#else
    static_cast<void>(scope);
    const int who = RUSAGE_SELF;
#endif
    rusage ru{};
    if (getrusage(who, &ru) == 0) {
        s.cpu_user_s = tvSeconds(ru.ru_utime);
        s.cpu_sys_s = tvSeconds(ru.ru_stime);
        s.minor_faults = static_cast<uint64_t>(ru.ru_minflt);
        s.major_faults = static_cast<uint64_t>(ru.ru_majflt);
    }
    // ru_maxrss is always process-wide; re-read it for Thread
    // scope so every sample carries the true high-water mark.
    rusage self{};
    if (who != RUSAGE_SELF)
        getrusage(RUSAGE_SELF, &self);
    else
        self = ru;
    s.max_rss_kb = static_cast<uint64_t>(self.ru_maxrss);
    return s;
}

ResourceSample
ResourceSample::deltaFrom(const ResourceSample &start) const
{
    const auto sub = [](double a, double b) {
        return a > b ? a - b : 0.0;
    };
    const auto subu = [](uint64_t a, uint64_t b) {
        return a > b ? a - b : 0;
    };
    ResourceSample d;
    d.wall_s = sub(wall_s, start.wall_s);
    d.cpu_user_s = sub(cpu_user_s, start.cpu_user_s);
    d.cpu_sys_s = sub(cpu_sys_s, start.cpu_sys_s);
    d.max_rss_kb = max_rss_kb;
    d.minor_faults = subu(minor_faults, start.minor_faults);
    d.major_faults = subu(major_faults, start.major_faults);
    return d;
}

uint64_t
currentRssKb()
{
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (f == nullptr)
        return 0;
    unsigned long long size = 0;
    unsigned long long resident = 0;
    const int got = std::fscanf(f, "%llu %llu", &size, &resident);
    std::fclose(f);
    if (got != 2)
        return 0;
    const long page = sysconf(_SC_PAGESIZE);
    return resident * static_cast<uint64_t>(page > 0 ? page : 4096) /
           1024;
}

void
describeResourceStats(stats::Registry &reg,
                      const std::string &prefix,
                      const ResourceSample &delta)
{
    const auto ms = [](double s) {
        return static_cast<uint64_t>(s * 1e3);
    };
    reg.counter(prefix + ".cpu_user_ms",
                "user CPU time of the measured region") =
        ms(delta.cpu_user_s);
    reg.counter(prefix + ".cpu_sys_ms",
                "system CPU time of the measured region") =
        ms(delta.cpu_sys_s);
    reg.counter(prefix + ".wall_ms",
                "wall-clock time of the measured region") =
        ms(delta.wall_s);
    reg.counter(prefix + ".max_rss_kb",
                "process peak resident set size (KiB)") =
        delta.max_rss_kb;
    reg.counter(prefix + ".minor_faults",
                "minor page faults in the measured region") =
        delta.minor_faults;
    reg.counter(prefix + ".major_faults",
                "major page faults in the measured region") =
        delta.major_faults;
}

} // namespace rlr::obs
