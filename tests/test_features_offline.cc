/** @file Tests for feature extraction and the offline simulator. */

#include <gtest/gtest.h>

#include "ml/analysis.hh"
#include "ml/features.hh"
#include "ml/offline.hh"
#include "policies/lru.hh"
#include "tests/policy_test_util.hh"
#include "util/rng.hh"

using namespace rlr;
using namespace rlr::ml;

TEST(Features, StateSizeMatchesPaper)
{
    // 16-way LLC -> 334 floats (Table II).
    FeatureExtractor fx(16, 2048);
    EXPECT_EQ(fx.stateSize(), 334u);
    // 4-way -> 14 + 4*20 = 94.
    FeatureExtractor fx4(4, 16);
    EXPECT_EQ(fx4.stateSize(), 94u);
}

TEST(Features, GroupIndicesPartitionTheState)
{
    FeatureExtractor fx(16, 2048);
    std::vector<int> cover(fx.stateSize(), 0);
    for (size_t g = 0; g < kNumFeatureGroups; ++g) {
        for (const auto i :
             fx.groupIndices(static_cast<FeatureGroup>(g))) {
            ASSERT_LT(i, cover.size());
            ++cover[i];
        }
    }
    for (size_t i = 0; i < cover.size(); ++i)
        EXPECT_EQ(cover[i], 1) << "index " << i;
}

TEST(Features, ExtractionValues)
{
    FeatureExtractor fx(4, 16);
    AccessFeatures af;
    af.address = 0x1027; // offset bits 0b100111
    af.preuse = 128;
    af.type = trace::AccessType::Rfo;
    af.set = 8;
    SetFeatures sf;
    sf.accesses = 1024;
    sf.accesses_since_miss = 0;
    std::vector<LineFeatures> lines(4);
    lines[1].valid = true;
    lines[1].address = 0x40; // line offset bits -> bit6 set
    lines[1].dirty = true;
    lines[1].hits = 300; // saturates at the 256 cap
    lines[1].recency = 3;
    lines[1].last_type = trace::AccessType::Prefetch;

    const auto state = fx.extract(af, sf, lines);
    // Access offset bits: 0x27 = 0b100111.
    EXPECT_FLOAT_EQ(state[0], 1.0f);
    EXPECT_FLOAT_EQ(state[1], 1.0f);
    EXPECT_FLOAT_EQ(state[2], 1.0f);
    EXPECT_FLOAT_EQ(state[3], 0.0f);
    EXPECT_FLOAT_EQ(state[5], 1.0f);
    // Access preuse normalized to 0.5 (cap 256).
    EXPECT_FLOAT_EQ(state[6], 0.5f);
    // RFO one-hot.
    EXPECT_FLOAT_EQ(state[7 + 1], 1.0f);
    EXPECT_FLOAT_EQ(state[7 + 0], 0.0f);
    // Set number 8/16.
    EXPECT_FLOAT_EQ(state[11], 0.5f);
    // Way 1 block at base 14 + 20.
    const size_t base = 14 + 20;
    EXPECT_FLOAT_EQ(state[base + 0], 1.0f); // addr bit 6
    EXPECT_FLOAT_EQ(state[base + 6], 1.0f); // dirty
    EXPECT_FLOAT_EQ(state[base + 10 + 2], 1.0f); // PF one-hot
    EXPECT_FLOAT_EQ(state[base + 18], 1.0f); // hits saturated
    EXPECT_FLOAT_EQ(state[base + 19], 1.0f); // recency 3/3
    // Invalid ways contribute zeros.
    for (size_t i = 14; i < 14 + 20; ++i)
        EXPECT_FLOAT_EQ(state[i], 0.0f);
}

TEST(Features, MaskZeroesDisabledGroups)
{
    FeatureExtractor fx(4, 16);
    fx.setMask({FeatureGroup::LineRecency});
    EXPECT_TRUE(fx.enabled(FeatureGroup::LineRecency));
    EXPECT_FALSE(fx.enabled(FeatureGroup::AccessPreuse));

    AccessFeatures af;
    af.preuse = 1024;
    SetFeatures sf;
    std::vector<LineFeatures> lines(4);
    lines[0].valid = true;
    lines[0].recency = 3;
    const auto state = fx.extract(af, sf, lines);
    EXPECT_FLOAT_EQ(state[6], 0.0f); // masked access preuse
    EXPECT_FLOAT_EQ(state[14 + 19], 1.0f); // recency alive

    fx.clearMask();
    EXPECT_TRUE(fx.enabled(FeatureGroup::AccessPreuse));
}

TEST(Offline, HitMissAccountingHandComputed)
{
    // 4-way cache, 16 sets; lines 0..4 map to distinct sets, so
    // everything after the compulsory misses hits.
    const auto trace =
        test::loadTrace({0, 1, 2, 3, 0, 1, 2, 3});
    OfflineSimulator sim(test::smallOffline(), &trace);
    policies::LruPolicy lru;
    const auto s = sim.runPolicy(lru);
    EXPECT_EQ(s.accesses, 8u);
    EXPECT_EQ(s.misses, 4u);
    EXPECT_EQ(s.hits, 4u);
    EXPECT_EQ(s.compulsory_misses, 4u);
    EXPECT_EQ(s.evictions, 0u);
}

TEST(Offline, DemandVsNonDemandSplit)
{
    const auto trace = test::makeTrace({
        {0x0, trace::AccessType::Load},
        {0x0, trace::AccessType::Prefetch},
        {0x0, trace::AccessType::Writeback},
        {0x0, trace::AccessType::Rfo},
    });
    OfflineSimulator sim(test::smallOffline(), &trace);
    policies::LruPolicy lru;
    const auto s = sim.runPolicy(lru);
    EXPECT_EQ(s.demand_accesses, 2u);
    EXPECT_EQ(s.demand_hits, 1u); // the RFO hits
    EXPECT_EQ(s.hits, 3u);
}

TEST(Offline, VictimStatsPopulated)
{
    // Overflow one set so evictions happen.
    std::vector<uint64_t> lines;
    for (int rep = 0; rep < 10; ++rep)
        for (uint64_t l = 0; l < 8; ++l)
            lines.push_back(l * 16); // same set
    const auto trace = test::loadTrace(lines);
    OfflineSimulator sim(test::smallOffline(), &trace);
    policies::LruPolicy lru;
    const auto s = sim.runPolicy(lru);
    EXPECT_GT(s.evictions, 0u);
    const auto &fs = sim.featureStats();
    uint64_t victims = 0;
    for (const auto c : fs.victim_count)
        victims += c;
    EXPECT_EQ(victims, s.evictions);
    // LRU victims on a cyclic overflow pattern never get hits.
    EXPECT_EQ(fs.victims_zero_hits, s.evictions);
}

TEST(Offline, PreuseReuseBucketsOnRegularPattern)
{
    // Perfectly periodic reuse: consecutive intervals identical,
    // so every measured diff is < 10.
    std::vector<uint64_t> lines;
    for (int rep = 0; rep < 50; ++rep)
        for (uint64_t l = 0; l < 4; ++l)
            lines.push_back(l * 16);
    const auto trace = test::loadTrace(lines);
    OfflineSimulator sim(test::smallOffline(), &trace);
    policies::LruPolicy lru;
    sim.runPolicy(lru);
    const auto &fs = sim.featureStats();
    EXPECT_GT(fs.preuse_reuse_lt10, 0u);
    EXPECT_EQ(fs.preuse_reuse_10to50, 0u);
    EXPECT_EQ(fs.preuse_reuse_gt50, 0u);
}

TEST(Offline, AgentRunsAndTrains)
{
    util::Rng rng(17);
    std::vector<uint64_t> lines;
    for (int i = 0; i < 1500; ++i)
        lines.push_back(rng.nextBounded(128));
    const auto trace = test::loadTrace(lines);
    OfflineSimulator sim(test::smallOffline(), &trace);

    AgentConfig cfg;
    cfg.seed = 5;
    const auto result = trainAgent(sim, cfg, 1);
    EXPECT_EQ(result.epoch_hit_rates.size(), 1u);
    EXPECT_GT(result.agent->decisions(), 0u);
    EXPECT_GT(result.eval.accesses, 0u);
}

TEST(Offline, AgentBetweenRandomAndBelady)
{
    // On a skewed trace, the trained agent should at least beat a
    // random policy and never beat Belady.
    util::Rng rng(23);
    util::ZipfSampler zipf(256, 1.1);
    std::vector<uint64_t> lines;
    for (int i = 0; i < 4000; ++i)
        lines.push_back(zipf.sample(rng));
    const auto trace = test::loadTrace(lines);
    OfflineSimulator sim(test::smallOffline(), &trace);

    policies::BeladyPolicy belady(sim.oracle());
    const auto opt = sim.runPolicy(belady);

    AgentConfig cfg;
    cfg.seed = 29;
    const auto tr = trainAgent(sim, cfg, 2);
    EXPECT_LE(tr.eval.hits, opt.hits);
}

TEST(Offline, WarmPassRemovesColdMisses)
{
    // One pass over a cache-resident set: cold run pays the
    // compulsory misses, warm run hits everything.
    const auto trace = test::loadTrace({0, 1, 2, 3});
    OfflineSimulator sim(test::smallOffline(), &trace);
    policies::LruPolicy lru;
    const auto cold = sim.runPolicy(lru, /*warm_pass=*/false);
    EXPECT_EQ(cold.hits, 0u);
    const auto warm = sim.runPolicy(lru, /*warm_pass=*/true);
    EXPECT_EQ(warm.hits, 4u);
    EXPECT_EQ(warm.accesses, 4u);
}

TEST(Mlp2, SaliencyDeltaZeroAtInit)
{
    MlpConfig cfg;
    cfg.inputs = 6;
    cfg.hidden = 4;
    cfg.outputs = 2;
    Mlp mlp(cfg, 3);
    for (const auto v : mlp.inputSaliencyDelta())
        EXPECT_DOUBLE_EQ(v, 0.0);
    // One training step on a nonzero input produces a nonzero
    // delta for that input only.
    std::vector<float> x(6, 0.0f);
    x[4] = 1.0f;
    mlp.trainAction(x, 0, 1.0f);
    const auto d = mlp.inputSaliencyDelta();
    EXPECT_GT(d[4], 0.0);
    EXPECT_DOUBLE_EQ(d[0], 0.0);
}

TEST(Analysis, GroupSaliencyShape)
{
    const auto trace = test::loadTrace({0, 1, 2, 3});
    OfflineSimulator sim(test::smallOffline(), &trace);
    AgentConfig cfg;
    cfg.mlp.inputs = sim.extractor().stateSize();
    cfg.mlp.outputs = sim.ways();
    DqnAgent agent(cfg);
    const auto sal =
        groupSaliency(agent.network(), sim.extractor());
    EXPECT_EQ(sal.size(), kNumFeatureGroups);
    for (const auto v : sal)
        EXPECT_GE(v, 0.0);
}

TEST(Analysis, HeatMapRenders)
{
    std::vector<std::vector<double>> cols = {
        std::vector<double>(kNumFeatureGroups, 1.0),
        std::vector<double>(kNumFeatureGroups, 0.0),
    };
    const auto out = renderHeatMap({"a", "b"}, cols);
    EXPECT_NE(out.find("line preuse"), std::string::npos);
    EXPECT_NE(out.find('@'), std::string::npos);
}

TEST(Analysis, HillClimbSelectsSomething)
{
    // A recency-friendly trace: hill climbing over two candidate
    // groups must pick at least one and report a hit rate.
    util::Rng rng(31);
    std::vector<uint64_t> lines;
    for (int i = 0; i < 800; ++i)
        lines.push_back(rng.nextBounded(96));
    const auto trace = test::loadTrace(lines);
    OfflineSimulator sim(test::smallOffline(), &trace);

    AgentConfig cfg;
    cfg.seed = 41;
    const auto result = hillClimb(
        sim, cfg,
        {FeatureGroup::LineRecency, FeatureGroup::LineHits}, 1, 2);
    EXPECT_LE(result.selected.size(), 2u);
    EXPECT_EQ(result.selected.size(), result.hit_rates.size());
    // The mask is restored afterwards.
    EXPECT_TRUE(sim.extractor().enabled(
        FeatureGroup::AccessPreuse));
}
