/**
 * @file
 * SweepRunner — the fault-isolated, observable parallel experiment
 * engine behind every (workload x policy) sweep.
 *
 * Each cell runs in isolation on a worker thread with a seed
 * derived deterministically from the master seed and the cell's
 * workload label (never from scheduling order, so serial and
 * parallel sweeps agree bit-for-bit, and every policy sees the
 * same access stream for a given workload). A throwing cell is
 * captured as a per-cell error string instead of tearing down the
 * sweep: the remaining cells still run, and callers decide how to
 * surface the failure (error table, JSON export, exit status).
 *
 * Observability:
 *  - per-cell wall-clock runtime and simulated-instruction
 *    throughput (MIPS) recorded on every SweepCell;
 *  - an optional live progress line (cells done / total, ETA) on
 *    stderr, gated behind SweepOptions::progress;
 *  - an optional machine-readable JSON export of every cell
 *    (workload, policy, seed, hit rate, MPKI, IPC, runtime,
 *    error) via SweepOptions::json_path or writeJson().
 */

#ifndef RLR_SIM_SWEEP_RUNNER_HH
#define RLR_SIM_SWEEP_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "util/table.hh"

namespace rlr::sim
{

/** Execution/observability knobs of one sweep. */
struct SweepOptions
{
    /** Worker threads (1 = serial, still fault-isolated). */
    size_t threads = 1;
    /** Emit a live progress line (done/total, ETA) on stderr. */
    bool progress = false;
    /** When non-empty, write a JSON export here after the run. */
    std::string json_path;
    /**
     * Zero the wall-clock telemetry (runtime_s, mips) on every
     * cell so exports are byte-identical across runs of the same
     * seed (reproducibility checks, golden files).
     */
    bool stable_telemetry = false;
};

/** Fault-isolated parallel (workload x policy) experiment engine. */
class SweepRunner
{
  public:
    /** One unit of work: a policy over one or more core workloads. */
    struct CellSpec
    {
        /** Display label (the workload name, or a mix label). */
        std::string workload;
        std::string policy;
        /** Workloads, one per simulated core. */
        std::vector<std::string> cores;
    };

    /** Cell body; replaceable for tests (fault injection). */
    using CellFn =
        std::function<RunResult(const CellSpec &, const SimParams &)>;

    SweepRunner(SimParams params, SweepOptions opts = {});

    /** Replace the default runWorkloads() cell body (tests). */
    void setCellFn(CellFn fn) { cell_fn_ = std::move(fn); }

    /** Run the full (workloads x policies) cross product. */
    std::vector<SweepCell>
    run(const std::vector<std::string> &workloads,
        const std::vector<std::string> &policies);

    /** Run an explicit cell list (multicore mixes, custom grids). */
    std::vector<SweepCell> runCells(std::vector<CellSpec> specs);

    /**
     * Seed for a cell: mixes @p master_seed with the workload
     * label only, so a workload's access stream is identical
     * under every policy and independent of cell order.
     */
    static uint64_t cellSeed(uint64_t master_seed,
                             const std::string &workload);

    /** @return true when any cell recorded an error. */
    static bool anyFailed(const std::vector<SweepCell> &cells);

    /** Table of the failed cells (Workload | Policy | Error). */
    static util::Table errorTable(const std::vector<SweepCell> &cells);

    /** JSON array of every cell's result and telemetry. */
    static std::string toJson(const std::vector<SweepCell> &cells);

    /** Write toJson(cells) to @p path; fatal() on I/O failure. */
    static void writeJson(const std::string &path,
                          const std::vector<SweepCell> &cells);

    /**
     * Chrome trace_event JSON of the sweep schedule: one complete
     * ("X") slice per cell (named "workload/policy", packed into
     * lanes, with seed/MIPS/error args), loadable in
     * chrome://tracing and Perfetto. Under stable_telemetry the
     * cells carry zero timestamps, so the export is byte-identical
     * across same-seed runs.
     */
    static std::string
    chromeTraceJson(const std::vector<SweepCell> &cells);

    /** Write chromeTraceJson(cells) to @p path. */
    static void writeChromeTrace(const std::string &path,
                                 const std::vector<SweepCell> &cells);

  private:
    SimParams params_;
    SweepOptions opts_;
    CellFn cell_fn_;
};

} // namespace rlr::sim

#endif // RLR_SIM_SWEEP_RUNNER_HH
