# Empty dependencies file for rlr_sim.
# This may be replaced when dependencies are built.
