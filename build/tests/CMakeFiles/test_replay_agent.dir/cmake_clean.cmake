file(REMOVE_RECURSE
  "CMakeFiles/test_replay_agent.dir/test_replay_agent.cc.o"
  "CMakeFiles/test_replay_agent.dir/test_replay_agent.cc.o.d"
  "test_replay_agent"
  "test_replay_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replay_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
