# Empty compiler generated dependencies file for micro_policy_latency.
# This may be replaced when dependencies are built.
