/**
 * @file
 * Multiperspective Placement, Promotion, and Bypass (Jiménez &
 * Teran, MICRO 2017) — the MPPPB row of the paper's Table I
 * (28KB @ 2MB). A perceptron predictor combines several cheap
 * "perspectives" on an access (PC, address bits, access type,
 * line age) to predict whether the incoming/resident line will be
 * reused; predicted-dead lines are preferred victims and
 * confidently-dead fills can bypass.
 */

#ifndef RLR_POLICIES_MPPPB_HH
#define RLR_POLICIES_MPPPB_HH

#include <array>
#include <vector>

#include "cache/replacement.hh"

namespace rlr::policies
{

/** MPPPB configuration. */
struct MpppbConfig
{
    /** Weight-table entries per feature (power of two). */
    unsigned table_entries = 1024;
    /** Weight saturation bound. */
    int weight_max = 31;
    /** Prediction threshold: sum >= threshold -> reused. */
    int threshold = 0;
    /** Bypass threshold: sum below -bypass_margin -> bypass. */
    int bypass_margin = 48;
    /** Training margin. */
    int margin = 40;
    /** Allow bypass of confidently dead fills. */
    bool allow_bypass = true;
};

/** MPPPB policy (simplified multiperspective perceptron). */
class MpppbPolicy : public cache::ReplacementPolicy
{
  public:
    /** Number of perceptron features (perspectives). */
    static constexpr size_t kNumFeatures = 4;

    explicit MpppbPolicy(MpppbConfig config = {});

    void bind(const cache::CacheGeometry &geom) override;
    uint32_t
    findVictim(const cache::AccessContext &ctx,
               std::span<const cache::BlockView> blocks) override;
    void onAccess(const cache::AccessContext &ctx) override;
    void onEviction(uint32_t set, uint32_t way,
                    const cache::BlockView &block) override;
    std::string name() const override { return "MPPPB"; }
    bool usesPc() const override { return true; }
    cache::StorageOverhead overhead() const override;

    /** Perceptron output for an access (tests). */
    int predict(uint64_t pc, uint64_t address,
                trace::AccessType type) const;

  private:
    struct LineState
    {
        /** Feature indices captured at the last access (training
         *  happens on reuse or eviction). */
        std::array<uint32_t, kNumFeatures> feature_idx{};
        bool trained_sample = false;
        /** Predicted-dead flag drives victim selection. */
        bool predicted_dead = false;
        uint64_t last_use = 0;
    };

    std::array<uint32_t, kNumFeatures>
    featureIndices(uint64_t pc, uint64_t address,
                   trace::AccessType type) const;
    int sum(const std::array<uint32_t, kNumFeatures> &idx) const;
    void train(const std::array<uint32_t, kNumFeatures> &idx,
               bool reused);
    LineState &line(uint32_t set, uint32_t way);

    MpppbConfig config_;
    uint32_t ways_ = 0;
    uint32_t num_sets_ = 0;
    uint64_t clock_ = 0;
    std::vector<LineState> lines_;
    /** kNumFeatures weight tables, flattened. */
    std::vector<int16_t> weights_;
};

} // namespace rlr::policies

#endif // RLR_POLICIES_MPPPB_HH
