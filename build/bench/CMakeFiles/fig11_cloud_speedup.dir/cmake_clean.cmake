file(REMOVE_RECURSE
  "CMakeFiles/fig11_cloud_speedup.dir/fig11_cloud_speedup.cc.o"
  "CMakeFiles/fig11_cloud_speedup.dir/fig11_cloud_speedup.cc.o.d"
  "fig11_cloud_speedup"
  "fig11_cloud_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cloud_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
