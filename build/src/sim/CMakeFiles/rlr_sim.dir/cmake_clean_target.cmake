file(REMOVE_RECURSE
  "librlr_sim.a"
)
