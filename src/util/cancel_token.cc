#include "util/cancel_token.hh"

#include <string>

namespace rlr::util
{

const char *
CancelToken::reasonName(Reason r) noexcept
{
    switch (r) {
      case Reason::None:
        return "none";
      case Reason::Timeout:
        return "timeout";
      case Reason::Signal:
        return "signal";
      case Reason::Other:
        return "other";
    }
    return "unknown";
}

CancelledError::CancelledError(CancelToken::Reason reason)
    : std::runtime_error(std::string("cancelled: ") +
                         CancelToken::reasonName(reason)),
      reason_(reason)
{
}

} // namespace rlr::util
