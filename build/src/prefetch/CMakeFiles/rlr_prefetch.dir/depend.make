# Empty dependencies file for rlr_prefetch.
# This may be replaced when dependencies are built.
