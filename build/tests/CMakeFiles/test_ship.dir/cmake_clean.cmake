file(REMOVE_RECURSE
  "CMakeFiles/test_ship.dir/test_ship.cc.o"
  "CMakeFiles/test_ship.dir/test_ship.cc.o.d"
  "test_ship"
  "test_ship.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ship.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
