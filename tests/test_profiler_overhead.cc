/**
 * @file
 * Wall-clock bounds for the scoped profiler on the LLC replay
 * loop (docs/OBSERVABILITY.md's cost model):
 *
 *  - runtime disabled (the default): a scope is one relaxed
 *    atomic load and a predicted not-taken branch. Adding two
 *    MORE such scopes per bare-cache access — doubling the
 *    access path's own disabled instrumentation — measures ~2%
 *    on a quiet machine. At ~15 ns per access, shared-host
 *    jitter swamps single-digit relative claims, so the bound
 *    (< 12%) is sized to catch a disabled path that stopped
 *    being branch-cheap (a lock, an allocation, a tree walk —
 *    each an order of magnitude over budget), not to re-measure
 *    the 2% precisely.
 *  - enabled: profiling a full tier-1-style simulation (sim.run
 *    spans plus the LLC's sampled access scopes, armed by
 *    System) must cost < 5% against the same simulation
 *    unprofiled. Measured on runWorkloads, not a bare cache
 *    loop: the sampled LLC scopes are budgeted against real
 *    simulation work, which is the documented contract.
 *
 * Same noise discipline as test_obs_overhead.cc: interleaved
 * repetitions, min-of-reps, and a SKIP when the baseline spread
 * says the machine cannot support the claim.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "cache/cache.hh"
#include "obs/profiler.hh"
#include "policies/lru.hh"
#include "sim/experiment.hh"
#include "util/rng.hh"

using namespace rlr;

namespace
{

/** Zero-state backing memory with a fixed latency. */
class FlatMemory : public cache::MemoryLevel
{
  public:
    uint64_t
    access(const cache::MemRequest &req, uint64_t now) override
    {
        if (req.type == trace::AccessType::Writeback)
            return now;
        return now + 100;
    }
    const std::string &name() const override { return name_; }

  private:
    std::string name_ = "flat";
};

cache::CacheGeometry
benchGeometry()
{
    cache::CacheGeometry g;
    g.name = "L";
    g.size_bytes = 64 * 1024; // 256 sets x 4 ways
    g.ways = 4;
    g.latency = 10;
    g.mshrs = 8;
    return g;
}

std::vector<uint64_t>
makeAddresses(size_t n)
{
    util::Rng rng(77);
    std::vector<uint64_t> addrs;
    addrs.reserve(n);
    for (size_t i = 0; i < n; ++i)
        addrs.push_back(rng.nextBounded(4096) * 64);
    return addrs;
}

/**
 * One repetition of the bare-cache replay, optionally adding two
 * disabled-path ProfScopes per access (the disabled-cost probe).
 */
uint64_t
replayNanos(const std::vector<uint64_t> &addrs,
            bool extra_scopes)
{
    FlatMemory mem;
    cache::Cache c(benchGeometry(),
                   std::make_unique<policies::LruPolicy>(), &mem);
    uint64_t sink = 0;
    const auto start = std::chrono::steady_clock::now();
    uint64_t now = 0;
    for (const uint64_t addr : addrs) {
        cache::MemRequest req;
        req.address = addr;
        req.pc = 0x400;
        req.type = trace::AccessType::Load;
        sink += c.access(req, now);
        now += 1000;
        if (extra_scopes) {
            RLR_PROF_SCOPE("test.probe_a");
            RLR_PROF_SCOPE("test.probe_b");
        }
    }
    const auto end = std::chrono::steady_clock::now();
    EXPECT_NE(sink, 0u);
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            end - start)
            .count());
}

/** One tier-1-style single-core simulation repetition. */
uint64_t
simulateNanos()
{
    sim::SimParams params;
    params.llc_policy = "LRU";
    params.warmup_instructions = 20000;
    params.sim_instructions = 120000;
    const auto start = std::chrono::steady_clock::now();
    const sim::RunResult r =
        sim::runSingleCore("429.mcf", params);
    const auto end = std::chrono::steady_clock::now();
    EXPECT_GT(r.total_instructions, 0u);
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            end - start)
            .count());
}

/** Min-of-reps ratio with the 10% baseline-spread noise gate;
 *  negative return means "too noisy". @p base_rep and
 *  @p variant_rep run interleaved. */
template <class BaseFn, class VariantFn>
double
measureRatio(BaseFn base_rep, VariantFn variant_rep)
{
    constexpr int kReps = 9;
    std::vector<uint64_t> base, variant;
    for (int r = 0; r < kReps; ++r) {
        base.push_back(base_rep());
        variant.push_back(variant_rep());
    }
    const uint64_t base_min =
        *std::min_element(base.begin(), base.end());
    const uint64_t var_min =
        *std::min_element(variant.begin(), variant.end());
    if (base_min == 0)
        return -1.0;
    std::sort(base.begin(), base.end());
    const double spread =
        static_cast<double>(base[kReps / 2] - base_min) /
        static_cast<double>(base_min);
    if (spread > 0.10)
        return -1.0;
    return static_cast<double>(var_min) /
           static_cast<double>(base_min);
}

/**
 * Best-of-attempts wrapper: noise only ever inflates a measured
 * ratio, so the smallest clean measurement is the best estimate
 * of the true cost. Retries until one attempt lands under
 * @p bound or the attempts run out; negative return means every
 * attempt was too noisy to judge.
 */
template <class BaseFn, class VariantFn>
double
bestRatio(BaseFn base_rep, VariantFn variant_rep, double bound)
{
    double best = -1.0;
    for (int attempt = 0; attempt < 5; ++attempt) {
        if (attempt != 0) {
            // Let a noise episode (another core's burst, a
            // frequency transition) pass before re-measuring.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
        const double ratio = measureRatio(base_rep, variant_rep);
        if (ratio >= 0.0 && (best < 0.0 || ratio < best))
            best = ratio;
        if (best >= 0.0 && best < bound)
            break;
    }
    return best;
}

} // namespace

TEST(ProfilerOverhead, DisabledScopesStayBranchCheap)
{
    obs::Profiler::instance().setEnabled(false);
    obs::Profiler::instance().reset();
    const auto addrs = makeAddresses(300000);
    replayNanos(addrs, false); // warm-up
    const double ratio =
        bestRatio([&] { return replayNanos(addrs, false); },
                  [&] { return replayNanos(addrs, true); }, 1.12);
    if (ratio < 0.0)
        GTEST_SKIP() << "baseline too noisy for a 12% claim";
    EXPECT_LT(ratio, 1.12)
        << "two disabled scopes per access cost "
        << (ratio - 1.0) * 100.0 << "%";
}

TEST(ProfilerOverhead, EnabledUnderFivePercentOnSimPath)
{
    obs::Profiler &prof = obs::Profiler::instance();
    prof.setEnabled(false);
    prof.reset();
    simulateNanos(); // warm-up
    const double ratio = bestRatio(
        [&] {
            prof.setEnabled(false);
            return simulateNanos();
        },
        [&] {
            prof.reset(); // bound tree/ring growth across reps
            prof.setEnabled(true);
            const uint64_t ns = simulateNanos();
            prof.setEnabled(false);
            return ns;
        },
        1.05);
    prof.setEnabled(false);
    prof.reset();
    if (ratio < 0.0)
        GTEST_SKIP() << "baseline too noisy for a 5% claim";
    EXPECT_LT(ratio, 1.05)
        << "profiling the sim path cost "
        << (ratio - 1.0) * 100.0 << "%";
}
