/**
 * @file
 * Random replacement: the zero-metadata floor for comparisons.
 */

#ifndef RLR_POLICIES_RANDOM_HH
#define RLR_POLICIES_RANDOM_HH

#include "cache/replacement.hh"
#include "util/rng.hh"

namespace rlr::policies
{

/** Uniform-random victim selection (deterministic given the seed). */
class RandomPolicy : public cache::ReplacementPolicy
{
  public:
    explicit RandomPolicy(uint64_t seed = 1);

    void bind(const cache::CacheGeometry &geom) override;
    /** Restart the victim RNG stream from the original seed. */
    void reset(const cache::CacheGeometry &geom) override;
    uint32_t
    findVictim(const cache::AccessContext &ctx,
               std::span<const cache::BlockView> blocks) override;
    void onAccess(const cache::AccessContext &ctx) override;
    std::string name() const override { return "Random"; }
    cache::StorageOverhead overhead() const override;

  private:
    uint64_t seed_;
    util::Rng rng_;
    uint32_t ways_ = 0;
};

} // namespace rlr::policies

#endif // RLR_POLICIES_RANDOM_HH
