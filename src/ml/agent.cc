#include "ml/agent.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rlr::ml
{

DqnAgent::DqnAgent(AgentConfig config)
    : config_(config),
      mlp_(std::make_unique<Mlp>(config.mlp, config.seed)),
      replay_(config.replay_capacity), rng_(config.seed ^ 0xa5a5),
      epsilon_(config.epsilon)
{
}

uint32_t
DqnAgent::actGreedy(const std::vector<float> &state) const
{
    const auto q = mlp_->forward(state);
    return static_cast<uint32_t>(
        std::max_element(q.begin(), q.end()) - q.begin());
}

uint32_t
DqnAgent::act(const std::vector<float> &state)
{
    ++decisions_;
    if (rng_.chance(epsilon_)) {
        return static_cast<uint32_t>(
            rng_.nextBounded(config_.mlp.outputs));
    }
    return actGreedy(state);
}

void
DqnAgent::observe(Transition transition)
{
    replay_.push(std::move(transition));
    if (config_.train_interval > 0 &&
        decisions_ % config_.train_interval == 0) {
        trainStep();
    }
}

void
DqnAgent::trainStep()
{
    if (replay_.empty())
        return;
    double loss = 0.0;
    for (size_t b = 0; b < config_.batch_size; ++b) {
        const Transition &t = replay_.sample(rng_);
        // Immediate-reward MDP (the reward already encodes the
        // quality of the decision relative to Belady), so the
        // target is the reward itself.
        const float err =
            mlp_->trainAction(t.state, t.action, t.reward);
        loss += 0.5 * static_cast<double>(err) * err;
    }
    loss /= static_cast<double>(config_.batch_size);
    avg_loss_ = 0.99 * avg_loss_ + 0.01 * loss;
}

} // namespace rlr::ml
