#include "policies/rrip.hh"

#include <stdexcept>

#include "util/format.hh"
#include "util/logging.hh"

namespace rlr::policies
{

RripBase::RripBase(unsigned rrpv_bits)
    : rrpv_bits_(rrpv_bits),
      max_rrpv_(static_cast<uint8_t>((1u << rrpv_bits) - 1))
{
    util::ensure(rrpv_bits >= 1 && rrpv_bits <= 8,
                 "RripBase: bad RRPV width");
}

void
RripBase::bind(const cache::CacheGeometry &geom)
{
    ways_ = geom.ways;
    num_sets_ = geom.numSets();
    rrpv_.assign(static_cast<size_t>(num_sets_) * ways_, max_rrpv_);
}

uint8_t
RripBase::rrpv(uint32_t set, uint32_t way) const
{
    return rrpv_[static_cast<size_t>(set) * ways_ + way];
}

void
RripBase::setRrpv(uint32_t set, uint32_t way, uint8_t value)
{
    rrpv_[static_cast<size_t>(set) * ways_ + way] = value;
}

uint32_t
RripBase::findVictim(const cache::AccessContext &ctx,
                     std::span<const cache::BlockView> blocks)
{
    (void)blocks;
    const size_t base = static_cast<size_t>(ctx.set) * ways_;
    // Age until some line reaches the distant-future RRPV; bounded
    // by max_rrpv_ iterations.
    for (;;) {
        for (uint32_t w = 0; w < ways_; ++w) {
            if (rrpv_[base + w] >= max_rrpv_)
                return w;
        }
        for (uint32_t w = 0; w < ways_; ++w)
            ++rrpv_[base + w];
    }
}

void
RripBase::onAccess(const cache::AccessContext &ctx)
{
    const size_t idx = static_cast<size_t>(ctx.set) * ways_ + ctx.way;
    if (ctx.hit) {
        // Hit promotion: near-immediate re-reference predicted.
        rrpv_[idx] = 0;
    } else {
        rrpv_[idx] = insertionRrpv(ctx);
    }
}

void
RripBase::verifyInvariants(
    uint32_t set, std::span<const cache::BlockView> blocks) const
{
    (void)blocks;
    const size_t base = static_cast<size_t>(set) * ways_;
    for (uint32_t w = 0; w < ways_; ++w) {
        if (rrpv_[base + w] > max_rrpv_) {
            throw std::logic_error(util::format(
                "RRIP: RRPV {} of set {} way {} exceeds the "
                "{}-bit maximum {}",
                rrpv_[base + w], set, w, rrpv_bits_, max_rrpv_));
        }
    }
}

SrripPolicy::SrripPolicy(unsigned rrpv_bits) : RripBase(rrpv_bits) {}

uint8_t
SrripPolicy::insertionRrpv(const cache::AccessContext &ctx)
{
    (void)ctx;
    return static_cast<uint8_t>(maxRrpv() - 1);
}

cache::StorageOverhead
SrripPolicy::overhead() const
{
    cache::StorageOverhead o;
    o.bits_per_line = rrpvBits();
    return o;
}

BrripPolicy::BrripPolicy(unsigned rrpv_bits, uint64_t seed)
    : RripBase(rrpv_bits), seed_(seed), rng_(seed)
{
}

void
BrripPolicy::reset(const cache::CacheGeometry &geom)
{
    rng_ = util::Rng(seed_);
    bind(geom);
}

uint8_t
BrripPolicy::insertionRrpv(const cache::AccessContext &ctx)
{
    (void)ctx;
    // 1-in-32 long re-reference insertion, else distant.
    if (rng_.nextBounded(32) == 0)
        return static_cast<uint8_t>(maxRrpv() - 1);
    return maxRrpv();
}

cache::StorageOverhead
BrripPolicy::overhead() const
{
    cache::StorageOverhead o;
    o.bits_per_line = rrpvBits();
    o.global_bits = 5; // BIP throttle counter
    return o;
}

DrripPolicy::DrripPolicy(unsigned rrpv_bits, uint32_t leader_sets,
                         uint64_t seed)
    : RripBase(rrpv_bits), leader_sets_(leader_sets), seed_(seed),
      rng_(seed)
{
    util::ensure(leader_sets_ >= 1,
                 "DRRIP: need at least one leader set per policy");
}

void
DrripPolicy::reset(const cache::CacheGeometry &geom)
{
    // bind() does not touch the duel state or the RNG stream; a
    // flushed cache must look exactly like a newly built one.
    rng_ = util::Rng(seed_);
    psel_ = util::SignedSatCounter(10, 0);
    bind(geom);
}

void
DrripPolicy::bind(const cache::CacheGeometry &geom)
{
    RripBase::bind(geom);
    util::ensure(geom.numSets() >= 2 * leader_sets_,
                 "DRRIP: too few sets for dueling");
}

DrripPolicy::SetRole
DrripPolicy::setRole(uint32_t set) const
{
    // Interleave leaders through the cache: every (sets/leaders)
    // -th set leads for SRRIP; the next one leads for BRRIP.
    const uint32_t period = numSets() / leader_sets_;
    if (set % period == 0)
        return SetRole::SrripLeader;
    if (set % period == 1)
        return SetRole::BrripLeader;
    return SetRole::Follower;
}

void
DrripPolicy::onAccess(const cache::AccessContext &ctx)
{
    if (!ctx.hit) {
        // Misses in leader sets steer PSEL toward the other policy.
        switch (setRole(ctx.set)) {
          case SetRole::SrripLeader:
            --psel_;
            break;
          case SetRole::BrripLeader:
            ++psel_;
            break;
          case SetRole::Follower:
            break;
        }
    }
    RripBase::onAccess(ctx);
}

uint8_t
DrripPolicy::insertionRrpv(const cache::AccessContext &ctx)
{
    bool use_brrip = false;
    switch (setRole(ctx.set)) {
      case SetRole::SrripLeader:
        use_brrip = false;
        break;
      case SetRole::BrripLeader:
        use_brrip = true;
        break;
      case SetRole::Follower:
        use_brrip = brripSelected();
        break;
    }
    if (!use_brrip)
        return static_cast<uint8_t>(maxRrpv() - 1);
    if (rng_.nextBounded(32) == 0)
        return static_cast<uint8_t>(maxRrpv() - 1);
    return maxRrpv();
}

cache::StorageOverhead
DrripPolicy::overhead() const
{
    cache::StorageOverhead o;
    o.bits_per_line = rrpvBits();
    o.global_bits = 10 + 5; // PSEL + BIP throttle
    return o;
}

} // namespace rlr::policies
