/**
 * @file
 * Property-based fuzz driver over the verification harness
 * (src/verify/): sweeps randomized (sets, ways, policy-knob)
 * configurations under deterministic seeds and checks, per cell,
 *
 *  - differential equivalence: the production Cache + policy and
 *    the independent reference model agree on every per-access
 *    hit/miss outcome and on every victim choice (resident-set
 *    equality), with the RLR_VERIFY invariant hooks armed so bit
 *    widths and stats consistency are checked on every access;
 *  - the Belady bound: no policy's hit count on a load-only trace
 *    exceeds the brute-force optimal model's.
 *
 * On mismatch the failing trace is shrunk to a near-minimal
 * reproducer and printed as a replayable seed + config. --mutate
 * runs the mutation self-test instead: a deliberately corrupted
 * policy must be caught (the run fails if it is NOT detected),
 * proving the harness has teeth.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "util/args.hh"
#include "util/bits.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "verify/differential.hh"

namespace
{

using namespace rlr;

/** Shape + knob randomization for one fuzz cell. */
verify::DiffSpec
randomSpec(const std::string &policy, util::Rng &rng,
           uint64_t master_seed, uint64_t cell, uint32_t max_sets,
           uint32_t max_ways, uint64_t accesses)
{
    verify::DiffSpec spec;
    spec.policy = policy;
    const unsigned max_set_bits =
        util::floorLog2(std::max<uint32_t>(2, max_sets));
    spec.sets = 1u << (1 + rng.nextBounded(max_set_bits));
    // Geometry requires power-of-two associativity.
    spec.ways =
        1u << rng.nextBounded(
            util::floorLog2(std::max<uint32_t>(1, max_ways)) + 1);
    spec.rrpv_bits = static_cast<unsigned>(1 + rng.nextBounded(3));
    spec.leader_sets = 2;
    if (policy == "DRRIP")
        spec.sets = std::max<uint32_t>(spec.sets, 4);
    spec.ship_signature_bits =
        static_cast<unsigned>(4 + rng.nextBounded(7));
    spec.ship_shct_bits =
        static_cast<unsigned>(2 + rng.nextBounded(2));
    if (policy == "RLR-unopt")
        spec.rlr = core::RlrConfig::unoptimized();
    if (policy.rfind("RLR", 0) == 0) {
        spec.rlr.allow_bypass = rng.nextBounded(2) == 0;
        spec.rlr.use_hit_priority = rng.nextBounded(4) != 0;
        spec.rlr.use_type_priority = rng.nextBounded(4) != 0;
    }
    // Deterministic per-cell trace seed (no wall clock anywhere).
    spec.seed = master_seed * 1000003ULL + cell;
    spec.accesses = accesses;
    // Pool sized relative to capacity so sets see real contention.
    spec.distinct_lines =
        spec.sets * spec.ways *
        static_cast<uint32_t>(1 + rng.nextBounded(4));
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    util::ArgParser parser(
        "Property-based differential fuzzer for replacement "
        "policies");
    parser.addOption("policies", "",
                     "Comma-separated policies to fuzz (default: "
                     "all reference-modeled policies)");
    parser.addOption("cells", "60",
                     "Differential (config, seed) cells to run");
    parser.addOption("seed", "1", "Master random seed");
    parser.addOption("accesses", "2000",
                     "Trace length per differential cell");
    parser.addOption("max-sets", "64",
                     "Largest set count fuzzed (power of two)");
    parser.addOption("max-ways", "8", "Largest associativity fuzzed");
    parser.addOption("belady-cells", "2",
                     "Belady-bound checks per policy (0 disables)");
    parser.addOption("flush-period", "0",
                     "Flush both models every N accesses inside "
                     "each differential cell (0 = never; "
                     "exercises flush/reset parity)");
    parser.addFlag("mutate",
                   "Mutation self-test: corrupt victim choices and "
                   "FAIL unless the harness detects it");
    parser.addFlag("verbose", "Print every cell as it runs");
    if (!parser.parse(argc, argv))
        return 0;

    std::vector<std::string> policies =
        parser.getList("policies");
    if (policies.empty())
        policies = verify::referencePolicies();
    for (const auto &p : policies) {
        if (!verify::hasReferenceModel(p))
            util::fatal("no reference model for policy '{}'", p);
    }

    const uint64_t cells = parser.getUint("cells");
    const uint64_t master_seed = parser.getUint("seed");
    const uint64_t accesses = parser.getUint("accesses");
    const auto max_sets =
        static_cast<uint32_t>(parser.getUint("max-sets"));
    const auto max_ways =
        static_cast<uint32_t>(parser.getUint("max-ways"));
    const uint64_t belady_cells = parser.getUint("belady-cells");
    const uint64_t flush_period = parser.getUint("flush-period");
    const bool mutate = parser.getFlag("mutate");
    const bool verbose = parser.getFlag("verbose");

    util::Rng shape_rng(master_seed ^ 0xf0225eedULL);

    if (mutate) {
        // Self-test: every policy, wrapped in a MutantPolicy that
        // rotates every 3rd victim, must produce a mismatch.
        uint64_t undetected = 0;
        for (size_t i = 0; i < policies.size(); ++i) {
            auto spec = randomSpec(policies[i], shape_rng,
                                   master_seed, i, max_sets,
                                   max_ways, accesses);
            // Rotation is a no-op on a 1-way cache.
            spec.ways = std::max<uint32_t>(spec.ways, 2);
            // The mutant only corrupts findVictim, which the cache
            // consults for full sets only: force enough distinct
            // lines that conflict misses actually occur.
            spec.sets = std::min<uint32_t>(spec.sets, 8);
            spec.distinct_lines = spec.sets * spec.ways * 3;
            const auto result =
                verify::runDifferential(spec, /*mutate_period=*/3);
            if (result.ok) {
                ++undetected;
                std::printf("NOT DETECTED: mutant %s survived "
                            "(%s)\n",
                            policies[i].c_str(),
                            spec.describe().c_str());
            } else if (verbose || i == 0) {
                // Show one shrunk reproducer as evidence.
                std::fputs(result.repro.c_str(), stdout);
            }
        }
        std::printf("mutation self-test: %zu/%zu mutants "
                    "detected\n",
                    policies.size() - undetected, policies.size());
        return undetected == 0 ? 0 : 1;
    }

    uint64_t mismatches = 0;
    for (uint64_t i = 0; i < cells; ++i) {
        const auto &policy = policies[i % policies.size()];
        auto spec =
            randomSpec(policy, shape_rng, master_seed, i, max_sets,
                       max_ways, accesses);
        spec.flush_period = flush_period;
        if (verbose)
            std::printf("[%llu/%llu] %s\n",
                        static_cast<unsigned long long>(i + 1),
                        static_cast<unsigned long long>(cells),
                        spec.describe().c_str());
        const auto result = verify::runDifferential(spec);
        if (!result.ok) {
            ++mismatches;
            std::fputs(result.repro.c_str(), stdout);
        }
    }

    uint64_t bound_violations = 0;
    for (uint64_t b = 0; b < belady_cells; ++b) {
        for (size_t p = 0; p < policies.size(); ++p) {
            auto spec = randomSpec(policies[p], shape_rng,
                                   master_seed,
                                   cells + b * policies.size() + p,
                                   /*max_sets=*/8, /*max_ways=*/4,
                                   /*accesses=*/600);
            const std::string err = verify::beladyBoundError(spec);
            if (!err.empty()) {
                ++bound_violations;
                std::printf("%s\n", err.c_str());
            } else if (verbose) {
                std::printf("belady bound ok: %s\n",
                            spec.describe().c_str());
            }
        }
    }

    std::printf("fuzz_policies: %llu cells, %llu mismatches; "
                "%llu belady checks, %llu violations\n",
                static_cast<unsigned long long>(cells),
                static_cast<unsigned long long>(mismatches),
                static_cast<unsigned long long>(belady_cells *
                                                policies.size()),
                static_cast<unsigned long long>(bound_violations));
    return (mismatches == 0 && bound_violations == 0) ? 0 : 1;
}
