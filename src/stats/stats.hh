/**
 * @file
 * Lightweight statistics collection for simulator components.
 *
 * Components own a StatSet; counters registered with it can be
 * dumped by name, and derived metrics (hit rate, MPKI, IPC,
 * speedup, geometric means) are computed by free functions so the
 * same formulas are used by every experiment harness.
 */

#ifndef RLR_STATS_STATS_HH
#define RLR_STATS_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rlr::stats
{

/**
 * A named group of counters. Registration is by string name;
 * lookups during simulation use direct references, so the map is
 * only touched at setup/dump time.
 */
class StatSet
{
  public:
    /** @param name component name used as a dump prefix */
    explicit StatSet(std::string name = "");

    /**
     * Register (or fetch) a counter. The returned reference is
     * stable for the life of the StatSet.
     */
    uint64_t &counter(const std::string &name);

    /** @return counter value; 0 when never registered. */
    uint64_t value(const std::string &name) const;

    /** Zero every registered counter. */
    void reset();

    /** Accumulate all counters of @p other into this set. */
    void merge(const StatSet &other);

    /** @return "prefix.counter value" lines, sorted by name. */
    std::string dump() const;

    const std::string &name() const { return name_; }

    /** All (name, value) pairs, sorted by name. */
    std::vector<std::pair<std::string, uint64_t>> items() const;

  private:
    std::string name_;
    // std::map keeps iteration (and dumps) deterministically sorted,
    // and never invalidates references on insert.
    std::map<std::string, uint64_t> counters_;
};

/** Running mean/variance (Welford) for measurement summaries. */
class RunningStat
{
  public:
    void sample(double v);
    uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Internal-consistency check over a cache StatSet's per-type access
 * counters: for each type T in {LD, RFO, PF, WB},
 * T_hit + T_miss == T_access must hold.
 * @return "" when consistent, else a description of the first
 *         violated identity
 */
std::string accessConsistencyError(const StatSet &set);

/** @return a/b, or 0 when b == 0. */
double safeDiv(double a, double b);

/** Misses per kilo-instruction. */
double mpki(uint64_t misses, uint64_t instructions);

/** Hit rate in [0, 1]. */
double hitRate(uint64_t hits, uint64_t accesses);

/** IPC speedup of @p ipc over @p baseline_ipc. */
double speedup(double ipc, double baseline_ipc);

/** Geometric mean of positive values; 0 for empty input. */
double geomean(const std::vector<double> &values);

} // namespace rlr::stats

#endif // RLR_STATS_STATS_HH
