/**
 * @file
 * Compile-out verification for the profiler macros: this TU is
 * built with RLR_PROF_DISABLED, so every RLR_PROF_SCOPE* must
 * expand to `(void)0` — even with the profiler globally enabled,
 * a loop full of scopes records nothing and costs nothing.
 */

#define RLR_PROF_DISABLED 1

#include <gtest/gtest.h>

#include <chrono>

#include "obs/profiler.hh"

using namespace rlr;

namespace
{

/** A loop whose scopes are compiled out; @p sink defeats DCE. */
uint64_t
spinWithScopes(uint64_t iters)
{
    uint64_t sink = 0;
    for (uint64_t i = 0; i < iters; ++i) {
        RLR_PROF_SCOPE("disabled.scope");
        RLR_PROF_SCOPE_SAMPLED("disabled.sampled", 4);
        RLR_PROF_SCOPE_IF(true, "disabled.gated");
        RLR_PROF_SCOPE_IF_SAMPLED(true, "disabled.gated2", 2);
        sink += i ^ (sink >> 3);
    }
    return sink;
}

} // namespace

TEST(ProfilerCompiledOut, RecordsNothingEvenWhenEnabled)
{
    obs::Profiler::instance().setEnabled(false);
    obs::Profiler::instance().reset();
    obs::Profiler::instance().setEnabled(true);

    EXPECT_NE(spinWithScopes(100000), 0u);

    const obs::ProfileData data =
        obs::Profiler::instance().collect();
    obs::Profiler::instance().setEnabled(false);
    EXPECT_EQ(data.spans, 0u);
    EXPECT_TRUE(data.roots.empty());
}

TEST(ProfilerCompiledOut, ScopesAreFree)
{
    obs::Profiler::instance().setEnabled(true);
    constexpr uint64_t kIters = 2'000'000;
    // Warm up, then time the compiled-out loop: with the macros
    // erased it must run at bare-loop speed — roughly nanoseconds
    // per iteration, far below what four live scope objects
    // (eight clock reads) per iteration would cost.
    spinWithScopes(kIters);
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t sink = spinWithScopes(kIters);
    const auto t1 = std::chrono::steady_clock::now();
    obs::Profiler::instance().setEnabled(false);
    obs::Profiler::instance().reset();
    EXPECT_NE(sink, 0u);

    const double ns_per_iter =
        std::chrono::duration<double, std::nano>(t1 - t0)
            .count() /
        static_cast<double>(kIters);
    // Generous bound: a single steady_clock read alone is ~20ns;
    // four live scopes would be hundreds. The compiled-out loop
    // stays under 20ns/iter even on a loaded machine.
    EXPECT_LT(ns_per_iter, 20.0);
}
