/** @file Tests for the policy factory. */

#include <gtest/gtest.h>

#include "core/policy_factory.hh"
#include "core/rlr.hh"
#include "tests/policy_test_util.hh"

using namespace rlr;
using namespace rlr::core;

TEST(Factory, AllKnownPoliciesConstruct)
{
    cache::CacheGeometry geom;
    geom.size_bytes = 2 * 1024 * 1024;
    geom.ways = 16;
    for (const auto &name : knownPolicies()) {
        auto p = makePolicy(name, 1);
        ASSERT_NE(p, nullptr) << name;
        p->bind(geom);
        EXPECT_FALSE(p->name().empty()) << name;
        // Overhead model must be queryable for Table I.
        (void)p->overhead().totalKiB(geom);
    }
}

TEST(Factory, PcUsageMatchesPaperTable)
{
    EXPECT_FALSE(makePolicy("LRU")->usesPc());
    EXPECT_FALSE(makePolicy("DRRIP")->usesPc());
    EXPECT_FALSE(makePolicy("KPC-R")->usesPc());
    EXPECT_FALSE(makePolicy("RLR")->usesPc());
    EXPECT_TRUE(makePolicy("SHiP")->usesPc());
    EXPECT_TRUE(makePolicy("SHiP++")->usesPc());
    EXPECT_TRUE(makePolicy("Hawkeye")->usesPc());
}

TEST(Factory, PaperPoliciesSubsetOfKnown)
{
    const auto known = knownPolicies();
    for (const auto &p : paperPolicies()) {
        EXPECT_NE(std::find(known.begin(), known.end(), p),
                  known.end())
            << p;
    }
}

TEST(Factory, RlrSpecParsing)
{
    auto p = makePolicy("RLR:opt=0,age=6,tick=1,hit=2,rdmul=3");
    auto *rlrp = dynamic_cast<RlrPolicy *>(p.get());
    ASSERT_NE(rlrp, nullptr);
    EXPECT_FALSE(rlrp->config().optimized);
    EXPECT_EQ(rlrp->config().age_bits, 6u);
    EXPECT_EQ(rlrp->config().rd_multiplier, 3u);
}

TEST(Factory, RlrSpecFlags)
{
    auto p = makePolicy("RLR:usehit=0,usetype=0,bypass=1,mc=1,"
                        "cores=2");
    auto *rlrp = dynamic_cast<RlrPolicy *>(p.get());
    ASSERT_NE(rlrp, nullptr);
    EXPECT_FALSE(rlrp->config().use_hit_priority);
    EXPECT_FALSE(rlrp->config().use_type_priority);
    EXPECT_TRUE(rlrp->config().allow_bypass);
    EXPECT_TRUE(rlrp->config().multicore);
    EXPECT_EQ(rlrp->config().num_cores, 2u);
}

TEST(FactoryDeathTest, UnknownPolicyIsFatal)
{
    EXPECT_EXIT(makePolicy("NoSuchPolicy"),
                ::testing::ExitedWithCode(1), "unknown");
}

TEST(FactoryDeathTest, BadRlrSpecIsFatal)
{
    EXPECT_EXIT(makePolicy("RLR:banana=1"),
                ::testing::ExitedWithCode(1), "unknown RLR");
}
