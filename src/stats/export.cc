#include "stats/export.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/format.hh"

namespace rlr::stats
{

namespace json
{

const Value *
Value::find(const std::string &key) const
{
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

double
Value::numberOr(const std::string &key, double def) const
{
    const Value *v = find(key);
    return v && v->isNumber() ? v->number : def;
}

std::string
Value::stringOr(const std::string &key, std::string def) const
{
    const Value *v = find(key);
    return v && v->isString() ? v->string : def;
}

namespace
{

/** Recursive-descent parser over a bounds-checked cursor. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parseDocument()
    {
        Value v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON value");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error(util::format(
            "JSON parse error at offset {}: {}", pos_, why));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(util::format("expected '{}'", c));
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(const char *word)
    {
        const size_t len = std::string_view(word).size();
        if (text_.compare(pos_, len, word) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out += esc;
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                const unsigned code = static_cast<unsigned>(
                    std::strtoul(text_.substr(pos_, 4).c_str(),
                                 nullptr, 16));
                pos_ += 4;
                // The exports only escape control characters; emit
                // BMP code points as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out +=
                        static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f));
                    out +=
                        static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    Value
    parseValue()
    {
        const char c = peek();
        Value v;
        if (c == '{') {
            ++pos_;
            v.kind = Value::Kind::Object;
            if (consume('}'))
                return v;
            while (true) {
                std::string key = parseString();
                expect(':');
                v.object.emplace_back(std::move(key), parseValue());
                if (consume('}'))
                    return v;
                expect(',');
            }
        }
        if (c == '[') {
            ++pos_;
            v.kind = Value::Kind::Array;
            if (consume(']'))
                return v;
            while (true) {
                v.array.push_back(parseValue());
                if (consume(']'))
                    return v;
                expect(',');
            }
        }
        if (c == '"') {
            v.kind = Value::Kind::String;
            v.string = parseString();
            return v;
        }
        if (consumeWord("null"))
            return v;
        if (consumeWord("true")) {
            v.kind = Value::Kind::Bool;
            v.boolean = true;
            return v;
        }
        if (consumeWord("false")) {
            v.kind = Value::Kind::Bool;
            return v;
        }
        // Number.
        const size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(
                    static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+'))
            ++pos_;
        if (pos_ == start)
            fail("invalid value");
        v.kind = Value::Kind::Number;
        v.number = std::strtod(
            text_.substr(start, pos_ - start).c_str(), nullptr);
        return v;
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

Value
parse(const std::string &text)
{
    return Parser(text).parseDocument();
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
number(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return buf;
}

} // namespace json

std::string
toJson(const Snapshot &snap)
{
    std::string out = "{\n  \"counters\": {";
    for (size_t i = 0; i < snap.counters.size(); ++i) {
        if (i)
            out += ", ";
        out += util::format("\"{}\": {}",
                            json::escape(snap.counters[i].first),
                            snap.counters[i].second);
    }
    out += "},\n  \"formulas\": {";
    for (size_t i = 0; i < snap.formulas.size(); ++i) {
        if (i)
            out += ", ";
        out += util::format("\"{}\": {}",
                            json::escape(snap.formulas[i].first),
                            json::number(snap.formulas[i].second));
    }
    out += "},\n  \"histograms\": {";
    for (size_t i = 0; i < snap.histograms.size(); ++i) {
        const auto &[path, h] = snap.histograms[i];
        if (i)
            out += ", ";
        out += util::format("\"{}\": {{\"bucket_width\": {}, "
                            "\"buckets\": [",
                            json::escape(path), h.bucket_width);
        for (size_t b = 0; b < h.buckets.size(); ++b) {
            if (b)
                out += ", ";
            out += std::to_string(h.buckets[b]);
        }
        out += util::format("], \"overflow\": {}}}", h.overflow);
    }
    out += "}\n}\n";
    return out;
}

Snapshot
fromJson(const json::Value &root)
{
    if (!root.isObject())
        throw std::runtime_error(
            "snapshot JSON: top level is not an object");
    Snapshot snap;
    if (const auto *counters = root.find("counters")) {
        for (const auto &[k, v] : counters->object)
            snap.counters.emplace_back(
                k, static_cast<uint64_t>(v.number));
    }
    if (const auto *formulas = root.find("formulas")) {
        for (const auto &[k, v] : formulas->object)
            snap.formulas.emplace_back(k, v.number);
    }
    if (const auto *histograms = root.find("histograms")) {
        for (const auto &[k, v] : histograms->object) {
            HistogramData h;
            h.bucket_width = static_cast<uint64_t>(
                v.numberOr("bucket_width", 1));
            h.overflow =
                static_cast<uint64_t>(v.numberOr("overflow", 0));
            if (const auto *buckets = v.find("buckets")) {
                for (const auto &b : buckets->array)
                    h.buckets.push_back(
                        static_cast<uint64_t>(b.number));
            }
            snap.histograms.emplace_back(k, std::move(h));
        }
    }
    return snap;
}

Snapshot
fromJson(const std::string &text)
{
    return fromJson(json::parse(text));
}

std::string
toText(const Snapshot &snap)
{
    std::string out;
    for (const auto &[k, v] : snap.counters)
        out += util::format("{} {}\n", k, v);
    for (const auto &[k, v] : snap.formulas)
        out += util::format("{} {}\n", k, json::number(v));
    for (const auto &[k, h] : snap.histograms) {
        out += util::format("{} total {} overflow {} width {}\n", k,
                            h.total(), h.overflow, h.bucket_width);
    }
    return out;
}

} // namespace rlr::stats
