/**
 * @file
 * Google-benchmark microbenchmarks: per-access software cost of
 * each replacement policy (victim selection + state update). Not
 * a paper figure — it documents the simulation-speed tradeoffs of
 * the policies in this library.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "core/policy_factory.hh"
#include "obs/epoch.hh"
#include "obs/event_log.hh"
#include "util/rng.hh"

using namespace rlr;

namespace
{

void
policyBench(benchmark::State &state, const std::string &name)
{
    cache::CacheGeometry geom;
    geom.name = "LLC";
    geom.size_bytes = 2 * 1024 * 1024;
    geom.ways = 16;
    auto policy = core::makePolicy(name, 1);
    policy->bind(geom);

    util::Rng rng(7);
    std::vector<cache::BlockView> blocks(geom.ways);
    for (uint32_t w = 0; w < geom.ways; ++w) {
        blocks[w] = cache::BlockView{true, false, false,
                                     (w + 1) * 64ull};
    }

    for (auto _ : state) {
        cache::AccessContext ctx;
        ctx.set = static_cast<uint32_t>(
            rng.nextBounded(geom.numSets()));
        ctx.full_addr = rng.next() & ~0x3fULL;
        ctx.pc = 0x400000 + 4 * rng.nextBounded(64);
        ctx.type = trace::AccessType::Load;
        ctx.hit = false;
        const uint32_t way = policy->findVictim(ctx, blocks);
        ctx.way = way == cache::ReplacementPolicy::kBypass
                      ? 0
                      : way % geom.ways;
        policy->onAccess(ctx);
        benchmark::DoNotOptimize(way);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()));
}

/** Zero-state backing memory with a fixed latency. */
class FlatMemory : public cache::MemoryLevel
{
  public:
    uint64_t
    access(const cache::MemRequest &req, uint64_t now) override
    {
        if (req.type == trace::AccessType::Writeback)
            return now;
        return now + 100;
    }
    const std::string &name() const override { return name_; }

  private:
    std::string name_ = "flat";
};

/** Observability attachment for the cache-access benchmarks. */
enum class Tracing
{
    /** No EventLog / EpochSampler (the disabled path: one
     *  dispatch branch into a hook-free access body, bounded at
     *  <2% by tests/test_obs_overhead.cc). */
    Off,
    /** EventLog on every set. */
    Events,
    /** EventLog with 1-in-64 set sampling. */
    EventsSampled,
    /** EventLog on every set plus an EpochSampler. */
    EventsEpoch,
};

/**
 * Full cache-access cost (lookup + replacement + obs hooks) under
 * the chosen tracing attachment — the software overhead a sweep
 * pays for --events / --epoch.
 */
void
cacheAccessBench(benchmark::State &state, Tracing tracing)
{
    cache::CacheGeometry geom;
    geom.name = "LLC";
    geom.size_bytes = 64 * 1024; // 256 sets x 4 ways
    geom.ways = 4;
    geom.latency = 10;
    geom.mshrs = 8;
    FlatMemory mem;
    cache::Cache c(geom, core::makePolicy("LRU", 1), &mem);

    obs::EventLog events(
        {1 << 14,
         tracing == Tracing::EventsSampled ? 64u : 1u});
    obs::EpochSampler epoch(10000);
    if (tracing != Tracing::Off)
        c.setEventLog(&events);
    if (tracing == Tracing::EventsEpoch)
        c.setEpochSampler(&epoch);

    util::Rng rng(7);
    uint64_t now = 0;
    for (auto _ : state) {
        cache::MemRequest req;
        req.address = rng.nextBounded(4096) * 64;
        req.pc = 0x400000 + 4 * rng.nextBounded(64);
        req.type = trace::AccessType::Load;
        const uint64_t ready = c.access(req, now);
        now += 1000;
        benchmark::DoNotOptimize(ready);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()));
}

} // namespace

BENCHMARK_CAPTURE(cacheAccessBench, tracing_off, Tracing::Off);
BENCHMARK_CAPTURE(cacheAccessBench, tracing_events,
                  Tracing::Events);
BENCHMARK_CAPTURE(cacheAccessBench, tracing_events_sampled,
                  Tracing::EventsSampled);
BENCHMARK_CAPTURE(cacheAccessBench, tracing_events_epoch,
                  Tracing::EventsEpoch);

BENCHMARK_CAPTURE(policyBench, LRU, std::string("LRU"));
BENCHMARK_CAPTURE(policyBench, DRRIP, std::string("DRRIP"));
BENCHMARK_CAPTURE(policyBench, SHiP, std::string("SHiP"));
BENCHMARK_CAPTURE(policyBench, SHiPpp, std::string("SHiP++"));
BENCHMARK_CAPTURE(policyBench, Hawkeye, std::string("Hawkeye"));
BENCHMARK_CAPTURE(policyBench, KPC_R, std::string("KPC-R"));
BENCHMARK_CAPTURE(policyBench, EVA, std::string("EVA"));
BENCHMARK_CAPTURE(policyBench, PDP, std::string("PDP"));
BENCHMARK_CAPTURE(policyBench, RLR, std::string("RLR"));
BENCHMARK_CAPTURE(policyBench, RLR_unopt,
                  std::string("RLR-unopt"));

BENCHMARK_MAIN();
