/**
 * @file
 * Set-associative, write-back, write-allocate, non-blocking cache
 * with pluggable replacement policy and prefetcher.
 */

#ifndef RLR_CACHE_CACHE_HH
#define RLR_CACHE_CACHE_HH

#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "cache/geometry.hh"
#include "cache/memory_interface.hh"
#include "cache/prefetcher.hh"
#include "cache/replacement.hh"
#include "stats/stats.hh"

namespace rlr::obs
{
class EventLog;
class EpochSampler;
} // namespace rlr::obs

namespace rlr::cache
{

/** Callback invoked for every access to this cache (trace capture). */
using AccessSink = std::function<void(const trace::LlcAccess &)>;

/**
 * One cache level.
 *
 * Timing: lookups cost `geometry.latency`; misses recurse into the
 * next level and the block is tagged with its data-ready cycle.
 * MSHR pressure delays new misses once the outstanding-miss count
 * reaches `geometry.mshrs`.
 */
class Cache : public MemoryLevel
{
  public:
    /**
     * @param geom shape and timing
     * @param policy replacement policy (owned)
     * @param next next level (borrowed; outlives this cache)
     */
    Cache(CacheGeometry geom,
          std::unique_ptr<ReplacementPolicy> policy,
          MemoryLevel *next);

    /** Attach a prefetcher (owned). May be null. */
    void setPrefetcher(std::unique_ptr<Prefetcher> prefetcher);

    /**
     * L1 data caches take ownership on RFO: stores dirty the line
     * at this level. Lower levels leave RFO fills clean and only
     * become dirty via writebacks.
     */
    void setWritesOnRfo(bool v) { writes_on_rfo_ = v; }

    /** Install an access-capture sink (e.g. LLC trace recording). */
    void setAccessSink(AccessSink sink) { sink_ = std::move(sink); }

    /**
     * Attach a decision-level event log (borrowed; null detaches).
     * The log is bound to this cache's geometry and driven at
     * every hit / miss / fill / eviction / bypass. When detached
     * (the default) the access path compiles hook-free and pays
     * only one predicted dispatch branch per access.
     */
    void setEventLog(obs::EventLog *log);
    obs::EventLog *eventLog() { return events_; }

    /**
     * Attach an epoch time-series sampler (borrowed; null
     * detaches). The sampler is bound to this cache's set count
     * and given a valid-line occupancy provider.
     */
    void setEpochSampler(obs::EpochSampler *sampler);
    obs::EpochSampler *epochSampler() { return epoch_; }

    /**
     * Arm (or disarm) per-access invariant checking: after every
     * access the replacement policy's verifyInvariants hook runs on
     * the touched set and the per-type access counters are checked
     * for hit+miss == accesses consistency; violations throw
     * std::logic_error. Defaults to the RLR_VERIFY environment
     * variable (set and not "0"). Debug/fuzzing aid — adds O(ways)
     * work per access.
     */
    void setVerifyInvariants(bool v) { verify_ = v; }
    bool verifyingInvariants() const { return verify_; }

    /**
     * Minimum prefetch confidence required to install a prefetch
     * fill at THIS level. Lower-confidence prefetched data still
     * flows to the requester and fills levels below (KPC-style
     * fill-level control: low-confidence prefetches skip the L2
     * but land in the LLC).
     */
    void setPrefetchFillThreshold(float t) { pf_fill_threshold_ = t; }

    uint64_t access(const MemRequest &req, uint64_t now) override;

    const std::string &name() const override { return geom_.name; }

    const CacheGeometry &geometry() const { return geom_; }
    ReplacementPolicy *policy() { return policy_.get(); }

    /** @return true when the line is present (tests/diagnostics). */
    bool probe(uint64_t address) const;

    /** Read-only views of a set's blocks (tests/diagnostics). */
    std::vector<BlockView> setContents(uint32_t set) const;

    stats::StatSet &statSet() { return stats_; }
    const stats::StatSet &statSet() const { return stats_; }

    /**
     * Mount this cache's statistics under @p prefix in the
     * registry: the per-type access counters, derived demand
     * totals and hit rate, the replacement policy's storage
     * overhead and policy-specific stats (under
     * "<prefix>.policy"), and any attached prefetcher's stats
     * (under "<prefix>.prefetcher").
     */
    void describeStats(stats::Registry &reg,
                       const std::string &prefix);

    /** Zero statistics (end of warmup); cache contents persist. */
    void resetStats();

    /** Invalidate all blocks and clear stats. */
    void flush();

    /** Demand (LD+RFO) access/hit/miss totals. */
    uint64_t demandAccesses() const;
    uint64_t demandHits() const;
    uint64_t demandMisses() const;

    /** Currently valid lines (epoch occupancy sampling). */
    uint64_t validLines() const;

  private:
    struct Block
    {
        bool valid = false;
        bool dirty = false;
        bool prefetch = false;
        uint64_t tag = 0;
        /** Line-aligned byte address. */
        uint64_t address = 0;
        /** Cycle at which the block's data is present. */
        uint64_t ready_at = 0;
    };

    Block &block(uint32_t set, uint32_t way);
    const Block &block(uint32_t set, uint32_t way) const;

    /** @return hit way for (set, tag) or nullopt. */
    std::optional<uint32_t> lookup(uint32_t set, uint64_t tag) const;

    /**
     * Access body, compiled twice: Obs=false is the hook-free
     * disabled path; Obs=true drives the attached EventLog /
     * EpochSampler. access() dispatches once per call.
     */
    template <bool Obs>
    uint64_t accessImpl(const MemRequest &req, uint64_t now);

    /**
     * Install a line, evicting if necessary.
     * @return false when the fill was bypassed by the policy.
     */
    template <bool Obs>
    bool fillImpl(const MemRequest &req, uint64_t ready, bool dirty);

    /** Enforce MSHR capacity; may advance @p now. */
    uint64_t reserveMshr(uint64_t now, uint64_t ready);

    /** Run the armed invariant checks on @p set (throws). */
    void runVerify(uint32_t set) const;

    /** Let the prefetcher react to a demand access. */
    void runPrefetcher(const MemRequest &req, bool hit,
                       uint64_t now);

    void countAccess(trace::AccessType type, bool hit);

    CacheGeometry geom_;
    std::unique_ptr<ReplacementPolicy> policy_;
    MemoryLevel *next_;
    std::unique_ptr<Prefetcher> prefetcher_;
    AccessSink sink_;
    /** Borrowed observability hooks; null = disabled (the access
     *  path then runs the hook-free accessImpl<false>). */
    obs::EventLog *events_ = nullptr;
    obs::EpochSampler *epoch_ = nullptr;
    bool writes_on_rfo_ = false;
    float pf_fill_threshold_ = 0.0f;
    /** Invariant checking armed (RLR_VERIFY / fuzz harness). */
    bool verify_ = false;

    std::vector<Block> blocks_;
    /** Data-ready cycles of in-flight misses (MSHR accounting). */
    std::priority_queue<uint64_t, std::vector<uint64_t>,
                        std::greater<>>
        inflight_;
    /** Guard against recursive prefetch issue. */
    bool in_prefetch_ = false;

    stats::StatSet stats_;
};

} // namespace rlr::cache

#endif // RLR_CACHE_CACHE_HH
