file(REMOVE_RECURSE
  "librlr_core.a"
)
