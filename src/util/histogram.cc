#include "util/histogram.hh"

#include <algorithm>
#include "util/format.hh"

#include "util/logging.hh"

namespace rlr::util
{

Histogram::Histogram(size_t nbuckets, uint64_t bucket_width)
    : buckets_(nbuckets, 0), width_(bucket_width), overflow_(0),
      count_(0), sum_(0)
{
    ensure(nbuckets > 0 && bucket_width > 0, "Histogram: bad shape");
}

void
Histogram::sample(uint64_t value, uint64_t count)
{
    const size_t idx = static_cast<size_t>(value / width_);
    if (idx < buckets_.size())
        buckets_[idx] += count;
    else
        overflow_ += count;
    count_ += count;
    sum_ += value * count;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.buckets_.size() != buckets_.size() ||
        other.width_ != width_) {
        fatal("Histogram::merge: shape mismatch "
              "({} buckets of width {} vs {} buckets of width {})",
              buckets_.size(), width_, other.buckets_.size(),
              other.width_);
    }
    for (size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    overflow_ += other.overflow_;
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    count_ = 0;
    sum_ = 0;
}

double
Histogram::mean() const
{
    return count_ == 0
        ? 0.0
        : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    const auto target = static_cast<uint64_t>(
        q * static_cast<double>(count_));
    uint64_t acc = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        acc += buckets_[i];
        if (acc >= target)
            return (i + 1) * width_ - 1;
    }
    return buckets_.size() * width_;
}

double
Histogram::fractionBetween(uint64_t lo, uint64_t hi) const
{
    if (count_ == 0)
        return 0.0;
    uint64_t acc = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        const uint64_t b_lo = i * width_;
        if (b_lo >= lo && b_lo <= hi)
            acc += buckets_[i];
    }
    return static_cast<double>(acc) / static_cast<double>(count_);
}

std::string
Histogram::render(size_t max_width) const
{
    uint64_t peak = overflow_;
    for (const auto b : buckets_)
        peak = std::max(peak, b);
    if (peak == 0)
        return "(empty)\n";

    std::string out;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        const size_t bar = std::max<size_t>(
            1, static_cast<size_t>(buckets_[i] * max_width / peak));
        out += util::format("[{:>8}] {:>10} {}\n", i * width_,
                           buckets_[i], std::string(bar, '#'));
    }
    if (overflow_ > 0) {
        const size_t bar = std::max<size_t>(
            1, static_cast<size_t>(overflow_ * max_width / peak));
        out += util::format("[overflow] {:>10} {}\n", overflow_,
                           std::string(bar, '#'));
    }
    return out;
}

} // namespace rlr::util
