#include "policies/random.hh"

namespace rlr::policies
{

RandomPolicy::RandomPolicy(uint64_t seed)
    : seed_(seed), rng_(seed)
{
}

void
RandomPolicy::bind(const cache::CacheGeometry &geom)
{
    ways_ = geom.ways;
}

void
RandomPolicy::reset(const cache::CacheGeometry &geom)
{
    rng_ = util::Rng(seed_);
    bind(geom);
}

uint32_t
RandomPolicy::findVictim(const cache::AccessContext &ctx,
                         std::span<const cache::BlockView> blocks)
{
    (void)ctx;
    (void)blocks;
    return static_cast<uint32_t>(rng_.nextBounded(ways_));
}

void
RandomPolicy::onAccess(const cache::AccessContext &ctx)
{
    (void)ctx;
}

cache::StorageOverhead
RandomPolicy::overhead() const
{
    cache::StorageOverhead o;
    o.global_bits = 32; // LFSR
    return o;
}

} // namespace rlr::policies
