/**
 * @file
 * Shared command-line plumbing for the experiment harnesses. Every
 * bench binary accepts the same scaling knobs so the default
 * `for b in build/bench/*; do $b; done` pass completes quickly,
 * while --paper-scale approaches the paper's instruction counts.
 */

#ifndef RLR_BENCH_COMMON_HH
#define RLR_BENCH_COMMON_HH

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/chrome_trace.hh"
#include "obs/events_io.hh"
#include "obs/profiler.hh"
#include "sim/dist_runner.hh"
#include "sim/experiment.hh"
#include "sim/sweep_runner.hh"
#include "stats/stats.hh"
#include "trace/workloads.hh"
#include "util/args.hh"
#include "util/atomic_file.hh"
#include "util/rng.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "util/table.hh"

namespace rlr::bench
{

/** Parsed common options. */
struct BenchOptions
{
    sim::SimParams params;
    std::vector<std::string> workloads;
    std::vector<std::string> policies;
    size_t threads = 8;
    bool csv = false;
    uint64_t seed = 42;

    /** SweepRunner knobs (threads mirrored, --progress). */
    sim::SweepOptions sweep;
    /** --json: combined export path for every sweep in the run. */
    std::string json;
    /** --events: LLC decision-event export path (enables the
     *  event log for every cell). */
    std::string events;
    /** --chrome-trace: trace_event JSON path for the sweep. */
    std::string chrome_trace;
    /** --journal: base directory for durable sweep journals
     *  (each sweep in the binary gets a sweep-NNN subdir). */
    std::string journal;
    /** --profile: self-profile JSON export path (enables the
     *  scoped profiler for the whole run). */
    std::string profile;

    /** --workers: worker processes to spawn in supervisor mode
     *  (0 = single-process execution). */
    uint32_t workers = 0;
    /** --join: this process is a spawned (or manually joined)
     *  distributed-sweep worker. */
    bool join = false;

    /** RL-specific scaling. */
    uint64_t rl_instructions = 300'000;
    unsigned rl_epochs = 1;
};

/**
 * Build the shared parser.
 * @param description program banner
 * @param default_warmup / default_sim default instruction counts
 */
inline util::ArgParser
makeParser(const std::string &description)
{
    util::ArgParser parser(description);
    parser.addOption("warmup", "300000",
                     "Warmup instructions per core");
    parser.addOption("instructions", "1200000",
                     "Measured instructions per core");
    parser.addOption("workloads", "",
                     "Comma-separated workload names (default: "
                     "experiment-specific)");
    parser.addOption("policies", "",
                     "Comma-separated policy names (default: "
                     "experiment-specific)");
    parser.addOption("threads", "8", "Worker threads for sweeps");
    parser.addOption("seed", "42", "Master random seed");
    parser.addOption("rl-instructions", "300000",
                     "Instructions for RL trace capture");
    parser.addOption("rl-epochs", "2", "RL training epochs");
    parser.addOption("json", "",
                     "Write every sweep cell (result, telemetry, "
                     "error) as JSON to this path");
    parser.addOption("events", "",
                     "Record LLC decision events (fills, hits, "
                     "evictions, bypasses) and write them as JSON "
                     "to this path (tools/inspect input)");
    parser.addOption("events-capacity", "65536",
                     "Event-log ring capacity per cell "
                     "(with --events)");
    parser.addOption("events-sample", "1",
                     "Record events for 1-in-N LLC sets "
                     "(with --events)");
    parser.addOption("epoch", "0",
                     "LLC epoch length in accesses; adds "
                     "llc.epoch.* time-series to the stats "
                     "snapshot (0 = off)");
    parser.addOption("chrome-trace", "",
                     "Write the sweep schedule as Chrome "
                     "trace_event JSON (chrome://tracing, "
                     "Perfetto) to this path");
    parser.addOption("inject-fail", "",
                     "Force sweep cell <workload>:<policy> to "
                     "throw (shorthand for --faults "
                     "throw@<workload>:<policy>)");
    parser.addOption("journal", "",
                     "Durable sweep journal directory: completed "
                     "cells are recorded with atomic writes and "
                     "skipped when the run is restarted "
                     "(docs/ROBUSTNESS.md)");
    parser.addOption("cell-timeout", "0",
                     "Watchdog deadline per sweep-cell attempt in "
                     "seconds; a cell exceeding it is cancelled "
                     "with a 'timeout' error (0 = off)");
    parser.addOption("cell-retries", "0",
                     "Re-run a cell up to N times after retryable "
                     "failures (timeouts, transient faults) with "
                     "decorrelated-jitter backoff");
    parser.addOption("faults", "",
                     "Fault-injection plan: comma list of "
                     "kind[:N]@<index|workload:policy> or "
                     "kind%rate; kinds: throw, transient, hang, "
                     "abort, corrupt-journal, kill-worker, "
                     "stall-worker");
    parser.addOption("workers", "0",
                     "Spawn N worker processes that cooperatively "
                     "execute the sweeps over the shared --journal "
                     "via cell leases, then merge the journal into "
                     "the exports (docs/ROBUSTNESS.md)");
    parser.addOption("worker-id", "0",
                     "This worker's id inside a distributed sweep "
                     "(with --join; set by --workers when "
                     "spawning)");
    parser.addFlag("join",
                   "Join a distributed sweep as a worker claiming "
                   "cells from the shared --journal (exports are "
                   "left to the supervisor's merge pass)");
    parser.addOption("lease-ttl", "10",
                     "Distributed sweeps: seconds without renewal "
                     "before a worker's cell lease expires and the "
                     "cell is re-issued to survivors");
    parser.addOption("profile", "",
                     "Enable the scoped self-profiler and write "
                     "the merged call tree as JSON to this path "
                     "(tools/inspect --profile input)");
    parser.addOption("heartbeat", "",
                     "Write a machine-readable sweep heartbeat "
                     "file (atomically replaced every period; "
                     "tools/inspect --top input)");
    parser.addOption("heartbeat-period", "0.5",
                     "Heartbeat refresh period in seconds "
                     "(with --heartbeat)");
    parser.addFlag("resources",
                   "Record per-cell CPU/RSS/fault telemetry "
                   "(obs.res.* stats, cpu_*/max_rss_kb JSON "
                   "fields)");
    parser.addFlag("stable-json",
                   "Zero wall-clock telemetry (runtime_s, mips, "
                   "retry_wait_s) in JSON exports so same-seed "
                   "runs are byte-identical");
    parser.addFlag("csv", "Emit CSV instead of aligned tables");
    parser.addFlag("progress",
                   "Live sweep progress line (done/total, ETA) on "
                   "stderr");
    parser.addFlag("paper-scale",
                   "Use paper-scale run lengths (slow)");
    return parser;
}

/** Extract BenchOptions after parser.parse() succeeded. */
inline BenchOptions
makeOptions(const util::ArgParser &parser)
{
    BenchOptions opt;
    opt.params.warmup_instructions = parser.getUint("warmup");
    opt.params.sim_instructions = parser.getUint("instructions");
    opt.seed = parser.getUint("seed");
    opt.params.seed = opt.seed;
    opt.threads = parser.getUint("threads");
    opt.sweep.threads = opt.threads;
    opt.sweep.progress = parser.getFlag("progress");
    opt.sweep.stable_telemetry = parser.getFlag("stable-json");
    opt.json = parser.get("json");
    opt.events = parser.get("events");
    opt.chrome_trace = parser.get("chrome-trace");
    if (!opt.events.empty()) {
        opt.params.llc_events_capacity = static_cast<uint32_t>(
            parser.getUint("events-capacity"));
        opt.params.llc_events_sample_sets = static_cast<uint32_t>(
            parser.getUint("events-sample"));
    }
    opt.params.llc_epoch_length = parser.getUint("epoch");
    opt.journal = parser.get("journal");
    opt.profile = parser.get("profile");
    if (!opt.profile.empty())
        obs::Profiler::instance().setEnabled(true);
    opt.sweep.heartbeat_path = parser.get("heartbeat");
    opt.sweep.heartbeat_period_s =
        parser.getDouble("heartbeat-period");
    opt.params.record_resources = parser.getFlag("resources");
    opt.sweep.cell_timeout_s = parser.getDouble("cell-timeout");
    opt.sweep.cell_retries =
        static_cast<uint32_t>(parser.getUint("cell-retries"));
    // Bench sweeps always drain gracefully on SIGINT/SIGTERM
    // (finish in-flight cells' cancellation, flush journal and
    // partial exports, exit nonzero).
    opt.sweep.handle_signals = true;
    {
        std::string spec = parser.get("faults");
        const std::string inject = parser.get("inject-fail");
        if (!inject.empty()) {
            // Legacy shorthand for throw@<workload>:<policy>.
            if (!spec.empty())
                spec += ',';
            spec += "throw@" + inject;
        }
        if (!spec.empty()) {
            try {
                opt.sweep.faults = sim::FaultPlan::parse(spec);
            } catch (const std::exception &e) {
                util::fatal("{}", e.what());
            }
        }
    }
    opt.csv = parser.getFlag("csv");
    opt.workloads = parser.getList("workloads");
    opt.policies = parser.getList("policies");
    opt.rl_instructions = parser.getUint("rl-instructions");
    opt.rl_epochs = static_cast<unsigned>(parser.getUint("rl-epochs"));
    if (parser.getFlag("paper-scale")) {
        opt.params.warmup_instructions = 200'000'000;
        opt.params.sim_instructions = 1'000'000'000;
        opt.rl_instructions = 100'000'000;
        opt.rl_epochs = 4;
    }

    // ---- distributed sweeps (docs/ROBUSTNESS.md) ---------------
    opt.workers = static_cast<uint32_t>(parser.getUint("workers"));
    opt.join = parser.getFlag("join");
    opt.sweep.dist.lease_ttl_s = parser.getDouble("lease-ttl");
    if ((opt.workers > 0 || opt.join) && opt.journal.empty()) {
        util::fatal("distributed sweep execution (--workers / "
                    "--join) needs a shared --journal directory");
    }
    if (opt.join) {
        // Worker mode: claim cells through leases; leave every
        // export (JSON, events, traces, profile) to the
        // supervisor's merge pass, and publish a per-worker
        // heartbeat the supervisor aggregates.
        opt.sweep.dist.enabled = true;
        opt.sweep.dist.worker_id =
            static_cast<uint32_t>(parser.getUint("worker-id"));
        opt.json.clear();
        opt.events.clear();
        opt.chrome_trace.clear();
        opt.profile.clear();
        opt.sweep.json_path.clear();
        opt.sweep.progress = false;
        opt.sweep.heartbeat_path =
            sim::DistRunner::workerHeartbeatPath(
                opt.journal, opt.sweep.dist.worker_id);
    } else if (opt.workers > 0) {
        // Supervisor mode: spawn the workers (re-exec of this
        // binary with --join) and wait for them, then fall
        // through to the normal run as the merge pass — journal
        // resume collects every committed cell, and cells a
        // killed worker left behind run locally (their expired
        // leases are stolen).
        sim::DistRunner::Options dopts;
        dopts.workers = opt.workers;
        dopts.journal_dir = opt.journal;
        dopts.heartbeat_path = opt.sweep.heartbeat_path;
        dopts.heartbeat_period_s = opt.sweep.heartbeat_period_s;
        sim::DistRunner runner(dopts);
        runner.run(parser.rawArgs());
        opt.sweep.dist.enabled = true;
        opt.sweep.dist.worker_id = opt.workers;
        // Faults meant to murder workers must not kill the
        // process that merges their results.
        opt.sweep.faults = opt.sweep.faults.withoutProcessFatal();
    }
    return opt;
}

/** Print a table in the selected format. */
inline void
emit(const BenchOptions &opt, const util::Table &table)
{
    std::fputs(
        (opt.csv ? table.csv() : table.render()).c_str(), stdout);
}

namespace detail
{

/** Every sweep cell this binary has run, for the --json export. */
inline std::vector<sim::SweepCell> &
collectedCells()
{
    static std::vector<sim::SweepCell> cells;
    return cells;
}

/** Robustness counters merged over every sweep in this binary. */
inline stats::StatSet &
sweepStats()
{
    static stats::StatSet set("sweep");
    return set;
}

/**
 * Per-sweep options: each sweep a binary runs gets its own
 * journal subdirectory (<base>/sweep-NNN), so a figure with
 * several sweeps resumes each one independently.
 */
inline sim::SweepOptions
nextSweepOptions(const BenchOptions &opt)
{
    sim::SweepOptions sweep = opt.sweep;
    if (!opt.journal.empty()) {
        static int counter = 0;
        sweep.journal_dir = opt.journal + "/sweep-" +
                            std::to_string(counter++);
    }
    return sweep;
}

} // namespace detail

/**
 * Run a fault-isolated (workloads x policies) sweep with the
 * shared --threads/--progress knobs and record the cells for the
 * --json export / finish() failure report. Failed cells keep a
 * default result, so downstream tables print zeros for them
 * rather than aborting the whole figure.
 */
inline std::vector<sim::SweepCell>
runSweep(const BenchOptions &opt, const sim::SimParams &params,
         const std::vector<std::string> &workloads,
         const std::vector<std::string> &policies)
{
    sim::SweepRunner runner(params, detail::nextSweepOptions(opt));
    auto cells = runner.run(workloads, policies);
    detail::sweepStats().merge(runner.stats());
    detail::collectedCells().insert(detail::collectedCells().end(),
                                    cells.begin(), cells.end());
    return cells;
}

/** runSweep() with the options' own SimParams. */
inline std::vector<sim::SweepCell>
runSweep(const BenchOptions &opt,
         const std::vector<std::string> &workloads,
         const std::vector<std::string> &policies)
{
    return runSweep(opt, opt.params, workloads, policies);
}

/**
 * Shared epilogue for every bench main: write the --json export
 * (all sweeps combined, even after a signal drain), print the
 * sweep robustness counters when any fired, print an error table
 * when any cell failed, and return the process exit status
 * (1 on any cell failure, 130 after a SIGINT/SIGTERM drain).
 */
inline int
finish(const BenchOptions &opt)
{
    const auto &cells = detail::collectedCells();
    if (!opt.json.empty())
        sim::SweepRunner::writeJson(opt.json, cells);
    if (!opt.events.empty()) {
        std::vector<obs::CellEvents> logs;
        for (const auto &c : cells) {
            if (!c.ok() || c.result.llc_events.empty())
                continue;
            logs.push_back(obs::CellEvents{
                c.workload, c.policy, c.seed, c.result.llc_events});
        }
        obs::writeEvents(opt.events, logs);
    }
    obs::ProfileData profile_data;
    if (!opt.profile.empty()) {
        profile_data = obs::Profiler::instance().collect();
        util::atomicWriteFileOrFatal(
            opt.profile,
            obs::profileToJson(profile_data,
                               opt.sweep.stable_telemetry));
    }
    if (!opt.chrome_trace.empty()) {
        std::vector<obs::TraceSpan> spans =
            sim::SweepRunner::cellTraceSpans(cells);
        obs::assignLanes(spans);
        if (!opt.profile.empty()) {
            // Profiler spans live in their own process row
            // (pid 2) with per-thread lanes, so appending after
            // lane assignment keeps the sweep schedule packing.
            const auto prof = obs::profileTraceSpans(profile_data);
            spans.insert(spans.end(), prof.begin(), prof.end());
        }
        util::atomicWriteFileOrFatal(
            opt.chrome_trace,
            obs::chromeTraceJson(spans, "sweep"));
    }
    const auto &robustness = detail::sweepStats();
    if (robustness.value("retries") + robustness.value("timeouts") +
            robustness.value("resumed_cells") +
            robustness.value("cancelled_cells") +
            robustness.value("reaped_markers") +
            robustness.value("merged_cells") +
            robustness.value("lease_steals") +
            robustness.value("fenced_commits") >
        0) {
        std::puts("\n=== Sweep robustness ===");
        std::fputs(robustness.dump().c_str(), stdout);
    }
    const bool interrupted = sim::SweepRunner::interrupted();
    const bool any_failed = sim::SweepRunner::anyFailed(cells);
    if (interrupted) {
        std::puts("\ninterrupted: sweep drained after signal "
                  "(journal and partial exports written)");
    } else if (any_failed) {
        std::puts("\n=== Failed sweep cells ===");
        emit(opt, sim::SweepRunner::errorTable(cells));
    }
    // One exit-code policy for plain sweeps, workers, and the
    // supervisor: 130 on drain, 1 on any terminal cell failure,
    // 0 only when every cell committed.
    return sim::DistRunner::exitCode(interrupted, any_failed);
}

/** Names of all SPEC-like workloads. */
inline std::vector<std::string>
specNames()
{
    std::vector<std::string> names;
    for (const auto &w : trace::specWorkloads())
        names.push_back(w.name);
    return names;
}

/** Names of all CloudSuite-like workloads. */
inline std::vector<std::string>
cloudNames()
{
    std::vector<std::string> names;
    for (const auto &w : trace::cloudWorkloads())
        names.push_back(w.name);
    return names;
}

/** Names of the paper's eight RL-training workloads. */
inline std::vector<std::string>
trainingNames()
{
    std::vector<std::string> names;
    for (const auto &w : trace::trainingWorkloads())
        names.push_back(w.name);
    return names;
}

/**
 * Shared driver for the IPC-speedup figures (Figs. 10/11): sweep
 * (workloads x {LRU + policies}), print per-benchmark % speedup
 * over LRU and the overall geomean.
 */
inline void
runSpeedupFigure(const BenchOptions &opt,
                 const std::vector<std::string> &workloads,
                 const std::vector<std::string> &policies,
                 const std::string &title)
{
    std::vector<std::string> all_policies = {"LRU"};
    all_policies.insert(all_policies.end(), policies.begin(),
                        policies.end());
    const auto cells = runSweep(opt, workloads, all_policies);

    std::vector<std::string> header = {"Benchmark"};
    for (const auto &p : policies)
        header.push_back(p);
    util::Table table(header);

    std::vector<std::vector<double>> ratios(policies.size());
    for (const auto &w : workloads) {
        const auto &base = sim::findCell(cells, w, "LRU");
        std::vector<std::string> row = {w};
        for (size_t p = 0; p < policies.size(); ++p) {
            const auto &cell =
                sim::findCell(cells, w, policies[p]);
            const double ratio = stats::speedup(
                cell.result.ipc(), base.result.ipc());
            ratios[p].push_back(ratio);
            row.push_back(util::Table::fmt(
                100.0 * (ratio - 1.0), 2));
        }
        table.addRow(row);
    }
    std::vector<std::string> overall = {"Overall (geomean)"};
    for (size_t p = 0; p < policies.size(); ++p) {
        overall.push_back(util::Table::fmt(
            100.0 * (stats::geomean(ratios[p]) - 1.0), 2));
    }
    table.addRow(overall);

    std::printf("=== %s ===\n", title.c_str());
    std::puts("(IPC speedup over LRU, %)");
    emit(opt, table);
}

/**
 * Build @p count random 4-workload mixes from @p names (seeded,
 * reproducible) — the paper's multicore methodology with a
 * configurable mix count.
 */
inline std::vector<std::vector<std::string>>
makeMixes(const std::vector<std::string> &names, size_t count,
          uint64_t seed)
{
    util::Rng rng(seed ^ 0x4d495845ULL); // "MIXE"
    std::vector<std::vector<std::string>> mixes;
    for (size_t m = 0; m < count; ++m) {
        std::vector<std::string> mix;
        for (int c = 0; c < 4; ++c)
            mix.push_back(
                names[rng.nextBounded(names.size())]);
        mixes.push_back(std::move(mix));
    }
    return mixes;
}

/** One (mix, policy) result of a multicore sweep. */
struct MixCell
{
    size_t mix;
    std::string policy;
    sim::RunResult result;
};

/** Display label of mix @p m: "mix0(wlA+wlB+...)". */
inline std::string
mixLabel(size_t m, const std::vector<std::string> &mix)
{
    std::string label = "mix" + std::to_string(m) + "(";
    for (size_t c = 0; c < mix.size(); ++c) {
        if (c)
            label += '+';
        label += mix[c];
    }
    return label + ")";
}

/**
 * Run every (mix, policy) pair through the SweepRunner (same
 * fault isolation, telemetry, and --json recording as runSweep).
 */
inline std::vector<MixCell>
multicoreSweep(const BenchOptions &opt,
               const std::vector<std::vector<std::string>> &mixes,
               const std::vector<std::string> &policies)
{
    std::vector<sim::SweepRunner::CellSpec> specs;
    for (size_t m = 0; m < mixes.size(); ++m)
        for (const auto &p : policies)
            specs.push_back(sim::SweepRunner::CellSpec{
                mixLabel(m, mixes[m]), p, mixes[m]});
    sim::SweepRunner runner(opt.params,
                            detail::nextSweepOptions(opt));
    const auto sweep_cells = runner.runCells(std::move(specs));
    detail::sweepStats().merge(runner.stats());
    detail::collectedCells().insert(detail::collectedCells().end(),
                                    sweep_cells.begin(),
                                    sweep_cells.end());

    std::vector<MixCell> cells;
    cells.reserve(sweep_cells.size());
    for (size_t i = 0; i < sweep_cells.size(); ++i) {
        cells.push_back(MixCell{i / policies.size(),
                                sweep_cells[i].policy,
                                sweep_cells[i].result});
    }
    return cells;
}

/** Find a multicore cell. */
inline const MixCell &
findMixCell(const std::vector<MixCell> &cells, size_t mix,
            const std::string &policy)
{
    for (const auto &c : cells)
        if (c.mix == mix && c.policy == policy)
            return c;
    util::fatal("mix cell ({}, {}) not found", mix, policy);
}

} // namespace rlr::bench

#endif // RLR_BENCH_COMMON_HH
