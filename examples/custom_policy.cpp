/**
 * @file
 * Shows how to implement a new replacement policy against the
 * public API and evaluate it in the full system next to the
 * built-in policies.
 *
 * The example policy ("FIFO-H") evicts in insertion order but
 * protects lines that have been hit at least once — a two-line
 * illustration of the ReplacementPolicy interface.
 */

#include <cstdio>
#include <vector>

#include "cache/replacement.hh"
#include "core/policy_factory.hh"
#include "policies/lru.hh"
#include "sim/system.hh"
#include "trace/workloads.hh"

using namespace rlr;

namespace
{

/** FIFO with one protection bit per line. */
class FifoHPolicy : public cache::ReplacementPolicy
{
  public:
    void
    bind(const cache::CacheGeometry &geom) override
    {
        ways_ = geom.ways;
        inserted_.assign(
            static_cast<size_t>(geom.numSets()) * ways_, 0);
        hit_.assign(inserted_.size(), false);
    }

    uint32_t
    findVictim(const cache::AccessContext &ctx,
               std::span<const cache::BlockView> blocks) override
    {
        (void)blocks;
        const size_t base = static_cast<size_t>(ctx.set) * ways_;
        // Oldest unprotected line; fall back to oldest overall.
        uint32_t victim = 0;
        uint64_t oldest = ~0ULL;
        bool found_unprotected = false;
        for (uint32_t w = 0; w < ways_; ++w) {
            const bool prot = hit_[base + w];
            if (found_unprotected && prot)
                continue;
            if ((!found_unprotected && !prot) ||
                inserted_[base + w] < oldest) {
                if (!prot || !found_unprotected) {
                    victim = w;
                    oldest = inserted_[base + w];
                    found_unprotected |= !prot;
                }
            }
        }
        return victim;
    }

    void
    onAccess(const cache::AccessContext &ctx) override
    {
        const size_t idx =
            static_cast<size_t>(ctx.set) * ways_ + ctx.way;
        if (ctx.hit) {
            hit_[idx] = true;
        } else {
            inserted_[idx] = ++clock_;
            hit_[idx] = false;
        }
    }

    std::string name() const override { return "FIFO-H"; }

    cache::StorageOverhead
    overhead() const override
    {
        cache::StorageOverhead o;
        o.bits_per_line = 1; // the protection bit (FIFO pointer
                             // amortizes to log2(ways)/set)
        o.bits_per_set = 4;
        return o;
    }

  private:
    uint32_t ways_ = 0;
    uint64_t clock_ = 0;
    std::vector<uint64_t> inserted_;
    std::vector<bool> hit_;
};

double
runWith(std::unique_ptr<cache::ReplacementPolicy> policy,
        const std::string &workload)
{
    // Wire a system manually so the custom policy can be injected
    // (the factory only knows built-in names).
    mem::Dram dram;
    cache::CacheGeometry llc_geom;
    llc_geom.name = "LLC";
    llc_geom.size_bytes = 2 * 1024 * 1024;
    llc_geom.ways = 16;
    llc_geom.latency = 26;
    llc_geom.mshrs = 64;
    cache::Cache llc(llc_geom, std::move(policy), &dram);

    cache::CacheGeometry l2_geom;
    l2_geom.name = "L2";
    l2_geom.size_bytes = 256 * 1024;
    l2_geom.ways = 8;
    l2_geom.latency = 12;
    l2_geom.mshrs = 32;
    cache::Cache l2(l2_geom,
                    std::make_unique<policies::LruPolicy>(), &llc);

    cache::CacheGeometry l1_geom;
    l1_geom.name = "L1D";
    l1_geom.size_bytes = 32 * 1024;
    l1_geom.ways = 8;
    l1_geom.latency = 4;
    l1_geom.mshrs = 16;
    cache::Cache l1d(l1_geom,
                     std::make_unique<policies::LruPolicy>(), &l2);
    l1d.setWritesOnRfo(true);
    cache::Cache l1i(l1_geom,
                     std::make_unique<policies::LruPolicy>(), &l2);

    cpu::O3Core core({}, 0, &l1i, &l1d);
    auto gen = trace::makeGenerator(workload, 42);
    core.run(*gen, 250'000);
    core.beginMeasurement();
    llc.resetStats();
    core.run(*gen, 1'000'000);
    std::printf("  %-8s IPC %.4f, LLC demand hit rate %5.1f%%\n",
                llc.policy()->name().c_str(), core.ipc(),
                100.0 *
                    (llc.demandAccesses()
                         ? static_cast<double>(llc.demandHits()) /
                               static_cast<double>(
                                   llc.demandAccesses())
                         : 0.0));
    return core.ipc();
}

} // namespace

int
main()
{
    const std::string workload = "471.omnetpp";
    std::printf("Evaluating a custom policy (FIFO-H) against "
                "built-ins on %s:\n",
                workload.c_str());
    const double lru =
        runWith(core::makePolicy("LRU"), workload);
    const double rlr =
        runWith(core::makePolicy("RLR"), workload);
    const double mine =
        runWith(std::make_unique<FifoHPolicy>(), workload);
    std::printf("\nFIFO-H vs LRU: %+.2f%% | RLR vs LRU: "
                "%+.2f%%\n",
                100.0 * (mine / lru - 1.0),
                100.0 * (rlr / lru - 1.0));
    return 0;
}
