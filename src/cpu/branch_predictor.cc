#include "cpu/branch_predictor.hh"

#include "util/bits.hh"

namespace rlr::cpu
{

GsharePredictor::GsharePredictor(BranchPredictorConfig config)
    : config_(config)
{
    table_.assign(1ULL << config_.index_bits,
                  util::SatCounter(2, 1)); // weakly not-taken
}

size_t
GsharePredictor::index(uint64_t pc) const
{
    const uint64_t hist =
        history_ & util::mask(config_.history_bits);
    return static_cast<size_t>(((pc >> 2) ^ hist) &
                               util::mask(config_.index_bits));
}

bool
GsharePredictor::predict(uint64_t pc) const
{
    const auto &ctr = table_[index(pc)];
    return ctr.value() >= (ctr.maxValue() + 1) / 2;
}

void
GsharePredictor::update(uint64_t pc, bool taken)
{
    auto &ctr = table_[index(pc)];
    if (taken)
        ++ctr;
    else
        --ctr;
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

bool
GsharePredictor::predictAndUpdate(uint64_t pc, bool taken)
{
    ++lookups_;
    const bool correct = predict(pc) == taken;
    if (!correct)
        ++mispredicts_;
    update(pc, taken);
    return correct;
}

} // namespace rlr::cpu
