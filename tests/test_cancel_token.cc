/**
 * @file
 * util::CancelToken semantics, cancellation checkpoints in the
 * core run loop, and the watchdog-overhead bound: attaching a
 * (never-firing) token to a simulation measures well under 1%
 * wall clock on a quiet machine; the ctest bound allows < 3% to
 * stay robust against scheduler jitter, which on a shared host
 * is the same order as the effect (a genuinely expensive
 * checkpoint — a lock or a syscall — would blow far past it).
 * The token-attached path does strictly more work than the
 * disabled path (mask test + pointer test + atomic load vs mask
 * test + pointer test), so bounding it also bounds the disabled
 * path's overhead.
 *
 * Wall-clock measurements on shared machines are noisy, so the
 * overhead test interleaves repetitions, compares minima (the
 * classic noise-robust estimator), and SKIPs instead of failing
 * when the baseline itself is too unstable to support the claim
 * (same methodology as test_obs_overhead).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "sim/experiment.hh"
#include "util/cancel_token.hh"

using namespace rlr;
using util::CancelledError;
using util::CancelToken;

TEST(CancelToken, StartsClear)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelToken::Reason::None);
}

TEST(CancelToken, FirstCancelWins)
{
    CancelToken token;
    token.cancel(CancelToken::Reason::Timeout);
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelToken::Reason::Timeout);
    // A later cancel with a different reason must not overwrite.
    token.cancel(CancelToken::Reason::Signal);
    EXPECT_EQ(token.reason(), CancelToken::Reason::Timeout);
}

TEST(CancelToken, ResetRearms)
{
    CancelToken token;
    token.cancel(CancelToken::Reason::Signal);
    token.reset();
    EXPECT_FALSE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelToken::Reason::None);
    token.cancel(CancelToken::Reason::Other);
    EXPECT_EQ(token.reason(), CancelToken::Reason::Other);
}

TEST(CancelToken, ReasonNames)
{
    EXPECT_STREQ(CancelToken::reasonName(
                     CancelToken::Reason::None),
                 "none");
    EXPECT_STREQ(CancelToken::reasonName(
                     CancelToken::Reason::Timeout),
                 "timeout");
    EXPECT_STREQ(CancelToken::reasonName(
                     CancelToken::Reason::Signal),
                 "signal");
    EXPECT_STREQ(CancelToken::reasonName(
                     CancelToken::Reason::Other),
                 "other");
}

TEST(CancelToken, CancelledErrorCarriesReason)
{
    const CancelledError err(CancelToken::Reason::Timeout);
    EXPECT_EQ(err.reason(), CancelToken::Reason::Timeout);
    EXPECT_NE(std::string(err.what()).find("timeout"),
              std::string::npos);
}

TEST(CancelToken, PreCancelledSimulationThrowsAtFirstCheckpoint)
{
    CancelToken token;
    token.cancel(CancelToken::Reason::Other);
    sim::SimParams params;
    params.warmup_instructions = 10'000;
    params.sim_instructions = 10'000;
    params.cancel = &token;
    EXPECT_THROW(sim::runSingleCore("429.mcf", params),
                 CancelledError);
}

TEST(CancelToken, MidRunCancellationUnwindsPromptly)
{
    CancelToken token;
    sim::SimParams params;
    // Long enough that an uncancelled run takes many seconds.
    params.warmup_instructions = 0;
    params.sim_instructions = 400'000'000;
    params.cancel = &token;

    std::thread canceller([&] {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(50));
        token.cancel(CancelToken::Reason::Signal);
    });
    const auto start = std::chrono::steady_clock::now();
    try {
        sim::runSingleCore("429.mcf", params);
        FAIL() << "expected CancelledError";
    } catch (const CancelledError &e) {
        EXPECT_EQ(e.reason(), CancelToken::Reason::Signal);
    }
    canceller.join();
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    // The next checkpoint is at most kCancelCheckInterval
    // instructions away — generously, well under 5 s even on a
    // loaded machine.
    EXPECT_LT(seconds, 5.0);
}

namespace
{

/** One timed simulation repetition. @return nanoseconds. */
uint64_t
simNanos(const util::CancelToken *token)
{
    sim::SimParams params;
    params.warmup_instructions = 10'000;
    params.sim_instructions = 120'000;
    params.cancel = token;
    const auto start = std::chrono::steady_clock::now();
    const auto result = sim::runSingleCore("429.mcf", params);
    const auto end = std::chrono::steady_clock::now();
    EXPECT_GT(result.total_instructions, 0u);
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            end - start)
            .count());
}

/**
 * One full measurement: interleaved repetitions, min-of-reps
 * ratio, with the 10% baseline-spread noise gate. Negative
 * return means "too noisy to judge".
 */
double
measureRatio(const util::CancelToken *token)
{
    constexpr int kReps = 9;
    std::vector<uint64_t> base, with_token;
    for (int r = 0; r < kReps; ++r) {
        // Interleaved so slow drift hits both variants equally.
        base.push_back(simNanos(nullptr));
        with_token.push_back(simNanos(token));
    }

    const uint64_t base_min =
        *std::min_element(base.begin(), base.end());
    const uint64_t token_min = *std::min_element(
        with_token.begin(), with_token.end());
    if (base_min == 0)
        return -1.0;

    // Noise gate: if the baseline's own repetitions spread more
    // than 10%, this machine cannot support a tight assertion.
    std::sort(base.begin(), base.end());
    const double spread =
        static_cast<double>(base[kReps / 2] - base_min) /
        static_cast<double>(base_min);
    if (spread > 0.10)
        return -1.0;

    return static_cast<double>(token_min) /
           static_cast<double>(base_min);
}

} // namespace

TEST(CancelToken, CheckpointOverheadUnderThreePercent)
{
    // Warm caches/allocator before measuring.
    simNanos(nullptr);

    util::CancelToken token; // armed, never cancelled

    // Noise only ever inflates a measured ratio, so the smallest
    // clean measurement is the best estimate of the true cost:
    // retry a few times and accept the first one under the bound.
    double best = -1.0;
    for (int attempt = 0; attempt < 5; ++attempt) {
        if (attempt != 0) {
            // Let a noise episode (another core's burst, a
            // frequency transition) pass before re-measuring.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
        const double ratio = measureRatio(&token);
        if (ratio >= 0.0 && (best < 0.0 || ratio < best))
            best = ratio;
        if (best >= 0.0 && best < 1.03)
            break;
    }
    if (best < 0.0)
        GTEST_SKIP() << "baseline too noisy for a 3% claim";

    EXPECT_LT(best, 1.03)
        << "cancellation checkpoint overhead "
        << (best - 1.0) * 100.0 << "%";
}
