/**
 * @file
 * Regenerates Figure 3: heat map of first-layer neural-network
 * weight magnitudes per feature group, one column per training
 * benchmark. The paper reads the high-weight rows (access preuse,
 * line preuse, line last access type, line hits since insertion,
 * line recency) as the features worth building a policy from.
 */

#include "bench/common.hh"
#include "ml/analysis.hh"

using namespace rlr;

int
main(int argc, char **argv)
{
    auto parser = bench::makeParser(
        "Figure 3: NN weight heat map per feature and benchmark");
    if (!parser.parse(argc, argv))
        return 0;
    auto opt = bench::makeOptions(parser);

    auto workloads = opt.workloads;
    if (workloads.empty())
        workloads = bench::trainingNames();

    std::vector<std::vector<double>> columns(workloads.size());
    util::ThreadPool::parallelFor(
        workloads.size(), opt.threads, [&](size_t i) {
            sim::SimParams p = opt.params;
            p.sim_instructions = opt.rl_instructions;
            const auto trace =
                sim::captureLlcTrace(workloads[i], p);
            if (trace.empty())
                return;
            ml::OfflineSimulator osim(ml::OfflineConfig{}, &trace);
            ml::AgentConfig cfg;
            cfg.seed = opt.seed + 17 * i;
            const auto tr =
                ml::trainAgent(osim, cfg, opt.rl_epochs);
            columns[i] = ml::groupSaliency(tr.agent->network(),
                                           osim.extractor());
        });

    std::puts("=== Figure 3: neural network weight heat map ===");
    std::fputs(ml::renderHeatMap(workloads, columns).c_str(),
               stdout);

    // Aggregate importance ranking across benchmarks.
    std::vector<double> avg(ml::kNumFeatureGroups, 0.0);
    size_t cols = 0;
    for (const auto &col : columns) {
        if (col.empty())
            continue;
        double peak = 0.0;
        for (const auto v : col)
            peak = std::max(peak, v);
        if (peak <= 0.0)
            continue;
        for (size_t g = 0; g < col.size(); ++g)
            avg[g] += col[g] / peak;
        ++cols;
    }
    std::vector<size_t> order(ml::kNumFeatureGroups);
    for (size_t g = 0; g < order.size(); ++g)
        order[g] = g;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return avg[a] > avg[b];
    });

    std::puts("\nTop feature groups by mean normalized saliency:");
    for (size_t k = 0; k < 6 && k < order.size(); ++k) {
        std::printf("  %zu. %s (%.2f)\n", k + 1,
                    std::string(ml::featureGroupName(
                        static_cast<ml::FeatureGroup>(order[k])))
                        .c_str(),
                    cols ? avg[order[k]] / static_cast<double>(cols)
                         : 0.0);
    }
    std::puts("\nPaper's high-weight features: access preuse, line "
              "preuse, line last access type, line hits since "
              "insertion, line recency.");
    return 0;
}
