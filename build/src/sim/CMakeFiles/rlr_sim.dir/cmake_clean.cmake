file(REMOVE_RECURSE
  "CMakeFiles/rlr_sim.dir/experiment.cc.o"
  "CMakeFiles/rlr_sim.dir/experiment.cc.o.d"
  "CMakeFiles/rlr_sim.dir/system.cc.o"
  "CMakeFiles/rlr_sim.dir/system.cc.o.d"
  "librlr_sim.a"
  "librlr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
