/**
 * @file
 * Signature-based Hit Predictor replacement (Wu et al., MICRO 2011)
 * and the SHiP++ refinements (Young et al., CRC2 2017). Both are
 * PC-based: they index a Signature History Counter Table (SHCT) by
 * a hashed PC signature and choose the insertion RRPV from the
 * signature's observed re-reference behaviour.
 */

#ifndef RLR_POLICIES_SHIP_HH
#define RLR_POLICIES_SHIP_HH

#include <vector>

#include "cache/replacement.hh"
#include "util/sat_counter.hh"

namespace rlr::policies
{

/** Shared configuration for SHiP-family policies. */
struct ShipConfig
{
    /** RRPV bits per line. */
    unsigned rrpv_bits = 2;
    /** PC signature width (SHCT index bits). */
    unsigned signature_bits = 14;
    /** SHCT counter width. */
    unsigned shct_bits = 3;
};

/** SHiP replacement. */
class ShipPolicy : public cache::ReplacementPolicy
{
  public:
    explicit ShipPolicy(ShipConfig config = {});

    void bind(const cache::CacheGeometry &geom) override;
    uint32_t
    findVictim(const cache::AccessContext &ctx,
               std::span<const cache::BlockView> blocks) override;
    void onAccess(const cache::AccessContext &ctx) override;
    void onEviction(uint32_t set, uint32_t way,
                    const cache::BlockView &block) override;
    void verifyInvariants(
        uint32_t set,
        std::span<const cache::BlockView> blocks) const override;
    std::string name() const override { return "SHiP"; }
    bool usesPc() const override { return true; }
    cache::StorageOverhead overhead() const override;

    /** SHCT counter value for a raw PC (tests). */
    uint64_t shctValue(uint64_t pc) const;

  protected:
    struct LineState
    {
        uint8_t rrpv = 3;
        uint32_t signature = 0;
        /** Set once the line is re-referenced (outcome bit). */
        bool outcome = false;
        /** Line was filled by a prefetch access. */
        bool prefetched = false;
    };

    uint32_t signature(uint64_t pc,
                       trace::AccessType type) const;
    LineState &line(uint32_t set, uint32_t way);
    uint32_t agingVictim(uint32_t set);

    /** Insertion hook; SHiP++ overrides. */
    virtual uint8_t insertionRrpv(const cache::AccessContext &ctx,
                                  uint32_t sig);
    /** Hit hook; SHiP++ overrides. */
    virtual void handleHit(const cache::AccessContext &ctx,
                           LineState &ls);

    ShipConfig config_;
    uint8_t max_rrpv_ = 3;
    uint32_t ways_ = 0;
    uint32_t num_sets_ = 0;
    std::vector<LineState> lines_;
    std::vector<util::SatCounter> shct_;
};

/** SHiP++ refinements over SHiP. */
class ShipPPPolicy : public ShipPolicy
{
  public:
    explicit ShipPPPolicy(ShipConfig config = {});

    std::string name() const override { return "SHiP++"; }
    cache::StorageOverhead overhead() const override;

  protected:
    uint8_t insertionRrpv(const cache::AccessContext &ctx,
                          uint32_t sig) override;
    void handleHit(const cache::AccessContext &ctx,
                   LineState &ls) override;
};

} // namespace rlr::policies

#endif // RLR_POLICIES_SHIP_HH
