#include "sim/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include <unistd.h>

#include "obs/chrome_trace.hh"
#include "obs/heartbeat.hh"
#include "obs/profiler.hh"
#include "obs/resource.hh"
#include "sim/journal.hh"
#include "stats/export.hh"
#include "util/atomic_file.hh"
#include "util/cancel_token.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

#ifndef RLR_GIT_DESCRIBE
#define RLR_GIT_DESCRIBE "unknown"
#endif

namespace rlr::sim
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

int64_t
nowMillis()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now().time_since_epoch())
        .count();
}

/** FNV-1a over the label; stable across platforms and runs. */
uint64_t
hashLabel(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** splitmix64 finalizer: decorrelates nearby seeds. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

// Shared JSON primitives (stats/export.hh).
using stats::json::escape;
using stats::json::number;

// ---- signal drain -----------------------------------------------
//
// The handler only records the signal number; the sweep's monitor
// thread notices the flag and performs the actual drain (cancel
// in-flight cells, skip pending ones). The flag is process-global
// and sticky, so once a drain starts every later sweep in the same
// process drains immediately too — Ctrl-C stops the whole bench,
// not just the current figure.

std::atomic<int> g_signal_caught{0};
std::atomic<bool> g_sweep_interrupted{false};

void
sweepSignalHandler(int signo)
{
    g_signal_caught.store(signo, std::memory_order_relaxed);
    // A second signal kills the process the default way.
    std::signal(signo, SIG_DFL);
}

/** Installs drain handlers for the sweep; restores on scope exit. */
class SignalGuard
{
  public:
    explicit SignalGuard(bool enable) : active_(enable)
    {
        if (!active_)
            return;
        struct sigaction sa = {};
        sa.sa_handler = sweepSignalHandler;
        sigemptyset(&sa.sa_mask);
        sigaction(SIGINT, &sa, &old_int_);
        sigaction(SIGTERM, &sa, &old_term_);
    }
    ~SignalGuard()
    {
        if (!active_)
            return;
        sigaction(SIGINT, &old_int_, nullptr);
        sigaction(SIGTERM, &old_term_, nullptr);
    }
    SignalGuard(const SignalGuard &) = delete;
    SignalGuard &operator=(const SignalGuard &) = delete;

  private:
    bool active_;
    struct sigaction old_int_ = {};
    struct sigaction old_term_ = {};
};

/** Per-cell watchdog state shared with the monitor thread. */
struct AttemptSlot
{
    util::CancelToken token;
    /** Deadline in steady-clock millis; -1 = no attempt armed. */
    std::atomic<int64_t> deadline_ms{-1};

    // Distributed sweeps: the lease this slot's worker thread
    // currently holds. fence 0 = none; the monitor thread renews
    // held leases every TTL/3 unless `stalled` (the stall-worker
    // fault deliberately lets the lease expire).
    std::atomic<uint64_t> lease_fence{0};
    std::atomic<uint32_t> lease_attempt{0};
    /** Last renewal in steady-clock millis. */
    std::atomic<int64_t> lease_renew_ms{0};
    std::atomic<bool> stalled{false};
};

/**
 * Decorrelated jitter (the AWS architecture-blog variant): each
 * wait is uniform in [base, 3 * previous], capped. @p prev is
 * updated in place.
 */
double
decorrelatedJitter(util::Rng &rng, double &prev, double base,
                   double cap)
{
    const double hi = std::max(base, prev * 3.0);
    double wait = base + rng.nextDouble() * (hi - base);
    wait = std::min(wait, std::max(base, cap));
    prev = wait;
    return wait;
}

/** Sleep @p seconds in small slices, bailing on drain. */
void
sleepInterruptible(double seconds,
                   const std::atomic<bool> &draining)
{
    const auto t0 = Clock::now();
    while (secondsSince(t0) < seconds &&
           !draining.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(5));
    }
}

/** Raise the configured fault before the cell body runs. */
void
injectFault(const FaultAction &fault, uint32_t attempt,
            const util::CancelToken &token)
{
    switch (fault.kind) {
      case FaultKind::None:
      case FaultKind::AbortProcess:   // handled before the loop
      case FaultKind::CorruptJournal: // handled at journal time
      case FaultKind::KillWorker:     // handled before the loop
      case FaultKind::StallWorker:    // handled before the loop
        return;
      case FaultKind::Throw:
        throw std::runtime_error("injected fault: throw");
      case FaultKind::Transient:
        if (attempt <= fault.fail_attempts) {
            throw RetryableError(util::format(
                "injected fault: transient (attempt {} of {})",
                attempt, fault.fail_attempts));
        }
        return;
      case FaultKind::Hang:
        // Block exactly like a wedged simulation would: the only
        // way out is the cooperative cancel token (watchdog
        // timeout or signal drain).
        while (!token.cancelled()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
        throw util::CancelledError(token.reason());
    }
}

} // namespace

SweepRunner::SweepRunner(SimParams params, SweepOptions opts)
    : params_(std::move(params)), opts_(std::move(opts))
{
}

uint64_t
SweepRunner::cellSeed(uint64_t master_seed,
                      const std::string &workload)
{
    return mix64(master_seed ^ hashLabel(workload));
}

bool
SweepRunner::interrupted()
{
    return g_sweep_interrupted.load(std::memory_order_relaxed);
}

std::vector<SweepCell>
SweepRunner::run(const std::vector<std::string> &workloads,
                 const std::vector<std::string> &policies)
{
    std::vector<CellSpec> specs;
    specs.reserve(workloads.size() * policies.size());
    for (const auto &w : workloads)
        for (const auto &p : policies)
            specs.push_back(CellSpec{w, p, {w}});
    return runCells(std::move(specs));
}

std::vector<SweepCell>
SweepRunner::runCells(std::vector<CellSpec> specs)
{
    const size_t n = specs.size();
    std::vector<SweepCell> cells(n);
    for (size_t i = 0; i < n; ++i) {
        cells[i].workload = specs[i].workload;
        cells[i].policy = specs[i].policy;
        cells[i].seed = cellSeed(params_.seed, specs[i].workload);
    }

    // ---- journal open + resume ----------------------------------
    if (opts_.dist.enabled && opts_.journal_dir.empty()) {
        util::fatal("distributed sweep execution needs a shared "
                    "--journal directory");
    }
    std::unique_ptr<SweepJournal> journal;
    std::vector<uint64_t> hashes(n, 0);
    std::vector<char> resumed_mask(n, 0);
    size_t resumed = 0;
    size_t reaped_markers = 0;
    if (!opts_.journal_dir.empty()) {
        for (size_t i = 0; i < n; ++i)
            hashes[i] =
                SweepJournal::specHash(specs[i], cells[i].seed);
        JournalHeader header;
        header.master_seed = params_.seed;
        header.config_hash = sweepConfigHash(params_, specs);
        header.build = RLR_GIT_DESCRIBE;
        header.writer = util::format(
            "pid {} worker {}", static_cast<long>(::getpid()),
            opts_.dist.worker_id);
        header.n_cells = n;
        try {
            journal = std::make_unique<SweepJournal>(
                opts_.journal_dir, header);
        } catch (const std::exception &e) {
            util::fatal("{}", e.what());
        }
        if (params_.llc_events_capacity > 0) {
            util::warn("--journal does not persist LLC event "
                       "logs; resumed cells carry empty events");
        }
        for (size_t i = 0; i < n; ++i) {
            if (journal->load(hashes[i], specs[i], cells[i].seed,
                              cells[i])) {
                cells[i].resumed = true;
                resumed_mask[i] = 1;
                ++resumed;
            }
        }
        // In-flight markers older than the lease TTL (or covered
        // by a record) are breadcrumbs of attempts a crashed
        // worker never finished.
        reaped_markers =
            journal->reapStaleMarkers(opts_.dist.lease_ttl_s);
        if (reaped_markers > 0) {
            util::warn("reaped {} stale in-flight marker{} in "
                       "'{}'",
                       reaped_markers,
                       reaped_markers == 1 ? "" : "s",
                       journal->dir());
        }
    }

    // Lease-based claiming (distributed execution only).
    std::unique_ptr<Lease> lease;
    if (opts_.dist.enabled) {
        lease = std::make_unique<Lease>(journal->dir(),
                                        opts_.dist.worker_id,
                                        opts_.dist.lease_ttl_s);
    }

    std::vector<size_t> pending;
    pending.reserve(n - resumed);
    for (size_t i = 0; i < n; ++i)
        if (!resumed_mask[i])
            pending.push_back(i);

    // ---- liveness heartbeat -------------------------------------
    std::unique_ptr<obs::HeartbeatWriter> heartbeat;
    if (!opts_.heartbeat_path.empty()) {
        heartbeat = std::make_unique<obs::HeartbeatWriter>(
            opts_.heartbeat_path, opts_.heartbeat_period_s, n,
            resumed);
    }

    // ---- watchdog / signal-drain monitor ------------------------
    std::vector<AttemptSlot> slots(n);
    std::atomic<bool> draining{false};
    std::atomic<bool> monitor_stop{false};
    SignalGuard signal_guard(opts_.handle_signals);
    // A sweep in an already-interrupted process drains at once.
    if (opts_.handle_signals &&
        g_signal_caught.load(std::memory_order_relaxed) != 0) {
        draining.store(true);
        g_sweep_interrupted.store(true);
    }

    const bool want_monitor = opts_.handle_signals ||
                              opts_.cell_timeout_s > 0.0 ||
                              lease != nullptr;
    std::thread monitor;
    if (want_monitor && !pending.empty()) {
        monitor = std::thread([&] {
            while (!monitor_stop.load(std::memory_order_relaxed)) {
                const int sig = g_signal_caught.load(
                    std::memory_order_relaxed);
                if (opts_.handle_signals && sig != 0) {
                    if (!draining.exchange(true)) {
                        g_sweep_interrupted.store(true);
                        // Serialized with the progress status
                        // line by the logging hook's mutex.
                        util::warn(
                            "sweep caught signal {}: draining "
                            "(cancelling in-flight cells, "
                            "keeping journal + partial JSON)",
                            sig);
                    }
                    // Re-cancel every poll: attempts armed in the
                    // race window still get the signal reason.
                    for (auto &slot : slots) {
                        slot.token.cancel(
                            util::CancelToken::Reason::Signal);
                    }
                }
                if (opts_.cell_timeout_s > 0.0) {
                    const int64_t now = nowMillis();
                    for (auto &slot : slots) {
                        const int64_t deadline =
                            slot.deadline_ms.load(
                                std::memory_order_relaxed);
                        if (deadline >= 0 && now > deadline) {
                            slot.token.cancel(
                                util::CancelToken::Reason::
                                    Timeout);
                        }
                    }
                }
                if (lease) {
                    // Renew held leases every TTL/3 so a live
                    // worker's cells are never stolen; a stalled
                    // slot (stall-worker fault) deliberately
                    // skips renewal and lets its lease expire.
                    const int64_t now = nowMillis();
                    const auto renew_every = static_cast<int64_t>(
                        opts_.dist.lease_ttl_s * 1000.0 / 3.0);
                    for (size_t i = 0; i < slots.size(); ++i) {
                        AttemptSlot &slot = slots[i];
                        const uint64_t fence =
                            slot.lease_fence.load(
                                std::memory_order_relaxed);
                        if (fence == 0 ||
                            slot.stalled.load(
                                std::memory_order_relaxed)) {
                            continue;
                        }
                        if (now - slot.lease_renew_ms.load(
                                      std::memory_order_relaxed) <
                            renew_every) {
                            continue;
                        }
                        lease->renew(hashes[i],
                                     slot.lease_attempt.load(
                                         std::memory_order_relaxed),
                                     fence);
                        slot.lease_renew_ms.store(
                            nowMillis(),
                            std::memory_order_relaxed);
                    }
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
        });
    }

    // ---- parallel cell execution --------------------------------
    const auto sweep_start = Clock::now();
    std::atomic<size_t> done{resumed};
    std::atomic<uint64_t> retry_count{0};
    std::atomic<uint64_t> timeout_count{0};
    std::atomic<uint64_t> failed_count{0};
    std::atomic<uint64_t> cancelled_count{0};
    std::atomic<uint64_t> completed_count{0};
    std::atomic<uint64_t> merged_count{0};
    std::atomic<uint64_t> fenced_count{0};
    std::atomic<uint64_t> steal_count{0};

    auto bump_progress = [&] {
        const size_t n_done = done.fetch_add(1) + 1;
        if (!opts_.progress)
            return;
        const double elapsed = secondsSince(sweep_start);
        const size_t fresh = n_done - resumed;
        const double eta =
            fresh == 0 ? 0.0
                       : elapsed / static_cast<double>(fresh) *
                             static_cast<double>(n - n_done);
        // Sticky status line: worker log messages erase/repaint
        // it through the logging mutex instead of interleaving.
        util::setStatusLine(util::format(
            "[sweep] {}/{} cells ({} resumed), {:.1f}s elapsed, "
            "eta {:.1f}s", n_done, n, resumed, elapsed, eta));
    };

    auto run_one = [&](size_t i) -> bool {
        RLR_PROF_SCOPE("sweep.cell");
        SweepCell &cell = cells[i];
        const CellSpec &spec = specs[i];
        AttemptSlot &slot = slots[i];
        const FaultAction fault = opts_.faults.actionFor(
            i, spec.workload + ":" + spec.policy, cell.seed);
        const std::string label =
            spec.workload + ":" + spec.policy;

        // Deterministic crash for the crash/resume harness: die
        // the instant this cell is reached, no flushing.
        if (fault.kind == FaultKind::AbortProcess &&
            !draining.load(std::memory_order_relaxed)) {
            std::raise(SIGKILL);
        }
        // Distributed faults, gated on fencing token 1 so only
        // the FIRST claimant misbehaves — survivors that re-claim
        // the cell run it clean and the sweep still converges.
        if (lease &&
            slot.lease_fence.load(std::memory_order_relaxed) <=
                1 &&
            !draining.load(std::memory_order_relaxed)) {
            if (fault.kind == FaultKind::KillWorker)
                std::raise(SIGKILL);
            if (fault.kind == FaultKind::StallWorker) {
                // Stop renewing and outlive the TTL: the lease
                // expires, a survivor re-issues the cell, and our
                // eventual commit is fenced off.
                slot.stalled.store(true,
                                   std::memory_order_relaxed);
                sleepInterruptible(opts_.dist.lease_ttl_s * 3.0,
                                   draining);
            }
        }

        SimParams p = params_;
        p.llc_policy = cell.policy;
        p.seed = cell.seed;
        p.cancel = &slot.token;

        const auto cell_start = Clock::now();
        cell.start_seconds = secondsSince(sweep_start);
        const obs::ResourceSample res_start =
            obs::ResourceSample::now(
                obs::ResourceSample::Scope::Thread);

        const uint32_t max_attempts = 1 + opts_.cell_retries;
        double backoff_prev = opts_.retry_base_s;
        util::Rng retry_rng(mix64(cell.seed ^ 0x7265747279ULL));
        bool signal_cancelled = false;

        for (uint32_t attempt = 1; attempt <= max_attempts;
             ++attempt) {
            cell.attempts = attempt;
            slot.lease_attempt.store(attempt,
                                     std::memory_order_relaxed);
            cell.error.clear();
            cell.timed_out = false;
            if (draining.load(std::memory_order_relaxed)) {
                cell.error = "cancelled: signal";
                signal_cancelled = true;
                break;
            }
            slot.token.reset();
            if (heartbeat)
                heartbeat->cellStarted(label, attempt);
            if (journal)
                journal->markInFlight(hashes[i], spec, attempt);
            if (opts_.cell_timeout_s > 0.0) {
                slot.deadline_ms.store(
                    nowMillis() +
                        static_cast<int64_t>(
                            opts_.cell_timeout_s * 1000.0),
                    std::memory_order_relaxed);
            }
            bool retryable = false;
            try {
                injectFault(fault, attempt, slot.token);
                cell.result = cell_fn_
                                  ? cell_fn_(spec, p)
                                  : runWorkloads(spec.cores, p);
            } catch (const util::CancelledError &e) {
                using Reason = util::CancelToken::Reason;
                if (e.reason() == Reason::Signal) {
                    cell.error = "cancelled: signal";
                    signal_cancelled = true;
                } else if (e.reason() == Reason::Timeout) {
                    // Derived from the flag value, not measured
                    // time, so resumed exports stay byte-equal.
                    cell.error = util::format(
                        "timeout: attempt exceeded "
                        "--cell-timeout {}s",
                        number(opts_.cell_timeout_s));
                    cell.timed_out = true;
                    retryable = true;
                    timeout_count.fetch_add(1);
                } else {
                    cell.error = e.what();
                }
            } catch (const RetryableError &e) {
                cell.error = e.what();
                retryable = true;
            } catch (const std::exception &e) {
                cell.error = e.what();
            } catch (...) {
                cell.error = "unknown exception";
            }
            slot.deadline_ms.store(-1,
                                   std::memory_order_relaxed);
            if (signal_cancelled || cell.ok())
                break;
            if (!retryable || attempt == max_attempts)
                break;
            retry_count.fetch_add(1);
            const double wait = decorrelatedJitter(
                retry_rng, backoff_prev, opts_.retry_base_s,
                opts_.retry_cap_s);
            cell.retry_wait_s += wait;
            sleepInterruptible(wait, draining);
        }

        cell.wall_seconds = secondsSince(cell_start);
        if (cell.ok() && cell.wall_seconds > 0.0) {
            cell.mips = static_cast<double>(
                            cell.result.total_instructions) /
                        cell.wall_seconds / 1e6;
        }
        const obs::ResourceSample res_delta =
            obs::ResourceSample::now(
                obs::ResourceSample::Scope::Thread)
                .deltaFrom(res_start);
        cell.cpu_user_s = res_delta.cpu_user_s;
        cell.cpu_sys_s = res_delta.cpu_sys_s;
        cell.max_rss_kb = res_delta.max_rss_kb;
        cell.minor_faults = res_delta.minor_faults;
        if (heartbeat)
            heartbeat->cellFinished(cell.ok());

        bool settled_here = false;
        if (signal_cancelled) {
            // Not a final outcome — the cell re-runs on resume.
            cancelled_count.fetch_add(1);
        } else if (lease &&
                   !lease->stillHeld(
                       hashes[i], slot.lease_fence.load(
                                      std::memory_order_relaxed))) {
            // Our lease was stolen while we ran (we stalled or
            // straggled past the re-issue threshold): the
            // thief's commit is authoritative, ours is dropped.
            fenced_count.fetch_add(1);
        } else {
            completed_count.fetch_add(1);
            if (!cell.ok())
                failed_count.fetch_add(1);
            if (journal) {
                journal->append(
                    hashes[i], cell,
                    fault.kind == FaultKind::CorruptJournal);
            }
            if (lease) {
                lease->release(hashes[i],
                               slot.lease_fence.load(
                                   std::memory_order_relaxed));
            }
            settled_here = true;
        }
        if (!lease || settled_here)
            bump_progress();
        return settled_here;
    };

    if (!lease) {
        util::ThreadPool::parallelFor(
            pending.size(), opts_.threads,
            [&](size_t k) { run_one(pending[k]); });
    } else {
        // ---- distributed claim-execute-commit loop --------------
        //
        // Every worker thread scans the unsettled cells: cells
        // another worker already committed are merged from the
        // journal; unclaimed cells are claimed through a lease and
        // run; expired leases (their worker was SIGKILLed or
        // hung) are stolen and re-issued. The loop ends when
        // every cell has a durable outcome — terminal failures
        // journal a record too, so convergence never depends on
        // cells succeeding.
        std::mutex sched_mu;
        std::vector<char> settled(resumed_mask);
        std::vector<double> walls; // committed cell wall clocks

        auto steal_after = [&]() -> double {
            // Straggler re-issue threshold: steal only after
            // max(TTL, 3 x median committed cell wall), so cells
            // that legitimately run long on a loaded machine are
            // not prematurely re-issued even if renewal lags.
            std::lock_guard<std::mutex> lk(sched_mu);
            if (walls.empty())
                return opts_.dist.lease_ttl_s;
            std::vector<double> s(walls);
            std::nth_element(s.begin(), s.begin() + s.size() / 2,
                             s.end());
            return std::max(opts_.dist.lease_ttl_s,
                            3.0 * s[s.size() / 2]);
        };

        auto worker_loop = [&](size_t) {
            while (!draining.load(std::memory_order_relaxed)) {
                bool all_settled = true;
                bool progressed = false;
                for (size_t i = 0; i < n; ++i) {
                    if (draining.load(std::memory_order_relaxed))
                        return;
                    {
                        std::lock_guard<std::mutex> lk(sched_mu);
                        if (settled[i])
                            continue;
                    }
                    all_settled = false;

                    // Merge a record another worker committed
                    // since we opened the journal.
                    SweepCell rec;
                    if (journal->reload(hashes[i], specs[i],
                                        cells[i].seed, rec)) {
                        bool first = false;
                        {
                            std::lock_guard<std::mutex> lk(
                                sched_mu);
                            if (!settled[i]) {
                                settled[i] = 1;
                                first = true;
                            }
                        }
                        if (first) {
                            cells[i] = rec;
                            merged_count.fetch_add(1);
                            if (!rec.ok())
                                failed_count.fetch_add(1);
                            if (heartbeat) {
                                heartbeat->cellStarted(
                                    specs[i].workload + ":" +
                                        specs[i].policy,
                                    rec.attempts);
                                heartbeat->cellFinished(rec.ok());
                            }
                            bump_progress();
                        }
                        progressed = true;
                        continue;
                    }

                    const Lease::Claim claim = lease->tryClaim(
                        hashes[i], 1, steal_after());
                    if (!claim.won)
                        continue; // held by a live worker — poll
                    if (claim.stole)
                        steal_count.fetch_add(1);
                    AttemptSlot &slot = slots[i];
                    slot.stalled.store(false,
                                       std::memory_order_relaxed);
                    slot.lease_attempt.store(
                        1, std::memory_order_relaxed);
                    slot.lease_renew_ms.store(
                        nowMillis(), std::memory_order_relaxed);
                    // Arm renewal last: the monitor ignores the
                    // slot until the fence is published.
                    slot.lease_fence.store(
                        claim.fence, std::memory_order_relaxed);
                    const bool committed = run_one(i);
                    slot.lease_fence.store(
                        0, std::memory_order_relaxed);
                    slot.stalled.store(false,
                                       std::memory_order_relaxed);
                    if (committed) {
                        std::lock_guard<std::mutex> lk(sched_mu);
                        settled[i] = 1;
                        walls.push_back(cells[i].wall_seconds);
                    }
                    progressed = true;
                }
                if (all_settled)
                    return;
                if (!progressed)
                    sleepInterruptible(opts_.dist.poll_s,
                                       draining);
            }
        };
        util::ThreadPool::parallelFor(opts_.threads,
                                      opts_.threads, worker_loop);

        // A drain leaves unsettled cells behind; label them so
        // the export and exit status reflect the interruption.
        for (size_t i = 0; i < n; ++i) {
            bool s;
            {
                std::lock_guard<std::mutex> lk(sched_mu);
                s = settled[i] != 0;
            }
            if (!s && cells[i].error.empty()) {
                cells[i].error = "cancelled: signal";
                cancelled_count.fetch_add(1);
            }
        }
    }

    monitor_stop.store(true);
    if (monitor.joinable())
        monitor.join();
    if (heartbeat)
        heartbeat->finish();

    if (opts_.progress)
        util::finishStatusLine();

    sweep_stats_.reset();
    sweep_stats_.counter("completed_cells") = completed_count;
    sweep_stats_.counter("resumed_cells") = resumed;
    sweep_stats_.counter("retries") = retry_count;
    sweep_stats_.counter("timeouts") = timeout_count;
    sweep_stats_.counter("failed_cells") = failed_count;
    sweep_stats_.counter("cancelled_cells") = cancelled_count;
    sweep_stats_.counter("reaped_markers") = reaped_markers;
    sweep_stats_.counter("merged_cells") = merged_count;
    sweep_stats_.counter("lease_steals") = steal_count;
    sweep_stats_.counter("fenced_commits") = fenced_count;

    if (opts_.stable_telemetry) {
        // Leave only seed-determined fields in the export.
        for (auto &cell : cells) {
            cell.start_seconds = 0.0;
            cell.wall_seconds = 0.0;
            cell.mips = 0.0;
            cell.retry_wait_s = 0.0;
            cell.cpu_user_s = 0.0;
            cell.cpu_sys_s = 0.0;
            cell.max_rss_kb = 0;
            cell.minor_faults = 0;
        }
    }
    if (!opts_.json_path.empty())
        writeJson(opts_.json_path, cells);
    return cells;
}

bool
SweepRunner::anyFailed(const std::vector<SweepCell> &cells)
{
    for (const auto &c : cells)
        if (!c.ok())
            return true;
    return false;
}

util::Table
SweepRunner::errorTable(const std::vector<SweepCell> &cells)
{
    util::Table table({"Workload", "Policy", "Error"});
    for (const auto &c : cells)
        if (!c.ok())
            table.addRow({c.workload, c.policy, c.error});
    return table;
}

std::string
SweepRunner::toJson(const std::vector<SweepCell> &cells)
{
    std::string out = "[\n";
    for (size_t i = 0; i < cells.size(); ++i) {
        const SweepCell &c = cells[i];
        out += "  {";
        out += util::format("\"workload\": \"{}\", ",
                            escape(c.workload));
        out += util::format("\"policy\": \"{}\", ",
                            escape(c.policy));
        out += util::format("\"seed\": {}, ", c.seed);
        if (c.ok()) {
            out += util::format(
                "\"hit_rate\": {}, ",
                number(c.result.llcDemandHitRate()));
            out += util::format(
                "\"mpki\": {}, ", number(c.result.llcDemandMpki()));
            out += util::format("\"ipc\": {}, ",
                                number(c.result.ipc()));
            out += util::format("\"instructions\": {}, ",
                                c.result.total_instructions);
            // Per-core outcomes (fig13-style weighted speedups
            // need every core's IPC, not just core 0's).
            out += "\"cores\": [";
            for (size_t k = 0; k < c.result.cores.size(); ++k) {
                const CoreResult &core = c.result.cores[k];
                if (k)
                    out += ", ";
                out += util::format(
                    "{{\"workload\": \"{}\", \"ipc\": {}, "
                    "\"instructions\": {}}}",
                    escape(core.workload), number(core.ipc),
                    core.instructions);
            }
            out += "], ";
            // Full registry snapshot (counters/formulas/
            // histograms) of the simulated system.
            if (!c.result.stats.empty()) {
                std::string snap = stats::toJson(c.result.stats);
                while (!snap.empty() && snap.back() == '\n')
                    snap.pop_back();
                out += "\"stats\": " + snap + ", ";
            }
        } else {
            out += "\"hit_rate\": null, \"mpki\": null, "
                   "\"ipc\": null, \"instructions\": null, "
                   "\"cores\": [], ";
        }
        out += util::format("\"runtime_s\": {}, ",
                            number(c.wall_seconds));
        out += util::format("\"mips\": {}, ", number(c.mips));
        out += util::format("\"attempts\": {}, ", c.attempts);
        out += util::format("\"retry_wait_s\": {}, ",
                            number(c.retry_wait_s));
        out += util::format("\"cpu_user_s\": {}, ",
                            number(c.cpu_user_s));
        out += util::format("\"cpu_sys_s\": {}, ",
                            number(c.cpu_sys_s));
        out += util::format("\"max_rss_kb\": {}, ",
                            c.max_rss_kb);
        out += util::format("\"minor_faults\": {}, ",
                            c.minor_faults);
        out += c.ok() ? "\"error\": null"
                      : util::format("\"error\": \"{}\"",
                                     escape(c.error));
        out += i + 1 < cells.size() ? "},\n" : "}\n";
    }
    out += "]\n";
    return out;
}

std::vector<obs::TraceSpan>
SweepRunner::cellTraceSpans(const std::vector<SweepCell> &cells)
{
    std::vector<obs::TraceSpan> spans;
    spans.reserve(cells.size());
    for (const SweepCell &c : cells) {
        obs::TraceSpan s;
        s.name = c.workload + "/" + c.policy;
        s.category = c.ok() ? "cell" : "cell,error";
        s.start_us =
            static_cast<uint64_t>(c.start_seconds * 1e6);
        s.duration_us =
            static_cast<uint64_t>(c.wall_seconds * 1e6);
        s.args.emplace_back("workload",
                            "\"" + escape(c.workload) + "\"");
        s.args.emplace_back("policy",
                            "\"" + escape(c.policy) + "\"");
        s.args.emplace_back("seed", util::format("{}", c.seed));
        s.args.emplace_back("mips", number(c.mips));
        if (!c.ok()) {
            s.args.emplace_back("error",
                                "\"" + escape(c.error) + "\"");
        }
        spans.push_back(std::move(s));
    }
    return spans;
}

std::string
SweepRunner::chromeTraceJson(const std::vector<SweepCell> &cells)
{
    std::vector<obs::TraceSpan> spans = cellTraceSpans(cells);
    obs::assignLanes(spans);
    return obs::chromeTraceJson(spans, "sweep");
}

void
SweepRunner::writeChromeTrace(const std::string &path,
                              const std::vector<SweepCell> &cells)
{
    util::atomicWriteFileOrFatal(path, chromeTraceJson(cells));
}

void
SweepRunner::writeJson(const std::string &path,
                       const std::vector<SweepCell> &cells)
{
    util::atomicWriteFileOrFatal(path, toJson(cells));
}

} // namespace rlr::sim
