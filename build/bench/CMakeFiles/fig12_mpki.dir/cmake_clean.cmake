file(REMOVE_RECURSE
  "CMakeFiles/fig12_mpki.dir/fig12_mpki.cc.o"
  "CMakeFiles/fig12_mpki.dir/fig12_mpki.cc.o.d"
  "fig12_mpki"
  "fig12_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
