#include "sim/journal.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "obs/profiler.hh"
#include "sim/lease.hh"
#include "stats/export.hh"
#include "util/atomic_file.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace fs = std::filesystem;

namespace rlr::sim
{

namespace
{

using stats::json::escape;
using stats::json::number;

/** FNV-1a 64-bit, incremental. */
struct Fnv
{
    uint64_t h = 0xcbf29ce484222325ULL;

    void bytes(const void *data, size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ULL;
        }
    }
    void str(const std::string &s)
    {
        bytes(s.data(), s.size());
        const unsigned char sep = 0;
        bytes(&sep, 1);
    }
    void u64(uint64_t v) { bytes(&v, sizeof(v)); }
};

std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        throw std::runtime_error(
            util::format("cannot open '{}'", path));
    }
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad) {
        throw std::runtime_error(
            util::format("read error on '{}'", path));
    }
    return out;
}

/** Parse a decimal-string u64 member ("seed": "42"). */
uint64_t
u64Member(const stats::json::Value &obj, const std::string &key)
{
    const auto *v = obj.find(key);
    if (v == nullptr || !v->isString()) {
        throw std::runtime_error(
            util::format("missing string member '{}'", key));
    }
    char *end = nullptr;
    const uint64_t out =
        std::strtoull(v->string.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
        throw std::runtime_error(util::format(
            "member '{}' is not a decimal u64: '{}'", key,
            v->string));
    }
    return out;
}

bool
boolMember(const stats::json::Value &obj, const std::string &key,
           bool def)
{
    const auto *v = obj.find(key);
    if (v == nullptr)
        return def;
    return v->boolean;
}

} // namespace

uint64_t
sweepConfigHash(const SimParams &params,
                const std::vector<SweepRunner::CellSpec> &specs)
{
    Fnv f;
    f.u64(params.warmup_instructions);
    f.u64(params.sim_instructions);
    f.u64(static_cast<uint64_t>(params.l2_prefetcher));
    f.u64(params.interleave_quantum);
    f.u64(params.llc_events_capacity);
    f.u64(params.llc_events_sample_sets);
    f.u64(params.llc_epoch_length);
    f.u64(params.capture_llc_trace ? 1 : 0);
    f.u64(specs.size());
    for (const auto &s : specs) {
        f.str(s.workload);
        f.str(s.policy);
        f.u64(s.cores.size());
        for (const auto &c : s.cores)
            f.str(c);
    }
    return f.h;
}

uint64_t
SweepJournal::specHash(const SweepRunner::CellSpec &spec,
                       uint64_t seed)
{
    Fnv f;
    f.str(spec.workload);
    f.str(spec.policy);
    f.u64(spec.cores.size());
    for (const auto &c : spec.cores)
        f.str(c);
    f.u64(seed);
    return f.h;
}

std::string
SweepJournal::headerToJson(const JournalHeader &header)
{
    std::string out = "{\n";
    out += "  \"format\": \"rlr-sweep-journal\",\n";
    out += util::format("  \"version\": {},\n", header.version);
    out += util::format("  \"schema\": {},\n", header.schema);
    out += util::format("  \"master_seed\": \"{}\",\n",
                        header.master_seed);
    out += util::format("  \"config_hash\": \"{}\",\n",
                        hex16(header.config_hash));
    out += util::format("  \"build\": \"{}\",\n",
                        escape(header.build));
    out += util::format("  \"writer\": \"{}\",\n",
                        escape(header.writer));
    out += util::format("  \"n_cells\": {}\n", header.n_cells);
    out += "}\n";
    return out;
}

JournalHeader
SweepJournal::headerFromJson(const std::string &text)
{
    const auto root = stats::json::parse(text);
    if (!root.isObject() ||
        root.stringOr("format", "") != "rlr-sweep-journal") {
        throw std::runtime_error(
            "not a sweep journal header (missing "
            "\"format\": \"rlr-sweep-journal\")");
    }
    JournalHeader h;
    h.version =
        static_cast<uint32_t>(root.numberOr("version", 0));
    // Headers predating the schema member are schema 1.
    h.schema = static_cast<uint32_t>(root.numberOr("schema", 1));
    h.master_seed = u64Member(root, "master_seed");
    const auto *hash = root.find("config_hash");
    if (hash == nullptr || !hash->isString()) {
        throw std::runtime_error(
            "missing string member 'config_hash'");
    }
    h.config_hash =
        std::strtoull(hash->string.c_str(), nullptr, 16);
    h.build = root.stringOr("build", "");
    h.writer = root.stringOr("writer", "");
    h.n_cells =
        static_cast<uint64_t>(root.numberOr("n_cells", 0));
    return h;
}

std::string
SweepJournal::cellToJson(const SweepCell &cell)
{
    std::string out = "{\n";
    out += "  \"record\": \"rlr-sweep-cell\",\n";
    out += util::format("  \"workload\": \"{}\",\n",
                        escape(cell.workload));
    out += util::format("  \"policy\": \"{}\",\n",
                        escape(cell.policy));
    out += util::format("  \"seed\": \"{}\",\n", cell.seed);
    out += util::format("  \"attempts\": {},\n", cell.attempts);
    out += util::format("  \"retry_wait_s\": {},\n",
                        number(cell.retry_wait_s));
    out += util::format("  \"start_seconds\": {},\n",
                        number(cell.start_seconds));
    out += util::format("  \"wall_seconds\": {},\n",
                        number(cell.wall_seconds));
    out += util::format("  \"mips\": {},\n", number(cell.mips));
    out += util::format("  \"timed_out\": {},\n",
                        cell.timed_out ? "true" : "false");
    out += util::format("  \"cpu_user_s\": {},\n",
                        number(cell.cpu_user_s));
    out += util::format("  \"cpu_sys_s\": {},\n",
                        number(cell.cpu_sys_s));
    out += util::format("  \"max_rss_kb\": {},\n",
                        cell.max_rss_kb);
    out += util::format("  \"minor_faults\": {},\n",
                        cell.minor_faults);
    out += cell.ok()
               ? "  \"error\": null,\n"
               : util::format("  \"error\": \"{}\",\n",
                              escape(cell.error));
    if (cell.ok()) {
        const RunResult &r = cell.result;
        out += "  \"result\": {\n";
        out += util::format(
            "    \"total_instructions\": {},\n",
            r.total_instructions);
        out += util::format(
            "    \"llc_demand_accesses\": {},\n",
            r.llc_demand_accesses);
        out += util::format("    \"llc_demand_hits\": {},\n",
                            r.llc_demand_hits);
        out += util::format("    \"llc_demand_misses\": {},\n",
                            r.llc_demand_misses);
        out += "    \"cores\": [";
        for (size_t i = 0; i < r.cores.size(); ++i) {
            const CoreResult &c = r.cores[i];
            if (i)
                out += ", ";
            out += util::format(
                "{{\"workload\": \"{}\", \"ipc\": {}, "
                "\"instructions\": {}, \"cycles\": {}}}",
                escape(c.workload), number(c.ipc),
                c.instructions, c.cycles);
        }
        out += "]";
        if (!r.stats.empty()) {
            std::string snap = stats::toJson(r.stats);
            while (!snap.empty() && snap.back() == '\n')
                snap.pop_back();
            out += ",\n    \"stats\": " + snap;
        }
        out += "\n  },\n";
    }
    // End-of-record marker: a truncated file cannot parse as a
    // complete object that still carries this member.
    out += "  \"eor\": 1\n";
    out += "}\n";
    return out;
}

SweepCell
SweepJournal::cellFromJson(const std::string &text)
{
    const auto root = stats::json::parse(text);
    if (!root.isObject() ||
        root.stringOr("record", "") != "rlr-sweep-cell") {
        throw std::runtime_error(
            "not a sweep cell record (missing "
            "\"record\": \"rlr-sweep-cell\")");
    }
    if (root.find("eor") == nullptr)
        throw std::runtime_error("truncated record (no eor)");

    SweepCell cell;
    cell.workload = root.stringOr("workload", "");
    cell.policy = root.stringOr("policy", "");
    cell.seed = u64Member(root, "seed");
    cell.attempts =
        static_cast<uint32_t>(root.numberOr("attempts", 1));
    cell.retry_wait_s = root.numberOr("retry_wait_s", 0.0);
    cell.start_seconds = root.numberOr("start_seconds", 0.0);
    cell.wall_seconds = root.numberOr("wall_seconds", 0.0);
    cell.mips = root.numberOr("mips", 0.0);
    cell.timed_out = boolMember(root, "timed_out", false);
    cell.cpu_user_s = root.numberOr("cpu_user_s", 0.0);
    cell.cpu_sys_s = root.numberOr("cpu_sys_s", 0.0);
    cell.max_rss_kb =
        static_cast<uint64_t>(root.numberOr("max_rss_kb", 0));
    cell.minor_faults =
        static_cast<uint64_t>(root.numberOr("minor_faults", 0));
    const auto *err = root.find("error");
    if (err != nullptr && err->isString())
        cell.error = err->string;

    const auto *res = root.find("result");
    if (cell.ok()) {
        if (res == nullptr || !res->isObject()) {
            throw std::runtime_error(
                "ok record has no 'result' object");
        }
        RunResult &r = cell.result;
        r.total_instructions = static_cast<uint64_t>(
            res->numberOr("total_instructions", 0));
        r.llc_demand_accesses = static_cast<uint64_t>(
            res->numberOr("llc_demand_accesses", 0));
        r.llc_demand_hits = static_cast<uint64_t>(
            res->numberOr("llc_demand_hits", 0));
        r.llc_demand_misses = static_cast<uint64_t>(
            res->numberOr("llc_demand_misses", 0));
        if (const auto *cores = res->find("cores");
            cores != nullptr && cores->isArray()) {
            for (const auto &cv : cores->array) {
                CoreResult c;
                c.workload = cv.stringOr("workload", "");
                c.ipc = cv.numberOr("ipc", 0.0);
                c.instructions = static_cast<uint64_t>(
                    cv.numberOr("instructions", 0));
                c.cycles = static_cast<uint64_t>(
                    cv.numberOr("cycles", 0));
                r.cores.push_back(std::move(c));
            }
        }
        if (const auto *snap = res->find("stats");
            snap != nullptr && snap->isObject()) {
            r.stats = stats::fromJson(*snap);
        }
    }
    return cell;
}

SweepJournal::SweepJournal(std::string dir,
                           const JournalHeader &expect)
    : dir_(std::move(dir)), header_(expect)
{
    RLR_PROF_SCOPE("sweep.journal.load");
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec) {
        throw std::runtime_error(
            util::format("cannot create journal dir '{}': {}",
                         dir_, ec.message()));
    }

    const std::string header_path = dir_ + "/header.json";
    if (fs::exists(header_path)) {
        JournalHeader found;
        try {
            found = headerFromJson(readFile(header_path));
        } catch (const std::exception &e) {
            throw std::runtime_error(util::format(
                "unreadable journal header '{}': {}", header_path,
                e.what()));
        }
        if (found.version != expect.version) {
            throw std::runtime_error(util::format(
                "journal '{}' has format version {}, this build "
                "writes version {} — delete the directory to "
                "start over",
                dir_, found.version, expect.version));
        }
        if (found.schema != expect.schema) {
            throw std::runtime_error(util::format(
                "journal '{}' uses record schema {} but this "
                "build writes schema {} — refusing to resume "
                "across schema versions (cells would silently "
                "re-run); finish the sweep with the original "
                "build or delete the directory to start over",
                dir_, found.schema, expect.schema));
        }
        if (found.master_seed != expect.master_seed) {
            throw std::runtime_error(util::format(
                "journal '{}' was recorded with master seed {}, "
                "this sweep uses seed {} — not resumable",
                dir_, found.master_seed, expect.master_seed));
        }
        if (found.n_cells != expect.n_cells) {
            throw std::runtime_error(util::format(
                "journal '{}' covers {} cells, this sweep has {} "
                "— not the same sweep",
                dir_, found.n_cells, expect.n_cells));
        }
        if (found.config_hash != expect.config_hash) {
            throw std::runtime_error(util::format(
                "journal '{}' has config hash {}, this sweep "
                "hashes to {} — parameters or cell grid changed, "
                "not resumable",
                dir_, hex16(found.config_hash),
                hex16(expect.config_hash)));
        }
        if (found.build != expect.build) {
            util::warn("journal '{}' was recorded by build '{}' "
                       "(this is '{}'); resuming anyway",
                       dir_, found.build, expect.build);
        }

        // Load every readable cell record; corrupt ones warn and
        // simply re-run.
        for (const auto &entry : fs::directory_iterator(dir_)) {
            const std::string name = entry.path().filename();
            if (name.rfind("cell-", 0) != 0 ||
                name.size() != 5 + 16 + 5 ||
                name.substr(21) != ".json") {
                continue;
            }
            const uint64_t hash = std::strtoull(
                name.substr(5, 16).c_str(), nullptr, 16);
            try {
                records_[hash] =
                    cellFromJson(readFile(entry.path()));
            } catch (const std::exception &e) {
                util::warn("corrupt journal record '{}': {} — "
                           "the cell will re-run",
                           entry.path().string(), e.what());
            }
        }
    } else {
        util::atomicWriteFile(header_path, headerToJson(expect));
    }
}

bool
SweepJournal::load(uint64_t spec_hash,
                   const SweepRunner::CellSpec &spec,
                   uint64_t seed, SweepCell &out) const
{
    const auto it = records_.find(spec_hash);
    if (it == records_.end())
        return false;
    const SweepCell &rec = it->second;
    if (rec.workload != spec.workload ||
        rec.policy != spec.policy || rec.seed != seed) {
        util::warn(
            "journal record {} in '{}' claims cell {}:{} seed {} "
            "but the sweep expects {}:{} seed {} — re-running",
            hex16(spec_hash), dir_, rec.workload, rec.policy,
            rec.seed, spec.workload, spec.policy, seed);
        return false;
    }
    out = rec;
    return true;
}

bool
SweepJournal::reload(uint64_t spec_hash,
                     const SweepRunner::CellSpec &spec,
                     uint64_t seed, SweepCell &out) const
{
    const std::string path =
        dir_ + "/cell-" + hex16(spec_hash) + ".json";
    if (!fs::exists(path))
        return false;
    SweepCell rec;
    try {
        rec = cellFromJson(readFile(path));
    } catch (const std::exception &) {
        // Torn or still-racing record: report absent, the caller
        // polls again.
        return false;
    }
    if (rec.workload != spec.workload ||
        rec.policy != spec.policy || rec.seed != seed) {
        util::warn(
            "journal record {} in '{}' claims cell {}:{} seed {} "
            "but the sweep expects {}:{} seed {} — ignoring",
            hex16(spec_hash), dir_, rec.workload, rec.policy,
            rec.seed, spec.workload, spec.policy, seed);
        return false;
    }
    out = rec;
    return true;
}

void
SweepJournal::append(uint64_t spec_hash, const SweepCell &cell,
                     bool corrupt) const
{
    RLR_PROF_SCOPE("sweep.journal.append");
    std::string body = cellToJson(cell);
    if (corrupt)
        body.resize(body.size() / 2);
    util::atomicWriteFile(
        dir_ + "/cell-" + hex16(spec_hash) + ".json", body);
    // The cell has a durable outcome now; its liveness marker is
    // no longer meaningful.
    std::error_code ec;
    fs::remove(dir_ + "/inflight-" + hex16(spec_hash) + ".json",
               ec);
}

void
SweepJournal::markInFlight(uint64_t spec_hash,
                           const SweepRunner::CellSpec &spec,
                           uint32_t attempt) const
{
    std::string body = "{\n";
    body += "  \"record\": \"rlr-sweep-inflight\",\n";
    body += util::format("  \"workload\": \"{}\",\n",
                         escape(spec.workload));
    body += util::format("  \"policy\": \"{}\",\n",
                         escape(spec.policy));
    body += util::format("  \"attempt\": {},\n", attempt);
    body += "  \"eor\": 1\n";
    body += "}\n";
    try {
        util::atomicWriteFile(
            dir_ + "/inflight-" + hex16(spec_hash) + ".json",
            body);
    } catch (const std::exception &e) {
        util::warn("cannot mark cell {}:{} in flight: {}",
                   spec.workload, spec.policy, e.what());
    }
}

size_t
SweepJournal::reapStaleMarkers(double ttl_s) const
{
    size_t reaped = 0;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename();
        if (name.rfind("inflight-", 0) != 0 ||
            name.size() != 9 + 16 + 5 ||
            name.substr(25) != ".json") {
            continue;
        }
        const uint64_t hash = std::strtoull(
            name.substr(9, 16).c_str(), nullptr, 16);
        bool stale = records_.count(hash) > 0;
        if (!stale) {
            std::error_code mec;
            const auto mtime =
                fs::last_write_time(entry.path(), mec);
            if (!mec) {
                const double age =
                    std::chrono::duration<double>(
                        fs::file_time_type::clock::now() - mtime)
                        .count();
                stale = age > ttl_s;
            }
        }
        if (!stale)
            continue;
        std::error_code rec;
        if (fs::remove(entry.path(), rec) && !rec)
            ++reaped;
    }
    return reaped;
}

std::string
SweepJournal::summarize(const std::string &dir)
{
    std::string out;
    const std::string header_path = dir + "/header.json";
    try {
        const JournalHeader h =
            headerFromJson(readFile(header_path));
        out += util::format(
            "journal {}\n  version {}  schema {}  master seed "
            "{}  config {}  build '{}'  cells {}\n",
            dir, h.version, h.schema, h.master_seed,
            hex16(h.config_hash), h.build, h.n_cells);
        if (!h.writer.empty())
            out += util::format("  writer {}\n", h.writer);
    } catch (const std::exception &e) {
        out += util::format("journal {}\n  unreadable header: "
                            "{}\n",
                            dir, e.what());
    }

    std::vector<std::string> names;
    std::vector<std::string> inflight;
    std::vector<std::string> leases;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename();
        if (name.rfind("cell-", 0) == 0)
            names.push_back(name);
        else if (name.rfind("inflight-", 0) == 0)
            inflight.push_back(name);
        else if (name.rfind("lease-", 0) == 0 &&
                 name.size() > 5 && name.substr(name.size() - 5)
                 == ".json") {
            leases.push_back(name);
        }
    }
    std::sort(names.begin(), names.end());
    std::sort(inflight.begin(), inflight.end());
    std::sort(leases.begin(), leases.end());
    size_t ok = 0, failed = 0, bad = 0;
    for (const auto &name : names) {
        try {
            const SweepCell cell =
                cellFromJson(readFile(dir + "/" + name));
            if (cell.ok()) {
                ++ok;
                out += util::format(
                    "  {}  {}:{}  ok  attempts {}\n", name,
                    cell.workload, cell.policy, cell.attempts);
            } else {
                ++failed;
                out += util::format(
                    "  {}  {}:{}  ERROR: {}\n", name,
                    cell.workload, cell.policy, cell.error);
            }
        } catch (const std::exception &e) {
            ++bad;
            out += util::format("  {}  UNREADABLE: {}\n", name,
                                e.what());
        }
    }
    // In-flight markers left by running (or crashed) attempts:
    // age comes from the marker's mtime, so a stuck cell is
    // visible even without a heartbeat file.
    for (const auto &name : inflight) {
        const std::string path = dir + "/" + name;
        double age_s = 0.0;
        const auto mtime = fs::last_write_time(path, ec);
        if (!ec) {
            age_s = std::chrono::duration<double>(
                        fs::file_time_type::clock::now() - mtime)
                        .count();
        }
        std::string cell = "?";
        uint32_t attempt = 0;
        try {
            const auto v = stats::json::parse(readFile(path));
            cell = v.stringOr("workload", "?") + ":" +
                   v.stringOr("policy", "?");
            attempt = static_cast<uint32_t>(
                v.numberOr("attempt", 0));
        } catch (const std::exception &) {
            // Torn marker: still list it, age alone is useful.
        }
        out += util::format(
            "  {}  {}  IN-FLIGHT  attempt {}  age {:.1f}s\n",
            name, cell, attempt, age_s);
    }
    // Lease files: who holds which cell right now, and whether
    // the lease is still live (age under its TTL) or expired and
    // waiting to be stolen.
    size_t expired = 0;
    for (const auto &name : leases) {
        const std::string path = dir + "/" + name;
        LeaseInfo info;
        if (!Lease::read(path, info)) {
            out += util::format("  {}  LEASE  unreadable\n",
                                name);
            continue;
        }
        const bool live =
            info.ttl_s <= 0.0 || info.age_s < info.ttl_s;
        if (!live)
            ++expired;
        out += util::format(
            "  {}  LEASE  worker {}  pid {}  attempt {}  fence "
            "{}  age {:.1f}s/{:.1f}s{}\n",
            name, info.worker, info.pid, info.attempt,
            info.fence, info.age_s, info.ttl_s,
            live ? "" : "  EXPIRED");
    }
    out += util::format(
        "  {} records: {} ok, {} failed, {} unreadable",
        names.size(), ok, failed, bad);
    if (!inflight.empty())
        out += util::format(", {} in flight", inflight.size());
    if (!leases.empty()) {
        out += util::format(", {} leased ({} expired)",
                            leases.size(), expired);
    }
    out += "\n";
    return out;
}

} // namespace rlr::sim
