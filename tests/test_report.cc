#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tools/report_gen.hh"

#ifndef RLR_TEST_DATA_DIR
#error "RLR_TEST_DATA_DIR must point at tests/data"
#endif

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
dataPath(const std::string &name)
{
    return std::string(RLR_TEST_DATA_DIR) + "/" + name;
}

} // namespace

/**
 * Golden-file check: the report rendered from the canned sweep
 * fixture must match tests/data/report_golden.md byte for byte.
 * Regenerate after intentional format changes with
 *   cd tests/data && ../../build/tools/report \
 *     --from sweep_fixture.json --out report_golden.md \
 *     --title "Golden sweep report"
 */
TEST(Report, MatchesGoldenFile)
{
    rlr::tools::ReportOptions opts;
    opts.title = "Golden sweep report";
    opts.source = "sweep_fixture.json";
    const std::string got = rlr::tools::generateReport(
        readFile(dataPath("sweep_fixture.json")), opts);
    const std::string want =
        readFile(dataPath("report_golden.md"));
    EXPECT_EQ(got, want);
}

TEST(Report, DeterministicAcrossCalls)
{
    const std::string json =
        readFile(dataPath("sweep_fixture.json"));
    EXPECT_EQ(rlr::tools::generateReport(json),
              rlr::tools::generateReport(json));
}

TEST(Report, PaperDeltasPresent)
{
    const std::string report = rlr::tools::generateReport(
        readFile(dataPath("sweep_fixture.json")));
    // Table-IV-style section with measured-vs-paper deltas.
    EXPECT_NE(report.find("## Table IV"), std::string::npos);
    EXPECT_NE(report.find("| RLR | 10.00 | 3.25 | +6.75 |"),
              std::string::npos);
    // Fig-style sections.
    EXPECT_NE(report.find("## Fig. 1"), std::string::npos);
    EXPECT_NE(report.find("## Fig. 10"), std::string::npos);
    EXPECT_NE(report.find("## Fig. 12"), std::string::npos);
    EXPECT_NE(report.find("## Fig. 13"), std::string::npos);
    // Failed cells are reported, not silently dropped.
    EXPECT_NE(report.find("injected failure"), std::string::npos);
}

TEST(Report, MalformedInputThrows)
{
    EXPECT_THROW(rlr::tools::generateReport("not json"),
                 std::runtime_error);
    EXPECT_THROW(rlr::tools::generateReport("{\"a\": 1}"),
                 std::runtime_error);
    EXPECT_THROW(rlr::tools::generateReport("[{\"workload\": }]"),
                 std::runtime_error);
}

TEST(Report, EmptySweepStillRenders)
{
    const std::string report =
        rlr::tools::generateReport("[]");
    EXPECT_NE(report.find("Sweep cells: 0"), std::string::npos);
    EXPECT_NE(report.find("## Appendix"), std::string::npos);
}
