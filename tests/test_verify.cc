/**
 * @file
 * Tests for the verification subsystem (src/verify/): the RefCache
 * protocol mirror, the brute-force Belady model, the differential
 * oracle over every reference-modeled policy (>= 50 fuzzed cells),
 * trace shrinking, the mutation self-test, and the RLR_VERIFY
 * invariant hooks.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "cache/cache.hh"
#include "verify/differential.hh"
#include "verify/ref_policies.hh"

using namespace rlr;
using verify::DiffSpec;
using verify::RefAccess;
using verify::RefCache;

namespace
{

RefAccess
load(uint64_t line_idx, uint64_t seq)
{
    RefAccess a;
    a.line = line_idx * 64;
    a.pc = 0x400;
    a.type = trace::AccessType::Load;
    a.seq = seq;
    return a;
}

/** Sequence of line indices replayed through a Belady RefCache. */
uint64_t
beladyHits(uint32_t sets, uint32_t ways,
           const std::vector<uint64_t> &idx, bool bypass)
{
    std::vector<uint64_t> lines;
    for (const uint64_t i : idx)
        lines.push_back(i * 64);
    RefCache cache(sets, ways,
                   std::make_unique<verify::RefBelady>(lines,
                                                       bypass));
    for (size_t s = 0; s < idx.size(); ++s)
        cache.access(load(idx[s], s));
    return cache.hits();
}

} // namespace

// --- RefCache protocol ---------------------------------------------

TEST(RefCache, FillsInvalidWaysInOrder)
{
    RefCache cache(2, 2, std::make_unique<verify::RefLru>());
    // Lines 0 and 2 both map to set 0.
    EXPECT_EQ(cache.access(load(0, 0)).way, 0u);
    EXPECT_EQ(cache.access(load(2, 1)).way, 1u);
    EXPECT_TRUE(cache.access(load(0, 2)).hit);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(RefCache, WritebackNeverBypasses)
{
    // Belady with bypass on: a load of a never-reused line is
    // bypassed, but the same fill as a writeback must allocate.
    std::vector<uint64_t> lines = {0, 2 * 64, 4 * 64, 6 * 64, 0};
    RefCache cache(1, 2,
                   std::make_unique<verify::RefBelady>(lines, true));
    cache.access(load(0, 0));
    cache.access(load(2, 1));
    // Line 4 is never reused while both residents are: bypass.
    EXPECT_TRUE(cache.access(load(4, 2)).bypassed);
    RefAccess wb = load(6, 3);
    wb.type = trace::AccessType::Writeback;
    wb.pc = 0;
    const auto out = cache.access(wb);
    EXPECT_FALSE(out.bypassed);
    EXPECT_EQ(out.way, 1u); // evicts the dead line, not line 0
}

// --- Belady optimality ---------------------------------------------

TEST(Belady, EvictsFarthestNextUse)
{
    // 1 set, 2 ways. Access 0,1,2 then 0: Belady evicts 1 (next
    // use farthest/never) when 2 fills, so 0 still hits.
    EXPECT_EQ(beladyHits(1, 2, {0, 1, 2, 0}, false), 1u);
    // LRU on the same trace would evict 0 and score no hits.
    RefCache lru(1, 2, std::make_unique<verify::RefLru>());
    const std::vector<uint64_t> idx = {0, 1, 2, 0};
    uint64_t hits = 0;
    for (size_t s = 0; s < idx.size(); ++s)
        hits += lru.access(load(idx[s], s)).hit ? 1 : 0;
    EXPECT_EQ(hits, 0u);
}

TEST(Belady, BypassBeatsCaching)
{
    // Repeated scans of 3 lines through a 2-way set: with bypass,
    // MIN keeps {0, 1} resident and re-hits them every round.
    std::vector<uint64_t> idx;
    for (int r = 0; r < 4; ++r)
        for (uint64_t l = 0; l < 3; ++l)
            idx.push_back(l);
    const uint64_t with_bypass = beladyHits(1, 2, idx, true);
    const uint64_t without = beladyHits(1, 2, idx, false);
    EXPECT_GE(with_bypass, without);
    EXPECT_EQ(with_bypass, 6u); // lines 0 and 1 hit in rounds 2..4
}

TEST(Belady, UpperBoundsEveryPolicyOnFuzzedTraces)
{
    for (const auto &policy : verify::referencePolicies()) {
        DiffSpec spec;
        spec.policy = policy;
        spec.sets = 4;
        spec.ways = 2;
        spec.accesses = 400;
        spec.distinct_lines = 24;
        if (policy.rfind("RLR", 0) == 0) {
            spec.rlr = policy == "RLR-unopt"
                           ? core::RlrConfig::unoptimized()
                           : core::RlrConfig{};
            spec.rlr.allow_bypass = true;
        }
        for (uint64_t seed = 1; seed <= 3; ++seed) {
            spec.seed = seed;
            EXPECT_EQ(verify::beladyBoundError(spec), "")
                << policy << " seed " << seed;
        }
    }
}

// --- Differential oracle -------------------------------------------

TEST(Differential, FuzzedCellsAgreeForEveryPolicy)
{
    // >= 50 fuzzed (config, seed) cells across all reference-
    // modeled policies; every cell must replay mismatch-free.
    const auto policies = verify::referencePolicies();
    const uint32_t shapes[][2] = {{2, 2}, {4, 4}, {8, 2}, {16, 4}};
    size_t cells = 0;
    for (const auto &policy : policies) {
        for (const auto &shape : shapes) {
            for (uint64_t seed = 1; seed <= 2; ++seed) {
                DiffSpec spec;
                spec.policy = policy;
                spec.sets = shape[0];
                spec.ways = shape[1];
                // DRRIP needs >= 2 leader sets per policy.
                if (policy == "DRRIP")
                    spec.sets = std::max<uint32_t>(spec.sets, 4);
                spec.seed = seed * 7919;
                spec.accesses = 1200;
                spec.distinct_lines = spec.sets * spec.ways * 3;
                if (policy == "RLR-unopt")
                    spec.rlr = core::RlrConfig::unoptimized();
                if (policy.rfind("RLR", 0) == 0)
                    spec.rlr.allow_bypass = seed % 2 == 0;
                const auto result = verify::runDifferential(spec);
                EXPECT_TRUE(result.ok) << result.repro;
                ++cells;
            }
        }
    }
    EXPECT_GE(cells, 50u);
}

TEST(Differential, TraceGenerationIsDeterministic)
{
    DiffSpec spec;
    spec.seed = 99;
    const auto a = verify::makeFuzzTrace(spec);
    const auto b = verify::makeFuzzTrace(spec);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    spec.seed = 100;
    const auto c = verify::makeFuzzTrace(spec);
    EXPECT_FALSE(std::equal(a.begin(), a.end(), c.begin()));
}

// --- Mutation self-test --------------------------------------------

TEST(Differential, MutantPolicyIsCaughtAndShrunk)
{
    for (const auto &policy : verify::referencePolicies()) {
        DiffSpec spec;
        spec.policy = policy;
        spec.sets = 4;
        spec.ways = 4;
        spec.seed = 1234;
        spec.accesses = 1500;
        spec.distinct_lines = spec.sets * spec.ways * 3;
        if (policy == "RLR-unopt")
            spec.rlr = core::RlrConfig::unoptimized();
        const auto result =
            verify::runDifferential(spec, /*mutate_period=*/3);
        ASSERT_FALSE(result.ok)
            << policy << ": corrupted victim choice not detected";
        // The reproducer is shrunk and replayable.
        EXPECT_FALSE(result.shrunk.empty());
        EXPECT_LE(result.shrunk.size(), result.mismatch.step + 1);
        EXPECT_LT(result.shrunk.size(), spec.accesses);
        EXPECT_NE(result.repro.find("spec: policy=" + policy),
                  std::string::npos);
        EXPECT_NE(result.repro.find("shrunk reproducer"),
                  std::string::npos);
        // The shrunk trace still mismatches when replayed.
        EXPECT_TRUE(verify::replayCompare(spec, result.shrunk, 3)
                        .has_value());
        // ...and the pristine policy replays it cleanly.
        EXPECT_FALSE(verify::replayCompare(spec, result.shrunk, 0)
                         .has_value());
    }
}

// --- Invariant hooks -----------------------------------------------

namespace
{

/** LRU whose verifyInvariants trips after a fixed access count. */
class TrippingPolicy : public cache::ReplacementPolicy
{
  public:
    explicit TrippingPolicy(uint64_t trip_after)
        : trip_after_(trip_after)
    {
    }

    void bind(const cache::CacheGeometry &geom) override
    {
        ways_ = geom.ways;
    }

    uint32_t
    findVictim(const cache::AccessContext &,
               std::span<const cache::BlockView>) override
    {
        return 0;
    }

    void onAccess(const cache::AccessContext &) override
    {
        ++accesses_;
    }

    void
    verifyInvariants(uint32_t,
                     std::span<const cache::BlockView>) const override
    {
        if (accesses_ >= trip_after_)
            throw std::logic_error("metadata out of range");
    }

    std::string name() const override { return "tripping"; }
    cache::StorageOverhead overhead() const override { return {}; }

  private:
    uint64_t trip_after_;
    uint64_t accesses_ = 0;
    uint32_t ways_ = 0;
};

class NullNext : public cache::MemoryLevel
{
  public:
    uint64_t access(const cache::MemRequest &, uint64_t now) override
    {
        return now;
    }
    const std::string &name() const override
    {
        static const std::string n = "null";
        return n;
    }
};

cache::CacheGeometry
tinyGeom()
{
    cache::CacheGeometry g;
    g.name = "tiny";
    g.size_bytes = 4 * 2 * 64;
    g.ways = 2;
    g.latency = 0;
    return g;
}

} // namespace

TEST(InvariantHooks, ArmedCacheSurfacesPolicyViolations)
{
    NullNext next;
    cache::Cache c(tinyGeom(),
                   std::make_unique<TrippingPolicy>(3), &next);
    c.setVerifyInvariants(true);
    cache::MemRequest req;
    req.address = 0;
    EXPECT_NO_THROW(c.access(req, 0));
    req.address = 64;
    EXPECT_NO_THROW(c.access(req, 1));
    req.address = 128;
    EXPECT_THROW(c.access(req, 2), std::logic_error);
}

TEST(InvariantHooks, DisarmedCacheIgnoresViolations)
{
    NullNext next;
    cache::Cache c(tinyGeom(),
                   std::make_unique<TrippingPolicy>(0), &next);
    c.setVerifyInvariants(false);
    cache::MemRequest req;
    req.address = 0;
    EXPECT_NO_THROW(c.access(req, 0));
}

TEST(InvariantHooks, StatsConsistencyCheckedWhenArmed)
{
    NullNext next;
    cache::Cache c(tinyGeom(),
                   std::make_unique<TrippingPolicy>(1000), &next);
    c.setVerifyInvariants(true);
    cache::MemRequest req;
    req.address = 0;
    EXPECT_NO_THROW(c.access(req, 0));
    // Corrupt the per-type counters behind the cache's back.
    ++c.statSet().counter("LD_hit");
    EXPECT_THROW(c.access(req, 1), std::logic_error);
}

TEST(InvariantHooks, CleanPoliciesReplayWithHooksArmed)
{
    // replayCompare arms RLR_VERIFY hooks on the production cache;
    // a clean policy must replay a long trace without tripping its
    // own width checks.
    for (const auto &policy : verify::referencePolicies()) {
        DiffSpec spec;
        spec.policy = policy;
        spec.sets = 8;
        spec.ways = 4;
        spec.seed = 5;
        spec.accesses = 2000;
        spec.distinct_lines = 96;
        if (policy == "RLR-unopt")
            spec.rlr = core::RlrConfig::unoptimized();
        const auto trace = verify::makeFuzzTrace(spec);
        EXPECT_FALSE(
            verify::replayCompare(spec, trace).has_value())
            << policy;
    }
}

TEST(Stats, AccessConsistencyError)
{
    stats::StatSet s("llc");
    s.counter("LD_access") = 10;
    s.counter("LD_hit") = 6;
    s.counter("LD_miss") = 4;
    EXPECT_EQ(stats::accessConsistencyError(s), "");
    s.counter("WB_hit") = 1; // no matching access
    EXPECT_NE(stats::accessConsistencyError(s), "");
}
