/** @file Tests for the Belady oracle and MIN policy. */

#include <gtest/gtest.h>

#include <unordered_set>

#include "policies/belady.hh"
#include "policies/lru.hh"
#include "policies/random.hh"
#include "tests/policy_test_util.hh"
#include "util/rng.hh"

using namespace rlr;
using namespace rlr::policies;

TEST(BeladyOracle, NextUseLookup)
{
    const auto trace = test::loadTrace({1, 2, 3, 1, 2, 1});
    BeladyOracle oracle(trace);
    EXPECT_EQ(oracle.nextUse(1 * 64, 0), 3u);
    EXPECT_EQ(oracle.nextUse(1 * 64, 3), 5u);
    EXPECT_EQ(oracle.nextUse(1 * 64, 5), BeladyOracle::kNever);
    EXPECT_EQ(oracle.nextUse(3 * 64, 2), BeladyOracle::kNever);
    EXPECT_EQ(oracle.nextUse(99 * 64, 0), BeladyOracle::kNever);
}

TEST(BeladyPolicy, EvictsFarthest)
{
    // Set with lines whose next uses are known; MIN picks the
    // farthest.
    const auto trace =
        test::loadTrace({1, 2, 3, 4, 5, 1, 2, 3, 4});
    auto oracle = std::make_shared<BeladyOracle>(trace);
    BeladyPolicy p(oracle);
    p.bind(test::tinyGeometry());
    p.setPosition(4); // after filling 1..4, access 5 misses

    std::vector<cache::BlockView> blocks(4);
    for (uint32_t w = 0; w < 4; ++w)
        blocks[w] = cache::BlockView{true, false, false,
                                     (w + 1) * 64ull};
    cache::AccessContext miss;
    miss.full_addr = 5 * 64;
    // Next uses after position 4: line1@5, line2@6, line3@7,
    // line4@8 -> farthest is line 4 (way 3).
    EXPECT_EQ(p.findVictim(miss, blocks), 3u);
}

TEST(BeladyPolicy, NeverUsedEvictedFirst)
{
    const auto trace =
        test::loadTrace({1, 2, 3, 4, 5, 1, 2, 4});
    auto oracle = std::make_shared<BeladyOracle>(trace);
    BeladyPolicy p(oracle);
    p.bind(test::tinyGeometry());
    p.setPosition(4); // deciding the miss to line 5
    std::vector<cache::BlockView> blocks(4);
    for (uint32_t w = 0; w < 4; ++w)
        blocks[w] = cache::BlockView{true, false, false,
                                     (w + 1) * 64ull};
    cache::AccessContext miss;
    // Line 3 is never used again -> way 2.
    EXPECT_EQ(p.findVictim(miss, blocks), 2u);
}

/**
 * Property: Belady's hit rate dominates LRU and Random on random
 * traces (MIN optimality), across seeds.
 */
class BeladyOptimalityTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(BeladyOptimalityTest, DominatesOnRandomTraces)
{
    util::Rng rng(GetParam());
    std::vector<uint64_t> lines;
    // Skewed random lines over 3x the cache capacity.
    for (int i = 0; i < 4000; ++i)
        lines.push_back(rng.nextBounded(192));
    const auto trace = test::loadTrace(lines);

    ml::OfflineSimulator sim(test::smallOffline(), &trace);
    BeladyPolicy belady(sim.oracle());
    const auto opt = sim.runPolicy(belady);
    LruPolicy lru;
    const auto base = sim.runPolicy(lru);
    RandomPolicy rnd(GetParam());
    const auto rand_stats = sim.runPolicy(rnd);

    EXPECT_GE(opt.hits, base.hits);
    EXPECT_GE(opt.hits, rand_stats.hits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BeladyOptimalityTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u));

TEST(BeladyPolicy, BypassImprovesOrMatchesHitRate)
{
    util::Rng rng(99);
    std::vector<uint64_t> lines;
    for (int i = 0; i < 3000; ++i)
        lines.push_back(rng.nextBounded(256));
    const auto trace = test::loadTrace(lines);
    ml::OfflineSimulator sim(test::smallOffline(), &trace);

    BeladyPolicy plain(sim.oracle(), false);
    const auto s_plain = sim.runPolicy(plain);
    BeladyPolicy bypass(sim.oracle(), true);
    const auto s_bypass = sim.runPolicy(bypass);
    EXPECT_GE(s_bypass.hits, s_plain.hits);
}

TEST(BeladyPolicy, ZeroOverhead)
{
    const auto trace = test::loadTrace({1});
    auto oracle = std::make_shared<BeladyOracle>(trace);
    BeladyPolicy p(oracle);
    cache::CacheGeometry g = test::tinyGeometry();
    p.bind(g);
    EXPECT_DOUBLE_EQ(p.overhead().totalBytes(g), 0.0);
}
