/** @file Property tests for the synthetic workload generators. */

#include <gtest/gtest.h>

#include <unordered_set>

#include "trace/synthetic.hh"
#include "trace/workloads.hh"

using namespace rlr::trace;

TEST(Synthetic, DeterministicForSeed)
{
    auto a = makeGenerator("403.gcc", 7);
    auto b = makeGenerator("403.gcc", 7);
    Instruction ia, ib;
    for (int i = 0; i < 2000; ++i) {
        ASSERT_TRUE(a->next(ia));
        ASSERT_TRUE(b->next(ib));
        EXPECT_EQ(ia.pc, ib.pc);
        EXPECT_EQ(ia.mem_addr, ib.mem_addr);
        EXPECT_EQ(static_cast<int>(ia.kind),
                  static_cast<int>(ib.kind));
    }
}

TEST(Synthetic, ResetReproducesStream)
{
    auto gen = makeGenerator("471.omnetpp", 9);
    std::vector<uint64_t> first;
    Instruction instr;
    for (int i = 0; i < 500; ++i) {
        gen->next(instr);
        first.push_back(instr.pc ^ instr.mem_addr);
    }
    gen->reset();
    for (int i = 0; i < 500; ++i) {
        gen->next(instr);
        EXPECT_EQ(instr.pc ^ instr.mem_addr, first[i]) << i;
    }
}

TEST(Synthetic, DifferentSeedsDiffer)
{
    auto a = makeGenerator("429.mcf", 1);
    auto b = makeGenerator("429.mcf", 2);
    Instruction ia, ib;
    int same = 0;
    for (int i = 0; i < 500; ++i) {
        a->next(ia);
        b->next(ib);
        same += ia.mem_addr == ib.mem_addr &&
                ia.kind == ib.kind;
    }
    EXPECT_LT(same, 400);
}

TEST(Synthetic, ChaseLoadsAreDependent)
{
    // astar is chase-heavy: dependent loads through register 1
    // must appear.
    auto gen = makeGenerator("473.astar", 3);
    Instruction instr;
    int dependent = 0;
    for (int i = 0; i < 5000; ++i) {
        gen->next(instr);
        if (instr.kind == InstrKind::Load &&
            instr.src_regs[0] == 1 && instr.dest_reg == 1)
            ++dependent;
    }
    EXPECT_GT(dependent, 100);
}

/** Per-workload stream sanity, parameterized over the catalog. */
class WorkloadStreamTest
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadStreamTest, StreamStatisticsMatchProfile)
{
    const auto profile = findWorkload(GetParam());
    SyntheticGenerator gen(profile, 1234);
    Instruction instr;
    const int n = 20000;
    int mem = 0, branches = 0;
    std::unordered_set<uint64_t> code_lines;
    for (int i = 0; i < n; ++i) {
        ASSERT_TRUE(gen.next(instr));
        EXPECT_NE(instr.pc, 0u);
        switch (instr.kind) {
          case InstrKind::Load:
          case InstrKind::Store:
            ++mem;
            EXPECT_NE(instr.mem_addr, 0u);
            break;
          case InstrKind::Branch:
            ++branches;
            EXPECT_NE(instr.branch_target, 0u);
            break;
          case InstrKind::Alu:
            code_lines.insert(instr.pc >> 6);
            break;
        }
    }
    // Ratios within loose tolerance of the profile.
    EXPECT_NEAR(static_cast<double>(mem) / n, profile.mem_ratio,
                0.03)
        << profile.name;
    EXPECT_NEAR(static_cast<double>(branches) / n,
                profile.branch_ratio, 0.03)
        << profile.name;
    // Code footprint is exercised (at least a few lines).
    EXPECT_GT(code_lines.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadStreamTest,
    ::testing::ValuesIn([] {
        std::vector<std::string> names;
        for (const auto &w : allWorkloads())
            names.push_back(w.name);
        return names;
    }()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (auto &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(Synthetic, KernelAddressesStayInRegions)
{
    // Each kernel's addresses live in its own 2^40 region.
    auto gen = makeGenerator("450.soplex", 77);
    Instruction instr;
    for (int i = 0; i < 20000; ++i) {
        gen->next(instr);
        if (instr.mem_addr == 0)
            continue;
        const uint64_t region = instr.mem_addr >> 40;
        // Regions: 0x7f.. for locals, 1..N for kernels.
        EXPECT_TRUE(region >= 1);
    }
}

TEST(Synthetic, ShuffledLoopDefeatsStridePatterns)
{
    // A shuffled loop's consecutive deltas must not be constant.
    KernelSpec k;
    k.kind = KernelKind::Loop;
    k.working_set = 64 * 1024;
    k.shuffled = true;
    WorkloadProfile p;
    p.name = "shuftest";
    p.suite = "test";
    p.mem_ratio = 1.0;
    p.branch_ratio = 0.0;
    p.local_frac = 0.0;
    p.kernels = {k};
    SyntheticGenerator gen(p, 5);
    Instruction instr;
    std::vector<int64_t> deltas;
    uint64_t prev = 0;
    for (int i = 0; i < 200; ++i) {
        gen.next(instr);
        if (prev != 0)
            deltas.push_back(
                static_cast<int64_t>(instr.mem_addr) -
                static_cast<int64_t>(prev));
        prev = instr.mem_addr;
    }
    int constant_runs = 0;
    for (size_t i = 1; i < deltas.size(); ++i)
        constant_runs += deltas[i] == deltas[i - 1];
    EXPECT_LT(constant_runs, 20);
}
