/** @file Tests for the O3 core model and branch predictor. */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "trace/synthetic.hh"
#include "trace/workloads.hh"

using namespace rlr;
using namespace rlr::cpu;

namespace
{

/** Backing memory with configurable latency per address range. */
class StubMemory : public cache::MemoryLevel
{
  public:
    explicit StubMemory(uint64_t latency) : latency_(latency) {}

    uint64_t
    access(const cache::MemRequest &req, uint64_t now) override
    {
        ++count;
        (void)req;
        return now + latency_;
    }

    const std::string &name() const override { return name_; }

    uint64_t count = 0;

  private:
    uint64_t latency_;
    std::string name_ = "stub";
};

trace::Instruction
alu()
{
    trace::Instruction i;
    i.pc = 0x1000;
    i.kind = trace::InstrKind::Alu;
    return i;
}

trace::Instruction
loadTo(uint8_t dest, uint64_t addr, uint8_t src = trace::kNoReg)
{
    trace::Instruction i;
    i.pc = 0x2000;
    i.kind = trace::InstrKind::Load;
    i.mem_addr = addr;
    i.dest_reg = dest;
    i.src_regs[0] = src;
    return i;
}

} // namespace

TEST(Gshare, LearnsStrongBias)
{
    GsharePredictor bp;
    int wrong = 0;
    for (int i = 0; i < 500; ++i)
        wrong += !bp.predictAndUpdate(0x400, true);
    EXPECT_LT(wrong, 30);
}

TEST(Gshare, LearnsAlternatingPattern)
{
    GsharePredictor bp;
    int wrong_tail = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool taken = (i % 2) == 0;
        const bool ok = bp.predictAndUpdate(0x500, taken);
        if (i >= 1000)
            wrong_tail += !ok;
    }
    // Global history makes alternation nearly perfectly
    // predictable.
    EXPECT_LT(wrong_tail, 50);
}

TEST(Gshare, TracksStats)
{
    GsharePredictor bp;
    bp.predictAndUpdate(0x1, true);
    EXPECT_EQ(bp.lookups(), 1u);
}

TEST(O3Core, WidthBoundsIpc)
{
    StubMemory mem(1);
    CoreConfig cfg;
    cfg.width = 3;
    O3Core core(cfg, 0, &mem, &mem);
    core.beginMeasurement();
    for (int i = 0; i < 3000; ++i)
        core.step(alu());
    EXPECT_LE(core.ipc(), 3.0);
    EXPECT_GT(core.ipc(), 1.0);
}

TEST(O3Core, IndependentLoadsOverlap)
{
    StubMemory mem(200);
    CoreConfig cfg;
    O3Core core(cfg, 0, &mem, &mem);
    core.beginMeasurement();
    // Independent loads to distinct registers: the 256-entry ROB
    // should overlap their latencies.
    for (int i = 0; i < 1000; ++i)
        core.step(loadTo(static_cast<uint8_t>(2 + (i % 32)),
                         0x10000 + 64 * i));
    const double ipc_parallel = core.ipc();

    // Dependent chain: each load's address depends on the
    // previous load.
    O3Core serial(cfg, 0, &mem, &mem);
    serial.beginMeasurement();
    for (int i = 0; i < 1000; ++i)
        serial.step(loadTo(1, 0x90000 + 64 * i, 1));
    const double ipc_serial = serial.ipc();

    EXPECT_GT(ipc_parallel, 4.0 * ipc_serial);
}

TEST(O3Core, DependentChainBoundByLatency)
{
    StubMemory mem(100);
    CoreConfig cfg;
    O3Core core(cfg, 0, &mem, &mem);
    core.beginMeasurement();
    for (int i = 0; i < 500; ++i)
        core.step(loadTo(1, 0x90000 + 64 * i, 1));
    // Each dependent load costs ~latency cycles.
    EXPECT_NEAR(static_cast<double>(core.measuredCycles()) / 500.0,
                100.0, 15.0);
}

TEST(O3Core, MispredictionCostsCycles)
{
    StubMemory mem(1);
    CoreConfig cfg;
    cfg.mispredict_penalty = 20;

    auto run_branches = [&](double taken_prob) {
        O3Core core(cfg, 0, &mem, &mem);
        core.beginMeasurement();
        uint64_t x = 12345;
        for (int i = 0; i < 4000; ++i) {
            trace::Instruction br;
            br.pc = 0x3000;
            br.kind = trace::InstrKind::Branch;
            x = x * 6364136223846793005ULL + 1;
            br.branch_taken =
                static_cast<double>(x >> 40) /
                    static_cast<double>(1 << 24) <
                taken_prob;
            core.step(br);
        }
        return core.ipc();
    };

    const double ipc_predictable = run_branches(1.0);
    const double ipc_random = run_branches(0.5);
    EXPECT_GT(ipc_predictable, 1.5 * ipc_random);
}

TEST(O3Core, StoresDoNotBlockRetirement)
{
    StubMemory slow(500);
    CoreConfig cfg;
    O3Core core(cfg, 0, &slow, &slow);
    // Warm the fetch path so the one-time I-fetch miss does not
    // dominate the measurement.
    trace::Instruction warm;
    warm.pc = 0x4000;
    warm.kind = trace::InstrKind::Alu;
    core.step(warm);
    core.beginMeasurement();
    for (int i = 0; i < 300; ++i) {
        trace::Instruction st;
        st.pc = 0x4000;
        st.kind = trace::InstrKind::Store;
        st.mem_addr = 0x20000 + 64 * i;
        core.step(st);
    }
    // Stores retire through the store buffer: IPC near width
    // despite 500-cycle memory.
    EXPECT_GT(core.ipc(), 1.0);
}

TEST(O3Core, RunFromGeneratorCountsInstructions)
{
    StubMemory mem(10);
    O3Core core(CoreConfig{}, 0, &mem, &mem);
    auto gen = trace::SyntheticGenerator(
        trace::findWorkload("416.gamess"), 5);
    core.run(gen, 5000);
    EXPECT_EQ(core.instructions(), 5000u);
    EXPECT_GT(core.cycles(), 0u);
}

TEST(O3Core, MeasurementWindowExcludesWarmup)
{
    StubMemory mem(10);
    O3Core core(CoreConfig{}, 0, &mem, &mem);
    for (int i = 0; i < 100; ++i)
        core.step(alu());
    core.beginMeasurement();
    EXPECT_EQ(core.measuredInstructions(), 0u);
    for (int i = 0; i < 50; ++i)
        core.step(alu());
    EXPECT_EQ(core.measuredInstructions(), 50u);
}
