#include "policies/glider.hh"

#include <algorithm>

#include "util/bits.hh"
#include "util/logging.hh"

namespace rlr::policies
{

GliderPolicy::GliderPolicy(GliderConfig config) : config_(config)
{
    max_rrpv_ =
        static_cast<uint8_t>((1u << config_.rrpv_bits) - 1);
    util::ensure(util::isPowerOfTwo(config_.isvm_entries),
                 "Glider: isvm_entries must be a power of two");
    util::ensure(util::isPowerOfTwo(config_.weights_per_entry),
                 "Glider: weights_per_entry must be a power of two");
}

void
GliderPolicy::bind(const cache::CacheGeometry &geom)
{
    ways_ = geom.ways;
    num_sets_ = geom.numSets();
    lines_.assign(static_cast<size_t>(num_sets_) * ways_,
                  LineState{});
    for (auto &ls : lines_)
        ls.rrpv = max_rrpv_;

    const uint32_t sampled =
        std::min(config_.sampled_sets, num_sets_);
    sample_period_ = std::max(1u, num_sets_ / sampled);
    history_len_ = config_.history_factor * ways_;
    samplers_.assign(sampled, SamplerSet{});
    for (auto &s : samplers_)
        s.occupancy.assign(history_len_, 0);

    weights_.assign(static_cast<size_t>(config_.isvm_entries) *
                        config_.weights_per_entry,
                    0);
    history_.clear();
}

GliderPolicy::LineState &
GliderPolicy::line(uint32_t set, uint32_t way)
{
    return lines_[static_cast<size_t>(set) * ways_ + way];
}

uint32_t
GliderPolicy::pcIndex(uint64_t pc) const
{
    return static_cast<uint32_t>(
        util::foldXor(pc >> 2,
                      util::ceilLog2(config_.isvm_entries)) &
        (config_.isvm_entries - 1));
}

std::vector<uint16_t>
GliderPolicy::weightSlots() const
{
    // One weight slot per history PC, selected by a hash of that
    // PC (the ISVM's sparse feature vector).
    std::vector<uint16_t> slots;
    slots.reserve(history_.size());
    for (const auto pc : history_) {
        slots.push_back(static_cast<uint16_t>(
            util::foldXor(pc >> 2, util::ceilLog2(
                                       config_.weights_per_entry)) &
            (config_.weights_per_entry - 1)));
    }
    return slots;
}

int
GliderPolicy::sumWeights(uint32_t pc_index,
                         const std::vector<uint16_t> &slots) const
{
    const size_t base =
        static_cast<size_t>(pc_index) * config_.weights_per_entry;
    int sum = 0;
    for (const auto s : slots)
        sum += weights_[base + s];
    return sum;
}

void
GliderPolicy::train(uint32_t pc_index,
                    const std::vector<uint16_t> &slots,
                    bool friendly)
{
    // Perceptron-style update with margin: only move weights while
    // the decision is not yet confidently correct.
    const int sum = sumWeights(pc_index, slots);
    if (friendly && sum > config_.margin)
        return;
    if (!friendly && sum < -config_.margin)
        return;
    const size_t base =
        static_cast<size_t>(pc_index) * config_.weights_per_entry;
    for (const auto s : slots) {
        int16_t &w = weights_[base + s];
        if (friendly && w < config_.weight_max)
            ++w;
        else if (!friendly && w > -config_.weight_max)
            --w;
    }
}

GliderPolicy::SamplerSet *
GliderPolicy::sampler(uint32_t set)
{
    if (set % sample_period_ != 0)
        return nullptr;
    const uint32_t idx = set / sample_period_;
    if (idx >= samplers_.size())
        return nullptr;
    return &samplers_[idx];
}

void
GliderPolicy::updateHistory(uint64_t pc)
{
    // Unordered history: drop duplicates, keep the last K PCs.
    for (auto it = history_.begin(); it != history_.end(); ++it) {
        if (*it == pc) {
            history_.erase(it);
            break;
        }
    }
    history_.push_back(pc);
    while (history_.size() > config_.history_length)
        history_.pop_front();
}

int
GliderPolicy::decisionValue(uint64_t pc) const
{
    return sumWeights(pcIndex(pc), weightSlots());
}

bool
GliderPolicy::predictsFriendly(uint64_t pc) const
{
    return decisionValue(pc) >= config_.threshold;
}

uint32_t
GliderPolicy::findVictim(const cache::AccessContext &ctx,
                         std::span<const cache::BlockView> blocks)
{
    (void)blocks;
    const size_t base = static_cast<size_t>(ctx.set) * ways_;
    for (uint32_t w = 0; w < ways_; ++w) {
        if (lines_[base + w].rrpv == max_rrpv_)
            return w;
    }
    // All friendly: evict the oldest and detrain its signature.
    uint32_t victim = 0;
    uint8_t oldest = 0;
    for (uint32_t w = 0; w < ways_; ++w) {
        if (lines_[base + w].rrpv >= oldest) {
            oldest = lines_[base + w].rrpv;
            victim = w;
        }
    }
    LineState &ls = lines_[base + victim];
    if (!ls.weight_slots.empty())
        train(ls.pc_index, ls.weight_slots, false);
    return victim;
}

void
GliderPolicy::onAccess(const cache::AccessContext &ctx)
{
    LineState &ls = line(ctx.set, ctx.way);

    if (ctx.type == trace::AccessType::Writeback) {
        if (!ctx.hit) {
            ls.rrpv = max_rrpv_;
            ls.weight_slots.clear();
            ls.friendly = false;
        }
        return;
    }

    if (trace::isDemand(ctx.type))
        updateHistory(ctx.pc);

    const uint32_t pc_idx = pcIndex(ctx.pc);
    const auto slots = weightSlots();

    // OPTgen training on sampled sets.
    if (trace::isDemand(ctx.type) ||
        ctx.type == trace::AccessType::Prefetch) {
        if (SamplerSet *samp = sampler(ctx.set)) {
            const uint64_t addr =
                cache::CacheGeometry::lineAddress(ctx.full_addr);
            const uint64_t now = samp->time;
            const auto it = samp->entries.find(addr);
            if (it != samp->entries.end()) {
                const auto &[last, last_pc, last_slots] =
                    it->second;
                const uint64_t span = now - last;
                bool opt_hit = false;
                if (span < history_len_) {
                    opt_hit = true;
                    for (uint64_t t = last; t < now; ++t) {
                        if (samp->occupancy[t % history_len_] >=
                            ways_) {
                            opt_hit = false;
                            break;
                        }
                    }
                    if (opt_hit) {
                        for (uint64_t t = last; t < now; ++t)
                            ++samp->occupancy[t % history_len_];
                    }
                }
                train(last_pc, last_slots, opt_hit);
                it->second = {now, pc_idx, slots};
            } else {
                samp->entries.emplace(
                    addr, std::make_tuple(now, pc_idx, slots));
            }
            ++samp->time;
            samp->occupancy[samp->time % history_len_] = 0;
            if (samp->entries.size() > 2ULL * history_len_) {
                for (auto e = samp->entries.begin();
                     e != samp->entries.end();) {
                    if (samp->time - std::get<0>(e->second) >=
                        history_len_)
                        e = samp->entries.erase(e);
                    else
                        ++e;
                }
            }
        }
    }

    const int sum = sumWeights(pc_idx, slots);
    const bool friendly = sum >= config_.threshold;
    ls.pc_index = pc_idx;
    ls.weight_slots = slots;
    ls.friendly = friendly;
    if (!friendly) {
        ls.rrpv = max_rrpv_;
        return;
    }
    if (!ctx.hit) {
        const size_t base = static_cast<size_t>(ctx.set) * ways_;
        for (uint32_t w = 0; w < ways_; ++w) {
            if (w == ctx.way)
                continue;
            LineState &other = lines_[base + w];
            if (other.rrpv < max_rrpv_ - 1)
                ++other.rrpv;
        }
    }
    // Glider inserts confident-friendly lines at MRU and
    // low-confidence ones slightly aged.
    ls.rrpv = sum >= config_.margin ? 0 : 1;
}

cache::StorageOverhead
GliderPolicy::overhead() const
{
    cache::StorageOverhead o;
    // 3b RRIP per line + the ISVM weight tables + PCHR + sampler,
    // following the paper's 61.6KB figure for 2MB/16-way.
    o.bits_per_line = config_.rrpv_bits;
    const double isvm_bits =
        static_cast<double>(config_.isvm_entries) *
        config_.weights_per_entry * 6.0;
    const double sampler_bits =
        static_cast<double>(config_.sampled_sets) *
        (config_.history_factor * 16.0) *
        25.6; // tag + time + PCHR snapshot per sampler entry
    o.global_bits = isvm_bits + sampler_bits +
                    config_.history_length * 16.0;
    return o;
}

} // namespace rlr::policies
