/**
 * @file
 * Static description of a cache's shape and timing.
 */

#ifndef RLR_CACHE_GEOMETRY_HH
#define RLR_CACHE_GEOMETRY_HH

#include <cstdint>
#include <string>

#include "util/bits.hh"
#include "util/logging.hh"

namespace rlr::cache
{

/** Cache line size used throughout the simulator. */
inline constexpr uint64_t kLineBytes = 64;

/** log2 of the line size. */
inline constexpr unsigned kLineBits = 6;

/**
 * Geometry and timing of one cache level. Sets are derived from
 * (size, ways, line size); sizes must be power-of-two multiples.
 */
struct CacheGeometry
{
    std::string name = "cache";
    uint64_t size_bytes = 2 * 1024 * 1024;
    uint32_t ways = 16;
    /** Hit / lookup latency in cycles. */
    uint32_t latency = 26;
    /** Miss-status holding registers (outstanding misses). */
    uint32_t mshrs = 32;

    /** @return number of sets. */
    uint32_t
    numSets() const
    {
        return static_cast<uint32_t>(size_bytes /
                                     (kLineBytes * ways));
    }

    /** @return total number of cache lines. */
    uint64_t
    numLines() const
    {
        return size_bytes / kLineBytes;
    }

    /** @return bits needed to index a set. */
    unsigned setBits() const { return util::floorLog2(numSets()); }

    /** @return set index of a byte address. */
    uint32_t
    setIndex(uint64_t address) const
    {
        return static_cast<uint32_t>((address >> kLineBits) &
                                     util::mask(setBits()));
    }

    /** @return tag of a byte address. */
    uint64_t
    tag(uint64_t address) const
    {
        return address >> (kLineBits + setBits());
    }

    /** @return address of the containing cache line. */
    static uint64_t
    lineAddress(uint64_t address)
    {
        return util::alignDown(address, kLineBytes);
    }

    /** Validate shape invariants; calls fatal() when malformed. */
    void
    validate() const
    {
        if (!util::isPowerOfTwo(size_bytes) ||
            !util::isPowerOfTwo(ways) ||
            size_bytes < kLineBytes * ways) {
            util::fatal("cache '{}': malformed geometry "
                        "(size={}, ways={})",
                        name, size_bytes, ways);
        }
    }
};

} // namespace rlr::cache

#endif // RLR_CACHE_GEOMETRY_HH
