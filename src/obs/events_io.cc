#include "obs/events_io.hh"

#include <cstdio>
#include <stdexcept>

#include "stats/export.hh"
#include "util/atomic_file.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace rlr::obs
{

namespace
{

using stats::json::Value;

/** Columns of one compact event row, in serialization order. */
constexpr size_t kEventArity = 14;

[[noreturn]] void
malformed(const std::string &what)
{
    throw std::runtime_error("events JSON: " + what);
}

uint64_t
asU64(const Value &v, const char *what)
{
    if (!v.isNumber() || v.number < 0)
        malformed(util::format("'{}' is not a non-negative number",
                               what));
    return static_cast<uint64_t>(v.number);
}

uint64_t
memberU64(const Value &obj, const char *key)
{
    const Value *v = obj.find(key);
    if (!v)
        malformed(util::format("missing member '{}'", key));
    return asU64(*v, key);
}

std::vector<uint64_t>
memberU64Array(const Value &obj, const char *key)
{
    const Value *v = obj.find(key);
    if (!v || !v->isArray())
        malformed(util::format("missing array member '{}'", key));
    std::vector<uint64_t> out;
    out.reserve(v->array.size());
    for (const Value &e : v->array)
        out.push_back(asU64(e, key));
    return out;
}

uint64_t
checkedEnum(uint64_t value, uint64_t limit, const char *what)
{
    if (value >= limit)
        malformed(util::format("{} value {} out of range", what,
                               value));
    return value;
}

void
appendEventRow(std::string &out, const Event &ev)
{
    out += util::format(
        "[{}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}]",
        ev.access_no, static_cast<unsigned>(ev.kind),
        static_cast<unsigned>(ev.type), ev.set,
        static_cast<unsigned>(ev.way), ev.address, ev.pc,
        static_cast<unsigned>(ev.cpu), ev.priority, ev.victim_age,
        ev.victim_hits, static_cast<unsigned>(ev.victim_recency),
        static_cast<unsigned>(ev.victim_last_type),
        static_cast<unsigned>(ev.reason));
}

Event
parseEventRow(const Value &row)
{
    if (!row.isArray() || row.array.size() != kEventArity)
        malformed(util::format("event row is not a {}-element "
                               "array",
                               kEventArity));
    auto col = [&](size_t i, const char *what) {
        return asU64(row.array[i], what);
    };
    Event ev;
    ev.access_no = col(0, "access_no");
    ev.kind = static_cast<EventKind>(checkedEnum(
        col(1, "kind"), kNumEventKinds, "event kind"));
    ev.type = static_cast<trace::AccessType>(checkedEnum(
        col(2, "type"), trace::kNumAccessTypes, "access type"));
    ev.set = static_cast<uint32_t>(col(3, "set"));
    ev.way = static_cast<uint8_t>(
        checkedEnum(col(4, "way"), 256, "way"));
    ev.address = col(5, "address");
    ev.pc = col(6, "pc");
    ev.cpu = static_cast<uint8_t>(
        checkedEnum(col(7, "cpu"), 256, "cpu"));
    ev.priority = col(8, "priority");
    ev.victim_age = static_cast<uint32_t>(col(9, "victim_age"));
    ev.victim_hits = static_cast<uint32_t>(col(10, "victim_hits"));
    ev.victim_recency = static_cast<uint8_t>(checkedEnum(
        col(11, "victim_recency"), 256, "victim_recency"));
    ev.victim_last_type = static_cast<trace::AccessType>(
        checkedEnum(col(12, "victim_last_type"),
                    trace::kNumAccessTypes, "victim_last_type"));
    ev.reason = static_cast<cache::BypassReason>(checkedEnum(
        col(13, "reason"), cache::kNumBypassReasons,
        "bypass reason"));
    return ev;
}

void
appendU64Array(std::string &out, const char *key,
               const std::vector<uint64_t> &values)
{
    out += util::format("      \"{}\": [", key);
    for (size_t i = 0; i < values.size(); ++i) {
        if (i)
            out += ", ";
        out += util::format("{}", values[i]);
    }
    out += "]";
}

} // namespace

std::string
eventsToJson(const std::vector<CellEvents> &cells)
{
    using stats::json::escape;

    std::string out = "{\n  \"version\": 1,\n  \"cells\": [\n";
    for (size_t c = 0; c < cells.size(); ++c) {
        const CellEvents &cell = cells[c];
        const EventLogData &log = cell.log;
        out += "    {\n";
        out += util::format("      \"workload\": \"{}\",\n",
                            escape(cell.workload));
        out += util::format("      \"policy\": \"{}\",\n",
                            escape(cell.policy));
        // As a string: 64-bit seeds do not survive the JSON
        // number path (doubles lose integers past 2^53).
        out += util::format("      \"seed\": \"{}\",\n", cell.seed);
        out += util::format("      \"capacity\": {},\n",
                            log.config.capacity);
        out += util::format("      \"sample_sets\": {},\n",
                            log.config.sample_sets);
        out += util::format("      \"ways\": {},\n", log.ways);
        out += util::format("      \"recorded\": {},\n",
                            log.recorded);
        out += util::format("      \"overwritten\": {},\n",
                            log.overwritten);
        out += util::format("      \"sampled_out\": {},\n",
                            log.sampled_out);
        appendU64Array(out, "set_accesses", log.set_accesses);
        out += ",\n";
        appendU64Array(out, "set_misses", log.set_misses);
        out += ",\n      \"events\": [\n";
        for (size_t i = 0; i < log.events.size(); ++i) {
            out += "        ";
            appendEventRow(out, log.events[i]);
            out += i + 1 < log.events.size() ? ",\n" : "\n";
        }
        out += "      ]\n";
        out += c + 1 < cells.size() ? "    },\n" : "    }\n";
    }
    out += "  ]\n}\n";
    return out;
}

std::vector<CellEvents>
eventsFromJson(const std::string &text)
{
    const Value root = stats::json::parse(text);
    if (!root.isObject())
        malformed("document is not an object");
    if (memberU64(root, "version") != 1)
        malformed("unsupported version");
    const Value *cells_v = root.find("cells");
    if (!cells_v || !cells_v->isArray())
        malformed("missing 'cells' array");

    std::vector<CellEvents> cells;
    cells.reserve(cells_v->array.size());
    for (const Value &cv : cells_v->array) {
        if (!cv.isObject())
            malformed("cell is not an object");
        CellEvents cell;
        cell.workload = cv.stringOr("workload", "");
        cell.policy = cv.stringOr("policy", "");
        const Value *seed_v = cv.find("seed");
        if (!seed_v)
            malformed("missing member 'seed'");
        if (seed_v->isString()) {
            try {
                cell.seed = std::stoull(seed_v->string);
            } catch (const std::exception &) {
                malformed("'seed' is not an integer string");
            }
        } else {
            cell.seed = asU64(*seed_v, "seed");
        }
        cell.log.config.capacity =
            static_cast<uint32_t>(memberU64(cv, "capacity"));
        cell.log.config.sample_sets =
            static_cast<uint32_t>(memberU64(cv, "sample_sets"));
        cell.log.ways =
            static_cast<uint32_t>(memberU64(cv, "ways"));
        cell.log.recorded = memberU64(cv, "recorded");
        cell.log.overwritten = memberU64(cv, "overwritten");
        cell.log.sampled_out = memberU64(cv, "sampled_out");
        cell.log.set_accesses = memberU64Array(cv, "set_accesses");
        cell.log.set_misses = memberU64Array(cv, "set_misses");
        const Value *events_v = cv.find("events");
        if (!events_v || !events_v->isArray())
            malformed("missing 'events' array");
        cell.log.events.reserve(events_v->array.size());
        for (const Value &row : events_v->array)
            cell.log.events.push_back(parseEventRow(row));
        cells.push_back(std::move(cell));
    }
    return cells;
}

void
writeEvents(const std::string &path,
            const std::vector<CellEvents> &cells)
{
    util::atomicWriteFileOrFatal(path, eventsToJson(cells));
}

std::vector<CellEvents>
readEvents(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw std::runtime_error("cannot open events file '" +
                                 path + "'");
    std::string text;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return eventsFromJson(text);
}

} // namespace rlr::obs
