/**
 * @file
 * Supplementary experiment: the RL agent's learning trajectory.
 * Plots demand hit rate per training epoch against the LRU and
 * Belady bounds — the Section III-A story (the agent converges
 * between LRU and the optimum).
 */

#include "bench/common.hh"
#include "ml/analysis.hh"
#include "policies/lru.hh"

using namespace rlr;

int
main(int argc, char **argv)
{
    auto parser = bench::makeParser(
        "RL learning curve vs LRU and Belady bounds");
    parser.addOption("epochs", "4", "Training epochs to plot");
    if (!parser.parse(argc, argv))
        return 0;
    auto opt = bench::makeOptions(parser);
    const auto epochs =
        static_cast<unsigned>(parser.getUint("epochs"));

    auto workloads = opt.workloads;
    if (workloads.empty())
        workloads = {"471.omnetpp", "483.xalancbmk"};

    for (const auto &w : workloads) {
        sim::SimParams p = opt.params;
        p.sim_instructions = opt.rl_instructions;
        const auto trace = sim::captureLlcTrace(w, p);
        if (trace.empty()) {
            std::printf("%s: empty LLC trace, skipped\n",
                        w.c_str());
            continue;
        }
        ml::OfflineSimulator osim(ml::OfflineConfig{}, &trace);

        policies::LruPolicy lru;
        const double lru_rate =
            osim.runPolicy(lru).demandHitRate();
        policies::BeladyPolicy belady(osim.oracle());
        const double opt_rate =
            osim.runPolicy(belady).demandHitRate();

        ml::AgentConfig cfg;
        cfg.seed = opt.seed;
        const auto tr = ml::trainAgent(osim, cfg, epochs);

        std::printf("=== RL learning curve: %s ===\n", w.c_str());
        std::printf("LRU bound:    %.2f%%\n", 100.0 * lru_rate);
        std::printf("Belady bound: %.2f%%\n", 100.0 * opt_rate);
        for (size_t e = 0; e < tr.epoch_hit_rates.size(); ++e) {
            std::printf("epoch %zu (eps=%.2f): %.2f%%\n", e + 1,
                        cfg.epsilon,
                        100.0 * tr.epoch_hit_rates[e]);
        }
        std::printf("greedy eval:  %.2f%%  (TD loss %.4f, %zu "
                    "decisions)\n\n",
                    100.0 * tr.eval.demandHitRate(),
                    tr.agent->avgLoss(), tr.agent->decisions());
    }
    std::puts("Expected shape: the greedy agent lands between the "
              "LRU and Belady bounds and improves with epochs.");
    return 0;
}
