/**
 * @file
 * Console table formatting for experiment output. Bench binaries
 * print the same rows/series as the paper's tables and figures;
 * this keeps their output aligned and optionally CSV-exportable.
 */

#ifndef RLR_UTIL_TABLE_HH
#define RLR_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace rlr::util
{

/** Row/column table that renders aligned text or CSV. */
class Table
{
  public:
    /** @param header column titles */
    explicit Table(std::vector<std::string> header);

    /** Append a row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience cell formatting helpers. */
    static std::string fmt(double v, int precision = 2);
    static std::string pct(double v, int precision = 2);

    /** Render with aligned columns. */
    std::string render() const;

    /** Render as CSV. */
    std::string csv() const;

    size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rlr::util

#endif // RLR_UTIL_TABLE_HH
