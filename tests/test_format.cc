/** @file Unit tests for util/format.hh. */

#include <gtest/gtest.h>

#include "util/format.hh"

using rlr::util::format;

TEST(Format, PlainText)
{
    EXPECT_EQ(format("hello"), "hello");
    EXPECT_EQ(format(""), "");
}

TEST(Format, BasicSubstitution)
{
    EXPECT_EQ(format("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(format("{}", std::string("abc")), "abc");
    EXPECT_EQ(format("{}", true), "true");
    EXPECT_EQ(format("{}", 'x'), "x");
}

TEST(Format, Negative)
{
    EXPECT_EQ(format("{}", -42), "-42");
    EXPECT_EQ(format("{}", int64_t{-1}), "-1");
}

TEST(Format, Unsigned64)
{
    EXPECT_EQ(format("{}", ~0ULL), "18446744073709551615");
}

TEST(Format, FloatPrecision)
{
    EXPECT_EQ(format("{:.2f}", 3.14159), "3.14");
    EXPECT_EQ(format("{:.0f}", 2.6), "3");
    EXPECT_EQ(format("{}", 1.5), "1.500000");
}

TEST(Format, WidthAlignment)
{
    EXPECT_EQ(format("{:>6}", 42), "    42");
    EXPECT_EQ(format("{:<6}|", 42), "42    |");
    EXPECT_EQ(format("{:>6}", "ab"), "    ab");
    EXPECT_EQ(format("{:<6}|", "ab"), "ab    |");
    // Defaults: numbers right, text left.
    EXPECT_EQ(format("{:4}|", 7), "   7|");
    EXPECT_EQ(format("{:4}|", "x"), "x   |");
}

TEST(Format, DynamicWidthAndPrecision)
{
    // Value first, then width/precision — std::format order.
    EXPECT_EQ(format("{:<{}}|", "ab", 5), "ab   |");
    EXPECT_EQ(format("{:.{}f}", 3.14159, 3), "3.142");
}

TEST(Format, Hex)
{
    EXPECT_EQ(format("{:x}", 255), "ff");
    EXPECT_EQ(format("{:x}", 0xdeadULL), "dead");
}

TEST(Format, BraceEscapes)
{
    EXPECT_EQ(format("{{}}"), "{}");
    EXPECT_EQ(format("{{{}}}", 5), "{5}");
}

TEST(Format, MissingArguments)
{
    EXPECT_EQ(format("{} {}", 1), "1 <missing>");
}

TEST(Format, TooManyArgumentsIgnored)
{
    EXPECT_EQ(format("{}", 1, 2, 3), "1");
}
