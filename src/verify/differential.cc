#include "verify/differential.hh"

#include <algorithm>
#include <stdexcept>

#include "cache/cache.hh"
#include "core/policy_factory.hh"
#include "policies/lru.hh"
#include "policies/rrip.hh"
#include "policies/ship.hh"
#include "util/format.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "verify/ref_policies.hh"

namespace rlr::verify
{

namespace
{

/** Zero-latency memory endpoint: keeps the timing model inert so a
 *  differential replay is purely a replacement-behaviour trace. */
class NullMemory : public cache::MemoryLevel
{
  public:
    uint64_t
    access(const cache::MemRequest &req, uint64_t now) override
    {
        (void)req;
        return now;
    }

    const std::string &
    name() const override
    {
        static const std::string n = "null";
        return n;
    }
};

cache::CacheGeometry
specGeometry(const DiffSpec &spec)
{
    cache::CacheGeometry g;
    g.name = "diff";
    g.size_bytes =
        static_cast<uint64_t>(spec.sets) * spec.ways * 64;
    g.ways = spec.ways;
    g.latency = 0;
    return g;
}

std::string
formatAccess(size_t idx, const trace::LlcAccess &a)
{
    return util::format("[{}] {} pc=0x{:x} addr=0x{:x}", idx,
                        trace::accessTypeName(a.type), a.pc,
                        a.address);
}

std::string
formatSet(const std::vector<RefLine> &lines)
{
    std::string out = "{";
    for (size_t w = 0; w < lines.size(); ++w) {
        if (w)
            out += " ";
        out += lines[w].valid
                   ? util::format("0x{:x}", lines[w].line)
                   : std::string("-");
    }
    return out + "}";
}

std::vector<RefLine>
viewsToRefLines(const std::vector<cache::BlockView> &views)
{
    std::vector<RefLine> lines(views.size());
    for (size_t w = 0; w < views.size(); ++w)
        lines[w] = RefLine{views[w].valid, views[w].address};
    return lines;
}

} // namespace

std::string
DiffSpec::describe() const
{
    std::string out = util::format(
        "policy={} sets={} ways={} seed={} accesses={} lines={}",
        policy, sets, ways, seed, accesses, distinct_lines);
    if (policy == "SRRIP" || policy == "BRRIP" ||
        policy == "DRRIP") {
        out += util::format(" rrpv_bits={}", rrpv_bits);
        if (policy == "DRRIP")
            out += util::format(" leader_sets={}", leader_sets);
    } else if (policy == "SHiP") {
        out += util::format(" rrpv_bits={} sig_bits={} shct_bits={}",
                            rrpv_bits, ship_signature_bits,
                            ship_shct_bits);
    } else if (policy.rfind("RLR", 0) == 0) {
        out += util::format(
            " opt={} age={} tick={} hit={} rdmul={} rdhits={} "
            "weight={} usehit={} usetype={} bypass={}",
            rlr.optimized ? 1 : 0, rlr.age_bits,
            rlr.age_tick_misses, rlr.hit_bits, rlr.rd_multiplier,
            rlr.rd_update_hits, rlr.age_weight,
            rlr.use_hit_priority ? 1 : 0,
            rlr.use_type_priority ? 1 : 0,
            rlr.allow_bypass ? 1 : 0);
    }
    if (flush_period > 0)
        out += util::format(" flush_period={}", flush_period);
    return out;
}

bool
hasReferenceModel(const std::string &policy)
{
    return policy == "LRU" || policy == "SRRIP" ||
           policy == "BRRIP" || policy == "DRRIP" ||
           policy == "SHiP" || policy.rfind("RLR", 0) == 0;
}

std::vector<std::string>
referencePolicies()
{
    return {"LRU",  "SRRIP", "BRRIP",    "DRRIP",
            "SHiP", "RLR",   "RLR-unopt"};
}

std::unique_ptr<cache::ReplacementPolicy>
makeProductionPolicy(const DiffSpec &spec)
{
    using namespace rlr::policies;
    if (spec.policy == "LRU")
        return std::make_unique<LruPolicy>();
    if (spec.policy == "SRRIP")
        return std::make_unique<SrripPolicy>(spec.rrpv_bits);
    if (spec.policy == "BRRIP")
        return std::make_unique<BrripPolicy>(spec.rrpv_bits,
                                             spec.seed);
    if (spec.policy == "DRRIP")
        return std::make_unique<DrripPolicy>(
            spec.rrpv_bits, spec.leader_sets, spec.seed);
    if (spec.policy == "SHiP") {
        ShipConfig cfg;
        cfg.rrpv_bits = spec.rrpv_bits;
        cfg.signature_bits = spec.ship_signature_bits;
        cfg.shct_bits = spec.ship_shct_bits;
        return std::make_unique<ShipPolicy>(cfg);
    }
    if (spec.policy.rfind("RLR", 0) == 0)
        return std::make_unique<core::RlrPolicy>(spec.rlr);
    util::fatal("differential: no production model for '{}'",
                spec.policy);
}

std::unique_ptr<RefPolicy>
makeReferencePolicy(const DiffSpec &spec)
{
    if (spec.policy == "LRU")
        return std::make_unique<RefLru>();
    if (spec.policy == "SRRIP")
        return std::make_unique<RefRrip>(
            RripMode::Srrip, spec.rrpv_bits, spec.seed,
            spec.leader_sets);
    if (spec.policy == "BRRIP")
        return std::make_unique<RefRrip>(
            RripMode::Brrip, spec.rrpv_bits, spec.seed,
            spec.leader_sets);
    if (spec.policy == "DRRIP")
        return std::make_unique<RefRrip>(
            RripMode::Drrip, spec.rrpv_bits, spec.seed,
            spec.leader_sets);
    if (spec.policy == "SHiP")
        return std::make_unique<RefShip>(spec.rrpv_bits,
                                         spec.ship_signature_bits,
                                         spec.ship_shct_bits);
    if (spec.policy.rfind("RLR", 0) == 0) {
        RefRlrParams p;
        p.optimized = spec.rlr.optimized;
        p.age_bits = spec.rlr.age_bits;
        p.age_tick_misses = spec.rlr.age_tick_misses;
        p.hit_bits = spec.rlr.hit_bits;
        p.rd_update_hits = spec.rlr.rd_update_hits;
        p.rd_multiplier = spec.rlr.rd_multiplier;
        p.use_hit_priority = spec.rlr.use_hit_priority;
        p.use_type_priority = spec.rlr.use_type_priority;
        p.age_weight = spec.rlr.age_weight;
        p.allow_bypass = spec.rlr.allow_bypass;
        return std::make_unique<RefRlr>(p);
    }
    util::fatal("differential: no reference model for '{}'",
                spec.policy);
}

std::vector<trace::LlcAccess>
makeFuzzTrace(const DiffSpec &spec)
{
    util::Rng rng(spec.seed ^ 0xd1ffULL);
    const uint32_t pool =
        std::max<uint32_t>(1, spec.distinct_lines);
    const uint32_t hot = std::min<uint32_t>(8, pool);

    std::vector<trace::LlcAccess> accesses;
    accesses.reserve(spec.accesses);
    for (uint64_t i = 0; i < spec.accesses; ++i) {
        uint64_t idx;
        const double pick = rng.nextDouble();
        if (pick < 0.35)
            idx = rng.nextBounded(hot); // hot working set
        else if (pick < 0.50)
            idx = i % pool; // streaming sweep
        else
            idx = rng.nextBounded(pool); // uniform background
        trace::LlcAccess a;
        a.address = idx * 64;
        const double t = rng.nextDouble();
        if (t < spec.rfo_frac)
            a.type = trace::AccessType::Rfo;
        else if (t < spec.rfo_frac + spec.pf_frac)
            a.type = trace::AccessType::Prefetch;
        else if (t < spec.rfo_frac + spec.pf_frac + spec.wb_frac)
            a.type = trace::AccessType::Writeback;
        else
            a.type = trace::AccessType::Load;
        a.pc = a.type == trace::AccessType::Writeback
                   ? 0
                   : 0x400 + 4 * rng.nextBounded(std::max(
                                     1u, spec.num_pcs));
        a.cpu = 0;
        accesses.push_back(a);
    }
    return accesses;
}

MutantPolicy::MutantPolicy(
    std::unique_ptr<cache::ReplacementPolicy> inner,
    unsigned period)
    : inner_(std::move(inner)), period_(period)
{
    util::ensure(inner_ != nullptr, "MutantPolicy: null inner");
    util::ensure(period_ >= 1, "MutantPolicy: period must be >= 1");
}

void
MutantPolicy::bind(const cache::CacheGeometry &geom)
{
    ways_ = geom.ways;
    calls_ = 0;
    inner_->bind(geom);
}

uint32_t
MutantPolicy::findVictim(const cache::AccessContext &ctx,
                         std::span<const cache::BlockView> blocks)
{
    uint32_t victim = inner_->findVictim(ctx, blocks);
    ++calls_;
    if (calls_ % period_ == 0 && victim != kBypass)
        victim = (victim + 1) % ways_;
    return victim;
}

void
MutantPolicy::reset(const cache::CacheGeometry &geom)
{
    // Forward to the inner policy's reset (which may re-seed
    // RNGs); rebinding locally would silently skip that.
    ways_ = geom.ways;
    calls_ = 0;
    inner_->reset(geom);
}

void
MutantPolicy::onAccess(const cache::AccessContext &ctx)
{
    inner_->onAccess(ctx);
}

void
MutantPolicy::onEviction(uint32_t set, uint32_t way,
                         const cache::BlockView &block)
{
    inner_->onEviction(set, way, block);
}

std::string
MutantPolicy::name() const
{
    return "mutant(" + inner_->name() + ")";
}

cache::StorageOverhead
MutantPolicy::overhead() const
{
    return inner_->overhead();
}

std::optional<Mismatch>
replayCompare(const DiffSpec &spec,
              const std::vector<trace::LlcAccess> &accesses,
              unsigned mutate_period)
{
    NullMemory next;
    std::unique_ptr<cache::ReplacementPolicy> policy =
        makeProductionPolicy(spec);
    if (mutate_period > 0) {
        policy = std::make_unique<MutantPolicy>(std::move(policy),
                                                mutate_period);
    }
    cache::Cache prod(specGeometry(spec), std::move(policy),
                      &next);
    prod.setVerifyInvariants(true);
    RefCache ref(spec.sets, spec.ways, makeReferencePolicy(spec));

    for (size_t i = 0; i < accesses.size(); ++i) {
        if (spec.flush_period > 0 && i > 0 &&
            i % spec.flush_period == 0) {
            prod.flush();
            ref.flush();
        }
        const trace::LlcAccess &a = accesses[i];
        const uint64_t line =
            cache::CacheGeometry::lineAddress(a.address);
        const bool prod_hit = prod.probe(a.address);

        cache::MemRequest req;
        req.address = a.address;
        req.pc = a.pc;
        req.type = a.type;
        req.cpu = a.cpu;
        try {
            prod.access(req, i);
        } catch (const std::exception &e) {
            return Mismatch{
                i, util::format("invariant violation on {}: {}",
                                formatAccess(i, a), e.what())};
        }

        RefAccess ra;
        ra.line = line;
        ra.pc = a.pc;
        ra.type = a.type;
        ra.cpu = a.cpu;
        ra.seq = i;
        const RefOutcome out = ref.access(ra);

        if (prod_hit != out.hit) {
            return Mismatch{
                i,
                util::format("hit/miss divergence on {}: "
                             "production={} reference={}",
                             formatAccess(i, a),
                             prod_hit ? "hit" : "miss",
                             out.hit ? "hit" : "miss")};
        }

        const uint32_t set = ref.setIndex(line);
        const auto prod_lines =
            viewsToRefLines(prod.setContents(set));
        const auto &ref_lines = ref.setLines(set);
        for (uint32_t w = 0; w < spec.ways; ++w) {
            if (prod_lines[w].valid == ref_lines[w].valid &&
                (!prod_lines[w].valid ||
                 prod_lines[w].line == ref_lines[w].line)) {
                continue;
            }
            return Mismatch{
                i, util::format(
                       "victim/content divergence on {} (set {} "
                       "way {}): production={} reference={}",
                       formatAccess(i, a), set, w,
                       formatSet(prod_lines),
                       formatSet(ref_lines))};
        }
    }
    return std::nullopt;
}

std::vector<trace::LlcAccess>
shrinkTrace(const DiffSpec &spec,
            std::vector<trace::LlcAccess> accesses,
            unsigned mutate_period)
{
    auto mismatches = [&](const std::vector<trace::LlcAccess> &t) {
        return replayCompare(spec, t, mutate_period).has_value();
    };
    const auto first = replayCompare(spec, accesses, mutate_period);
    if (!first)
        return accesses; // nothing to shrink
    // Everything after the first divergence is irrelevant.
    accesses.resize(first->step + 1);

    // ddmin-style chunk removal: drop ever-smaller windows while
    // the divergence (any divergence) persists.
    for (size_t chunk = std::max<size_t>(1, accesses.size() / 2);;
         chunk /= 2) {
        bool removed = true;
        while (removed) {
            removed = false;
            for (size_t i = 0; i + chunk <= accesses.size();) {
                std::vector<trace::LlcAccess> candidate;
                candidate.reserve(accesses.size() - chunk);
                candidate.insert(candidate.end(),
                                 accesses.begin(),
                                 accesses.begin() +
                                     static_cast<long>(i));
                candidate.insert(candidate.end(),
                                 accesses.begin() +
                                     static_cast<long>(i + chunk),
                                 accesses.end());
                if (!candidate.empty() && mismatches(candidate)) {
                    accesses = std::move(candidate);
                    removed = true;
                } else {
                    i += chunk;
                }
            }
        }
        if (chunk == 1)
            break;
    }

    // Re-truncate: the shrunk trace need not run past its own
    // first divergence.
    const auto last = replayCompare(spec, accesses, mutate_period);
    if (last)
        accesses.resize(last->step + 1);
    return accesses;
}

DiffResult
runDifferential(const DiffSpec &spec, unsigned mutate_period)
{
    DiffResult result;
    result.spec = spec;
    const auto trace = makeFuzzTrace(spec);
    const auto mismatch =
        replayCompare(spec, trace, mutate_period);
    if (!mismatch)
        return result;

    result.ok = false;
    result.mismatch = *mismatch;
    result.shrunk = shrinkTrace(spec, trace, mutate_period);

    std::string repro = "=== differential mismatch ===\n";
    repro += "spec: " + spec.describe() + "\n";
    if (mutate_period > 0)
        repro += util::format("mutation: every {} victim(s)\n",
                              mutate_period);
    repro += util::format("first divergence at step {}: {}\n",
                          mismatch->step, mismatch->detail);
    repro += util::format("shrunk reproducer ({} accesses):\n",
                          result.shrunk.size());
    for (size_t i = 0; i < result.shrunk.size(); ++i)
        repro += "  " + formatAccess(i, result.shrunk[i]) + "\n";
    repro += util::format(
        "replay: fuzz_policies --policies={} --seed={} "
        "--accesses={}\n",
        spec.policy, spec.seed, spec.accesses);
    result.repro = std::move(repro);
    return result;
}

std::string
dispatchEquivalenceError(const DiffSpec &spec)
{
    const auto accesses = makeFuzzTrace(spec);

    // spec.policy is resolved through the factory (not
    // makeProductionPolicy) so the oracle covers the whole zoo,
    // including policies with no reference model that always take
    // the Generic path (SHiP++, Hawkeye, ...).
    NullMemory typed_mem;
    NullMemory generic_mem;
    cache::Cache typed(specGeometry(spec),
                       core::makePolicy(spec.policy, spec.seed),
                       &typed_mem);
    cache::Cache generic(specGeometry(spec),
                         core::makePolicy(spec.policy, spec.seed),
                         &generic_mem);
    generic.setForceGenericDispatch(true);
    if (std::string(generic.dispatchKind()) != "generic") {
        return util::format(
            "{}: forced-generic cache reports dispatch '{}'",
            spec.policy, generic.dispatchKind());
    }

    for (size_t i = 0; i < accesses.size(); ++i) {
        if (spec.flush_period > 0 && i > 0 &&
            i % spec.flush_period == 0) {
            typed.flush();
            generic.flush();
        }
        const trace::LlcAccess &a = accesses[i];
        cache::MemRequest req;
        req.address = a.address;
        req.pc = a.pc;
        req.type = a.type;
        req.cpu = a.cpu;
        const uint64_t t_typed = typed.access(req, i);
        const uint64_t t_generic = generic.access(req, i);
        if (t_typed != t_generic) {
            return util::format(
                "{}: completion-time divergence on {}: typed={} "
                "generic={}",
                spec.policy, formatAccess(i, a), t_typed,
                t_generic);
        }

        const uint64_t line =
            cache::CacheGeometry::lineAddress(a.address);
        const uint32_t set = static_cast<uint32_t>(
            (line >> cache::kLineBits) % spec.sets);
        const auto typed_lines =
            viewsToRefLines(typed.setContents(set));
        const auto generic_lines =
            viewsToRefLines(generic.setContents(set));
        for (uint32_t w = 0; w < spec.ways; ++w) {
            if (typed_lines[w].valid == generic_lines[w].valid &&
                (!typed_lines[w].valid ||
                 typed_lines[w].line == generic_lines[w].line)) {
                continue;
            }
            return util::format(
                "{}: content divergence on {} (set {} way {}): "
                "typed={} generic={}",
                spec.policy, formatAccess(i, a), set, w,
                formatSet(typed_lines), formatSet(generic_lines));
        }
    }

    const auto typed_stats = typed.statSet().items();
    const auto generic_stats = generic.statSet().items();
    if (typed_stats != generic_stats) {
        std::string diff;
        for (const auto &[name, value] : typed_stats) {
            const uint64_t other =
                generic.statSet().value(name);
            if (value != other) {
                diff += util::format(" {}: typed={} generic={}",
                                     name, value, other);
            }
        }
        return util::format("{}: final stats diverge:{}",
                            spec.policy,
                            diff.empty() ? " (key sets differ)"
                                         : diff.c_str());
    }
    return "";
}

std::string
beladyBoundError(const DiffSpec &spec)
{
    // Load-only variant of the spec's trace (Belady MIN optimality
    // is a demand-fetch statement; WB write-allocate and bypassed
    // prefetches would muddy the bound).
    auto accesses = makeFuzzTrace(spec);
    // The brute-force oracle is O(n^2); keep the bound check on a
    // prefix so fuzz cells stay fast.
    if (accesses.size() > 800)
        accesses.resize(800);
    std::vector<uint64_t> lines;
    lines.reserve(accesses.size());
    for (auto &a : accesses) {
        a.type = trace::AccessType::Load;
        a.pc = 0x400;
        lines.push_back(
            cache::CacheGeometry::lineAddress(a.address));
    }

    NullMemory next;
    cache::Cache prod(specGeometry(spec),
                      makeProductionPolicy(spec), &next);
    prod.setVerifyInvariants(true);
    uint64_t prod_hits = 0;
    for (size_t i = 0; i < accesses.size(); ++i) {
        if (prod.probe(accesses[i].address))
            ++prod_hits;
        cache::MemRequest req;
        req.address = accesses[i].address;
        req.pc = accesses[i].pc;
        req.type = accesses[i].type;
        prod.access(req, i);
    }

    RefCache belady(spec.sets, spec.ways,
                    std::make_unique<RefBelady>(
                        lines, /*allow_bypass=*/true));
    for (size_t i = 0; i < lines.size(); ++i) {
        RefAccess ra;
        ra.line = lines[i];
        ra.pc = 0x400;
        ra.type = trace::AccessType::Load;
        ra.seq = i;
        belady.access(ra);
    }

    if (prod_hits <= belady.hits())
        return "";
    return util::format(
        "Belady bound violated: {} scored {} hits > optimal {} "
        "({} accesses; spec: {})",
        spec.policy, prod_hits, belady.hits(), accesses.size(),
        spec.describe());
}

} // namespace rlr::verify
