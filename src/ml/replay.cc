#include "ml/replay.hh"

#include "util/logging.hh"

namespace rlr::ml
{

ReplayMemory::ReplayMemory(size_t capacity) : capacity_(capacity)
{
    util::ensure(capacity_ > 0, "ReplayMemory: zero capacity");
    entries_.reserve(capacity_);
}

void
ReplayMemory::push(Transition transition)
{
    if (entries_.size() < capacity_) {
        entries_.push_back(std::move(transition));
    } else {
        entries_[next_] = std::move(transition);
    }
    next_ = (next_ + 1) % capacity_;
}

const Transition &
ReplayMemory::sample(util::Rng &rng) const
{
    util::ensure(!entries_.empty(), "ReplayMemory: empty sample");
    return entries_[rng.nextBounded(entries_.size())];
}

} // namespace rlr::ml
