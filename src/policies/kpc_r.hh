/**
 * @file
 * KPC-R replacement (Kim et al., "Kill the Program Counter",
 * 2017): an RRIP-based, PC-free policy that uses two global
 * counters to track which insertion position (RRPV max vs max-1)
 * is paying off in the current program phase and steers follower
 * sets accordingly. Prefetch hits are not fully promoted, so
 * non-reused prefetched lines age out (the behaviour the paper
 * contrasts with RLR's explicit type priority).
 */

#ifndef RLR_POLICIES_KPC_R_HH
#define RLR_POLICIES_KPC_R_HH

#include "policies/rrip.hh"

namespace rlr::policies
{

/** KPC-R: phase-adaptive RRIP insertion without PC. */
class KpcRPolicy : public RripBase
{
  public:
    explicit KpcRPolicy(unsigned rrpv_bits = 2,
                        uint32_t leader_sets = 32);

    void bind(const cache::CacheGeometry &geom) override;
    void onAccess(const cache::AccessContext &ctx) override;
    std::string name() const override { return "KPC-R"; }
    cache::StorageOverhead overhead() const override;

    /** @return true when followers insert at distant RRPV. */
    bool distantSelected() const;

  protected:
    uint8_t insertionRrpv(const cache::AccessContext &ctx) override;

  private:
    enum class SetRole { DistantLeader, LongLeader, Follower };
    SetRole setRole(uint32_t set) const;

    uint32_t leader_sets_;
    /** Global hit counters for the two leader groups. */
    util::SatCounter hits_distant_{10};
    util::SatCounter hits_long_{10};
    uint64_t accesses_ = 0;
    bool use_distant_ = false;
};

} // namespace rlr::policies

#endif // RLR_POLICIES_KPC_R_HH
