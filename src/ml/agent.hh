/**
 * @file
 * The RL agent of Section III-A: an epsilon-greedy DQN over the
 * per-way Q-values produced by the MLP, trained by experience
 * replay against the Belady-based reward.
 */

#ifndef RLR_ML_AGENT_HH
#define RLR_ML_AGENT_HH

#include <memory>

#include "ml/mlp.hh"
#include "ml/replay.hh"
#include "util/rng.hh"

namespace rlr::ml
{

/** Agent hyperparameters (defaults = the paper's). */
struct AgentConfig
{
    MlpConfig mlp{};
    /** Exploration rate (the paper found 0.1 best). */
    double epsilon = 0.1;
    size_t replay_capacity = 8192;
    /** Minibatch size per training step. */
    size_t batch_size = 16;
    /** Decisions between training steps (1 = every decision). */
    unsigned train_interval = 8;
    uint64_t seed = 1234;
};

/** Epsilon-greedy DQN agent for victim selection. */
class DqnAgent
{
  public:
    explicit DqnAgent(AgentConfig config);

    /**
     * Choose a victim way for @p state (epsilon-greedy while
     * training; set epsilon to 0 for evaluation).
     */
    uint32_t act(const std::vector<float> &state);

    /** Greedy action (no exploration). */
    uint32_t actGreedy(const std::vector<float> &state) const;

    /** Store a transition and train on schedule. */
    void observe(Transition transition);

    /** One minibatch update from replay memory. */
    void trainStep();

    /** Exploration control. */
    void setEpsilon(double epsilon) { epsilon_ = epsilon; }
    double epsilon() const { return epsilon_; }

    const Mlp &network() const { return *mlp_; }
    size_t decisions() const { return decisions_; }
    /** Running mean TD loss (exponential average, diagnostics). */
    double avgLoss() const { return avg_loss_; }

    const AgentConfig &config() const { return config_; }

  private:
    AgentConfig config_;
    std::unique_ptr<Mlp> mlp_;
    ReplayMemory replay_;
    util::Rng rng_;
    double epsilon_;
    size_t decisions_ = 0;
    double avg_loss_ = 0.0;
};

} // namespace rlr::ml

#endif // RLR_ML_AGENT_HH
