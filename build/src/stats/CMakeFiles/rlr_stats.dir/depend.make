# Empty dependencies file for rlr_stats.
# This may be replaced when dependencies are built.
