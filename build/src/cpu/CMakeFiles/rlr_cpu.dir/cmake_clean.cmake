file(REMOVE_RECURSE
  "CMakeFiles/rlr_cpu.dir/branch_predictor.cc.o"
  "CMakeFiles/rlr_cpu.dir/branch_predictor.cc.o.d"
  "CMakeFiles/rlr_cpu.dir/core.cc.o"
  "CMakeFiles/rlr_cpu.dir/core.cc.o.d"
  "librlr_cpu.a"
  "librlr_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlr_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
