#include "obs/heartbeat.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/resource.hh"
#include "stats/export.hh"
#include "util/atomic_file.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace rlr::obs
{

std::string
heartbeatToJson(const Heartbeat &hb)
{
    std::string out = "{\n";
    out += "  \"format\": \"rlr-heartbeat\",\n";
    out += util::format("  \"sequence\": {},\n", hb.sequence);
    out += util::format("  \"elapsed_s\": {:.3f},\n",
                        hb.elapsed_s);
    out += util::format("  \"cells_total\": {},\n",
                        hb.cells_total);
    out += util::format("  \"cells_done\": {},\n", hb.cells_done);
    out += util::format("  \"cells_failed\": {},\n",
                        hb.cells_failed);
    out += util::format("  \"cells_resumed\": {},\n",
                        hb.cells_resumed);
    out += util::format("  \"cells_running\": {},\n",
                        hb.cells_running);
    out += util::format("  \"throughput\": {:.4f},\n",
                        hb.throughput);
    out += util::format("  \"eta_s\": {:.1f},\n", hb.eta_s);
    out += util::format("  \"rss_kb\": {},\n", hb.rss_kb);
    out += util::format("  \"max_rss_kb\": {},\n", hb.max_rss_kb);
    out += util::format("  \"done\": {},\n",
                        hb.done ? "true" : "false");
    out += "  \"workers\": [";
    for (size_t i = 0; i < hb.workers.size(); ++i) {
        const HeartbeatWorker &w = hb.workers[i];
        out += i == 0 ? "\n" : ",\n";
        out += util::format(
            "    {{\"worker\": {}, \"cell\": \"{}\", "
            "\"attempt\": {}, \"age_s\": {:.3f}}}",
            w.worker, stats::json::escape(w.cell), w.attempt,
            w.age_s);
    }
    if (!hb.workers.empty())
        out += "\n  ";
    out += "],\n";
    out += "  \"eor\": 1\n";
    out += "}\n";
    return out;
}

Heartbeat
heartbeatFromJson(const std::string &text)
{
    const auto root = stats::json::parse(text);
    if (!root.isObject() ||
        root.stringOr("format", "") != "rlr-heartbeat") {
        throw std::runtime_error(
            "not a heartbeat file (missing "
            "\"format\": \"rlr-heartbeat\")");
    }
    if (root.numberOr("eor", 0) != 1) {
        throw std::runtime_error(
            "truncated heartbeat (missing eor marker)");
    }
    Heartbeat hb;
    hb.sequence =
        static_cast<uint64_t>(root.numberOr("sequence", 0));
    hb.elapsed_s = root.numberOr("elapsed_s", 0);
    hb.cells_total =
        static_cast<uint64_t>(root.numberOr("cells_total", 0));
    hb.cells_done =
        static_cast<uint64_t>(root.numberOr("cells_done", 0));
    hb.cells_failed =
        static_cast<uint64_t>(root.numberOr("cells_failed", 0));
    hb.cells_resumed =
        static_cast<uint64_t>(root.numberOr("cells_resumed", 0));
    hb.cells_running =
        static_cast<uint64_t>(root.numberOr("cells_running", 0));
    hb.throughput = root.numberOr("throughput", 0);
    hb.eta_s = root.numberOr("eta_s", 0);
    hb.rss_kb = static_cast<uint64_t>(root.numberOr("rss_kb", 0));
    hb.max_rss_kb =
        static_cast<uint64_t>(root.numberOr("max_rss_kb", 0));
    if (const auto *done = root.find("done");
        done != nullptr &&
        done->kind == stats::json::Value::Kind::Bool) {
        hb.done = done->boolean;
    }
    if (const auto *workers = root.find("workers");
        workers != nullptr && workers->isArray()) {
        for (const auto &wv : workers->array) {
            HeartbeatWorker w;
            w.worker = static_cast<uint32_t>(
                wv.numberOr("worker", 0));
            w.cell = wv.stringOr("cell", "");
            w.attempt = static_cast<uint32_t>(
                wv.numberOr("attempt", 0));
            w.age_s = wv.numberOr("age_s", 0);
            hb.workers.push_back(std::move(w));
        }
    }
    return hb;
}

struct HeartbeatWriter::Impl
{
    struct WorkerSlot
    {
        uint32_t index = 0;
        std::string cell;
        uint32_t attempt = 0;
        std::chrono::steady_clock::time_point since{};
    };

    std::string path;
    double period_s;
    uint64_t cells_total;
    uint64_t cells_resumed;
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();

    mutable std::mutex mutex;
    std::condition_variable cv;
    bool stop = false;
    uint64_t sequence = 0;
    uint64_t done = 0;
    uint64_t failed = 0;
    /** Worker slots keyed by OS thread id, indices first-seen. */
    std::map<std::thread::id, WorkerSlot> workers;

    std::thread writer;

    Heartbeat
    build()
    {
        // Caller holds `mutex`.
        const auto now = std::chrono::steady_clock::now();
        Heartbeat hb;
        hb.sequence = ++sequence;
        hb.elapsed_s =
            std::chrono::duration<double>(now - start).count();
        hb.cells_total = cells_total;
        hb.cells_done = done;
        hb.cells_failed = failed;
        hb.cells_resumed = cells_resumed;
        const ResourceSample res =
            ResourceSample::now(ResourceSample::Scope::Process);
        hb.rss_kb = currentRssKb();
        hb.max_rss_kb = res.max_rss_kb;
        for (const auto &[tid, slot] : workers) {
            if (slot.cell.empty())
                continue;
            ++hb.cells_running;
            HeartbeatWorker w;
            w.worker = slot.index;
            w.cell = slot.cell;
            w.attempt = slot.attempt;
            w.age_s = std::chrono::duration<double>(
                          now - slot.since)
                          .count();
            hb.workers.push_back(std::move(w));
        }
        std::sort(hb.workers.begin(), hb.workers.end(),
                  [](const HeartbeatWorker &a,
                     const HeartbeatWorker &b) {
                      return a.worker < b.worker;
                  });
        if (hb.elapsed_s > 0 && done > 0) {
            hb.throughput =
                static_cast<double>(done) / hb.elapsed_s;
            // Resumed cells were never run here; only fresh cells
            // inform the rate, so exclude both from the backlog.
            const uint64_t settled = done + cells_resumed;
            const uint64_t left = cells_total > settled
                                      ? cells_total - settled
                                      : 0;
            hb.eta_s =
                static_cast<double>(left) / hb.throughput;
        }
        return hb;
    }

    void
    write(const Heartbeat &hb)
    {
        try {
            util::atomicWriteFile(path, heartbeatToJson(hb));
        } catch (const std::exception &e) {
            // A dead heartbeat must never kill the sweep.
            util::warn("heartbeat write failed: {}", e.what());
        }
    }

    void
    loop()
    {
        std::unique_lock lock(mutex);
        while (!stop) {
            Heartbeat hb = build();
            lock.unlock();
            write(hb);
            lock.lock();
            cv.wait_for(lock,
                        std::chrono::duration<double>(period_s),
                        [this] { return stop; });
        }
    }
};

HeartbeatWriter::HeartbeatWriter(std::string path,
                                 double period_s,
                                 uint64_t cells_total,
                                 uint64_t cells_resumed)
    : impl_(std::make_unique<Impl>())
{
    impl_->path = std::move(path);
    impl_->period_s = period_s > 0.01 ? period_s : 0.01;
    impl_->cells_total = cells_total;
    impl_->cells_resumed = cells_resumed;
    impl_->writer = std::thread([this] { impl_->loop(); });
}

HeartbeatWriter::~HeartbeatWriter()
{
    finish();
}

void
HeartbeatWriter::cellStarted(const std::string &cell,
                             uint32_t attempt)
{
    std::scoped_lock lock(impl_->mutex);
    auto [it, inserted] = impl_->workers.try_emplace(
        std::this_thread::get_id());
    if (inserted) {
        it->second.index = static_cast<uint32_t>(
            impl_->workers.size() - 1);
    }
    it->second.cell = cell;
    it->second.attempt = attempt;
    it->second.since = std::chrono::steady_clock::now();
}

void
HeartbeatWriter::cellFinished(bool ok)
{
    std::scoped_lock lock(impl_->mutex);
    auto it = impl_->workers.find(std::this_thread::get_id());
    if (it != impl_->workers.end())
        it->second.cell.clear();
    ++impl_->done;
    if (!ok)
        ++impl_->failed;
}

void
HeartbeatWriter::finish()
{
    {
        std::scoped_lock lock(impl_->mutex);
        if (impl_->stop)
            return;
        impl_->stop = true;
    }
    impl_->cv.notify_all();
    if (impl_->writer.joinable())
        impl_->writer.join();
    Heartbeat hb;
    {
        std::scoped_lock lock(impl_->mutex);
        hb = impl_->build();
    }
    hb.done = true;
    impl_->write(hb);
}

Heartbeat
HeartbeatWriter::snapshot() const
{
    std::scoped_lock lock(impl_->mutex);
    return impl_->build();
}

} // namespace rlr::obs
