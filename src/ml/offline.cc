#include "ml/offline.hh"

#include <algorithm>
#include <cmath>

#include "cache/geometry.hh"
#include "stats/stats.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace rlr::ml
{

double
OfflineStats::hitRate() const
{
    return stats::hitRate(hits, accesses);
}

double
OfflineStats::demandHitRate() const
{
    return stats::hitRate(demand_hits, demand_accesses);
}

double
FeatureStats::avgVictimAge(trace::AccessType type) const
{
    const auto t = static_cast<size_t>(type);
    return victim_count[t] == 0
               ? 0.0
               : static_cast<double>(victim_age_sum[t]) /
                     static_cast<double>(victim_count[t]);
}

OfflineSimulator::OfflineSimulator(OfflineConfig config,
                                   const trace::LlcTrace *trace)
    : config_(config), trace_(trace), ways_(config.ways),
      num_sets_(static_cast<uint32_t>(
          config.size_bytes / (cache::kLineBytes * config.ways))),
      extractor_(ways_, num_sets_),
      oracle_(std::make_shared<policies::BeladyOracle>(*trace))
{
    util::ensure(trace_ != nullptr, "OfflineSimulator: null trace");
    util::ensure(util::isPowerOfTwo(num_sets_),
                 "OfflineSimulator: non power-of-two sets");
    resetState();
}

std::shared_ptr<const policies::BeladyOracle>
OfflineSimulator::oracle() const
{
    return oracle_;
}

void
OfflineSimulator::resetState()
{
    lines_.assign(static_cast<size_t>(num_sets_) * ways_,
                  LineFeatures{});
    sets_.assign(num_sets_, SetFeatures{});
    last_use_.assign(static_cast<size_t>(num_sets_) * ways_, 0);
    clock_ = 0;
    history_.clear();
    fstats_ = FeatureStats{};
    fstats_.victim_recency.assign(ways_, 0);
}

uint32_t
OfflineSimulator::setIndex(uint64_t address) const
{
    return static_cast<uint32_t>(
        (address >> cache::kLineBits) & (num_sets_ - 1));
}

void
OfflineSimulator::refreshRecency(uint32_t set)
{
    const size_t base = static_cast<size_t>(set) * ways_;
    for (uint32_t w = 0; w < ways_; ++w) {
        uint32_t rank = 0;
        for (uint32_t o = 0; o < ways_; ++o) {
            if (o != w && last_use_[base + o] < last_use_[base + w])
                ++rank;
        }
        lines_[base + w].recency = rank;
    }
}

void
OfflineSimulator::touchLine(uint32_t set, uint32_t way,
                            const trace::LlcAccess &access, bool hit)
{
    const size_t idx = static_cast<size_t>(set) * ways_ + way;
    LineFeatures &lf = lines_[idx];
    if (hit) {
        lf.preuse = lf.age_last;
        lf.age_last = 0;
        ++lf.hits;
    } else {
        lf = LineFeatures{};
        lf.valid = true;
        lf.address = cache::CacheGeometry::lineAddress(
            access.address);
    }
    lf.last_type = access.type;
    ++lf.type_counts[static_cast<size_t>(access.type)];
    if (access.type == trace::AccessType::Rfo ||
        access.type == trace::AccessType::Writeback)
        lf.dirty = true;
    last_use_[idx] = ++clock_;
}

void
OfflineSimulator::recordVictim(uint32_t set, uint32_t way)
{
    const size_t idx = static_cast<size_t>(set) * ways_ + way;
    const LineFeatures &lf = lines_[idx];
    if (!lf.valid)
        return;
    ++fstats_.victim_count[static_cast<size_t>(lf.last_type)];
    fstats_.victim_age_sum[static_cast<size_t>(lf.last_type)] +=
        lf.age_last;
    if (lf.hits == 0)
        ++fstats_.victims_zero_hits;
    else if (lf.hits == 1)
        ++fstats_.victims_one_hit;
    else
        ++fstats_.victims_multi_hits;
    ++fstats_.victim_recency[std::min(lf.recency, ways_ - 1)];
}

float
OfflineSimulator::reward(uint32_t set, uint32_t victim_way,
                         uint64_t insert_addr, uint64_t seq) const
{
    const size_t base = static_cast<size_t>(set) * ways_;
    const uint64_t victim_next =
        oracle_->nextUse(lines_[base + victim_way].address, seq);

    uint64_t farthest = 0;
    for (uint32_t w = 0; w < ways_; ++w) {
        const uint64_t next =
            oracle_->nextUse(lines_[base + w].address, seq);
        farthest = std::max(farthest, next);
        if (next == policies::BeladyOracle::kNever) {
            farthest = policies::BeladyOracle::kNever;
            break;
        }
    }

    if (victim_next == farthest)
        return 1.0f; // the Belady-optimal eviction
    const uint64_t insert_next = oracle_->nextUse(
        cache::CacheGeometry::lineAddress(insert_addr), seq);
    if (victim_next < insert_next)
        return -1.0f; // evicted a line that would hit sooner
    return 0.0f;
}

OfflineStats
OfflineSimulator::runPolicy(cache::ReplacementPolicy &policy,
                            bool warm_pass)
{
    resetState();
    cache::CacheGeometry geom;
    geom.name = "offline";
    geom.size_bytes = config_.size_bytes;
    geom.ways = ways_;
    policy.bind(geom);
    if (warm_pass) {
        replayPolicy(policy);
        fstats_ = FeatureStats{};
        fstats_.victim_recency.assign(ways_, 0);
    }
    return replayPolicy(policy);
}

OfflineStats
OfflineSimulator::replayPolicy(cache::ReplacementPolicy &policy)
{
    auto *belady = dynamic_cast<policies::BeladyPolicy *>(&policy);

    OfflineStats stats;
    for (uint64_t seq = 0; seq < trace_->size(); ++seq) {
        const trace::LlcAccess &access = (*trace_)[seq];
        const uint64_t line_addr =
            cache::CacheGeometry::lineAddress(access.address);
        const uint32_t set = setIndex(access.address);
        const size_t base = static_cast<size_t>(set) * ways_;

        if (belady)
            belady->setPosition(seq);

        // Bookkeeping shared with the agent path.
        SetFeatures &sf = sets_[set];
        ++sf.accesses;
        for (uint32_t w = 0; w < ways_; ++w) {
            LineFeatures &lf = lines_[base + w];
            if (lf.valid) {
                ++lf.age_insert;
                ++lf.age_last;
            }
        }
        auto &hist = history_[line_addr];
        const uint32_t preuse = sf.accesses -
                                hist.last_set_accesses;
        if (hist.seen) {
            if (hist.has_prev) {
                const uint32_t diff =
                    hist.prev_interval > preuse
                        ? hist.prev_interval - preuse
                        : preuse - hist.prev_interval;
                if (diff < 10)
                    ++fstats_.preuse_reuse_lt10;
                else if (diff <= 50)
                    ++fstats_.preuse_reuse_10to50;
                else
                    ++fstats_.preuse_reuse_gt50;
            }
            hist.prev_interval = preuse;
            hist.has_prev = true;
        }
        hist.last_set_accesses = sf.accesses;
        hist.seen = true;

        ++stats.accesses;
        const bool demand = trace::isDemand(access.type);
        if (demand)
            ++stats.demand_accesses;

        // Lookup.
        uint32_t way = ways_;
        for (uint32_t w = 0; w < ways_; ++w) {
            if (lines_[base + w].valid &&
                lines_[base + w].address == line_addr) {
                way = w;
                break;
            }
        }

        cache::AccessContext ctx;
        ctx.cpu = access.cpu;
        ctx.set = set;
        ctx.full_addr = access.address;
        ctx.pc = access.pc;
        ctx.type = access.type;

        if (way != ways_) {
            ++stats.hits;
            if (demand)
                ++stats.demand_hits;
            sf.accesses_since_miss += 1;
            touchLine(set, way, access, true);
            ctx.way = way;
            ctx.hit = true;
            policy.onAccess(ctx);
            continue;
        }

        ++stats.misses;
        sf.accesses_since_miss = 0;

        // Fill an invalid way if available.
        uint32_t victim = ways_;
        for (uint32_t w = 0; w < ways_; ++w) {
            if (!lines_[base + w].valid) {
                victim = w;
                ++stats.compulsory_misses;
                break;
            }
        }
        if (victim == ways_) {
            std::vector<cache::BlockView> views(ways_);
            for (uint32_t w = 0; w < ways_; ++w) {
                const LineFeatures &lf = lines_[base + w];
                views[w] = cache::BlockView{lf.valid, lf.dirty,
                                            false, lf.address};
            }
            ctx.hit = false;
            victim = policy.findVictim(ctx, views);
            if (victim == cache::ReplacementPolicy::kBypass &&
                access.type != trace::AccessType::Writeback) {
                ++stats.bypasses;
                continue;
            }
            if (victim >= ways_)
                victim = 0;
            refreshRecency(set);
            recordVictim(set, victim);
            policy.onEviction(set, victim,
                              cache::BlockView{
                                  true,
                                  lines_[base + victim].dirty,
                                  false,
                                  lines_[base + victim].address});
            ++stats.evictions;
        }
        touchLine(set, victim, access, false);
        ctx.way = victim;
        ctx.hit = false;
        policy.onAccess(ctx);
    }
    return stats;
}

OfflineStats
OfflineSimulator::runAgent(DqnAgent &agent, bool train,
                           bool warm_pass)
{
    resetState();
    if (warm_pass) {
        replayAgent(agent, false);
        fstats_ = FeatureStats{};
        fstats_.victim_recency.assign(ways_, 0);
    }
    return replayAgent(agent, train);
}

OfflineStats
OfflineSimulator::replayAgent(DqnAgent &agent, bool train)
{
    OfflineStats stats;
    const double saved_epsilon = agent.epsilon();
    if (!train)
        agent.setEpsilon(0.0);

    for (uint64_t seq = 0; seq < trace_->size(); ++seq) {
        const trace::LlcAccess &access = (*trace_)[seq];
        const uint64_t line_addr =
            cache::CacheGeometry::lineAddress(access.address);
        const uint32_t set = setIndex(access.address);
        const size_t base = static_cast<size_t>(set) * ways_;

        SetFeatures &sf = sets_[set];
        ++sf.accesses;
        for (uint32_t w = 0; w < ways_; ++w) {
            LineFeatures &lf = lines_[base + w];
            if (lf.valid) {
                ++lf.age_insert;
                ++lf.age_last;
            }
        }
        auto &hist = history_[line_addr];
        const uint32_t preuse = sf.accesses -
                                hist.last_set_accesses;
        if (hist.seen) {
            if (hist.has_prev) {
                const uint32_t diff =
                    hist.prev_interval > preuse
                        ? hist.prev_interval - preuse
                        : preuse - hist.prev_interval;
                if (diff < 10)
                    ++fstats_.preuse_reuse_lt10;
                else if (diff <= 50)
                    ++fstats_.preuse_reuse_10to50;
                else
                    ++fstats_.preuse_reuse_gt50;
            }
            hist.prev_interval = preuse;
            hist.has_prev = true;
        }
        const uint32_t access_preuse =
            hist.seen ? preuse : 0;
        hist.last_set_accesses = sf.accesses;
        hist.seen = true;

        ++stats.accesses;
        const bool demand = trace::isDemand(access.type);
        if (demand)
            ++stats.demand_accesses;

        uint32_t way = ways_;
        for (uint32_t w = 0; w < ways_; ++w) {
            if (lines_[base + w].valid &&
                lines_[base + w].address == line_addr) {
                way = w;
                break;
            }
        }

        if (way != ways_) {
            ++stats.hits;
            if (demand)
                ++stats.demand_hits;
            sf.accesses_since_miss += 1;
            touchLine(set, way, access, true);
            continue;
        }

        ++stats.misses;
        sf.accesses_since_miss = 0;

        uint32_t victim = ways_;
        for (uint32_t w = 0; w < ways_; ++w) {
            if (!lines_[base + w].valid) {
                victim = w;
                ++stats.compulsory_misses;
                break;
            }
        }
        if (victim == ways_) {
            // Agent decision.
            refreshRecency(set);
            AccessFeatures af;
            af.address = access.address;
            af.preuse = access_preuse;
            af.type = access.type;
            af.set = set;
            std::vector<LineFeatures> set_lines(
                lines_.begin() + static_cast<long>(base),
                lines_.begin() + static_cast<long>(base + ways_));
            auto state =
                extractor_.extract(af, sf, set_lines);
            victim = agent.act(state) % ways_;
            if (train) {
                const float r =
                    reward(set, victim, access.address, seq);
                stats.total_reward += r;
                agent.observe(
                    Transition{std::move(state), victim, r});
            }
            recordVictim(set, victim);
            ++stats.evictions;
        }
        touchLine(set, victim, access, false);
    }

    agent.setEpsilon(saved_epsilon);
    return stats;
}

} // namespace rlr::ml
