#include "prefetch/kpc_p.hh"

#include "util/bits.hh"

namespace rlr::prefetch
{

namespace
{

/** 4KB pages group the delta streams. */
constexpr unsigned kPageBits = 12;

} // namespace

KpcPPrefetcher::KpcPPrefetcher(KpcPConfig config) : config_(config) {}

void
KpcPPrefetcher::bind(const cache::CacheGeometry &geom)
{
    (void)geom;
    table_.assign(config_.table_entries, Entry{});
    for (auto &e : table_)
        e.confidence = util::SatCounter(config_.confidence_bits);
}

void
KpcPPrefetcher::observe(uint64_t pc, uint64_t address, bool hit,
                        std::vector<cache::PrefetchRequest> &out)
{
    (void)pc;
    (void)hit;
    if (table_.empty())
        return;

    const uint64_t line = address >> cache::kLineBits;
    const uint64_t page = address >> kPageBits;
    const size_t idx =
        util::foldXor(page, util::ceilLog2(table_.size())) %
        table_.size();
    Entry &e = table_[idx];

    if (!e.valid || e.page_tag != page) {
        e.valid = true;
        e.page_tag = page;
        e.last_line = line;
        e.last_delta = 0;
        e.confidence.reset();
        return;
    }

    const int64_t delta = static_cast<int64_t>(line) -
                          static_cast<int64_t>(e.last_line);
    e.last_line = line;
    if (delta == 0)
        return;

    if (delta == e.last_delta) {
        ++e.confidence;
    } else {
        --e.confidence;
        e.cursor_valid = false;
    }
    e.last_delta = delta;

    const double conf = e.confidence.fraction();
    // Low-confidence prefetches are suppressed entirely; in full
    // KPC-P they would skip L2 but still fill LLC. With a shared
    // recursive fill path we approximate by thresholding here.
    if (!e.confidence.saturated())
        return;

    const auto degree = static_cast<uint32_t>(
        1 + conf * (config_.max_degree - 1));
    for (uint32_t d = 1; d <= degree; ++d) {
        const int64_t target =
            static_cast<int64_t>(line) + delta * static_cast<int64_t>(d);
        if (target <= 0)
            break;
        // Keep prefetches within the page, as KPC-P does.
        const uint64_t target_addr = static_cast<uint64_t>(target)
                                     << cache::kLineBits;
        if ((target_addr >> kPageBits) != page)
            break;
        if (e.cursor_valid &&
            ((delta > 0 && target <= e.pf_cursor) ||
             (delta < 0 && target >= e.pf_cursor)))
            continue;
        e.pf_cursor = target;
        e.cursor_valid = true;
        cache::PrefetchRequest req;
        req.address = target_addr;
        req.confidence = conf;
        ++proposals_;
        out.push_back(req);
    }
}

} // namespace rlr::prefetch
