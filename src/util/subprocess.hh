/**
 * @file
 * Minimal child-process helper for the distributed sweep
 * supervisor: spawn a worker (fork+execv of our own binary with a
 * per-worker argv), poll or block on its exit, and decode the
 * wait status into {exited, code, signal}. No pipes, no ptys —
 * workers talk to the supervisor through the journal directory
 * (leases, cell records, per-worker heartbeat files), never
 * through stdio.
 */

#ifndef RLR_UTIL_SUBPROCESS_HH
#define RLR_UTIL_SUBPROCESS_HH

#include <string>
#include <vector>

#include <sys/types.h>

namespace rlr::util
{

/** Decoded exit state of a reaped child. */
struct ProcExit
{
    /** Child terminated normally (exit/return). */
    bool exited = false;
    /** Exit code when exited, else 0. */
    int code = 0;
    /** Terminating signal when killed, else 0. */
    int signal = 0;
};

/** One spawned child process. */
class Subprocess
{
  public:
    Subprocess() = default;

    /**
     * fork+execv @p argv (argv[0] is the program path). stdout and
     * stderr are inherited. @return false when the fork fails or
     * the exec fails inside the child (reported via exit code 127
     * at reap time — spawn itself only fails on fork).
     */
    bool spawn(const std::vector<std::string> &argv);

    /**
     * Reap the child if it has exited. Non-blocking.
     * @return true when the child was reaped (status valid).
     */
    bool poll(ProcExit &status);

    /** Block until the child exits, then reap it. */
    ProcExit wait();

    /** Send @p sig to the child (no-op when not running). */
    void kill(int sig) const;

    pid_t pid() const { return pid_; }
    bool running() const { return pid_ > 0 && !reaped_; }
    /** Exit state once reaped (valid after poll()/wait() hit). */
    const ProcExit &status() const { return status_; }

  private:
    pid_t pid_ = -1;
    bool reaped_ = false;
    ProcExit status_;
};

} // namespace rlr::util

#endif // RLR_UTIL_SUBPROCESS_HH
