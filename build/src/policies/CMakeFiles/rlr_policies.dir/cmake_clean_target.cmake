file(REMOVE_RECURSE
  "librlr_policies.a"
)
