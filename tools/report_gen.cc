#include "tools/report_gen.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <vector>

#include "stats/export.hh"
#include "stats/stats.hh"
#include "util/format.hh"

namespace rlr::tools
{

namespace
{

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/** One sweep cell, as read from the SweepRunner --json export. */
struct Cell
{
    std::string workload;
    std::string policy;
    std::string error;
    double hit_rate = kNan;
    double mpki = kNan;
    double ipc = kNan;
    uint64_t instructions = 0;
    /** Per-core IPCs ("cores" array); size > 1 for mixes. */
    std::vector<double> core_ipcs;
    /** llc.policy.overhead_kib from the embedded snapshot. */
    double overhead_kib = kNan;

    bool ok() const { return error.empty(); }
};

/**
 * Paper Table IV: overall geomean IPC speedup over LRU (%), in
 * the four published configurations.
 */
struct PaperRow
{
    const char *policy;
    double spec1, cloud1, spec4, cloud4;
};

constexpr PaperRow kPaperTable4[] = {
    {"DRRIP", 1.50, 1.80, 2.63, 1.07},
    {"KPC-R", 2.30, 3.07, 5.50, 3.80},
    {"RLR", 3.25, 3.48, 4.86, 2.39},
    {"RLR-unopt", 3.60, 4.02, 5.87, 2.50},
    {"SHiP", 2.24, 2.64, 6.33, 3.09},
    {"Hawkeye", 3.03, 2.09, 7.69, 2.45},
    {"SHiP++", 3.76, 4.60, 7.37, 3.89},
};

const PaperRow *
paperRow(const std::string &policy)
{
    for (const auto &r : kPaperTable4)
        if (policy == r.policy)
            return &r;
    return nullptr;
}

/** Paper Table I storage overhead for a 2MB/16-way LLC (KiB). */
struct PaperOverhead
{
    const char *policy;
    double kib;
};

constexpr PaperOverhead kPaperTable1[] = {
    {"LRU", 16.0},     {"DRRIP", 8.0},    {"KPC-R", 8.57},
    {"SHiP", 14.0},    {"SHiP++", 20.0},  {"Hawkeye", 28.0},
    {"Glider", 61.6},  {"MPPPB", 28.0},   {"RLR", 16.75},
    {"RLR-unopt", 40.0},
};

double
paperOverhead(const std::string &policy)
{
    for (const auto &r : kPaperTable1)
        if (policy == r.policy)
            return r.kib;
    return kNan;
}

/** Fixed-precision number; em dash for NaN/inf (missing data). */
std::string
fmt(double v, int prec = 2)
{
    if (!std::isfinite(v))
        return "—";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
    return buf;
}

/** Signed delta in percentage points; em dash when undefined. */
std::string
fmtDelta(double measured, double expected)
{
    if (!std::isfinite(measured) || !std::isfinite(expected))
        return "—";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%+.2f", measured - expected);
    return buf;
}

std::string
mdTable(const std::vector<std::string> &header,
        const std::vector<std::vector<std::string>> &rows)
{
    std::string out = "|";
    for (const auto &h : header)
        out += " " + h + " |";
    out += "\n|";
    for (size_t i = 0; i < header.size(); ++i)
        out += i == 0 ? "---|" : "---:|";
    out += "\n";
    for (const auto &row : rows) {
        out += "|";
        for (const auto &c : row)
            out += " " + c + " |";
        out += "\n";
    }
    return out;
}

double
numberField(const stats::json::Value &cell, const std::string &key)
{
    const auto *v = cell.find(key);
    return (v && v->isNumber()) ? v->number : kNan;
}

std::vector<Cell>
parseCells(const std::string &text)
{
    const stats::json::Value root = stats::json::parse(text);
    if (!root.isArray())
        throw std::runtime_error(
            "sweep JSON: root is not an array of cells");
    std::vector<Cell> cells;
    cells.reserve(root.array.size());
    for (const auto &v : root.array) {
        if (!v.isObject())
            throw std::runtime_error(
                "sweep JSON: cell is not an object");
        Cell c;
        c.workload = v.stringOr("workload", "");
        c.policy = v.stringOr("policy", "");
        if (const auto *err = v.find("error");
            err && err->isString())
            c.error = err->string;
        c.hit_rate = numberField(v, "hit_rate");
        c.mpki = numberField(v, "mpki");
        c.ipc = numberField(v, "ipc");
        c.instructions = static_cast<uint64_t>(
            v.numberOr("instructions", 0.0));
        if (const auto *cores = v.find("cores");
            cores && cores->isArray()) {
            for (const auto &core : cores->array)
                c.core_ipcs.push_back(
                    core.numberOr("ipc", kNan));
        }
        if (const auto *snap = v.find("stats")) {
            if (const auto *formulas = snap->find("formulas"))
                c.overhead_kib = formulas->numberOr(
                    "llc.policy.overhead_kib", kNan);
        }
        cells.push_back(std::move(c));
    }
    return cells;
}

/** Append @p s to @p order unless already present. */
void
noteOrder(std::vector<std::string> &order, const std::string &s)
{
    for (const auto &e : order)
        if (e == s)
            return;
    order.push_back(s);
}

bool
contains(const std::vector<std::string> &v, const std::string &s)
{
    for (const auto &e : v)
        if (e == s)
            return true;
    return false;
}

/** A mix cell runs >1 core (bench/common.hh labels them "mix*"). */
bool
isMix(const Cell &c)
{
    return c.core_ipcs.size() > 1 ||
           c.workload.rfind("mix", 0) == 0;
}

/**
 * SPEC-like labels start with the benchmark number ("429.mcf");
 * mix labels are classified by their first component
 * ("mix0(403.gcc+...)"). Everything else counts as CloudSuite.
 */
bool
isSpecLike(const std::string &workload)
{
    std::string w = workload;
    if (const auto paren = w.find('(');
        w.rfind("mix", 0) == 0 && paren != std::string::npos)
        w = w.substr(paren + 1);
    return !w.empty() &&
           std::isdigit(static_cast<unsigned char>(w[0])) != 0;
}

const Cell *
find(const std::vector<Cell> &cells, const std::string &workload,
     const std::string &policy)
{
    for (const auto &c : cells)
        if (c.workload == workload && c.policy == policy)
            return &c;
    return nullptr;
}

/** Geomean of the collected ratios as a % gain; NaN when empty. */
double
geomeanPct(const std::vector<double> &ratios)
{
    if (ratios.empty())
        return kNan;
    return 100.0 * (stats::geomean(ratios) - 1.0);
}

/**
 * Overall geomean IPC speedup (%) of @p policy over LRU across
 * the single-core @p workloads (skipping pairs with a missing or
 * failed cell, as the fault-isolated sweeps allow).
 */
double
overallSpeedup(const std::vector<Cell> &cells,
               const std::vector<std::string> &workloads,
               const std::string &policy)
{
    std::vector<double> ratios;
    for (const auto &w : workloads) {
        const Cell *base = find(cells, w, "LRU");
        const Cell *cell = find(cells, w, policy);
        if (!base || !cell || !base->ok() || !cell->ok())
            continue;
        if (!(base->ipc > 0.0) || !std::isfinite(cell->ipc))
            continue;
        ratios.push_back(stats::speedup(cell->ipc, base->ipc));
    }
    return geomeanPct(ratios);
}

/**
 * Weighted speedup of one mix cell over its LRU baseline: the
 * geomean of per-core IPC ratios (RunResult::speedupOver), as a
 * % gain. NaN when either cell is missing/failed or the core
 * counts disagree.
 */
double
mixSpeedup(const std::vector<Cell> &cells,
           const std::string &mix, const std::string &policy)
{
    const Cell *base = find(cells, mix, "LRU");
    const Cell *cell = find(cells, mix, policy);
    if (!base || !cell || !base->ok() || !cell->ok())
        return kNan;
    if (base->core_ipcs.size() != cell->core_ipcs.size() ||
        base->core_ipcs.empty())
        return kNan;
    std::vector<double> ratios;
    for (size_t i = 0; i < base->core_ipcs.size(); ++i) {
        if (!(base->core_ipcs[i] > 0.0))
            return kNan;
        ratios.push_back(stats::speedup(cell->core_ipcs[i],
                                        base->core_ipcs[i]));
    }
    return geomeanPct(ratios);
}

/** One Table-IV-style subsection: Measured | Paper | Δ. */
void
table4Section(std::string &out, const std::string &heading,
              const std::vector<std::string> &policies,
              const std::vector<double> &measured,
              const std::vector<double> &expected)
{
    out += "### " + heading + "\n\n";
    std::vector<std::vector<std::string>> rows;
    for (size_t i = 0; i < policies.size(); ++i) {
        rows.push_back({policies[i], fmt(measured[i]),
                        fmt(expected[i]),
                        fmtDelta(measured[i], expected[i])});
    }
    out += mdTable({"Policy", "Measured %", "Paper %", "Δ (pp)"},
                   rows);
    out += "\n";
}

} // namespace

std::string
generateReport(const std::string &sweep_json,
               const ReportOptions &opts)
{
    const std::vector<Cell> cells = parseCells(sweep_json);

    // First-appearance orders keep the report deterministic and
    // aligned with the sweep's own iteration order.
    std::vector<std::string> policies;
    std::vector<std::string> singles;
    std::vector<std::string> mixes;
    size_t n_failed = 0;
    uint64_t total_instructions = 0;
    for (const auto &c : cells) {
        noteOrder(policies, c.policy);
        noteOrder(isMix(c) ? mixes : singles, c.workload);
        if (!c.ok())
            ++n_failed;
        total_instructions += c.instructions;
    }
    std::vector<std::string> ranked; // policies minus the baseline
    for (const auto &p : policies)
        if (p != "LRU")
            ranked.push_back(p);
    const bool have_lru = contains(policies, "LRU");

    std::vector<std::string> spec_singles, cloud_singles;
    for (const auto &w : singles)
        (isSpecLike(w) ? spec_singles : cloud_singles)
            .push_back(w);
    std::vector<std::string> spec_mixes, cloud_mixes;
    for (const auto &m : mixes)
        (isSpecLike(m) ? spec_mixes : cloud_mixes).push_back(m);

    std::string out = "# " + opts.title + "\n\n";
    if (!opts.source.empty())
        out += util::format("Input: `{}`\n\n", opts.source);
    out += "Generated by `tools/report` from a SweepRunner "
           "`--json` export. Measured numbers come from the "
           "sweep cells and their embedded stats-registry "
           "snapshots; \"Paper\" columns are the published "
           "values from the HPCA'21 paper (Table IV speedups, "
           "Table I overheads). Δ is measured − paper in "
           "percentage points. An em dash marks missing data "
           "(failed cell, absent policy, or no LRU baseline).\n\n";

    // --- Input summary ------------------------------------------
    out += "## Input summary\n\n";
    out += util::format(
        "- Sweep cells: {} ({} ok, {} failed)\n", cells.size(),
        cells.size() - n_failed, n_failed);
    out += util::format(
        "- Single-core workloads: {} ({} SPEC-like, {} "
        "CloudSuite-like)\n",
        singles.size(), spec_singles.size(),
        cloud_singles.size());
    out += util::format("- Multicore mixes: {}\n", mixes.size());
    std::string policy_list;
    for (const auto &p : policies) {
        if (!policy_list.empty())
            policy_list += ", ";
        policy_list += p;
    }
    out += util::format("- Policies: {}\n", policy_list);
    out += util::format("- Simulated instructions (measured): {}\n",
                        total_instructions);
    if (!have_lru)
        out += "- **No LRU cells in the input** — every "
               "speedup-over-LRU section below is empty.\n";
    out += "\n";

    // --- Table IV -----------------------------------------------
    out += "## Table IV — overall IPC speedup over LRU (%)\n\n";
    out += "Geometric mean across the workloads of each class; "
           "the paper's Table IV reports the same statistic over "
           "full SPEC2006/CloudSuite runs, so expect deltas from "
           "this reproduction's synthetic workloads and shorter "
           "runs.\n\n";
    auto measured_for =
        [&](const std::vector<std::string> &workloads,
            bool multicore) {
            std::vector<double> m;
            for (const auto &p : ranked) {
                if (!multicore) {
                    m.push_back(
                        overallSpeedup(cells, workloads, p));
                } else {
                    std::vector<double> ratios;
                    for (const auto &mix : workloads) {
                        const double s = mixSpeedup(cells, mix, p);
                        if (std::isfinite(s))
                            ratios.push_back(1.0 + s / 100.0);
                    }
                    m.push_back(geomeanPct(ratios));
                }
            }
            return m;
        };
    auto expected_for = [&](double PaperRow::*column) {
        std::vector<double> e;
        for (const auto &p : ranked) {
            const PaperRow *r = paperRow(p);
            e.push_back(r ? r->*column : kNan);
        }
        return e;
    };
    if (!spec_singles.empty())
        table4Section(out, "1-core SPEC2006", ranked,
                      measured_for(spec_singles, false),
                      expected_for(&PaperRow::spec1));
    if (!cloud_singles.empty())
        table4Section(out, "1-core CloudSuite", ranked,
                      measured_for(cloud_singles, false),
                      expected_for(&PaperRow::cloud1));
    if (!spec_mixes.empty())
        table4Section(out, "4-core SPEC2006 mixes", ranked,
                      measured_for(spec_mixes, true),
                      expected_for(&PaperRow::spec4));
    if (!cloud_mixes.empty())
        table4Section(out, "4-core CloudSuite mixes", ranked,
                      measured_for(cloud_mixes, true),
                      expected_for(&PaperRow::cloud4));
    if (spec_singles.empty() && cloud_singles.empty() &&
        spec_mixes.empty() && cloud_mixes.empty())
        out += "(no cells)\n\n";

    // --- Fig 1 --------------------------------------------------
    if (!singles.empty()) {
        out += "## Fig. 1 — LLC demand hit rate (%)\n\n";
        out += "The paper's Fig. 1 motivates learned "
               "replacement with the gap between LRU and "
               "Belady's OPT; when the sweep includes the "
               "`Belady` policy its column is the upper "
               "bound.\n\n";
        std::vector<std::vector<std::string>> rows;
        for (const auto &w : singles) {
            std::vector<std::string> row = {w};
            for (const auto &p : policies) {
                const Cell *c = find(cells, w, p);
                row.push_back(
                    c && c->ok() ? fmt(100.0 * c->hit_rate)
                                 : "—");
            }
            rows.push_back(std::move(row));
        }
        std::vector<std::string> header = {"Workload"};
        header.insert(header.end(), policies.begin(),
                      policies.end());
        out += mdTable(header, rows) + "\n";
    }

    // --- Fig 10 -------------------------------------------------
    if (!singles.empty() && have_lru && !ranked.empty()) {
        out += "## Fig. 10 — per-workload IPC speedup over LRU "
               "(%)\n\n";
        out += "Per-workload view behind the Table IV geomeans "
               "(the paper's Figs. 10/11, one bar group per "
               "benchmark).\n\n";
        std::vector<std::vector<std::string>> rows;
        for (const auto &w : singles) {
            const Cell *base = find(cells, w, "LRU");
            std::vector<std::string> row = {w};
            for (const auto &p : ranked) {
                const Cell *c = find(cells, w, p);
                double pct = kNan;
                if (base && c && base->ok() && c->ok() &&
                    base->ipc > 0.0) {
                    pct = 100.0 * (stats::speedup(c->ipc,
                                                  base->ipc) -
                                   1.0);
                }
                row.push_back(fmt(pct));
            }
            rows.push_back(std::move(row));
        }
        std::vector<std::string> overall = {
            "**Overall (geomean)**"};
        for (const auto &p : ranked)
            overall.push_back(
                fmt(overallSpeedup(cells, singles, p)));
        rows.push_back(std::move(overall));
        std::vector<std::string> header = {"Workload"};
        header.insert(header.end(), ranked.begin(),
                      ranked.end());
        out += mdTable(header, rows) + "\n";
    }

    // --- Fig 12 -------------------------------------------------
    if (!singles.empty()) {
        out += "## Fig. 12 — LLC demand MPKI\n\n";
        out += "Misses per kilo-instruction, demand accesses "
               "only (lower is better). The paper's Fig. 12 "
               "shows RLR tracking the PC-based policies' MPKI "
               "despite using no program counter.\n\n";
        std::vector<std::vector<std::string>> rows;
        for (const auto &w : singles) {
            std::vector<std::string> row = {w};
            for (const auto &p : policies) {
                const Cell *c = find(cells, w, p);
                row.push_back(c && c->ok() ? fmt(c->mpki) : "—");
            }
            rows.push_back(std::move(row));
        }
        std::vector<std::string> header = {"Workload"};
        header.insert(header.end(), policies.begin(),
                      policies.end());
        out += mdTable(header, rows) + "\n";
    }

    // --- Fig 13 -------------------------------------------------
    if (!mixes.empty() && have_lru && !ranked.empty()) {
        out += "## Fig. 13 — multicore weighted speedup over "
               "LRU (%)\n\n";
        out += "Weighted speedup of each 4-core mix: geomean of "
               "per-core IPC ratios against the same mix under "
               "LRU, computed from the per-core `cores` arrays "
               "in the sweep export.\n\n";
        std::vector<std::vector<std::string>> rows;
        for (const auto &m : mixes) {
            std::vector<std::string> row = {"`" + m + "`"};
            for (const auto &p : ranked)
                row.push_back(fmt(mixSpeedup(cells, m, p)));
            rows.push_back(std::move(row));
        }
        std::vector<std::string> overall = {
            "**Overall (geomean)**"};
        for (const auto &p : ranked) {
            std::vector<double> ratios;
            for (const auto &m : mixes) {
                const double s = mixSpeedup(cells, m, p);
                if (std::isfinite(s))
                    ratios.push_back(1.0 + s / 100.0);
            }
            overall.push_back(fmt(geomeanPct(ratios)));
        }
        rows.push_back(std::move(overall));
        std::vector<std::string> header = {"Mix"};
        header.insert(header.end(), ranked.begin(),
                      ranked.end());
        out += mdTable(header, rows) + "\n";
    }

    // --- Storage overhead ---------------------------------------
    {
        std::vector<std::vector<std::string>> rows;
        for (const auto &p : policies) {
            double measured = kNan;
            for (const auto &c : cells) {
                if (c.policy == p && c.ok() &&
                    std::isfinite(c.overhead_kib)) {
                    measured = c.overhead_kib;
                    break;
                }
            }
            const double expected = paperOverhead(p);
            if (!std::isfinite(measured) &&
                !std::isfinite(expected))
                continue;
            rows.push_back({p, fmt(measured),
                            fmt(expected),
                            fmtDelta(measured, expected)});
        }
        if (!rows.empty()) {
            out += "## Table I — replacement-state overhead "
                   "(KiB, 2MB/16-way LLC)\n\n";
            out += "Measured from each cell's "
                   "`llc.policy.overhead_kib` registry formula "
                   "(the policy's own bit-accounting model); "
                   "paper values from Table I.\n\n";
            out += mdTable({"Policy", "Measured KiB",
                            "Paper KiB", "Δ"},
                           rows);
            out += "\n";
        }
    }

    // --- Failed cells -------------------------------------------
    if (n_failed > 0) {
        out += "## Failed cells\n\n";
        std::vector<std::vector<std::string>> rows;
        for (const auto &c : cells)
            if (!c.ok())
                rows.push_back({"`" + c.workload + "`", c.policy,
                                c.error});
        out += mdTable({"Workload", "Policy", "Error"}, rows);
        out += "\n";
    }

    // --- Appendix -----------------------------------------------
    out += "## Appendix — paper Table IV reference values\n\n";
    out += "Overall geomean IPC speedup over LRU (%), as "
           "published:\n\n";
    std::vector<std::vector<std::string>> rows;
    for (const auto &r : kPaperTable4) {
        rows.push_back({r.policy, fmt(r.spec1), fmt(r.cloud1),
                        fmt(r.spec4), fmt(r.cloud4)});
    }
    out += mdTable({"Policy", "1-core SPEC2006",
                    "1-core CloudSuite", "4-core SPEC2006",
                    "4-core CloudSuite"},
                   rows);
    return out;
}

} // namespace rlr::tools
