/**
 * @file
 * Death tests for constructor guards: every policy (and the
 * verification harness itself) must reject out-of-range knobs
 * loudly at construction time instead of corrupting metadata
 * later. ensure()/panic() abort; fatal() exits with status 1.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/cache.hh"
#include "core/rlr.hh"
#include "policies/eva.hh"
#include "policies/glider.hh"
#include "policies/hawkeye.hh"
#include "policies/kpc_r.hh"
#include "policies/lru.hh"
#include "policies/mpppb.hh"
#include "policies/pdp.hh"
#include "policies/rrip.hh"
#include "policies/ship.hh"
#include "verify/differential.hh"
#include "verify/ref_policies.hh"

using namespace rlr;
using namespace rlr::policies;

TEST(PolicyGuards, RripRejectsBadRrpvWidth)
{
    EXPECT_DEATH({ SrripPolicy p(0); }, "bad RRPV width");
    EXPECT_DEATH({ SrripPolicy p(9); }, "bad RRPV width");
    EXPECT_DEATH({ BrripPolicy p(0); }, "bad RRPV width");
    EXPECT_DEATH({ DrripPolicy p(9); }, "bad RRPV width");
}

TEST(PolicyGuards, DrripRejectsZeroLeaderSets)
{
    EXPECT_DEATH({ DrripPolicy p(2, 0); },
                 "at least one leader set");
}

TEST(PolicyGuards, KpcRRejectsZeroLeaderSets)
{
    EXPECT_DEATH({ KpcRPolicy p(2, 0); },
                 "at least one leader set");
}

TEST(PolicyGuards, ShipRejectsBadWidths)
{
    ShipConfig cfg;
    cfg.rrpv_bits = 0;
    EXPECT_DEATH({ ShipPolicy p(cfg); }, "bad RRPV width");
    cfg = {};
    cfg.signature_bits = 25;
    EXPECT_DEATH({ ShipPolicy p(cfg); }, "bad signature width");
    cfg = {};
    cfg.shct_bits = 0;
    EXPECT_DEATH({ ShipPolicy p(cfg); }, "bad SHCT counter width");
}

TEST(PolicyGuards, HawkeyeRejectsBadKnobs)
{
    HawkeyeConfig cfg;
    cfg.rrpv_bits = 9;
    EXPECT_DEATH({ HawkeyePolicy p(cfg); }, "bad RRPV width");
    cfg = {};
    cfg.sampled_sets = 0;
    EXPECT_DEATH({ HawkeyePolicy p(cfg); },
                 "at least one sampled set");
    cfg = {};
    cfg.history_factor = 0;
    EXPECT_DEATH({ HawkeyePolicy p(cfg); }, "history window");
    cfg = {};
    cfg.predictor_bits = 25;
    EXPECT_DEATH({ HawkeyePolicy p(cfg); },
                 "bad predictor index width");
    cfg = {};
    cfg.counter_bits = 9;
    EXPECT_DEATH({ HawkeyePolicy p(cfg); },
                 "bad predictor counter width");
}

TEST(PolicyGuards, RlrRejectsBadKnobs)
{
    core::RlrConfig cfg;
    cfg.age_bits = 0;
    EXPECT_DEATH({ core::RlrPolicy p(cfg); }, "bad age_bits");
    cfg = {};
    cfg.rd_update_hits = 3;
    EXPECT_DEATH({ core::RlrPolicy p(cfg); }, "power of two");
    cfg = {};
    cfg.num_cores = 0;
    EXPECT_DEATH({ core::RlrPolicy p(cfg); }, "zero cores");
}

TEST(PolicyGuards, OtherBaselinesRejectDegenerateKnobs)
{
    EvaConfig eva;
    eva.age_buckets = 1;
    EXPECT_DEATH({ EvaPolicy p(eva); }, "too few buckets");
    PdpConfig pdp;
    pdp.max_pd = 4;
    EXPECT_DEATH({ PdpPolicy p(pdp); }, "max_pd too small");
    GliderConfig glider;
    glider.isvm_entries = 6;
    EXPECT_DEATH({ GliderPolicy p(glider); }, "power of two");
    MpppbConfig mpppb;
    mpppb.table_entries = 100;
    EXPECT_DEATH({ MpppbPolicy p(mpppb); }, "power of two");
}

TEST(PolicyGuards, MutantPolicyRejectsBadWrapping)
{
    EXPECT_DEATH(
        { verify::MutantPolicy m(nullptr, 3); }, "null inner");
    EXPECT_DEATH(
        {
            verify::MutantPolicy m(
                std::make_unique<LruPolicy>(), 0);
        },
        "period must be >= 1");
}

TEST(PolicyGuards, RefCacheRejectsBadGeometry)
{
    EXPECT_DEATH(
        {
            verify::RefCache c(
                3, 2, std::make_unique<verify::RefLru>());
        },
        "power of two");
    EXPECT_DEATH(
        {
            verify::RefCache c(
                4, 0, std::make_unique<verify::RefLru>());
        },
        "zero ways");
    EXPECT_DEATH({ verify::RefCache c(4, 2, nullptr); },
                 "null policy");
}

namespace
{

class NullNext : public cache::MemoryLevel
{
  public:
    uint64_t access(const cache::MemRequest &, uint64_t now) override
    {
        return now;
    }
    const std::string &name() const override
    {
        static const std::string n = "null";
        return n;
    }
};

} // namespace

TEST(PolicyGuards, CacheRejectsMalformedGeometry)
{
    NullNext next;
    cache::CacheGeometry geom;
    geom.name = "bad";
    geom.size_bytes = 5 * 1024; // not a power of two
    geom.ways = 5;
    EXPECT_EXIT(
        {
            cache::Cache c(geom,
                           std::make_unique<LruPolicy>(), &next);
        },
        ::testing::ExitedWithCode(1), "malformed geometry");
}
