file(REMOVE_RECURSE
  "CMakeFiles/test_kpcr_eva_pdp.dir/test_kpcr_eva_pdp.cc.o"
  "CMakeFiles/test_kpcr_eva_pdp.dir/test_kpcr_eva_pdp.cc.o.d"
  "test_kpcr_eva_pdp"
  "test_kpcr_eva_pdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kpcr_eva_pdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
