/**
 * @file
 * Hawkeye replacement (Jain & Lin, ISCA 2016). Reconstructs
 * Belady's decisions for a sample of past accesses with OPTgen and
 * trains a PC-indexed predictor to classify lines as cache-friendly
 * or cache-averse. Friendly lines are kept near MRU; averse lines
 * are immediate eviction candidates; evicting a friendly line
 * detrains the PC that loaded it.
 */

#ifndef RLR_POLICIES_HAWKEYE_HH
#define RLR_POLICIES_HAWKEYE_HH

#include <unordered_map>
#include <vector>

#include "cache/replacement.hh"
#include "util/sat_counter.hh"

namespace rlr::policies
{

/** Hawkeye configuration. */
struct HawkeyeConfig
{
    /** Per-line age/RRIP counter bits (values 0..7). */
    unsigned rrpv_bits = 3;
    /** Number of sampled sets feeding OPTgen. */
    uint32_t sampled_sets = 64;
    /** OPTgen history window in set-accesses (x associativity). */
    uint32_t history_factor = 8;
    /** Predictor index bits (entries = 2^bits). */
    unsigned predictor_bits = 13;
    /** Predictor counter bits; friendly when MSB set. */
    unsigned counter_bits = 3;
};

/** Hawkeye policy. */
class HawkeyePolicy : public cache::ReplacementPolicy
{
  public:
    explicit HawkeyePolicy(HawkeyeConfig config = {});

    void bind(const cache::CacheGeometry &geom) override;
    uint32_t
    findVictim(const cache::AccessContext &ctx,
               std::span<const cache::BlockView> blocks) override;
    void onAccess(const cache::AccessContext &ctx) override;
    std::string name() const override { return "Hawkeye"; }
    bool usesPc() const override { return true; }
    cache::StorageOverhead overhead() const override;

    /** @return true when the predictor classifies pc as friendly. */
    bool predictsFriendly(uint64_t pc) const;

  private:
    struct LineState
    {
        uint8_t rrpv = 7;
        uint32_t pc_sig = 0;
        bool friendly = false;
    };

    /** Per-sampled-set OPTgen state. */
    struct SamplerSet
    {
        /** Occupancy per time quantum (ring buffer). */
        std::vector<uint8_t> occupancy;
        /** line address -> (last access time, last PC signature). */
        std::unordered_map<uint64_t, std::pair<uint64_t, uint32_t>>
            entries;
        uint64_t time = 0;
    };

    LineState &line(uint32_t set, uint32_t way);
    uint32_t pcSignature(uint64_t pc) const;
    /** @return sampler for the set, or nullptr if not sampled. */
    SamplerSet *sampler(uint32_t set);
    void trainOnSample(SamplerSet &samp, uint64_t line_addr,
                       uint32_t pc_sig);

    HawkeyeConfig config_;
    uint8_t max_rrpv_ = 7;
    uint32_t ways_ = 0;
    uint32_t num_sets_ = 0;
    uint32_t sample_period_ = 1;
    uint32_t history_len_ = 128;
    std::vector<LineState> lines_;
    std::vector<SamplerSet> samplers_;
    std::vector<util::SatCounter> predictor_;
};

} // namespace rlr::policies

#endif // RLR_POLICIES_HAWKEYE_HH
