/**
 * @file
 * Unit tests for the sweep heartbeat (obs/heartbeat.hh): JSON
 * round-trip, truncation detection via the eor marker, the
 * writer's lifecycle (periodic beats, worker slots, final done
 * beat), and read atomicity under a fast concurrent writer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include <unistd.h>

#include "obs/heartbeat.hh"

using namespace rlr;
namespace fs = std::filesystem;

namespace
{

std::string
tempPath(const std::string &name)
{
    return (fs::temp_directory_path() /
            ("rlr_hb_test_" + name + "_" +
             std::to_string(::getpid()) + ".json"))
        .string();
}

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return "";
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

} // namespace

TEST(Heartbeat, JsonRoundTrip)
{
    obs::Heartbeat hb;
    hb.sequence = 17;
    hb.elapsed_s = 12.5;
    hb.cells_total = 40;
    hb.cells_done = 12;
    hb.cells_failed = 1;
    hb.cells_resumed = 3;
    hb.cells_running = 4;
    hb.throughput = 0.96;
    hb.eta_s = 26.0;
    hb.rss_kb = 123456;
    hb.max_rss_kb = 150000;
    hb.done = false;
    hb.workers.push_back(
        obs::HeartbeatWorker{0, "429.mcf:RLR", 1, 3.25});
    hb.workers.push_back(
        obs::HeartbeatWorker{2, "403.gcc:\"odd\"", 2, 45.0});

    const obs::Heartbeat back =
        obs::heartbeatFromJson(obs::heartbeatToJson(hb));
    EXPECT_EQ(back.sequence, 17u);
    EXPECT_DOUBLE_EQ(back.elapsed_s, 12.5);
    EXPECT_EQ(back.cells_total, 40u);
    EXPECT_EQ(back.cells_done, 12u);
    EXPECT_EQ(back.cells_failed, 1u);
    EXPECT_EQ(back.cells_resumed, 3u);
    EXPECT_EQ(back.cells_running, 4u);
    EXPECT_DOUBLE_EQ(back.throughput, 0.96);
    EXPECT_EQ(back.rss_kb, 123456u);
    EXPECT_FALSE(back.done);
    ASSERT_EQ(back.workers.size(), 2u);
    EXPECT_EQ(back.workers[0].cell, "429.mcf:RLR");
    EXPECT_EQ(back.workers[1].worker, 2u);
    EXPECT_EQ(back.workers[1].cell, "403.gcc:\"odd\"");
    EXPECT_EQ(back.workers[1].attempt, 2u);
    EXPECT_DOUBLE_EQ(back.workers[1].age_s, 45.0);
}

TEST(Heartbeat, RejectsForeignAndTruncated)
{
    EXPECT_THROW(obs::heartbeatFromJson("{}"),
                 std::runtime_error);
    EXPECT_THROW(
        obs::heartbeatFromJson("{\"format\": \"rlr-profile\"}"),
        std::runtime_error);
    // A valid document with the eor marker chopped off must be
    // rejected, not half-parsed.
    std::string text = obs::heartbeatToJson(obs::Heartbeat{});
    const size_t eor = text.find("\"eor\"");
    ASSERT_NE(eor, std::string::npos);
    text.resize(eor);
    text += "\"x\": 1\n}\n";
    EXPECT_THROW(obs::heartbeatFromJson(text),
                 std::runtime_error);
}

TEST(Heartbeat, WriterLifecycle)
{
    const std::string path = tempPath("lifecycle");
    {
        obs::HeartbeatWriter writer(path, 0.01, 6, 2);
        writer.cellStarted("429.mcf:RLR", 1);
        obs::Heartbeat snap = writer.snapshot();
        EXPECT_EQ(snap.cells_total, 6u);
        EXPECT_EQ(snap.cells_resumed, 2u);
        EXPECT_EQ(snap.cells_running, 1u);
        ASSERT_EQ(snap.workers.size(), 1u);
        EXPECT_EQ(snap.workers[0].cell, "429.mcf:RLR");

        writer.cellFinished(true);
        writer.cellStarted("403.gcc:LRU", 2);
        writer.cellFinished(false);
        writer.finish();
    }
    // The final beat is flushed by finish(): done, counts settled.
    const obs::Heartbeat hb =
        obs::heartbeatFromJson(slurp(path));
    EXPECT_TRUE(hb.done);
    EXPECT_EQ(hb.cells_done, 2u);
    EXPECT_EQ(hb.cells_failed, 1u);
    EXPECT_EQ(hb.cells_running, 0u);
    EXPECT_TRUE(hb.workers.empty());
    fs::remove(path);
}

TEST(Heartbeat, FinishIsIdempotent)
{
    const std::string path = tempPath("idempotent");
    obs::HeartbeatWriter writer(path, 0.01, 1, 0);
    writer.finish();
    writer.finish(); // second call (and the destructor) no-op
    const obs::Heartbeat hb =
        obs::heartbeatFromJson(slurp(path));
    EXPECT_TRUE(hb.done);
    fs::remove(path);
}

TEST(Heartbeat, ReadersNeverSeeTornWrites)
{
    const std::string path = tempPath("atomic");
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> reads{0};

    obs::HeartbeatWriter writer(path, 0.01, 100, 0);
    // Churn the worker table so the beats keep changing size.
    std::thread churn([&] {
        unsigned i = 0;
        while (!stop.load()) {
            writer.cellStarted(
                "w" + std::to_string(i++ % 7) + ":LRU", 1);
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
        }
    });

    std::thread reader([&] {
        while (!stop.load()) {
            const std::string text = slurp(path);
            if (text.empty())
                continue; // not written yet
            // Atomic rename means every read parses cleanly with
            // the eor marker intact.
            obs::Heartbeat hb;
            ASSERT_NO_THROW(hb = obs::heartbeatFromJson(text));
            EXPECT_EQ(hb.cells_total, 100u);
            ++reads;
        }
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    stop.store(true);
    churn.join();
    reader.join();
    writer.finish();
    EXPECT_GT(reads.load(), 0u);
    fs::remove(path);
}
