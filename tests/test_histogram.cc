/** @file Unit tests for util/histogram.hh. */

#include <gtest/gtest.h>

#include "util/histogram.hh"

using rlr::util::Histogram;

TEST(Histogram, BasicCounting)
{
    Histogram h(4, 10);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    h.sample(40); // overflow
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflowCount(), 1u);
}

TEST(Histogram, Mean)
{
    Histogram h(16, 1);
    h.sample(2);
    h.sample(4);
    h.sample(6);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h(8, 1);
    h.sample(3, 5);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, Quantile)
{
    Histogram h(100, 1);
    for (uint64_t v = 0; v < 100; ++v)
        h.sample(v);
    EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 50.0, 2.0);
    EXPECT_NEAR(static_cast<double>(h.quantile(0.9)), 90.0, 2.0);
}

TEST(Histogram, FractionBetween)
{
    Histogram h(10, 10);
    for (uint64_t v = 0; v < 100; v += 10)
        h.sample(v);
    EXPECT_DOUBLE_EQ(h.fractionBetween(0, 49), 0.5);
    EXPECT_DOUBLE_EQ(h.fractionBetween(0, 99), 1.0);
}

TEST(Histogram, MergeAccumulates)
{
    Histogram a(4, 1), b(4, 1);
    a.sample(1);
    b.sample(1);
    b.sample(2);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.bucketCount(1), 2u);
    EXPECT_EQ(a.bucketCount(2), 1u);
}

TEST(Histogram, MergeShapeMismatchIsFatal)
{
    Histogram a(4, 1);
    Histogram more_buckets(8, 1);
    Histogram wider(4, 2);
    EXPECT_DEATH(a.merge(more_buckets), "shape mismatch");
    EXPECT_DEATH(a.merge(wider), "shape mismatch");
}

TEST(Histogram, ResetClears)
{
    Histogram h(4, 1);
    h.sample(2);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, RenderNonEmpty)
{
    Histogram h(4, 1);
    EXPECT_EQ(h.render(), "(empty)\n");
    h.sample(1, 10);
    const std::string out = h.render(20);
    EXPECT_NE(out.find('#'), std::string::npos);
}
