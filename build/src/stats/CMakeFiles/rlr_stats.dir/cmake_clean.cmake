file(REMOVE_RECURSE
  "CMakeFiles/rlr_stats.dir/stats.cc.o"
  "CMakeFiles/rlr_stats.dir/stats.cc.o.d"
  "librlr_stats.a"
  "librlr_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rlr_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
