// Exit-code audit (docs/ROBUSTNESS.md): every bench binary
// resolves its exit status through DistRunner::exitCode, so this
// table IS the policy — 130 after a SIGINT/SIGTERM drain, 1 when
// any cell exhausted its retries, 0 only when every cell
// committed ok. Also pins down the supervisor→worker argv
// rewrite, which the distributed e2e depends on.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/dist_runner.hh"

using rlr::sim::DistRunner;

TEST(ExitCodes, Table)
{
    // interrupted, any_failed -> exit status
    EXPECT_EQ(DistRunner::exitCode(false, false), 0);
    EXPECT_EQ(DistRunner::exitCode(false, true), 1);
    EXPECT_EQ(DistRunner::exitCode(true, false), 130);
    // A drain outranks cell failures: the operator pressed ^C, so
    // "interrupted" is the truthful summary of the run.
    EXPECT_EQ(DistRunner::exitCode(true, true), 130);
}

TEST(ExitCodes, WorkerArgvStripsSupervisorFlags)
{
    const std::vector<std::string> argv = {
        "fig12_mpki",  "--workers",  "4",
        "--journal",   "/tmp/j",     "--progress",
        "--seed",      "42",
    };
    const auto out = DistRunner::workerArgv(argv, 2);
    const std::vector<std::string> want = {
        "fig12_mpki", "--journal", "/tmp/j",    "--seed",
        "42",         "--join",    "--worker-id", "2",
    };
    EXPECT_EQ(out, want);
}

TEST(ExitCodes, WorkerArgvStripsEqualsForm)
{
    const std::vector<std::string> argv = {
        "fig12_mpki", "--workers=8", "--journal", "/tmp/j"};
    const auto out = DistRunner::workerArgv(argv, 0);
    const std::vector<std::string> want = {
        "fig12_mpki", "--journal", "/tmp/j",
        "--join",     "--worker-id", "0"};
    EXPECT_EQ(out, want);
}

TEST(ExitCodes, WorkerHeartbeatPath)
{
    EXPECT_EQ(DistRunner::workerHeartbeatPath("/tmp/j", 3),
              "/tmp/j/worker-3.heartbeat.json");
}
