/**
 * @file
 * LLC-only offline simulator — the C++ equivalent of the paper's
 * python cache simulator (Section III-A, Figure 2). It replays a
 * captured LLC access trace against a tag-only set-associative
 * cache that tracks every Table-II feature, and drives either a
 * conventional replacement policy or the RL agent (with
 * Belady-based rewards for training).
 *
 * It also gathers the feature statistics behind Figures 4-7:
 * preuse-vs-reuse deltas, victim age per access type, victim hit
 * counts, and victim recency.
 */

#ifndef RLR_ML_OFFLINE_HH
#define RLR_ML_OFFLINE_HH

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/replacement.hh"
#include "ml/agent.hh"
#include "ml/features.hh"
#include "policies/belady.hh"
#include "trace/trace_io.hh"

namespace rlr::ml
{

/** Offline LLC shape (defaults = the paper's 2MB/16-way). */
struct OfflineConfig
{
    uint64_t size_bytes = 2 * 1024 * 1024;
    uint32_t ways = 16;
};

/** Outcome counters of one offline run. */
struct OfflineStats
{
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t demand_accesses = 0;
    uint64_t demand_hits = 0;
    uint64_t compulsory_misses = 0;
    uint64_t evictions = 0;
    uint64_t bypasses = 0;
    /** Cumulative training reward (agent runs). */
    double total_reward = 0.0;

    double hitRate() const;
    double demandHitRate() const;
};

/** Feature statistics for Figures 4-7. */
struct FeatureStats
{
    /** Fig. 4: |preuse - reuse| buckets over reused lines. */
    uint64_t preuse_reuse_lt10 = 0;
    uint64_t preuse_reuse_10to50 = 0;
    uint64_t preuse_reuse_gt50 = 0;

    /** Fig. 5: victim age-since-last-access sums per last type. */
    std::array<uint64_t, trace::kNumAccessTypes> victim_age_sum{};
    std::array<uint64_t, trace::kNumAccessTypes> victim_count{};

    /** Fig. 6: victims with 0 / 1 / >1 hits. */
    uint64_t victims_zero_hits = 0;
    uint64_t victims_one_hit = 0;
    uint64_t victims_multi_hits = 0;

    /** Fig. 7: victim recency histogram (0 = LRU). */
    std::vector<uint64_t> victim_recency;

    double avgVictimAge(trace::AccessType type) const;
};

/** The offline LLC simulator. */
class OfflineSimulator
{
  public:
    /**
     * @param config cache shape
     * @param trace captured LLC access stream (borrowed; must
     *        outlive the simulator)
     */
    OfflineSimulator(OfflineConfig config,
                     const trace::LlcTrace *trace);

    /**
     * Replay the trace under a conventional policy.
     * @param warm_pass replay the trace once (stats discarded)
     *        before the measured pass, so cold compulsory misses
     *        do not dominate short traces
     */
    OfflineStats runPolicy(cache::ReplacementPolicy &policy,
                           bool warm_pass = false);

    /**
     * Replay the trace with the RL agent choosing victims.
     * @param train store transitions and learn (Belady rewards);
     *        false = greedy evaluation
     */
    OfflineStats runAgent(DqnAgent &agent, bool train,
                          bool warm_pass = false);

    /** Statistics gathered by the most recent run. */
    const FeatureStats &featureStats() const { return fstats_; }

    /** Feature extractor (masking for hill climbing). */
    FeatureExtractor &extractor() { return extractor_; }

    /** Shared future-knowledge index over the trace. */
    std::shared_ptr<const policies::BeladyOracle> oracle() const;

    uint32_t numSets() const { return num_sets_; }
    uint32_t ways() const { return ways_; }

  private:
    struct AddressHistory
    {
        uint32_t last_set_accesses = 0;
        uint32_t prev_interval = 0;
        bool has_prev = false;
        bool seen = false;
    };

    void resetState();
    /** One replay of the trace; appends to current state. */
    OfflineStats replayPolicy(cache::ReplacementPolicy &policy);
    OfflineStats replayAgent(DqnAgent &agent, bool train);
    uint32_t setIndex(uint64_t address) const;
    /** Recompute recency ranks for a set (0 = LRU). */
    void refreshRecency(uint32_t set);
    /** Apply an access to the line's feature counters. */
    void touchLine(uint32_t set, uint32_t way,
                   const trace::LlcAccess &access, bool hit);
    /** Belady-based reward for evicting @p victim_way (paper's
     *  reward shaping). */
    float reward(uint32_t set, uint32_t victim_way,
                 uint64_t insert_addr, uint64_t seq) const;
    void recordVictim(uint32_t set, uint32_t way);

    OfflineConfig config_;
    const trace::LlcTrace *trace_;
    uint32_t ways_;
    uint32_t num_sets_;
    FeatureExtractor extractor_;
    std::shared_ptr<policies::BeladyOracle> oracle_;

    std::vector<LineFeatures> lines_;
    std::vector<SetFeatures> sets_;
    std::vector<uint64_t> last_use_;
    uint64_t clock_ = 0;
    std::unordered_map<uint64_t, AddressHistory> history_;
    FeatureStats fstats_;
};

} // namespace rlr::ml

#endif // RLR_ML_OFFLINE_HH
