/**
 * @file
 * Process/thread resource sampling: CPU time, peak RSS, and page
 * faults via getrusage(2) plus steady-clock wall time, exported
 * per sweep cell and under the `obs.res.*` registry prefix
 * (docs/OBSERVABILITY.md).
 *
 * Samples are cheap (one syscall) and monotonic-ish: take one at
 * the start of a region, another at the end, and deltaFrom()
 * yields the region's cost. Peak RSS is a process-lifetime
 * high-water mark, so its "delta" reports the end value instead.
 */

#ifndef RLR_OBS_RESOURCE_HH
#define RLR_OBS_RESOURCE_HH

#include <cstdint>
#include <string>

namespace rlr::stats
{
class Registry;
} // namespace rlr::stats

namespace rlr::obs
{

/** One getrusage + steady-clock reading. */
struct ResourceSample
{
    /** What the CPU counters cover. */
    enum class Scope
    {
        Process, //!< RUSAGE_SELF: every thread
        Thread,  //!< RUSAGE_THREAD where available, else process
    };

    double wall_s = 0.0;
    double cpu_user_s = 0.0;
    double cpu_sys_s = 0.0;
    /** Process peak RSS in KiB (high-water mark, not current). */
    uint64_t max_rss_kb = 0;
    uint64_t minor_faults = 0;
    uint64_t major_faults = 0;

    /** Read the current counters for @p scope. */
    static ResourceSample now(Scope scope = Scope::Process);

    /**
     * Cost since @p start: CPU/wall/fault fields subtract (clamped
     * at zero); max_rss_kb keeps this sample's high-water mark.
     */
    ResourceSample deltaFrom(const ResourceSample &start) const;
};

/** Current (not peak) RSS in KiB via /proc/self/statm; 0 when
 *  unavailable. */
uint64_t currentRssKb();

/**
 * Register @p delta's fields as counters under @p prefix
 * (obs.res.cpu_user_ms, .cpu_sys_ms, .wall_ms, .max_rss_kb,
 * .minor_faults, .major_faults). Values are copied.
 */
void describeResourceStats(stats::Registry &reg,
                           const std::string &prefix,
                           const ResourceSample &delta);

} // namespace rlr::obs

#endif // RLR_OBS_RESOURCE_HH
