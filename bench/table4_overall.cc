/**
 * @file
 * Regenerates Table IV: overall geomean IPC speedup over LRU for
 * every policy, in four columns: 1-core SPEC2006, 1-core
 * CloudSuite, 4-core SPEC2006 (random mixes), 4-core CloudSuite
 * (rotating mixes of the five server workloads).
 */

#include "bench/common.hh"

using namespace rlr;

namespace
{

double
overallSingleCore(const std::vector<sim::SweepCell> &cells,
                  const std::vector<std::string> &workloads,
                  const std::string &policy)
{
    std::vector<double> ratios;
    for (const auto &w : workloads) {
        const auto &base = sim::findCell(cells, w, "LRU");
        const auto &cell = sim::findCell(cells, w, policy);
        ratios.push_back(rlr::stats::speedup(
            cell.result.ipc(), base.result.ipc()));
    }
    return rlr::stats::geomean(ratios);
}

double
overallMulticore(const std::vector<bench::MixCell> &cells,
                 size_t n_mixes, const std::string &policy)
{
    std::vector<double> ratios;
    for (size_t m = 0; m < n_mixes; ++m) {
        const auto &base = bench::findMixCell(cells, m, "LRU");
        const auto &cell = bench::findMixCell(cells, m, policy);
        ratios.push_back(cell.result.speedupOver(base.result));
    }
    return rlr::stats::geomean(ratios);
}

} // namespace

int
main(int argc, char **argv)
{
    auto parser = bench::makeParser(
        "Table IV: overall speedup, 1-core and 4-core");
    parser.addOption("mixes", "8",
                     "Random 4-benchmark SPEC mixes");
    if (!parser.parse(argc, argv))
        return 0;
    auto opt = bench::makeOptions(parser);
    const size_t n_mixes = parser.getUint("mixes");

    const std::vector<std::string> policies = {
        "DRRIP", "KPC-R", "RLR", "RLR-unopt",
        "SHiP",  "Hawkeye", "SHiP++"};
    // The multicore runs keep plain RLR: in this reproduction's
    // bandwidth-bound synthetic environment the Section IV-D core
    // priority degrades streaming cores (see EXPERIMENTS.md);
    // fig13_multicore reports both variants side by side.
    auto mc_policy = [](const std::string &p) -> std::string {
        return p;
    };

    std::vector<std::string> all = {"LRU"};
    all.insert(all.end(), policies.begin(), policies.end());

    const auto spec = bench::specNames();
    const auto cloud = bench::cloudNames();
    const auto spec_cells = bench::runSweep(opt, spec, all);
    const auto cloud_cells = bench::runSweep(opt, cloud, all);

    std::vector<std::string> mc_all = {"LRU"};
    for (const auto &p : policies)
        mc_all.push_back(mc_policy(p));
    const auto spec_mixes =
        bench::makeMixes(spec, n_mixes, opt.seed);
    // CloudSuite 4-core: rotate through the five workloads.
    std::vector<std::vector<std::string>> cloud_mixes;
    for (size_t m = 0; m < cloud.size(); ++m) {
        std::vector<std::string> mix;
        for (size_t c = 0; c < 4; ++c)
            mix.push_back(cloud[(m + c) % cloud.size()]);
        cloud_mixes.push_back(std::move(mix));
    }
    const auto spec_mc =
        bench::multicoreSweep(opt, spec_mixes, mc_all);
    const auto cloud_mc =
        bench::multicoreSweep(opt, cloud_mixes, mc_all);

    util::Table table({"Policy", "1-core SPEC2006",
                       "1-core CloudSuite", "4-core SPEC2006",
                       "4-core CloudSuite"});
    for (const auto &p : policies) {
        table.addRow(
            {p,
             util::Table::fmt(
                 100.0 * (overallSingleCore(spec_cells, spec, p) -
                          1.0),
                 2),
             util::Table::fmt(
                 100.0 *
                     (overallSingleCore(cloud_cells, cloud, p) -
                      1.0),
                 2),
             util::Table::fmt(
                 100.0 * (overallMulticore(spec_mc,
                                           spec_mixes.size(),
                                           mc_policy(p)) -
                          1.0),
                 2),
             util::Table::fmt(
                 100.0 * (overallMulticore(cloud_mc,
                                           cloud_mixes.size(),
                                           mc_policy(p)) -
                          1.0),
                 2)});
    }

    std::puts("=== Table IV: overall IPC speedup over LRU (%) ===");
    bench::emit(opt, table);
    std::puts(
        "\nPaper's Table IV: DRRIP 1.50/1.80/2.63/1.07, KPC-R "
        "2.30/3.07/5.50/3.80, RLR 3.25/3.48/4.86/2.39, "
        "RLR(unopt) 3.60/4.02/5.87/2.50, SHiP 2.24/2.64/6.33/"
        "3.09, Hawkeye 3.03/2.09/7.69/2.45, SHiP++ 3.76/4.60/"
        "7.37/3.89.");
    return bench::finish(opt);
}
