/**
 * @file
 * Minimal dense matrix type backing the MLP. Row-major floats;
 * just the operations the training loop needs, kept cache-friendly
 * (the inner loops are the hot path of RL training).
 */

#ifndef RLR_ML_MATRIX_HH
#define RLR_ML_MATRIX_HH

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hh"

namespace rlr::ml
{

/** Row-major dense matrix of floats. */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(size_t rows, size_t cols, float init = 0.0f);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    float &at(size_t r, size_t c) { return data_[r * cols_ + c]; }
    float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    /** Row view (contiguous). */
    std::span<float> row(size_t r);
    std::span<const float> row(size_t r) const;

    std::span<float> data() { return data_; }
    std::span<const float> data() const { return data_; }

    /** Xavier/Glorot-uniform initialization. */
    void initXavier(util::Rng &rng);

    /** out = this * x  (rows x cols) * (cols) -> (rows). */
    void matvec(std::span<const float> x, std::span<float> out) const;

    /** out = this^T * x  (cols) accumulating transposed product. */
    void matvecT(std::span<const float> x,
                 std::span<float> out) const;

    /** this += scale * outer(a, b) with a: rows, b: cols. */
    void addOuter(std::span<const float> a, std::span<const float> b,
                  float scale);

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace rlr::ml

#endif // RLR_ML_MATRIX_HH
