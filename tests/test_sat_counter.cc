/** @file Unit and property tests for util/sat_counter.hh. */

#include <gtest/gtest.h>

#include "util/sat_counter.hh"

using namespace rlr::util;

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2);
    for (int i = 0; i < 10; ++i)
        ++c;
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(3, 2);
    for (int i = 0; i < 10; ++i)
        --c;
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, InitialClamped)
{
    SatCounter c(2, 100);
    EXPECT_EQ(c.value(), 3u);
}

TEST(SatCounter, AddSaturates)
{
    SatCounter c(4);
    c.add(7);
    EXPECT_EQ(c.value(), 7u);
    c.add(100);
    EXPECT_EQ(c.value(), 15u);
}

TEST(SatCounter, Fraction)
{
    SatCounter c(2, 3);
    EXPECT_DOUBLE_EQ(c.fraction(), 1.0);
    c.reset();
    EXPECT_DOUBLE_EQ(c.fraction(), 0.0);
}

/** Property: value always within [0, 2^n - 1] under random ops. */
class SatCounterWidthTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SatCounterWidthTest, NeverLeavesRange)
{
    const unsigned bits = GetParam();
    SatCounter c(bits);
    uint64_t x = 88172645463325252ULL;
    for (int i = 0; i < 1000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        if (x & 1)
            ++c;
        else
            --c;
        EXPECT_LE(c.value(), c.maxValue());
    }
    EXPECT_EQ(c.maxValue(), (1ULL << bits) - 1);
}

INSTANTIATE_TEST_SUITE_P(Widths, SatCounterWidthTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u));

TEST(SignedSatCounter, Range)
{
    SignedSatCounter c(3);
    for (int i = 0; i < 20; ++i)
        ++c;
    EXPECT_EQ(c.value(), 3);
    for (int i = 0; i < 20; ++i)
        --c;
    EXPECT_EQ(c.value(), -4);
}

TEST(SignedSatCounter, InitialClamped)
{
    SignedSatCounter hi(4, 100);
    EXPECT_EQ(hi.value(), 7);
    SignedSatCounter lo(4, -100);
    EXPECT_EQ(lo.value(), -8);
}

TEST(SignedSatCounter, TakenThreshold)
{
    SignedSatCounter c(4, -1);
    EXPECT_FALSE(c.taken());
    ++c;
    EXPECT_TRUE(c.taken());
}
