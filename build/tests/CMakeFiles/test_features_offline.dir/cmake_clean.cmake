file(REMOVE_RECURSE
  "CMakeFiles/test_features_offline.dir/test_features_offline.cc.o"
  "CMakeFiles/test_features_offline.dir/test_features_offline.cc.o.d"
  "test_features_offline"
  "test_features_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_features_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
