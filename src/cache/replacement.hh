/**
 * @file
 * Replacement-policy interface, CRC2-flavoured but idiomatic C++.
 *
 * The cache calls `findVictim` on every fill and `onAccess` on
 * every lookup (hit or fill). Policies own all of their metadata,
 * sized at bind() time from the cache geometry, and report a
 * storage-overhead model used to regenerate the paper's Table I.
 *
 * The program counter is available in the AccessContext because
 * PC-based baselines (SHiP, SHiP++, Hawkeye) need it; RLR and the
 * other non-PC policies never read it, mirroring the paper's
 * hardware constraint.
 */

#ifndef RLR_CACHE_REPLACEMENT_HH
#define RLR_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <limits>
#include <span>
#include <string>

#include "cache/geometry.hh"
#include "stats/registry.hh"
#include "trace/record.hh"

namespace rlr::cache
{

/**
 * Why a fill was skipped. The cache stamps LowConfidencePrefetch
 * on its own fill-level-control path; policies returning kBypass
 * report their reason through
 * ReplacementPolicy::bypassReason().
 */
enum class BypassReason : uint8_t
{
    /** Not a bypass (default on non-bypass events). */
    None = 0,
    /** Policy declined the fill (generic). */
    Policy,
    /** RLR age protection: every line still young. */
    AgeProtected,
    /** Fill-level control: prefetch confidence below threshold. */
    LowConfidencePrefetch,
};

/** Number of distinct bypass reason codes. */
inline constexpr size_t kNumBypassReasons = 4;

/** Everything a policy may observe about one access. */
struct AccessContext
{
    /** Issuing core. */
    uint8_t cpu = 0;
    /** Set index of the access. */
    uint32_t set = 0;
    /** Way touched: the hit way, or the fill way. */
    uint32_t way = 0;
    /** Full byte address. */
    uint64_t full_addr = 0;
    /** Program counter of the triggering instruction (0 for WB). */
    uint64_t pc = 0;
    /** LLC access type (LD / RFO / PF / WB). */
    trace::AccessType type = trace::AccessType::Load;
    /** True on hit, false on fill-after-miss. */
    bool hit = false;
    /**
     * False when the cache will not honour kBypass for this fill
     * (writeback re-query after a denied bypass): the policy must
     * return a real victim way. Bypass-capable policies check this
     * in addition to their own type filters.
     */
    bool allow_bypass = true;
};

/** Read-only view of one cache block exposed to policies. */
struct BlockView
{
    bool valid = false;
    bool dirty = false;
    /** Filled by a prefetch and not yet demand-referenced. */
    bool prefetch = false;
    /** Line-aligned byte address (valid lines only). */
    uint64_t address = 0;
};

/**
 * Storage overhead model for a policy: metadata bits per cache
 * line, per set, and global (tables, counters).
 */
struct StorageOverhead
{
    double bits_per_line = 0;
    double bits_per_set = 0;
    double global_bits = 0;

    /** @return total overhead in bytes for @p geom. */
    double
    totalBytes(const CacheGeometry &geom) const
    {
        const double bits =
            bits_per_line * static_cast<double>(geom.numLines()) +
            bits_per_set * static_cast<double>(geom.numSets()) +
            global_bits;
        return bits / 8.0;
    }

    /** @return total overhead in KiB for @p geom. */
    double
    totalKiB(const CacheGeometry &geom) const
    {
        return totalBytes(geom) / 1024.0;
    }
};

/** Abstract replacement policy. One instance serves one cache. */
class ReplacementPolicy
{
  public:
    /** Returned by findVictim to bypass the fill entirely. */
    static constexpr uint32_t kBypass =
        std::numeric_limits<uint32_t>::max();

    virtual ~ReplacementPolicy() = default;

    /**
     * Size metadata for the given geometry. Called once at cache
     * construction, and again through reset() when the cache is
     * flushed; bind() must therefore fully (re)initialize every
     * piece of policy state it owns.
     */
    virtual void bind(const CacheGeometry &geom) = 0;

    /**
     * Drop all replacement metadata, as after a full cache flush:
     * no line the policy has seen is resident any more. The
     * default re-binds, which suffices for policies whose bind()
     * re-initializes everything; policies with constructor-seeded
     * state (RNG streams, duel counters) override this to restore
     * their exact post-construction behaviour.
     */
    virtual void reset(const CacheGeometry &geom) { bind(geom); }

    /**
     * Choose a victim way for a fill into ctx.set. The cache fills
     * invalid ways itself; this is only called when the set is
     * full. @p blocks has one entry per way.
     * @return a way index, or kBypass to skip caching the line
     *         (only honoured for non-writeback fills).
     */
    virtual uint32_t findVictim(const AccessContext &ctx,
                                std::span<const BlockView> blocks) = 0;

    /**
     * Observe an access: called on every hit and on every fill
     * (after the victim was chosen and the block installed, with
     * ctx.way identifying the block).
     */
    virtual void onAccess(const AccessContext &ctx) = 0;

    /**
     * Observe an eviction of a valid block (not called for
     * bypasses). Default: ignore.
     */
    virtual void
    onEviction(uint32_t set, uint32_t way, const BlockView &block)
    {
        (void)set;
        (void)way;
        (void)block;
    }

    /**
     * Self-check hook for the verification harness: inspect the
     * policy's metadata for @p set (declared bit widths respected,
     * internal counters in range, consistency with the resident
     * @p blocks) and throw std::logic_error on any violation.
     * Called by the cache after every access to the set, but only
     * when verification is armed (RLR_VERIFY=1 or
     * Cache::setVerifyInvariants) — keep it cheap, it is still
     * O(ways) per access. Default: no checks.
     */
    virtual void
    verifyInvariants(uint32_t set,
                     std::span<const BlockView> blocks) const
    {
        (void)set;
        (void)blocks;
    }

    /**
     * Mount policy-specific statistics (learned parameters,
     * predictor state, training counters) under @p prefix in the
     * registry. The owning cache registers the shared entries
     * (name, storage overhead) itself; the default exposes
     * nothing extra.
     */
    virtual void
    describeStats(stats::Registry &reg, const std::string &prefix)
    {
        (void)reg;
        (void)prefix;
    }

    /**
     * Replacement priority of a resident line, in the policy's
     * native units (LRU: recency rank with 0 = LRU; RRIP family:
     * RRPV; RLR: the P_line sum). Purely observational — the
     * event log (src/obs/) records it on hits, fills, and
     * evictions. Default: 0 for policies without a natural
     * priority.
     */
    virtual uint64_t
    victimPriority(uint32_t set, uint32_t way) const
    {
        (void)set;
        (void)way;
        return 0;
    }

    /**
     * Reason code for the most recent findVictim() that returned
     * kBypass. Only read immediately after a bypassing
     * findVictim(); default: generic Policy.
     */
    virtual BypassReason bypassReason() const
    {
        return BypassReason::Policy;
    }

    /** Policy name used in experiment tables. */
    virtual std::string name() const = 0;

    /** @return true when the policy reads the program counter. */
    virtual bool usesPc() const { return false; }

    /** Metadata cost model (Table I). */
    virtual StorageOverhead overhead() const = 0;
};

} // namespace rlr::cache

#endif // RLR_CACHE_REPLACEMENT_HH
