/**
 * @file
 * Regenerates the Section V-B priority ablation: RLR with the hit
 * register disabled and with the type register disabled, versus
 * full RLR. The paper reports the speedup over LRU shrinking by
 * 12% (no hit priority) and 30% (no type priority) on SPEC2006.
 */

#include "bench/common.hh"

using namespace rlr;

int
main(int argc, char **argv)
{
    auto parser = bench::makeParser(
        "Ablation: RLR hit/type priority contribution");
    if (!parser.parse(argc, argv))
        return 0;
    auto opt = bench::makeOptions(parser);

    auto workloads = opt.workloads;
    if (workloads.empty())
        workloads = bench::specNames();
    const std::vector<std::string> policies = {
        "RLR", "RLR-nohit", "RLR-notype"};

    std::vector<std::string> all = {"LRU"};
    all.insert(all.end(), policies.begin(), policies.end());
    const auto cells = bench::runSweep(opt, workloads, all);

    std::vector<double> overall(policies.size(), 0.0);
    for (size_t p = 0; p < policies.size(); ++p) {
        std::vector<double> ratios;
        for (const auto &w : workloads) {
            const auto &base = sim::findCell(cells, w, "LRU");
            const auto &cell =
                sim::findCell(cells, w, policies[p]);
            ratios.push_back(stats::speedup(
                cell.result.ipc(), base.result.ipc()));
        }
        overall[p] = stats::geomean(ratios);
    }

    util::Table table({"Variant", "Speedup over LRU (%)",
                       "Share of full RLR gain (%)"});
    const double full_gain = overall[0] - 1.0;
    for (size_t p = 0; p < policies.size(); ++p) {
        const double gain = overall[p] - 1.0;
        table.addRow(
            {policies[p], util::Table::fmt(100.0 * gain, 2),
             util::Table::fmt(full_gain > 0
                                  ? 100.0 * gain / full_gain
                                  : 0.0,
                              1)});
    }

    std::puts("=== Ablation: RLR priority components (SPEC2006) "
              "===");
    bench::emit(opt, table);
    std::puts("\nPaper: disabling the hit register cuts the gain "
              "by 12%; disabling the type register cuts it by "
              "30%.");
    return bench::finish(opt);
}
