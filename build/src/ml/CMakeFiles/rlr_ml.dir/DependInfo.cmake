
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/agent.cc" "src/ml/CMakeFiles/rlr_ml.dir/agent.cc.o" "gcc" "src/ml/CMakeFiles/rlr_ml.dir/agent.cc.o.d"
  "/root/repo/src/ml/analysis.cc" "src/ml/CMakeFiles/rlr_ml.dir/analysis.cc.o" "gcc" "src/ml/CMakeFiles/rlr_ml.dir/analysis.cc.o.d"
  "/root/repo/src/ml/features.cc" "src/ml/CMakeFiles/rlr_ml.dir/features.cc.o" "gcc" "src/ml/CMakeFiles/rlr_ml.dir/features.cc.o.d"
  "/root/repo/src/ml/matrix.cc" "src/ml/CMakeFiles/rlr_ml.dir/matrix.cc.o" "gcc" "src/ml/CMakeFiles/rlr_ml.dir/matrix.cc.o.d"
  "/root/repo/src/ml/mlp.cc" "src/ml/CMakeFiles/rlr_ml.dir/mlp.cc.o" "gcc" "src/ml/CMakeFiles/rlr_ml.dir/mlp.cc.o.d"
  "/root/repo/src/ml/offline.cc" "src/ml/CMakeFiles/rlr_ml.dir/offline.cc.o" "gcc" "src/ml/CMakeFiles/rlr_ml.dir/offline.cc.o.d"
  "/root/repo/src/ml/replay.cc" "src/ml/CMakeFiles/rlr_ml.dir/replay.cc.o" "gcc" "src/ml/CMakeFiles/rlr_ml.dir/replay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rlr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/rlr_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rlr_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/rlr_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rlr_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
