/**
 * @file
 * Quickstart: simulate one benchmark on the paper's system
 * configuration under two LLC replacement policies and compare.
 *
 *   ./quickstart [--workload 471.omnetpp] [--instructions N]
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "trace/workloads.hh"
#include "util/args.hh"

using namespace rlr;

int
main(int argc, char **argv)
{
    util::ArgParser parser(
        "Quickstart: LRU vs RLR on one synthetic benchmark");
    parser.addOption("workload", "471.omnetpp", "Benchmark name");
    parser.addOption("instructions", "1000000",
                     "Measured instructions");
    parser.addOption("warmup", "250000", "Warmup instructions");
    if (!parser.parse(argc, argv))
        return 0;

    const std::string workload = parser.get("workload");

    sim::SimParams params;
    params.warmup_instructions = parser.getUint("warmup");
    params.sim_instructions = parser.getUint("instructions");

    std::printf("Simulating %s (%llu instructions, Table III "
                "system: 3-issue O3, 32KB L1, 256KB L2, 2MB "
                "LLC)...\n\n",
                workload.c_str(),
                static_cast<unsigned long long>(
                    params.sim_instructions));

    params.llc_policy = "LRU";
    const auto base = sim::runSingleCore(workload, params);
    params.llc_policy = "RLR";
    const auto rlr_run = sim::runSingleCore(workload, params);

    auto report = [](const char *name, const sim::RunResult &r) {
        std::printf("%-4s: IPC %.4f | LLC demand hit rate %5.1f%% "
                    "| demand MPKI %6.2f\n",
                    name, r.ipc(),
                    100.0 * r.llcDemandHitRate(),
                    r.llcDemandMpki());
    };
    report("LRU", base);
    report("RLR", rlr_run);

    std::printf("\nRLR speedup over LRU: %+.2f%%  (storage cost: "
                "16.75KB for the 2MB LLC, no PC needed)\n",
                100.0 * (rlr_run.ipc() / base.ipc() - 1.0));
    return 0;
}
