/**
 * @file
 * Protecting Distance based Policy (Duong et al., MICRO 2012).
 * Lines are protected from eviction until PD set-accesses have
 * elapsed since their last touch. PD is recomputed periodically by
 * maximizing estimated hits per unit of cache occupancy over a
 * sampled reuse-distance histogram (the original dedicates a tiny
 * special-purpose processor to this search).
 */

#ifndef RLR_POLICIES_PDP_HH
#define RLR_POLICIES_PDP_HH

#include <vector>

#include "cache/replacement.hh"

namespace rlr::policies
{

/** PDP configuration. */
struct PdpConfig
{
    /** Maximum protecting distance considered by the search. */
    uint32_t max_pd = 256;
    /** Accesses between PD recomputations. */
    uint64_t update_interval = 1 << 16;
    /** Initial protecting distance. */
    uint32_t initial_pd = 64;
    /** Allow bypass when every line is protected. */
    bool allow_bypass = true;
};

/** PDP policy. */
class PdpPolicy : public cache::ReplacementPolicy
{
  public:
    explicit PdpPolicy(PdpConfig config = {});

    void bind(const cache::CacheGeometry &geom) override;
    uint32_t
    findVictim(const cache::AccessContext &ctx,
               std::span<const cache::BlockView> blocks) override;
    void onAccess(const cache::AccessContext &ctx) override;
    void onEviction(uint32_t set, uint32_t way,
                    const cache::BlockView &block) override;
    std::string name() const override { return "PDP"; }
    cache::StorageOverhead overhead() const override;

    /** Current protecting distance (tests). */
    uint32_t protectingDistance() const { return pd_; }

  private:
    void recomputePd();
    uint32_t &age(uint32_t set, uint32_t way);

    PdpConfig config_;
    uint32_t ways_ = 0;
    uint32_t num_sets_ = 0;
    uint32_t pd_ = 64;
    /** Set accesses since last touch, per line. */
    std::vector<uint32_t> ages_;
    /** Reuse-distance histogram (hits) + no-reuse mass. */
    std::vector<uint64_t> reuse_hist_;
    uint64_t no_reuse_ = 0;
    uint64_t accesses_ = 0;
};

} // namespace rlr::policies

#endif // RLR_POLICIES_PDP_HH
