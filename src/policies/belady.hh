/**
 * @file
 * Belady's optimal replacement (MIN), usable only offline: victims
 * are the lines whose next use lies farthest in the future. As in
 * the paper, Belady runs in the LLC-only offline simulator over a
 * captured access trace (it needs future knowledge), never in the
 * full-hierarchy timing model.
 */

#ifndef RLR_POLICIES_BELADY_HH
#define RLR_POLICIES_BELADY_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/replacement.hh"
#include "trace/trace_io.hh"

namespace rlr::policies
{

/**
 * Future-knowledge index over an LLC trace: for any (line, trace
 * position), the position of the next access to that line.
 */
class BeladyOracle
{
  public:
    /** "Never accessed again." */
    static constexpr uint64_t kNever =
        std::numeric_limits<uint64_t>::max();

    /** Build from a trace in O(n). */
    explicit BeladyOracle(const trace::LlcTrace &trace);

    /**
     * @return the first access position strictly greater than
     * @p seq touching @p line_addr, or kNever.
     */
    uint64_t nextUse(uint64_t line_addr, uint64_t seq) const;

    /** Number of accesses the oracle covers. */
    uint64_t length() const { return length_; }

  private:
    std::unordered_map<uint64_t, std::vector<uint64_t>> positions_;
    uint64_t length_ = 0;
};

/**
 * The MIN policy driven by a BeladyOracle. The driver must call
 * setPosition() with the trace index before each access so the
 * policy knows "now".
 */
class BeladyPolicy : public cache::ReplacementPolicy
{
  public:
    /**
     * @param oracle future-knowledge index (shared with driver)
     * @param allow_bypass skip fills whose next use is farther
     *        than every resident line's (improves on classic MIN
     *        for caches that support bypass)
     */
    explicit BeladyPolicy(std::shared_ptr<const BeladyOracle> oracle,
                          bool allow_bypass = false);

    void bind(const cache::CacheGeometry &geom) override;
    uint32_t
    findVictim(const cache::AccessContext &ctx,
               std::span<const cache::BlockView> blocks) override;
    void onAccess(const cache::AccessContext &ctx) override;
    std::string name() const override { return "Belady"; }
    cache::StorageOverhead overhead() const override;

    /** Set the current trace position (index of the next access). */
    void setPosition(uint64_t seq) { seq_ = seq; }

  private:
    std::shared_ptr<const BeladyOracle> oracle_;
    bool allow_bypass_;
    uint64_t seq_ = 0;
};

} // namespace rlr::policies

#endif // RLR_POLICIES_BELADY_HH
