/**
 * @file
 * DistRunner — the supervisor side of distributed sweep execution
 * (docs/ROBUSTNESS.md, "Distributed sweeps").
 *
 * `rlr_bench --workers N --journal DIR` re-execs itself N times as
 * worker processes (`--join --worker-id K` against the same
 * journal), which cooperatively execute the sweep through the
 * lease protocol (sim/lease.hh). The supervisor:
 *
 *  - spawns and reaps the workers (util/subprocess.hh), recording
 *    their pids in `<journal>/workers.json` so external tooling
 *    (and the e2e harness) can SIGKILL them mid-sweep;
 *  - aggregates the per-worker heartbeat files
 *    (`<journal>/worker-<K>.heartbeat.json`) into one supervisor
 *    heartbeat for `inspect --top`, concatenating every worker's
 *    live rows;
 *  - after all workers exit (clean, crashed, or killed), the
 *    caller runs the SAME sweep once more in-process as the merge
 *    pass: journal resume collects every committed cell, and any
 *    cell a killed worker left behind is simply executed locally
 *    (stealing its expired lease), so the merged result is
 *    complete no matter how the workers died.
 */

#ifndef RLR_SIM_DIST_RUNNER_HH
#define RLR_SIM_DIST_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/subprocess.hh"

namespace rlr::sim
{

/** Supervisor for N cooperating sweep worker processes. */
class DistRunner
{
  public:
    struct Options
    {
        /** Worker processes to spawn (ids 0..workers-1). */
        uint32_t workers = 0;
        /** Shared journal base directory (workers.json and the
         *  per-worker heartbeat files live here). */
        std::string journal_dir;
        /** Aggregate heartbeat output path ("" = none). */
        std::string heartbeat_path;
        double heartbeat_period_s = 0.5;
        /** Child poll period in seconds. */
        double poll_s = 0.2;
    };

    explicit DistRunner(Options opts);

    /**
     * Build worker K's argv from the supervisor's own argv:
     * drops `--workers` (and its value) and `--progress`, appends
     * `--join --worker-id K`.
     */
    static std::vector<std::string>
    workerArgv(const std::vector<std::string> &argv,
               uint32_t worker_id);

    /**
     * Spawn every worker, publish workers.json, aggregate worker
     * heartbeats until all children exit, and reap them.
     * @return one ProcExit per worker (index = worker id).
     */
    std::vector<util::ProcExit>
    run(const std::vector<std::string> &supervisor_argv);

    /**
     * Exit-code policy shared by workers, supervisor, and plain
     * sweeps: 130 after a SIGINT/SIGTERM drain, 1 when any cell
     * exhausted retries (or failed terminally), 0 only when every
     * cell committed ok.
     */
    static int exitCode(bool interrupted, bool any_failed);

    /** Per-worker heartbeat path inside @p journal_dir. */
    static std::string workerHeartbeatPath(
        const std::string &journal_dir, uint32_t worker_id);

  private:
    void aggregateHeartbeats(uint64_t sequence, bool final) const;

    Options opts_;
};

} // namespace rlr::sim

#endif // RLR_SIM_DIST_RUNNER_HH
