/**
 * @file
 * Bit-manipulation helpers shared across the simulator.
 */

#ifndef RLR_UTIL_BITS_HH
#define RLR_UTIL_BITS_HH

#include <bit>
#include <cstdint>
#include <type_traits>

namespace rlr::util
{

/** @return true when @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)); v must be nonzero. */
constexpr unsigned
floorLog2(uint64_t v)
{
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** @return ceil(log2(v)); v must be nonzero. */
constexpr unsigned
ceilLog2(uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** @return a mask with the low @p nbits bits set. */
constexpr uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~0ULL : ((1ULL << nbits) - 1);
}

/** Extract bits [first, last] (inclusive, last >= first) of @p v. */
constexpr uint64_t
bits(uint64_t v, unsigned last, unsigned first)
{
    return (v >> first) & mask(last - first + 1);
}

/** Insert the low bits of @p val into bits [first, last] of @p dst. */
constexpr uint64_t
insertBits(uint64_t dst, unsigned last, unsigned first, uint64_t val)
{
    const uint64_t m = mask(last - first + 1) << first;
    return (dst & ~m) | ((val << first) & m);
}

/**
 * Fold (XOR) a value into @p nbits bits. Used for PC signatures in
 * SHiP-style predictors.
 */
constexpr uint64_t
foldXor(uint64_t v, unsigned nbits)
{
    if (nbits == 0 || nbits >= 64)
        return v;
    uint64_t out = 0;
    while (v) {
        out ^= v & mask(nbits);
        v >>= nbits;
    }
    return out;
}

/** Align @p v down to a multiple of @p align (power of two). */
constexpr uint64_t
alignDown(uint64_t v, uint64_t align)
{
    return v & ~(align - 1);
}

} // namespace rlr::util

#endif // RLR_UTIL_BITS_HH
