#include "obs/chrome_trace.hh"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "stats/export.hh"
#include "util/atomic_file.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace rlr::obs
{

void
assignLanes(std::vector<TraceSpan> &spans)
{
    // First-fit interval partitioning: visit spans by start time,
    // reuse the first lane whose last span has already ended.
    std::vector<size_t> order(spans.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return spans[a].start_us <
                                spans[b].start_us;
                     });
    std::vector<uint64_t> lane_end;
    for (const size_t i : order) {
        TraceSpan &s = spans[i];
        uint32_t lane = 0;
        while (lane < lane_end.size() &&
               lane_end[lane] > s.start_us)
            ++lane;
        if (lane == lane_end.size())
            lane_end.push_back(0);
        lane_end[lane] = s.start_us + s.duration_us;
        s.tid = lane;
    }
}

std::string
chromeTraceJson(const std::vector<TraceSpan> &spans,
                const std::string &process_name)
{
    using stats::json::escape;

    std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n"
                      "  \"traceEvents\": [\n";
    out += util::format(
        "    {{\"name\": \"process_name\", \"ph\": \"M\", "
        "\"pid\": 1, \"tid\": 0, "
        "\"args\": {{\"name\": \"{}\"}}}}",
        escape(process_name));
    for (const TraceSpan &s : spans) {
        out += ",\n";
        out += util::format(
            "    {{\"name\": \"{}\", \"cat\": \"{}\", "
            "\"ph\": \"X\", \"ts\": {}, \"dur\": {}, "
            "\"pid\": {}, \"tid\": {}",
            escape(s.name), escape(s.category), s.start_us,
            s.duration_us, s.pid, s.tid);
        if (!s.args.empty()) {
            out += ", \"args\": {";
            for (size_t i = 0; i < s.args.size(); ++i) {
                if (i)
                    out += ", ";
                out += util::format("\"{}\": {}",
                                    escape(s.args[i].first),
                                    s.args[i].second);
            }
            out += "}";
        }
        out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
}

void
writeChromeTrace(const std::string &path,
                 const std::vector<TraceSpan> &spans,
                 const std::string &process_name)
{
    util::atomicWriteFileOrFatal(
        path, chromeTraceJson(spans, process_name));
}

} // namespace rlr::obs
