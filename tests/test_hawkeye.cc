/** @file Tests for the Hawkeye policy. */

#include <gtest/gtest.h>

#include "policies/hawkeye.hh"
#include "tests/policy_test_util.hh"

using namespace rlr;
using namespace rlr::policies;

TEST(Hawkeye, ColdPredictorIsFriendly)
{
    HawkeyePolicy p;
    p.bind(test::tinyGeometry());
    // Counters start at the friendly threshold.
    EXPECT_TRUE(p.predictsFriendly(0x1234));
}

TEST(Hawkeye, LearnsAverseFromStreamingPc)
{
    // One PC streams through far more lines than the cache holds:
    // OPTgen observes no attainable hits and detrains the PC.
    HawkeyeConfig cfg;
    cfg.sampled_sets = 16; // sample every set of the small cache
    HawkeyePolicy p(cfg);

    std::vector<uint64_t> lines;
    for (uint64_t i = 0; i < 4000; ++i)
        lines.push_back(i); // never reused
    const auto trace = test::loadTrace(lines, 0xbeef);
    ml::OfflineSimulator sim(test::smallOffline(), &trace);
    sim.runPolicy(p);
    EXPECT_FALSE(p.predictsFriendly(0xbeef));
}

TEST(Hawkeye, KeepsFriendlyPcFriendly)
{
    HawkeyeConfig cfg;
    cfg.sampled_sets = 16;
    HawkeyePolicy p(cfg);

    // Tight reuse: 8 lines (2 sets' worth) looping many times.
    std::vector<uint64_t> lines;
    for (int rep = 0; rep < 400; ++rep)
        for (uint64_t l = 0; l < 8; ++l)
            lines.push_back(l);
    const auto trace = test::loadTrace(lines, 0xf00d);
    ml::OfflineSimulator sim(test::smallOffline(), &trace);
    const auto stats = sim.runPolicy(p);
    EXPECT_TRUE(p.predictsFriendly(0xf00d));
    EXPECT_GT(stats.hitRate(), 0.9);
}

TEST(Hawkeye, MixedWorkloadProtectsFriendly)
{
    // Friendly PC loops over a small set; averse PC scans. After
    // training, Hawkeye should hold the friendly lines.
    HawkeyeConfig cfg;
    cfg.sampled_sets = 16;
    HawkeyePolicy p(cfg);

    trace::LlcTrace t;
    uint64_t scan = 1000;
    for (int rep = 0; rep < 600; ++rep) {
        for (uint64_t l = 0; l < 2; ++l)
            t.append({0x400, l * 64, trace::AccessType::Load, 0});
        t.append({0x900, (scan++) * 64,
                  trace::AccessType::Load, 0});
    }
    ml::OfflineSimulator sim(test::smallOffline(), &t);
    const auto stats = sim.runPolicy(p);
    // 2 of 3 accesses per round are to hot lines.
    EXPECT_GT(stats.hitRate(), 0.55);
    EXPECT_FALSE(p.predictsFriendly(0x900));
}

TEST(Hawkeye, OverheadMatchesPaper)
{
    HawkeyePolicy p;
    cache::CacheGeometry g;
    g.size_bytes = 2 * 1024 * 1024;
    g.ways = 16;
    p.bind(g);
    EXPECT_NEAR(p.overhead().totalKiB(g), 28.0, 0.5);
    EXPECT_TRUE(p.usesPc());
}
