#!/usr/bin/env bash
# Full CI pipeline: the tier-1 build + test pass in Release, then
# the same test suite rebuilt with AddressSanitizer + UBSan
# (-DRLR_SANITIZE=address,undefined, recovery disabled so any
# report is fatal). Each stage additionally runs the crash-resume
# harness (scripts/crash_resume_e2e.sh) and the distributed-sweep
# harness (scripts/dist_sweep_e2e.sh) standalone against its own
# binaries, so the kill-and-resume and lease-merge guarantees are
# proven both in Release and under the sanitizers. All stages
# must pass.
#
# The release stage additionally runs the LLC hot-path throughput
# benchmark (bench/sim_throughput) and exports its per-policy
# numbers (including the profiled per-phase breakdown) to
# BENCH_sim_throughput.json — the tracked perf trajectory
# (docs/PERFORMANCE.md) — and exports a self-profile of the
# tier-1 sweep path to PROF_tier1.json (docs/OBSERVABILITY.md).
# Set RLR_STABLE_BENCH=1 to zero the wall-clock fields so
# same-seed runs are byte-identical.
#
# Usage: scripts/ci.sh [-j N]
#   -j N   parallel build/test jobs (default: nproc)

set -eu

cd "$(dirname "$0")/.." || exit 1

jobs=$(nproc 2>/dev/null || echo 4)
while getopts "j:" opt; do
    case "$opt" in
        j) jobs="$OPTARG" ;;
        *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
    esac
done

run_stage() {
    local label="$1" dir="$2"
    shift 2
    echo "=== ci: configure $label ($dir) ==="
    cmake -B "$dir" -S . "$@"
    echo "=== ci: build $label ==="
    cmake --build "$dir" -j "$jobs"
    echo "=== ci: test $label ==="
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

run_crash_resume() {
    local label="$1" dir="$2"
    echo "=== ci: crash-resume $label ==="
    scripts/crash_resume_e2e.sh \
        --fig12-bin="$dir/bench/fig12_mpki" \
        --inspect-bin="$dir/tools/inspect"
}

run_dist_sweep() {
    local label="$1" dir="$2"
    echo "=== ci: dist-sweep $label ==="
    scripts/dist_sweep_e2e.sh \
        --fig12-bin="$dir/bench/fig12_mpki" \
        --inspect-bin="$dir/tools/inspect"
}

run_sim_throughput() {
    local dir="$1"
    echo "=== ci: sim_throughput (perf trajectory) ==="
    local stable_flag=""
    if [ "${RLR_STABLE_BENCH:-0}" != "0" ]; then
        stable_flag="--stable-json"
    fi
    # shellcheck disable=SC2086  # stable_flag is empty or one flag
    "$dir/bench/sim_throughput" \
        --json=BENCH_sim_throughput.json $stable_flag
}

run_profile_artifact() {
    local dir="$1"
    echo "=== ci: tier-1 self-profile (PROF_tier1.json) ==="
    local stable_flag=""
    if [ "${RLR_STABLE_BENCH:-0}" != "0" ]; then
        stable_flag="--stable-json"
    fi
    # shellcheck disable=SC2086  # stable_flag is empty or one flag
    "$dir/bench/fig12_mpki" \
        --workloads 429.mcf,470.lbm --policies RLR \
        --warmup 50000 --instructions 200000 \
        --profile PROF_tier1.json $stable_flag >/dev/null
    # The export must render (also validates the JSON).
    "$dir/tools/inspect" --profile PROF_tier1.json >/dev/null
}

run_stage "release" build -DCMAKE_BUILD_TYPE=Release
run_crash_resume "release" build
run_dist_sweep "release" build
run_sim_throughput build
run_profile_artifact build

# Sanitizer stage: RelWithDebInfo keeps line numbers in reports
# without debug-build slowness; halt_on_error via
# -fno-sanitize-recover=all (set by the CMake option).
ASAN_OPTIONS="detect_leaks=0" \
UBSAN_OPTIONS="print_stacktrace=1" \
run_stage "asan+ubsan" build-san \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DRLR_SANITIZE=address,undefined
ASAN_OPTIONS="detect_leaks=0" \
UBSAN_OPTIONS="print_stacktrace=1" \
run_crash_resume "asan+ubsan" build-san
ASAN_OPTIONS="detect_leaks=0" \
UBSAN_OPTIONS="print_stacktrace=1" \
run_dist_sweep "asan+ubsan" build-san

echo "=== ci: all stages passed ==="
