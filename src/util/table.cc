#include "util/table.hh"

#include <algorithm>
#include "util/format.hh"

#include "util/logging.hh"

namespace rlr::util
{

Table::Table(std::vector<std::string> header)
    : header_(std::move(header))
{
    ensure(!header_.empty(), "Table: empty header");
}

void
Table::addRow(std::vector<std::string> row)
{
    ensure(row.size() == header_.size(), "Table: row width mismatch");
    rows_.push_back(std::move(row));
}

std::string
Table::fmt(double v, int precision)
{
    return util::format("{:.{}f}", v, precision);
}

std::string
Table::pct(double v, int precision)
{
    return util::format("{:.{}f}%", v * 100.0, precision);
}

std::string
Table::render() const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            line += util::format("{:<{}}", row[c], widths[c]);
            if (c + 1 < row.size())
                line += "  ";
        }
        line += '\n';
        return line;
    };

    std::string out = render_row(header_);
    size_t total = 0;
    for (const auto w : widths)
        total += w + 2;
    out += std::string(total > 2 ? total - 2 : total, '-') + '\n';
    for (const auto &row : rows_)
        out += render_row(row);
    return out;
}

std::string
Table::csv() const
{
    auto render_row = [](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            if (c + 1 < row.size())
                line += ',';
        }
        line += '\n';
        return line;
    };
    std::string out = render_row(header_);
    for (const auto &row : rows_)
        out += render_row(row);
    return out;
}

} // namespace rlr::util
