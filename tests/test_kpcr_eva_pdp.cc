/** @file Tests for KPC-R, EVA, and PDP. */

#include <gtest/gtest.h>

#include "policies/eva.hh"
#include "policies/kpc_r.hh"
#include "policies/pdp.hh"
#include "tests/policy_test_util.hh"

using namespace rlr;
using namespace rlr::policies;

TEST(KpcR, NoPc)
{
    KpcRPolicy p;
    EXPECT_FALSE(p.usesPc());
}

TEST(KpcR, PrefetchHitNotFullyPromoted)
{
    KpcRPolicy p;
    p.bind(test::tinyGeometry());
    cache::AccessContext fill;
    fill.set = 0;
    fill.way = 0;
    fill.hit = false;
    fill.type = trace::AccessType::Prefetch;
    p.onAccess(fill);

    cache::AccessContext pf_hit = fill;
    pf_hit.hit = true;
    p.onAccess(pf_hit);
    // Partial promotion: still near-distant, not MRU.
    EXPECT_EQ(p.rrpv(0, 0), 2);

    cache::AccessContext demand_hit = pf_hit;
    demand_hit.type = trace::AccessType::Load;
    p.onAccess(demand_hit);
    EXPECT_EQ(p.rrpv(0, 0), 0);
}

TEST(KpcR, AdaptsInsertionToPhase)
{
    KpcRPolicy p;
    cache::CacheGeometry g;
    g.size_bytes = 2 * 1024 * 1024;
    g.ways = 16;
    p.bind(g);
    // Default: long insertion (not distant).
    EXPECT_FALSE(p.distantSelected());
}

TEST(KpcR, RunsOnTrace)
{
    KpcRPolicy p;
    std::vector<uint64_t> lines;
    for (int rep = 0; rep < 50; ++rep)
        for (uint64_t l = 0; l < 10; ++l)
            lines.push_back(l);
    const auto trace = test::loadTrace(lines);
    ml::OfflineSimulator sim(test::smallOffline(), &trace);
    const auto stats = sim.runPolicy(p);
    EXPECT_GT(stats.hits, 0u);
    EXPECT_EQ(stats.accesses, lines.size());
}

TEST(Eva, ColdStartActsLikeLru)
{
    EvaPolicy p;
    p.bind(test::tinyGeometry());
    // Cold ranking: older age bucket = lower rank.
    EXPECT_LT(p.rank(false, 5), p.rank(false, 1));
    // Not-yet-reused is cheaper to evict than reused at same age.
    EXPECT_LT(p.rank(false, 3), p.rank(true, 3));
}

TEST(Eva, ReusedLinesGainValueAfterUpdate)
{
    EvaConfig cfg;
    cfg.update_interval = 256;
    EvaPolicy p(cfg);
    // Reuse-heavy trace: reused-class EVA at low age should beat
    // the non-reused class.
    std::vector<uint64_t> lines;
    for (int rep = 0; rep < 300; ++rep)
        for (uint64_t l = 0; l < 3; ++l)
            lines.push_back(l);
    const auto trace = test::loadTrace(lines);
    ml::OfflineSimulator sim(test::smallOffline(), &trace);
    const auto stats = sim.runPolicy(p);
    EXPECT_GT(stats.hitRate(), 0.8);
    EXPECT_GE(p.rank(true, 0), p.rank(false, 0));
}

TEST(Pdp, ProtectsUntilDistance)
{
    PdpConfig cfg;
    cfg.initial_pd = 8;
    cfg.allow_bypass = false;
    PdpPolicy p(cfg);
    p.bind(test::tinyGeometry());
    EXPECT_EQ(p.protectingDistance(), 8u);
}

TEST(Pdp, BypassesWhenAllProtected)
{
    PdpConfig cfg;
    cfg.initial_pd = 1000; // everything protected
    cfg.allow_bypass = true;
    PdpPolicy p(cfg);
    p.bind(test::tinyGeometry());
    // Fill the set.
    for (uint32_t w = 0; w < 4; ++w) {
        cache::AccessContext c;
        c.set = 0;
        c.way = w;
        c.hit = false;
        c.type = trace::AccessType::Load;
        p.onAccess(c);
    }
    std::vector<cache::BlockView> blocks(4);
    cache::AccessContext miss;
    miss.set = 0;
    miss.type = trace::AccessType::Load;
    EXPECT_EQ(p.findVictim(miss, blocks),
              cache::ReplacementPolicy::kBypass);
    // Writebacks may not bypass.
    miss.type = trace::AccessType::Writeback;
    EXPECT_NE(p.findVictim(miss, blocks),
              cache::ReplacementPolicy::kBypass);
}

TEST(Pdp, PdAdaptsToReuseDistance)
{
    PdpConfig cfg;
    cfg.update_interval = 512;
    cfg.initial_pd = 200;
    PdpPolicy p(cfg);
    // All reuse at distance 3 (per set): PD should settle near a
    // small value after an update.
    std::vector<uint64_t> lines;
    for (int rep = 0; rep < 400; ++rep)
        for (uint64_t l = 0; l < 3; ++l)
            lines.push_back(l); // set-access distance 3
    const auto trace = test::loadTrace(lines);
    ml::OfflineSimulator sim(test::smallOffline(), &trace);
    sim.runPolicy(p);
    EXPECT_LE(p.protectingDistance(), 16u);
    EXPECT_GE(p.protectingDistance(), 1u);
}
