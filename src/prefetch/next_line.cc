#include "prefetch/next_line.hh"

namespace rlr::prefetch
{

NextLinePrefetcher::NextLinePrefetcher(bool on_miss_only)
    : on_miss_only_(on_miss_only)
{
}

void
NextLinePrefetcher::bind(const cache::CacheGeometry &geom)
{
    (void)geom;
}

void
NextLinePrefetcher::observe(uint64_t pc, uint64_t address, bool hit,
                            std::vector<cache::PrefetchRequest> &out)
{
    (void)pc;
    if (on_miss_only_ && hit)
        return;
    cache::PrefetchRequest req;
    req.address =
        cache::CacheGeometry::lineAddress(address) + cache::kLineBytes;
    req.confidence = 0.5;
    ++proposals_;
    out.push_back(req);
}

} // namespace rlr::prefetch
