/**
 * @file
 * Tests for the observability subsystem (src/obs/): event-log ring
 * wraparound, 1-in-N set sampling, victim metadata exactness,
 * cache integration (incl. bypass reasons), epoch edge cases, and
 * the Chrome trace_event exporter.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "obs/chrome_trace.hh"
#include "obs/epoch.hh"
#include "obs/event_log.hh"
#include "policies/lru.hh"
#include "stats/export.hh"
#include "stats/registry.hh"

using namespace rlr;
using namespace rlr::obs;

namespace
{

trace::LlcAccess
ld(uint64_t addr, uint64_t pc = 0x400)
{
    trace::LlcAccess a;
    a.pc = pc;
    a.address = addr;
    a.type = trace::AccessType::Load;
    a.cpu = 0;
    return a;
}

/** Fixed-latency backing memory. */
class FlatMemory : public cache::MemoryLevel
{
  public:
    uint64_t
    access(const cache::MemRequest &req, uint64_t now) override
    {
        if (req.type == trace::AccessType::Writeback)
            return now;
        return now + 100;
    }
    const std::string &name() const override { return name_; }

  private:
    std::string name_ = "flat";
};

/** Policy stub that bypasses every fill into a full set. */
class BypassAllPolicy : public cache::ReplacementPolicy
{
  public:
    void bind(const cache::CacheGeometry &) override {}
    uint32_t
    findVictim(const cache::AccessContext &,
               std::span<const cache::BlockView>) override
    {
        return kBypass;
    }
    void onAccess(const cache::AccessContext &) override {}
    std::string name() const override { return "bypass-all"; }
    cache::StorageOverhead overhead() const override { return {}; }
    cache::BypassReason
    bypassReason() const override
    {
        return cache::BypassReason::AgeProtected;
    }
};

/** 4-set x 4-way cache for integration tests. */
cache::CacheGeometry
tinyGeom()
{
    cache::CacheGeometry g;
    g.name = "L";
    g.size_bytes = 4 * 4 * 64;
    g.ways = 4;
    g.latency = 10;
    g.mshrs = 8;
    return g;
}

cache::MemRequest
loadReq(uint64_t addr, uint64_t pc = 0x400)
{
    cache::MemRequest r;
    r.address = addr;
    r.pc = pc;
    r.type = trace::AccessType::Load;
    return r;
}

} // namespace

TEST(EventLog, RingWraparoundKeepsNewest)
{
    EventLog log({/*capacity=*/4, /*sample_sets=*/1});
    log.bind(1, 4);
    for (int i = 0; i < 10; ++i)
        log.onHit(0, 0, ld(0x1000), 0);

    EXPECT_EQ(log.recorded(), 10u);
    EXPECT_EQ(log.overwritten(), 6u);
    EXPECT_EQ(log.size(), 4u);

    const EventLogData d = log.data();
    ASSERT_EQ(d.events.size(), 4u);
    // Oldest first, and only the newest four survive.
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(d.events[i].access_no, 7 + i);
    EXPECT_EQ(d.ways, 4u);
}

TEST(EventLog, BelowCapacityKeepsEverything)
{
    EventLog log({8, 1});
    log.bind(1, 2);
    log.onMiss(0);
    log.onFill(0, 0, ld(0x40), 3);
    log.onHit(0, 0, ld(0x40), 5);

    EXPECT_EQ(log.recorded(), 2u); // misses alone are not events
    EXPECT_EQ(log.overwritten(), 0u);
    const EventLogData d = log.data();
    ASSERT_EQ(d.events.size(), 2u);
    EXPECT_EQ(d.events[0].kind, EventKind::Fill);
    EXPECT_EQ(d.events[0].priority, 3u);
    EXPECT_EQ(d.events[1].kind, EventKind::Hit);
    EXPECT_EQ(d.events[1].priority, 5u);
}

TEST(EventLog, SetSamplingRecordsOneInN)
{
    EventLog log({64, /*sample_sets=*/2});
    log.bind(4, 2);
    for (uint32_t set = 0; set < 4; ++set) {
        log.onMiss(set);
        log.onFill(set, 0, ld(set * 64ull), 0);
    }

    // Sets 0 and 2 are sampled; 1 and 3 are counted as skipped.
    EXPECT_EQ(log.recorded(), 2u);
    EXPECT_EQ(log.sampledOut(), 2u);
    const EventLogData d = log.data();
    ASSERT_EQ(d.events.size(), 2u);
    EXPECT_EQ(d.events[0].set, 0u);
    EXPECT_EQ(d.events[1].set, 2u);
    // Heatmap counters still cover every set.
    EXPECT_EQ(d.set_accesses, (std::vector<uint64_t>{1, 1, 1, 1}));
    EXPECT_EQ(d.set_misses, (std::vector<uint64_t>{1, 1, 1, 1}));
}

TEST(EventLog, VictimMetadataExact)
{
    EventLog log({16, 1});
    log.bind(1, 2);

    // acc 1: fill A into way 0.
    log.onMiss(0);
    log.onFill(0, 0, ld(0x1000), 0);
    // acc 2: fill B into way 1.
    log.onMiss(0);
    log.onFill(0, 1, ld(0x2000), 0);
    // acc 3: hit A.
    log.onHit(0, 0, ld(0x1040, 0x999), 0);
    // acc 4: miss C evicts B (the LRU line).
    log.onMiss(0);
    log.onEviction(0, 1, 0x2000, ld(0x3000), 7);
    log.onFill(0, 1, ld(0x3000), 0);
    // acc 5: miss D evicts A (way 0), now the LRU line.
    log.onMiss(0);
    log.onEviction(0, 0, 0x1000, ld(0x4000), 9);
    log.onFill(0, 0, ld(0x4000), 0);

    const EventLogData d = log.data();
    std::vector<Event> evictions;
    for (const Event &ev : d.events)
        if (ev.kind == EventKind::Eviction)
            evictions.push_back(ev);
    ASSERT_EQ(evictions.size(), 2u);

    // B: touched at set-access 2, evicted at 4 -> age 2; no hits;
    // LRU among {A touched at 3} -> recency 0.
    EXPECT_EQ(evictions[0].address, 0x2000u);
    EXPECT_EQ(evictions[0].victim_age, 2u);
    EXPECT_EQ(evictions[0].victim_hits, 0u);
    EXPECT_EQ(evictions[0].victim_recency, 0u);
    EXPECT_EQ(evictions[0].priority, 7u);
    EXPECT_EQ(evictions[0].victim_last_type,
              trace::AccessType::Load);

    // A: touched at 3 (the hit), evicted at 5 -> age 2; one hit;
    // other way holds C touched at 4 -> still recency 0.
    EXPECT_EQ(evictions[1].address, 0x1000u);
    EXPECT_EQ(evictions[1].victim_age, 2u);
    EXPECT_EQ(evictions[1].victim_hits, 1u);
    EXPECT_EQ(evictions[1].victim_recency, 0u);
    EXPECT_EQ(evictions[1].priority, 9u);
}

TEST(EventLog, MruVictimGetsTopRecency)
{
    EventLog log({16, 1});
    log.bind(1, 3);
    log.onMiss(0);
    log.onFill(0, 0, ld(0x1000), 0); // acc 1
    log.onMiss(0);
    log.onFill(0, 1, ld(0x2000), 0); // acc 2
    log.onMiss(0);
    log.onFill(0, 2, ld(0x3000), 0); // acc 3
    // Evict the most recently touched line (way 2).
    log.onMiss(0);
    log.onEviction(0, 2, 0x3000, ld(0x4000), 0);

    const EventLogData d = log.data();
    const Event &ev = d.events.back();
    ASSERT_EQ(ev.kind, EventKind::Eviction);
    EXPECT_EQ(ev.victim_recency, 2u); // two older valid lines
    EXPECT_EQ(ev.victim_age, 1u);
}

TEST(EventLog, ResetClearsEverything)
{
    EventLog log({4, 1});
    log.bind(2, 2);
    for (int i = 0; i < 6; ++i) {
        log.onMiss(0);
        log.onFill(0, 0, ld(0x40), 0);
    }
    ASSERT_GT(log.recorded(), 0u);
    log.reset();
    EXPECT_EQ(log.recorded(), 0u);
    EXPECT_EQ(log.overwritten(), 0u);
    EXPECT_EQ(log.sampledOut(), 0u);
    EXPECT_EQ(log.size(), 0u);
    const EventLogData d = log.data();
    EXPECT_TRUE(d.empty());
    EXPECT_EQ(d.set_accesses, (std::vector<uint64_t>{0, 0}));
}

TEST(EventLog, CacheIntegrationLruOverflow)
{
    FlatMemory mem;
    cache::Cache c(tinyGeom(),
                   std::make_unique<policies::LruPolicy>(), &mem);
    EventLog log({1024, 1});
    c.setEventLog(&log);

    // 12 distinct lines in set 0 (stride = numSets * 64), spaced
    // far apart so no MSHR merges occur: 4 plain fills, then 8
    // eviction+fill pairs.
    uint64_t now = 0;
    for (uint64_t i = 0; i < 12; ++i) {
        c.access(loadReq(i * 4 * 64), now);
        now += 10000;
    }
    // Re-touch the 4 resident lines: 4 hits.
    for (uint64_t i = 8; i < 12; ++i) {
        c.access(loadReq(i * 4 * 64), now);
        now += 10000;
    }

    const EventLogData d = log.data();
    size_t fills = 0, hits = 0, evicts = 0, bypasses = 0;
    for (const Event &ev : d.events) {
        switch (ev.kind) {
          case EventKind::Fill: ++fills; break;
          case EventKind::Hit: ++hits; break;
          case EventKind::Eviction: ++evicts; break;
          case EventKind::Bypass: ++bypasses; break;
        }
    }
    EXPECT_EQ(fills, 12u);
    EXPECT_EQ(hits, 4u);
    EXPECT_EQ(evicts, 8u);
    EXPECT_EQ(bypasses, 0u);
    EXPECT_EQ(d.set_accesses[0], 16u);
    EXPECT_EQ(d.set_misses[0], 12u);

    for (const Event &ev : d.events) {
        if (ev.kind != EventKind::Eviction)
            continue;
        // LRU always evicts the least recent line...
        EXPECT_EQ(ev.victim_recency, 0u);
        EXPECT_EQ(ev.priority, 0u); // ...whose recency rank is 0
        EXPECT_EQ(ev.victim_hits, 0u);
        // Cyclic overflow: filled 4 set-accesses before eviction.
        EXPECT_EQ(ev.victim_age, 4u);
    }

    // Detach: further accesses record nothing.
    const uint64_t before = log.recorded();
    c.setEventLog(nullptr);
    c.access(loadReq(99 * 4 * 64), now);
    EXPECT_EQ(log.recorded(), before);
}

TEST(EventLog, CacheBypassReasonFromPolicy)
{
    FlatMemory mem;
    cache::Cache c(tinyGeom(), std::make_unique<BypassAllPolicy>(),
                   &mem);
    EventLog log({64, 1});
    EpochSampler epoch(1000);
    c.setEventLog(&log);
    c.setEpochSampler(&epoch);

    // Fill set 0's four ways (invalid-way fills need no victim),
    // then one more distinct line: the policy bypasses it.
    uint64_t now = 0;
    for (uint64_t i = 0; i < 5; ++i) {
        c.access(loadReq(i * 4 * 64), now);
        now += 10000;
    }

    const EventLogData d = log.data();
    ASSERT_FALSE(d.events.empty());
    const Event &ev = d.events.back();
    EXPECT_EQ(ev.kind, EventKind::Bypass);
    EXPECT_EQ(ev.reason, cache::BypassReason::AgeProtected);
    EXPECT_EQ(ev.way, kNoWay);
    EXPECT_EQ(epoch.current().bypasses, 1u);
}

TEST(EventLog, DescribeStatsExportsCounters)
{
    EventLog log({2, 1});
    log.bind(1, 1);
    stats::Registry reg;
    log.describeStats(reg, "llc.events");
    for (int i = 0; i < 3; ++i) {
        log.onMiss(0);
        log.onFill(0, 0, ld(0x40), 0);
    }
    EXPECT_EQ(reg.counterValue("llc.events.recorded"), 3u);
    EXPECT_EQ(reg.counterValue("llc.events.overwritten"), 1u);
    EXPECT_EQ(reg.counterValue("llc.events.resident"), 2u);
}

TEST(Epoch, ClosesAtBoundaryAndFlushesTail)
{
    EpochSampler s(4);
    s.bind(1);
    for (int i = 0; i < 10; ++i)
        s.onAccess(0, trace::AccessType::Load, i % 2 == 0);
    EXPECT_EQ(s.epochs(), 2u);
    EXPECT_EQ(s.current().accesses, 2u);
    s.finish();
    EXPECT_EQ(s.epochs(), 3u);
    // finish() is idempotent: no empty fourth epoch.
    s.finish();
    EXPECT_EQ(s.epochs(), 3u);
}

TEST(Epoch, LongerThanRunYieldsOnePartialEpoch)
{
    EpochSampler s(1000);
    s.bind(1);
    for (int i = 0; i < 5; ++i)
        s.onAccess(0, trace::AccessType::Load, false);

    stats::Registry reg;
    s.describeStats(reg, "llc.epoch"); // auto-finishes the tail
    EXPECT_EQ(s.epochs(), 1u);
    EXPECT_EQ(reg.counterValue("llc.epoch.count"), 1u);
    EXPECT_EQ(reg.counterValue("llc.epoch.length"), 1000u);
    EXPECT_EQ(reg.counterValue("llc.epoch.e0_accesses"), 5u);
    EXPECT_EQ(reg.counterValue("llc.epoch.e0_misses"), 5u);
}

TEST(Epoch, ExactMultipleLeavesNoEmptyTail)
{
    EpochSampler s(5);
    s.bind(1);
    for (int i = 0; i < 10; ++i)
        s.onAccess(0, trace::AccessType::Load, true);
    s.finish();
    EXPECT_EQ(s.epochs(), 2u);
}

TEST(Epoch, ProvidersSampledAtBoundaries)
{
    EpochSampler s(2);
    s.bind(1);
    uint64_t occupancy = 0, rd = 0;
    s.setOccupancyProvider([&] { return occupancy; });
    s.setScalarProvider("rd", [&] { return rd; });

    occupancy = 11;
    rd = 3;
    s.onAccess(0, trace::AccessType::Load, false);
    s.onAccess(0, trace::AccessType::Load, false); // closes e0
    occupancy = 22;
    rd = 5;
    s.onAccess(0, trace::AccessType::Prefetch, true);

    stats::Registry reg;
    s.describeStats(reg, "ep");
    EXPECT_EQ(reg.counterValue("ep.e0_occupancy"), 11u);
    EXPECT_EQ(reg.counterValue("ep.e0_rd"), 3u);
    EXPECT_EQ(reg.counterValue("ep.e1_occupancy"), 22u);
    EXPECT_EQ(reg.counterValue("ep.e1_rd"), 5u);
    // Demand/non-demand split.
    EXPECT_EQ(reg.counterValue("ep.e0_demand_accesses"), 2u);
    EXPECT_EQ(reg.counterValue("ep.e1_demand_accesses"), 0u);
}

TEST(Epoch, EvictionAndHeatmapAccounting)
{
    EpochSampler s(100);
    s.bind(4);
    s.onAccess(2, trace::AccessType::Load, false);
    s.onAccess(2, trace::AccessType::Load, true);
    s.onAccess(3, trace::AccessType::Load, false);
    s.onEviction(6);
    s.onEviction(10);

    stats::Registry reg;
    s.describeStats(reg, "ep");
    EXPECT_EQ(reg.counterValue("ep.e0_evictions"), 2u);
    EXPECT_EQ(reg.counterValue("ep.e0_victim_priority_sum"), 16u);

    const stats::Snapshot snap = reg.snapshot();
    const auto *heat = snap.histogram("ep.set_accesses");
    ASSERT_NE(heat, nullptr);
    ASSERT_EQ(heat->buckets.size(), 4u);
    EXPECT_EQ(heat->buckets[2], 2u);
    EXPECT_EQ(heat->buckets[3], 1u);
    const auto *miss = snap.histogram("ep.set_misses");
    ASSERT_NE(miss, nullptr);
    EXPECT_EQ(miss->buckets[2], 1u);
    EXPECT_EQ(miss->buckets[3], 1u);
}

TEST(Epoch, ResetClearsSeries)
{
    EpochSampler s(2);
    s.bind(1);
    for (int i = 0; i < 6; ++i)
        s.onAccess(0, trace::AccessType::Load, false);
    ASSERT_EQ(s.epochs(), 3u);
    s.reset();
    EXPECT_EQ(s.epochs(), 0u);
    EXPECT_EQ(s.current().accesses, 0u);
    stats::Registry reg;
    s.describeStats(reg, "ep");
    EXPECT_EQ(reg.counterValue("ep.count"), 0u);
}

TEST(Epoch, RejectsZeroLength)
{
    EXPECT_DEATH(EpochSampler(0), "epoch");
}

TEST(ChromeTrace, LanePackingFirstFit)
{
    std::vector<TraceSpan> spans(3);
    spans[0] = {"a", "cell", 0, 10, 1, 0, {}};
    spans[1] = {"b", "cell", 5, 5, 1, 0, {}}; // overlaps a -> 1
    spans[2] = {"c", "cell", 12, 3, 1, 0, {}}; // lane 0 again
    assignLanes(spans);
    EXPECT_EQ(spans[0].tid, 0u);
    EXPECT_EQ(spans[1].tid, 1u);
    EXPECT_EQ(spans[2].tid, 0u);
}

TEST(ChromeTrace, ZeroDurationSpansShareLaneZero)
{
    std::vector<TraceSpan> spans(4);
    for (size_t i = 0; i < spans.size(); ++i)
        spans[i] = {"s", "cell", 0, 0, 1, 0, {}};
    assignLanes(spans);
    for (const TraceSpan &s : spans)
        EXPECT_EQ(s.tid, 0u);
}

TEST(ChromeTrace, JsonSchemaRoundTrips)
{
    std::vector<TraceSpan> spans(1);
    spans[0] = {"w/p", "cell", 100, 250, 1, 0,
                {{"workload", "\"w\""}, {"mips", "1.5"}}};
    const std::string json = chromeTraceJson(spans, "sweep");

    const stats::json::Value root = stats::json::parse(json);
    ASSERT_TRUE(root.isObject());
    EXPECT_TRUE(root.find("displayTimeUnit") != nullptr);
    const stats::json::Value *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->array.size(), 2u); // metadata + 1 span

    const stats::json::Value &meta = events->array[0];
    EXPECT_EQ(meta.find("ph")->string, "M");
    EXPECT_EQ(meta.find("name")->string, "process_name");

    const stats::json::Value &ev = events->array[1];
    EXPECT_EQ(ev.find("ph")->string, "X");
    EXPECT_EQ(ev.find("name")->string, "w/p");
    EXPECT_DOUBLE_EQ(ev.find("ts")->number, 100.0);
    EXPECT_DOUBLE_EQ(ev.find("dur")->number, 250.0);
    EXPECT_DOUBLE_EQ(ev.find("args")->find("mips")->number, 1.5);
}
