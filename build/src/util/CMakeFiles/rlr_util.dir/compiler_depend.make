# Empty compiler generated dependencies file for rlr_util.
# This may be replaced when dependencies are built.
