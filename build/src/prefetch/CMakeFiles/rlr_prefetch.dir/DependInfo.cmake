
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefetch/ip_stride.cc" "src/prefetch/CMakeFiles/rlr_prefetch.dir/ip_stride.cc.o" "gcc" "src/prefetch/CMakeFiles/rlr_prefetch.dir/ip_stride.cc.o.d"
  "/root/repo/src/prefetch/kpc_p.cc" "src/prefetch/CMakeFiles/rlr_prefetch.dir/kpc_p.cc.o" "gcc" "src/prefetch/CMakeFiles/rlr_prefetch.dir/kpc_p.cc.o.d"
  "/root/repo/src/prefetch/next_line.cc" "src/prefetch/CMakeFiles/rlr_prefetch.dir/next_line.cc.o" "gcc" "src/prefetch/CMakeFiles/rlr_prefetch.dir/next_line.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rlr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/rlr_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rlr_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rlr_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
