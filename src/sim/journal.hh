/**
 * @file
 * SweepJournal — durable, append-only record of completed sweep
 * cells, enabling crash-safe resume (docs/ROBUSTNESS.md).
 *
 * Layout of a journal directory (one per sweep):
 *
 *   <dir>/header.json            sweep identity: format version,
 *                                master seed, config hash, build
 *   <dir>/cell-<hex16>.json      one record per completed cell,
 *                                named by its spec hash
 *   <dir>/inflight-<hex16>.json  marker for a cell currently
 *                                running (written at attempt
 *                                start, removed by append), so
 *                                `inspect --journal` can show
 *                                stuck cells and their age
 *
 * Every file is written with util::atomicWriteFile (tmp + fsync +
 * rename), so a crash at any instant leaves either no record or a
 * complete one — never a torn write. Records additionally end in
 * an "eor" member so a truncated file (e.g. from a corrupting
 * filesystem) fails to parse and is detected on load.
 *
 * On restart, the runner re-opens the journal: the header must
 * match the current sweep's format version, master seed, and
 * config hash (mismatch = hard error naming the field), while a
 * build-id mismatch only warns. Readable records are served from
 * memory; a corrupt or mismatched record warns with the offending
 * path and the cell simply re-runs.
 *
 * Numeric durability: 64-bit seeds are stored as decimal STRINGS
 * (the JSON reader parses numbers via double, which loses
 * integers above 2^53); simulation counters are far below 2^53
 * and stay plain numbers. Doubles are printed with %.10g, which
 * re-prints stably after a strtod round trip, so a resumed
 * sweep's export is byte-identical to an uninterrupted one.
 */

#ifndef RLR_SIM_JOURNAL_HH
#define RLR_SIM_JOURNAL_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/sweep_runner.hh"

namespace rlr::sim
{

/** Journal format version (bump on incompatible layout change). */
constexpr uint32_t kJournalVersion = 1;

/**
 * Journal SCHEMA version: the layout of the record documents
 * themselves (header members, cell members, lease/fence files).
 * Headers written before the schema member existed parse as
 * schema 1. Resume across schema versions is a hard error — a
 * silent mismatch would re-run (and re-bill) every cell.
 *
 * History: 1 = PR 5 layout; 2 = distributed sweeps (writer
 * identity in the header, lease-/fence- files in the directory).
 */
constexpr uint32_t kJournalSchema = 2;

/** Identity of the sweep a journal belongs to. */
struct JournalHeader
{
    uint32_t version = kJournalVersion;
    /** Record-document schema (kJournalSchema; missing = 1). */
    uint32_t schema = kJournalSchema;
    uint64_t master_seed = 0;
    /** sweepConfigHash() of the SimParams + full spec list. */
    uint64_t config_hash = 0;
    /** Toolchain/build id (git describe); mismatch only warns. */
    std::string build;
    /** Identity of the process that created the journal, e.g.
     *  "rlr_bench pid 1234" — informational, never verified. */
    std::string writer;
    /** Cells in the sweep (redundant with config_hash; makes
     *  "different sweep" errors self-explanatory). */
    uint64_t n_cells = 0;
};

/**
 * Hash of everything that determines a sweep's results: the
 * SimParams knobs that feed every cell plus the ordered spec
 * list. Two sweeps with equal config hashes and equal master
 * seeds produce identical cells.
 */
uint64_t
sweepConfigHash(const SimParams &params,
                const std::vector<SweepRunner::CellSpec> &specs);

/** Durable per-cell record store for one sweep. */
class SweepJournal
{
  public:
    /**
     * Open (or create) the journal at @p dir for the sweep
     * identified by @p expect. A fresh directory gets a header;
     * an existing one is verified and its readable cell records
     * are loaded.
     *
     * @throws std::runtime_error when the directory belongs to a
     *   different sweep (version / master seed / config hash /
     *   cell count mismatch) or the header is unreadable
     */
    SweepJournal(std::string dir, const JournalHeader &expect);

    /** Identity hash of one cell (names its record file). */
    static uint64_t specHash(const SweepRunner::CellSpec &spec,
                             uint64_t seed);

    /**
     * Fetch the journaled outcome of a cell, verifying that the
     * record's workload/policy/seed match @p spec (a mismatched
     * record warns and reports absent). @return true when found.
     */
    bool load(uint64_t spec_hash, const SweepRunner::CellSpec &spec,
              uint64_t seed, SweepCell &out) const;

    /**
     * Like load(), but re-reads the record from DISK instead of
     * the in-memory snapshot taken at open. Distributed sweeps
     * use this to merge cells that other workers committed after
     * this process opened the journal. @return true when a
     * readable, matching record exists.
     */
    bool reload(uint64_t spec_hash,
                const SweepRunner::CellSpec &spec, uint64_t seed,
                SweepCell &out) const;

    /**
     * Durably record a completed cell (atomic write + fsync).
     * Thread-safe for distinct cells — each spec hash names its
     * own file. With @p corrupt the record is deliberately
     * truncated mid-document (fault injection for the corrupt-
     * record recovery path).
     */
    void append(uint64_t spec_hash, const SweepCell &cell,
                bool corrupt = false) const;

    /**
     * Drop an in-flight marker for a cell attempt that is about
     * to run. The marker (named by spec hash, age readable from
     * its mtime) is removed when append() records the outcome; a
     * marker that outlives the sweep marks the cell a crash took
     * down mid-run. Failures only warn — liveness breadcrumbs
     * must never fail a sweep.
     */
    void markInFlight(uint64_t spec_hash,
                      const SweepRunner::CellSpec &spec,
                      uint32_t attempt) const;

    /**
     * Remove in-flight markers whose mtime is older than
     * @p ttl_s — breadcrumbs of attempts a crashed worker never
     * finished. Markers for cells that already have a record are
     * reaped regardless of age. @return markers removed (counted
     * in `sweep.reaped_markers`).
     */
    size_t reapStaleMarkers(double ttl_s) const;

    /** Records loaded from disk at open. */
    size_t loadedRecords() const { return records_.size(); }

    const std::string &dir() const { return dir_; }

    /** One cell record as JSON (layout documented on load). */
    static std::string cellToJson(const SweepCell &cell);

    /**
     * Parse a cell record.
     * @throws std::runtime_error on malformed input
     */
    static SweepCell cellFromJson(const std::string &text);

    static std::string headerToJson(const JournalHeader &header);
    static JournalHeader headerFromJson(const std::string &text);

    /**
     * Human-readable summary of a journal directory (header
     * identity plus per-record status), for `inspect --journal`.
     * Unreadable records are listed, not fatal.
     */
    static std::string summarize(const std::string &dir);

  private:
    std::string dir_;
    JournalHeader header_;
    /** spec hash -> journaled cell, loaded at open. */
    std::map<uint64_t, SweepCell> records_;
};

} // namespace rlr::sim

#endif // RLR_SIM_JOURNAL_HH
