/**
 * @file
 * Reinforcement Learned Replacement (RLR) — the paper's primary
 * contribution (Section IV).
 *
 * RLR is a hand-crafted policy distilled from an RL agent's
 * learned behaviour. Each line carries an Age Counter, a Hit
 * Register, and a Type Register. A predicted reuse distance RD is
 * maintained as 2x the average preuse distance accumulated over 32
 * demand hits. On a miss the victim is the line with the lowest
 * priority
 *
 *     P_line = 8 * P_age + P_type + P_hit  (+ P_core, multicore)
 *
 * where P_age = 1 iff the line's age has not reached RD, P_type =
 * 1 iff the last access was not a prefetch, and P_hit = 1 iff the
 * line has been hit. Ties break toward the most recently used
 * line. RLR never reads the program counter.
 *
 * Two hardware variants are modeled exactly as in Section IV-C:
 * the unoptimized policy (5-bit age in set accesses, 2-bit hit
 * counter; 10 bits/line, 40KB @ 2MB) and the optimized policy
 * (2-bit age advanced every 8 set misses via a 3-bit per-set
 * counter, 1-bit hit register, recency approximated by age == 0;
 * 4 bits/line + 3 bits/set, 16.75KB @ 2MB).
 */

#ifndef RLR_CORE_RLR_HH
#define RLR_CORE_RLR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/replacement.hh"

namespace rlr::core
{

/** Tunable parameters of RLR (defaults = the paper's). */
struct RlrConfig
{
    /**
     * Apply the Section IV-C overhead optimizations (2-bit age
     * counting groups of 8 set misses, 1-bit hit register, recency
     * approximated by age). False = RLR(unopt).
     */
    bool optimized = true;

    /** Age counter bits (2 optimized, 5 unoptimized). */
    unsigned age_bits = 2;
    /** Set misses per age tick (optimized variant only). */
    unsigned age_tick_misses = 8;
    /** Hit state bits (1 = register, 2 = counter in unopt). */
    unsigned hit_bits = 1;

    /** Demand hits accumulated per RD update (power of two). */
    unsigned rd_update_hits = 32;
    /**
     * RD = rd_multiplier x average preuse distance. The paper
     * specifies 2x in set-access units (the unoptimized design);
     * the optimized variant measures preuse in set-miss units,
     * where one miss ~ two accesses on our traces, so the
     * equivalent default is 4 (still a single shift in hardware).
     */
    unsigned rd_multiplier = 4;

    /** Ablations (Section V-B): disable P_hit / P_type. */
    bool use_hit_priority = true;
    bool use_type_priority = true;
    /** Weight of P_age in the priority sum. */
    unsigned age_weight = 8;

    /** Bypass fills when every line is still age-protected. */
    bool allow_bypass = false;

    /** Multicore extension (Section IV-D): add P_core. */
    bool multicore = false;
    unsigned num_cores = 4;
    /** LLC accesses between core-priority updates. */
    uint64_t core_update_interval = 2000;

    /** @return the paper's unoptimized configuration. */
    static RlrConfig unoptimized();
    /** @return the multicore configuration for @p cores cores. */
    static RlrConfig forMulticore(unsigned cores);
};

/** The RLR replacement policy. */
class RlrPolicy : public cache::ReplacementPolicy
{
  public:
    explicit RlrPolicy(RlrConfig config = {});

    void bind(const cache::CacheGeometry &geom) override;
    uint32_t
    findVictim(const cache::AccessContext &ctx,
               std::span<const cache::BlockView> blocks) override;
    void onAccess(const cache::AccessContext &ctx) override;
    void verifyInvariants(
        uint32_t set,
        std::span<const cache::BlockView> blocks) const override;
    std::string name() const override;
    cache::StorageOverhead overhead() const override;
    void describeStats(stats::Registry &reg,
                       const std::string &prefix) override;

    /** Current predicted reuse distance (age-counter units). */
    uint64_t reuseDistance() const { return rd_; }

    /** Per-line priority as computed for victim selection (tests). */
    uint64_t linePriority(uint32_t set, uint32_t way) const;

    /** Observational priority = the P_line sum (event log). */
    uint64_t
    victimPriority(uint32_t set, uint32_t way) const override
    {
        return linePriority(set, way);
    }

    /** RLR only bypasses when every line is age-protected. */
    cache::BypassReason
    bypassReason() const override
    {
        return cache::BypassReason::AgeProtected;
    }

    /** Core priority level for @p cpu (multicore extension). */
    unsigned corePriority(uint8_t cpu) const;

    const RlrConfig &config() const { return config_; }

  private:
    struct LineState
    {
        /** Age counter (saturating; units depend on variant). */
        uint32_t age = 0;
        /** Hit register/counter value. */
        uint32_t hits = 0;
        /** True when the last access was a prefetch. */
        bool last_was_prefetch = false;
        /** Exact recency timestamp (unoptimized variant only). */
        uint64_t last_use = 0;
        /** Issuing core of the last access (multicore). */
        uint8_t cpu = 0;
    };

    LineState &line(uint32_t set, uint32_t way);
    const LineState &line(uint32_t set, uint32_t way) const;

    /** Line age converted to RD's units (scaled when optimized). */
    uint64_t ageUnits(const LineState &ls) const;

    /** Advance per-line ages for one access to @p set. */
    void ageSet(uint32_t set, bool miss);

    /** Accumulate a demand-hit preuse sample; maybe refresh RD. */
    void samplePreuse(uint32_t preuse);

    void updateCorePriorities();

    RlrConfig config_;
    uint32_t ways_ = 0;
    uint32_t num_sets_ = 0;
    uint32_t age_max_ = 3;
    uint32_t hit_max_ = 1;

    std::vector<LineState> lines_;
    /** 3-bit per-set miss counters (optimized variant). */
    std::vector<uint8_t> set_miss_ctr_;

    /** Predicted reuse distance in age-counter units. */
    uint64_t rd_ = 1;
    uint64_t preuse_accum_ = 0;
    unsigned preuse_samples_ = 0;

    uint64_t clock_ = 0;
    uint64_t accesses_ = 0;

    /** Multicore state. */
    std::vector<uint64_t> core_demand_hits_;
    std::vector<unsigned> core_priority_;
};

} // namespace rlr::core

#endif // RLR_CORE_RLR_HH
