/** @file Unit tests for util/thread_pool.hh. */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "util/thread_pool.hh"

using rlr::util::ThreadPool;

TEST(ThreadPool, SubmitReturnsResult)
{
    ThreadPool pool(2);
    auto fut = pool.submit([] { return 21 * 2; });
    EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ManyTasksAllRun)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 200; ++i)
        futs.push_back(pool.submit([&] { ++counter; }));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, WaitIdleDrains)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int i = 0; i < 50; ++i)
        pool.submit([&] { ++counter; });
    pool.waitIdle();
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    std::vector<int> hits(1000, 0);
    ThreadPool::parallelFor(hits.size(), 8,
                            [&](size_t i) { hits[i] += 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
    for (const auto h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForSingleThreadFallback)
{
    std::vector<int> hits(10, 0);
    ThreadPool::parallelFor(hits.size(), 1,
                            [&](size_t i) { hits[i] += 1; });
    for (const auto h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForEmpty)
{
    // Must not hang or crash.
    ThreadPool::parallelFor(0, 4, [](size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForRethrowsFirstException)
{
    // A throwing task used to escape the worker thread and call
    // std::terminate; it must surface on join instead.
    std::atomic<int> ran{0};
    try {
        ThreadPool::parallelFor(64, 4, [&](size_t i) {
            if (i == 5)
                throw std::runtime_error("cell 5 exploded");
            ++ran;
        });
        FAIL() << "expected the task exception to propagate";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "cell 5 exploded");
    }
    // Iterations started before the failure still completed; the
    // pool may skip unstarted ones but must never run index 5's
    // body past the throw.
    EXPECT_GE(ran.load(), 1);
    EXPECT_LE(ran.load(), 63);
}

TEST(ThreadPool, ParallelForSingleThreadPropagates)
{
    std::atomic<int> ran{0};
    EXPECT_THROW(ThreadPool::parallelFor(10, 1,
                                         [&](size_t i) {
                                             if (i == 3)
                                                 throw std::
                                                     logic_error(
                                                         "boom");
                                             ++ran;
                                         }),
                 std::logic_error);
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, ParallelForAggregatesConcurrentFailures)
{
    // Two workers throw simultaneously: neither message may be
    // dropped. Both tasks rendezvous before throwing, so both are
    // in flight when the first failure is recorded.
    std::atomic<int> arrived{0};
    try {
        ThreadPool::parallelFor(2, 2, [&](size_t i) {
            arrived.fetch_add(1);
            while (arrived.load() < 2) {
            }
            throw std::runtime_error("worker " +
                                     std::to_string(i) +
                                     " exploded");
        });
        FAIL() << "expected an aggregated exception";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("2 worker tasks failed"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("worker 0 exploded"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("worker 1 exploded"),
                  std::string::npos)
            << what;
    }
}

TEST(ThreadPool, ParallelForNonStdExceptionPropagates)
{
    EXPECT_THROW(ThreadPool::parallelFor(
                     8, 2, [](size_t i) {
                         if (i == 0)
                             throw 42; // not derived from std::exception
                     }),
                 int);
}
