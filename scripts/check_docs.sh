#!/usr/bin/env bash
# Docs drift checker (wired into ctest as `check_docs`).
#
# Fails when:
#   1. a PolicyFactory policy is missing from docs/POLICIES.md;
#   2. a bench/tools binary is not mentioned in README.md;
#   3. README.md references a build/<dir>/<name> binary that no
#      CMakeLists defines;
#   4. a shared bench flag (bench/common.hh) is absent from
#      README.md;
#   5. a required doc file is missing;
#   6. a fuzz_policies flag (tools/fuzz_policies.cc) is absent
#      from docs/TESTING.md, or the test scripts are undocumented;
#   7. a tools/inspect flag is absent from docs/OBSERVABILITY.md,
#      or the llc.epoch.* / llc.events.* stat families are
#      undocumented there;
#   8. the robustness layer (docs/ROBUSTNESS.md) is out of sync:
#      a sweep robustness flag, a FaultPlan kind, a sweep.*
#      counter, or the crash-resume harness is undocumented.
#   9. the perf trajectory (docs/PERFORMANCE.md) is out of sync:
#      a bench/sim_throughput flag, the BENCH_sim_throughput.json
#      export, the CI hook, or the ctest guard is undocumented.
#
# Pure grep/sed over the sources: runs without a compiler, so it
# can gate doc-only changes too. Run from the repository root.

set -u

cd "$(dirname "$0")/.." || exit 1

fail=0
err() {
    echo "check_docs: $*" >&2
    fail=1
}

for f in README.md docs/POLICIES.md docs/ARCHITECTURE.md \
         docs/TESTING.md docs/OBSERVABILITY.md \
         docs/ROBUSTNESS.md docs/PERFORMANCE.md EXPERIMENTS.md; do
    [ -f "$f" ] || err "required doc '$f' is missing"
done
[ "$fail" -eq 0 ] || exit 1

# --- 1. every factory policy is documented --------------------------
# The authoritative list is the knownPolicies() initializer in
# policy_factory.cc; docs/POLICIES.md must name each as `Name`.
policies=$(sed -n '/^knownPolicies/,/^}/p' \
               src/core/policy_factory.cc |
           grep -o '"[^"]*"' | tr -d '"')
[ -n "$policies" ] ||
    err "could not extract knownPolicies() from policy_factory.cc"
for p in $policies; do
    grep -qF "\`$p\`" docs/POLICIES.md ||
        err "policy '$p' is not documented in docs/POLICIES.md"
done

# --- 2. every binary is mentioned in README.md ----------------------
bench_targets=$(grep -o 'rlr_add_bench([A-Za-z0-9_]*' \
                    bench/CMakeLists.txt | sed 's/.*(//')
extra_targets=$(grep -o 'add_executable([A-Za-z0-9_]*' \
                    bench/CMakeLists.txt tools/CMakeLists.txt |
                sed 's/.*(//')
for t in $bench_targets $extra_targets; do
    grep -q "\b$t\b" README.md ||
        err "binary '$t' is not mentioned in README.md"
done

# --- 3. README build/<dir>/<name> references exist ------------------
refs=$(grep -o 'build/[a-z]*/[A-Za-z0-9_]*' README.md | sort -u)
for ref in $refs; do
    dir=$(echo "$ref" | cut -d/ -f2)
    name=$(echo "$ref" | cut -d/ -f3)
    cmakelists="$dir/CMakeLists.txt"
    [ -f "$cmakelists" ] || {
        err "README references '$ref' but $cmakelists not found"
        continue
    }
    grep -q "\b$name\b" "$cmakelists" ||
        err "README references '$ref' but '$name' is not a" \
            "target in $cmakelists"
done

# --- 4. shared bench flags are documented ---------------------------
flags=$(grep -o 'add\(Option\|Flag\)("[a-z-]*"' bench/common.hh |
        sed 's/.*("//; s/"//')
for f in $flags; do
    grep -q -- "--$f" README.md ||
        err "shared bench flag '--$f' (bench/common.hh) is not" \
            "documented in README.md"
done

# --- 6. the verification harness is documented ----------------------
# Every fuzz_policies CLI flag must appear in docs/TESTING.md, and
# the test-infrastructure scripts must be referenced there.
fuzz_flags=$(grep -o 'add\(Option\|Flag\)("[a-z-]*"' \
                 tools/fuzz_policies.cc | sed 's/.*("//; s/"//')
[ -n "$fuzz_flags" ] ||
    err "could not extract flags from tools/fuzz_policies.cc"
for f in $fuzz_flags; do
    grep -q -- "--$f" docs/TESTING.md ||
        err "fuzz_policies flag '--$f' is not documented in" \
            "docs/TESTING.md"
done
for s in scripts/ci.sh scripts/update_golden.sh; do
    grep -q "$s" docs/TESTING.md ||
        err "'$s' is not referenced in docs/TESTING.md"
done
grep -q "RLR_VERIFY" docs/TESTING.md ||
    err "the RLR_VERIFY invariant toggle is not documented in" \
        "docs/TESTING.md"

# --- 7. the observability layer is documented -----------------------
# Every tools/inspect CLI flag must appear in
# docs/OBSERVABILITY.md, along with the stat families and the
# e2e golden script.
inspect_flags=$(grep -o 'add\(Option\|Flag\)("[a-z-]*"' \
                    tools/inspect.cc | sed 's/.*("//; s/"//')
[ -n "$inspect_flags" ] ||
    err "could not extract flags from tools/inspect.cc"
for f in $inspect_flags; do
    grep -q -- "--$f" docs/OBSERVABILITY.md ||
        err "inspect flag '--$f' is not documented in" \
            "docs/OBSERVABILITY.md"
done
for needle in "llc.epoch." "llc.events." scripts/inspect_e2e.sh \
              "obs.prof." "obs.res." rlr-heartbeat \
              scripts/heartbeat_e2e.sh PROF_tier1.json \
              RLR_PROF_SCOPE; do
    grep -q "$needle" docs/OBSERVABILITY.md ||
        err "'$needle' is not documented in docs/OBSERVABILITY.md"
done

# --- 8. the robustness layer is documented --------------------------
# The sweep robustness flags, every FaultPlan kind (the
# authoritative list is faultKindName() in fault_plan.cc), the
# sweep.* counters, and the crash-resume harness must all appear
# in docs/ROBUSTNESS.md.
for f in journal cell-timeout cell-retries faults \
         workers join worker-id lease-ttl; do
    grep -q -- "--$f" docs/ROBUSTNESS.md ||
        err "robustness flag '--$f' is not documented in" \
            "docs/ROBUSTNESS.md"
done
fault_kinds=$(sed -n '/^faultKindName/,/^}/p' \
                  src/sim/fault_plan.cc |
              grep -o 'return "[a-z-]*"' | sed 's/return "//; s/"//' |
              grep -v '^none$')
[ -n "$fault_kinds" ] ||
    err "could not extract fault kinds from fault_plan.cc"
for k in $fault_kinds; do
    grep -q "\`$k\`" docs/ROBUSTNESS.md ||
        err "fault kind '$k' is not documented in" \
            "docs/ROBUSTNESS.md"
done
for c in completed_cells resumed_cells retries timeouts \
         failed_cells cancelled_cells merged_cells \
         lease_steals fenced_commits reaped_markers; do
    grep -q "sweep.$c" docs/ROBUSTNESS.md ||
        err "counter 'sweep.$c' is not documented in" \
            "docs/ROBUSTNESS.md"
done
for s in scripts/crash_resume_e2e.sh scripts/dist_sweep_e2e.sh; do
    grep -q "$s" docs/ROBUSTNESS.md ||
        err "'$s' is not referenced in docs/ROBUSTNESS.md"
done

# --- 9. the perf trajectory is documented ---------------------------
# Every bench/sim_throughput CLI flag must appear in
# docs/PERFORMANCE.md, along with the JSON export's name, the CI
# hook that writes it, and the ctest speedup guard.
st_flags=$(grep -o 'add\(Option\|Flag\)("[a-z-]*"' \
               bench/sim_throughput.cc | sed 's/.*("//; s/"//')
[ -n "$st_flags" ] ||
    err "could not extract flags from bench/sim_throughput.cc"
for f in $st_flags; do
    grep -q -- "--$f" docs/PERFORMANCE.md ||
        err "sim_throughput flag '--$f' is not documented in" \
            "docs/PERFORMANCE.md"
done
for needle in BENCH_sim_throughput.json scripts/ci.sh \
              sim_throughput_guard setForceGenericDispatch \
              phase_self_ns; do
    grep -q "$needle" docs/PERFORMANCE.md ||
        err "'$needle' is not documented in docs/PERFORMANCE.md"
done

if [ "$fail" -ne 0 ]; then
    echo "check_docs: FAILED (see messages above)" >&2
    exit 1
fi
echo "check_docs: OK"
