# Empty dependencies file for rlr_cache.
# This may be replaced when dependencies are built.
