file(REMOVE_RECURSE
  "CMakeFiles/rl_exploration.dir/rl_exploration.cpp.o"
  "CMakeFiles/rl_exploration.dir/rl_exploration.cpp.o.d"
  "rl_exploration"
  "rl_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
