/**
 * @file
 * Event-log serialization: one JSON document carrying the event
 * logs of every cell of a sweep, written by the bench harnesses
 * (--events) and consumed by tools/inspect and tests.
 *
 * Layout (version 1):
 *
 *   {
 *     "version": 1,
 *     "cells": [
 *       { "workload": "...", "policy": "...", "seed": N,
 *         "capacity": N, "sample_sets": N, "ways": N,
 *         "recorded": N, "overwritten": N, "sampled_out": N,
 *         "set_accesses": [N, ...], "set_misses": [N, ...],
 *         "events": [ [access_no, kind, type, set, way,
 *                      address, pc, cpu, priority, victim_age,
 *                      victim_hits, victim_recency,
 *                      victim_last_type, reason], ... ] }, ... ]
 *   }
 *
 * Events are compact 14-integer rows (order above, enums by
 * value; see docs/OBSERVABILITY.md) so a 64k-event log stays a
 * few MB. All fields are integers, so same-seed exports are
 * byte-identical.
 */

#ifndef RLR_OBS_EVENTS_IO_HH
#define RLR_OBS_EVENTS_IO_HH

#include <string>
#include <vector>

#include "obs/event_log.hh"

namespace rlr::obs
{

/** One sweep cell's event log, with its identifying labels. */
struct CellEvents
{
    std::string workload;
    std::string policy;
    uint64_t seed = 0;
    EventLogData log;
};

/** Serialize cell logs (layout documented above). */
std::string eventsToJson(const std::vector<CellEvents> &cells);

/**
 * Rebuild cell logs from eventsToJson() output.
 * @throws std::runtime_error on malformed input (bad version,
 *         wrong row arity, out-of-range enum values)
 */
std::vector<CellEvents> eventsFromJson(const std::string &text);

/** Write eventsToJson() to @p path; fatal() on I/O failure. */
void writeEvents(const std::string &path,
                 const std::vector<CellEvents> &cells);

/**
 * Read and parse an events file.
 * @throws std::runtime_error on I/O or parse failure
 */
std::vector<CellEvents> readEvents(const std::string &path);

} // namespace rlr::obs

#endif // RLR_OBS_EVENTS_IO_HH
