/** @file Tests for SRRIP / BRRIP / DRRIP. */

#include <gtest/gtest.h>

#include "policies/lru.hh"
#include "policies/rrip.hh"
#include "tests/policy_test_util.hh"

using namespace rlr;
using namespace rlr::policies;

namespace
{

cache::AccessContext
ctxAt(uint32_t set, uint32_t way, bool hit)
{
    cache::AccessContext c;
    c.set = set;
    c.way = way;
    c.hit = hit;
    c.type = trace::AccessType::Load;
    return c;
}

} // namespace

TEST(Srrip, InsertionAndPromotion)
{
    SrripPolicy p;
    p.bind(test::tinyGeometry());
    p.onAccess(ctxAt(0, 2, false));
    EXPECT_EQ(p.rrpv(0, 2), 2); // long re-reference on insert
    p.onAccess(ctxAt(0, 2, true));
    EXPECT_EQ(p.rrpv(0, 2), 0); // promoted on hit
}

TEST(Srrip, VictimIsDistant)
{
    SrripPolicy p;
    p.bind(test::tinyGeometry());
    // Fill 4 ways; all at RRPV 2.
    for (uint32_t w = 0; w < 4; ++w)
        p.onAccess(ctxAt(0, w, false));
    // Promote way 1.
    p.onAccess(ctxAt(0, 1, true));

    std::vector<cache::BlockView> blocks(4);
    cache::AccessContext miss;
    miss.set = 0;
    const uint32_t victim = p.findVictim(miss, blocks);
    EXPECT_NE(victim, 1u); // the promoted line survives aging
    // Aging must have pushed someone to max RRPV.
    EXPECT_EQ(p.rrpv(0, victim), 3);
}

TEST(Srrip, AgingPreservesOrder)
{
    SrripPolicy p;
    p.bind(test::tinyGeometry());
    for (uint32_t w = 0; w < 4; ++w)
        p.onAccess(ctxAt(0, w, false));
    p.onAccess(ctxAt(0, 0, true)); // rrpv 0
    std::vector<cache::BlockView> blocks(4);
    cache::AccessContext miss;
    miss.set = 0;
    p.findVictim(miss, blocks);
    // After aging to find a victim, way 0 is still the youngest.
    EXPECT_LT(p.rrpv(0, 0), p.rrpv(0, 2));
}

TEST(Brrip, MostlyDistantInsertion)
{
    BrripPolicy p(2, 11);
    p.bind(test::tinyGeometry());
    int distant = 0;
    const int n = 640;
    for (int i = 0; i < n; ++i) {
        p.onAccess(ctxAt(static_cast<uint32_t>(i % 4),
                         static_cast<uint32_t>(i % 4), false));
        distant += p.rrpv(i % 4, i % 4) == 3;
    }
    // ~31/32 distant.
    EXPECT_GT(distant, n * 9 / 10);
    EXPECT_LT(distant, n); // but not all
}

TEST(Drrip, LeaderSetsAssigned)
{
    DrripPolicy p;
    cache::CacheGeometry g;
    g.size_bytes = 2 * 1024 * 1024;
    g.ways = 16;
    p.bind(g);
    int srrip = 0, brrip = 0, followers = 0;
    for (uint32_t s = 0; s < g.numSets(); ++s) {
        switch (p.setRole(s)) {
          case DrripPolicy::SetRole::SrripLeader:
            ++srrip;
            break;
          case DrripPolicy::SetRole::BrripLeader:
            ++brrip;
            break;
          case DrripPolicy::SetRole::Follower:
            ++followers;
            break;
        }
    }
    EXPECT_EQ(srrip, 32);
    EXPECT_EQ(brrip, 32);
    EXPECT_EQ(followers, static_cast<int>(g.numSets()) - 64);
}

TEST(Drrip, DuelingSteersPsel)
{
    DrripPolicy p;
    cache::CacheGeometry g;
    g.size_bytes = 2 * 1024 * 1024;
    g.ways = 16;
    p.bind(g);
    // Find an SRRIP leader and hammer it with misses: PSEL should
    // drift toward BRRIP.
    uint32_t srrip_leader = 0;
    for (uint32_t s = 0; s < g.numSets(); ++s) {
        if (p.setRole(s) == DrripPolicy::SetRole::SrripLeader) {
            srrip_leader = s;
            break;
        }
    }
    EXPECT_FALSE(p.brripSelected());
    for (int i = 0; i < 600; ++i)
        p.onAccess(ctxAt(srrip_leader, 0, false));
    EXPECT_TRUE(p.brripSelected());
}

TEST(Brrip, RetainsSubsetOnThrash)
{
    // Cyclic working set larger than one set: LRU/SRRIP-style
    // recency gets zero hits; BRRIP's bimodal insertion keeps a
    // lucky subset resident, which then hits every cycle.
    std::vector<uint64_t> lines;
    for (int rep = 0; rep < 200; ++rep)
        for (uint64_t l = 0; l < 6; ++l)
            lines.push_back(l * 16); // one set, 6 lines, 4 ways
    const auto trace = test::loadTrace(lines);
    ml::OfflineSimulator sim(test::smallOffline(), &trace);

    LruPolicy lru;
    const auto base = sim.runPolicy(lru);
    EXPECT_EQ(base.hits, 0u);
    BrripPolicy brrip(2, 7);
    const auto b = sim.runPolicy(brrip);
    EXPECT_GT(b.hits, 20u);
}

TEST(Rrip, OverheadScalesWithBits)
{
    SrripPolicy p2(2);
    SrripPolicy p3(3);
    cache::CacheGeometry g;
    g.size_bytes = 2 * 1024 * 1024;
    g.ways = 16;
    p2.bind(g);
    p3.bind(g);
    EXPECT_NEAR(p2.overhead().totalKiB(g), 8.0, 0.01);
    EXPECT_NEAR(p3.overhead().totalKiB(g), 12.0, 0.01);
}
