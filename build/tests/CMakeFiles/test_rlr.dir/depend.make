# Empty dependencies file for test_rlr.
# This may be replaced when dependencies are built.
