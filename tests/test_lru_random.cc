/** @file Tests for the LRU and Random policies. */

#include <gtest/gtest.h>

#include "policies/lru.hh"
#include "policies/random.hh"
#include "tests/policy_test_util.hh"

using namespace rlr;
using namespace rlr::policies;

namespace
{

cache::AccessContext
touch(uint32_t set, uint32_t way, bool hit = true)
{
    cache::AccessContext ctx;
    ctx.set = set;
    ctx.way = way;
    ctx.hit = hit;
    ctx.type = trace::AccessType::Load;
    return ctx;
}

} // namespace

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy lru;
    lru.bind(test::tinyGeometry());
    for (uint32_t w = 0; w < 4; ++w)
        lru.onAccess(touch(0, w, false));
    // Way 0 is oldest.
    std::vector<cache::BlockView> blocks(4);
    cache::AccessContext miss;
    miss.set = 0;
    EXPECT_EQ(lru.findVictim(miss, blocks), 0u);

    // Touch way 0; way 1 becomes LRU.
    lru.onAccess(touch(0, 0));
    EXPECT_EQ(lru.findVictim(miss, blocks), 1u);
}

TEST(Lru, RecencyRankConsistent)
{
    LruPolicy lru;
    lru.bind(test::tinyGeometry());
    for (uint32_t w = 0; w < 4; ++w)
        lru.onAccess(touch(1, w, false));
    EXPECT_EQ(lru.recencyRank(1, 0), 0u); // LRU
    EXPECT_EQ(lru.recencyRank(1, 3), 3u); // MRU
}

TEST(Lru, SetsAreIndependent)
{
    LruPolicy lru;
    lru.bind(test::tinyGeometry());
    for (uint32_t w = 0; w < 4; ++w) {
        lru.onAccess(touch(0, w, false));
        lru.onAccess(touch(1, 3 - w, false));
    }
    std::vector<cache::BlockView> blocks(4);
    cache::AccessContext m0;
    m0.set = 0;
    cache::AccessContext m1;
    m1.set = 1;
    EXPECT_EQ(lru.findVictim(m0, blocks), 0u);
    EXPECT_EQ(lru.findVictim(m1, blocks), 3u);
}

TEST(Lru, LruStackPropertyOnCyclicTrace)
{
    // An N+1-line cyclic access over an N-way set yields zero
    // hits under LRU (classic worst case).
    LruPolicy lru;
    std::vector<uint64_t> lines;
    for (int rep = 0; rep < 20; ++rep)
        for (uint64_t l = 0; l < 5; ++l)
            lines.push_back(l * 16); // same set (16 sets)
    const auto trace = test::loadTrace(lines);
    ml::OfflineSimulator osim(test::smallOffline(), &trace);
    const auto stats = osim.runPolicy(lru);
    EXPECT_EQ(stats.hits, 0u);
}

TEST(Lru, OverheadMatchesPaper)
{
    LruPolicy lru;
    cache::CacheGeometry g;
    g.size_bytes = 2 * 1024 * 1024;
    g.ways = 16;
    lru.bind(g);
    EXPECT_NEAR(lru.overhead().totalKiB(g), 16.0, 0.01);
}

TEST(RandomPolicyTest, Deterministic)
{
    RandomPolicy a(5), b(5);
    a.bind(test::tinyGeometry());
    b.bind(test::tinyGeometry());
    std::vector<cache::BlockView> blocks(4);
    cache::AccessContext ctx;
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.findVictim(ctx, blocks),
                  b.findVictim(ctx, blocks));
}

TEST(RandomPolicyTest, CoversAllWays)
{
    RandomPolicy p(9);
    p.bind(test::tinyGeometry());
    std::vector<cache::BlockView> blocks(4);
    cache::AccessContext ctx;
    std::set<uint32_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(p.findVictim(ctx, blocks));
    EXPECT_EQ(seen.size(), 4u);
}
