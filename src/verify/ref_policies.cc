#include "verify/ref_policies.hh"

#include <limits>

#include "util/bits.hh"
#include "util/logging.hh"

namespace rlr::verify
{

// --- RefLru --------------------------------------------------------

void
RefLru::reset(uint32_t sets, uint32_t ways)
{
    ways_ = ways;
    clock_ = 0;
    last_use_.assign(sets, std::vector<uint64_t>(ways, 0));
}

uint32_t
RefLru::victim(const RefAccess &access, uint32_t set,
               const std::vector<RefLine> &lines,
               bool allow_bypass)
{
    (void)allow_bypass;
    (void)access;
    (void)lines;
    uint32_t victim = 0;
    for (uint32_t w = 1; w < ways_; ++w) {
        if (last_use_[set][w] < last_use_[set][victim])
            victim = w;
    }
    return victim;
}

void
RefLru::touch(const RefAccess &access, uint32_t set, uint32_t way,
              bool hit)
{
    (void)access;
    (void)hit;
    last_use_[set][way] = ++clock_;
}

// --- RefRrip -------------------------------------------------------

RefRrip::RefRrip(RripMode mode, unsigned rrpv_bits, uint64_t seed,
                 uint32_t leader_sets)
    : mode_(mode),
      max_rrpv_(static_cast<uint8_t>((1u << rrpv_bits) - 1)),
      seed_(seed), leader_sets_(leader_sets), rng_(seed)
{
    util::ensure(rrpv_bits >= 1 && rrpv_bits <= 8,
                 "RefRrip: bad RRPV width");
}

std::string
RefRrip::name() const
{
    switch (mode_) {
      case RripMode::Srrip:
        return "ref-SRRIP";
      case RripMode::Brrip:
        return "ref-BRRIP";
      case RripMode::Drrip:
        return "ref-DRRIP";
    }
    return "ref-RRIP";
}

void
RefRrip::reset(uint32_t sets, uint32_t ways)
{
    sets_ = sets;
    ways_ = ways;
    rng_ = util::Rng(seed_);
    psel_ = util::SignedSatCounter(10, 0);
    rrpv_.assign(sets, std::vector<uint8_t>(ways, max_rrpv_));
}

RefRrip::Role
RefRrip::role(uint32_t set) const
{
    const uint32_t period = sets_ / leader_sets_;
    if (set % period == 0)
        return Role::SrripLeader;
    if (set % period == 1)
        return Role::BrripLeader;
    return Role::Follower;
}

uint8_t
RefRrip::insertion(uint32_t set)
{
    bool brrip = false;
    switch (mode_) {
      case RripMode::Srrip:
        brrip = false;
        break;
      case RripMode::Brrip:
        brrip = true;
        break;
      case RripMode::Drrip:
        switch (role(set)) {
          case Role::SrripLeader:
            brrip = false;
            break;
          case Role::BrripLeader:
            brrip = true;
            break;
          case Role::Follower:
            brrip = psel_.value() < 0;
            break;
        }
        break;
    }
    if (!brrip)
        return static_cast<uint8_t>(max_rrpv_ - 1);
    // Bimodal: 1-in-32 long re-reference insertion, else distant.
    if (rng_.nextBounded(32) == 0)
        return static_cast<uint8_t>(max_rrpv_ - 1);
    return max_rrpv_;
}

uint32_t
RefRrip::victim(const RefAccess &access, uint32_t set,
                const std::vector<RefLine> &lines,
                bool allow_bypass)
{
    (void)allow_bypass;
    (void)access;
    (void)lines;
    for (;;) {
        for (uint32_t w = 0; w < ways_; ++w) {
            if (rrpv_[set][w] >= max_rrpv_)
                return w;
        }
        for (uint32_t w = 0; w < ways_; ++w)
            ++rrpv_[set][w];
    }
}

void
RefRrip::touch(const RefAccess &access, uint32_t set, uint32_t way,
               bool hit)
{
    (void)access;
    if (!hit && mode_ == RripMode::Drrip) {
        // Leader-set misses steer PSEL toward the other policy
        // before the insertion position is chosen.
        switch (role(set)) {
          case Role::SrripLeader:
            --psel_;
            break;
          case Role::BrripLeader:
            ++psel_;
            break;
          case Role::Follower:
            break;
        }
    }
    if (hit)
        rrpv_[set][way] = 0;
    else
        rrpv_[set][way] = insertion(set);
}

// --- RefShip -------------------------------------------------------

RefShip::RefShip(unsigned rrpv_bits, unsigned signature_bits,
                 unsigned shct_bits)
    : rrpv_bits_(rrpv_bits), signature_bits_(signature_bits),
      shct_bits_(shct_bits),
      max_rrpv_(static_cast<uint8_t>((1u << rrpv_bits) - 1))
{
}

void
RefShip::reset(uint32_t sets, uint32_t ways)
{
    ways_ = ways;
    Line init;
    init.rrpv = max_rrpv_;
    lines_.assign(sets, std::vector<Line>(ways, init));
    shct_.assign(1ULL << signature_bits_,
                 util::SatCounter(shct_bits_, 1));
}

uint32_t
RefShip::signature(uint64_t pc, trace::AccessType type) const
{
    uint64_t key = pc >> 2;
    if (type == trace::AccessType::Prefetch)
        key ^= 0x2aaaaaaaaaaaULL;
    return static_cast<uint32_t>(
        util::foldXor(key, signature_bits_));
}

uint32_t
RefShip::victim(const RefAccess &access, uint32_t set,
                const std::vector<RefLine> &lines,
                bool allow_bypass)
{
    (void)allow_bypass;
    (void)access;
    (void)lines;
    for (;;) {
        for (uint32_t w = 0; w < ways_; ++w) {
            if (lines_[set][w].rrpv >= max_rrpv_)
                return w;
        }
        for (uint32_t w = 0; w < ways_; ++w)
            ++lines_[set][w].rrpv;
    }
}

void
RefShip::touch(const RefAccess &access, uint32_t set, uint32_t way,
               bool hit)
{
    Line &l = lines_[set][way];
    if (hit) {
        // Writeback hits carry no reuse signal.
        if (access.type == trace::AccessType::Writeback)
            return;
        l.rrpv = 0;
        if (!l.outcome) {
            l.outcome = true;
            ++shct_[l.signature];
        }
        return;
    }
    const uint32_t sig = signature(access.pc, access.type);
    l.signature = sig;
    l.outcome = false;
    if (access.type == trace::AccessType::Writeback)
        l.rrpv = max_rrpv_;
    else if (shct_[sig].value() == 0)
        l.rrpv = max_rrpv_;
    else
        l.rrpv = static_cast<uint8_t>(max_rrpv_ - 1);
}

void
RefShip::evicted(uint32_t set, uint32_t way)
{
    Line &l = lines_[set][way];
    if (!l.outcome)
        --shct_[l.signature];
}

// --- RefRlr --------------------------------------------------------

RefRlr::RefRlr(RefRlrParams params)
    : params_(params), age_max_((1u << params.age_bits) - 1),
      hit_max_((1u << params.hit_bits) - 1)
{
}

void
RefRlr::reset(uint32_t sets, uint32_t ways)
{
    ways_ = ways;
    rd_ = 1;
    preuse_accum_ = 0;
    preuse_samples_ = 0;
    clock_ = 0;
    lines_.assign(sets, std::vector<Line>(ways));
    set_miss_ctr_.assign(sets, 0);
}

uint64_t
RefRlr::ageUnits(const Line &l) const
{
    return params_.optimized ? static_cast<uint64_t>(l.age) *
                                   params_.age_tick_misses
                             : l.age;
}

uint64_t
RefRlr::priority(const Line &l) const
{
    uint64_t p =
        params_.age_weight * (ageUnits(l) <= rd_ ? 1 : 0);
    if (params_.use_type_priority && !l.last_was_prefetch)
        p += 1;
    if (params_.use_hit_priority)
        p += std::min<uint32_t>(l.hits, hit_max_);
    return p;
}

uint32_t
RefRlr::victim(const RefAccess &access, uint32_t set,
               const std::vector<RefLine> &lines,
               bool allow_bypass)
{
    (void)lines;
    if (params_.allow_bypass && allow_bypass &&
        access.type != trace::AccessType::Writeback) {
        bool any_expired = false;
        for (uint32_t w = 0; w < ways_; ++w) {
            if (ageUnits(lines_[set][w]) > rd_) {
                any_expired = true;
                break;
            }
        }
        if (!any_expired)
            return kBypass;
    }

    uint32_t victim = 0;
    uint64_t best = std::numeric_limits<uint64_t>::max();
    for (uint32_t w = 0; w < ways_; ++w) {
        const Line &l = lines_[set][w];
        const uint64_t p = priority(l);
        if (p < best) {
            best = p;
            victim = w;
            continue;
        }
        if (p != best)
            continue;
        // Ties evict the most recently used line; the optimized
        // variant approximates recency by the age counter.
        const Line &cur = lines_[set][victim];
        if (params_.optimized) {
            if (l.age < cur.age)
                victim = w;
        } else {
            if (l.last_use > cur.last_use)
                victim = w;
        }
    }
    return victim;
}

void
RefRlr::touch(const RefAccess &access, uint32_t set, uint32_t way,
              bool hit)
{
    // Age the set first so the touched line's pre-access age is
    // its preuse distance.
    if (params_.optimized) {
        if (!hit) {
            uint8_t &ctr = set_miss_ctr_[set];
            ctr = static_cast<uint8_t>(
                (ctr + 1) % params_.age_tick_misses);
            if (ctr == 0) {
                for (Line &l : lines_[set]) {
                    if (l.age < age_max_)
                        ++l.age;
                }
            }
        }
    } else {
        for (Line &l : lines_[set]) {
            if (l.age < age_max_)
                ++l.age;
        }
    }

    Line &l = lines_[set][way];
    if (hit) {
        if (trace::isDemand(access.type)) {
            const uint32_t sample =
                params_.optimized
                    ? l.age * params_.age_tick_misses +
                          set_miss_ctr_[set]
                    : l.age;
            preuse_accum_ += sample;
            if (++preuse_samples_ >= params_.rd_update_hits) {
                rd_ = std::max<uint64_t>(
                    1, params_.rd_multiplier * preuse_accum_ /
                           params_.rd_update_hits);
                preuse_accum_ = 0;
                preuse_samples_ = 0;
            }
            if (l.hits < hit_max_)
                ++l.hits;
        }
    } else {
        l.hits = 0;
    }
    l.age = 0;
    l.last_was_prefetch =
        access.type == trace::AccessType::Prefetch;
    l.last_use = ++clock_;
}

// --- RefBelady -----------------------------------------------------

RefBelady::RefBelady(std::vector<uint64_t> trace_lines,
                     bool allow_bypass)
    : trace_lines_(std::move(trace_lines)),
      allow_bypass_(allow_bypass)
{
}

void
RefBelady::reset(uint32_t sets, uint32_t ways)
{
    (void)sets;
    (void)ways;
}

uint64_t
RefBelady::nextUse(uint64_t line, uint64_t seq) const
{
    for (uint64_t i = seq + 1; i < trace_lines_.size(); ++i) {
        if (trace_lines_[i] == line)
            return i;
    }
    return std::numeric_limits<uint64_t>::max();
}

uint32_t
RefBelady::victim(const RefAccess &access, uint32_t set,
                  const std::vector<RefLine> &lines,
                  bool allow_bypass)
{
    (void)set;
    uint32_t victim = 0;
    uint64_t farthest = 0;
    for (uint32_t w = 0; w < lines.size(); ++w) {
        const uint64_t next = nextUse(lines[w].line, access.seq);
        if (next >= farthest) {
            farthest = next;
            victim = w;
        }
    }
    if (allow_bypass_ && allow_bypass &&
        access.type != trace::AccessType::Writeback &&
        nextUse(access.line, access.seq) >= farthest) {
        // Keeping every resident line is at least as good as
        // caching a block reused even later.
        return kBypass;
    }
    return victim;
}

void
RefBelady::touch(const RefAccess &access, uint32_t set,
                 uint32_t way, bool hit)
{
    (void)access;
    (void)set;
    (void)way;
    (void)hit;
}

} // namespace rlr::verify
