// Lease contention tests (docs/ROBUSTNESS.md, "Distributed
// sweeps"): the claim protocol must admit exactly one winner per
// round under a two-thread race, and fencing tokens must be
// strictly monotonic across claims — including claims that steal
// an expired lease.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "sim/lease.hh"

namespace fs = std::filesystem;
using rlr::sim::Lease;
using rlr::sim::LeaseInfo;

namespace
{

class TempDir
{
  public:
    explicit TempDir(const std::string &name)
    {
        path_ = (fs::temp_directory_path() /
                 ("rlr_lease_test_" + name +
                  std::to_string(::getpid())))
                    .string();
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace

TEST(Lease, FreshClaimWinsOnce)
{
    TempDir dir("fresh");
    Lease a(dir.path(), /*worker=*/0, /*ttl=*/10.0);
    Lease b(dir.path(), /*worker=*/1, /*ttl=*/10.0);

    const auto first = a.tryClaim(0x1234, 1);
    EXPECT_TRUE(first.won);
    EXPECT_FALSE(first.stole);
    EXPECT_GE(first.fence, 1u);

    // The cell is leased: a second claimant must lose.
    const auto second = b.tryClaim(0x1234, 1);
    EXPECT_FALSE(second.won);

    // Until the holder releases — then the fence keeps rising.
    a.release(0x1234, first.fence);
    const auto third = b.tryClaim(0x1234, 1);
    EXPECT_TRUE(third.won);
    EXPECT_GT(third.fence, first.fence);
}

TEST(Lease, TwoThreadsRaceExactlyOneWinner)
{
    TempDir dir("race");
    // Two Lease instances over the same directory model two
    // separate worker processes.
    Lease a(dir.path(), 0, 10.0);
    Lease b(dir.path(), 1, 10.0);

    constexpr int kRounds = 1000;
    constexpr uint64_t hash = 0x9000;
    uint64_t last_fence = 0;
    for (int round = 0; round < kRounds; ++round) {
        std::atomic<int> winners{0};
        std::atomic<uint64_t> won_fence{0};
        std::atomic<int> won_worker{-1};

        auto race = [&](Lease &lease, int who) {
            const auto c = lease.tryClaim(hash, 1);
            if (c.won) {
                winners.fetch_add(1);
                won_fence.store(c.fence);
                won_worker.store(who);
            }
        };
        std::thread t1(race, std::ref(a), 0);
        std::thread t2(race, std::ref(b), 1);
        t1.join();
        t2.join();

        // Exactly one winner per round, never zero, never both.
        ASSERT_EQ(winners.load(), 1) << "round " << round;
        // Strictly monotonic fencing tokens across rounds.
        const uint64_t fence = won_fence.load();
        ASSERT_GT(fence, last_fence) << "round " << round;
        last_fence = fence;

        // The winner releases so the next round starts fresh.
        Lease &winner = won_worker.load() == 0 ? a : b;
        winner.release(hash, fence);
    }
}

TEST(Lease, FenceStrictlyMonotonicAcrossClaims)
{
    TempDir dir("monotonic");
    Lease a(dir.path(), 0, 10.0);
    Lease b(dir.path(), 1, 10.0);

    uint64_t prev = 0;
    for (int i = 0; i < 100; ++i) {
        Lease &who = (i % 2) ? b : a;
        const auto c = who.tryClaim(0xfeed, 1);
        ASSERT_TRUE(c.won) << "claim " << i;
        ASSERT_GT(c.fence, prev) << "claim " << i;
        prev = c.fence;
        who.release(0xfeed, c.fence);
    }
}

TEST(Lease, ExpiredLeaseIsStolenWithHigherFence)
{
    TempDir dir("steal");
    Lease dead(dir.path(), 0, 0.1);
    Lease thief(dir.path(), 1, 0.1);

    const auto held = dead.tryClaim(0xabcd, 3, 0.1);
    ASSERT_TRUE(held.won);

    // Young lease: not stealable yet even by an eager thief.
    const auto early = thief.tryClaim(0xabcd, 1, 60.0);
    EXPECT_FALSE(early.won);

    // Let it age past the steal threshold (no renewal — the
    // "holder" is pretending to be SIGKILLed).
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    const auto stolen = thief.tryClaim(0xabcd, 1, 0.1);
    EXPECT_TRUE(stolen.won);
    EXPECT_TRUE(stolen.stole);
    EXPECT_GT(stolen.fence, held.fence);

    // The dead worker's commit must now be fenced out...
    EXPECT_FALSE(dead.stillHeld(0xabcd, held.fence));
    // ...and its release must NOT delete the thief's lease.
    dead.release(0xabcd, held.fence);
    EXPECT_TRUE(thief.stillHeld(0xabcd, stolen.fence));
}

TEST(Lease, RenewKeepsLeaseFresh)
{
    TempDir dir("renew");
    Lease holder(dir.path(), 2, 0.2);
    Lease thief(dir.path(), 3, 0.2);

    const auto c = holder.tryClaim(0x7777, 1, 0.2);
    ASSERT_TRUE(c.won);

    // Renew through ~3 TTLs; the thief must never succeed.
    for (int i = 0; i < 6; ++i) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(100));
        holder.renew(0x7777, 1, c.fence);
        EXPECT_FALSE(thief.tryClaim(0x7777, 1, 0.2).won)
            << "iteration " << i;
    }
    EXPECT_TRUE(holder.stillHeld(0x7777, c.fence));
}

TEST(Lease, ReadAbsentAndTornFiles)
{
    TempDir dir("read");
    LeaseInfo info;
    EXPECT_FALSE(
        Lease::read(dir.path() + "/lease-none.json", info));

    // A torn write (no "eor" marker) parses as unreadable.
    const std::string torn = dir.path() + "/lease-torn.json";
    {
        std::ofstream f(torn);
        f << "{\"record\": \"rlr-sweep-lease\", \"worker\": 4";
    }
    EXPECT_FALSE(Lease::read(torn, info));

    Lease a(dir.path(), 6, 10.0);
    const auto c = a.tryClaim(0xbeef, 9);
    ASSERT_TRUE(c.won);
    LeaseInfo good;
    ASSERT_TRUE(
        Lease::read(Lease::leasePath(dir.path(), 0xbeef), good));
    EXPECT_EQ(good.worker, 6u);
    EXPECT_EQ(good.attempt, 9u);
    EXPECT_EQ(good.fence, c.fence);
    EXPECT_EQ(good.pid, static_cast<int64_t>(::getpid()));
    EXPECT_DOUBLE_EQ(good.ttl_s, 10.0);
    EXPECT_GE(good.age_s, 0.0);
}
