file(REMOVE_RECURSE
  "CMakeFiles/rl_learning_curve.dir/rl_learning_curve.cc.o"
  "CMakeFiles/rl_learning_curve.dir/rl_learning_curve.cc.o.d"
  "rl_learning_curve"
  "rl_learning_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_learning_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
