#include "cpu/core.hh"

#include <algorithm>

#include "cache/geometry.hh"
#include "util/logging.hh"

namespace rlr::cpu
{

O3Core::O3Core(CoreConfig config, uint8_t cpu_id,
               cache::MemoryLevel *l1i, cache::MemoryLevel *l1d)
    : config_(config), cpu_id_(cpu_id), l1i_(l1i), l1d_(l1d),
      stats_(util::format("cpu{}", cpu_id))
{
    util::ensure(l1i_ != nullptr && l1d_ != nullptr,
                 "O3Core: null cache port");
    util::ensure(config_.width > 0 && config_.rob_size > 0,
                 "O3Core: bad config");
    reg_ready_.fill(0);
}

void
O3Core::fetch(uint64_t pc)
{
    const uint64_t line = cache::CacheGeometry::lineAddress(pc);
    if (line == last_fetch_line_)
        return;
    last_fetch_line_ = line;

    cache::MemRequest req;
    req.address = pc;
    req.pc = pc;
    req.type = trace::AccessType::Load;
    req.cpu = cpu_id_;
    const uint64_t ready = l1i_->access(req, cycle_);

    // A pipelined front end hides the L1I hit latency; anything
    // beyond that starves dispatch.
    const uint64_t hidden = cycle_ + config_.hidden_fetch_latency;
    if (ready > hidden) {
        stats_.counter("fetch_stall_cycles") += ready - hidden;
        cycle_ = ready - config_.hidden_fetch_latency;
    }
}

void
O3Core::makeRoomInRob()
{
    if (rob_.size() < config_.rob_size)
        return;
    // In-order retirement: dispatch of a new instruction into a
    // full ROB waits for the head to complete. Retire bandwidth is
    // folded into the dispatch width (both are `width`).
    const uint64_t head_done = rob_.front();
    rob_.pop_front();
    if (head_done > cycle_) {
        stats_.counter("rob_stall_cycles") += head_done - cycle_;
        cycle_ = head_done;
    }
}

void
O3Core::step(const trace::Instruction &instr)
{
    ++instructions_;
    ++stats_.counter("instructions");

    fetch(instr.pc);
    makeRoomInRob();

    // Operand readiness.
    uint64_t exec_start = cycle_;
    for (const auto src : instr.src_regs) {
        if (src != trace::kNoReg)
            exec_start = std::max(exec_start, reg_ready_[src]);
    }

    uint64_t completion = exec_start + 1;
    switch (instr.kind) {
      case trace::InstrKind::Alu:
        ++stats_.counter("alu_ops");
        break;
      case trace::InstrKind::Load: {
        ++stats_.counter("loads");
        cache::MemRequest req;
        req.address = instr.mem_addr;
        req.pc = instr.pc;
        req.type = trace::AccessType::Load;
        req.cpu = cpu_id_;
        completion = l1d_->access(req, exec_start);
        break;
      }
      case trace::InstrKind::Store: {
        ++stats_.counter("stores");
        cache::MemRequest req;
        req.address = instr.mem_addr;
        req.pc = instr.pc;
        req.type = trace::AccessType::Rfo;
        req.cpu = cpu_id_;
        // Stores retire through the store buffer; the core does
        // not wait for the RFO, but the traffic is real.
        l1d_->access(req, exec_start);
        completion = exec_start + 1;
        break;
      }
      case trace::InstrKind::Branch: {
        ++stats_.counter("branches");
        const bool correct =
            bp_.predictAndUpdate(instr.pc, instr.branch_taken);
        if (!correct) {
            ++stats_.counter("branch_mispredicts");
            // Redirect: the front end refills after the branch
            // resolves.
            const uint64_t redo =
                completion + config_.mispredict_penalty;
            if (redo > cycle_) {
                stats_.counter("mispredict_stall_cycles") +=
                    redo - cycle_;
                cycle_ = redo;
            }
            last_fetch_line_ = ~0ULL;
        }
        break;
      }
    }

    if (instr.dest_reg != trace::kNoReg)
        reg_ready_[instr.dest_reg] = completion;
    rob_.push_back(std::max(completion, cycle_));

    // Dispatch width: `width` instructions enter per cycle.
    if (++width_slot_ >= config_.width) {
        width_slot_ = 0;
        ++cycle_;
    }
}

void
O3Core::run(trace::InstructionSource &source, uint64_t count)
{
    trace::Instruction instr;
    for (uint64_t i = 0; i < count; ++i) {
        // Cancellation checkpoint: the mask test keeps the
        // disabled path at one predicted branch per instruction.
        if ((i & (util::kCancelCheckInterval - 1)) == 0 &&
            cancel_ != nullptr && cancel_->cancelled()) {
            throw util::CancelledError(cancel_->reason());
        }
        if (!source.next(instr)) {
            source.reset();
            if (!source.next(instr))
                util::fatal("instruction source '{}' is empty",
                            source.name());
        }
        step(instr);
    }
}

void
O3Core::beginMeasurement()
{
    measure_start_instr_ = instructions_;
    measure_start_cycle_ = cycle_;
    stats_.reset();
}

uint64_t
O3Core::measuredInstructions() const
{
    return instructions_ - measure_start_instr_;
}

uint64_t
O3Core::measuredCycles() const
{
    // Account for still-in-flight work at the measurement edge.
    uint64_t end = cycle_;
    for (const auto c : rob_)
        end = std::max(end, c);
    return end - measure_start_cycle_;
}

double
O3Core::ipc() const
{
    const uint64_t cyc = measuredCycles();
    return cyc == 0 ? 0.0
                    : static_cast<double>(measuredInstructions()) /
                          static_cast<double>(cyc);
}

void
O3Core::describeStats(stats::Registry &reg,
                      const std::string &prefix)
{
    reg.bindStatSet(prefix, &stats_,
                    "instruction-mix and stall counters");
    reg.bindCounter(prefix + ".instructions_retired",
                    [this] { return measuredInstructions(); },
                    "instructions in the measurement window");
    reg.bindCounter(prefix + ".cycles",
                    [this] { return measuredCycles(); },
                    "cycles in the measurement window");
    reg.formula(
        prefix + ".ipc",
        [this](const stats::Registry &) { return ipc(); },
        "instructions per cycle over the measurement window");
    reg.formula(
        prefix + ".branch_mispredict_rate",
        [this](const stats::Registry &) {
            return stats::hitRate(
                stats_.value("branch_mispredicts"),
                stats_.value("branches"));
        },
        "mispredicted fraction of measured branches");
}

} // namespace rlr::cpu
