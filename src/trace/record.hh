/**
 * @file
 * Fundamental record types shared by the trace-driven core model
 * and the LLC-only offline simulator.
 */

#ifndef RLR_TRACE_RECORD_HH
#define RLR_TRACE_RECORD_HH

#include <array>
#include <cstdint>
#include <string>

namespace rlr::trace
{

/**
 * Cache access types as seen by the LLC, matching the paper's
 * Table II: load (LD), request-for-ownership (RFO), prefetch (PR),
 * and writeback (WB).
 */
enum class AccessType : uint8_t { Load = 0, Rfo, Prefetch, Writeback };

/** Number of distinct access types. */
inline constexpr size_t kNumAccessTypes = 4;

/** @return short name ("LD", "RFO", "PF", "WB"). */
std::string_view accessTypeName(AccessType type);

/** @return true for demand (LD/RFO) accesses. */
constexpr bool
isDemand(AccessType type)
{
    return type == AccessType::Load || type == AccessType::Rfo;
}

/** Instruction classes in the synthetic instruction stream. */
enum class InstrKind : uint8_t { Alu = 0, Load, Store, Branch };

/** Register id meaning "no register". */
inline constexpr uint8_t kNoReg = 0xff;

/** Number of architectural registers modeled by the core. */
inline constexpr unsigned kNumRegs = 64;

/**
 * One dynamic instruction. Dependencies are expressed through
 * architectural registers so the core model can expose
 * memory-level parallelism differences (e.g. pointer chasing
 * serializes misses; streaming does not).
 */
struct Instruction
{
    uint64_t pc = 0;
    /** Effective address for Load/Store; 0 otherwise. */
    uint64_t mem_addr = 0;
    uint64_t branch_target = 0;
    InstrKind kind = InstrKind::Alu;
    bool branch_taken = false;
    uint8_t dest_reg = kNoReg;
    std::array<uint8_t, 2> src_regs = {kNoReg, kNoReg};
};

/**
 * One LLC access record: the trace format consumed by the offline
 * (RL/Belady) simulator, mirroring the paper's
 * (PC, Access Type, Address) tuples.
 */
struct LlcAccess
{
    uint64_t pc = 0;
    uint64_t address = 0;
    AccessType type = AccessType::Load;
    /** Issuing core (multicore traces). */
    uint8_t cpu = 0;

    bool
    operator==(const LlcAccess &other) const
    {
        return pc == other.pc && address == other.address &&
               type == other.type && cpu == other.cpu;
    }
};

/**
 * Abstract source of dynamic instructions. Implementations:
 * synthetic generators (infinite) and file-backed traces (finite,
 * rewound on demand for multicore runs).
 */
class InstructionSource
{
  public:
    virtual ~InstructionSource() = default;

    /**
     * Produce the next instruction.
     * @return false when the source is exhausted.
     */
    virtual bool next(Instruction &out) = 0;

    /** Rewind to the beginning of the stream. */
    virtual void reset() = 0;

    /** Human-readable workload name. */
    virtual const std::string &name() const = 0;
};

} // namespace rlr::trace

#endif // RLR_TRACE_RECORD_HH
