/** @file Tests for SHiP and SHiP++. */

#include <gtest/gtest.h>

#include "policies/ship.hh"
#include "tests/policy_test_util.hh"

using namespace rlr;
using namespace rlr::policies;

namespace
{

cache::AccessContext
ctxFor(uint32_t set, uint32_t way, bool hit, uint64_t pc,
       trace::AccessType type = trace::AccessType::Load)
{
    cache::AccessContext c;
    c.set = set;
    c.way = way;
    c.hit = hit;
    c.pc = pc;
    c.type = type;
    c.full_addr = 0x1000;
    return c;
}

} // namespace

TEST(Ship, TrainsOnReuse)
{
    ShipPolicy p;
    p.bind(test::tinyGeometry());
    const uint64_t pc = 0x4004;
    const uint64_t before = p.shctValue(pc);
    p.onAccess(ctxFor(0, 0, false, pc)); // fill
    p.onAccess(ctxFor(0, 0, true, pc));  // first re-reference
    EXPECT_EQ(p.shctValue(pc), before + 1);
    // Further hits do not retrain (outcome bit).
    p.onAccess(ctxFor(0, 0, true, pc));
    EXPECT_EQ(p.shctValue(pc), before + 1);
}

TEST(Ship, DetrainsDeadLines)
{
    ShipPolicy p;
    p.bind(test::tinyGeometry());
    const uint64_t pc = 0x4010;
    const uint64_t before = p.shctValue(pc);
    p.onAccess(ctxFor(0, 1, false, pc));
    p.onEviction(0, 1, cache::BlockView{true, false, false, 0});
    EXPECT_EQ(p.shctValue(pc), before - 1);
}

TEST(Ship, DeadPcInsertedDistant)
{
    ShipPolicy p;
    p.bind(test::tinyGeometry());
    const uint64_t dead_pc = 0x4020;
    // Detrain until the counter hits zero.
    for (int i = 0; i < 5; ++i) {
        p.onAccess(ctxFor(0, 2, false, dead_pc));
        p.onEviction(0, 2,
                     cache::BlockView{true, false, false, 0});
    }
    EXPECT_EQ(p.shctValue(dead_pc), 0u);
    // Fill every way so no stale-initial RRPVs remain, with the
    // dead PC's line in way 2.
    p.onAccess(ctxFor(0, 0, false, 0x9999));
    p.onAccess(ctxFor(0, 1, false, 0x9999));
    p.onAccess(ctxFor(0, 3, false, 0x9999));
    p.onAccess(ctxFor(0, 2, false, dead_pc));
    std::vector<cache::BlockView> blocks(4);
    cache::AccessContext miss;
    miss.set = 0;
    miss.pc = 0x8888;
    EXPECT_EQ(p.findVictim(miss, blocks), 2u);
}

TEST(Ship, WritebackDoesNotTrain)
{
    ShipPolicy p;
    p.bind(test::tinyGeometry());
    const uint64_t pc = 0x4040;
    p.onAccess(ctxFor(0, 0, false, pc));
    const uint64_t before = p.shctValue(pc);
    p.onAccess(
        ctxFor(0, 0, true, pc, trace::AccessType::Writeback));
    EXPECT_EQ(p.shctValue(pc), before);
}

TEST(Ship, UsesPcFlag)
{
    ShipPolicy ship;
    ShipPPPolicy shippp;
    EXPECT_TRUE(ship.usesPc());
    EXPECT_TRUE(shippp.usesPc());
}

TEST(Ship, OverheadMatchesPaper)
{
    ShipPolicy p;
    cache::CacheGeometry g;
    g.size_bytes = 2 * 1024 * 1024;
    g.ways = 16;
    p.bind(g);
    EXPECT_NEAR(p.overhead().totalKiB(g), 14.0, 0.01);
    ShipPPPolicy pp;
    pp.bind(g);
    EXPECT_NEAR(pp.overhead().totalKiB(g), 20.0, 0.01);
}

TEST(ShipPP, SaturatedSignatureInsertsMru)
{
    ShipPPPolicy p;
    p.bind(test::tinyGeometry());
    const uint64_t pc = 0x4100;
    // Saturate the signature by repeated reuse.
    for (int i = 0; i < 10; ++i) {
        p.onAccess(ctxFor(0, 0, false, pc));
        p.onAccess(ctxFor(0, 0, true, pc));
    }
    // A fresh fill from this PC should land at RRPV 0: it should
    // NOT be chosen over an untrained line.
    p.onAccess(ctxFor(0, 1, false, pc));
    p.onAccess(ctxFor(0, 2, false, 0x7777));
    std::vector<cache::BlockView> blocks(4);
    cache::AccessContext miss;
    miss.set = 0;
    miss.pc = 0x6666;
    EXPECT_NE(p.findVictim(miss, blocks), 1u);
}

TEST(ShipPP, BeatsShipOnScanMix)
{
    // Hot lines reused by one PC + a one-shot scan from another:
    // both SHiP variants should protect the hot PC's lines.
    std::vector<std::pair<uint64_t, trace::AccessType>> seq;
    for (int rep = 0; rep < 40; ++rep) {
        for (uint64_t h = 0; h < 3; ++h)
            seq.push_back({h * 64 * 16,
                           trace::AccessType::Load});
        seq.push_back({(100 + static_cast<uint64_t>(rep)) * 64 * 16,
                       trace::AccessType::Load});
    }
    // Hot PC for hot lines, scan PC for scan lines.
    trace::LlcTrace t;
    size_t i = 0;
    for (const auto &[addr, type] : seq) {
        const bool hot = addr < 4 * 64 * 16;
        t.append({hot ? 0x400u : 0x900u, addr, type, 0});
        ++i;
    }
    ml::OfflineSimulator sim(test::smallOffline(), &t);
    ShipPolicy ship;
    const auto s1 = sim.runPolicy(ship);
    // The hot lines are nearly always hits after warmup.
    EXPECT_GT(s1.hitRate(), 0.5);
}
